file(REMOVE_RECURSE
  "CMakeFiles/core.dir/allgather_ring_tuned.cpp.o"
  "CMakeFiles/core.dir/allgather_ring_tuned.cpp.o.d"
  "CMakeFiles/core.dir/bcast.cpp.o"
  "CMakeFiles/core.dir/bcast.cpp.o.d"
  "CMakeFiles/core.dir/bcast_scatter_ring_tuned.cpp.o"
  "CMakeFiles/core.dir/bcast_scatter_ring_tuned.cpp.o.d"
  "CMakeFiles/core.dir/persistent_bcast.cpp.o"
  "CMakeFiles/core.dir/persistent_bcast.cpp.o.d"
  "CMakeFiles/core.dir/ring_plan.cpp.o"
  "CMakeFiles/core.dir/ring_plan.cpp.o.d"
  "CMakeFiles/core.dir/transfer_analysis.cpp.o"
  "CMakeFiles/core.dir/transfer_analysis.cpp.o.d"
  "CMakeFiles/core.dir/tuning.cpp.o"
  "CMakeFiles/core.dir/tuning.cpp.o.d"
  "libcore.a"
  "libcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
