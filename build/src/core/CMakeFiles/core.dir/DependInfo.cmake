
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allgather_ring_tuned.cpp" "src/core/CMakeFiles/core.dir/allgather_ring_tuned.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/allgather_ring_tuned.cpp.o.d"
  "/root/repo/src/core/bcast.cpp" "src/core/CMakeFiles/core.dir/bcast.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/bcast.cpp.o.d"
  "/root/repo/src/core/bcast_scatter_ring_tuned.cpp" "src/core/CMakeFiles/core.dir/bcast_scatter_ring_tuned.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/bcast_scatter_ring_tuned.cpp.o.d"
  "/root/repo/src/core/persistent_bcast.cpp" "src/core/CMakeFiles/core.dir/persistent_bcast.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/persistent_bcast.cpp.o.d"
  "/root/repo/src/core/ring_plan.cpp" "src/core/CMakeFiles/core.dir/ring_plan.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/ring_plan.cpp.o.d"
  "/root/repo/src/core/transfer_analysis.cpp" "src/core/CMakeFiles/core.dir/transfer_analysis.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/transfer_analysis.cpp.o.d"
  "/root/repo/src/core/tuning.cpp" "src/core/CMakeFiles/core.dir/tuning.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coll/CMakeFiles/coll.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/comm.dir/DependInfo.cmake"
  "/root/repo/build/src/bsbutil/CMakeFiles/bsbutil.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
