file(REMOVE_RECURSE
  "libmpi_facade.a"
)
