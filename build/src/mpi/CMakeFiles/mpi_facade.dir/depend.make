# Empty dependencies file for mpi_facade.
# This may be replaced when dependencies are built.
