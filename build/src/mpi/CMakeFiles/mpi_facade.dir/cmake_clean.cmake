file(REMOVE_RECURSE
  "CMakeFiles/mpi_facade.dir/mpi.cpp.o"
  "CMakeFiles/mpi_facade.dir/mpi.cpp.o.d"
  "libmpi_facade.a"
  "libmpi_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
