file(REMOVE_RECURSE
  "CMakeFiles/netsim.dir/costmodel.cpp.o"
  "CMakeFiles/netsim.dir/costmodel.cpp.o.d"
  "CMakeFiles/netsim.dir/fluid.cpp.o"
  "CMakeFiles/netsim.dir/fluid.cpp.o.d"
  "CMakeFiles/netsim.dir/replay.cpp.o"
  "CMakeFiles/netsim.dir/replay.cpp.o.d"
  "CMakeFiles/netsim.dir/sim.cpp.o"
  "CMakeFiles/netsim.dir/sim.cpp.o.d"
  "CMakeFiles/netsim.dir/timeline.cpp.o"
  "CMakeFiles/netsim.dir/timeline.cpp.o.d"
  "libnetsim.a"
  "libnetsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
