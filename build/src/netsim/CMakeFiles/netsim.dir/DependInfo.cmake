
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/costmodel.cpp" "src/netsim/CMakeFiles/netsim.dir/costmodel.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/costmodel.cpp.o.d"
  "/root/repo/src/netsim/fluid.cpp" "src/netsim/CMakeFiles/netsim.dir/fluid.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/fluid.cpp.o.d"
  "/root/repo/src/netsim/replay.cpp" "src/netsim/CMakeFiles/netsim.dir/replay.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/replay.cpp.o.d"
  "/root/repo/src/netsim/sim.cpp" "src/netsim/CMakeFiles/netsim.dir/sim.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/sim.cpp.o.d"
  "/root/repo/src/netsim/timeline.cpp" "src/netsim/CMakeFiles/netsim.dir/timeline.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/comm.dir/DependInfo.cmake"
  "/root/repo/build/src/bsbutil/CMakeFiles/bsbutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
