
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/allgather_bruck.cpp" "src/coll/CMakeFiles/coll.dir/allgather_bruck.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/allgather_bruck.cpp.o.d"
  "/root/repo/src/coll/allgather_neighbor_exchange.cpp" "src/coll/CMakeFiles/coll.dir/allgather_neighbor_exchange.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/allgather_neighbor_exchange.cpp.o.d"
  "/root/repo/src/coll/allgather_recursive_doubling.cpp" "src/coll/CMakeFiles/coll.dir/allgather_recursive_doubling.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/allgather_recursive_doubling.cpp.o.d"
  "/root/repo/src/coll/allgather_ring_native.cpp" "src/coll/CMakeFiles/coll.dir/allgather_ring_native.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/allgather_ring_native.cpp.o.d"
  "/root/repo/src/coll/alltoall.cpp" "src/coll/CMakeFiles/coll.dir/alltoall.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/alltoall.cpp.o.d"
  "/root/repo/src/coll/bcast_binomial.cpp" "src/coll/CMakeFiles/coll.dir/bcast_binomial.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/bcast_binomial.cpp.o.d"
  "/root/repo/src/coll/bcast_ring_pipelined.cpp" "src/coll/CMakeFiles/coll.dir/bcast_ring_pipelined.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/bcast_ring_pipelined.cpp.o.d"
  "/root/repo/src/coll/bcast_scatter_rd.cpp" "src/coll/CMakeFiles/coll.dir/bcast_scatter_rd.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/bcast_scatter_rd.cpp.o.d"
  "/root/repo/src/coll/bcast_scatter_ring_native.cpp" "src/coll/CMakeFiles/coll.dir/bcast_scatter_ring_native.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/bcast_scatter_ring_native.cpp.o.d"
  "/root/repo/src/coll/bcast_smp.cpp" "src/coll/CMakeFiles/coll.dir/bcast_smp.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/bcast_smp.cpp.o.d"
  "/root/repo/src/coll/comm_split.cpp" "src/coll/CMakeFiles/coll.dir/comm_split.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/comm_split.cpp.o.d"
  "/root/repo/src/coll/gather_binomial.cpp" "src/coll/CMakeFiles/coll.dir/gather_binomial.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/gather_binomial.cpp.o.d"
  "/root/repo/src/coll/scatter.cpp" "src/coll/CMakeFiles/coll.dir/scatter.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/scatter.cpp.o.d"
  "/root/repo/src/coll/scatter_binomial.cpp" "src/coll/CMakeFiles/coll.dir/scatter_binomial.cpp.o" "gcc" "src/coll/CMakeFiles/coll.dir/scatter_binomial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/comm.dir/DependInfo.cmake"
  "/root/repo/build/src/bsbutil/CMakeFiles/bsbutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
