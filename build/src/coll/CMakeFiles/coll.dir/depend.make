# Empty dependencies file for coll.
# This may be replaced when dependencies are built.
