file(REMOVE_RECURSE
  "libcoll.a"
)
