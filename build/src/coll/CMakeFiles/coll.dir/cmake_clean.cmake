file(REMOVE_RECURSE
  "CMakeFiles/coll.dir/allgather_bruck.cpp.o"
  "CMakeFiles/coll.dir/allgather_bruck.cpp.o.d"
  "CMakeFiles/coll.dir/allgather_neighbor_exchange.cpp.o"
  "CMakeFiles/coll.dir/allgather_neighbor_exchange.cpp.o.d"
  "CMakeFiles/coll.dir/allgather_recursive_doubling.cpp.o"
  "CMakeFiles/coll.dir/allgather_recursive_doubling.cpp.o.d"
  "CMakeFiles/coll.dir/allgather_ring_native.cpp.o"
  "CMakeFiles/coll.dir/allgather_ring_native.cpp.o.d"
  "CMakeFiles/coll.dir/alltoall.cpp.o"
  "CMakeFiles/coll.dir/alltoall.cpp.o.d"
  "CMakeFiles/coll.dir/bcast_binomial.cpp.o"
  "CMakeFiles/coll.dir/bcast_binomial.cpp.o.d"
  "CMakeFiles/coll.dir/bcast_ring_pipelined.cpp.o"
  "CMakeFiles/coll.dir/bcast_ring_pipelined.cpp.o.d"
  "CMakeFiles/coll.dir/bcast_scatter_rd.cpp.o"
  "CMakeFiles/coll.dir/bcast_scatter_rd.cpp.o.d"
  "CMakeFiles/coll.dir/bcast_scatter_ring_native.cpp.o"
  "CMakeFiles/coll.dir/bcast_scatter_ring_native.cpp.o.d"
  "CMakeFiles/coll.dir/bcast_smp.cpp.o"
  "CMakeFiles/coll.dir/bcast_smp.cpp.o.d"
  "CMakeFiles/coll.dir/comm_split.cpp.o"
  "CMakeFiles/coll.dir/comm_split.cpp.o.d"
  "CMakeFiles/coll.dir/gather_binomial.cpp.o"
  "CMakeFiles/coll.dir/gather_binomial.cpp.o.d"
  "CMakeFiles/coll.dir/scatter.cpp.o"
  "CMakeFiles/coll.dir/scatter.cpp.o.d"
  "CMakeFiles/coll.dir/scatter_binomial.cpp.o"
  "CMakeFiles/coll.dir/scatter_binomial.cpp.o.d"
  "libcoll.a"
  "libcoll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
