file(REMOVE_RECURSE
  "CMakeFiles/trace.dir/counters.cpp.o"
  "CMakeFiles/trace.dir/counters.cpp.o.d"
  "CMakeFiles/trace.dir/coverage.cpp.o"
  "CMakeFiles/trace.dir/coverage.cpp.o.d"
  "CMakeFiles/trace.dir/event_table.cpp.o"
  "CMakeFiles/trace.dir/event_table.cpp.o.d"
  "CMakeFiles/trace.dir/export.cpp.o"
  "CMakeFiles/trace.dir/export.cpp.o.d"
  "CMakeFiles/trace.dir/match.cpp.o"
  "CMakeFiles/trace.dir/match.cpp.o.d"
  "CMakeFiles/trace.dir/record.cpp.o"
  "CMakeFiles/trace.dir/record.cpp.o.d"
  "CMakeFiles/trace.dir/schedule.cpp.o"
  "CMakeFiles/trace.dir/schedule.cpp.o.d"
  "libtrace.a"
  "libtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
