
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/counters.cpp" "src/trace/CMakeFiles/trace.dir/counters.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/counters.cpp.o.d"
  "/root/repo/src/trace/coverage.cpp" "src/trace/CMakeFiles/trace.dir/coverage.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/coverage.cpp.o.d"
  "/root/repo/src/trace/event_table.cpp" "src/trace/CMakeFiles/trace.dir/event_table.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/event_table.cpp.o.d"
  "/root/repo/src/trace/export.cpp" "src/trace/CMakeFiles/trace.dir/export.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/export.cpp.o.d"
  "/root/repo/src/trace/match.cpp" "src/trace/CMakeFiles/trace.dir/match.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/match.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/trace/CMakeFiles/trace.dir/record.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/record.cpp.o.d"
  "/root/repo/src/trace/schedule.cpp" "src/trace/CMakeFiles/trace.dir/schedule.cpp.o" "gcc" "src/trace/CMakeFiles/trace.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/comm.dir/DependInfo.cmake"
  "/root/repo/build/src/bsbutil/CMakeFiles/bsbutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
