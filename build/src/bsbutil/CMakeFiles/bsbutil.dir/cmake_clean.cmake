file(REMOVE_RECURSE
  "CMakeFiles/bsbutil.dir/ascii_plot.cpp.o"
  "CMakeFiles/bsbutil.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/bsbutil.dir/csv.cpp.o"
  "CMakeFiles/bsbutil.dir/csv.cpp.o.d"
  "CMakeFiles/bsbutil.dir/format.cpp.o"
  "CMakeFiles/bsbutil.dir/format.cpp.o.d"
  "CMakeFiles/bsbutil.dir/intervals.cpp.o"
  "CMakeFiles/bsbutil.dir/intervals.cpp.o.d"
  "CMakeFiles/bsbutil.dir/table.cpp.o"
  "CMakeFiles/bsbutil.dir/table.cpp.o.d"
  "libbsbutil.a"
  "libbsbutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsbutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
