file(REMOVE_RECURSE
  "libbsbutil.a"
)
