# Empty compiler generated dependencies file for bsbutil.
# This may be replaced when dependencies are built.
