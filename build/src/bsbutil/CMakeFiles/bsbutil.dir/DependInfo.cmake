
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bsbutil/ascii_plot.cpp" "src/bsbutil/CMakeFiles/bsbutil.dir/ascii_plot.cpp.o" "gcc" "src/bsbutil/CMakeFiles/bsbutil.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/bsbutil/csv.cpp" "src/bsbutil/CMakeFiles/bsbutil.dir/csv.cpp.o" "gcc" "src/bsbutil/CMakeFiles/bsbutil.dir/csv.cpp.o.d"
  "/root/repo/src/bsbutil/format.cpp" "src/bsbutil/CMakeFiles/bsbutil.dir/format.cpp.o" "gcc" "src/bsbutil/CMakeFiles/bsbutil.dir/format.cpp.o.d"
  "/root/repo/src/bsbutil/intervals.cpp" "src/bsbutil/CMakeFiles/bsbutil.dir/intervals.cpp.o" "gcc" "src/bsbutil/CMakeFiles/bsbutil.dir/intervals.cpp.o.d"
  "/root/repo/src/bsbutil/table.cpp" "src/bsbutil/CMakeFiles/bsbutil.dir/table.cpp.o" "gcc" "src/bsbutil/CMakeFiles/bsbutil.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
