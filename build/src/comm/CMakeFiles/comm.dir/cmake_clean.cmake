file(REMOVE_RECURSE
  "CMakeFiles/comm.dir/chunks.cpp.o"
  "CMakeFiles/comm.dir/chunks.cpp.o.d"
  "CMakeFiles/comm.dir/subcomm.cpp.o"
  "CMakeFiles/comm.dir/subcomm.cpp.o.d"
  "CMakeFiles/comm.dir/topology.cpp.o"
  "CMakeFiles/comm.dir/topology.cpp.o.d"
  "libcomm.a"
  "libcomm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
