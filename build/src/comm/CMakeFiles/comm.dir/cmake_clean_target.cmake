file(REMOVE_RECURSE
  "libcomm.a"
)
