# Empty compiler generated dependencies file for comm.
# This may be replaced when dependencies are built.
