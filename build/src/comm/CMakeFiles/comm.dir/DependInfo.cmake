
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/chunks.cpp" "src/comm/CMakeFiles/comm.dir/chunks.cpp.o" "gcc" "src/comm/CMakeFiles/comm.dir/chunks.cpp.o.d"
  "/root/repo/src/comm/subcomm.cpp" "src/comm/CMakeFiles/comm.dir/subcomm.cpp.o" "gcc" "src/comm/CMakeFiles/comm.dir/subcomm.cpp.o.d"
  "/root/repo/src/comm/topology.cpp" "src/comm/CMakeFiles/comm.dir/topology.cpp.o" "gcc" "src/comm/CMakeFiles/comm.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bsbutil/CMakeFiles/bsbutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
