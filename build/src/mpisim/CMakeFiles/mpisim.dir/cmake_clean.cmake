file(REMOVE_RECURSE
  "CMakeFiles/mpisim.dir/thread_comm.cpp.o"
  "CMakeFiles/mpisim.dir/thread_comm.cpp.o.d"
  "CMakeFiles/mpisim.dir/world.cpp.o"
  "CMakeFiles/mpisim.dir/world.cpp.o.d"
  "libmpisim.a"
  "libmpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
