
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/thread_comm.cpp" "src/mpisim/CMakeFiles/mpisim.dir/thread_comm.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/thread_comm.cpp.o.d"
  "/root/repo/src/mpisim/world.cpp" "src/mpisim/CMakeFiles/mpisim.dir/world.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/comm.dir/DependInfo.cmake"
  "/root/repo/build/src/bsbutil/CMakeFiles/bsbutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
