file(REMOVE_RECURSE
  "CMakeFiles/bench_allgather_variants.dir/bench_allgather_variants.cpp.o"
  "CMakeFiles/bench_allgather_variants.dir/bench_allgather_variants.cpp.o.d"
  "bench_allgather_variants"
  "bench_allgather_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allgather_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
