file(REMOVE_RECURSE
  "CMakeFiles/libbench_common.a"
)
