# Empty dependencies file for bench_fig8_sweep.
# This may be replaced when dependencies are built.
