file(REMOVE_RECURSE
  "CMakeFiles/bench_laki_trend.dir/bench_laki_trend.cpp.o"
  "CMakeFiles/bench_laki_trend.dir/bench_laki_trend.cpp.o.d"
  "bench_laki_trend"
  "bench_laki_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_laki_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
