# Empty dependencies file for bench_laki_trend.
# This may be replaced when dependencies are built.
