# Empty dependencies file for bench_host_processing.
# This may be replaced when dependencies are built.
