file(REMOVE_RECURSE
  "CMakeFiles/bench_host_processing.dir/bench_host_processing.cpp.o"
  "CMakeFiles/bench_host_processing.dir/bench_host_processing.cpp.o.d"
  "bench_host_processing"
  "bench_host_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
