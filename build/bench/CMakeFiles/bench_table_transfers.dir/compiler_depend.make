# Empty compiler generated dependencies file for bench_table_transfers.
# This may be replaced when dependencies are built.
