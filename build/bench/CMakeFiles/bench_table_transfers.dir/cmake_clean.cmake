file(REMOVE_RECURSE
  "CMakeFiles/bench_table_transfers.dir/bench_table_transfers.cpp.o"
  "CMakeFiles/bench_table_transfers.dir/bench_table_transfers.cpp.o.d"
  "bench_table_transfers"
  "bench_table_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
