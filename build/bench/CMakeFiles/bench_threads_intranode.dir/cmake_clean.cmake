file(REMOVE_RECURSE
  "CMakeFiles/bench_threads_intranode.dir/bench_threads_intranode.cpp.o"
  "CMakeFiles/bench_threads_intranode.dir/bench_threads_intranode.cpp.o.d"
  "bench_threads_intranode"
  "bench_threads_intranode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threads_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
