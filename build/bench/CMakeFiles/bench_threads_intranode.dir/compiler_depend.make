# Empty compiler generated dependencies file for bench_threads_intranode.
# This may be replaced when dependencies are built.
