# Empty dependencies file for bench_smp_npof2.
# This may be replaced when dependencies are built.
