file(REMOVE_RECURSE
  "CMakeFiles/bench_smp_npof2.dir/bench_smp_npof2.cpp.o"
  "CMakeFiles/bench_smp_npof2.dir/bench_smp_npof2.cpp.o.d"
  "bench_smp_npof2"
  "bench_smp_npof2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smp_npof2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
