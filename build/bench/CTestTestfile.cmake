# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_bench_table_transfers "/root/repo/build/bench/bench_table_transfers" "--quick")
set_tests_properties(bench_smoke_bench_table_transfers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;22;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_fig6_bandwidth "/root/repo/build/bench/bench_fig6_bandwidth" "--quick")
set_tests_properties(bench_smoke_bench_fig6_bandwidth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;23;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_fig7_speedup "/root/repo/build/bench/bench_fig7_speedup" "--quick")
set_tests_properties(bench_smoke_bench_fig7_speedup PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;24;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_fig8_sweep "/root/repo/build/bench/bench_fig8_sweep" "--quick")
set_tests_properties(bench_smoke_bench_fig8_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;25;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_ablation_eager "/root/repo/build/bench/bench_ablation_eager" "--quick")
set_tests_properties(bench_smoke_bench_ablation_eager PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;26;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_ablation_topology "/root/repo/build/bench/bench_ablation_topology" "--quick")
set_tests_properties(bench_smoke_bench_ablation_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;27;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_ablation_algorithms "/root/repo/build/bench/bench_ablation_algorithms" "--quick")
set_tests_properties(bench_smoke_bench_ablation_algorithms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;28;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_threads_intranode "/root/repo/build/bench/bench_threads_intranode" "--quick")
set_tests_properties(bench_smoke_bench_threads_intranode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;29;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_smp_npof2 "/root/repo/build/bench/bench_smp_npof2" "--quick")
set_tests_properties(bench_smoke_bench_smp_npof2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;30;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_laki_trend "/root/repo/build/bench/bench_laki_trend" "--quick")
set_tests_properties(bench_smoke_bench_laki_trend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;31;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_allgather_variants "/root/repo/build/bench/bench_allgather_variants" "--quick")
set_tests_properties(bench_smoke_bench_allgather_variants PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;32;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bench_host_processing "/root/repo/build/bench/bench_host_processing" "--quick")
set_tests_properties(bench_smoke_bench_host_processing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;12;add_test;/root/repo/bench/CMakeLists.txt;33;bsb_add_bench;/root/repo/bench/CMakeLists.txt;0;")
