# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bsbutil[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_coll[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_gather_reduce[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_datatype[1]_include.cmake")
include("/root/repo/build/tests/test_chaos[1]_include.cmake")
include("/root/repo/build/tests/test_conformance[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_facade[1]_include.cmake")
