
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mpisim.cpp" "tests/CMakeFiles/test_mpisim.dir/test_mpisim.cpp.o" "gcc" "tests/CMakeFiles/test_mpisim.dir/test_mpisim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/mpi_facade.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/coll.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/comm.dir/DependInfo.cmake"
  "/root/repo/build/src/bsbutil/CMakeFiles/bsbutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
