# Empty dependencies file for test_bsbutil.
# This may be replaced when dependencies are built.
