file(REMOVE_RECURSE
  "CMakeFiles/test_bsbutil.dir/test_bsbutil.cpp.o"
  "CMakeFiles/test_bsbutil.dir/test_bsbutil.cpp.o.d"
  "test_bsbutil"
  "test_bsbutil.pdb"
  "test_bsbutil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsbutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
