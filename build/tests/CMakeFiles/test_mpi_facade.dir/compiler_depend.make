# Empty compiler generated dependencies file for test_mpi_facade.
# This may be replaced when dependencies are built.
