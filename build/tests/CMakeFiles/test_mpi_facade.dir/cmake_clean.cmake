file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_facade.dir/test_mpi_facade.cpp.o"
  "CMakeFiles/test_mpi_facade.dir/test_mpi_facade.cpp.o.d"
  "test_mpi_facade"
  "test_mpi_facade.pdb"
  "test_mpi_facade[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
