file(REMOVE_RECURSE
  "CMakeFiles/test_gather_reduce.dir/test_gather_reduce.cpp.o"
  "CMakeFiles/test_gather_reduce.dir/test_gather_reduce.cpp.o.d"
  "test_gather_reduce"
  "test_gather_reduce.pdb"
  "test_gather_reduce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gather_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
