# Empty dependencies file for pi_reduce.
# This may be replaced when dependencies are built.
