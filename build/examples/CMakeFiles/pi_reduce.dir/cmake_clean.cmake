file(REMOVE_RECURSE
  "CMakeFiles/pi_reduce.dir/pi_reduce.cpp.o"
  "CMakeFiles/pi_reduce.dir/pi_reduce.cpp.o.d"
  "pi_reduce"
  "pi_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
