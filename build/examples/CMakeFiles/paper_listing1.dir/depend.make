# Empty dependencies file for paper_listing1.
# This may be replaced when dependencies are built.
