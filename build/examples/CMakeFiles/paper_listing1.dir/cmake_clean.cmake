file(REMOVE_RECURSE
  "CMakeFiles/paper_listing1.dir/paper_listing1.cpp.o"
  "CMakeFiles/paper_listing1.dir/paper_listing1.cpp.o.d"
  "paper_listing1"
  "paper_listing1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_listing1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
