# Empty dependencies file for matmul_bcast.
# This may be replaced when dependencies are built.
