file(REMOVE_RECURSE
  "CMakeFiles/matmul_bcast.dir/matmul_bcast.cpp.o"
  "CMakeFiles/matmul_bcast.dir/matmul_bcast.cpp.o.d"
  "matmul_bcast"
  "matmul_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
