# Empty compiler generated dependencies file for comm_split_npof2.
# This may be replaced when dependencies are built.
