file(REMOVE_RECURSE
  "CMakeFiles/comm_split_npof2.dir/comm_split_npof2.cpp.o"
  "CMakeFiles/comm_split_npof2.dir/comm_split_npof2.cpp.o.d"
  "comm_split_npof2"
  "comm_split_npof2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_split_npof2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
