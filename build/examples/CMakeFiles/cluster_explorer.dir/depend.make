# Empty dependencies file for cluster_explorer.
# This may be replaced when dependencies are built.
