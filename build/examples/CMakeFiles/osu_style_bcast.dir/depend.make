# Empty dependencies file for osu_style_bcast.
# This may be replaced when dependencies are built.
