file(REMOVE_RECURSE
  "CMakeFiles/osu_style_bcast.dir/osu_style_bcast.cpp.o"
  "CMakeFiles/osu_style_bcast.dir/osu_style_bcast.cpp.o.d"
  "osu_style_bcast"
  "osu_style_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osu_style_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
