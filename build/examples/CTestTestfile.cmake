# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;9;bsb_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matmul_bcast "/root/repo/build/examples/matmul_bcast")
set_tests_properties(example_matmul_bcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;bsb_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_comm_split_npof2 "/root/repo/build/examples/comm_split_npof2")
set_tests_properties(example_comm_split_npof2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;bsb_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_explorer "/root/repo/build/examples/cluster_explorer")
set_tests_properties(example_cluster_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;bsb_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pi_reduce "/root/repo/build/examples/pi_reduce")
set_tests_properties(example_pi_reduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;bsb_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_osu_style_bcast "/root/repo/build/examples/osu_style_bcast")
set_tests_properties(example_osu_style_bcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;bsb_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_listing1 "/root/repo/build/examples/paper_listing1")
set_tests_properties(example_paper_listing1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;bsb_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_halo_exchange "/root/repo/build/examples/halo_exchange")
set_tests_properties(example_halo_exchange PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;16;bsb_add_example;/root/repo/examples/CMakeLists.txt;0;")
