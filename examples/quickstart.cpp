// Quickstart: the 60-second tour of the library.
//
//  1. Spin up a thread-backed "cluster" (bsb::mpisim::World).
//  2. Broadcast a buffer with the public API (bsb::core::bcast), which
//     selects algorithms exactly like MPICH3 and uses the paper's tuned
//     ring allgather for long / npof2-medium messages.
//  3. Verify every rank got the data, and compare the message counts of
//     the native vs tuned broadcast.
//  4. Re-run the same broadcast through the cluster SIMULATOR to see the
//     bandwidth the paper's Figures report.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "bsbutil/format.hpp"
#include "bsbutil/rng.hpp"
#include "core/bcast.hpp"
#include "core/transfer_analysis.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"
#include "netsim/sim.hpp"

int main() {
  using namespace bsb;

  constexpr int kRanks = 10;           // non-power-of-two, like the paper's Fig. 5
  constexpr std::uint64_t kBytes = 1 << 20;  // a long message
  constexpr std::uint64_t kSeed = 2015;

  // --- 1+2: broadcast for real on the thread backend --------------------
  mpisim::World world(kRanks);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buffer(kBytes);
    if (comm.rank() == 0) fill_pattern(buffer, kSeed);

    core::bcast(comm, buffer, /*root=*/0);  // MPICH-style selection + tuned ring

    if (first_pattern_mismatch(buffer, kSeed) != buffer.size()) {
      std::cerr << "rank " << comm.rank() << ": data corrupt!\n";
      std::exit(1);
    }
  });
  std::cout << "broadcast of " << format_bytes(kBytes) << " to " << kRanks
            << " ranks: every rank verified OK\n";
  std::cout << "algorithm chosen: "
            << to_string(core::choose_bcast_algorithm(kBytes, kRanks)) << "\n";
  std::cout << "messages sent (tuned): " << world.total_msgs()
            << "  — the native ring would need "
            << core::native_ring_transfers(kRanks) +
                   core::scatter_transfers(kRanks, kBytes)
            << " (saving " << core::tuned_ring_savings(kRanks) << ", paper §IV)\n\n";

  // --- 4: the same broadcast on a simulated Cray-like cluster -----------
  netsim::SimSpec spec{Topology::hornet(kRanks), netsim::CostModel::hornet(),
                       /*iters=*/10};
  for (bool tuned : {false, true}) {
    core::BcastConfig cfg;
    cfg.use_tuned_ring = tuned;
    const auto result = netsim::simulate_program(
        kRanks, kBytes,
        [&](Comm& comm, std::span<std::byte> buffer) {
          core::bcast(comm, buffer, 0, cfg);
        },
        spec);
    std::cout << (tuned ? "MPI_Bcast_opt   " : "MPI_Bcast_native") << ": "
              << format_mbps(result.bandwidth) << " MB/s simulated ("
              << result.traffic.msgs << " msgs/iteration, "
              << result.traffic.inter_msgs << " inter-node)\n";
  }
  return 0;
}
