// Monte-Carlo estimation of pi with the typed reduction API: every rank
// samples independently (deterministic per-rank seeds), an allreduce sums
// hits and trials, then the broadcast ships a configuration update for a
// refinement round — a miniature of the iterate/synchronize pattern in
// solvers that motivates fast collectives.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bsbutil/format.hpp"
#include "bsbutil/rng.hpp"
#include "coll/reduce.hpp"
#include "core/bcast.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

int main() {
  using namespace bsb;

  constexpr int kRanks = 12;
  constexpr std::int64_t kSamplesPerRankRound = 200000;
  constexpr int kRounds = 3;

  mpisim::World world(kRanks);
  world.run([&](mpisim::ThreadComm& comm) {
    SplitMix64 rng(9000 + comm.rank());
    std::int64_t my_hits = 0, my_trials = 0;

    for (int round = 0; round < kRounds; ++round) {
      for (std::int64_t i = 0; i < kSamplesPerRankRound; ++i) {
        const double x = rng.next_double(), y = rng.next_double();
        my_hits += (x * x + y * y <= 1.0);
      }
      my_trials += kSamplesPerRankRound;

      // Global tally: one allreduce over {hits, trials}.
      std::vector<std::int64_t> tally{my_hits, my_trials};
      coll::allreduce(comm, std::span<std::int64_t>(tally), coll::SumOp{});

      if (comm.rank() == 0) {
        const double pi = 4.0 * static_cast<double>(tally[0]) /
                          static_cast<double>(tally[1]);
        std::cout << "round " << round + 1 << ": " << tally[1] << " samples, pi ~ "
                  << pi << " (err " << std::fabs(pi - M_PI) << ")\n";
      }

      // Root broadcasts the next round's configuration (here: a dummy
      // parameter block big enough to exercise the tuned broadcast).
      std::vector<std::byte> config(64 * 1024);
      if (comm.rank() == 0) fill_pattern(config, 77 + round);
      core::bcast(comm, config, 0);
      if (first_pattern_mismatch(config, 77 + round) != config.size()) {
        std::cerr << "config broadcast corrupt on rank " << comm.rank() << "\n";
        std::exit(1);
      }
    }

    // Cross-check: a binomial reduce to the root must agree with the
    // allreduce everyone already holds.
    std::vector<std::int64_t> mine{my_hits};
    std::vector<std::int64_t> root_sum(comm.rank() == 0 ? 1 : 0);
    coll::reduce_binomial(comm, std::span<const std::int64_t>(mine),
                          std::span<std::int64_t>(root_sum), coll::SumOp{}, 0);
    std::vector<std::int64_t> all{my_hits};
    coll::allreduce(comm, std::span<std::int64_t>(all), coll::SumOp{});
    if (comm.rank() == 0 && root_sum[0] != all[0]) {
      std::cerr << "reduce and allreduce disagree!\n";
      std::exit(1);
    }
  });

  std::cout << "reduce/allreduce/bcast pipeline verified across " << kRanks
            << " ranks, " << world.total_msgs() << " messages total\n";
  return 0;
}
