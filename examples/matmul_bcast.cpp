// Broadcast-driven parallel matrix multiplication — the workload class the
// paper's introduction motivates (HPL / basic linear algebra).
//
// C = A * B with A distributed by row blocks and B broadcast to all ranks:
// each rank owns rows [r*chunk, (r+1)*chunk) of A, receives the whole of B
// via the broadcast under test, computes its C rows, and rank 0 gathers
// them back. With a k x k matrix of doubles, B is 8*k*k bytes — a LONG
// message for k >= 256, i.e. exactly the regime where MPICH3 takes the
// scatter-ring-allgather path the paper tunes.
//
// The example runs the multiply twice (native and tuned broadcast),
// verifies the result against a serial multiply, and reports wall time and
// message counts.
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "bsbutil/format.hpp"
#include "bsbutil/rng.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "core/transfer_analysis.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

namespace {

using Matrix = std::vector<double>;  // row-major k x k

Matrix random_matrix(int k, std::uint64_t seed) {
  Matrix m(static_cast<std::size_t>(k) * k);
  bsb::SplitMix64 rng(seed);
  for (double& v : m) v = rng.next_double() - 0.5;
  return m;
}

Matrix serial_multiply(const Matrix& a, const Matrix& b, int k) {
  Matrix c(static_cast<std::size_t>(k) * k, 0.0);
  for (int i = 0; i < k; ++i) {
    for (int l = 0; l < k; ++l) {
      const double av = a[i * k + l];
      for (int j = 0; j < k; ++j) c[i * k + j] += av * b[l * k + j];
    }
  }
  return c;
}

std::span<std::byte> as_bytes(Matrix& m) {
  return {reinterpret_cast<std::byte*>(m.data()), m.size() * sizeof(double)};
}

}  // namespace

int main() {
  using namespace bsb;

  constexpr int kRanks = 9;  // non-power-of-two: the paper's mmsg-npof2 case
  constexpr int kDim = 270;  // divisible by 9; B is ~570 KB -> long message
  constexpr int kRowsPerRank = kDim / kRanks;

  const Matrix A = random_matrix(kDim, 1);
  const Matrix B = random_matrix(kDim, 2);
  const Matrix C_ref = serial_multiply(A, B, kDim);

  for (bool tuned : {false, true}) {
    mpisim::World world(kRanks);
    Matrix C(static_cast<std::size_t>(kDim) * kDim, 0.0);
    const auto t0 = std::chrono::steady_clock::now();

    world.run([&](mpisim::ThreadComm& comm) {
      const int r = comm.rank();
      // Rank 0 owns B initially; everyone receives it via the broadcast
      // under test.
      Matrix myB(static_cast<std::size_t>(kDim) * kDim);
      if (r == 0) myB = B;
      if (tuned) {
        core::bcast_scatter_ring_tuned(comm, as_bytes(myB), 0);
      } else {
        coll::bcast_scatter_ring_native(comm, as_bytes(myB), 0);
      }

      // Compute this rank's row block of C = A * B.
      const int row0 = r * kRowsPerRank;
      Matrix rows(static_cast<std::size_t>(kRowsPerRank) * kDim, 0.0);
      for (int i = 0; i < kRowsPerRank; ++i) {
        for (int l = 0; l < kDim; ++l) {
          const double av = A[(row0 + i) * kDim + l];
          for (int j = 0; j < kDim; ++j) {
            rows[i * kDim + j] += av * myB[l * kDim + j];
          }
        }
      }

      // Gather row blocks back to rank 0.
      auto rows_bytes = std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(rows.data()),
          rows.size() * sizeof(double));
      if (r == 0) {
        std::memcpy(C.data(), rows.data(), rows.size() * sizeof(double));
        std::vector<std::byte> recv(rows.size() * sizeof(double));
        for (int src = 1; src < kRanks; ++src) {
          comm.recv(recv, src, 99);
          std::memcpy(C.data() + static_cast<std::size_t>(src) * rows.size(),
                      recv.data(), recv.size());
        }
      } else {
        comm.send(rows_bytes, 0, 99);
      }
    });

    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    double max_err = 0;
    for (std::size_t i = 0; i < C.size(); ++i) {
      max_err = std::max(max_err, std::fabs(C[i] - C_ref[i]));
    }
    std::cout << (tuned ? "tuned " : "native") << " broadcast: C=" << kDim
              << "x" << kDim << " verified (max |err| = " << max_err
              << "), wall " << format_time(secs) << ", "
              << world.total_msgs() << " messages\n";
    if (max_err > 1e-9) {
      std::cerr << "VERIFICATION FAILED\n";
      return 1;
    }
  }
  std::cout << "\nmessage saving of the tuned ring at P=" << kRanks << ": "
            << core::tuned_ring_savings(kRanks) << " of "
            << core::native_ring_transfers(kRanks)
            << " ring transfers (paper §IV)\n";
  return 0;
}
