// Non-power-of-two communicators in the wild — the paper's §I observation:
// "The occurrence of non-power-of-two processes can be due to explicit user
// request at job-launching, particularly on systems where the core count
// per node is already non-power-of-two, or due to splitting on the
// communicator in the applications."
//
// This example starts 24 ranks (one Hornet node's worth — already npof2),
// splits them the way a solver might (a 2/3 vs 1/3 work split), and
// broadcasts a medium message inside each subgroup. The 16-rank group takes
// MPICH3's recursive-doubling path; the 8-rank group is small; but the
// FULL communicator (24 = npof2) and the 2/3 split would hit the ring path
// the paper tunes — the example prints which algorithm each broadcast used
// and the transfers saved.
#include <iostream>
#include <numeric>
#include <vector>

#include "bsbutil/format.hpp"
#include "bsbutil/rng.hpp"
#include "comm/subcomm.hpp"
#include "core/bcast.hpp"
#include "core/transfer_analysis.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

int main() {
  using namespace bsb;

  constexpr int kRanks = 24;          // one Hornet node: already npof2
  constexpr std::uint64_t kBytes = 100000;  // medium message (12288..524287)
  constexpr std::uint64_t kSeed = 7;

  std::cout << "algorithm per communicator for a " << format_bytes(kBytes)
            << " broadcast:\n";
  for (int n : {24, 16, 8}) {
    const auto algo = core::choose_bcast_algorithm(kBytes, n);
    std::cout << "  " << n << " ranks -> " << to_string(algo);
    if (algo == core::BcastAlgorithm::ScatterRingTuned) {
      std::cout << "  (ring transfers " << core::native_ring_transfers(n)
                << " -> " << core::tuned_ring_transfers(n) << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\n";

  mpisim::World world(kRanks);
  world.run([&](mpisim::ThreadComm& comm) {
    const int me = comm.rank();

    // 1. Broadcast on the FULL communicator: 24 ranks, medium message —
    //    the mmsg-npof2 case, i.e. the tuned ring path.
    std::vector<std::byte> buffer(kBytes);
    if (me == 0) fill_pattern(buffer, kSeed);
    core::bcast(comm, buffer, 0);
    if (first_pattern_mismatch(buffer, kSeed) != buffer.size()) {
      std::cerr << "rank " << me << ": full-comm broadcast corrupt\n";
      std::exit(1);
    }

    // 2. Application-style split: ranks 0..15 solve the fluid domain,
    //    16..23 the structure domain. Each subgroup broadcasts its own
    //    boundary data.
    const bool fluid_group = me < 16;
    std::vector<int> members(fluid_group ? 16 : 8);
    std::iota(members.begin(), members.end(), fluid_group ? 0 : 16);
    SubComm sub(comm, members, /*context=*/fluid_group ? 1 : 2);

    std::vector<std::byte> boundary(kBytes);
    const std::uint64_t seed = kSeed + (fluid_group ? 100 : 200);
    if (sub.rank() == 0) fill_pattern(boundary, seed);
    core::bcast(sub, boundary, 0);
    if (first_pattern_mismatch(boundary, seed) != boundary.size()) {
      std::cerr << "rank " << me << ": subgroup broadcast corrupt\n";
      std::exit(1);
    }
  });

  std::cout << "full-communicator (24 ranks) + split-communicator (16 + 8) "
               "broadcasts all verified OK\n"
            << "total messages on the runtime: " << world.total_msgs() << "\n";
  return 0;
}
