// Cluster explorer: a small CLI over the simulation pipeline. Pick a rank
// count, message size, node shape and algorithm; get simulated bandwidth,
// per-level traffic, and the event-table view for small runs.
//
//   ./build/examples/cluster_explorer                      # defaults
//   ./build/examples/cluster_explorer -p 129 -n 1048576 -c 24 -i 10
//   ./build/examples/cluster_explorer -p 10 -n 640 -a tuned --events
//
// Algorithms: native | tuned | binomial | rd | pipeline | auto
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bsbutil/format.hpp"
#include "comm/chunks.hpp"
#include "coll/bcast_binomial.hpp"
#include "coll/bcast_ring_pipelined.hpp"
#include "coll/bcast_scatter_rd.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "core/bcast.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "netsim/sim.hpp"
#include "trace/event_table.hpp"
#include "trace/record.hpp"

using namespace bsb;

namespace {

void usage(const char* prog) {
  std::cerr << "usage: " << prog
            << " [-p ranks] [-n bytes] [-c cores/node] [-i iters]"
               " [-a native|tuned|binomial|rd|pipeline|auto] [--events]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  int nranks = 64;
  std::uint64_t nbytes = 1 << 20;
  int cores = 24;
  int iters = 8;
  std::string algo = "auto";
  bool events = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "-p") nranks = std::atoi(next());
    else if (arg == "-n") nbytes = std::strtoull(next(), nullptr, 10);
    else if (arg == "-c") cores = std::atoi(next());
    else if (arg == "-i") iters = std::atoi(next());
    else if (arg == "-a") algo = next();
    else if (arg == "--events") events = true;
    else usage(argv[0]);
  }
  if (nranks < 1 || cores < 1 || iters < 1) usage(argv[0]);

  const trace::RankProgram program = [&](Comm& comm, std::span<std::byte> buffer) {
    if (algo == "native") coll::bcast_scatter_ring_native(comm, buffer, 0);
    else if (algo == "tuned") core::bcast_scatter_ring_tuned(comm, buffer, 0);
    else if (algo == "binomial") coll::bcast_binomial(comm, buffer, 0);
    else if (algo == "rd") coll::bcast_scatter_rd(comm, buffer, 0);
    else if (algo == "pipeline") coll::bcast_ring_pipelined(comm, buffer, 0, 65536);
    else if (algo == "auto") core::bcast(comm, buffer, 0);
    else usage(argv[0]);
  };

  const Topology topo(nranks, cores, Placement::Block);
  netsim::SimSpec spec{topo, netsim::CostModel::hornet(), iters};

  std::cout << "cluster   : " << topo.describe() << "\n"
            << "cost model: " << spec.cost.describe() << "\n"
            << "workload  : bcast of " << format_bytes(nbytes) << " x " << iters
            << " iterations, algorithm '" << algo << "'";
  if (algo == "auto") {
    std::cout << " -> " << to_string(core::choose_bcast_algorithm(nbytes, nranks));
  }
  std::cout << "\n\n";

  const auto result = netsim::simulate_program(nranks, nbytes, program, spec);
  std::cout << "simulated time : " << format_time(result.seconds) << "\n"
            << "bandwidth      : " << format_mbps(result.bandwidth) << " MB/s\n"
            << "throughput     : " << format_fixed(result.throughput, 1)
            << " bcasts/s\n"
            << "traffic/iter   : " << result.traffic.msgs << " msgs ("
            << result.traffic.intra_msgs << " intra-node, "
            << result.traffic.inter_msgs << " inter-node), "
            << format_bytes(result.traffic.bytes) << "\n";

  if (events) {
    if (nranks > 16) {
      std::cout << "\n(--events only rendered for <= 16 ranks)\n";
    } else {
      const auto sched = trace::record_schedule(nranks, nbytes, program);
      std::cout << "\nper-step events (s<chunk>><dst>, r<chunk><<src>):\n"
                << trace::render_event_table(
                       sched, ChunkLayout(nbytes, nranks).scatter_size());
    }
  }
  return 0;
}
