// The paper's Listing 1, transcribed: MPI_Bcast_opt written against the
// MPI facade with the pseudo-code's own structure and variable names
// (relative_rank, scatter_size, mask, step, flag, j/jnext, left/right),
// plus the binomial_tree scatter it calls. Runs on the thread backend,
// verifies the broadcast result, and cross-checks the message count
// against the library's native implementation and closed-form analysis —
// i.e. the paper's code and our reproduction agree operation for
// operation.
//
// Deviations from the listing, all mechanical:
//  * the listing's (count, length) pair is simplified to nbytes;
//  * MPI_Get_count supplies the scatter's received size, as MPICH does;
//  * C++ spans/vectors replace raw char* arithmetic.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <tuple>
#include <vector>

#include "core/transfer_analysis.hpp"
#include "mpi/mpi.hpp"
#include "mpisim/world.hpp"

using namespace bsb::mpi;

namespace {

// "See Figure 1&2 for details" — the binomial-tree scatter of Listing 1,
// written as MPICH's scatter_for_bcast does it.
void binomial_tree(char* buffer, int nbytes, int root, MPI_Comm comm) {
  int rank, comm_size;
  MPI_Comm_rank(comm, &rank);
  MPI_Comm_size(comm, &comm_size);
  const int relative_rank = (rank >= root) ? rank - root : rank - root + comm_size;
  const int scatter_size = (nbytes + comm_size - 1) / comm_size;

  int curr_size = (rank == root) ? nbytes : 0;
  int mask = 0x1;
  while (mask < comm_size) {
    if (relative_rank & mask) {
      int src = rank - mask;
      if (src < 0) src += comm_size;
      const int recv_size = nbytes - relative_rank * scatter_size;
      if (recv_size <= 0) {
        curr_size = 0;
      } else {
        MPI_Status status;
        MPI_Recv(buffer + relative_rank * scatter_size, recv_size, MPI_BYTE,
                 src, 0, comm, &status);
        MPI_Get_count(&status, MPI_BYTE, &curr_size);
      }
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative_rank + mask < comm_size) {
      const int send_size = curr_size - scatter_size * mask;
      if (send_size > 0) {
        int dst = rank + mask;
        if (dst >= comm_size) dst -= comm_size;
        MPI_Send(buffer + scatter_size * (relative_rank + mask), send_size,
                 MPI_BYTE, dst, 0, comm);
        curr_size -= send_size;
      }
    }
    mask >>= 1;
  }
}

// Listing 1: void MPI_Bcast_opt(char *buffer, ...).
void MPI_Bcast_opt(char* buffer, int nbytes, int root, MPI_Comm comm) {
  int rank, comm_size;
  /* Get the process rank and communicator size */
  MPI_Comm_rank(comm, &rank);
  MPI_Comm_size(comm, &comm_size);
  if (comm_size == 1) return;

  /* If the process 0 is not the root, then each process needs to get the
     relative_rank with respect to the root */
  const int relative_rank =
      (rank >= root) ? rank - root : rank - root + comm_size;

  /* Root divides the source data into pieces of comm_size and disseminates
     them to the other processes in a binomial tree */
  const int scatter_size = (nbytes + comm_size - 1) / comm_size;
  /* See Figure 1&2 for details */
  binomial_tree(buffer, nbytes, root, comm);

  /* --- The tuned ring allgather algorithm --- */
  /* Each process computes the absolute left node and right node in the
     virtual ring */
  const int left = (comm_size + rank - 1) % comm_size;
  const int right = (rank + 1) % comm_size;
  int j = rank;
  int jnext = left;

  /* Added code: Each process calculates the step based on which it decides
     to either send or receive inside the ring allgather operation */
  int step = 1;
  int flag = 0;
  int mask = 1;
  while (mask < comm_size) mask <<= 1;  // 2^ceil(log2(comm_size))
  while (mask > 1) {
    const int right_relative_rank = (relative_rank + 1 < comm_size)
                                        ? relative_rank + 1
                                        : relative_rank + 1 - comm_size;
    if (!(right_relative_rank % mask)) {
      step = mask;
      if (right_relative_rank + mask > comm_size) {
        step = comm_size - right_relative_rank;
      }
      /* Indicate only receive */
      flag = 1;
      break;
    }
    if (!(relative_rank % mask)) {
      step = mask;
      if (relative_rank + mask > comm_size) step = comm_size - relative_rank;
      /* Indicate only send */
      flag = 0;
      break;
    }
    mask >>= 1;
  }

  /* Collect data chunks in (comm_size-1) steps at most */
  for (int i = 1; i < comm_size; i++) {
    const int rel_j = (j - root + comm_size) % comm_size;
    const int rel_jnext = (jnext - root + comm_size) % comm_size;
    int left_count = std::min(scatter_size, nbytes - rel_jnext * scatter_size);
    if (left_count < 0) left_count = 0;
    const int left_disp = std::min(rel_jnext * scatter_size, nbytes);
    int right_count = std::min(scatter_size, nbytes - rel_j * scatter_size);
    if (right_count < 0) right_count = 0;
    const int right_disp = std::min(rel_j * scatter_size, nbytes);

    /* Added code: Judge if the process has reached the point that
       indicates either send-only or receive-only */
    if (step <= comm_size - i) {
      MPI_Status status;
      MPI_Sendrecv(buffer + right_disp, right_count, MPI_BYTE, right, 0,
                   buffer + left_disp, left_count, MPI_BYTE, left, 0, comm,
                   &status);
    } else {
      if (flag) {
        /* Receive point */
        MPI_Status status;
        MPI_Recv(buffer + left_disp, left_count, MPI_BYTE, left, 0, comm,
                 &status);
      } else {
        /* Send point */
        MPI_Send(buffer + right_disp, right_count, MPI_BYTE, right, 0, comm);
      }
    }
    j = jnext;
    jnext = (comm_size + jnext - 1) % comm_size;
  }
}

}  // namespace

int main() {
  // The paper's Figure 5 scenario (10 processes) plus a non-zero root and a
  // ragged size that exercises the clamped trailing chunks.
  const std::tuple<int, int, int> cases[] = {
      {10, 100000, 0}, {8, 65536, 3}, {13, 99991, 7}};
  for (const auto& [P, nbytes, root] : cases) {
    std::atomic<int> bad{0};
    const RunStats stats =
        bsb::mpi::run(P, [&, P = P, nbytes = nbytes, root = root] {
          int rank;
          MPI_Comm_rank(MPI_COMM_WORLD, &rank);
          std::vector<char> buffer(nbytes);
          if (rank == root) {
            for (int i = 0; i < nbytes; ++i) {
              buffer[i] = static_cast<char>(i * 31 + 7);
            }
          }
          MPI_Bcast_opt(buffer.data(), nbytes, root, MPI_COMM_WORLD);
          for (int i = 0; i < nbytes; ++i) {
            if (buffer[i] != static_cast<char>(i * 31 + 7)) {
              ++bad;
              break;
            }
          }
        });
    const std::uint64_t expected =
        bsb::core::scatter_transfers(P, nbytes) +
        bsb::core::tuned_ring_transfers(P);
    const bool count_ok = stats.msgs == expected;
    std::printf(
        "Listing 1 on P=%2d, %6d bytes, root %d: data %s, %llu messages "
        "(closed-form analysis predicts %llu) %s\n",
        P, nbytes, root, bad.load() == 0 ? "OK" : "CORRUPT",
        static_cast<unsigned long long>(stats.msgs),
        static_cast<unsigned long long>(expected),
        count_ok ? "[match]" : "[MISMATCH]");
    if (bad.load() != 0 || !count_ok) return 1;
  }
  std::printf("the paper's pseudo-code and this library agree, message for "
              "message.\n");
  return 0;
}
