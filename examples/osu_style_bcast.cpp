// OSU-micro-benchmark-style broadcast latency table on the thread backend —
// the output format cluster users know from osu_bcast, produced by the
// library's own runtime with real data movement and per-round payload
// verification. Algorithm selection is MPICH-style with the paper's tuned
// ring (the library default); set BSB_BCAST_USE_TUNED_RING=0 to rerun with
// the stock enclosed ring (head-to-head comparisons belong to the
// simulator benches — wall-clock on a shared machine is noisy).
//
//   ./build/examples/osu_style_bcast [ranks] [max_size]
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bsbutil/format.hpp"
#include "bsbutil/rng.hpp"
#include "core/bcast.hpp"
#include "core/tuning.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

using namespace bsb;

namespace {

// Average wall time per broadcast over `iters` repetitions after an
// untimed warmup; best of 3 runs to shed scheduler noise.
double time_bcast(int P, std::uint64_t nbytes, int iters,
                  const core::BcastConfig& cfg, bool& ok) {
  double best = 0;
  std::atomic<bool> all_ok{true};
  for (int run = 0; run < 3; ++run) {
    mpisim::World world(P);
    double seconds = 0;
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> buf(nbytes);
      core::bcast(comm, buf, 0, cfg);  // warmup, untimed
      comm.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < iters; ++i) {
        if (comm.rank() == 0) fill_pattern(buf, i);
        core::bcast(comm, buf, 0, cfg);
      }
      comm.barrier();
      if (comm.rank() == 0) {
        seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count() /
            iters;
      }
      // Verify the final round's payload everywhere.
      if (first_pattern_mismatch(buf, iters - 1) != buf.size()) all_ok = false;
    });
    if (run == 0 || seconds < best) best = seconds;
  }
  ok = ok && all_ok.load();
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int P = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::uint64_t max_size = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                          : (1u << 20);
  if (P < 1) return 2;

  const core::BcastConfig cfg = core::load_bcast_config_from_env();
  std::cout << "# OSU-style MPI_Bcast latency, " << P
            << " ranks (thread backend, real data)\n"
            << "# ring variant: " << (cfg.use_tuned_ring ? "tuned" : "native")
            << "  (override via BSB_BCAST_USE_TUNED_RING)\n"
            << "# size          avg-latency     algorithm\n";

  bool ok = true;
  for (std::uint64_t size = 1024; size <= max_size; size *= 4) {
    const int iters = size <= 65536 ? 20 : 5;
    const double t = time_bcast(P, size, iters, cfg, ok);
    std::printf("%-12s  %12s      %s\n", format_bytes(size).c_str(),
                format_time(t).c_str(),
                to_string(core::choose_bcast_algorithm(size, P, cfg)));
  }
  if (!ok) {
    std::cerr << "DATA VERIFICATION FAILED\n";
    return 1;
  }
  std::cout << "# all payloads verified on every rank\n";
  return 0;
}
