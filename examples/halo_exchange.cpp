// 1-D domain-decomposed Jacobi stencil with halo exchange — the canonical
// MPI application pattern, here exercising sendrecv, the derived-datatype
// layer (strided column halos of a row-major local grid) and an allreduce
// convergence check. Each rank owns a vertical strip of a 2-D grid and
// trades boundary columns with its neighbours every iteration.
//
// The numeric result is verified against a serial computation of the same
// stencil, so the example doubles as an integration test (it runs under
// ctest like every example).
#include <cmath>
#include <iostream>
#include <vector>

#include "coll/reduce.hpp"
#include "comm/datatype.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

namespace {

constexpr int kRanks = 6;
constexpr int kRows = 32;          // global rows
constexpr int kColsPerRank = 8;    // strip width per rank
constexpr int kIters = 25;
constexpr int kCols = kRanks * kColsPerRank;

// Fixed boundary condition: a deterministic "temperature" on the frame.
double boundary(int r, int c) {
  return std::sin(0.3 * r) + std::cos(0.2 * c);
}

// Serial reference: Jacobi iterations on the full grid.
std::vector<double> serial_reference() {
  std::vector<double> grid(kRows * kCols, 0.0), next(kRows * kCols, 0.0);
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      if (r == 0 || r == kRows - 1 || c == 0 || c == kCols - 1) {
        grid[r * kCols + c] = boundary(r, c);
      }
    }
  }
  next = grid;
  for (int it = 0; it < kIters; ++it) {
    for (int r = 1; r < kRows - 1; ++r) {
      for (int c = 1; c < kCols - 1; ++c) {
        next[r * kCols + c] =
            0.25 * (grid[(r - 1) * kCols + c] + grid[(r + 1) * kCols + c] +
                    grid[r * kCols + c - 1] + grid[r * kCols + c + 1]);
      }
    }
    std::swap(grid, next);
  }
  return grid;
}

}  // namespace

int main() {
  using namespace bsb;

  const std::vector<double> reference = serial_reference();
  std::atomic<int> failures{0};

  mpisim::World world(kRanks);
  world.run([&](mpisim::ThreadComm& comm) {
    const int me = comm.rank();
    // Local strip with one ghost column on each side: kRows x (width + 2),
    // row-major. Column 0 and width+1 are halos.
    const int width = kColsPerRank;
    const int stride = width + 2;
    std::vector<double> grid(kRows * stride, 0.0), next;

    auto at = [&](std::vector<double>& g, int r, int lc) -> double& {
      return g[r * stride + lc];
    };
    const int col0 = me * width;  // global column of local column 1

    // Boundary conditions on the global frame.
    for (int r = 0; r < kRows; ++r) {
      for (int lc = 0; lc <= width + 1; ++lc) {
        const int gc = col0 + lc - 1;
        if (gc < 0 || gc >= kCols) continue;
        if (r == 0 || r == kRows - 1 || gc == 0 || gc == kCols - 1) {
          at(grid, r, lc) = boundary(r, gc);
        }
      }
    }
    next = grid;

    // Strided column layouts for the halo exchange (MPI_Type_vector-like).
    const Datatype own_left = Datatype::vector(kRows, 1, stride, 1);
    const Datatype own_right = Datatype::vector(kRows, 1, stride, width);
    const Datatype ghost_left = Datatype::vector(kRows, 1, stride, 0);
    const Datatype ghost_right = Datatype::vector(kRows, 1, stride, width + 1);

    for (int it = 0; it < kIters; ++it) {
      // Exchange halos with both neighbours (edge ranks skip the frame side).
      const std::span<double> g(grid);
      if (me + 1 < kRanks) {  // right neighbour: send my right col, recv ghost
        std::vector<double> out = own_right.pack(std::span<const double>(g));
        std::vector<double> in(kRows);
        comm.sendrecv({reinterpret_cast<const std::byte*>(out.data()),
                       out.size() * sizeof(double)},
                      me + 1, 0,
                      {reinterpret_cast<std::byte*>(in.data()),
                       in.size() * sizeof(double)},
                      me + 1, 1);
        ghost_right.unpack(std::span<const double>(in), g);
      }
      if (me - 1 >= 0) {  // left neighbour
        std::vector<double> out = own_left.pack(std::span<const double>(g));
        std::vector<double> in(kRows);
        comm.sendrecv({reinterpret_cast<const std::byte*>(out.data()),
                       out.size() * sizeof(double)},
                      me - 1, 1,
                      {reinterpret_cast<std::byte*>(in.data()),
                       in.size() * sizeof(double)},
                      me - 1, 0);
        ghost_left.unpack(std::span<const double>(in), g);
      }

      // Jacobi update on interior points of this strip.
      for (int r = 1; r < kRows - 1; ++r) {
        for (int lc = 1; lc <= width; ++lc) {
          const int gc = col0 + lc - 1;
          if (gc == 0 || gc == kCols - 1) continue;  // fixed frame
          at(next, r, lc) = 0.25 * (at(grid, r - 1, lc) + at(grid, r + 1, lc) +
                                    at(grid, r, lc - 1) + at(grid, r, lc + 1));
        }
      }
      std::swap(grid, next);

      // Convergence metric across ranks (exercises allreduce each iter).
      double local_sq = 0;
      for (int r = 0; r < kRows; ++r) {
        for (int lc = 1; lc <= width; ++lc) {
          const double d = at(grid, r, lc) - at(next, r, lc);
          local_sq += d * d;
        }
      }
      std::vector<double> residual{local_sq};
      coll::allreduce(comm, std::span<double>(residual), coll::SumOp{});
      if (me == 0 && (it == 0 || it == kIters - 1)) {
        std::printf("iter %2d: global residual %.6e\n", it,
                    std::sqrt(residual[0]));
      }
    }

    // Verify my strip against the serial reference.
    for (int r = 0; r < kRows; ++r) {
      for (int lc = 1; lc <= width; ++lc) {
        const int gc = col0 + lc - 1;
        if (std::fabs(at(grid, r, lc) - reference[r * kCols + gc]) > 1e-12) {
          ++failures;
        }
      }
    }
  });

  if (failures.load() != 0) {
    std::cerr << "halo exchange: " << failures.load()
              << " grid points diverge from the serial reference\n";
    return 1;
  }
  std::cout << "halo exchange: all " << kRows << "x" << kCols
            << " grid points match the serial reference after " << kIters
            << " iterations on " << kRanks << " ranks\n";
  return 0;
}
