// bsb-fuzz: differential fuzzing and fault-injection driver for every
// broadcast/allgather path in the repository.
//
//   bsb-fuzz --cases=5000 --time-budget=55        # bounded random sweep
//   bsb-fuzz --seed=7 --case=123                  # replay one generator draw
//   bsb-fuzz --variant=bcast-scatter-ring-tuned --ranks=10 --bytes=65536
//                                                 # replay an explicit config
//   bsb-fuzz --selftest                           # prove the detectors fire
//
// Exit status: 0 = clean (or self-test detected the sabotage), 1 = at
// least one discrepancy (reproducers printed), 2 = usage error.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "fuzz/harness.hpp"

namespace {

using bsb::fuzz::FuzzCase;
using bsb::fuzz::HarnessOptions;

struct CliArgs {
  HarnessOptions harness;
  std::optional<FuzzCase> explicit_case;
  bool selftest = false;
  bool list_only = false;
};

void usage(std::ostream& os) {
  os << "bsb-fuzz — differential fuzzing of all bcast/allgather paths\n\n"
        "Sweep mode:\n"
        "  --seed=N            master seed (default 1)\n"
        "  --cases=N           configurations to run (default 1000)\n"
        "  --case=K            replay exactly generator draw K (implies --cases=1)\n"
        "  --time-budget=S     stop after S wall seconds (default unbounded)\n"
        "  --min-ranks=N --max-ranks=N   process-count range (default 2..64)\n"
        "  --max-bytes=N       message-size cap (default 655360)\n"
        "  --watchdog=S        per-operation deadlock watchdog (default 20)\n"
        "  --max-failures=N    stop after N failures (default 1)\n"
        "  --no-faults         disable fault-injection sampling\n"
        "  --no-shrink         report failures without shrinking\n"
        "  --list              print sampled configs without running them\n"
        "  --verbose           print each case before running it\n"
        "  --selftest          corrupt RingPlan.step and verify detection\n\n"
        "Explicit replay (prints of shrunk reproducers use these):\n"
        "  --variant=NAME --ranks=N [--root=R] [--bytes=B] [--eager=E]\n"
        "  [--segment=S] [--smp-cores=C] [--smsg=B] [--mmsg=B] [--tuned=0|1]\n"
        "  [--op=sum|max] [--dtype=i32|f64] [--skew-seed=N] [--nodes=4,4,3]\n"
        "  [--fault-seed=N --delay-prob=P --max-delay-us=U --reorder-prob=P\n"
        "   --force-rndv-prob=P --force-eager-prob=P]\n";
}

std::optional<CliArgs> parse(int argc, char** argv) {
  CliArgs a;
  FuzzCase ec;  // populated when --variant appears
  bool have_variant = false;
  bool cases_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    const auto num = [&] { return std::strtoull(val.c_str(), nullptr, 10); };
    const auto dnum = [&] { return std::strtod(val.c_str(), nullptr); };
    if (key == "--help" || key == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (key == "--seed") {
      a.harness.seed = num();
    } else if (key == "--cases") {
      a.harness.cases = num();
      cases_given = true;
    } else if (key == "--case") {
      a.harness.first_case = num();
      if (!cases_given) a.harness.cases = 1;
    } else if (key == "--time-budget") {
      a.harness.time_budget_seconds = dnum();
    } else if (key == "--min-ranks") {
      a.harness.gen.min_ranks = static_cast<int>(num());
    } else if (key == "--max-ranks") {
      a.harness.gen.max_ranks = static_cast<int>(num());
    } else if (key == "--max-bytes") {
      a.harness.gen.max_bytes = num();
    } else if (key == "--watchdog") {
      a.harness.gen.watchdog_seconds = dnum();
    } else if (key == "--max-failures") {
      a.harness.max_failures = num();
    } else if (key == "--no-faults") {
      a.harness.gen.faults = false;
    } else if (key == "--no-shrink") {
      a.harness.shrink = false;
    } else if (key == "--list") {
      a.list_only = true;
    } else if (key == "--verbose") {
      a.harness.verbose = true;
    } else if (key == "--selftest") {
      a.selftest = true;
    } else if (key == "--variant") {
      const auto v = bsb::fuzz::variant_from_string(val);
      if (!v) {
        std::cerr << "unknown variant '" << val << "'\n";
        return std::nullopt;
      }
      ec.variant = *v;
      have_variant = true;
    } else if (key == "--ranks") {
      ec.nranks = static_cast<int>(num());
    } else if (key == "--root") {
      ec.root = static_cast<int>(num());
    } else if (key == "--bytes") {
      ec.nbytes = num();
    } else if (key == "--eager") {
      ec.eager_threshold = static_cast<std::size_t>(num());
    } else if (key == "--segment") {
      ec.segment_bytes = num();
    } else if (key == "--smp-cores") {
      ec.smp_cores_per_node = static_cast<int>(num());
    } else if (key == "--smsg") {
      ec.smsg_limit = num();
    } else if (key == "--mmsg") {
      ec.mmsg_limit = num();
    } else if (key == "--tuned") {
      ec.use_tuned_ring = num() != 0;
    } else if (key == "--op") {
      const auto op = bsb::coll::red_op_from_string(val);
      if (!op) {
        std::cerr << "unknown reduction op '" << val << "'\n";
        return std::nullopt;
      }
      ec.red_op = *op;
    } else if (key == "--dtype") {
      const auto dt = bsb::coll::red_dtype_from_string(val);
      if (!dt) {
        std::cerr << "unknown reduction dtype '" << val << "'\n";
        return std::nullopt;
      }
      ec.red_dtype = *dt;
    } else if (key == "--skew-seed") {
      ec.skew_seed = num();
    } else if (key == "--nodes") {
      ec.node_sizes.clear();
      std::size_t pos = 0;
      while (pos <= val.size()) {
        const std::size_t comma = std::min(val.find(',', pos), val.size());
        const std::string tok = val.substr(pos, comma - pos);
        char* end = nullptr;
        const long size = std::strtol(tok.c_str(), &end, 10);
        if (tok.empty() || *end != '\0' || size < 1) {
          std::cerr << "--nodes wants a comma-separated size list, got '"
                    << val << "'\n";
          return std::nullopt;
        }
        ec.node_sizes.push_back(static_cast<int>(size));
        pos = comma + 1;
      }
    } else if (key == "--fault-seed") {
      ec.faults.enabled = true;
      ec.faults.seed = num();
    } else if (key == "--delay-prob") {
      ec.faults.enabled = true;
      ec.faults.delay_prob = dnum();
    } else if (key == "--max-delay-us") {
      ec.faults.enabled = true;
      ec.faults.max_delay_us = static_cast<std::uint32_t>(num());
    } else if (key == "--reorder-prob") {
      ec.faults.enabled = true;
      ec.faults.reorder_prob = dnum();
    } else if (key == "--force-rndv-prob") {
      ec.faults.enabled = true;
      ec.faults.force_rendezvous_prob = dnum();
    } else if (key == "--force-eager-prob") {
      ec.faults.enabled = true;
      ec.faults.force_eager_prob = dnum();
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (have_variant) {
    if (ec.nranks < 2) {
      std::cerr << "--variant replay needs --ranks=N (>= 2)\n";
      return std::nullopt;
    }
    ec.watchdog_seconds = a.harness.gen.watchdog_seconds;
    if (ec.variant == bsb::fuzz::Variant::BcastHier) {
      // Refit the node shape (and derive one from --smp-cores if --nodes
      // was omitted) so the Topology constructor's sum invariant holds.
      ec = bsb::fuzz::normalize_case(std::move(ec));
    }
    a.explicit_case = ec;
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) {
    usage(std::cerr);
    return 2;
  }
  const CliArgs& a = *parsed;

  if (a.selftest) {
    return bsb::fuzz::run_selftest(a.harness, std::cout) ? 0 : 1;
  }

  if (a.explicit_case) {
    const FuzzCase& c = *a.explicit_case;
    std::cout << "replay: " << bsb::fuzz::describe(c) << "\n";
    const bsb::fuzz::RunOutcome o = bsb::fuzz::run_case(c);
    if (o.ok) {
      std::cout << "OK (" << o.messages << " messages)\n";
      return 0;
    }
    std::cout << "FAIL: " << o.detail << "\n";
    if (a.harness.shrink) {
      const bsb::fuzz::ShrinkResult s =
          bsb::fuzz::shrink_case(c, bsb::fuzz::Sabotage::None);
      std::cout << "shrunk (" << s.reruns
                << " reruns): " << bsb::fuzz::describe(s.minimal)
                << "\nshrunk reproduce: "
                << bsb::fuzz::explicit_reproducer(s.minimal) << "\n";
    }
    return 1;
  }

  if (a.list_only) {
    for (std::uint64_t i = 0; i < a.harness.cases; ++i) {
      const FuzzCase c = bsb::fuzz::sample_case(
          a.harness.seed, a.harness.first_case + i, a.harness.gen);
      std::cout << "case " << c.index << ": " << bsb::fuzz::describe(c) << "\n";
    }
    return 0;
  }

  const bsb::fuzz::HarnessReport rep = bsb::fuzz::run_fuzz(a.harness, std::cout);
  return rep.failures == 0 ? 0 : 1;
}
