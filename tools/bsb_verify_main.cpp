// bsb-verify: static schedule verifier for every broadcast/allgather path.
// Records each variant's schedule symbolically (no threads) and proves
// deadlock freedom, buffer safety, dataflow coverage, zero redundancy on
// the tuned paths, and closed-form transfer counts — at process counts the
// threaded oracle cannot reach.
//
//   bsb-verify                                # default sweep to P=4096
//   bsb-verify --pmax=64 --verbose            # quick bounded sweep
//   bsb-verify --variant=bcast-scatter-ring-tuned --plist=8,10,4096
//   bsb-verify --json=verify.json             # machine-readable artifact
//   bsb-verify --selftest                     # prove the detectors fire
//   bsb-verify --demo-broken=cycle            # witness demo, exits nonzero
//
// Exit status: 0 = all properties proven (or self-test passed), 1 = at
// least one property failed, 2 = usage error.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "coll/plan.hpp"
#include "coll/tags.hpp"
#include "fuzz/runner.hpp"
#include "trace/record.hpp"
#include "trace/schedule.hpp"
#include "verify/equiv.hpp"
#include "verify/tagspace.hpp"
#include "verify/verifier.hpp"

namespace {

using bsb::trace::Op;
using bsb::trace::OpKind;
using bsb::trace::Schedule;
using bsb::verify::CaseResult;
using bsb::verify::SweepOptions;
using bsb::verify::VerifyOptions;

void usage(std::ostream& os) {
  os << "bsb-verify — static proofs for all bcast/allgather schedules\n\n"
        "Sweep mode (default):\n"
        "  --pmax=N            largest process count (default 4096)\n"
        "  --plist=a,b,c       explicit process counts (overrides default list)\n"
        "  --sizes=a,b         buffer sizes in bytes (default 12288,524288)\n"
        "  --eager=a,b         eager thresholds to prove deadlock freedom\n"
        "                      under (default 0,65536; 0 = pure rendezvous)\n"
        "  --variant=NAME      restrict to one variant (default: all)\n"
        "  --all-roots-upto=N  try every root for P <= N (default 10)\n"
        "  --no-closed-forms   skip the dense closed-form pass over [2,pmax]\n"
        "  --json=PATH         write a bsb-verify-v1 JSON artifact\n"
        "  --verbose           print every proven case\n\n"
        "Single case:\n"
        "  --variant=NAME --ranks=N [--root=R] [--bytes=B] [--skew-seed=N]\n"
        "  (shape is snapped to the variant's block / reduction grain)\n\n"
        "Detector checks:\n"
        "  --selftest          sabotage + broken schedules must be caught\n"
        "  --demo-broken=KIND  verify a deliberately broken schedule and\n"
        "                      exit nonzero; KIND = cycle | race |\n"
        "                      truncation | redundant-rs | hier-doublecopy |\n"
        "                      rotation | tagspace\n";
}

std::vector<std::uint64_t> parse_u64_list(const std::string& val) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < val.size()) {
    const std::size_t comma = val.find(',', pos);
    const std::string tok = val.substr(pos, comma - pos);
    out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Both ranks receive before they send: no message can ever complete, the
/// canonical head-to-head deadlock. Balanced channels, so matching is fine
/// — only the happens-before analysis can reject it.
Schedule broken_cycle() {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 256;
  s.ops.resize(2);
  const int tag = bsb::coll::tags::kRingAllgather;
  Op r0, s0, r1, s1;
  r0.kind = OpKind::Recv;
  r0.src = 1;
  r0.recv_tag = tag;
  r0.recv_cap = 128;
  r0.recv_off = 128;
  s0.kind = OpKind::Send;
  s0.dst = 1;
  s0.send_tag = tag;
  s0.send_bytes = 128;
  s0.send_off = 0;
  s.ops[0] = {r0, s0};
  r1.kind = OpKind::Recv;
  r1.src = 0;
  r1.recv_tag = tag;
  r1.recv_cap = 128;
  r1.recv_off = 0;
  s1.kind = OpKind::Send;
  s1.dst = 0;
  s1.send_tag = tag;
  s1.send_bytes = 128;
  s1.send_off = 128;
  s.ops[1] = {r1, s1};
  return s;
}

/// Rank 0's sendrecv reads [0,128) while writing [64,192) — the incoming
/// payload can clobber bytes still being sent. Deadlock-free, so only the
/// buffer-safety pass can reject it.
Schedule broken_race() {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 256;
  s.ops.resize(2);
  const int tag = bsb::coll::tags::kRingAllgather;
  Op a, b;
  a.kind = OpKind::SendRecv;
  a.dst = 1;
  a.send_tag = tag;
  a.send_bytes = 128;
  a.send_off = 0;
  a.src = 1;
  a.recv_tag = tag;
  a.recv_cap = 128;
  a.recv_off = 64;  // overlaps the send interval [0,128)
  s.ops[0] = {a};
  b.kind = OpKind::SendRecv;
  b.dst = 0;
  b.send_tag = tag;
  b.send_bytes = 128;
  b.send_off = 128;
  b.src = 0;
  b.recv_tag = tag;
  b.recv_cap = 128;
  b.recv_off = 0;  // disjoint from its own send interval: rank 1 is clean
  s.ops[1] = {b};
  return s;
}

/// Sender ships 128 bytes into a 64-byte receive: MPI truncation error.
Schedule broken_truncation() {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 256;
  s.ops.resize(2);
  const int tag = bsb::coll::tags::kBcastBinomial;
  Op snd, rcv;
  snd.kind = OpKind::Send;
  snd.dst = 1;
  snd.send_tag = tag;
  snd.send_bytes = 128;
  snd.send_off = 0;
  s.ops[0] = {snd};
  rcv.kind = OpKind::Recv;
  rcv.src = 0;
  rcv.recv_tag = tag;
  rcv.recv_cap = 64;
  rcv.recv_off = 0;
  s.ops[1] = {rcv};
  return s;
}

bool has_failure_with_prefix(const CaseResult& res, const std::string& pre) {
  for (const std::string& f : res.failures) {
    if (f.rfind(pre, 0) == 0) return true;
  }
  return false;
}

/// A root-canonical tuned-ring plan with ONE peer swapped (the cache-bug
/// the rotation prover exists to catch), plus the honest root-4 recording
/// it must be proven against.
bsb::verify::RotationReport sabotaged_rotation_report() {
  bsb::fuzz::FuzzCase c;
  c.variant = bsb::fuzz::Variant::BcastScatterRingTuned;
  c.nranks = 9;
  c.nbytes = 12288;
  c.root = 4;
  c = bsb::fuzz::normalize_case(c);
  const Schedule fresh = bsb::trace::record_schedule(
      c.nranks, c.nbytes, bsb::fuzz::make_rank_body(c));
  bsb::fuzz::FuzzCase canonical = c;
  canonical.root = 0;
  bsb::coll::Plan plan = bsb::coll::compile_plan(
      c.nranks, c.nbytes, 0, "bcast-scatter-ring-tuned",
      bsb::fuzz::make_rank_body(canonical));
  for (auto& steps : plan.steps) {
    for (auto& step : steps) {
      if (step.kind == bsb::coll::PlanStep::Kind::Send) {
        step.dst = (step.dst + 1) % plan.nranks;  // misroute one message
        return bsb::verify::prove_plan_rotation(plan, c.root, fresh);
      }
    }
  }
  return bsb::verify::prove_plan_rotation(plan, c.root, fresh);
}

int run_selftest(std::ostream& out) {
  VerifyOptions structural;  // hand-built schedules have no dataflow contract
  structural.check_dataflow = false;
  int bad = 0;
  const auto expect = [&](bool cond, const char* what) {
    out << (cond ? "  ok   " : "  FAIL ") << what << "\n";
    if (!cond) ++bad;
  };

  const CaseResult cyc =
      bsb::verify::verify_schedule(broken_cycle(), 0, structural);
  expect(!cyc.ok && has_failure_with_prefix(cyc, "deadlock"),
         "injected receive-receive cycle is rejected with a witness");
  if (!cyc.failures.empty()) out << "    " << cyc.failures.front() << "\n";

  const CaseResult race =
      bsb::verify::verify_schedule(broken_race(), 0, structural);
  expect(!race.ok && has_failure_with_prefix(race, "race"),
         "overlapping sendrecv intervals are rejected as a buffer race");

  const CaseResult trunc =
      bsb::verify::verify_schedule(broken_truncation(), 0, structural);
  expect(!trunc.ok && has_failure_with_prefix(trunc, "match"),
         "truncated receive is rejected by matching");

  bsb::fuzz::FuzzCase tuned;
  tuned.variant = bsb::fuzz::Variant::AllgatherRingTuned;
  tuned.nranks = 8;
  tuned.nbytes = 4096;
  tuned.root = 3;
  const CaseResult sab = bsb::verify::verify_case(
      tuned, VerifyOptions{}, bsb::fuzz::Sabotage::RingPlanStepOffByOne);
  expect(!sab.ok, "sabotaged tuned-ring plan (step off by one) is rejected");

  const CaseResult clean = bsb::verify::verify_case(tuned);
  expect(clean.ok, "the un-sabotaged configuration still proves clean");

  bsb::fuzz::FuzzCase rs;
  rs.variant = bsb::fuzz::Variant::ReduceScatterBlocks;
  rs.nranks = 8;
  rs.nbytes = 8192;
  rs.root = 5;
  rs = bsb::fuzz::normalize_case(rs);
  const CaseResult rs_sab = bsb::verify::verify_case(
      rs, VerifyOptions{}, bsb::fuzz::Sabotage::ReduceScatterDoubleFinal);
  expect(!rs_sab.ok && has_failure_with_prefix(rs_sab, "redundancy"),
         "double-sent reduce_scatter finals yield a redundancy witness");
  if (!rs_sab.failures.empty()) out << "    " << rs_sab.failures.front() << "\n";

  const CaseResult rs_clean = bsb::verify::verify_case(rs);
  expect(rs_clean.ok && rs_clean.redundant_msgs == 0,
         "the un-sabotaged blocked reduce_scatter proves zero redundancy");

  bsb::fuzz::FuzzCase agv;
  agv.variant = bsb::fuzz::Variant::AllgathervRingTuned;
  agv.nranks = 10;
  agv.nbytes = 12288;
  agv.root = 2;
  agv.skew_seed = 0xfeedu;
  const CaseResult agv_clean = bsb::verify::verify_case(agv);
  expect(agv_clean.ok && agv_clean.redundant_bytes == 0,
         "the tuned skewed allgatherv proves zero redundant bytes");

  bsb::fuzz::FuzzCase hier;
  hier.variant = bsb::fuzz::Variant::BcastHier;
  hier.nranks = 11;
  hier.nbytes = 12288;
  hier.root = 5;
  hier.node_sizes = {4, 4, 3};
  const CaseResult hier_sab = bsb::verify::verify_case(
      hier, VerifyOptions{}, bsb::fuzz::Sabotage::HierDoubleFanout);
  expect(!hier_sab.ok && has_failure_with_prefix(hier_sab, "redundancy"),
         "double-delivered hier fan-out yields a redundancy witness");
  if (!hier_sab.failures.empty()) {
    out << "    " << hier_sab.failures.front() << "\n";
  }

  const CaseResult hier_clean = bsb::verify::verify_case(hier);
  expect(hier_clean.ok && hier_clean.redundant_bytes == 0,
         "the ragged-shape tuned hier broadcast proves zero redundant bytes");
  expect(hier_clean.shm_checked && hier_clean.eager_bounds_checked,
         "the hier case runs the shm-pool and eager-bound proofs");

  expect(clean.rotation_checked && clean.rotation_full_graph,
         "the clean tuned ring proves rotation equivalence (full graph)");

  const bsb::verify::RotationReport rot_sab = sabotaged_rotation_report();
  expect(!rot_sab.ok && rot_sab.divergence.has_value(),
         "a swapped peer in the cached plan yields a divergence witness");
  if (!rot_sab.ok) out << "    " << rot_sab.to_string() << "\n";

  const bsb::verify::TagSpaceReport ts = bsb::verify::lint_tag_space();
  expect(ts.ok, "the registered tag space passes the whole-program lint");

  bsb::verify::TagSpaceOptions planted;
  planted.extra_base_tags = {33};
  const bsb::verify::TagSpaceReport ts_bad = bsb::verify::lint_tag_space(planted);
  expect(!ts_bad.ok && !ts_bad.witnesses.empty(),
         "a planted 33-wide base tag yields window and collision witnesses");
  if (!ts_bad.witnesses.empty()) out << "    " << ts_bad.witnesses.front() << "\n";

  out << (bad == 0 ? "selftest: all detectors fired\n"
                   : "selftest: DETECTOR GAPS\n");
  return bad == 0 ? 0 : 1;
}

int run_demo_broken(const std::string& kind, std::ostream& out) {
  if (kind == "rotation") {
    // A cached root-0 plan with one peer swapped: the rotated execution
    // would misroute a message, and the prover names the exact (rank,
    // step, field) where the rotation stops being an isomorphism.
    const bsb::verify::RotationReport rep = sabotaged_rotation_report();
    out << rep.to_string() << "\n";
    return rep.ok ? 0 : 1;
  }
  if (kind == "tagspace") {
    // A planted base tag of 33 (> kCtxStride - 1): it escapes the remap
    // window, collides across adjacent contexts (33 + 32c == 1 + 32(c+1))
    // and, used raw, aliases base tag 1 of in-flight operation #1.
    bsb::verify::TagSpaceOptions planted;
    planted.extra_base_tags = {33};
    const bsb::verify::TagSpaceReport rep = bsb::verify::lint_tag_space(planted);
    out << rep.to_string() << "\n";
    return rep.ok ? 0 : 1;
  }
  if (kind == "hier-doublecopy") {
    // A hier broadcast whose leaders deliver the buffer twice to every
    // non-leader: values stay correct, but the coverage pass must price
    // every second delivery as fully redundant and the transfer counts
    // break against the closed form.
    bsb::fuzz::FuzzCase c;
    c.variant = bsb::fuzz::Variant::BcastHier;
    c.nranks = 11;
    c.nbytes = 65536;
    c.root = 5;
    c.node_sizes = {4, 4, 3};
    const CaseResult res = bsb::verify::verify_case(
        c, VerifyOptions{}, bsb::fuzz::Sabotage::HierDoubleFanout);
    out << res.summary() << "\n";
    return res.ok ? 0 : 1;
  }
  if (kind == "redundant-rs") {
    // A blocked reduce_scatter that ships every finished chunk twice: the
    // values stay correct, but the reduce-flow pass must price the second
    // delivery as redundant and fail the zero-redundancy expectation.
    bsb::fuzz::FuzzCase c;
    c.variant = bsb::fuzz::Variant::ReduceScatterBlocks;
    c.nranks = 8;
    c.nbytes = 8192;
    c = bsb::fuzz::normalize_case(c);
    const CaseResult res = bsb::verify::verify_case(
        c, VerifyOptions{}, bsb::fuzz::Sabotage::ReduceScatterDoubleFinal);
    out << res.summary() << "\n";
    return res.ok ? 0 : 1;
  }
  Schedule sched;
  if (kind == "cycle") {
    sched = broken_cycle();
  } else if (kind == "race") {
    sched = broken_race();
  } else if (kind == "truncation") {
    sched = broken_truncation();
  } else {
    std::cerr << "unknown --demo-broken kind '" << kind << "'\n";
    return 2;
  }
  VerifyOptions opt;
  opt.check_dataflow = false;
  const CaseResult res = bsb::verify::verify_schedule(sched, 0, opt);
  out << res.summary() << "\n";
  return res.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // Large-P sweeps allocate multi-GB schedule/match arrays per case. Keep
  // freed memory in the heap between cases instead of returning it to the
  // kernel: re-faulting those pages otherwise dominates the run time.
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  mallopt(M_TRIM_THRESHOLD, -1);
#endif
  SweepOptions opt;
  std::optional<std::string> json_path;
  std::optional<std::string> demo_broken;
  bool selftest = false;
  int single_ranks = 0;
  int single_root = 0;
  std::uint64_t single_bytes = 65536;
  std::uint64_t single_skew_seed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : arg.substr(eq + 1);
    const auto num = [&] { return std::strtoull(val.c_str(), nullptr, 10); };
    if (key == "--help" || key == "-h") {
      usage(std::cout);
      return 0;
    } else if (key == "--pmax") {
      opt.pmax = static_cast<int>(num());
    } else if (key == "--plist") {
      for (const std::uint64_t p : parse_u64_list(val)) {
        opt.plist.push_back(static_cast<int>(p));
      }
    } else if (key == "--sizes") {
      opt.sizes = parse_u64_list(val);
    } else if (key == "--eager") {
      opt.eager_thresholds = parse_u64_list(val);
    } else if (key == "--variant") {
      const auto v = bsb::fuzz::variant_from_string(val);
      if (!v) {
        std::cerr << "unknown variant '" << val << "'\n";
        return 2;
      }
      opt.only = *v;
    } else if (key == "--all-roots-upto") {
      opt.all_roots_upto = static_cast<int>(num());
    } else if (key == "--no-closed-forms") {
      opt.closed_form_density = false;
    } else if (key == "--json") {
      json_path = val;
    } else if (key == "--verbose") {
      opt.verbose = true;
    } else if (key == "--selftest") {
      selftest = true;
    } else if (key == "--demo-broken") {
      demo_broken = val;
    } else if (key == "--ranks") {
      single_ranks = static_cast<int>(num());
    } else if (key == "--root") {
      single_root = static_cast<int>(num());
    } else if (key == "--bytes") {
      single_bytes = num();
    } else if (key == "--skew-seed") {
      single_skew_seed = num();
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (selftest) return run_selftest(std::cout);
  if (demo_broken) return run_demo_broken(*demo_broken, std::cout);

  if (single_ranks > 0) {
    if (!opt.only) {
      std::cerr << "--ranks needs --variant=NAME\n";
      return 2;
    }
    bsb::fuzz::FuzzCase c;
    c.variant = *opt.only;
    c.nranks = single_ranks;
    c.root = single_root;
    c.nbytes = single_bytes;
    c.segment_bytes = 4096;
    c.smp_cores_per_node = 4;
    c.skew_seed = single_skew_seed;
    c = bsb::fuzz::normalize_case(c);
    VerifyOptions vopt;
    vopt.eager_thresholds = opt.eager_thresholds;
    const CaseResult res = bsb::verify::verify_case(c, vopt);
    std::cout << res.summary() << "\n";
    return res.ok ? 0 : 1;
  }

  const bsb::verify::SweepReport report = bsb::verify::run_sweep(opt, std::cout);
  if (json_path) bsb::verify::write_verify_json(*json_path, opt, report);
  std::cout << "verified " << report.cases << " configuration(s), "
            << report.proofs << " properties, " << report.schedules_ops
            << " schedule ops in " << report.elapsed_seconds << "s: "
            << (report.ok() ? "ALL PROVEN" : "FAILURES") << "\n";
  if (!report.closed_form_failures.empty()) {
    for (const std::string& f : report.closed_form_failures) {
      std::cout << "closed-form FAIL: " << f << "\n";
    }
  }
  return report.ok() ? 0 : 1;
}
