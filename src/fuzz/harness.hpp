// Top-level fuzz loop: sample cases from (seed, index), run each through
// the differential runner, and on failure shrink to a minimal reproducer.
// Drives both the `bsb-fuzz` CLI and the bounded tier-1 CTest target.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "fuzz/case.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/shrink.hpp"

namespace bsb::fuzz {

struct HarnessOptions {
  std::uint64_t seed = 1;
  std::uint64_t first_case = 0;  // replay a single case: first_case=K, cases=1
  std::uint64_t cases = 1000;
  /// Stop early once this much wall time is spent (0 = unbounded).
  double time_budget_seconds = 0.0;
  GeneratorOptions gen;
  /// Self-test: corrupt the tuned-ring plan and PROVE the detectors fire.
  Sabotage sabotage = Sabotage::None;
  bool shrink = true;
  std::uint64_t max_failures = 1;  // stop after this many failures
  bool verbose = false;
};

struct HarnessReport {
  std::uint64_t cases_run = 0;
  std::uint64_t failures = 0;
  std::uint64_t messages = 0;  // total messages moved by threaded runs
  double elapsed_seconds = 0.0;
  std::array<std::uint64_t, kNumVariants> per_variant{};
  /// First failure, when any: the generator-draw reproducer and the shrunk
  /// explicit config.
  std::string first_reproducer;
  std::string first_shrunk;
  std::string first_detail;
};

/// Run the loop, streaming progress and failure reports to `out`.
HarnessReport run_fuzz(const HarnessOptions& opt, std::ostream& out);

/// Run `opt` as a self-test: returns true iff the sabotaged run was
/// detected as failing AND shrinking produced a still-failing reproducer.
bool run_selftest(HarnessOptions opt, std::ostream& out);

}  // namespace bsb::fuzz
