// Automatic config shrinking: given a failing fuzz case, greedily apply
// reductions (drop the fault plan, halve/decrement the process count, halve
// the message size, zero the root, default the eager threshold) for as long
// as the reduced config still fails, so the reported reproducer is the
// smallest configuration the harness can find that exhibits the bug.
#pragma once

#include <string>

#include "fuzz/case.hpp"
#include "fuzz/runner.hpp"

namespace bsb::fuzz {

struct ShrinkResult {
  FuzzCase minimal;           // smallest still-failing configuration
  std::string minimal_detail; // its failure message
  int reruns = 0;             // run_case invocations spent shrinking
};

/// `failing` must fail under run_case(failing, sabotage); the result's
/// `minimal` is guaranteed to still fail. Bounded by `max_reruns`.
ShrinkResult shrink_case(const FuzzCase& failing, Sabotage sabotage,
                         int max_reruns = 48);

}  // namespace bsb::fuzz
