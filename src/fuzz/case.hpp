// Fuzz-case model: one randomly sampled configuration of a broadcast or
// allgather run — variant, process count, message size, root, runtime
// thresholds and an optional fault-injection plan — derived purely from
// (master seed, case index) so every case replays bit-identically from its
// one-line reproducer (`bsb-fuzz --seed=S --case=K`).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coll/reduce_ops.hpp"
#include "mpisim/world.hpp"

namespace bsb::fuzz {

/// Every broadcast/allgather/reduction implementation in src/coll and
/// src/core.
enum class Variant : std::uint8_t {
  BcastBinomial,
  BcastScatterRd,          // requires power-of-two ranks
  BcastScatterRingNative,
  BcastScatterRingTuned,   // the paper's MPI_Bcast_opt
  BcastRingPipelined,
  BcastSmp,
  BcastAuto,               // core::bcast dispatcher with sampled thresholds
  BcastPersistent,         // core::PersistentBcast plan + execute
  AllgatherRingNative,
  AllgatherRingTuned,
  AllgatherRecursiveDoubling,  // requires power-of-two ranks
  AllgatherBruck,
  AllgatherNeighborExchange,   // requires an even rank count
  // Ownership-aware reduction family (the paper's trick beyond bcast).
  ReduceScatterRing,           // plain ring: each rank keeps its own chunk
  ReduceScatterBlocks,         // ring + ancestor delivery: binomial blocks
  AllreduceRsAgNative,         // blocks reduce_scatter + ENCLOSED allgather
  AllreduceRsAgTuned,          // blocks reduce_scatter + tuned allgather
  AllreduceRecursiveDoubling,  // requires power-of-two ranks; rootless
  // Skewed-block (allgatherv) generalization.
  AllgathervRingNative,
  AllgathervRingTuned,
  // Locality-aware comparison point.
  AllgatherBruckHier,          // rootless; uses smp_cores_per_node
  // Nonblocking front-end: kIbcastDepth core::ibcast operations (staggered
  // roots) in flight at once, driven by the per-rank progress engine.
  IbcastConcurrent,
  // Hierarchical broadcast over an explicit ragged node shape: leaders run
  // the scatter-ring over their own sub-communicator, then single-copy
  // fan-out within each node (src/coll/hier).
  BcastHier,
};

inline constexpr int kNumVariants = 23;

/// Broadcasts IbcastConcurrent keeps in flight per rank (primary buffer
/// plus depth-1 companions with staggered roots).
inline constexpr int kIbcastDepth = 3;

const char* to_string(Variant v) noexcept;
std::optional<Variant> variant_from_string(const std::string& name);

/// All variants, in enum order (for round-robin assignment and CLI help).
std::span<const Variant> all_variants() noexcept;

/// Smallest adjustment of `nranks` (downwards) that satisfies the
/// variant's structural requirement (power-of-two / even / >= 2).
int fit_ranks(Variant v, int nranks) noexcept;

/// Variant classification, shared by the generator, the shrinker and the
/// verifier so shape constraints stay in one place.
/// Reduction family: needs (op, dtype) and nbytes % (P * elem) == 0.
bool is_reduce_family(Variant v) noexcept;
/// Skewed-block family: needs skew_seed; ANY nbytes is legal.
bool is_allgatherv(Variant v) noexcept;
/// Uniform-block allgathers: need nbytes % P == 0.
bool is_block_allgather(Variant v) noexcept;
/// Variants with no root parameter (root pinned to 0).
bool is_rootless(Variant v) noexcept;

struct FuzzCase;

/// Re-establish a case's structural invariants after a field change: clamp
/// nranks to the variant's requirement, wrap/pin the root, and snap nbytes
/// to the block or reduction grain. Shared by the shrinker, the verifier
/// sweep and the CLI replay paths.
FuzzCase normalize_case(FuzzCase c);

/// One fully specified run. `seed`/`index` identify the generator draw the
/// case came from; after shrinking they are kept so the report can still
/// name the originating draw while the fields describe the shrunk config.
struct FuzzCase {
  std::uint64_t seed = 0;
  std::uint64_t index = 0;
  Variant variant = Variant::BcastScatterRingTuned;
  int nranks = 2;
  int root = 0;
  std::uint64_t nbytes = 0;         // collective buffer bytes (total)
  std::uint64_t segment_bytes = 0;  // BcastRingPipelined only
  int smp_cores_per_node = 0;       // BcastSmp only
  // Sampled selector thresholds (BcastAuto / BcastPersistent).
  std::uint64_t smsg_limit = 12288;
  std::uint64_t mmsg_limit = 524288;
  bool use_tuned_ring = true;
  // Runtime knobs.
  std::size_t eager_threshold = 65536;
  double watchdog_seconds = 20.0;
  mpisim::FaultConfig faults;  // enabled => hostile interleavings
  // Reduction family only: sampled operator and element type.
  coll::RedOp red_op = coll::RedOp::Sum;
  coll::RedDtype red_dtype = coll::RedDtype::F64;
  // Allgatherv family only: seed of the skewed block-size vector
  // (comm/vchunks.hpp's skewed_counts shared with the verifier and tests).
  std::uint64_t skew_seed = 0;
  // BcastHier only: per-node rank counts (sum == nranks, every entry >= 1).
  // Empty means "derive a uniform shape from smp_cores_per_node".
  std::vector<int> node_sizes;
};

/// Bounds and feature toggles for the generator.
struct GeneratorOptions {
  int min_ranks = 2;
  int max_ranks = 64;
  std::uint64_t max_bytes = 640 * 1024;
  bool faults = true;           // sample fault plans for ~40% of cases
  double watchdog_seconds = 20.0;
};

/// Deterministically sample case `index` of run `seed`.
FuzzCase sample_case(std::uint64_t seed, std::uint64_t index,
                     const GeneratorOptions& opt);

/// Human-readable one-line summary of the configuration.
std::string describe(const FuzzCase& c);

/// The exact replay command for the generator draw that produced `c`.
std::string reproducer(const FuzzCase& c);

/// Replay command with every field spelled out (survives shrinking, which
/// leaves (seed, index) pointing at the original draw).
std::string explicit_reproducer(const FuzzCase& c);

}  // namespace bsb::fuzz
