#include "fuzz/runner.hpp"

#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "bsbutil/math.hpp"

#include "bsbutil/error.hpp"
#include "bsbutil/rng.hpp"
#include "coll/allgather_bruck.hpp"
#include "coll/allgather_neighbor_exchange.hpp"
#include "coll/allgather_recursive_doubling.hpp"
#include "coll/allgather_ring_native.hpp"
#include "coll/bcast_binomial.hpp"
#include "coll/bcast_ring_pipelined.hpp"
#include "coll/bcast_scatter_rd.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "coll/allgather_bruck_hier.hpp"
#include "coll/allgatherv_ring.hpp"
#include "coll/bcast_smp.hpp"
#include "coll/hier/bcast_hier.hpp"
#include "coll/hier/topology.hpp"
#include "coll/reduce_ops.hpp"
#include "coll/reduce_scatter_ring.hpp"
#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"
#include "comm/topology.hpp"
#include "comm/vchunks.hpp"
#include "core/allgather_ring_tuned.hpp"
#include "core/allgatherv_ring_tuned.hpp"
#include "core/allreduce_rsag.hpp"
#include "core/bcast.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "core/persistent_bcast.hpp"
#include "core/ring_plan.hpp"
#include "core/transfer_analysis.hpp"
#include "core/icoll.hpp"
#include "mpisim/progress.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"
#include "trace/counters.hpp"
#include "trace/match.hpp"
#include "trace/record.hpp"

namespace bsb::fuzz {

namespace {

core::RingPlanFn plan_fn_for(Sabotage sabotage) {
  if (sabotage == Sabotage::RingPlanStepOffByOne) {
    return [](int rel, int P) {
      core::RingPlan plan = core::compute_ring_plan(rel, P);
      plan.step += 1;  // the bug class the pairing invariant forbids
      return plan;
    };
  }
  return core::compute_ring_plan;
}

core::BcastConfig selector_config(const FuzzCase& c) {
  core::BcastConfig cfg;
  cfg.smsg_limit = c.smsg_limit;
  cfg.mmsg_limit = c.mmsg_limit;
  cfg.use_tuned_ring = c.use_tuned_ring;
  return cfg;
}

/// Pattern seed for the case's oracle; initial garbage uses its complement
/// so untouched bytes are always detected.
std::uint64_t oracle_seed(const FuzzCase& c) noexcept {
  return c.seed * 0x9e3779b97f4a7c15ULL + c.index * 0x100000001b3ULL + 1;
}

/// Distinct oracle seed for IbcastConcurrent's k-th companion broadcast
/// (k in [1, kIbcastDepth)); the primary buffer keeps oracle_seed itself.
std::uint64_t companion_seed(std::uint64_t ps, int k) noexcept {
  return ps ^ (0xc2b2ae3d27d4eb4fULL * static_cast<std::uint64_t>(k));
}

}  // namespace

RankBody make_rank_body(const FuzzCase& c, Sabotage sabotage) {
  const int root = c.root;
  switch (c.variant) {
    case Variant::BcastBinomial:
      return [root](Comm& comm, std::span<std::byte> buf) {
        coll::bcast_binomial(comm, buf, root);
      };
    case Variant::BcastScatterRd:
      return [root](Comm& comm, std::span<std::byte> buf) {
        coll::bcast_scatter_rd(comm, buf, root);
      };
    case Variant::BcastScatterRingNative:
      return [root](Comm& comm, std::span<std::byte> buf) {
        coll::bcast_scatter_ring_native(comm, buf, root);
      };
    case Variant::BcastScatterRingTuned:
      return [root, sabotage](Comm& comm, std::span<std::byte> buf) {
        const ChunkLayout layout(buf.size(), comm.size());
        coll::scatter_binomial(comm, buf, root, layout);
        core::allgather_ring_tuned(comm, buf, root, layout, plan_fn_for(sabotage));
      };
    case Variant::BcastRingPipelined:
      return [root, seg = c.segment_bytes](Comm& comm, std::span<std::byte> buf) {
        coll::bcast_ring_pipelined(comm, buf, root, seg);
      };
    case Variant::BcastSmp:
      return [root, cores = c.smp_cores_per_node](Comm& comm,
                                                  std::span<std::byte> buf) {
        const Topology topo(comm.size(), cores, Placement::Block);
        coll::bcast_smp(comm, buf, root, topo,
                        [](Comm& leaders, std::span<std::byte> b, int r) {
                          core::bcast_scatter_ring_tuned(leaders, b, r);
                        });
      };
    case Variant::BcastAuto:
      return [root, cfg = selector_config(c)](Comm& comm,
                                              std::span<std::byte> buf) {
        core::bcast(comm, buf, root, cfg);
      };
    case Variant::BcastPersistent:
      return [root, cfg = selector_config(c)](Comm& comm,
                                              std::span<std::byte> buf) {
        const core::PersistentBcast plan(comm, buf.size(), root, cfg);
        plan.execute(buf);
      };
    case Variant::AllgatherRingNative:
      return [root](Comm& comm, std::span<std::byte> buf) {
        const ChunkLayout layout(buf.size(), comm.size());
        coll::allgather_ring_native(comm, buf, root, layout);
      };
    case Variant::AllgatherRingTuned:
      return [root, sabotage](Comm& comm, std::span<std::byte> buf) {
        const ChunkLayout layout(buf.size(), comm.size());
        core::allgather_ring_tuned(comm, buf, root, layout, plan_fn_for(sabotage));
      };
    case Variant::AllgatherRecursiveDoubling:
      return [root](Comm& comm, std::span<std::byte> buf) {
        const ChunkLayout layout(buf.size(), comm.size());
        coll::allgather_recursive_doubling(comm, buf, root, layout);
      };
    case Variant::AllgatherBruck:
      return [](Comm& comm, std::span<std::byte> buf) {
        coll::allgather_bruck(comm, buf, buf.size() / comm.size());
      };
    case Variant::AllgatherNeighborExchange:
      return [](Comm& comm, std::span<std::byte> buf) {
        coll::allgather_neighbor_exchange(comm, buf,
                                          buf.size() / comm.size());
      };
    case Variant::ReduceScatterRing:
      return [root, op = c.red_op, dt = c.red_dtype](Comm& comm,
                                                     std::span<std::byte> buf) {
        coll::reduce_scatter_ring(comm, buf, root, op, dt);
      };
    case Variant::ReduceScatterBlocks:
      return [root, op = c.red_op, dt = c.red_dtype,
              sabotage](Comm& comm, std::span<std::byte> buf) {
        coll::ReduceScatterBlocksOptions opts;
        opts.sabotage_double_final = sabotage == Sabotage::ReduceScatterDoubleFinal;
        coll::reduce_scatter_blocks_ring(comm, buf, root, op, dt, opts);
      };
    case Variant::AllreduceRsAgNative:
      return [root, op = c.red_op, dt = c.red_dtype](Comm& comm,
                                                     std::span<std::byte> buf) {
        core::allreduce_rsag_native(comm, buf, root, op, dt);
      };
    case Variant::AllreduceRsAgTuned:
      return [root, op = c.red_op, dt = c.red_dtype,
              sabotage](Comm& comm, std::span<std::byte> buf) {
        core::allreduce_rsag_tuned(comm, buf, root, op, dt, plan_fn_for(sabotage));
      };
    case Variant::AllreduceRecursiveDoubling:
      return [op = c.red_op, dt = c.red_dtype](Comm& comm,
                                               std::span<std::byte> buf) {
        coll::allreduce_typed(comm, buf, op, dt);
      };
    case Variant::AllgathervRingNative:
      return [root, skew = c.skew_seed](Comm& comm, std::span<std::byte> buf) {
        const VarLayout layout(skewed_counts(comm.size(), buf.size(), skew));
        coll::allgatherv_ring_native(comm, buf, root, layout);
      };
    case Variant::AllgathervRingTuned:
      return [root, skew = c.skew_seed, sabotage](Comm& comm,
                                                  std::span<std::byte> buf) {
        const VarLayout layout(skewed_counts(comm.size(), buf.size(), skew));
        core::allgatherv_ring_tuned(comm, buf, root, layout,
                                    plan_fn_for(sabotage));
      };
    case Variant::AllgatherBruckHier:
      return [cores = c.smp_cores_per_node](Comm& comm,
                                            std::span<std::byte> buf) {
        coll::allgather_bruck_hier(comm, buf, buf.size() / comm.size(), cores);
      };
    case Variant::IbcastConcurrent:
      // kIbcastDepth broadcasts (staggered roots) in flight at once on the
      // progress engine: the primary collective runs on `buf`, the
      // companions on body-local buffers whose oracle is checked right
      // here. Under the recorder there is no engine (and no data), so the
      // same broadcasts run back to back — a nonblocking collective moves
      // exactly its blocking counterpart's message multiset either way.
      return [root, cfg = selector_config(c), ps = oracle_seed(c)](
                 Comm& comm, std::span<std::byte> buf) {
        const int P = comm.size();
        std::vector<std::vector<std::byte>> side(
            static_cast<std::size_t>(kIbcastDepth - 1));
        for (std::size_t k = 0; k < side.size(); ++k) {
          side[k].resize(buf.size());
          const std::uint64_t cs = companion_seed(ps, static_cast<int>(k) + 1);
          const int r = (root + static_cast<int>(k) + 1) % P;
          fill_pattern(side[k], comm.rank() == r ? cs : ~cs);
        }
        auto* tc = dynamic_cast<mpisim::ThreadComm*>(&comm);
        if (tc == nullptr) {
          core::bcast(comm, buf, root, cfg);
          for (std::size_t k = 0; k < side.size(); ++k) {
            core::bcast(comm, side[k], (root + static_cast<int>(k) + 1) % P,
                        cfg);
          }
          return;
        }
        std::vector<mpisim::CollRequest> reqs;
        reqs.push_back(core::ibcast(*tc, buf, root, cfg));
        for (std::size_t k = 0; k < side.size(); ++k) {
          reqs.push_back(core::ibcast(*tc, side[k],
                                      (root + static_cast<int>(k) + 1) % P,
                                      cfg));
        }
        // A few nonblocking passes while everything is in flight, then
        // complete out of start order (the lifetime rules allow both).
        for (int pass = 0; pass < 3; ++pass) {
          for (auto& r : reqs) (void)r.test();
        }
        mpisim::wait_all_coll(reqs);
        for (std::size_t k = 0; k < side.size(); ++k) {
          const std::uint64_t cs = companion_seed(ps, static_cast<int>(k) + 1);
          const std::size_t bad = first_pattern_mismatch(side[k], cs);
          BSB_REQUIRE(bad == side[k].size(),
                      "ibcast companion oracle mismatch");
        }
      };
    case Variant::BcastHier:
      return [root, sizes = c.node_sizes, tuned = c.use_tuned_ring,
              sabotage](Comm& comm, std::span<std::byte> buf) {
        const hier::Topology topo(sizes);
        core::HierBcastOptions opts;
        opts.tuned = tuned;
        opts.sabotage_double_fanout = sabotage == Sabotage::HierDoubleFanout;
        core::bcast_hier(comm, buf, root, topo, opts);
      };
  }
  BSB_ASSERT(false, "make_rank_body: unknown variant");
}

namespace {

/// Pre-collective buffer contents for `rank`: the bytes the variant's
/// contract says the rank contributes (at their home offsets), garbage
/// everywhere else.
void fill_initial(const FuzzCase& c, int rank, std::span<std::byte> buf) {
  const std::uint64_t ps = oracle_seed(c);
  fill_pattern(buf, ~ps);  // garbage
  switch (c.variant) {
    case Variant::BcastBinomial:
    case Variant::BcastScatterRd:
    case Variant::BcastScatterRingNative:
    case Variant::BcastScatterRingTuned:
    case Variant::BcastRingPipelined:
    case Variant::BcastSmp:
    case Variant::BcastAuto:
    case Variant::BcastPersistent:
    case Variant::BcastHier:
    case Variant::IbcastConcurrent:  // companions are seeded in the body
      if (rank == c.root) fill_pattern(buf, ps);
      return;
    case Variant::AllgatherRingNative: {
      // The native ring assumes only the rank's own chunk.
      const ChunkLayout layout(buf.size(), c.nranks);
      const int rel = rel_rank(rank, c.root, c.nranks);
      fill_pattern(layout.chunk(buf, rel), ps, layout.disp(rel));
      return;
    }
    case Variant::AllgatherRingTuned:
    case Variant::AllgatherRecursiveDoubling: {
      // These run over scatter_binomial output: the rank owns its whole
      // binomial-subtree chunk block (the tuned ring exploits exactly
      // that, so seeding only the own chunk would be a contract breach).
      const ChunkLayout layout(buf.size(), c.nranks);
      const int rel = rel_rank(rank, c.root, c.nranks);
      const std::uint64_t off = layout.disp(rel);
      const std::uint64_t len = coll::scatter_block_bytes(rel, layout);
      fill_pattern(buf.subspan(off, len), ps, off);
      return;
    }
    case Variant::AllgatherBruck:
    case Variant::AllgatherNeighborExchange:
    case Variant::AllgatherBruckHier: {
      const std::uint64_t block =
          buf.size() / static_cast<std::uint64_t>(c.nranks);
      const std::uint64_t off = static_cast<std::uint64_t>(rank) * block;
      fill_pattern(buf.subspan(off, block), ps, off);
      return;
    }
    case Variant::AllgathervRingNative:
    case Variant::AllgathervRingTuned: {
      // Like the tuned uniform ring, the allgatherv family runs over
      // post-scatter BLOCK ownership (the tuned variant's skips depend on
      // it); the skewed layout decides how many bytes that block weighs.
      const VarLayout layout(skewed_counts(c.nranks, buf.size(), c.skew_seed));
      const int rel = rel_rank(rank, c.root, c.nranks);
      const int span = coll::scatter_subtree_span(rel, c.nranks);
      const std::uint64_t off = layout.disp(rel);
      fill_pattern(buf.subspan(off, layout.range_count(rel, span)), ps, off);
      return;
    }
    case Variant::ReduceScatterRing:
    case Variant::ReduceScatterBlocks:
    case Variant::AllreduceRsAgNative:
    case Variant::AllreduceRsAgTuned:
    case Variant::AllreduceRecursiveDoubling:
      // Reductions: every byte of every rank is a live contribution.
      coll::fill_contributions(c.red_dtype, ps, rank, 0, buf);
      return;
  }
}

/// The byte-exact post-reduction buffer every rank's checked region must
/// match: chunk c's elements folded in ring arrival order (or the
/// recursive-doubling tree for that variant). Computed once per case, not
/// per rank — the fold is O(P) per element.
std::vector<std::byte> reduce_expected_buffer(const FuzzCase& c) {
  const std::uint64_t ps = oracle_seed(c);
  const std::uint64_t es = coll::elem_bytes(c.red_dtype);
  std::vector<std::byte> expected(c.nbytes);
  if (c.nbytes == 0) return expected;
  if (c.variant == Variant::AllreduceRecursiveDoubling) {
    for (std::uint64_t off = 0; off < c.nbytes; off += es) {
      coll::rd_reduced_value(c.red_op, c.red_dtype, ps, c.nranks, off / es,
                             std::span<std::byte>(expected).subspan(off, es));
    }
    return expected;
  }
  const ChunkLayout layout(c.nbytes, c.nranks);
  for (int chunk = 0; chunk < c.nranks; ++chunk) {
    const std::uint64_t lo = layout.disp(chunk);
    const std::uint64_t hi = lo + layout.count(chunk);
    for (std::uint64_t off = lo; off < hi; off += es) {
      coll::ring_reduced_value(c.red_op, c.red_dtype, ps, c.nranks, c.root,
                               chunk, off / es,
                               std::span<std::byte>(expected).subspan(off, es));
    }
  }
  return expected;
}

/// Byte range of `rank`'s buffer that must equal the reduction oracle.
std::pair<std::uint64_t, std::uint64_t> reduce_checked_range(const FuzzCase& c,
                                                             int rank) {
  const int rel = rel_rank(rank, c.root, c.nranks);
  const ChunkLayout layout(c.nbytes, c.nranks);
  switch (c.variant) {
    case Variant::ReduceScatterRing:
      return {layout.disp(rel), layout.count(rel)};
    case Variant::ReduceScatterBlocks:
      return {layout.disp(rel),
              layout.range_count(rel, coll::scatter_subtree_span(rel, c.nranks))};
    default:
      return {0, c.nbytes};  // the allreduce variants: the whole buffer
  }
}

std::string check_counts(const std::string& what, std::uint64_t got,
                         std::uint64_t want) {
  if (got == want) return {};
  return what + ": got " + std::to_string(got) + ", closed form " +
         std::to_string(want) + "; ";
}

/// Record the schedule, match it, and compare its per-rank / total transfer
/// counts against the closed forms. Returns the first discrepancy (empty =
/// clean) and the schedule's total send count via `total_sends`.
std::string symbolic_check(const FuzzCase& c, const RankBody& body,
                           std::uint64_t* total_sends) {
  trace::Schedule sched;
  try {
    sched = trace::record_schedule(c.nranks, c.nbytes, body);
  } catch (const Error& e) {
    return std::string("recording failed: ") + e.what();
  }
  *total_sends = sched.total_sends();
  try {
    (void)trace::match_schedule(sched);
  } catch (const Error& e) {
    return std::string("schedule does not match up: ") + e.what();
  }

  const int P = c.nranks;
  std::string err;
  const auto per_rank = trace::per_rank_op_counts(sched);
  switch (c.variant) {
    case Variant::BcastBinomial:
      err += check_counts("binomial total msgs", sched.total_sends(),
                          static_cast<std::uint64_t>(P - 1));
      break;
    case Variant::BcastScatterRingNative:
      err += check_counts(
          "scatter+native-ring total msgs", sched.total_sends(),
          core::scatter_transfers(P, c.nbytes) + core::native_ring_transfers(P));
      break;
    case Variant::BcastScatterRingTuned:
      err += check_counts(
          "scatter+tuned-ring total msgs", sched.total_sends(),
          core::scatter_transfers(P, c.nbytes) + core::tuned_ring_transfers(P));
      break;
    case Variant::AllgatherRingNative:
      err += check_counts("native-ring total msgs", sched.total_sends(),
                          core::native_ring_transfers(P));
      for (int r = 0; err.empty() && r < P; ++r) {
        err += check_counts("native-ring per-rank sends", per_rank[r].sends,
                            static_cast<std::uint64_t>(P - 1));
        err += check_counts("native-ring per-rank recvs", per_rank[r].recvs,
                            static_cast<std::uint64_t>(P - 1));
      }
      break;
    case Variant::AllgatherRingTuned:
      err += check_counts("tuned-ring total msgs", sched.total_sends(),
                          core::tuned_ring_transfers(P));
      for (int r = 0; err.empty() && r < P; ++r) {
        const core::RingPlan plan =
            core::compute_ring_plan(rel_rank(r, c.root, P), P);
        err += check_counts(
            "tuned-ring per-rank sends", per_rank[r].sends,
            static_cast<std::uint64_t>(core::tuned_sends(plan, P)));
        err += check_counts(
            "tuned-ring per-rank recvs", per_rank[r].recvs,
            static_cast<std::uint64_t>(core::tuned_recvs(plan, P)));
      }
      break;
    case Variant::BcastAuto:
    case Variant::BcastPersistent:
    case Variant::IbcastConcurrent: {
      // IbcastConcurrent runs kIbcastDepth independent broadcasts of the
      // same shape; root stagger never changes the count.
      const std::uint64_t mult =
          c.variant == Variant::IbcastConcurrent
              ? static_cast<std::uint64_t>(kIbcastDepth)
              : 1;
      const core::BcastAlgorithm algo =
          core::choose_bcast_algorithm(c.nbytes, P, selector_config(c));
      if (algo == core::BcastAlgorithm::Binomial) {
        err += check_counts("auto(binomial) total msgs", sched.total_sends(),
                            mult * static_cast<std::uint64_t>(P - 1));
      } else if (algo == core::BcastAlgorithm::ScatterRingNative) {
        err += check_counts("auto(native-ring) total msgs", sched.total_sends(),
                            mult * (core::scatter_transfers(P, c.nbytes) +
                                    core::native_ring_transfers(P)));
      } else if (algo == core::BcastAlgorithm::ScatterRingTuned) {
        err += check_counts("auto(tuned-ring) total msgs", sched.total_sends(),
                            mult * (core::scatter_transfers(P, c.nbytes) +
                                    core::tuned_ring_transfers(P)));
      }
      break;
    }
    case Variant::ReduceScatterRing:
    case Variant::AllgathervRingNative:
      err += check_counts(to_string(c.variant) + std::string(" total msgs"),
                          sched.total_sends(), core::native_ring_transfers(P));
      for (int r = 0; err.empty() && r < P; ++r) {
        err += check_counts("ring per-rank sends", per_rank[r].sends,
                            static_cast<std::uint64_t>(P - 1));
        err += check_counts("ring per-rank recvs", per_rank[r].recvs,
                            static_cast<std::uint64_t>(P - 1));
      }
      break;
    case Variant::ReduceScatterBlocks:
      err += check_counts("blocked-rs total msgs", sched.total_sends(),
                          core::blocked_reduce_scatter_transfers(P));
      for (int r = 0; err.empty() && r < P; ++r) {
        const int rel = rel_rank(r, c.root, P);
        err += check_counts(
            "blocked-rs per-rank sends", per_rank[r].sends,
            static_cast<std::uint64_t>(P - 1 + core::block_ancestors(rel)));
        err += check_counts(
            "blocked-rs per-rank recvs", per_rank[r].recvs,
            static_cast<std::uint64_t>(P - 1 +
                                       coll::scatter_subtree_span(rel, P) - 1));
      }
      break;
    case Variant::AllreduceRsAgNative:
      err += check_counts("allreduce-native total msgs", sched.total_sends(),
                          core::allreduce_rsag_native_transfers(P));
      break;
    case Variant::AllreduceRsAgTuned:
      err += check_counts("allreduce-tuned total msgs", sched.total_sends(),
                          core::allreduce_rsag_tuned_transfers(P));
      for (int r = 0; err.empty() && r < P; ++r) {
        const int rel = rel_rank(r, c.root, P);
        const core::RingPlan plan = core::compute_ring_plan(rel, P);
        err += check_counts(
            "allreduce-tuned per-rank sends", per_rank[r].sends,
            static_cast<std::uint64_t>(P - 1 + core::block_ancestors(rel) +
                                       core::tuned_sends(plan, P)));
        err += check_counts(
            "allreduce-tuned per-rank recvs", per_rank[r].recvs,
            static_cast<std::uint64_t>(P - 1 + coll::scatter_subtree_span(rel, P) -
                                       1 + core::tuned_recvs(plan, P)));
      }
      break;
    case Variant::AllreduceRecursiveDoubling: {
      const std::uint64_t rounds = static_cast<std::uint64_t>(floor_log2(
          static_cast<std::uint64_t>(P)));
      err += check_counts("allreduce-rd total msgs", sched.total_sends(),
                          static_cast<std::uint64_t>(P) * rounds);
      for (int r = 0; err.empty() && r < P; ++r) {
        err += check_counts("allreduce-rd per-rank sends", per_rank[r].sends, rounds);
        err += check_counts("allreduce-rd per-rank recvs", per_rank[r].recvs, rounds);
      }
      break;
    }
    case Variant::AllgathervRingTuned:
      err += check_counts("allgatherv-tuned total msgs", sched.total_sends(),
                          core::tuned_ring_transfers(P));
      for (int r = 0; err.empty() && r < P; ++r) {
        const core::RingPlan plan =
            core::compute_ring_plan(rel_rank(r, c.root, P), P);
        err += check_counts(
            "allgatherv-tuned per-rank sends", per_rank[r].sends,
            static_cast<std::uint64_t>(core::tuned_sends(plan, P)));
        err += check_counts(
            "allgatherv-tuned per-rank recvs", per_rank[r].recvs,
            static_cast<std::uint64_t>(core::tuned_recvs(plan, P)));
      }
      break;
    case Variant::AllgatherBruckHier:
      err += check_counts(
          "bruck-hier total msgs", sched.total_sends(),
          core::bruck_hier_transfers(P, c.smp_cores_per_node));
      break;
    case Variant::BcastHier: {
      const hier::Topology topo(c.node_sizes);
      err += check_counts(
          "bcast-hier total msgs", sched.total_sends(),
          core::hier_bcast_transfers(P, topo.num_nodes(), c.nbytes,
                                     c.use_tuned_ring));
      for (int r = 0; err.empty() && r < P; ++r) {
        if (topo.is_leader(r, c.root)) continue;
        // Every non-leader takes part in exactly one transfer: the
        // single-copy delivery from its node leader.
        err += check_counts("bcast-hier non-leader sends", per_rank[r].sends, 0);
        err += check_counts("bcast-hier non-leader recvs", per_rank[r].recvs, 1);
      }
      break;
    }
    default:
      break;  // no closed form for this variant; matching was the check
  }
  if (!err.empty()) err += "[" + describe(c) + "]";
  return err;
}

}  // namespace

bool sabotage_applies(const FuzzCase& c, Sabotage sabotage) noexcept {
  switch (sabotage) {
    case Sabotage::None:
      return false;
    case Sabotage::RingPlanStepOffByOne:
      return c.variant == Variant::BcastScatterRingTuned ||
             c.variant == Variant::AllgatherRingTuned ||
             c.variant == Variant::AllgathervRingTuned ||
             c.variant == Variant::AllreduceRsAgTuned;
    case Sabotage::ReduceScatterDoubleFinal:
      return c.variant == Variant::ReduceScatterBlocks;
    case Sabotage::HierDoubleFanout:
      return c.variant == Variant::BcastHier;
  }
  return false;
}

RunOutcome run_case(const FuzzCase& c, Sabotage sabotage) {
  RunOutcome out;
  const RankBody body = make_rank_body(c, sabotage);

  // Phase 1: symbolic. Catches miscounted/unpairable schedules without
  // spending watchdog time, which keeps the self-test and shrinking fast.
  // Skipped for empty buffers (nothing to record offsets against).
  std::uint64_t expected_msgs = 0;
  bool have_expected = false;
  if (c.nbytes > 0) {
    const std::string err = symbolic_check(c, body, &expected_msgs);
    have_expected = true;
    if (!err.empty()) {
      out.ok = false;
      out.detail = err;
      return out;
    }
  }

  // Phase 2: threaded execution with fault injection + byte oracle.
  mpisim::WorldConfig wc;
  wc.eager_threshold = c.eager_threshold;
  wc.watchdog_seconds = c.watchdog_seconds;
  wc.faults = c.faults;
  mpisim::World world(c.nranks, wc);

  const std::uint64_t ps = oracle_seed(c);
  // Reduction variants compare against the byte-exact fold oracle instead
  // of the pattern; the expected buffer is shared read-only by all ranks.
  std::vector<std::byte> expected;
  if (is_reduce_family(c.variant)) expected = reduce_expected_buffer(c);
  std::mutex fail_mu;
  std::string first_fail;
  auto report_fail = [&](int rank, std::uint64_t bad, std::uint64_t total) {
    const std::lock_guard<std::mutex> lk(fail_mu);
    if (first_fail.empty()) {
      first_fail = "oracle mismatch at rank " + std::to_string(rank) +
                   " byte " + std::to_string(bad) + " of " +
                   std::to_string(total);
    }
  };
  try {
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> buf(c.nbytes);
      fill_initial(c, comm.rank(), buf);
      body(comm, buf);
      if (is_reduce_family(c.variant)) {
        const auto [off, len] = reduce_checked_range(c, comm.rank());
        for (std::uint64_t i = off; i < off + len; ++i) {
          if (buf[i] != expected[i]) {
            report_fail(comm.rank(), i, buf.size());
            break;
          }
        }
      } else {
        const std::size_t bad = first_pattern_mismatch(buf, ps);
        if (bad != buf.size()) report_fail(comm.rank(), bad, buf.size());
      }
    });
  } catch (const Error& e) {
    out.ok = false;
    out.detail = std::string("execution failed: ") + e.what() + " [" +
                 describe(c) + "]";
    return out;
  }
  out.messages = world.total_msgs();
  if (!first_fail.empty()) {
    out.ok = false;
    out.detail = first_fail + " [" + describe(c) + "]";
    return out;
  }

  // Phase 3: the schedule the threads actually ran must move exactly the
  // message count the recording predicted (faults may reorder and reshape
  // protocols, never add or drop messages).
  if (have_expected && out.messages != expected_msgs) {
    out.ok = false;
    out.detail = "threaded run moved " + std::to_string(out.messages) +
                 " msgs, recorded schedule has " +
                 std::to_string(expected_msgs) + " [" + describe(c) + "]";
  }
  return out;
}

}  // namespace bsb::fuzz
