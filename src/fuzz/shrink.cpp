#include "fuzz/shrink.hpp"

#include <vector>

namespace bsb::fuzz {

namespace {

bool same_config(const FuzzCase& a, const FuzzCase& b) noexcept {
  return a.variant == b.variant && a.nranks == b.nranks && a.root == b.root &&
         a.nbytes == b.nbytes && a.segment_bytes == b.segment_bytes &&
         a.eager_threshold == b.eager_threshold &&
         a.faults.enabled == b.faults.enabled;
}

/// Reductions to try from `c`, most aggressive first.
std::vector<FuzzCase> candidates(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  const auto push = [&](FuzzCase cand) {
    cand = normalize_case(std::move(cand));
    if (!same_config(cand, c)) out.push_back(std::move(cand));
  };
  if (c.faults.enabled) {
    FuzzCase cand = c;
    cand.faults = mpisim::FaultConfig{};
    push(cand);
  }
  if (c.nranks > 2) {
    FuzzCase cand = c;
    cand.nranks = c.nranks / 2;
    push(cand);
    cand = c;
    cand.nranks = c.nranks - 1;
    push(cand);
  }
  if (c.nbytes > 1) {
    FuzzCase cand = c;
    cand.nbytes = c.nbytes / 2;
    push(cand);
  }
  if (c.root != 0 && !is_rootless(c.variant)) {
    FuzzCase cand = c;
    cand.root = 0;
    push(cand);
  }
  if (c.eager_threshold != 65536) {
    FuzzCase cand = c;
    cand.eager_threshold = 65536;
    push(cand);
  }
  if (c.segment_bytes != 0 && c.variant == Variant::BcastRingPipelined) {
    FuzzCase cand = c;
    cand.segment_bytes = 0;
    push(cand);
  }
  return out;
}

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing, Sabotage sabotage,
                         int max_reruns) {
  ShrinkResult res;
  res.minimal = failing;
  bool progressed = true;
  while (progressed && res.reruns < max_reruns) {
    progressed = false;
    for (const FuzzCase& cand : candidates(res.minimal)) {
      if (res.reruns >= max_reruns) break;
      const RunOutcome o = run_case(cand, sabotage);
      ++res.reruns;
      if (!o.ok) {
        res.minimal = cand;
        res.minimal_detail = o.detail;
        progressed = true;
        break;  // restart from the smaller config
      }
    }
  }
  if (res.minimal_detail.empty()) {
    const RunOutcome o = run_case(res.minimal, sabotage);
    ++res.reruns;
    res.minimal_detail = o.detail;
  }
  return res;
}

}  // namespace bsb::fuzz
