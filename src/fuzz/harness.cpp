#include "fuzz/harness.hpp"

#include <chrono>
#include <ostream>

namespace bsb::fuzz {

namespace {

/// Force a sampled case onto a variant the sabotage can perturb (the
/// self-test must exercise a vulnerable schedule, not whatever the draw
/// picked).
FuzzCase force_sabotageable_variant(FuzzCase c, Sabotage sabotage) {
  if (sabotage == Sabotage::ReduceScatterDoubleFinal) {
    c.variant = Variant::ReduceScatterBlocks;
    c.nranks = fit_ranks(c.variant, c.nranks);
    c.root = c.root % c.nranks;
    const std::uint64_t grain =
        static_cast<std::uint64_t>(c.nranks) * coll::elem_bytes(c.red_dtype);
    c.nbytes -= c.nbytes % grain;
    if (c.nbytes == 0) c.nbytes = grain;
    return c;
  }
  if (sabotage == Sabotage::HierDoubleFanout) {
    c.variant = Variant::BcastHier;
    return normalize_case(std::move(c));
  }
  switch (c.index % 4) {
    case 0: c.variant = Variant::BcastScatterRingTuned; break;
    case 1: c.variant = Variant::AllgatherRingTuned; break;
    case 2: c.variant = Variant::AllgathervRingTuned; break;
    default: c.variant = Variant::AllreduceRsAgTuned; break;
  }
  c.nranks = fit_ranks(c.variant, c.nranks);
  c.root = c.root % c.nranks;
  if (c.variant == Variant::AllgatherRingTuned) {
    std::uint64_t block = c.nbytes / static_cast<std::uint64_t>(c.nranks);
    if (block == 0) block = 1;
    c.nbytes = block * static_cast<std::uint64_t>(c.nranks);
  }
  if (c.variant == Variant::AllreduceRsAgTuned) {
    const std::uint64_t grain =
        static_cast<std::uint64_t>(c.nranks) * coll::elem_bytes(c.red_dtype);
    c.nbytes -= c.nbytes % grain;
    if (c.nbytes == 0) c.nbytes = grain;
  }
  return c;
}

}  // namespace

HarnessReport run_fuzz(const HarnessOptions& opt, std::ostream& out) {
  HarnessReport rep;
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  for (std::uint64_t i = 0; i < opt.cases; ++i) {
    if (opt.time_budget_seconds > 0 && elapsed() > opt.time_budget_seconds) {
      out << "time budget (" << opt.time_budget_seconds << "s) exhausted after "
          << rep.cases_run << " cases\n";
      break;
    }
    FuzzCase c = sample_case(opt.seed, opt.first_case + i, opt.gen);
    if (opt.sabotage != Sabotage::None && !sabotage_applies(c, opt.sabotage)) {
      c = force_sabotageable_variant(c, opt.sabotage);
    }
    if (opt.verbose) {
      out << "case " << c.index << ": " << describe(c) << "\n";
    }
    const RunOutcome o = run_case(c, opt.sabotage);
    ++rep.cases_run;
    ++rep.per_variant[static_cast<std::size_t>(c.variant)];
    rep.messages += o.messages;
    if (o.ok) continue;

    ++rep.failures;
    out << "FAIL case " << c.index << " (seed " << opt.seed << "): " << o.detail
        << "\n  reproduce: " << reproducer(c) << "\n";
    std::string shrunk_line = explicit_reproducer(c);
    std::string shrunk_detail = o.detail;
    if (opt.shrink) {
      const ShrinkResult s = shrink_case(c, opt.sabotage);
      shrunk_line = explicit_reproducer(s.minimal);
      shrunk_detail = s.minimal_detail;
      out << "  shrunk (" << s.reruns << " reruns): " << describe(s.minimal)
          << "\n  shrunk reproduce: " << shrunk_line << "\n";
    }
    if (rep.first_reproducer.empty()) {
      rep.first_reproducer = reproducer(c);
      rep.first_shrunk = shrunk_line;
      rep.first_detail = shrunk_detail;
    }
    if (rep.failures >= opt.max_failures) break;
  }

  rep.elapsed_seconds = elapsed();
  out << "fuzz: " << rep.cases_run << " cases, " << rep.messages
      << " messages, " << rep.failures << " failure(s) in " << rep.elapsed_seconds
      << "s";
  if (rep.elapsed_seconds > 0) {
    out << " (" << static_cast<std::uint64_t>(
                       static_cast<double>(rep.cases_run) / rep.elapsed_seconds)
        << " cases/s)";
  }
  out << "\n";
  if (opt.verbose || rep.cases_run > 0) {
    out << "variant coverage:";
    for (const Variant v : all_variants()) {
      out << " " << to_string(v) << "="
          << rep.per_variant[static_cast<std::size_t>(v)];
    }
    out << "\n";
  }
  return rep;
}

bool run_selftest(HarnessOptions opt, std::ostream& out) {
  opt.shrink = true;
  opt.max_failures = 1;
  // A short watchdog keeps any sabotage-induced deadlock path quick; the
  // symbolic detectors normally fire long before threads are involved.
  opt.gen.watchdog_seconds = 2.0;

  struct Probe {
    Sabotage sabotage;
    const char* what;
  };
  static constexpr Probe kProbes[] = {
      {Sabotage::RingPlanStepOffByOne,
       "corrupting RingPlan.step by +1"},
      {Sabotage::ReduceScatterDoubleFinal,
       "double-sending reduce_scatter final chunks"},
      {Sabotage::HierDoubleFanout,
       "double-delivering the hier broadcast fan-out"},
  };
  for (const Probe& probe : kProbes) {
    HarnessOptions o = opt;
    o.sabotage = probe.sabotage;
    out << "self-test: " << probe.what << "; the harness MUST catch it\n";
    const HarnessReport rep = run_fuzz(o, out);
    if (rep.failures == 0) {
      out << "self-test FAILED: sabotaged schedule was not detected\n";
      return false;
    }
    if (rep.first_shrunk.empty() || rep.first_detail.empty()) {
      out << "self-test FAILED: no shrunk reproducer produced\n";
      return false;
    }
    out << "self-test OK: sabotage detected (" << rep.first_detail << ")\n";
  }
  return true;
}

}  // namespace bsb::fuzz
