#include "fuzz/case.hpp"

#include <algorithm>
#include <array>

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"
#include "bsbutil/rng.hpp"

namespace bsb::fuzz {

namespace {

constexpr std::array<Variant, kNumVariants> kAllVariants = {
    Variant::BcastBinomial,
    Variant::BcastScatterRd,
    Variant::BcastScatterRingNative,
    Variant::BcastScatterRingTuned,
    Variant::BcastRingPipelined,
    Variant::BcastSmp,
    Variant::BcastAuto,
    Variant::BcastPersistent,
    Variant::AllgatherRingNative,
    Variant::AllgatherRingTuned,
    Variant::AllgatherRecursiveDoubling,
    Variant::AllgatherBruck,
    Variant::AllgatherNeighborExchange,
    Variant::ReduceScatterRing,
    Variant::ReduceScatterBlocks,
    Variant::AllreduceRsAgNative,
    Variant::AllreduceRsAgTuned,
    Variant::AllreduceRecursiveDoubling,
    Variant::AllgathervRingNative,
    Variant::AllgathervRingTuned,
    Variant::AllgatherBruckHier,
    Variant::IbcastConcurrent,
    Variant::BcastHier,
};

std::uint64_t case_key(std::uint64_t seed, std::uint64_t index) noexcept {
  return (seed ^ 0x5DEECE66DULL) * 0x100000001b3ULL + index * 0x9e3779b97f4a7c15ULL;
}

/// "4,4,3" rendering of a node shape (the --nodes= flag syntax).
std::string join_sizes(const std::vector<int>& sizes) {
  std::string s;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) s += ',';
    s += std::to_string(sizes[i]);
  }
  return s;
}

}  // namespace

bool is_block_allgather(Variant v) noexcept {
  switch (v) {
    case Variant::AllgatherRingNative:
    case Variant::AllgatherRingTuned:
    case Variant::AllgatherRecursiveDoubling:
    case Variant::AllgatherBruck:
    case Variant::AllgatherNeighborExchange:
    case Variant::AllgatherBruckHier:
      return true;
    default:
      return false;
  }
}

bool is_reduce_family(Variant v) noexcept {
  switch (v) {
    case Variant::ReduceScatterRing:
    case Variant::ReduceScatterBlocks:
    case Variant::AllreduceRsAgNative:
    case Variant::AllreduceRsAgTuned:
    case Variant::AllreduceRecursiveDoubling:
      return true;
    default:
      return false;
  }
}

bool is_allgatherv(Variant v) noexcept {
  return v == Variant::AllgathervRingNative ||
         v == Variant::AllgathervRingTuned;
}

bool is_rootless(Variant v) noexcept {
  return v == Variant::AllgatherBruck ||
         v == Variant::AllgatherNeighborExchange ||
         v == Variant::AllreduceRecursiveDoubling ||
         v == Variant::AllgatherBruckHier;
}

const char* to_string(Variant v) noexcept {
  switch (v) {
    case Variant::BcastBinomial: return "bcast-binomial";
    case Variant::BcastScatterRd: return "bcast-scatter-rd";
    case Variant::BcastScatterRingNative: return "bcast-scatter-ring-native";
    case Variant::BcastScatterRingTuned: return "bcast-scatter-ring-tuned";
    case Variant::BcastRingPipelined: return "bcast-ring-pipelined";
    case Variant::BcastSmp: return "bcast-smp";
    case Variant::BcastAuto: return "bcast-auto";
    case Variant::BcastPersistent: return "bcast-persistent";
    case Variant::AllgatherRingNative: return "allgather-ring-native";
    case Variant::AllgatherRingTuned: return "allgather-ring-tuned";
    case Variant::AllgatherRecursiveDoubling: return "allgather-recursive-doubling";
    case Variant::AllgatherBruck: return "allgather-bruck";
    case Variant::AllgatherNeighborExchange: return "allgather-neighbor-exchange";
    case Variant::ReduceScatterRing: return "reduce-scatter-ring";
    case Variant::ReduceScatterBlocks: return "reduce-scatter-blocks";
    case Variant::AllreduceRsAgNative: return "allreduce-rsag-native";
    case Variant::AllreduceRsAgTuned: return "allreduce-rsag-tuned";
    case Variant::AllreduceRecursiveDoubling: return "allreduce-recursive-doubling";
    case Variant::AllgathervRingNative: return "allgatherv-ring-native";
    case Variant::AllgathervRingTuned: return "allgatherv-ring-tuned";
    case Variant::AllgatherBruckHier: return "allgather-bruck-hier";
    case Variant::IbcastConcurrent: return "ibcast-concurrent";
    case Variant::BcastHier: return "bcast-hier";
  }
  return "?";
}

std::optional<Variant> variant_from_string(const std::string& name) {
  for (const Variant v : kAllVariants) {
    if (name == to_string(v)) return v;
  }
  return std::nullopt;
}

std::span<const Variant> all_variants() noexcept { return kAllVariants; }

int fit_ranks(Variant v, int nranks) noexcept {
  int n = std::max(nranks, 2);
  switch (v) {
    case Variant::BcastScatterRd:
    case Variant::AllgatherRecursiveDoubling:
    case Variant::AllreduceRecursiveDoubling:
      // Round down to a power of two.
      while ((n & (n - 1)) != 0) n &= n - 1;
      return std::max(n, 2);
    case Variant::AllgatherNeighborExchange:
      return n % 2 == 0 ? n : n - 1;
    default:
      return n;
  }
}

FuzzCase normalize_case(FuzzCase c) {
  c.nranks = fit_ranks(c.variant, c.nranks);
  c.root = is_rootless(c.variant) ? 0 : c.root % c.nranks;
  if (c.variant == Variant::BcastHier) {
    // Refit the node shape so positive sizes sum to exactly nranks: keep
    // the sampled sizes as a prefix, clamp the straddler, extend with a
    // remainder node, drop the tail. An empty shape falls back to a
    // uniform split at smp_cores_per_node.
    std::vector<int> fit;
    int sum = 0;
    for (int s : c.node_sizes) {
      if (s < 1 || sum >= c.nranks) continue;
      s = std::min(s, c.nranks - sum);
      fit.push_back(s);
      sum += s;
    }
    if (fit.empty()) {
      const int cores = std::max(c.smp_cores_per_node, 1);
      for (int left = c.nranks; left > 0; left -= cores) {
        fit.push_back(std::min(left, cores));
      }
    } else if (sum < c.nranks) {
      fit.push_back(c.nranks - sum);
    }
    c.node_sizes = std::move(fit);
  } else {
    c.node_sizes.clear();
  }
  if (is_block_allgather(c.variant)) {
    std::uint64_t block = c.nbytes / static_cast<std::uint64_t>(c.nranks);
    if (block == 0) block = 1;
    c.nbytes = block * static_cast<std::uint64_t>(c.nranks);
  }
  if (is_reduce_family(c.variant)) {
    const std::uint64_t grain =
        static_cast<std::uint64_t>(c.nranks) * coll::elem_bytes(c.red_dtype);
    c.nbytes -= c.nbytes % grain;
    if (c.nbytes == 0) c.nbytes = grain;
  }
  return c;
}

FuzzCase sample_case(std::uint64_t seed, std::uint64_t index,
                     const GeneratorOptions& opt) {
  BSB_REQUIRE(opt.min_ranks >= 2 && opt.max_ranks >= opt.min_ranks,
              "sample_case: bad rank bounds");
  SplitMix64 rng(case_key(seed, index));
  FuzzCase c;
  c.seed = seed;
  c.index = index;
  c.watchdog_seconds = opt.watchdog_seconds;

  c.variant = kAllVariants[rng.next_below(kNumVariants)];

  // Process count: biased towards small groups (where the interesting
  // npof2/prime structure lives), with a tail up to max_ranks.
  const double pr = rng.next_double();
  int lo = opt.min_ranks, hi = opt.max_ranks;
  if (pr < 0.5) {
    hi = std::min(hi, 16);
  } else if (pr < 0.8) {
    lo = std::min(std::max(lo, 17), hi);
  } else {
    lo = std::min(std::max(lo, 33), hi);
  }
  c.nranks = lo + static_cast<int>(rng.next_below(
                      static_cast<std::uint64_t>(hi - lo + 1)));
  c.nranks = std::max(opt.min_ranks, std::min(fit_ranks(c.variant, c.nranks),
                                              opt.max_ranks));

  // Message size: bands straddling the 12 KiB and 512 KiB algorithm-switch
  // thresholds, plus tiny/medium fill-in; snapped to a sampled datatype
  // element size and (sometimes) a chunk alignment.
  const double sb = rng.next_double();
  std::uint64_t lo_b = 0, hi_b = 256;
  if (sb < 0.20) {
    lo_b = 0, hi_b = 256;
  } else if (sb < 0.40) {
    lo_b = 257, hi_b = 8 * 1024;
  } else if (sb < 0.70) {
    lo_b = 8 * 1024, hi_b = 16 * 1024;  // around 12288
  } else if (sb < 0.90) {
    lo_b = 16 * 1024, hi_b = 128 * 1024;
  } else {
    lo_b = 496 * 1024, hi_b = 544 * 1024;  // around 524288
  }
  hi_b = std::min(hi_b, opt.max_bytes);
  lo_b = std::min(lo_b, hi_b);
  c.nbytes = lo_b + rng.next_below(hi_b - lo_b + 1);

  static constexpr std::array<std::uint64_t, 5> kElemSizes = {1, 2, 4, 8, 16};
  const std::uint64_t elem = kElemSizes[rng.next_below(kElemSizes.size())];
  c.nbytes -= c.nbytes % elem;
  static constexpr std::array<std::uint64_t, 4> kAlignments = {1, 8, 64, 4096};
  const std::uint64_t align = kAlignments[rng.next_below(kAlignments.size())];
  if (rng.next_double() < 0.5 && c.nbytes >= align) c.nbytes -= c.nbytes % align;

  if (is_block_allgather(c.variant)) {
    // Standalone allgathers of equal blocks need nbytes divisible by P.
    std::uint64_t block = c.nbytes / static_cast<std::uint64_t>(c.nranks);
    if (block == 0) block = 1 + rng.next_below(64);
    c.nbytes = block * static_cast<std::uint64_t>(c.nranks);
  }

  if (is_reduce_family(c.variant)) {
    c.red_op = rng.next_below(2) == 0 ? coll::RedOp::Sum : coll::RedOp::Max;
    c.red_dtype =
        rng.next_below(2) == 0 ? coll::RedDtype::I32 : coll::RedDtype::F64;
    // Reductions need whole elements per uniform chunk.
    const std::uint64_t grain =
        static_cast<std::uint64_t>(c.nranks) * coll::elem_bytes(c.red_dtype);
    c.nbytes -= c.nbytes % grain;
    if (c.nbytes == 0) c.nbytes = grain * (1 + rng.next_below(32));
  }

  if (is_allgatherv(c.variant)) c.skew_seed = rng.next();

  c.root = is_rootless(c.variant) ? 0 : static_cast<int>(rng.next_below(c.nranks));

  static constexpr std::array<std::uint64_t, 4> kSegments = {0, 512, 4096, 16384};
  c.segment_bytes = kSegments[rng.next_below(kSegments.size())];

  static constexpr std::array<int, 4> kCores = {2, 3, 4, 8};
  c.smp_cores_per_node = kCores[rng.next_below(kCores.size())];

  // Selector thresholds for the dispatching variants.
  static constexpr std::array<std::uint64_t, 4> kSmsg = {0, 1024, 12288, 65536};
  static constexpr std::array<std::uint64_t, 3> kMmsg = {12288, 65536, 524288};
  c.smsg_limit = kSmsg[rng.next_below(kSmsg.size())];
  c.mmsg_limit = std::max(c.smsg_limit, kMmsg[rng.next_below(kMmsg.size())]);
  c.use_tuned_ring = rng.next_below(2) == 0;

  static constexpr std::array<std::size_t, 6> kEager = {
      0, 64, 1024, 12288, 65536, std::size_t{1} << 30};
  c.eager_threshold = kEager[rng.next_below(kEager.size())];

  if (c.variant == Variant::BcastHier) {
    // Node shape: single node (pure fan-out), all-singleton (degenerate
    // flat ring over every rank), uniform at the sampled cores/node, or a
    // fully ragged random split with occasional 1-core nodes.
    const double ns = rng.next_double();
    if (ns < 0.15) {
      c.node_sizes.assign(1, c.nranks);
    } else if (ns < 0.30) {
      c.node_sizes.assign(static_cast<std::size_t>(c.nranks), 1);
    } else if (ns < 0.60) {
      c.node_sizes.clear();  // normalize_case derives the uniform split
    } else {
      c.node_sizes.clear();
      for (int left = c.nranks; left > 0;) {
        const int s = std::min(1 + static_cast<int>(rng.next_below(8)), left);
        c.node_sizes.push_back(s);
        left -= s;
      }
    }
    c = normalize_case(c);
  }

  if (opt.faults && rng.next_double() < 0.4) {
    c.faults.enabled = true;
    c.faults.seed = rng.next();
    c.faults.delay_prob = 0.05 * rng.next_double();
    c.faults.max_delay_us = static_cast<std::uint32_t>(1 + rng.next_below(50));
    c.faults.reorder_prob = 0.3 * rng.next_double();
    c.faults.force_rendezvous_prob = 0.2 * rng.next_double();
    c.faults.force_eager_prob = 0.2 * rng.next_double();
  }
  return c;
}

std::string describe(const FuzzCase& c) {
  std::string s = to_string(c.variant);
  s += " P=" + std::to_string(c.nranks);
  s += " root=" + std::to_string(c.root);
  s += " bytes=" + std::to_string(c.nbytes);
  s += " eager=" + std::to_string(c.eager_threshold);
  if (c.variant == Variant::BcastRingPipelined) {
    s += " segment=" + std::to_string(c.segment_bytes);
  }
  if (c.variant == Variant::BcastSmp || c.variant == Variant::AllgatherBruckHier) {
    s += " cores/node=" + std::to_string(c.smp_cores_per_node);
  }
  if (c.variant == Variant::BcastHier) {
    s += " nodes=" + join_sizes(c.node_sizes) +
         " tuned=" + (c.use_tuned_ring ? "1" : "0");
  }
  if (c.variant == Variant::BcastAuto || c.variant == Variant::BcastPersistent ||
      c.variant == Variant::IbcastConcurrent) {
    s += " smsg=" + std::to_string(c.smsg_limit) +
         " mmsg=" + std::to_string(c.mmsg_limit) +
         " tuned=" + (c.use_tuned_ring ? "1" : "0");
  }
  if (is_reduce_family(c.variant)) {
    s += std::string(" op=") + to_string(c.red_op) +
         " dtype=" + to_string(c.red_dtype);
  }
  if (is_allgatherv(c.variant)) {
    s += " skew-seed=" + std::to_string(c.skew_seed);
  }
  if (c.faults.enabled) {
    s += " faults{seed=" + std::to_string(c.faults.seed) +
         " delay=" + std::to_string(c.faults.delay_prob) + "/" +
         std::to_string(c.faults.max_delay_us) + "us" +
         " reorder=" + std::to_string(c.faults.reorder_prob) +
         " rndv=" + std::to_string(c.faults.force_rendezvous_prob) +
         " eager=" + std::to_string(c.faults.force_eager_prob) + "}";
  } else {
    s += " faults=off";
  }
  return s;
}

std::string reproducer(const FuzzCase& c) {
  return "bsb-fuzz --seed=" + std::to_string(c.seed) +
         " --case=" + std::to_string(c.index);
}

std::string explicit_reproducer(const FuzzCase& c) {
  std::string s = "bsb-fuzz --variant=";
  s += to_string(c.variant);
  s += " --ranks=" + std::to_string(c.nranks);
  s += " --root=" + std::to_string(c.root);
  s += " --bytes=" + std::to_string(c.nbytes);
  s += " --eager=" + std::to_string(c.eager_threshold);
  if (c.variant == Variant::BcastRingPipelined) {
    s += " --segment=" + std::to_string(c.segment_bytes);
  }
  if (c.variant == Variant::BcastSmp || c.variant == Variant::AllgatherBruckHier) {
    s += " --smp-cores=" + std::to_string(c.smp_cores_per_node);
  }
  if (c.variant == Variant::BcastHier) {
    s += " --nodes=" + join_sizes(c.node_sizes) +
         " --tuned=" + (c.use_tuned_ring ? "1" : "0");
  }
  if (c.variant == Variant::BcastAuto || c.variant == Variant::BcastPersistent ||
      c.variant == Variant::IbcastConcurrent) {
    s += " --smsg=" + std::to_string(c.smsg_limit) +
         " --mmsg=" + std::to_string(c.mmsg_limit) +
         " --tuned=" + (c.use_tuned_ring ? "1" : "0");
  }
  if (is_reduce_family(c.variant)) {
    s += std::string(" --op=") + to_string(c.red_op);
    s += std::string(" --dtype=") + to_string(c.red_dtype);
  }
  if (is_allgatherv(c.variant)) {
    s += " --skew-seed=" + std::to_string(c.skew_seed);
  }
  if (c.faults.enabled) {
    s += " --fault-seed=" + std::to_string(c.faults.seed);
    s += " --delay-prob=" + std::to_string(c.faults.delay_prob);
    s += " --max-delay-us=" + std::to_string(c.faults.max_delay_us);
    s += " --reorder-prob=" + std::to_string(c.faults.reorder_prob);
    s += " --force-rndv-prob=" + std::to_string(c.faults.force_rendezvous_prob);
    s += " --force-eager-prob=" + std::to_string(c.faults.force_eager_prob);
  }
  return s;
}

}  // namespace bsb::fuzz
