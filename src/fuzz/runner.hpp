// Differential runner for one fuzz case: records the variant's schedule and
// validates it symbolically (matching + closed-form transfer counts from
// core/transfer_analysis and core/ring_plan), then executes it on the
// mpisim thread backend — under the case's fault plan — and compares every
// rank's result buffer byte-for-byte against the local pattern oracle.
// Hangs become DeadlockError via the watchdog, so every failure mode ends
// up as a reportable string, never a stuck process.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "comm/comm.hpp"
#include "fuzz/case.hpp"

namespace bsb::fuzz {

/// One rank's program for a fuzz case; identical code drives the symbolic
/// recording, the threaded execution, and the static verifier.
using RankBody = std::function<void(Comm&, std::span<std::byte>)>;

/// Deliberate schedule corruption for the harness self-test: proves the
/// detectors catch exactly the class of bug the pairing invariant guards
/// against.
enum class Sabotage : std::uint8_t {
  None,
  /// plan.step += 1 inside the tuned ring (off-by-one in the special
  /// phase). Only perturbs the tuned-ring variants.
  RingPlanStepOffByOne,
  /// reduce_scatter_blocks_ring ships every finished chunk TWICE to the
  /// nearest ancestor: values stay correct, but the transfer counts break
  /// and bsb-verify's reduce-flow pass must produce a redundancy witness.
  /// Only perturbs Variant::ReduceScatterBlocks.
  ReduceScatterDoubleFinal,
  /// bcast_hier leaders deliver the buffer TWICE to every non-leader of
  /// their node: values stay correct, but the intra-node transfer count
  /// doubles and bsb-verify's redundancy pass must produce a witness.
  /// Only perturbs Variant::BcastHier.
  HierDoubleFanout,
};

struct RunOutcome {
  bool ok = true;
  /// Empty when ok; otherwise the first discrepancy, in the order the
  /// checks run (symbolic first, so self-test failures surface without
  /// waiting out the watchdog).
  std::string detail;
  /// Messages the threaded run moved (0 if it was not reached).
  std::uint64_t messages = 0;
};

/// True when `sabotage` can perturb this case at all (self-test cases must
/// pick a tuned-ring variant).
bool sabotage_applies(const FuzzCase& c, Sabotage sabotage) noexcept;

/// The per-rank program for the case's variant (optionally sabotaged).
/// Shared by the differential runner and the static schedule verifier so
/// both analyze the same operation sequence.
RankBody make_rank_body(const FuzzCase& c, Sabotage sabotage = Sabotage::None);

RunOutcome run_case(const FuzzCase& c, Sabotage sabotage = Sabotage::None);

}  // namespace bsb::fuzz
