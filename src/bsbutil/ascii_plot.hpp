// Terminal line plots so the benchmark harnesses can render figure-shaped
// output (bandwidth vs. message size curves) the way the paper draws them.
#pragma once

#include <string>
#include <vector>

namespace bsb {

/// One plotted series: a label, a marker glyph and (x, y) points.
struct Series {
  std::string label;
  char marker = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Plot options. log2 axes mirror the paper's figures.
struct PlotOptions {
  int width = 72;    // interior columns
  int height = 20;   // interior rows
  bool log2_x = true;
  bool log2_y = true;
  std::string x_label = "x";
  std::string y_label = "y";
  std::string title;
};

/// Render all series onto one character canvas, with axis tick labels and a
/// legend. Series are drawn in order; later series overwrite earlier ones
/// where they collide.
std::string render_plot(const std::vector<Series>& series, const PlotOptions& opt);

}  // namespace bsb
