// Error handling: all invariant violations throw bsb::Error so tests can
// assert on failure paths instead of aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace bsb {

/// Base class for every error raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violation of an API precondition (caller bug).
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Violation of an internal invariant (library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* cond, const char* msg,
                                            const char* file, int line) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition failed: " + cond + " — " + msg);
}
[[noreturn]] inline void throw_internal(const char* cond, const char* msg,
                                        const char* file, int line) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) +
                      ": internal invariant failed: " + cond + " — " + msg);
}
}  // namespace detail

}  // namespace bsb

/// Check a caller-facing precondition; throws bsb::PreconditionError.
#define BSB_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) ::bsb::detail::throw_precondition(#cond, msg, __FILE__, __LINE__); \
  } while (0)

/// Check an internal invariant; throws bsb::InternalError.
#define BSB_ASSERT(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) ::bsb::detail::throw_internal(#cond, msg, __FILE__, __LINE__); \
  } while (0)
