#include "bsbutil/format.hpp"

#include <cmath>
#include <cstdio>

#include "bsbutil/units.hpp"

namespace bsb {

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= GiB && bytes % GiB == 0) return std::to_string(bytes / GiB) + "GiB";
  if (bytes >= MiB && bytes % MiB == 0) return std::to_string(bytes / MiB) + "MiB";
  if (bytes >= KiB && bytes % KiB == 0) return std::to_string(bytes / KiB) + "KiB";
  return std::to_string(bytes);
}

std::string format_mbps(double bytes_per_second, int decimals) {
  return format_fixed(bytes_per_second / static_cast<double>(MiB), decimals);
}

std::string format_time(double seconds) {
  const double a = std::fabs(seconds);
  if (a < 1e-6) return format_fixed(seconds * 1e9, 1) + "ns";
  if (a < 1e-3) return format_fixed(seconds * 1e6, 2) + "us";
  if (a < 1.0) return format_fixed(seconds * 1e3, 2) + "ms";
  return format_fixed(seconds, 3) + "s";
}

std::string format_percent(double fraction, int decimals) {
  const double pct = fraction * 100.0;
  std::string s = format_fixed(pct, decimals);
  if (pct >= 0 && !s.empty() && s[0] != '+') s = "+" + s;
  return s + "%";
}

}  // namespace bsb
