// Byte and time unit constants. The paper uses base-2 megabytes/kilobytes
// (2^20 / 2^10); we follow that convention everywhere.
#pragma once

#include <cstdint>

namespace bsb {

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

/// MPICH3 threshold between short and medium broadcast messages (bytes).
inline constexpr std::uint64_t kMpichShortMsgLimit = 12288;
/// MPICH3 threshold between medium and long broadcast messages (bytes).
inline constexpr std::uint64_t kMpichMediumMsgLimit = 524288;

inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;

}  // namespace bsb
