// Human-readable formatting of byte counts, rates and times for benchmark
// and example output.
#pragma once

#include <cstdint>
#include <string>

namespace bsb {

/// "12288", "512KiB", "4MiB" — exact power-of-two units when divisible,
/// raw byte count otherwise (matches the paper's axis labelling style).
std::string format_bytes(std::uint64_t bytes);

/// Bandwidth in base-2 MB/s with a fixed number of decimals, e.g. "2748.3".
std::string format_mbps(double bytes_per_second, int decimals = 1);

/// Time with an auto-selected unit: "1.23us", "45.6ms", "2.34s".
std::string format_time(double seconds);

/// Fixed-decimal double, e.g. format_fixed(1.2345, 2) == "1.23".
std::string format_fixed(double v, int decimals);

/// Percentage with sign, e.g. "+12.3%".
std::string format_percent(double fraction, int decimals = 1);

}  // namespace bsb
