// Aligned ASCII tables for terminal benchmark reports.
#pragma once

#include <string>
#include <vector>

namespace bsb {

/// Collects rows of string cells and renders them with aligned columns.
///
///   Table t({"P", "native", "tuned"});
///   t.add({"8", "56", "44"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Add one row. Rows shorter than the header are padded with "".
  void add(std::vector<std::string> row);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with a header underline; numeric-looking cells right-aligned.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bsb
