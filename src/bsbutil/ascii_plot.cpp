#include "bsbutil/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bsbutil/error.hpp"
#include "bsbutil/format.hpp"

namespace bsb {

namespace {
double transform(double v, bool log2_axis) {
  if (!log2_axis) return v;
  BSB_REQUIRE(v > 0, "log-scale plot requires positive values");
  return std::log2(v);
}
}  // namespace

std::string render_plot(const std::vector<Series>& series, const PlotOptions& opt) {
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const Series& s : series) {
    BSB_REQUIRE(s.x.size() == s.y.size(), "series x/y length mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = transform(s.x[i], opt.log2_x);
      const double ty = transform(s.y[i], opt.log2_y);
      xmin = std::min(xmin, tx); xmax = std::max(xmax, tx);
      ymin = std::min(ymin, ty); ymax = std::max(ymax, ty);
      any = true;
    }
  }
  if (!any) return "(empty plot)\n";
  if (xmax == xmin) { xmax = xmin + 1; }
  if (ymax == ymin) { ymax = ymin + 1; }

  const int W = std::max(opt.width, 16);
  const int H = std::max(opt.height, 4);
  std::vector<std::string> canvas(H, std::string(W, ' '));

  auto col_of = [&](double tx) {
    int c = static_cast<int>(std::lround((tx - xmin) / (xmax - xmin) * (W - 1)));
    return std::clamp(c, 0, W - 1);
  };
  auto row_of = [&](double ty) {
    int r = static_cast<int>(std::lround((ty - ymin) / (ymax - ymin) * (H - 1)));
    return std::clamp(H - 1 - r, 0, H - 1);  // row 0 is the top
  };

  for (const Series& s : series) {
    // connect consecutive points with linear interpolation in transformed space
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      const double x0 = transform(s.x[i], opt.log2_x), x1 = transform(s.x[i + 1], opt.log2_x);
      const double y0 = transform(s.y[i], opt.log2_y), y1 = transform(s.y[i + 1], opt.log2_y);
      const int c0 = col_of(x0), c1 = col_of(x1);
      const int steps = std::max(std::abs(c1 - c0), 1);
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        canvas[row_of(y0 + (y1 - y0) * t)][col_of(x0 + (x1 - x0) * t)] = '.';
      }
    }
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      canvas[row_of(transform(s.y[i], opt.log2_y))]
            [col_of(transform(s.x[i], opt.log2_x))] = s.marker;
    }
  }

  std::string out;
  if (!opt.title.empty()) out += opt.title + "\n";
  for (const Series& s : series) {
    out += "  ";
    out += s.marker;
    out += " " + s.label + "\n";
  }
  auto ylab = [&](int row) {
    const double ty = ymax - (ymax - ymin) * row / (H - 1);
    const double v = opt.log2_y ? std::exp2(ty) : ty;
    return format_fixed(v, v < 16 ? 2 : 0);
  };
  std::size_t lw = 0;
  for (int r = 0; r < H; ++r) lw = std::max(lw, ylab(r).size());
  for (int r = 0; r < H; ++r) {
    std::string lab = (r % 4 == 0 || r == H - 1) ? ylab(r) : "";
    out += std::string(lw - lab.size(), ' ') + lab + " |" + canvas[r] + "\n";
  }
  out += std::string(lw, ' ') + " +" + std::string(W, '-') + "\n";
  const double x_lo = opt.log2_x ? std::exp2(xmin) : xmin;
  const double x_hi = opt.log2_x ? std::exp2(xmax) : xmax;
  std::string footer = format_fixed(x_lo, 0);
  const std::string hi = format_fixed(x_hi, 0);
  footer += std::string(std::max<int>(1, W - static_cast<int>(footer.size() + hi.size())), ' ');
  footer += hi;
  out += std::string(lw + 2, ' ') + footer + "   (" + opt.x_label + ")  y=" +
         opt.y_label + "\n";
  return out;
}

}  // namespace bsb
