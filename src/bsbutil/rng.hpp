// Deterministic, seedable RNG (SplitMix64) plus pattern helpers used by the
// tests to fill and verify communication buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace bsb {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Deterministic for
/// a given seed, so test failures reproduce exactly.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Byte at offset `i` of the canonical test pattern for a given seed.
/// Position-dependent so any misplaced byte is detected, not just missing.
constexpr std::byte pattern_byte(std::uint64_t seed, std::uint64_t i) noexcept {
  std::uint64_t z = seed + i * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return static_cast<std::byte>((z ^ (z >> 27)) & 0xff);
}

/// Fill `buf` with the canonical pattern starting at logical offset `base`.
inline void fill_pattern(std::span<std::byte> buf, std::uint64_t seed,
                         std::uint64_t base = 0) noexcept {
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = pattern_byte(seed, base + i);
}

/// Index of the first byte of `buf` that deviates from the canonical
/// pattern, or buf.size() if all match.
inline std::size_t first_pattern_mismatch(std::span<const std::byte> buf,
                                          std::uint64_t seed,
                                          std::uint64_t base = 0) noexcept {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != pattern_byte(seed, base + i)) return i;
  }
  return buf.size();
}

}  // namespace bsb
