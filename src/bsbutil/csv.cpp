#include "bsbutil/csv.hpp"

#include "bsbutil/error.hpp"

namespace bsb {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw Error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const std::string& f : fields) {
    if (!first) out_ << ',';
    out_ << escape(f);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string> fields) {
  row(std::vector<std::string>(fields));
}

}  // namespace bsb
