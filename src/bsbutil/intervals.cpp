#include "bsbutil/intervals.hpp"

#include <algorithm>

#include "bsbutil/error.hpp"

namespace bsb {

namespace {
// First part whose hi is > lo, i.e. the first part that could touch or
// overlap an interval starting at lo.
auto first_touching(const std::vector<Interval>& parts, std::uint64_t lo) {
  return std::lower_bound(parts.begin(), parts.end(), lo,
                          [](const Interval& p, std::uint64_t v) { return p.hi < v; });
}
}  // namespace

void IntervalSet::insert(Interval iv) {
  if (iv.empty()) return;
  auto it = first_touching(parts_, iv.lo);
  // Merge every part that overlaps or is adjacent to iv.
  while (it != parts_.end() && it->lo <= iv.hi) {
    iv.lo = std::min(iv.lo, it->lo);
    iv.hi = std::max(iv.hi, it->hi);
    it = parts_.erase(it);
  }
  parts_.insert(it, iv);
}

void IntervalSet::erase(Interval iv) {
  if (iv.empty()) return;
  auto it = std::lower_bound(parts_.begin(), parts_.end(), iv.lo,
                             [](const Interval& p, std::uint64_t v) { return p.hi <= v; });
  while (it != parts_.end() && it->lo < iv.hi) {
    const Interval cur = *it;
    it = parts_.erase(it);
    if (cur.lo < iv.lo) it = parts_.insert(it, Interval{cur.lo, iv.lo}) + 1;
    if (cur.hi > iv.hi) it = parts_.insert(it, Interval{iv.hi, cur.hi}) + 1;
  }
}

bool IntervalSet::contains(Interval iv) const noexcept {
  if (iv.empty()) return true;
  auto it = std::lower_bound(parts_.begin(), parts_.end(), iv.lo,
                             [](const Interval& p, std::uint64_t v) { return p.hi <= v; });
  return it != parts_.end() && it->lo <= iv.lo && iv.hi <= it->hi;
}

bool IntervalSet::intersects(Interval iv) const noexcept {
  if (iv.empty()) return false;
  auto it = std::lower_bound(parts_.begin(), parts_.end(), iv.lo,
                             [](const Interval& p, std::uint64_t v) { return p.hi <= v; });
  return it != parts_.end() && it->lo < iv.hi;
}

std::uint64_t IntervalSet::size() const noexcept {
  std::uint64_t n = 0;
  for (const Interval& p : parts_) n += p.length();
  return n;
}

std::uint64_t IntervalSet::overlap(Interval iv) const noexcept {
  if (iv.empty()) return 0;
  std::uint64_t n = 0;
  auto it = std::lower_bound(parts_.begin(), parts_.end(), iv.lo,
                             [](const Interval& p, std::uint64_t v) { return p.hi <= v; });
  for (; it != parts_.end() && it->lo < iv.hi; ++it) {
    n += std::min(it->hi, iv.hi) - std::max(it->lo, iv.lo);
  }
  return n;
}

void IntervalSet::merge(const IntervalSet& other) {
  for (const Interval& p : other.parts_) insert(p);
}

IntervalSet IntervalSet::complement(std::uint64_t n) const {
  IntervalSet out;
  std::uint64_t cursor = 0;
  for (const Interval& p : parts_) {
    if (p.lo >= n) break;
    if (p.lo > cursor) out.insert({cursor, p.lo});
    cursor = std::max(cursor, p.hi);
  }
  if (cursor < n) out.insert({cursor, n});
  return out;
}

std::string IntervalSet::to_string() const {
  if (parts_.empty()) return "{}";
  std::string s;
  for (const Interval& p : parts_) {
    if (!s.empty()) s += "+";
    s += "[" + std::to_string(p.lo) + "," + std::to_string(p.hi) + ")";
  }
  return s;
}

}  // namespace bsb
