// Small integer math helpers shared across the project.
#pragma once

#include <cstdint>
#include <limits>

#include "bsbutil/error.hpp"

namespace bsb {

/// True if `x` is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); requires x >= 1.
constexpr int floor_log2(std::uint64_t x) {
  BSB_REQUIRE(x >= 1, "floor_log2 requires x >= 1");
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)); requires x >= 1. ceil_log2(1) == 0.
constexpr int ceil_log2(std::uint64_t x) {
  BSB_REQUIRE(x >= 1, "ceil_log2 requires x >= 1");
  return is_pow2(x) ? floor_log2(x) : floor_log2(x) + 1;
}

/// Smallest power of two >= x; requires x >= 1.
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return std::uint64_t{1} << ceil_log2(x);
}

/// ceil(a / b) for nonnegative a, positive b.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  BSB_REQUIRE(b > 0, "ceil_div requires b > 0");
  return (a + b - 1) / b;
}

}  // namespace bsb
