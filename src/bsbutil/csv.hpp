// Minimal CSV writer for benchmark result files.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace bsb {

/// Writes rows to a CSV file. Fields containing commas, quotes or newlines
/// are quoted per RFC 4180. The file is flushed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws bsb::Error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write one row; each field is escaped as needed.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string> fields);

  const std::string& path() const noexcept { return path_; }

  /// Escape one field per RFC 4180 (exposed for testing).
  static std::string escape(const std::string& field);

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace bsb
