#include "bsbutil/table.hpp"

#include <algorithm>
#include <cctype>

namespace bsb {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == '%' || c == 'x' || c == 'e' || c == 'E')) {
      return false;
    }
  }
  return true;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  const std::size_t ncols = header_.size();
  std::vector<std::size_t> width(ncols);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < ncols; ++c) width[c] = std::max(width[c], r[c].size());
  }

  auto emit = [&](const std::vector<std::string>& r, std::string& out) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::size_t pad = width[c] - r[c].size();
      if (c) out += "  ";
      if (looks_numeric(r[c])) {
        out.append(pad, ' ');
        out += r[c];
      } else {
        out += r[c];
        out.append(pad, ' ');
      }
    }
    // trim trailing spaces
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  emit(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& r : rows_) emit(r, out);
  return out;
}

}  // namespace bsb
