// Half-open byte-interval sets, used by the schedule coverage validator to
// track which bytes of the broadcast source buffer each rank holds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bsb {

/// Half-open interval [lo, hi) over byte offsets. Empty when lo >= hi.
struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  constexpr bool empty() const noexcept { return lo >= hi; }
  constexpr std::uint64_t length() const noexcept { return empty() ? 0 : hi - lo; }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// A set of bytes, maintained as sorted, disjoint, non-adjacent half-open
/// intervals. All mutating operations keep that normal form.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(Interval iv) { insert(iv); }

  /// Add [iv.lo, iv.hi) to the set (union).
  void insert(Interval iv);

  /// Remove [iv.lo, iv.hi) from the set (difference).
  void erase(Interval iv);

  /// True if every byte of `iv` is in the set. An empty `iv` is contained.
  bool contains(Interval iv) const noexcept;

  /// True if any byte of `iv` is in the set.
  bool intersects(Interval iv) const noexcept;

  /// Total number of bytes in the set.
  std::uint64_t size() const noexcept;

  /// Number of bytes of `iv` that are in the set.
  std::uint64_t overlap(Interval iv) const noexcept;

  bool empty() const noexcept { return parts_.empty(); }
  const std::vector<Interval>& parts() const noexcept { return parts_; }

  /// Union with another set.
  void merge(const IntervalSet& other);

  /// Bytes of [0, n) NOT in the set.
  IntervalSet complement(std::uint64_t n) const;

  /// Human-readable form like "[0,4)+[8,12)" for diagnostics.
  std::string to_string() const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  std::vector<Interval> parts_;  // sorted by lo; disjoint; non-adjacent
};

}  // namespace bsb
