#include "mpisim/progress.hpp"

#include <algorithm>
#include <chrono>

#include "bsbutil/error.hpp"
#include "mpisim/errors.hpp"

namespace bsb::mpisim {

/// One in-flight collective: plan + cursor + the (at most two) outstanding
/// point-to-point requests of the current step. Owned jointly by the
/// engine's active list and the user's CollRequest handles; only the
/// owning rank's thread ever touches it.
struct CollRequest::Op {
  std::shared_ptr<const coll::Plan> plan;
  std::span<std::byte> buffer;
  int local_rank = 0;
  std::vector<int> members;  // plan rank -> world rank; empty = identity
  int context = 0;           // SubComm tag namespace; 0 = world
  int ctx = 0;               // per-communicator operation sequence slot

  std::size_t pc = 0;        // next / currently-issued step
  bool issued = false;       // step pc's requests are outstanding
  Request send_req, recv_req;
  bool send_live = false;
  bool recv_live = false;

  bool done = false;
  std::exception_ptr error;  // deferred; thrown at first wait()/test()

  int world_rank(int r) const {
    return members.empty() ? r : members[static_cast<std::size_t>(r)];
  }

  /// Replicates SubComm::translate_tag on top of the per-op context slot,
  /// so nonblocking subgroup traffic lands in exactly the namespace its
  /// blocking counterpart would use.
  int world_tag(int tag) const {
    const int eff = tag + ProgressEngine::kCtxStride * ctx;
    return context == 0 ? eff : context * (kMaxUserTag + 1) + eff;
  }
};

// ------------------------------------------------------------ CollRequest

void CollRequest::wait() {
  if (!op_) return;
  BSB_ASSERT(engine_ != nullptr, "CollRequest: op without engine");
  engine_->wait_op(op_);
}

bool CollRequest::test() {
  if (!op_) return true;
  BSB_ASSERT(engine_ != nullptr, "CollRequest: op without engine");
  engine_->progress();
  if (op_->error) ProgressEngine::rethrow_op_error(*op_);
  return op_->done;
}

void wait_all_coll(std::span<CollRequest> requests) {
  // Unlike point-to-point wait_all there is no drain shortcut: every wait
  // is watchdog-bounded, and completing the remaining collectives is
  // usually possible (and desirable) even after one failed.
  std::exception_ptr first_error;
  for (CollRequest& r : requests) {
    try {
      r.wait();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

// --------------------------------------------------------- ProgressEngine

CollRequest ProgressEngine::start(std::shared_ptr<const coll::Plan> plan,
                                  std::span<std::byte> buffer, int local_rank,
                                  std::vector<int> members, int context) {
  BSB_REQUIRE(plan != nullptr, "ProgressEngine::start: null plan");
  BSB_REQUIRE(buffer.size() == plan->nbytes,
              "ProgressEngine::start: buffer size differs from the plan");
  BSB_REQUIRE(local_rank >= 0 && local_rank < plan->nranks,
              "ProgressEngine::start: local rank out of range");
  BSB_REQUIRE(members.empty() ||
                  members.size() == static_cast<std::size_t>(plan->nranks),
              "ProgressEngine::start: member map size differs from the plan");
  BSB_REQUIRE(context >= 0, "ProgressEngine::start: negative context");
  BSB_REQUIRE(plan->max_tag < kCtxStride,
              "ProgressEngine::start: plan tag exceeds the context stride");

  auto op = std::make_shared<CollRequest::Op>();
  op->plan = std::move(plan);
  op->buffer = buffer;
  op->local_rank = local_rank;
  op->members = std::move(members);
  op->context = context;
  op->ctx = 1 + static_cast<int>(next_seq_[context]++ %
                                 static_cast<std::uint64_t>(kMaxCtx));
  active_.push_back(op);
  progress_op(*op);  // issue the first step right away

  CollRequest req;
  req.op_ = op;
  req.engine_ = this;
  return req;
}

void ProgressEngine::progress() {
  for (const auto& op : active_) progress_op(*op);
  std::erase_if(active_, [](const std::shared_ptr<CollRequest::Op>& op) {
    return op->done || op->error != nullptr;
  });
}

void ProgressEngine::progress_op(CollRequest::Op& op) {
  if (op.done || op.error) return;
  const auto& steps = op.plan->steps[static_cast<std::size_t>(op.local_rank)];
  while (true) {
    if (!op.issued) {
      if (op.pc == steps.size()) {
        op.done = true;
        return;
      }
      const coll::PlanStep& s = steps[op.pc];
      try {
        // Post the receive half first so an inbound eager payload can land
        // directly in the user buffer instead of a mailbox copy.
        if (s.kind != coll::PlanStep::Kind::Send) {
          op.recv_req = comm_->irecv(op.buffer.subspan(s.recv_off, s.recv_len),
                                     op.world_rank(s.src), op.world_tag(s.tag));
          op.recv_live = true;
        }
        if (s.kind != coll::PlanStep::Kind::Recv) {
          op.send_req = comm_->isend(
              std::span<const std::byte>(op.buffer).subspan(s.send_off, s.send_len),
              op.world_rank(s.dst), op.world_tag(s.tag));
          op.send_live = true;
        }
      } catch (...) {
        op.error = std::current_exception();
        op.send_req = Request{};  // dropping a live request cancels it
        op.recv_req = Request{};
        op.send_live = op.recv_live = false;
        return;
      }
      op.issued = true;
    }
    try {
      if (op.recv_live && op.recv_req.test()) {
        op.recv_req = Request{};
        op.recv_live = false;
      }
      if (op.send_live && op.send_req.test()) {
        op.send_req = Request{};
        op.send_live = false;
      }
    } catch (...) {
      op.error = std::current_exception();
      op.send_req = Request{};
      op.recv_req = Request{};
      op.send_live = op.recv_live = false;
      return;
    }
    if (op.send_live || op.recv_live) return;  // parked behind a pending peer
    op.issued = false;
    ++op.pc;
    ++steps_retired_;
  }
}

void ProgressEngine::wait_op(const std::shared_ptr<CollRequest::Op>& op) {
  const double watchdog = comm_->world().config().watchdog_seconds;
  auto last_advance = std::chrono::steady_clock::now();
  std::uint64_t seen = steps_retired_;
  double slice = 0.0002;
  while (true) {
    progress();
    if (op->error) rethrow_op_error(*op);
    if (op->done) return;
    if (steps_retired_ != seen) {
      // ANY op advancing counts as progress: a heavily loaded rank must
      // not trip the watchdog while the engine is demonstrably working.
      seen = steps_retired_;
      last_advance = std::chrono::steady_clock::now();
      slice = 0.0002;
    }
    // progress_op only parks an op behind an outstanding request, so one
    // of the two halves is live; block briefly on it rather than spin.
    BSB_ASSERT(op->recv_live || op->send_live,
               "ProgressEngine: parked op without a live request");
    const Request pending = op->recv_live ? op->recv_req : op->send_req;
    if (!pending.wait_for(slice)) {
      slice = std::min(slice * 2.0, 0.01);
      const std::chrono::duration<double> stalled =
          std::chrono::steady_clock::now() - last_advance;
      if (stalled.count() > watchdog) {
        throw DeadlockError(
            "CollRequest::wait: watchdog expired with " +
            std::to_string(in_flight()) + " collective(s) in flight and no "
            "step progress (peer rank missing or stuck?)");
      }
    }
  }
}

void ProgressEngine::rethrow_op_error(CollRequest::Op& op) {
  const std::exception_ptr error = op.error;
  op.error = nullptr;
  op.done = true;  // reported: the request now counts as complete
  std::rethrow_exception(error);
}

}  // namespace bsb::mpisim
