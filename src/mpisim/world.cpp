#include "mpisim/world.hpp"

#include <chrono>
#include <exception>
#include <thread>

#include "bsbutil/error.hpp"
#include "mpisim/errors.hpp"
#include "mpisim/progress.hpp"
#include "mpisim/thread_comm.hpp"

namespace bsb::mpisim {

namespace detail {

namespace {
// Retention caps for the per-mailbox payload slab: enough to keep steady
// funnel traffic allocation-free, small enough that 64-rank fuzz worlds
// stay cheap (worst case ~8 MiB per mailbox).
constexpr std::size_t kPoolMaxBuffers = 64;
constexpr std::size_t kPoolMaxBytes = 8u << 20;
constexpr std::size_t kPoolMaxBufferBytes = 4u << 20;
}  // namespace

std::vector<std::byte> Mailbox::acquire_payload(std::span<const std::byte> src) {
  std::vector<std::byte> buf;
  if (!payload_pool.empty()) {
    buf = std::move(payload_pool.back());
    payload_pool.pop_back();
    payload_pool_bytes -= buf.capacity();
  }
  buf.assign(src.begin(), src.end());
  return buf;
}

void Mailbox::release_payload(std::vector<std::byte>&& payload) noexcept {
  const std::size_t cap = payload.capacity();
  if (cap == 0 || cap > kPoolMaxBufferBytes ||
      payload_pool.size() >= kPoolMaxBuffers ||
      payload_pool_bytes + cap > kPoolMaxBytes) {
    return;  // payload freed on scope exit
  }
  payload.clear();
  payload_pool_bytes += cap;
  payload_pool.push_back(std::move(payload));
}

}  // namespace detail

World::World(int nranks, WorldConfig cfg) : nranks_(nranks), cfg_(cfg) {
  BSB_REQUIRE(nranks > 0, "World: nranks must be positive");
  BSB_REQUIRE(cfg.watchdog_seconds > 0, "World: watchdog must be positive");
  mailboxes_.reserve(nranks);
  comms_.reserve(nranks);
  engines_.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<detail::Mailbox>());
    comms_.push_back(std::unique_ptr<ThreadComm>(new ThreadComm(*this, r)));
    engines_.push_back(
        std::unique_ptr<ProgressEngine>(new ProgressEngine(*comms_.back())));
  }
  stat_msgs_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(nranks) * nranks);
  stat_bytes_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(nranks) * nranks);
}

World::~World() = default;

ThreadComm& World::comm(int rank) {
  BSB_REQUIRE(rank >= 0 && rank < nranks_, "World: rank out of range");
  return *comms_[rank];
}

ProgressEngine& World::progress_engine(int rank) {
  BSB_REQUIRE(rank >= 0 && rank < nranks_, "World: rank out of range");
  return *engines_[rank];
}

ProgressEngine& ThreadComm::progress_engine() {
  return world_->progress_engine(rank_);
}

void World::run(const std::function<void(ThreadComm&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(nranks_);
  std::mutex emu;
  std::exception_ptr first_error;
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(*comms_[r]);
      } catch (...) {
        const std::lock_guard<std::mutex> lk(emu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t World::count_send(int src, int dst, std::size_t bytes) noexcept {
  const std::size_t idx = static_cast<std::size_t>(src) * nranks_ + dst;
  const std::uint64_t seq = stat_msgs_[idx].fetch_add(1, std::memory_order_relaxed);
  stat_bytes_[idx].fetch_add(bytes, std::memory_order_relaxed);
  return seq;
}

PairStats World::pair_stats(int src, int dst) const {
  BSB_REQUIRE(src >= 0 && src < nranks_ && dst >= 0 && dst < nranks_,
              "World: pair_stats rank out of range");
  const std::size_t idx = static_cast<std::size_t>(src) * nranks_ + dst;
  return {stat_msgs_[idx].load(std::memory_order_relaxed),
          stat_bytes_[idx].load(std::memory_order_relaxed)};
}

std::uint64_t World::total_msgs() const noexcept {
  std::uint64_t n = 0;
  for (const auto& a : stat_msgs_) n += a.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t World::total_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& a : stat_bytes_) n += a.load(std::memory_order_relaxed);
  return n;
}

void World::reset_stats() noexcept {
  for (auto& a : stat_msgs_) a.store(0, std::memory_order_relaxed);
  for (auto& a : stat_bytes_) a.store(0, std::memory_order_relaxed);
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lk(barrier_mu_);
  const bool sense = barrier_sense_;
  if (++barrier_waiting_ == nranks_) {
    barrier_waiting_ = 0;
    barrier_sense_ = !barrier_sense_;
    barrier_cv_.notify_all();
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(cfg_.watchdog_seconds));
  while (barrier_sense_ == sense) {
    if (barrier_cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        barrier_sense_ == sense) {
      throw DeadlockError("barrier: watchdog expired; some rank never arrived");
    }
  }
}

}  // namespace bsb::mpisim
