// Runtime error types raised by the thread-backed message-passing backend.
#pragma once

#include "bsbutil/error.hpp"

namespace bsb::mpisim {

/// A matched send was larger than the posted receive buffer
/// (MPI_ERR_TRUNCATE). Raised on both sides of the match.
class TruncationError : public Error {
 public:
  explicit TruncationError(const std::string& what) : Error(what) {}
};

/// A blocking operation exceeded the configured watchdog timeout; the rank
/// set is almost certainly deadlocked. Converts test hangs into failures.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

}  // namespace bsb::mpisim
