// Bucketed matching indexes for the thread backend's mailboxes.
//
// The original mailbox was a flat deque scanned with find_if on every
// isend/irecv/probe — O(queued messages) per operation, which dominates
// funnel patterns (all-to-one) and fuzz worlds with deep unexpected
// queues. These indexes make the hot cases O(1) while reproducing the
// linear scan's match choice EXACTLY (tests/test_matching.cpp asserts
// equivalence against a reference scan under randomized interleavings,
// wildcards and fault-injected reordering):
//
//  * ArrivalQueue — unexpected messages, kept in "scan order": a master
//    list ordered exactly as the old deque (including fault-injection
//    reorder inserts) plus per-(src,tag) FIFO buckets of list iterators.
//    Each node carries a 64-bit gap-numbered position key so wildcard
//    lookups can compare bucket fronts in O(1); keys are renumbered (rare,
//    amortized O(1)) when a reorder insert exhausts a gap. Because fault
//    reordering never crosses two arrivals of the SAME source, a bucket's
//    iterators are always in list order, so its front is its earliest.
//
//  * PendingIndex — posted receives, bucketed by their (src, tag) pattern
//    (wildcards included as ordinary key values). A sender probes at most
//    four buckets — (s,t), (s,*), (*,t), (*,*) — and takes the smallest
//    post-sequence front: identical to scanning the old post-order deque.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"  // kAnySource / kAnyTag
#include "comm/status.hpp"

namespace bsb::mpisim::detail {

inline bool matches(int want_src, int want_tag, int src, int tag) noexcept {
  return (want_src == kAnySource || want_src == src) &&
         (want_tag == kAnyTag || want_tag == tag);
}

/// Bucket key for a (src, tag) pair; wildcards (-1) participate as
/// ordinary values on the pending side.
inline std::uint64_t bucket_key(int src, int tag) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(tag);
}

/// Sender-side completion handle for rendezvous sends. `done` flips under
/// the mailbox mutex with release ordering after `error` is final, so
/// waiters may spin on it locklessly and read `error` after an acquire
/// load. `waiters` (mutex-guarded) gates the targeted wakeup.
struct SendCompletion {
  std::atomic<bool> done{false};
  std::condition_variable cv;  // paired with the mailbox mutex
  int waiters = 0;             // guarded by the mailbox mutex
  std::string error;           // non-empty => the match failed (truncation)
};

/// A message sitting in the destination's mailbox, not yet matched.
struct Arrival {
  int src = -1;
  int tag = -1;
  bool eager = true;
  std::vector<std::byte> payload;              // eager copy (pooled)
  std::span<const std::byte> src_view;         // rendezvous view
  std::shared_ptr<SendCompletion> completion;  // rendezvous only
  std::uint64_t pos = 0;                       // scan-order key (ArrivalQueue)
  std::size_t size() const noexcept {
    return eager ? payload.size() : src_view.size();
  }
};

/// A posted receive waiting for a matching message. Completion protocol as
/// for SendCompletion: status/error settle before the release store of
/// `done`.
struct PendingRecv {
  int src = -1;  // may be kAnySource
  int tag = -1;  // may be kAnyTag
  std::span<std::byte> buf;
  std::atomic<bool> done{false};
  std::condition_variable cv;  // paired with the mailbox mutex
  int waiters = 0;             // guarded by the mailbox mutex
  std::string error;
  Status status;
  std::uint64_t seq = 0;  // post order, assigned by PendingIndex
};

/// Unexpected-message queue with O(1) exact matching and scan-order
/// wildcard matching. NOT thread-safe; the owning mailbox's mutex guards it.
class ArrivalQueue {
 public:
  using List = std::list<Arrival>;
  using iterator = List::iterator;

  bool empty() const noexcept { return list_.empty(); }
  std::size_t size() const noexcept { return list_.size(); }
  iterator end() noexcept { return list_.end(); }

  /// Queue `arr`, jumping over at most `jump` trailing arrivals from OTHER
  /// sources (fault-injected reordering). Never crosses an arrival from
  /// the same source, so per-source non-overtaking order is preserved.
  void enqueue(Arrival&& arr, std::size_t jump);

  /// The first arrival in scan order matching (src, tag); wildcards
  /// allowed. end() if none.
  iterator find(int src, int tag);

  /// Remove and return the arrival at `it`.
  Arrival take(iterator it);

  /// Remove the queued arrival advertising `completion` (an abandoned
  /// rendezvous send). Returns false if it is no longer queued.
  bool cancel(const SendCompletion* completion, int src, int tag);

 private:
  void renumber();

  List list_;  // scan order (== the old deque order)
  std::unordered_map<std::uint64_t, std::deque<iterator>> buckets_;
};

/// Posted-receive index with O(1) matching against a concrete (src, tag).
/// NOT thread-safe; the owning mailbox's mutex guards it.
class PendingIndex {
 public:
  bool empty() const noexcept { return count_ == 0; }

  /// Register a posted receive (assigns its post-order `seq`).
  void post(std::shared_ptr<PendingRecv> pr);

  /// Remove and return the earliest-posted receive matching a message with
  /// concrete (src, tag), or nullptr.
  std::shared_ptr<PendingRecv> match(int src, int tag);

  /// Remove an abandoned posted receive. Returns false if already matched
  /// or cancelled.
  bool cancel(const PendingRecv* pr);

 private:
  std::uint64_t next_seq_ = 0;
  std::size_t count_ = 0;
  std::unordered_map<std::uint64_t, std::deque<std::shared_ptr<PendingRecv>>>
      buckets_;
};

}  // namespace bsb::mpisim::detail
