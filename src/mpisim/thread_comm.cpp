#include "mpisim/thread_comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "bsbutil/error.hpp"
#include "bsbutil/rng.hpp"
#include "mpisim/errors.hpp"

namespace bsb::mpisim {

namespace {

bool matches(int want_src, int want_tag, int src, int tag) noexcept {
  return (want_src == kAnySource || want_src == src) &&
         (want_tag == kAnyTag || want_tag == tag);
}

/// Per-message fault decisions, derived deterministically from the fault
/// seed and the message identity (src, dst, tag, per-pair sequence number)
/// so a given seed injects the same faults on every run.
struct FaultDecisions {
  std::uint32_t delay_us = 0;
  std::size_t reorder_jump = 0;  // arrivals of OTHER sources to jump over
  bool force_rendezvous = false;
  bool force_eager = false;
};

FaultDecisions roll_faults(const FaultConfig& f, int src, int dst, int tag,
                           std::uint64_t seq) noexcept {
  std::uint64_t key = f.seed;
  for (const std::uint64_t v :
       {static_cast<std::uint64_t>(src), static_cast<std::uint64_t>(dst),
        static_cast<std::uint64_t>(tag), seq}) {
    key = (key ^ v) * 0x100000001b3ULL + 0x9e3779b97f4a7c15ULL;
  }
  SplitMix64 dice(key);
  FaultDecisions d;
  if (dice.next_double() < f.delay_prob && f.max_delay_us > 0) {
    d.delay_us = static_cast<std::uint32_t>(dice.next_below(f.max_delay_us) + 1);
  }
  if (dice.next_double() < f.reorder_prob) {
    d.reorder_jump = static_cast<std::size_t>(1 + dice.next_below(4));
  }
  d.force_rendezvous = dice.next_double() < f.force_rendezvous_prob;
  d.force_eager = dice.next_double() < f.force_eager_prob;
  return d;
}

/// Queue `arr`, jumping over at most `jump` trailing arrivals from OTHER
/// sources. Never crosses an arrival from the same source, so per-source
/// non-overtaking order (the only cross-message order MPI guarantees) is
/// preserved; only the inter-source order seen by wildcard receives moves.
void enqueue_arrival(detail::Mailbox& box, detail::Arrival&& arr,
                     std::size_t jump) {
  auto pos = box.arrivals.end();
  while (jump > 0 && pos != box.arrivals.begin() &&
         std::prev(pos)->src != arr.src) {
    --pos;
    --jump;
  }
  box.arrivals.insert(pos, std::move(arr));
}

void copy_bytes(std::span<std::byte> dst, std::span<const std::byte> src) {
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
}

std::chrono::steady_clock::time_point deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

}  // namespace

// ---------------------------------------------------------------- Request

struct Request::State {
  // Exactly one of `recv` / `sendc` is set; `box` is the mailbox whose
  // condition variable announces completion.
  std::shared_ptr<detail::PendingRecv> recv;
  std::shared_ptr<detail::SendCompletion> sendc;
  detail::Mailbox* box = nullptr;
  double watchdog_seconds = 60.0;
  Status immediate;   // for operations that completed inline
  bool inline_done = false;
};

void Request::wait() { (void)wait_status(); }

Status Request::wait_status() {
  if (!state_) return {};
  State& s = *state_;
  if (s.inline_done) return s.immediate;
  BSB_ASSERT(s.box != nullptr, "Request: incomplete state without mailbox");
  std::unique_lock<std::mutex> lk(s.box->mu);
  const auto deadline = deadline_after(s.watchdog_seconds);
  auto done = [&] {
    if (s.recv) return s.recv->done;
    return s.sendc->done;
  };
  while (!done()) {
    if (s.box->cv.wait_until(lk, deadline) == std::cv_status::timeout && !done()) {
      throw DeadlockError(
          "request: watchdog expired waiting for a matching peer operation");
    }
  }
  if (s.recv) {
    if (!s.recv->error.empty()) throw TruncationError(s.recv->error);
    return s.recv->status;
  }
  if (!s.sendc->error.empty()) throw TruncationError(s.sendc->error);
  return {};
}

bool Request::test() const {
  if (!state_) return true;
  const State& s = *state_;
  if (s.inline_done) return true;
  const std::lock_guard<std::mutex> lk(s.box->mu);
  return s.recv ? s.recv->done : s.sendc->done;
}

void wait_all(std::span<Request> requests) {
  std::exception_ptr first_error;
  for (Request& r : requests) {
    try {
      r.wait();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

// ------------------------------------------------------------- ThreadComm

Request ThreadComm::isend(std::span<const std::byte> buf, int dest, int tag) {
  BSB_REQUIRE(dest >= 0 && dest < size(), "send: destination out of range");
  BSB_REQUIRE(tag >= 0, "send: tag must be nonnegative");
  const std::uint64_t seq = world_->count_send(rank_, dest, buf.size());

  const FaultConfig& faults = world_->config().faults;
  FaultDecisions fd;
  if (faults.enabled) {
    fd = roll_faults(faults, rank_, dest, tag, seq);
    if (fd.delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(fd.delay_us));
    }
  }

  detail::Mailbox& box = world_->mailbox(dest);
  const std::lock_guard<std::mutex> lk(box.mu);

  // 1. A matching receive is already posted: deliver straight into it.
  const auto it = std::find_if(
      box.pending.begin(), box.pending.end(), [&](const auto& pr) {
        return matches(pr->src, pr->tag, rank_, tag);
      });
  if (it != box.pending.end()) {
    const std::shared_ptr<detail::PendingRecv> pr = *it;
    box.pending.erase(it);
    if (buf.size() > pr->buf.size()) {
      pr->error = "truncation: " + std::to_string(buf.size()) +
                  "-byte message into " + std::to_string(pr->buf.size()) +
                  "-byte receive buffer (src " + std::to_string(rank_) +
                  ", tag " + std::to_string(tag) + ")";
      pr->done = true;
      box.cv.notify_all();
      throw TruncationError(pr->error);
    }
    copy_bytes(pr->buf, buf);
    pr->status = Status{rank_, tag, buf.size()};
    pr->done = true;
    box.cv.notify_all();
    Request req;
    req.state_ = std::make_shared<Request::State>();
    req.state_->inline_done = true;
    return req;
  }

  // 2. Eager: copy into the mailbox and complete immediately. Fault
  //    injection may flip the protocol either way; both choices are legal
  //    for a standard-mode send, so correct algorithms must survive both.
  bool eager = buf.size() <= world_->config().eager_threshold;
  if (eager && fd.force_rendezvous) eager = false;
  if (!eager && fd.force_eager) eager = true;
  if (eager) {
    detail::Arrival arr;
    arr.src = rank_;
    arr.tag = tag;
    arr.eager = true;
    arr.payload.assign(buf.begin(), buf.end());
    enqueue_arrival(box, std::move(arr), fd.reorder_jump);
    box.cv.notify_all();
    Request req;
    req.state_ = std::make_shared<Request::State>();
    req.state_->inline_done = true;
    return req;
  }

  // 3. Rendezvous: advertise the source buffer; completion happens when the
  //    receiver copies out of it.
  detail::Arrival arr;
  arr.src = rank_;
  arr.tag = tag;
  arr.eager = false;
  arr.src_view = buf;
  arr.completion = std::make_shared<detail::SendCompletion>();
  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->sendc = arr.completion;
  req.state_->box = &box;
  req.state_->watchdog_seconds = world_->config().watchdog_seconds;
  enqueue_arrival(box, std::move(arr), fd.reorder_jump);
  box.cv.notify_all();
  return req;
}

Request ThreadComm::irecv(std::span<std::byte> buf, int source, int tag) {
  BSB_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
              "recv: source out of range");
  BSB_REQUIRE(tag == kAnyTag || tag >= 0, "recv: bad tag");

  detail::Mailbox& box = world_->mailbox(rank_);
  const std::lock_guard<std::mutex> lk(box.mu);

  // 1. A matching message already arrived: consume it now.
  const auto it = std::find_if(
      box.arrivals.begin(), box.arrivals.end(), [&](const detail::Arrival& a) {
        return matches(source, tag, a.src, a.tag);
      });
  if (it != box.arrivals.end()) {
    detail::Arrival arr = std::move(*it);
    box.arrivals.erase(it);
    if (arr.size() > buf.size()) {
      const std::string err = "truncation: " + std::to_string(arr.size()) +
                              "-byte message into " + std::to_string(buf.size()) +
                              "-byte receive buffer (src " + std::to_string(arr.src) +
                              ", tag " + std::to_string(arr.tag) + ")";
      if (arr.completion) {
        arr.completion->error = err;
        arr.completion->done = true;
        box.cv.notify_all();
      }
      throw TruncationError(err);
    }
    if (arr.eager) {
      copy_bytes(buf, arr.payload);
    } else {
      copy_bytes(buf, arr.src_view);
      arr.completion->done = true;
      box.cv.notify_all();
    }
    Request req;
    req.state_ = std::make_shared<Request::State>();
    req.state_->inline_done = true;
    req.state_->immediate = Status{arr.src, arr.tag, arr.size()};
    return req;
  }

  // 2. Post the receive and wait for a sender to match it.
  auto pr = std::make_shared<detail::PendingRecv>();
  pr->src = source;
  pr->tag = tag;
  pr->buf = buf;
  box.pending.push_back(pr);
  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->recv = std::move(pr);
  req.state_->box = &box;
  req.state_->watchdog_seconds = world_->config().watchdog_seconds;
  return req;
}

std::optional<Status> ThreadComm::iprobe(int source, int tag) {
  BSB_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
              "probe: source out of range");
  detail::Mailbox& box = world_->mailbox(rank_);
  const std::lock_guard<std::mutex> lk(box.mu);
  const auto it = std::find_if(
      box.arrivals.begin(), box.arrivals.end(), [&](const detail::Arrival& a) {
        return matches(source, tag, a.src, a.tag);
      });
  if (it == box.arrivals.end()) return std::nullopt;
  return Status{it->src, it->tag, it->size()};
}

Status ThreadComm::probe(int source, int tag) {
  BSB_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
              "probe: source out of range");
  detail::Mailbox& box = world_->mailbox(rank_);
  std::unique_lock<std::mutex> lk(box.mu);
  const auto deadline = deadline_after(world_->config().watchdog_seconds);
  auto scan = [&]() -> const detail::Arrival* {
    const auto it = std::find_if(
        box.arrivals.begin(), box.arrivals.end(), [&](const detail::Arrival& a) {
          return matches(source, tag, a.src, a.tag);
        });
    return it == box.arrivals.end() ? nullptr : &*it;
  };
  while (true) {
    if (const detail::Arrival* a = scan()) return Status{a->src, a->tag, a->size()};
    if (box.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
      if (const detail::Arrival* a = scan()) {
        return Status{a->src, a->tag, a->size()};
      }
      throw DeadlockError("probe: watchdog expired; no matching message arrived");
    }
  }
}

void ThreadComm::send(std::span<const std::byte> buf, int dest, int tag) {
  isend(buf, dest, tag).wait();
}

Status ThreadComm::recv(std::span<std::byte> buf, int source, int tag) {
  return irecv(buf, source, tag).wait_status();
}

Status ThreadComm::sendrecv(std::span<const std::byte> sendbuf, int dest, int sendtag,
                            std::span<std::byte> recvbuf, int source, int recvtag) {
  // Post the receive before the (possibly blocking) send so that rings of
  // sendrecv calls always make progress, exactly as MPI_Sendrecv must.
  Request r = irecv(recvbuf, source, recvtag);
  send(sendbuf, dest, sendtag);
  return r.wait_status();
}

void ThreadComm::barrier() { world_->barrier_wait(); }

}  // namespace bsb::mpisim
