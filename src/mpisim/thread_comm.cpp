#include "mpisim/thread_comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "bsbutil/error.hpp"
#include "bsbutil/rng.hpp"
#include "mpisim/errors.hpp"

namespace bsb::mpisim {

namespace {

using detail::matches;

/// Per-message fault decisions, derived deterministically from the fault
/// seed and the message identity (src, dst, tag, per-pair sequence number)
/// so a given seed injects the same faults on every run.
struct FaultDecisions {
  std::uint32_t delay_us = 0;
  std::size_t reorder_jump = 0;  // arrivals of OTHER sources to jump over
  bool force_rendezvous = false;
  bool force_eager = false;
};

FaultDecisions roll_faults(const FaultConfig& f, int src, int dst, int tag,
                           std::uint64_t seq) noexcept {
  std::uint64_t key = f.seed;
  for (const std::uint64_t v :
       {static_cast<std::uint64_t>(src), static_cast<std::uint64_t>(dst),
        static_cast<std::uint64_t>(tag), seq}) {
    key = (key ^ v) * 0x100000001b3ULL + 0x9e3779b97f4a7c15ULL;
  }
  SplitMix64 dice(key);
  FaultDecisions d;
  if (dice.next_double() < f.delay_prob && f.max_delay_us > 0) {
    d.delay_us = static_cast<std::uint32_t>(dice.next_below(f.max_delay_us) + 1);
  }
  if (dice.next_double() < f.reorder_prob) {
    d.reorder_jump = static_cast<std::size_t>(1 + dice.next_below(4));
  }
  d.force_rendezvous = dice.next_double() < f.force_rendezvous_prob;
  d.force_eager = dice.next_double() < f.force_eager_prob;
  return d;
}

void copy_bytes(std::span<std::byte> dst, std::span<const std::byte> src) {
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
}

std::chrono::steady_clock::time_point deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

/// Bounded busy-wait before parking on a condition variable. A matched
/// message completes in ~the time of one memcpy, so the common case is won
/// within a few thousand probes and the futex round trip (microseconds,
/// plus a broadcast wakeup under the old notify_all scheme) is skipped
/// entirely. Oversubscribed worlds lose at most this bounded spin.
constexpr int kSpinProbes = 4096;

bool spin_until_done(const std::atomic<bool>& done) noexcept {
  for (int i = 0; i < kSpinProbes; ++i) {
    if (done.load(std::memory_order_acquire)) return true;
    if ((i & 63) == 63) std::this_thread::yield();
  }
  return done.load(std::memory_order_acquire);
}

/// Mark a pending receive complete and wake exactly its waiters.
/// Caller holds the mailbox mutex; error/status must already be final.
void complete(detail::PendingRecv& pr) noexcept {
  pr.done.store(true, std::memory_order_release);
  if (pr.waiters > 0) pr.cv.notify_all();
}

void complete(detail::SendCompletion& sc) noexcept {
  sc.done.store(true, std::memory_order_release);
  if (sc.waiters > 0) sc.cv.notify_all();
}

std::string truncation_message(std::size_t msg_bytes, std::size_t buf_bytes,
                               int src, int tag) {
  return "truncation: " + std::to_string(msg_bytes) + "-byte message into " +
         std::to_string(buf_bytes) + "-byte receive buffer (src " +
         std::to_string(src) + ", tag " + std::to_string(tag) + ")";
}

}  // namespace

// ---------------------------------------------------------------- Request

struct Request::State {
  // Exactly one of `recv` / `sendc` is set; completion is announced on
  // that object's own condition variable (paired with `box->mu`).
  std::shared_ptr<detail::PendingRecv> recv;
  std::shared_ptr<detail::SendCompletion> sendc;
  detail::Mailbox* box = nullptr;
  int peer_src = -1;  // rendezvous send identity, for cancellation
  int peer_tag = -1;
  double watchdog_seconds = 60.0;
  Status immediate;  // for operations that completed inline
  bool inline_done = false;

  ~State();
};

// Abandoning the last handle to an incomplete operation cancels it (see
// thread_comm.hpp). Without this, a destroyed rendezvous isend leaves a
// span over a dead buffer advertised in the peer's mailbox, and a later
// matching irecv memcpys from freed memory.
Request::State::~State() {
  if (inline_done || box == nullptr) return;
  if (recv && !recv->done.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lk(box->mu);
    if (!recv->done.load(std::memory_order_relaxed)) {
      box->pending.cancel(recv.get());
    }
  }
  if (sendc && !sendc->done.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lk(box->mu);
    if (!sendc->done.load(std::memory_order_relaxed)) {
      box->arrivals.cancel(sendc.get(), peer_src, peer_tag);
    }
  }
}

void Request::wait() { (void)wait_status(); }

Status Request::wait_status() {
  if (!state_) return {};
  State& s = *state_;
  if (s.inline_done) return s.immediate;
  BSB_ASSERT(s.box != nullptr, "Request: incomplete state without mailbox");
  std::atomic<bool>& done =
      s.recv ? s.recv->done : s.sendc->done;
  if (!spin_until_done(done)) {
    std::unique_lock<std::mutex> lk(s.box->mu);
    const auto deadline = deadline_after(s.watchdog_seconds);
    auto& cv = s.recv ? s.recv->cv : s.sendc->cv;
    int& waiters = s.recv ? s.recv->waiters : s.sendc->waiters;
    ++waiters;
    while (!done.load(std::memory_order_acquire)) {
      if (cv.wait_until(lk, deadline) == std::cv_status::timeout &&
          !done.load(std::memory_order_acquire)) {
        --waiters;
        throw DeadlockError(
            "request: watchdog expired waiting for a matching peer operation");
      }
    }
    --waiters;
  }
  // done was set with release ordering after error/status settled, so the
  // acquire load above makes these reads race-free without the lock.
  if (s.recv) {
    if (!s.recv->error.empty()) throw TruncationError(s.recv->error);
    return s.recv->status;
  }
  if (!s.sendc->error.empty()) throw TruncationError(s.sendc->error);
  return {};
}

bool Request::wait_for(double seconds) const {
  if (!state_) return true;
  State& s = *state_;
  if (s.inline_done) return true;
  std::atomic<bool>& done = s.recv ? s.recv->done : s.sendc->done;
  if (done.load(std::memory_order_acquire)) return true;
  std::unique_lock<std::mutex> lk(s.box->mu);
  const auto deadline = deadline_after(seconds);
  auto& cv = s.recv ? s.recv->cv : s.sendc->cv;
  int& waiters = s.recv ? s.recv->waiters : s.sendc->waiters;
  ++waiters;
  while (!done.load(std::memory_order_acquire)) {
    if (cv.wait_until(lk, deadline) == std::cv_status::timeout) break;
  }
  --waiters;
  return done.load(std::memory_order_acquire);
}

bool Request::test() const {
  if (!state_) return true;
  const State& s = *state_;
  if (s.inline_done) return true;
  const std::atomic<bool>& done = s.recv ? s.recv->done : s.sendc->done;
  if (!done.load(std::memory_order_acquire)) return false;
  // Completed: surface a completion error here rather than letting the
  // caller treat "true" as success and destroy the request with the
  // error unobserved (error is final before the release store of done).
  const std::string& error = s.recv ? s.recv->error : s.sendc->error;
  if (!error.empty()) throw TruncationError(error);
  return true;
}

void wait_all(std::span<Request> requests) {
  std::exception_ptr first_error;
  std::size_t abandoned = 0;
  for (Request& r : requests) {
    if (!first_error) {
      try {
        r.wait();
      } catch (...) {
        first_error = std::current_exception();
      }
    } else {
      // After a failure, peers have likely errored or died: do not sit out
      // a full watchdog period per remaining request. Drain briefly;
      // whatever stays incomplete is cancelled when the caller drops it.
      const double drain = std::min(
          1.0, r.state_ ? r.state_->watchdog_seconds : 1.0);
      if (!r.wait_for(drain)) ++abandoned;
    }
  }
  if (!first_error) return;
  if (abandoned == 0) std::rethrow_exception(first_error);
  const std::string suffix = " [wait_all: " + std::to_string(abandoned) +
                             " request(s) abandoned after the first failure]";
  try {
    std::rethrow_exception(first_error);
  } catch (const TruncationError& e) {
    throw TruncationError(e.what() + suffix);
  } catch (const DeadlockError& e) {
    throw DeadlockError(e.what() + suffix);
  } catch (...) {
    throw;  // unknown type: rethrow unmodified
  }
}

// ------------------------------------------------------------- ThreadComm

Request ThreadComm::isend(std::span<const std::byte> buf, int dest, int tag) {
  BSB_REQUIRE(dest >= 0 && dest < size(), "send: destination out of range");
  BSB_REQUIRE(tag >= 0, "send: tag must be nonnegative");
  const std::uint64_t seq = world_->count_send(rank_, dest, buf.size());

  const FaultConfig& faults = world_->config().faults;
  FaultDecisions fd;
  if (faults.enabled) {
    fd = roll_faults(faults, rank_, dest, tag, seq);
    if (fd.delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(fd.delay_us));
    }
  }

  detail::Mailbox& box = world_->mailbox(dest);
  const std::lock_guard<std::mutex> lk(box.mu);

  // 1. A matching receive is already posted: deliver straight into it.
  if (const std::shared_ptr<detail::PendingRecv> pr =
          box.pending.match(rank_, tag)) {
    if (buf.size() > pr->buf.size()) {
      pr->error = truncation_message(buf.size(), pr->buf.size(), rank_, tag);
      complete(*pr);
      throw TruncationError(pr->error);
    }
    copy_bytes(pr->buf, buf);
    pr->status = Status{rank_, tag, buf.size()};
    complete(*pr);
    Request req;
    req.state_ = std::make_shared<Request::State>();
    req.state_->inline_done = true;
    return req;
  }

  // 2. Eager: copy into the mailbox (pooled buffer) and complete
  //    immediately. Fault injection may flip the protocol either way; both
  //    choices are legal for a standard-mode send, so correct algorithms
  //    must survive both.
  bool eager = buf.size() <= world_->config().eager_threshold;
  if (eager && fd.force_rendezvous) eager = false;
  if (!eager && fd.force_eager) eager = true;
  if (eager) {
    detail::Arrival arr;
    arr.src = rank_;
    arr.tag = tag;
    arr.eager = true;
    arr.payload = box.acquire_payload(buf);
    box.arrivals.enqueue(std::move(arr), fd.reorder_jump);
    if (box.probe_waiters > 0) box.cv.notify_all();
    Request req;
    req.state_ = std::make_shared<Request::State>();
    req.state_->inline_done = true;
    return req;
  }

  // 3. Rendezvous: advertise the source buffer; completion happens when the
  //    receiver copies out of it.
  detail::Arrival arr;
  arr.src = rank_;
  arr.tag = tag;
  arr.eager = false;
  arr.src_view = buf;
  arr.completion = std::make_shared<detail::SendCompletion>();
  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->sendc = arr.completion;
  req.state_->box = &box;
  req.state_->peer_src = rank_;
  req.state_->peer_tag = tag;
  req.state_->watchdog_seconds = world_->config().watchdog_seconds;
  box.arrivals.enqueue(std::move(arr), fd.reorder_jump);
  if (box.probe_waiters > 0) box.cv.notify_all();
  return req;
}

Request ThreadComm::irecv(std::span<std::byte> buf, int source, int tag) {
  BSB_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
              "recv: source out of range");
  BSB_REQUIRE(tag == kAnyTag || tag >= 0, "recv: bad tag");

  detail::Mailbox& box = world_->mailbox(rank_);
  const std::lock_guard<std::mutex> lk(box.mu);

  // 1. A matching message already arrived: consume it now.
  const auto it = box.arrivals.find(source, tag);
  if (it != box.arrivals.end()) {
    detail::Arrival arr = box.arrivals.take(it);
    const std::size_t msg_bytes = arr.size();
    if (msg_bytes > buf.size()) {
      const std::string err =
          truncation_message(msg_bytes, buf.size(), arr.src, arr.tag);
      if (arr.completion) {
        arr.completion->error = err;
        complete(*arr.completion);
      }
      throw TruncationError(err);
    }
    if (arr.eager) {
      copy_bytes(buf, arr.payload);
      box.release_payload(std::move(arr.payload));
    } else {
      copy_bytes(buf, arr.src_view);
      complete(*arr.completion);
    }
    Request req;
    req.state_ = std::make_shared<Request::State>();
    req.state_->inline_done = true;
    req.state_->immediate = Status{arr.src, arr.tag, msg_bytes};
    return req;
  }

  // 2. Post the receive and wait for a sender to match it.
  auto pr = std::make_shared<detail::PendingRecv>();
  pr->src = source;
  pr->tag = tag;
  pr->buf = buf;
  box.pending.post(pr);
  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->recv = std::move(pr);
  req.state_->box = &box;
  req.state_->watchdog_seconds = world_->config().watchdog_seconds;
  return req;
}

std::optional<Status> ThreadComm::iprobe(int source, int tag) {
  BSB_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
              "probe: source out of range");
  detail::Mailbox& box = world_->mailbox(rank_);
  const std::lock_guard<std::mutex> lk(box.mu);
  const auto it = box.arrivals.find(source, tag);
  if (it == box.arrivals.end()) return std::nullopt;
  return Status{it->src, it->tag, it->size()};
}

Status ThreadComm::probe(int source, int tag) {
  BSB_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
              "probe: source out of range");
  detail::Mailbox& box = world_->mailbox(rank_);
  std::unique_lock<std::mutex> lk(box.mu);
  const auto deadline = deadline_after(world_->config().watchdog_seconds);
  auto scan = [&]() -> const detail::Arrival* {
    const auto it = box.arrivals.find(source, tag);
    return it == box.arrivals.end() ? nullptr : &*it;
  };
  if (const detail::Arrival* a = scan()) return Status{a->src, a->tag, a->size()};
  ++box.probe_waiters;
  while (true) {
    const bool timed_out =
        box.cv.wait_until(lk, deadline) == std::cv_status::timeout;
    if (const detail::Arrival* a = scan()) {
      --box.probe_waiters;
      return Status{a->src, a->tag, a->size()};
    }
    if (timed_out) {
      --box.probe_waiters;
      throw DeadlockError("probe: watchdog expired; no matching message arrived");
    }
  }
}

void ThreadComm::send(std::span<const std::byte> buf, int dest, int tag) {
  isend(buf, dest, tag).wait();
}

Status ThreadComm::recv(std::span<std::byte> buf, int source, int tag) {
  return irecv(buf, source, tag).wait_status();
}

Status ThreadComm::sendrecv(std::span<const std::byte> sendbuf, int dest, int sendtag,
                            std::span<std::byte> recvbuf, int source, int recvtag) {
  // Post the receive before the (possibly blocking) send so that rings of
  // sendrecv calls always make progress, exactly as MPI_Sendrecv must.
  Request r = irecv(recvbuf, source, recvtag);
  send(sendbuf, dest, sendtag);
  return r.wait_status();
}

void ThreadComm::barrier() { world_->barrier_wait(); }

}  // namespace bsb::mpisim
