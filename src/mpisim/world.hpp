// World: a set of ranks running as threads inside one process, exchanging
// real bytes through matched mailboxes. This is the functional substrate
// standing in for an MPI library + cluster: collective algorithms run on it
// unmodified and their result buffers are checked for correctness.
//
// Semantics implemented (see comm/comm.hpp for the contract):
//  * (source, tag) matching with MPI's non-overtaking order, including
//    MPI_ANY_SOURCE / MPI_ANY_TAG wildcards;
//  * eager protocol below `eager_threshold` (send buffers and returns) and
//    rendezvous above it (send blocks until the receive is matched), so
//    algorithmic deadlocks reproduce here just as they would on MPICH;
//  * truncation errors on both sides of an oversized match;
//  * a watchdog that turns deadlocks into DeadlockError instead of hangs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "comm/status.hpp"
#include "mpisim/matching.hpp"

namespace bsb::mpisim {

class ThreadComm;
class ProgressEngine;

/// Deterministic fault injection for adversarial correctness testing.
///
/// All decisions are pure functions of (seed, src, dst, tag, per-pair send
/// sequence number), so the same seed injects the same faults on every run
/// regardless of thread scheduling. Every injected fault stays within the
/// MPI contract — a correct algorithm must survive all of them:
///  * delays perturb thread interleaving (legal: MPI makes no timing
///    promises);
///  * reordering shuffles mailbox arrivals ACROSS sources only, preserving
///    each source's own order (legal: non-overtaking binds per source);
///  * protocol flips force an eager-size message through rendezvous or a
///    rendezvous-size message through eager buffering (legal: standard-mode
///    MPI_Send may or may not buffer; portable programs cannot rely on it).
struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0;
  /// Probability a send sleeps before delivery, and the maximum sleep.
  double delay_prob = 0.0;
  std::uint32_t max_delay_us = 0;
  /// Probability a queued arrival is inserted ahead of other sources'
  /// arrivals already waiting in the mailbox.
  double reorder_prob = 0.0;
  /// Probability an eager-size message is forced through rendezvous.
  double force_rendezvous_prob = 0.0;
  /// Probability a rendezvous-size message is forced through eager copy.
  double force_eager_prob = 0.0;
};

struct WorldConfig {
  /// Messages at most this size are buffered by the runtime (eager); larger
  /// ones block the sender until the receiver matches (rendezvous).
  std::size_t eager_threshold = 65536;
  /// Blocking operations throw DeadlockError after this many seconds.
  double watchdog_seconds = 60.0;
  /// Deterministic fault injection (off by default).
  FaultConfig faults;
};

/// Message and byte counts for one (source, dest) pair.
struct PairStats {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
};

namespace detail {

// SendCompletion, Arrival, PendingRecv, ArrivalQueue and PendingIndex live
// in mpisim/matching.hpp (bucketed matching, testable in isolation).

struct Mailbox {
  std::mutex mu;
  /// Announces new arrivals to blocked probe() calls only; request
  /// completion is signalled on the per-request condition variables
  /// (SendCompletion::cv / PendingRecv::cv), so a message delivery wakes
  /// exactly the thread(s) waiting on it.
  std::condition_variable cv;
  int probe_waiters = 0;  // guarded by mu
  ArrivalQueue arrivals;
  PendingIndex pending;

  /// Slab of retired eager payload buffers, reused to keep the eager hot
  /// path allocation-free in steady state. Guarded by mu.
  std::vector<std::vector<std::byte>> payload_pool;
  std::size_t payload_pool_bytes = 0;

  /// A buffer holding a copy of `src` (pooled capacity when available).
  std::vector<std::byte> acquire_payload(std::span<const std::byte> src);
  /// Return a consumed eager payload to the pool (bounded; may free it).
  void release_payload(std::vector<std::byte>&& payload) noexcept;
};

}  // namespace detail

class World {
 public:
  explicit World(int nranks, WorldConfig cfg = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept { return nranks_; }
  const WorldConfig& config() const noexcept { return cfg_; }

  /// The communicator endpoint for `rank` (thread-safe; each rank's thread
  /// uses its own endpoint).
  ThreadComm& comm(int rank);

  /// The nonblocking-collective progress engine for `rank`. Created with
  /// the world; only `rank`'s own thread may use it.
  ProgressEngine& progress_engine(int rank);

  /// Spawn one thread per rank running `body`, join them all, and rethrow
  /// the first exception any rank raised.
  void run(const std::function<void(ThreadComm&)>& body);

  /// Traffic observed so far (sends initiated). Reset with reset_stats().
  PairStats pair_stats(int src, int dst) const;
  std::uint64_t total_msgs() const noexcept;
  std::uint64_t total_bytes() const noexcept;
  void reset_stats() noexcept;

 private:
  friend class ThreadComm;

  detail::Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }
  /// Records the send in the traffic counters and returns its sequence
  /// number on the (src, dst) pair (0-based) — the fault-injection layer
  /// keys its deterministic decisions on it.
  std::uint64_t count_send(int src, int dst, std::size_t bytes) noexcept;
  void barrier_wait();

  int nranks_;
  WorldConfig cfg_;
  std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<ThreadComm>> comms_;
  std::vector<std::unique_ptr<ProgressEngine>> engines_;

  // central sense-reversing barrier
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  bool barrier_sense_ = false;

  // per-pair traffic counters, indexed src * nranks + dst
  std::vector<std::atomic<std::uint64_t>> stat_msgs_;
  std::vector<std::atomic<std::uint64_t>> stat_bytes_;
};

}  // namespace bsb::mpisim
