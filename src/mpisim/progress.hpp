// Per-rank progress engine for nonblocking collectives: advances precompiled
// coll::Plan step lists via isend/irecv without blocking between steps, so
// many collectives can be in flight per rank at once (the concurrent-serving
// workload from ROADMAP item 3). core::ibcast / core::iallgather start ops
// here and hand back CollRequests with test/wait/wait_all semantics matching
// the point-to-point Request API.
//
// Concurrency and tag isolation:
//  * Each rank owns one engine (stored in its World slot) and only that
//    rank's thread touches it — the engine itself needs no locking; the
//    underlying mailboxes provide the cross-thread machinery.
//  * Concurrent collectives on the SAME communicator are isolated by a
//    per-communicator operation sequence number: step tags (all below
//    coll::tags::kCtxStride) are remapped to `tag + kCtxStride * ctx` with
//    ctx in [1, kMaxCtx], so up to kMaxCtx operations can be in flight per
//    communicator before tags wrap, and
//    remapped tags never collide with blocking collectives' raw tags or
//    with SubComm::barrier. Ranks must start collectives on a given
//    communicator in the same order (the MPI nonblocking-collective rule);
//    the sequence numbers then agree without any coordination.
//  * Collectives on a SubComm are driven directly on the parent ThreadComm
//    by replicating SubComm's rank/tag translation (context * 2^16 + tag),
//    so subgroup traffic stays namespaced exactly like its blocking
//    counterpart.
//
// Lifetime rules (see docs/SIMULATOR.md): the collective's buffer must stay
// valid and untouched until its CollRequest completes; a rank must
// eventually complete every CollRequest it starts (waiting on ANY request
// progresses ALL of the rank's in-flight ops, so completion order is free);
// abandoning a CollRequest cancels its outstanding point-to-point
// operations — safe, but a program error as in MPI.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "coll/plan.hpp"
#include "coll/tags.hpp"
#include "mpisim/thread_comm.hpp"

namespace bsb::mpisim {

class ProgressEngine;

/// Handle for one in-flight nonblocking collective. Copyable (shared
/// state). A completion error (e.g. truncation) is thrown from the first
/// wait()/test() that observes it; afterwards the request counts as
/// complete.
class CollRequest {
 public:
  CollRequest() = default;  // empty request: already complete

  /// Block until this collective completes, driving ALL of the rank's
  /// in-flight collectives meanwhile. Throws the operation's error, or
  /// DeadlockError after the world's watchdog period without progress.
  void wait();

  /// One nonblocking progress pass; true iff this collective completed.
  bool test();

 private:
  friend class ProgressEngine;
  friend void wait_all_coll(std::span<CollRequest> requests);

  struct Op;
  std::shared_ptr<Op> op_;
  ProgressEngine* engine_ = nullptr;
};

/// Complete every request (MPI_Waitall for collectives). Throws the first
/// error; later requests are still driven to completion where possible.
void wait_all_coll(std::span<CollRequest> requests);

class ProgressEngine {
 public:
  /// Start executing `plan`'s step list for `local_rank` over `buffer`
  /// (valid until completion). `members` maps the plan's ranks to world
  /// ranks (empty = identity, i.e. the plan runs on the world itself);
  /// `context` is the SubComm tag namespace (0 = world). The first steps
  /// are issued immediately; the rest advance on progress/test/wait calls.
  CollRequest start(std::shared_ptr<const coll::Plan> plan,
                    std::span<std::byte> buffer, int local_rank,
                    std::vector<int> members, int context);

  /// One nonblocking pass over every in-flight op, issuing and retiring
  /// steps as their point-to-point requests complete.
  void progress();

  /// Ops started but not yet finished (diagnostics/tests).
  std::size_t in_flight() const noexcept { return active_.size(); }

  /// Tag stride between in-flight ops on one communicator; every plan tag
  /// must stay below it. Aliased from coll/tags.hpp, the single source of
  /// truth for the tag-space contract (static_asserts live there).
  static constexpr int kCtxStride = coll::tags::kCtxStride;
  /// Highest per-communicator context: keeps remapped tags below
  /// kMaxUserTag even inside a SubComm namespace.
  static constexpr int kMaxCtx = coll::tags::kMaxCtx;  // 2046

 private:
  friend class CollRequest;
  friend class World;

  explicit ProgressEngine(ThreadComm& comm) : comm_(&comm) {}

  /// Advance one op as far as possible without blocking.
  void progress_op(CollRequest::Op& op);
  /// Drive all ops until `op` completes (CollRequest::wait body).
  void wait_op(const std::shared_ptr<CollRequest::Op>& op);
  /// Throw op's deferred error (exactly once) if it has one.
  static void rethrow_op_error(CollRequest::Op& op);

  ThreadComm* comm_;
  std::vector<std::shared_ptr<CollRequest::Op>> active_;
  /// Total steps retired; wait_op's watchdog resets on any advancement.
  std::uint64_t steps_retired_ = 0;
  /// Next operation sequence number per communicator context.
  std::unordered_map<int, std::uint64_t> next_seq_;
};

}  // namespace bsb::mpisim
