// ThreadComm: one rank's endpoint into a mpisim::World, implementing the
// abstract Comm interface plus nonblocking isend/irecv with Request
// objects (used internally by the full-duplex sendrecv and available to
// applications).
#pragma once

#include <memory>
#include <optional>

#include "comm/comm.hpp"
#include "mpisim/world.hpp"

namespace bsb::mpisim {

class ProgressEngine;

/// Handle for a nonblocking operation. Copyable (shared state); wait() may
/// be called once per logical completion; test() polls.
///
/// Abandoning an incomplete request (destroying the last handle without
/// wait()/test() observing completion) CANCELS the operation: a pending
/// rendezvous send withdraws its advertisement from the peer's mailbox (so
/// no receiver can later copy from a dead buffer) and a pending receive is
/// unposted. As in MPI, abandoning an in-flight operation is a program
/// error; cancellation just makes it fail safe instead of corrupt memory.
class Request {
 public:
  Request() = default;  // empty request: already complete

  /// Block until the operation completes; throws the operation's error.
  void wait();

  /// wait(), returning the receive Status (empty Status for sends).
  Status wait_status();

  /// True iff the operation has completed. A completion error (e.g.
  /// truncation) is THROWN from the test() call that first observes
  /// completion — returning plain `true` and relying on a later
  /// wait_status() would let callers silently drop the error.
  bool test() const;

 private:
  friend class ThreadComm;
  friend class ProgressEngine;  // wait_for-based bounded blocking
  friend void wait_all(std::span<Request> requests);

  /// Wait until completion or `seconds` elapse; true iff complete.
  /// Does not throw the operation's error (used by wait_all's drain).
  bool wait_for(double seconds) const;

  struct State;
  std::shared_ptr<State> state_;
};

/// Block until every request in `requests` completes (MPI_Waitall).
/// Throws the first error encountered. Remaining requests are drained with
/// a short bounded timeout after the first failure — a fault must not
/// stall the caller for N full watchdog periods — and the count of
/// still-incomplete (abandoned, hence cancelled on destruction) requests
/// is appended to the rethrown error message.
void wait_all(std::span<Request> requests);

class ThreadComm final : public Comm {
 public:
  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return world_->size(); }

  void send(std::span<const std::byte> buf, int dest, int tag) override;
  Status recv(std::span<std::byte> buf, int source, int tag) override;
  Status sendrecv(std::span<const std::byte> sendbuf, int dest, int sendtag,
                  std::span<std::byte> recvbuf, int source, int recvtag) override;
  void barrier() override;

  /// Nonblocking send. For rendezvous-size messages `buf` must stay valid
  /// and unmodified until the request completes (MPI semantics).
  Request isend(std::span<const std::byte> buf, int dest, int tag);

  /// Nonblocking receive; `buf` must stay valid until completion.
  Request irecv(std::span<std::byte> buf, int source, int tag);

  /// Nonblocking probe (MPI_Iprobe): the Status of the first matching
  /// message already in the mailbox, without consuming it, or nullopt if
  /// none has arrived yet. Wildcards allowed.
  std::optional<Status> iprobe(int source, int tag);

  /// Blocking probe (MPI_Probe): waits until a matching message is
  /// available and returns its Status (message stays queued). Subject to
  /// the world's deadlock watchdog.
  Status probe(int source, int tag);

  World& world() noexcept { return *world_; }

  /// This rank's nonblocking-collective progress engine (mpisim/progress.hpp).
  /// Only the rank's own thread may use it.
  ProgressEngine& progress_engine();

 private:
  friend class World;
  ThreadComm(World& world, int rank) : world_(&world), rank_(rank) {}

  World* world_;
  int rank_;
};

}  // namespace bsb::mpisim
