#include "mpisim/matching.hpp"

#include <algorithm>

#include "bsbutil/error.hpp"

namespace bsb::mpisim::detail {

namespace {

/// Gap between consecutive position keys; a reorder insert bisects a gap,
/// so ~20 same-gap inserts force one O(n) renumber (reorder jumps are <= 4
/// and land near the tail, so this is rare in practice).
constexpr std::uint64_t kPosGap = std::uint64_t{1} << 20;

}  // namespace

// ------------------------------------------------------------ ArrivalQueue

void ArrivalQueue::renumber() {
  std::uint64_t pos = kPosGap;
  for (Arrival& a : list_) {
    a.pos = pos;
    pos += kPosGap;
  }
}

void ArrivalQueue::enqueue(Arrival&& arr, std::size_t jump) {
  auto pos = list_.end();
  while (jump > 0 && pos != list_.begin() && std::prev(pos)->src != arr.src) {
    --pos;
    --jump;
  }
  if (pos == list_.end()) {
    arr.pos = (list_.empty() ? 0 : list_.back().pos) + kPosGap;
  } else {
    std::uint64_t hi = pos->pos;
    std::uint64_t lo = pos == list_.begin() ? 0 : std::prev(pos)->pos;
    if (hi - lo < 2) {
      renumber();  // list iterators stay valid; re-read the fresh keys
      hi = pos->pos;
      lo = pos == list_.begin() ? 0 : std::prev(pos)->pos;
    }
    arr.pos = lo + (hi - lo) / 2;
  }
  const auto it = list_.insert(pos, std::move(arr));
  buckets_[bucket_key(it->src, it->tag)].push_back(it);
}

ArrivalQueue::iterator ArrivalQueue::find(int src, int tag) {
  if (list_.empty()) return list_.end();
  if (src == kAnySource && tag == kAnyTag) return list_.begin();
  if (src != kAnySource && tag != kAnyTag) {
    const auto b = buckets_.find(bucket_key(src, tag));
    return b == buckets_.end() ? list_.end() : b->second.front();
  }
  // One-sided wildcard: scan bucket fronts (one per distinct live
  // (src, tag) pair — far fewer than queued messages) for the earliest
  // scan-order match.
  iterator best = list_.end();
  for (auto& [key, q] : buckets_) {
    const int bsrc = static_cast<std::int32_t>(key >> 32);
    const int btag = static_cast<std::int32_t>(key & 0xffffffffu);
    if (!matches(src, tag, bsrc, btag)) continue;
    const iterator front = q.front();
    if (best == list_.end() || front->pos < best->pos) best = front;
  }
  return best;
}

Arrival ArrivalQueue::take(iterator it) {
  const auto b = buckets_.find(bucket_key(it->src, it->tag));
  BSB_ASSERT(b != buckets_.end(), "ArrivalQueue: bucket missing on take");
  auto& q = b->second;
  const auto qit = std::find(q.begin(), q.end(), it);
  BSB_ASSERT(qit != q.end(), "ArrivalQueue: arrival missing from its bucket");
  q.erase(qit);
  if (q.empty()) buckets_.erase(b);
  Arrival out = std::move(*it);
  list_.erase(it);
  return out;
}

bool ArrivalQueue::cancel(const SendCompletion* completion, int src, int tag) {
  const auto b = buckets_.find(bucket_key(src, tag));
  if (b == buckets_.end()) return false;
  for (const iterator it : b->second) {
    if (it->completion.get() == completion) {
      take(it);
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------------ PendingIndex

void PendingIndex::post(std::shared_ptr<PendingRecv> pr) {
  pr->seq = next_seq_++;
  buckets_[bucket_key(pr->src, pr->tag)].push_back(std::move(pr));
  ++count_;
}

std::shared_ptr<PendingRecv> PendingIndex::match(int src, int tag) {
  if (count_ == 0) return nullptr;
  const std::uint64_t keys[4] = {
      bucket_key(src, tag), bucket_key(src, kAnyTag),
      bucket_key(kAnySource, tag), bucket_key(kAnySource, kAnyTag)};
  std::deque<std::shared_ptr<PendingRecv>>* best = nullptr;
  for (const std::uint64_t key : keys) {
    const auto b = buckets_.find(key);
    if (b == buckets_.end()) continue;
    if (!best || b->second.front()->seq < best->front()->seq) best = &b->second;
  }
  if (!best) return nullptr;
  std::shared_ptr<PendingRecv> pr = std::move(best->front());
  best->pop_front();
  if (best->empty()) buckets_.erase(bucket_key(pr->src, pr->tag));
  --count_;
  return pr;
}

bool PendingIndex::cancel(const PendingRecv* pr) {
  const auto b = buckets_.find(bucket_key(pr->src, pr->tag));
  if (b == buckets_.end()) return false;
  auto& q = b->second;
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (it->get() == pr) {
      q.erase(it);
      if (q.empty()) buckets_.erase(b);
      --count_;
      return true;
    }
  }
  return false;
}

}  // namespace bsb::mpisim::detail
