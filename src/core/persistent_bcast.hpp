// Persistent broadcast (MPI-4 style, MPI_Bcast_init analogue): resolve the
// algorithm choice, chunk layout and the tuned ring plan ONCE for a fixed
// (comm, nbytes, root), then execute the precompiled step list many times.
// Solvers that broadcast the same-shaped buffer every iteration skip all
// per-call planning; the step table also makes the tuned ring's structure
// inspectable (used by tests and the cluster_explorer example).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "comm/chunks.hpp"
#include "comm/comm.hpp"
#include "core/bcast.hpp"

namespace bsb::core {

/// One precompiled point-to-point action of the persistent schedule.
struct BcastStep {
  enum class Kind : std::uint8_t { Send, Recv, SendRecv } kind = Kind::Send;
  // send half
  int dst = -1;
  std::uint64_t send_off = 0;
  std::uint64_t send_len = 0;
  // receive half
  int src = -1;
  std::uint64_t recv_off = 0;
  std::uint64_t recv_len = 0;
  int tag = 0;
};

/// A broadcast "compiled" for this rank of `comm` at construction time.
/// execute() may be called any number of times; the buffer must have the
/// same size each time (its contents of course change).
class PersistentBcast {
 public:
  /// Plans the same algorithm bcast(comm, buffer, root, cfg) would run.
  PersistentBcast(Comm& comm, std::uint64_t nbytes, int root,
                  const BcastConfig& cfg = {});

  /// Run the precompiled schedule. `buffer.size()` must equal nbytes().
  void execute(std::span<std::byte> buffer) const;

  BcastAlgorithm algorithm() const noexcept { return algorithm_; }
  std::uint64_t nbytes() const noexcept { return nbytes_; }
  int root() const noexcept { return root_; }

  /// The step list this rank will run (inspection/testing).
  const std::vector<BcastStep>& steps() const noexcept { return steps_; }

  /// Human-readable step listing.
  std::string describe() const;

 private:
  Comm* comm_;
  std::uint64_t nbytes_;
  int root_;
  BcastAlgorithm algorithm_;
  std::vector<BcastStep> steps_;
};

}  // namespace bsb::core
