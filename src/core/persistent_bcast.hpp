// Persistent broadcast (MPI-4 style, MPI_Bcast_init analogue): resolve the
// algorithm choice, chunk layout and the tuned ring plan ONCE for a fixed
// (comm, nbytes, root), then execute the precompiled step list many times.
// Solvers that broadcast the same-shaped buffer every iteration skip all
// per-call planning; the step table also makes the tuned ring's structure
// inspectable (used by tests and the cluster_explorer example).
//
// The step table is a shared coll::Plan fetched through the process-wide
// schedule cache (coll/schedule_cache.hpp), so every rank of a World — and
// every later PersistentBcast or core::ibcast of the same shape — reuses
// one compilation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "coll/plan.hpp"
#include "comm/comm.hpp"
#include "core/bcast.hpp"

namespace bsb::core {

/// One precompiled point-to-point action of the persistent schedule
/// (the shared plan-step representation from coll/plan.hpp).
using BcastStep = coll::PlanStep;

/// A broadcast "compiled" for this rank of `comm` at construction time.
/// execute() may be called any number of times; the buffer must have the
/// same size each time (its contents of course change).
class PersistentBcast {
 public:
  /// Plans the same algorithm bcast(comm, buffer, root, cfg) would run.
  PersistentBcast(Comm& comm, std::uint64_t nbytes, int root,
                  const BcastConfig& cfg = {});

  /// Run the precompiled schedule. `buffer.size()` must equal nbytes().
  void execute(std::span<std::byte> buffer) const;

  BcastAlgorithm algorithm() const noexcept { return algorithm_; }
  std::uint64_t nbytes() const noexcept { return plan_->nbytes; }
  int root() const noexcept { return root_; }

  /// The step list this rank will run (inspection/testing). The backing
  /// plan is root-canonical, so the steps are in RELATIVE-rank coordinates
  /// (peer r means absolute rank (r + root) % P); execute() applies the
  /// rotation.
  const std::vector<BcastStep>& steps() const noexcept;

  /// The whole-communicator plan backing this handle.
  const std::shared_ptr<const coll::Plan>& plan() const noexcept { return plan_; }

  /// Human-readable step listing.
  std::string describe() const;

 private:
  Comm* comm_;
  int root_;
  BcastAlgorithm algorithm_;
  std::shared_ptr<const coll::Plan> plan_;
};

}  // namespace bsb::core
