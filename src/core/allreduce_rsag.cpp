#include "core/allreduce_rsag.hpp"

#include "coll/allgather_ring_native.hpp"
#include "coll/reduce_scatter_ring.hpp"
#include "comm/chunks.hpp"
#include "core/ring_plan.hpp"

namespace bsb::core {

void allreduce_rsag_native(Comm& comm, std::span<std::byte> buf, int root,
                           coll::RedOp op, coll::RedDtype dtype) {
  coll::reduce_scatter_blocks_ring(comm, buf, root, op, dtype);
  coll::allgather_ring_native(comm, buf, root, ChunkLayout(buf.size(), comm.size()));
}

void allreduce_rsag_tuned(Comm& comm, std::span<std::byte> buf, int root,
                          coll::RedOp op, coll::RedDtype dtype) {
  allreduce_rsag_tuned(comm, buf, root, op, dtype, compute_ring_plan);
}

void allreduce_rsag_tuned(Comm& comm, std::span<std::byte> buf, int root,
                          coll::RedOp op, coll::RedDtype dtype,
                          const RingPlanFn& plan_fn) {
  coll::reduce_scatter_blocks_ring(comm, buf, root, op, dtype);
  allgather_ring_tuned(comm, buf, root, ChunkLayout(buf.size(), comm.size()),
                       plan_fn);
}

}  // namespace bsb::core
