// The TUNED (non-enclosed) ring allgather — the paper's §IV contribution
// (Figures 4 and 5). Identical step structure to the native ring, but each
// rank uses its RingPlan to skip the transfers whose payload the receiver
// already owns from the binomial scatter: the last step-1 receives for
// subtree-root ranks, the last step-1 sends for their left neighbours.
// Total transfers drop from P(P-1) to P(P-1) - sum(step_i - 1), e.g.
// 56 -> 44 at P=8 and 90 -> 75 at P=10, with the same P-1 step count.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "comm/chunks.hpp"
#include "comm/comm.hpp"
#include "core/ring_plan.hpp"

namespace bsb::core {

/// Run the tuned ring allgather over chunks scattered by scatter_binomial
/// (chunk i owned by relative rank i, subtree roots owning whole blocks).
/// On return every rank holds all layout.nbytes() bytes.
void allgather_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                          const ChunkLayout& layout);

/// Maps a relative rank to the RingPlan it runs. The production path uses
/// compute_ring_plan; the fuzz harness's self-test mode substitutes a
/// deliberately corrupted plan to prove the detectors catch schedule bugs.
using RingPlanFn = std::function<RingPlan(int relative_rank, int comm_size)>;

/// As above, but with the per-rank plan supplied by `plan_fn`. The schedule
/// is only correct (and only deadlock-free) when the plans obey the
/// skipped-send/skipped-receive pairing invariant that compute_ring_plan
/// guarantees.
void allgather_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                          const ChunkLayout& layout, const RingPlanFn& plan_fn);

}  // namespace bsb::core
