// The TUNED (non-enclosed) ring allgather — the paper's §IV contribution
// (Figures 4 and 5). Identical step structure to the native ring, but each
// rank uses its RingPlan to skip the transfers whose payload the receiver
// already owns from the binomial scatter: the last step-1 receives for
// subtree-root ranks, the last step-1 sends for their left neighbours.
// Total transfers drop from P(P-1) to P(P-1) - sum(step_i - 1), e.g.
// 56 -> 44 at P=8 and 90 -> 75 at P=10, with the same P-1 step count.
#pragma once

#include <cstddef>
#include <span>

#include "comm/chunks.hpp"
#include "comm/comm.hpp"

namespace bsb::core {

/// Run the tuned ring allgather over chunks scattered by scatter_binomial
/// (chunk i owned by relative rank i, subtree roots owning whole blocks).
/// On return every rank holds all layout.nbytes() bytes.
void allgather_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                          const ChunkLayout& layout);

}  // namespace bsb::core
