// Allreduce as reduce_scatter + allgather (Rabenseifner's decomposition),
// in the two flavours the paper's trick distinguishes:
//
//   * NATIVE:  blocks-variant reduce_scatter (every rank ends owning its
//              binomial block) followed by the ENCLOSED ring allgather,
//              which ignores that ownership and re-ships the block chunks —
//              the redundancy is exactly native_ring_redundancy, the same
//              excess the enclosed broadcast pays;
//   * TUNED:   the same reduce_scatter followed by the tuned ring
//              allgather, which skips precisely those transfers.
//
// The message-count algebra is the punchline of the generalization: the
// blocks reduce_scatter costs P(P-1) + savings(P) (its phase-B delivery IS
// the savings, by the popcount identity), so
//     native total = [P(P-1) + savings] + P(P-1)        (redundant)
//     tuned  total = [P(P-1) + savings] + [P(P-1) - savings] = 2P(P-1)
// e.g. P=8: 124 -> 112, P=10: 195 -> 180 — the allreduce analogue of the
// paper's 56 -> 44 and 90 -> 75 broadcast anchors, with bsb-verify proving
// the tuned path ships zero redundant bytes.
#pragma once

#include <cstddef>
#include <span>

#include "coll/reduce_ops.hpp"
#include "comm/comm.hpp"
#include "core/allgather_ring_tuned.hpp"

namespace bsb::core {

/// buf holds this rank's full contribution on entry, the elementwise
/// reduction over all ranks on exit. Requires nbytes % (P * elem) == 0.
void allreduce_rsag_native(Comm& comm, std::span<std::byte> buf, int root,
                           coll::RedOp op, coll::RedDtype dtype);

void allreduce_rsag_tuned(Comm& comm, std::span<std::byte> buf, int root,
                          coll::RedOp op, coll::RedDtype dtype);

/// Sabotage hook: tuned variant with the allgather phase's ring plans
/// supplied by `plan_fn` (see allgather_ring_tuned.hpp).
void allreduce_rsag_tuned(Comm& comm, std::span<std::byte> buf, int root,
                          coll::RedOp op, coll::RedDtype dtype,
                          const RingPlanFn& plan_fn);

}  // namespace bsb::core
