#include "core/bcast_scatter_ring_tuned.hpp"

#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"
#include "core/allgather_ring_tuned.hpp"

namespace bsb::core {

void bcast_scatter_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root) {
  const ChunkLayout layout(buffer.size(), comm.size());
  coll::scatter_binomial(comm, buffer, root, layout);
  allgather_ring_tuned(comm, buffer, root, layout);
}

}  // namespace bsb::core
