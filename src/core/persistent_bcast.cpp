#include "core/persistent_bcast.hpp"

#include "bsbutil/error.hpp"
#include "comm/chunks.hpp"
#include "core/icoll.hpp"

namespace bsb::core {

PersistentBcast::PersistentBcast(Comm& comm, std::uint64_t nbytes, int root,
                                 const BcastConfig& cfg)
    : comm_(&comm),
      root_(root),
      algorithm_(choose_bcast_algorithm(nbytes, comm.size(), cfg)) {
  BSB_REQUIRE(root >= 0 && root < comm.size(),
              "PersistentBcast: root out of range");
  plan_ = bcast_plan(comm.size(), nbytes, root, cfg);
}

void PersistentBcast::execute(std::span<std::byte> buffer) const {
  coll::execute_plan_rank(*comm_, *plan_, comm_->rank(), buffer, root_);
}

const std::vector<BcastStep>& PersistentBcast::steps() const noexcept {
  return plan_->steps[static_cast<std::size_t>(
      rel_rank(comm_->rank(), root_, comm_->size()))];
}

std::string PersistentBcast::describe() const {
  return "PersistentBcast(root " + std::to_string(root_) + "): " +
         coll::describe_plan_rank(
             *plan_, rel_rank(comm_->rank(), root_, comm_->size()));
}

}  // namespace bsb::core
