#include "core/persistent_bcast.hpp"

#include <vector>

#include "bsbutil/error.hpp"
#include "trace/record.hpp"

namespace bsb::core {

PersistentBcast::PersistentBcast(Comm& comm, std::uint64_t nbytes, int root,
                                 const BcastConfig& cfg)
    : comm_(&comm), nbytes_(nbytes), root_(root),
      algorithm_(choose_bcast_algorithm(nbytes, comm.size(), cfg)) {
  BSB_REQUIRE(root >= 0 && root < comm.size(), "PersistentBcast: root out of range");

  // "Compile" by recording this rank's own op sequence — the algorithms
  // are data-oblivious, so the recording IS the schedule every execution
  // will follow. No algorithm logic is duplicated here.
  std::vector<trace::Op> ops;
  std::vector<std::byte> scratch(nbytes);
  trace::RecordingComm recorder(comm.rank(), comm.size(), scratch, ops);
  run_bcast_algorithm(algorithm_, recorder, scratch, root);

  steps_.reserve(ops.size());
  for (const trace::Op& op : ops) {
    BcastStep step;
    switch (op.kind) {
      case trace::OpKind::Send: step.kind = BcastStep::Kind::Send; break;
      case trace::OpKind::Recv: step.kind = BcastStep::Kind::Recv; break;
      case trace::OpKind::SendRecv: step.kind = BcastStep::Kind::SendRecv; break;
      case trace::OpKind::Barrier:
        BSB_ASSERT(false, "PersistentBcast: broadcast algorithms use no barriers");
    }
    if (op.has_send()) {
      BSB_ASSERT(op.send_off != trace::kForeignOffset,
                 "PersistentBcast: algorithm used scratch memory");
      step.dst = op.dst;
      step.send_off = op.send_off;
      step.send_len = op.send_bytes;
      step.tag = op.send_tag;
    }
    if (op.has_recv()) {
      BSB_ASSERT(op.recv_off != trace::kForeignOffset,
                 "PersistentBcast: algorithm used scratch memory");
      step.src = op.src;
      step.recv_off = op.recv_off;
      step.recv_len = op.recv_cap;
      step.tag = op.recv_tag;
    }
    steps_.push_back(step);
  }
}

void PersistentBcast::execute(std::span<std::byte> buffer) const {
  BSB_REQUIRE(buffer.size() == nbytes_,
              "PersistentBcast: buffer size differs from the planned size");
  for (const BcastStep& s : steps_) {
    switch (s.kind) {
      case BcastStep::Kind::Send:
        comm_->send(std::span<const std::byte>(buffer).subspan(s.send_off, s.send_len),
                    s.dst, s.tag);
        break;
      case BcastStep::Kind::Recv:
        comm_->recv(buffer.subspan(s.recv_off, s.recv_len), s.src, s.tag);
        break;
      case BcastStep::Kind::SendRecv:
        comm_->sendrecv(
            std::span<const std::byte>(buffer).subspan(s.send_off, s.send_len),
            s.dst, s.tag, buffer.subspan(s.recv_off, s.recv_len), s.src, s.tag);
        break;
    }
  }
}

std::string PersistentBcast::describe() const {
  std::string out = std::string("PersistentBcast: ") + to_string(algorithm_) +
                    ", " + std::to_string(nbytes_) + " bytes, root " +
                    std::to_string(root_) + ", " + std::to_string(steps_.size()) +
                    " step(s) on rank " + std::to_string(comm_->rank()) + "\n";
  for (const BcastStep& s : steps_) {
    switch (s.kind) {
      case BcastStep::Kind::Send:
        out += "  send  [" + std::to_string(s.send_off) + "+" +
               std::to_string(s.send_len) + ") -> " + std::to_string(s.dst) + "\n";
        break;
      case BcastStep::Kind::Recv:
        out += "  recv  [" + std::to_string(s.recv_off) + "+" +
               std::to_string(s.recv_len) + ") <- " + std::to_string(s.src) + "\n";
        break;
      case BcastStep::Kind::SendRecv:
        out += "  xchg  [" + std::to_string(s.send_off) + "+" +
               std::to_string(s.send_len) + ") -> " + std::to_string(s.dst) +
               ", [" + std::to_string(s.recv_off) + "+" +
               std::to_string(s.recv_len) + ") <- " + std::to_string(s.src) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace bsb::core
