#include "core/persistent_bcast.hpp"

#include "bsbutil/error.hpp"
#include "core/icoll.hpp"

namespace bsb::core {

PersistentBcast::PersistentBcast(Comm& comm, std::uint64_t nbytes, int root,
                                 const BcastConfig& cfg)
    : comm_(&comm),
      algorithm_(choose_bcast_algorithm(nbytes, comm.size(), cfg)) {
  BSB_REQUIRE(root >= 0 && root < comm.size(),
              "PersistentBcast: root out of range");
  plan_ = bcast_plan(comm.size(), nbytes, root, cfg);
}

void PersistentBcast::execute(std::span<std::byte> buffer) const {
  coll::execute_plan_rank(*comm_, *plan_, comm_->rank(), buffer);
}

std::string PersistentBcast::describe() const {
  return "PersistentBcast: " + coll::describe_plan_rank(*plan_, comm_->rank());
}

}  // namespace bsb::core
