#include "core/allgatherv_ring_tuned.hpp"

#include "bsbutil/error.hpp"
#include "coll/tags.hpp"
#include "comm/chunks.hpp"
#include "core/ring_plan.hpp"

namespace bsb::core {

void allgatherv_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                           const VarLayout& layout) {
  allgatherv_ring_tuned(comm, buffer, root, layout, compute_ring_plan);
}

void allgatherv_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                           const VarLayout& layout, const RingPlanFn& plan_fn) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(layout.nchunks() == P,
              "allgatherv_ring_tuned: layout chunk count != P");
  BSB_REQUIRE(buffer.size() >= layout.nbytes(),
              "allgatherv_ring_tuned: buffer too small");

  const int left = (P + me - 1) % P;
  const int right = (me + 1) % P;
  int j = me;
  int jnext = left;

  const RingPlan plan = plan_fn(rel_rank(me, root, P), P);

  for (int i = 1; i < P; ++i) {
    const int rel_j = rel_rank(j, root, P);
    const int rel_jnext = rel_rank(jnext, root, P);
    const auto send_chunk = layout.chunk(std::span<const std::byte>(buffer), rel_j);
    const auto recv_chunk = layout.chunk(buffer, rel_jnext);

    if (!is_special_step(plan, i, P)) {
      comm.sendrecv(send_chunk, right, coll::tags::kAllgathervRingTuned,
                    recv_chunk, left, coll::tags::kAllgathervRingTuned);
    } else if (plan.recv_only) {
      comm.recv(recv_chunk, left, coll::tags::kAllgathervRingTuned);
    } else {
      comm.send(send_chunk, right, coll::tags::kAllgathervRingTuned);
    }

    j = jnext;
    jnext = (P + jnext - 1) % P;
  }
}

}  // namespace bsb::core
