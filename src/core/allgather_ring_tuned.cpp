#include "core/allgather_ring_tuned.hpp"

#include "bsbutil/error.hpp"
#include "coll/tags.hpp"
#include "core/ring_plan.hpp"

namespace bsb::core {

void allgather_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                          const ChunkLayout& layout) {
  allgather_ring_tuned(comm, buffer, root, layout, compute_ring_plan);
}

void allgather_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                          const ChunkLayout& layout, const RingPlanFn& plan_fn) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(layout.nchunks() == P, "allgather_ring_tuned: layout chunk count != P");
  BSB_REQUIRE(buffer.size() >= layout.nbytes(),
              "allgather_ring_tuned: buffer too small");

  const int left = (P + me - 1) % P;
  const int right = (me + 1) % P;
  int j = me;
  int jnext = left;

  const RingPlan plan = plan_fn(rel_rank(me, root, P), P);

  for (int i = 1; i < P; ++i) {
    const int rel_j = rel_rank(j, root, P);
    const int rel_jnext = rel_rank(jnext, root, P);
    const auto send_chunk = layout.chunk(std::span<const std::byte>(buffer), rel_j);
    const auto recv_chunk = layout.chunk(buffer, rel_jnext);

    if (!is_special_step(plan, i, P)) {
      comm.sendrecv(send_chunk, right, coll::tags::kTunedRingAllgather,
                    recv_chunk, left, coll::tags::kTunedRingAllgather);
    } else if (plan.recv_only) {
      // Our right neighbour already owns everything we would still send.
      comm.recv(recv_chunk, left, coll::tags::kTunedRingAllgather);
    } else {
      // We already own everything the left neighbour would still send.
      comm.send(send_chunk, right, coll::tags::kTunedRingAllgather);
    }

    j = jnext;
    jnext = (P + jnext - 1) % P;
  }
}

}  // namespace bsb::core
