#include "core/transfer_analysis.hpp"

#include <vector>

#include "bsbutil/error.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/math.hpp"
#include "bsbutil/table.hpp"
#include "comm/chunks.hpp"
#include "core/ring_plan.hpp"

namespace bsb::core {

std::uint64_t native_ring_transfers(int comm_size) {
  BSB_REQUIRE(comm_size >= 1, "native_ring_transfers: comm_size >= 1");
  return static_cast<std::uint64_t>(comm_size) * (comm_size - 1);
}

std::uint64_t tuned_ring_savings(int comm_size) {
  BSB_REQUIRE(comm_size >= 1, "tuned_ring_savings: comm_size >= 1");
  std::uint64_t saved = 0;
  for (int rel = 0; rel < comm_size; ++rel) {
    const RingPlan plan = compute_ring_plan(rel, comm_size);
    if (!plan.recv_only) saved += static_cast<std::uint64_t>(plan.special_steps());
  }
  return saved;
}

std::uint64_t tuned_ring_transfers(int comm_size) {
  return native_ring_transfers(comm_size) - tuned_ring_savings(comm_size);
}

std::uint64_t scatter_transfers(int comm_size, std::uint64_t nbytes) {
  const ChunkLayout layout(nbytes, comm_size);
  std::uint64_t msgs = 0;
  for (int rel = 1; rel < comm_size; ++rel) {
    // A rank receives in the scatter iff its chunk region starts before the
    // end of the buffer (MPICH skips the receive otherwise).
    if (static_cast<std::uint64_t>(rel) * layout.scatter_size() < nbytes) ++msgs;
  }
  return msgs;
}

int block_ancestors(int rel) {
  BSB_REQUIRE(rel >= 0, "block_ancestors: rel >= 0");
  int count = 0;
  for (int a = rel; a != 0; a -= a & -a) ++count;
  return count;
}

std::uint64_t blocked_reduce_scatter_transfers(int comm_size) {
  return native_ring_transfers(comm_size) + tuned_ring_savings(comm_size);
}

std::uint64_t allreduce_rsag_native_transfers(int comm_size) {
  return blocked_reduce_scatter_transfers(comm_size) +
         native_ring_transfers(comm_size);
}

std::uint64_t allreduce_rsag_tuned_transfers(int comm_size) {
  return blocked_reduce_scatter_transfers(comm_size) +
         tuned_ring_transfers(comm_size);
}

std::uint64_t bruck_hier_transfers(int comm_size, int cores_per_node) {
  BSB_REQUIRE(comm_size >= 1 && cores_per_node >= 1,
              "bruck_hier_transfers: comm_size and cores >= 1");
  const std::uint64_t P = static_cast<std::uint64_t>(comm_size);
  const std::uint64_t L = ceil_div(P, static_cast<std::uint64_t>(cores_per_node));
  return 2 * (P - L) + L * static_cast<std::uint64_t>(ceil_log2(L));
}

std::uint64_t hier_inter_transfers(int nleaders, std::uint64_t nbytes,
                                   bool tuned) {
  BSB_REQUIRE(nleaders >= 1, "hier_inter_transfers: nleaders >= 1");
  if (nleaders == 1) return 0;
  return scatter_transfers(nleaders, nbytes) +
         (tuned ? tuned_ring_transfers(nleaders)
                : native_ring_transfers(nleaders));
}

std::uint64_t hier_intra_transfers(int comm_size, int nleaders) {
  BSB_REQUIRE(comm_size >= nleaders && nleaders >= 1,
              "hier_intra_transfers: need 1 <= nleaders <= comm_size");
  return static_cast<std::uint64_t>(comm_size - nleaders);
}

std::uint64_t hier_bcast_transfers(int comm_size, int nleaders,
                                   std::uint64_t nbytes, bool tuned) {
  return hier_inter_transfers(nleaders, nbytes, tuned) +
         hier_intra_transfers(comm_size, nleaders);
}

double tuned_saving_fraction(int comm_size) {
  const std::uint64_t native = native_ring_transfers(comm_size);
  if (native == 0) return 0.0;
  return static_cast<double>(tuned_ring_savings(comm_size)) /
         static_cast<double>(native);
}

std::string transfer_table(const std::vector<int>& comm_sizes) {
  Table t({"P", "native P(P-1)", "tuned", "saved", "saved %"});
  for (int p : comm_sizes) {
    t.add({std::to_string(p), std::to_string(native_ring_transfers(p)),
           std::to_string(tuned_ring_transfers(p)),
           std::to_string(tuned_ring_savings(p)),
           format_fixed(tuned_saving_fraction(p) * 100.0, 1)});
  }
  return t.render();
}

std::string reduce_family_table(const std::vector<int>& comm_sizes) {
  Table t({"P", "blocked RS", "allreduce native", "allreduce tuned", "saved"});
  for (int p : comm_sizes) {
    t.add({std::to_string(p), std::to_string(blocked_reduce_scatter_transfers(p)),
           std::to_string(allreduce_rsag_native_transfers(p)),
           std::to_string(allreduce_rsag_tuned_transfers(p)),
           std::to_string(tuned_ring_savings(p))});
  }
  return t.render();
}

}  // namespace bsb::core
