#include "core/transfer_analysis.hpp"

#include <vector>

#include "bsbutil/error.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/table.hpp"
#include "comm/chunks.hpp"
#include "core/ring_plan.hpp"

namespace bsb::core {

std::uint64_t native_ring_transfers(int comm_size) {
  BSB_REQUIRE(comm_size >= 1, "native_ring_transfers: comm_size >= 1");
  return static_cast<std::uint64_t>(comm_size) * (comm_size - 1);
}

std::uint64_t tuned_ring_savings(int comm_size) {
  BSB_REQUIRE(comm_size >= 1, "tuned_ring_savings: comm_size >= 1");
  std::uint64_t saved = 0;
  for (int rel = 0; rel < comm_size; ++rel) {
    const RingPlan plan = compute_ring_plan(rel, comm_size);
    if (!plan.recv_only) saved += static_cast<std::uint64_t>(plan.special_steps());
  }
  return saved;
}

std::uint64_t tuned_ring_transfers(int comm_size) {
  return native_ring_transfers(comm_size) - tuned_ring_savings(comm_size);
}

std::uint64_t scatter_transfers(int comm_size, std::uint64_t nbytes) {
  const ChunkLayout layout(nbytes, comm_size);
  std::uint64_t msgs = 0;
  for (int rel = 1; rel < comm_size; ++rel) {
    // A rank receives in the scatter iff its chunk region starts before the
    // end of the buffer (MPICH skips the receive otherwise).
    if (static_cast<std::uint64_t>(rel) * layout.scatter_size() < nbytes) ++msgs;
  }
  return msgs;
}

double tuned_saving_fraction(int comm_size) {
  const std::uint64_t native = native_ring_transfers(comm_size);
  if (native == 0) return 0.0;
  return static_cast<double>(tuned_ring_savings(comm_size)) /
         static_cast<double>(native);
}

std::string transfer_table(const std::vector<int>& comm_sizes) {
  Table t({"P", "native P(P-1)", "tuned", "saved", "saved %"});
  for (int p : comm_sizes) {
    t.add({std::to_string(p), std::to_string(native_ring_transfers(p)),
           std::to_string(tuned_ring_transfers(p)),
           std::to_string(tuned_ring_savings(p)),
           format_fixed(tuned_saving_fraction(p) * 100.0, 1)});
  }
  return t.render();
}

}  // namespace bsb::core
