// Runtime tuning of the broadcast selector, MPICH-CVAR style: thresholds
// and the tuned-ring toggle can be overridden through environment
// variables (or any string map, for tests):
//
//   BSB_BCAST_SMSG_LIMIT       bytes; below -> binomial      (default 12288)
//   BSB_BCAST_MMSG_LIMIT       bytes; below+pof2 -> rd       (default 524288)
//   BSB_BCAST_MIN_PROCS        ranks; below -> binomial      (default 8)
//   BSB_BCAST_USE_TUNED_RING   0/1/true/false/on/off         (default 1)
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/bcast.hpp"

namespace bsb::core {

/// Looks a variable up by name; returns nullopt when unset. The default
/// production lookup reads the process environment.
using EnvLookup = std::function<std::optional<std::string>(const std::string&)>;

/// Build a BcastConfig from `lookup`, starting from `base`. Unset
/// variables keep their base values. Throws PreconditionError on values
/// that do not parse or violate smsg <= mmsg / min_procs >= 1.
BcastConfig load_bcast_config(const EnvLookup& lookup, BcastConfig base = {});

/// load_bcast_config over the real process environment.
BcastConfig load_bcast_config_from_env(BcastConfig base = {});

}  // namespace bsb::core
