// Public broadcast entry point with MPICH3-style algorithm selection.
//
// MPICH3 dispatches MPI_Bcast on message size and process count:
//   * short messages (< 12288 B) or fewer than 8 ranks: binomial tree;
//   * medium messages (< 524288 B) with power-of-two ranks:
//     binomial scatter + recursive-doubling allgather;
//   * everything else (long messages; medium with non-power-of-two ranks):
//     binomial scatter + ring allgather.
// BcastConfig::use_tuned_ring selects the paper's non-enclosed ring for the
// last case (MPI_Bcast_opt) instead of the stock enclosed ring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "bsbutil/units.hpp"
#include "comm/comm.hpp"

namespace bsb::core {

enum class BcastAlgorithm {
  Binomial,
  ScatterRdAllgather,
  ScatterRingNative,
  ScatterRingTuned,
};

const char* to_string(BcastAlgorithm a) noexcept;

struct BcastConfig {
  /// Below this size the binomial tree wins (MPICH3's 12288-byte cut).
  std::uint64_t smsg_limit = kMpichShortMsgLimit;
  /// Below this (and power-of-two ranks) recursive doubling is used
  /// (MPICH3's 524288-byte cut).
  std::uint64_t mmsg_limit = kMpichMediumMsgLimit;
  /// Below this many ranks the binomial tree is always used
  /// (MPICH's MPIR_CVAR_BCAST_MIN_PROCS).
  int min_procs_for_scatter = 8;
  /// Use the paper's tuned ring allgather for the scatter-ring path.
  bool use_tuned_ring = true;
};

/// The algorithm bcast() will run for this size/count/config.
BcastAlgorithm choose_bcast_algorithm(std::uint64_t nbytes, int nranks,
                                      const BcastConfig& cfg = {});

/// Broadcast buffer from `root` to all ranks of `comm`, selecting the
/// algorithm per `cfg` exactly as MPICH3 would.
void bcast(Comm& comm, std::span<std::byte> buffer, int root,
           const BcastConfig& cfg = {});

/// Run one specific algorithm regardless of thresholds (benchmarks and
/// tests). ScatterRdAllgather requires a power-of-two comm size.
void run_bcast_algorithm(BcastAlgorithm algo, Comm& comm,
                         std::span<std::byte> buffer, int root);

}  // namespace bsb::core
