#include "core/ring_plan.hpp"

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"

namespace bsb::core {

RingPlan compute_ring_plan(int relative_rank, int comm_size) {
  BSB_REQUIRE(comm_size >= 1, "compute_ring_plan: comm_size must be >= 1");
  BSB_REQUIRE(relative_rank >= 0 && relative_rank < comm_size,
              "compute_ring_plan: relative_rank out of range");
  RingPlan plan;
  if (comm_size == 1) return plan;  // no ring steps at all

  // mask = 2^ceil(log2(P)), halved until it divides this rank or its right
  // neighbour — i.e. until we find the binomial-subtree block containing
  // the relevant owned chunks. The right-neighbour test comes first, as in
  // the paper's pseudo-code.
  for (std::int64_t mask = static_cast<std::int64_t>(
           next_pow2(static_cast<std::uint64_t>(comm_size)));
       mask > 1; mask >>= 1) {
    const int right_relative_rank =
        relative_rank + 1 < comm_size ? relative_rank + 1
                                      : relative_rank + 1 - comm_size;
    if (right_relative_rank % mask == 0) {
      plan.step = static_cast<int>(mask);
      if (right_relative_rank + mask > comm_size) {
        plan.step = comm_size - right_relative_rank;
      }
      plan.recv_only = true;
      return plan;
    }
    if (relative_rank % mask == 0) {
      plan.step = static_cast<int>(mask);
      if (relative_rank + mask > comm_size) plan.step = comm_size - relative_rank;
      plan.recv_only = false;
      return plan;
    }
  }
  // Unreachable: at mask == 2 one of relative_rank / right neighbour is even.
  BSB_ASSERT(false, "compute_ring_plan: mask loop failed to classify rank");
}

int tuned_sends(const RingPlan& plan, int comm_size) noexcept {
  const int base = comm_size - 1;
  return plan.recv_only ? base - plan.special_steps() : base;
}

int tuned_recvs(const RingPlan& plan, int comm_size) noexcept {
  const int base = comm_size - 1;
  return plan.recv_only ? base : base - plan.special_steps();
}

}  // namespace bsb::core
