#include "core/bcast.hpp"

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"
#include "coll/bcast_binomial.hpp"
#include "coll/bcast_scatter_rd.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"

namespace bsb::core {

const char* to_string(BcastAlgorithm a) noexcept {
  switch (a) {
    case BcastAlgorithm::Binomial: return "binomial";
    case BcastAlgorithm::ScatterRdAllgather: return "scatter+rd-allgather";
    case BcastAlgorithm::ScatterRingNative: return "scatter+ring-allgather(native)";
    case BcastAlgorithm::ScatterRingTuned: return "scatter+ring-allgather(tuned)";
  }
  return "?";
}

BcastAlgorithm choose_bcast_algorithm(std::uint64_t nbytes, int nranks,
                                      const BcastConfig& cfg) {
  BSB_REQUIRE(nranks >= 1, "choose_bcast_algorithm: nranks >= 1");
  if (nbytes < cfg.smsg_limit || nranks < cfg.min_procs_for_scatter) {
    return BcastAlgorithm::Binomial;
  }
  if (nbytes < cfg.mmsg_limit && is_pow2(static_cast<std::uint64_t>(nranks))) {
    return BcastAlgorithm::ScatterRdAllgather;
  }
  return cfg.use_tuned_ring ? BcastAlgorithm::ScatterRingTuned
                            : BcastAlgorithm::ScatterRingNative;
}

void run_bcast_algorithm(BcastAlgorithm algo, Comm& comm,
                         std::span<std::byte> buffer, int root) {
  switch (algo) {
    case BcastAlgorithm::Binomial:
      coll::bcast_binomial(comm, buffer, root);
      return;
    case BcastAlgorithm::ScatterRdAllgather:
      coll::bcast_scatter_rd(comm, buffer, root);
      return;
    case BcastAlgorithm::ScatterRingNative:
      coll::bcast_scatter_ring_native(comm, buffer, root);
      return;
    case BcastAlgorithm::ScatterRingTuned:
      bcast_scatter_ring_tuned(comm, buffer, root);
      return;
  }
  BSB_ASSERT(false, "run_bcast_algorithm: unknown algorithm");
}

void bcast(Comm& comm, std::span<std::byte> buffer, int root,
           const BcastConfig& cfg) {
  run_bcast_algorithm(choose_bcast_algorithm(buffer.size(), comm.size(), cfg),
                      comm, buffer, root);
}

}  // namespace bsb::core
