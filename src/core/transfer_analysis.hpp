// Closed-form message-transfer accounting for the native vs. tuned ring
// allgather — the arithmetic behind the paper's in-text claims (§IV):
// 8 procs: 56 native, 44 tuned (saving 12); 10 procs: 90 native, 75 tuned
// (saving 15); savings grow with the process count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bsb::core {

/// Messages the enclosed ring exchanges: P * (P - 1).
std::uint64_t native_ring_transfers(int comm_size);

/// Messages the tuned ring saves: sum over send-only ranks of (step - 1),
/// each skipped receive pairing with exactly one skipped send.
std::uint64_t tuned_ring_savings(int comm_size);

/// Messages the tuned ring exchanges: native - savings.
std::uint64_t tuned_ring_transfers(int comm_size);

/// Messages of the binomial scatter phase (identical for native and tuned):
/// every non-root rank whose chunk block is nonempty receives exactly once.
std::uint64_t scatter_transfers(int comm_size, std::uint64_t nbytes);

/// Savings as a fraction of native transfers, e.g. 12/56 at P=8.
double tuned_saving_fraction(int comm_size);

/// Binomial ancestors of relative rank `rel` (successively clearing the
/// lowest set bit until 0) == popcount(rel): the phase-B sends of the
/// blocks reduce_scatter. The popcount identity
///     sum_rel popcount(rel) == sum_rel (span(rel) - 1)
///                           == tuned_ring_savings(P)
/// is what prices that delivery at exactly the tuned ring's savings.
int block_ancestors(int rel);

/// Messages of the blocks-variant ring reduce_scatter: the P(P-1) ring
/// phase plus the ancestor delivery, i.e. P(P-1) + tuned_ring_savings(P).
std::uint64_t blocked_reduce_scatter_transfers(int comm_size);

/// Messages of the reduce_scatter+allgather allreduce, native (enclosed
/// allgather) flavour: blocked_reduce_scatter + P(P-1).
std::uint64_t allreduce_rsag_native_transfers(int comm_size);

/// Tuned flavour: blocked_reduce_scatter + tuned ring == exactly 2P(P-1)
/// (the phase-B delivery and the allgather savings cancel).
std::uint64_t allreduce_rsag_tuned_transfers(int comm_size);

/// Messages of the hierarchical Bruck allgather over blocked nodes of
/// `cores_per_node` ranks: 2(P - L) + L * ceil(log2(L)) with
/// L = ceil(P / cores_per_node).
std::uint64_t bruck_hier_transfers(int comm_size, int cores_per_node);

/// Inter-node messages of the two-level hier broadcast over `nleaders`
/// leaders: the flat scatter + (native|tuned) ring closed form evaluated
/// at P = nleaders, and 0 for a single node (no inter phase at all).
std::uint64_t hier_inter_transfers(int nleaders, std::uint64_t nbytes,
                                   bool tuned);

/// Intra-node fan-out messages of the hier broadcast: exactly one
/// full-buffer copy per non-leader rank, i.e. P - L.
std::uint64_t hier_intra_transfers(int comm_size, int nleaders);

/// Total hier broadcast messages: inter + intra.
std::uint64_t hier_bcast_transfers(int comm_size, int nleaders,
                                   std::uint64_t nbytes, bool tuned);

/// Tabulated summary for a range of process counts (used by the
/// transfer-count bench and DESIGN/EXPERIMENTS docs).
std::string transfer_table(const std::vector<int>& comm_sizes);

/// Companion table for the ownership-aware reduction family: blocked
/// reduce_scatter, native vs tuned allreduce totals and the saving.
std::string reduce_family_table(const std::vector<int>& comm_sizes);

}  // namespace bsb::core
