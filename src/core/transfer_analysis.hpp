// Closed-form message-transfer accounting for the native vs. tuned ring
// allgather — the arithmetic behind the paper's in-text claims (§IV):
// 8 procs: 56 native, 44 tuned (saving 12); 10 procs: 90 native, 75 tuned
// (saving 15); savings grow with the process count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bsb::core {

/// Messages the enclosed ring exchanges: P * (P - 1).
std::uint64_t native_ring_transfers(int comm_size);

/// Messages the tuned ring saves: sum over send-only ranks of (step - 1),
/// each skipped receive pairing with exactly one skipped send.
std::uint64_t tuned_ring_savings(int comm_size);

/// Messages the tuned ring exchanges: native - savings.
std::uint64_t tuned_ring_transfers(int comm_size);

/// Messages of the binomial scatter phase (identical for native and tuned):
/// every non-root rank whose chunk block is nonempty receives exactly once.
std::uint64_t scatter_transfers(int comm_size, std::uint64_t nbytes);

/// Savings as a fraction of native transfers, e.g. 12/56 at P=8.
double tuned_saving_fraction(int comm_size);

/// Tabulated summary for a range of process counts (used by the
/// transfer-count bench and DESIGN/EXPERIMENTS docs).
std::string transfer_table(const std::vector<int>& comm_sizes);

}  // namespace bsb::core
