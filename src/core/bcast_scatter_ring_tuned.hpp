// MPI_Bcast_opt: the paper's bandwidth-saving broadcast — binomial scatter
// followed by the tuned (non-enclosed) ring allgather.
#pragma once

#include <cstddef>
#include <span>

#include "comm/comm.hpp"

namespace bsb::core {

void bcast_scatter_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root);

}  // namespace bsb::core
