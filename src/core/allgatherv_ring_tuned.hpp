// Tuned (non-enclosed) ring allgatherv: the paper's optimization carried
// over to skewed block sizes. The key observation making this a one-line
// generalization: RingPlan depends only on each rank's position in the
// binomial scatter tree — on chunk COUNTS, never chunk SIZES — so the
// skip structure (which steps a rank goes send-only or receive-only) is
// byte-for-byte the schedule of the uniform tuned ring, and the tuned
// MESSAGE counts (total P(P-1) - savings, per-rank tuned_sends /
// tuned_recvs) are identical to the uniform case. Only the payload sizes
// change; the redundancy eliminated is whatever the skewed layout says
// those skipped chunks weigh.
#pragma once

#include <cstddef>
#include <span>

#include "comm/comm.hpp"
#include "comm/vchunks.hpp"
#include "core/allgather_ring_tuned.hpp"

namespace bsb::core {

/// Run the tuned ring allgatherv over chunks with the post-binomial-
/// scatter block ownership (relative rank r holds chunks
/// [r, r + scatter_subtree_span(r)) at home offsets). On return every rank
/// holds all layout.nbytes() bytes.
void allgatherv_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                           const VarLayout& layout);

/// As above with the per-rank plan supplied by `plan_fn` (sabotage hook for
/// the fuzz harness; see allgather_ring_tuned.hpp).
void allgatherv_ring_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                           const VarLayout& layout, const RingPlanFn& plan_fn);

}  // namespace bsb::core
