#include "core/icoll.hpp"

#include <utility>
#include <vector>

#include "bsbutil/error.hpp"
#include "coll/allgather_ring_native.hpp"
#include "coll/schedule_cache.hpp"
#include "comm/chunks.hpp"
#include "core/allgather_ring_tuned.hpp"

namespace bsb::core {

namespace {

/// The ThreadComm under a SubComm (nonblocking collectives drive the
/// parent's mailboxes directly, replicating the SubComm's translation).
mpisim::ThreadComm& thread_parent(SubComm& comm) {
  auto* tc = dynamic_cast<mpisim::ThreadComm*>(&comm.parent());
  BSB_REQUIRE(tc != nullptr,
              "nonblocking collectives need a mpisim::ThreadComm parent");
  return *tc;
}

/// Member map executing a root-canonical plan at `root`: plan rank i
/// (relative rank i) runs as member abs_rank(i, root, P). `members` is the
/// communicator's own world mapping ({} = the world itself). Empty result
/// = identity, the root-0 world fast path.
std::vector<int> rotated_members(int nranks, int root,
                                 const std::vector<int>& members) {
  if (root == 0 && members.empty()) return {};
  std::vector<int> out(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    const int a = abs_rank(i, root, nranks);
    out[static_cast<std::size_t>(i)] =
        members.empty() ? a : members[static_cast<std::size_t>(a)];
  }
  return out;
}

}  // namespace

std::shared_ptr<const coll::Plan> bcast_plan(int nranks, std::uint64_t nbytes,
                                             int root, const BcastConfig& cfg) {
  BSB_REQUIRE(root >= 0 && root < nranks, "bcast_plan: root out of range");
  const BcastAlgorithm algo = choose_bcast_algorithm(nbytes, nranks, cfg);
  // Root-canonical key: every root (and every same-shaped communicator)
  // shares ONE compilation, because all the flat bcast algorithms are
  // rotation-equivariant — rank r's schedule at root `root` is relative
  // rank rel_rank(r, root, P)'s schedule at root 0 with peers rotated.
  // Executors apply the rotation (execute_plan_rank's root parameter, the
  // progress engine's member map).
  const coll::PlanKey key{nranks, /*root=*/0, nbytes, static_cast<int>(algo)};
  return coll::process_schedule_cache().get_or_build(key, [&] {
    return coll::compile_plan(
        nranks, nbytes, /*root=*/0, to_string(algo),
        [algo](Comm& c, std::span<std::byte> buf) {
          run_bcast_algorithm(algo, c, buf, /*root=*/0);
        });
  });
}

std::shared_ptr<const coll::Plan> allgather_plan(int nranks,
                                                 std::uint64_t nbytes, int root,
                                                 bool tuned) {
  BSB_REQUIRE(root >= 0 && root < nranks, "allgather_plan: root out of range");
  const int id = tuned ? kPlanAllgatherRingTuned : kPlanAllgatherRingNative;
  // Root-canonical, exactly like bcast_plan: chunk ownership and offsets
  // are already expressed in relative ranks, so the root-0 plan rotated is
  // the root-r schedule.
  const coll::PlanKey key{nranks, /*root=*/0, nbytes, id};
  return coll::process_schedule_cache().get_or_build(key, [&] {
    return coll::compile_plan(
        nranks, nbytes, /*root=*/0,
        tuned ? "allgather_ring_tuned" : "allgather_ring_native",
        [tuned](Comm& c, std::span<std::byte> buf) {
          const ChunkLayout layout(buf.size(), c.size());
          if (tuned) {
            allgather_ring_tuned(c, buf, /*root=*/0, layout);
          } else {
            coll::allgather_ring_native(c, buf, /*root=*/0, layout);
          }
        });
  });
}

mpisim::CollRequest ibcast(mpisim::ThreadComm& comm,
                           std::span<std::byte> buffer, int root,
                           const BcastConfig& cfg) {
  BSB_REQUIRE(root >= 0 && root < comm.size(), "ibcast: root out of range");
  auto plan = bcast_plan(comm.size(), buffer.size(), root, cfg);
  return comm.progress_engine().start(
      std::move(plan), buffer, rel_rank(comm.rank(), root, comm.size()),
      rotated_members(comm.size(), root, {}), /*context=*/0);
}

mpisim::CollRequest ibcast(SubComm& comm, std::span<std::byte> buffer,
                           int root, const BcastConfig& cfg) {
  BSB_REQUIRE(root >= 0 && root < comm.size(), "ibcast: root out of range");
  mpisim::ThreadComm& parent = thread_parent(comm);
  auto plan = bcast_plan(comm.size(), buffer.size(), root, cfg);
  return parent.progress_engine().start(
      std::move(plan), buffer, rel_rank(comm.rank(), root, comm.size()),
      rotated_members(comm.size(), root, comm.members()), comm.context());
}

mpisim::CollRequest iallgather(mpisim::ThreadComm& comm,
                               std::span<std::byte> buffer, int root,
                               bool tuned) {
  BSB_REQUIRE(root >= 0 && root < comm.size(), "iallgather: root out of range");
  auto plan = allgather_plan(comm.size(), buffer.size(), root, tuned);
  return comm.progress_engine().start(
      std::move(plan), buffer, rel_rank(comm.rank(), root, comm.size()),
      rotated_members(comm.size(), root, {}), /*context=*/0);
}

mpisim::CollRequest iallgather(SubComm& comm, std::span<std::byte> buffer,
                               int root, bool tuned) {
  BSB_REQUIRE(root >= 0 && root < comm.size(), "iallgather: root out of range");
  mpisim::ThreadComm& parent = thread_parent(comm);
  auto plan = allgather_plan(comm.size(), buffer.size(), root, tuned);
  return parent.progress_engine().start(
      std::move(plan), buffer, rel_rank(comm.rank(), root, comm.size()),
      rotated_members(comm.size(), root, comm.members()), comm.context());
}

}  // namespace bsb::core
