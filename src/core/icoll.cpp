#include "core/icoll.hpp"

#include <utility>
#include <vector>

#include "bsbutil/error.hpp"
#include "coll/allgather_ring_native.hpp"
#include "coll/schedule_cache.hpp"
#include "comm/chunks.hpp"
#include "core/allgather_ring_tuned.hpp"

namespace bsb::core {

namespace {

/// The ThreadComm under a SubComm (nonblocking collectives drive the
/// parent's mailboxes directly, replicating the SubComm's translation).
mpisim::ThreadComm& thread_parent(SubComm& comm) {
  auto* tc = dynamic_cast<mpisim::ThreadComm*>(&comm.parent());
  BSB_REQUIRE(tc != nullptr,
              "nonblocking collectives need a mpisim::ThreadComm parent");
  return *tc;
}

}  // namespace

std::shared_ptr<const coll::Plan> bcast_plan(int nranks, std::uint64_t nbytes,
                                             int root, const BcastConfig& cfg) {
  const BcastAlgorithm algo = choose_bcast_algorithm(nbytes, nranks, cfg);
  const coll::PlanKey key{nranks, root, nbytes, static_cast<int>(algo)};
  return coll::process_schedule_cache().get_or_build(key, [&] {
    return coll::compile_plan(
        nranks, nbytes, root, to_string(algo),
        [algo, root](Comm& c, std::span<std::byte> buf) {
          run_bcast_algorithm(algo, c, buf, root);
        });
  });
}

std::shared_ptr<const coll::Plan> allgather_plan(int nranks,
                                                 std::uint64_t nbytes, int root,
                                                 bool tuned) {
  const int id = tuned ? kPlanAllgatherRingTuned : kPlanAllgatherRingNative;
  const coll::PlanKey key{nranks, root, nbytes, id};
  return coll::process_schedule_cache().get_or_build(key, [&] {
    return coll::compile_plan(
        nranks, nbytes, root,
        tuned ? "allgather_ring_tuned" : "allgather_ring_native",
        [tuned, root](Comm& c, std::span<std::byte> buf) {
          const ChunkLayout layout(buf.size(), c.size());
          if (tuned) {
            allgather_ring_tuned(c, buf, root, layout);
          } else {
            coll::allgather_ring_native(c, buf, root, layout);
          }
        });
  });
}

mpisim::CollRequest ibcast(mpisim::ThreadComm& comm,
                           std::span<std::byte> buffer, int root,
                           const BcastConfig& cfg) {
  BSB_REQUIRE(root >= 0 && root < comm.size(), "ibcast: root out of range");
  auto plan = bcast_plan(comm.size(), buffer.size(), root, cfg);
  return comm.progress_engine().start(std::move(plan), buffer, comm.rank(),
                                      /*members=*/{}, /*context=*/0);
}

mpisim::CollRequest ibcast(SubComm& comm, std::span<std::byte> buffer,
                           int root, const BcastConfig& cfg) {
  BSB_REQUIRE(root >= 0 && root < comm.size(), "ibcast: root out of range");
  mpisim::ThreadComm& parent = thread_parent(comm);
  auto plan = bcast_plan(comm.size(), buffer.size(), root, cfg);
  return parent.progress_engine().start(std::move(plan), buffer, comm.rank(),
                                        comm.members(), comm.context());
}

mpisim::CollRequest iallgather(mpisim::ThreadComm& comm,
                               std::span<std::byte> buffer, int root,
                               bool tuned) {
  BSB_REQUIRE(root >= 0 && root < comm.size(), "iallgather: root out of range");
  auto plan = allgather_plan(comm.size(), buffer.size(), root, tuned);
  return comm.progress_engine().start(std::move(plan), buffer, comm.rank(),
                                      /*members=*/{}, /*context=*/0);
}

mpisim::CollRequest iallgather(SubComm& comm, std::span<std::byte> buffer,
                               int root, bool tuned) {
  BSB_REQUIRE(root >= 0 && root < comm.size(), "iallgather: root out of range");
  mpisim::ThreadComm& parent = thread_parent(comm);
  auto plan = allgather_plan(comm.size(), buffer.size(), root, tuned);
  return parent.progress_engine().start(std::move(plan), buffer, comm.rank(),
                                        comm.members(), comm.context());
}

}  // namespace bsb::core
