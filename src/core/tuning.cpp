#include "core/tuning.hpp"

#include <cstdlib>

#include "bsbutil/error.hpp"

namespace bsb::core {

namespace {

std::uint64_t parse_bytes(const std::string& name, const std::string& value) {
  std::size_t pos = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(value, &pos, 10);
  } catch (const std::exception&) {
    pos = 0;
  }
  // Accept K/M/G suffixes (base-2, matching the paper's unit convention).
  std::uint64_t scale = 1;
  if (pos < value.size()) {
    switch (value[pos]) {
      case 'k': case 'K': scale = 1024; ++pos; break;
      case 'm': case 'M': scale = 1024 * 1024; ++pos; break;
      case 'g': case 'G': scale = 1024ULL * 1024 * 1024; ++pos; break;
      default: break;
    }
  }
  BSB_REQUIRE(pos == value.size() && !value.empty(),
              ("tuning: cannot parse " + name + "='" + value + "'").c_str());
  return parsed * scale;
}

bool parse_bool(const std::string& name, const std::string& value) {
  if (value == "1" || value == "true" || value == "on" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "off" || value == "no") return false;
  BSB_REQUIRE(false, ("tuning: cannot parse " + name + "='" + value +
                      "' as a boolean").c_str());
  return false;  // unreachable
}

}  // namespace

BcastConfig load_bcast_config(const EnvLookup& lookup, BcastConfig base) {
  BcastConfig cfg = base;
  if (const auto v = lookup("BSB_BCAST_SMSG_LIMIT")) {
    cfg.smsg_limit = parse_bytes("BSB_BCAST_SMSG_LIMIT", *v);
  }
  if (const auto v = lookup("BSB_BCAST_MMSG_LIMIT")) {
    cfg.mmsg_limit = parse_bytes("BSB_BCAST_MMSG_LIMIT", *v);
  }
  if (const auto v = lookup("BSB_BCAST_MIN_PROCS")) {
    cfg.min_procs_for_scatter =
        static_cast<int>(parse_bytes("BSB_BCAST_MIN_PROCS", *v));
  }
  if (const auto v = lookup("BSB_BCAST_USE_TUNED_RING")) {
    cfg.use_tuned_ring = parse_bool("BSB_BCAST_USE_TUNED_RING", *v);
  }
  BSB_REQUIRE(cfg.smsg_limit <= cfg.mmsg_limit,
              "tuning: smsg limit must not exceed mmsg limit");
  BSB_REQUIRE(cfg.min_procs_for_scatter >= 1,
              "tuning: min procs must be at least 1");
  return cfg;
}

BcastConfig load_bcast_config_from_env(BcastConfig base) {
  return load_bcast_config(
      [](const std::string& name) -> std::optional<std::string> {
        const char* v = std::getenv(name.c_str());
        if (v == nullptr) return std::nullopt;
        return std::string(v);
      },
      base);
}

}  // namespace bsb::core
