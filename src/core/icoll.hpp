// Nonblocking collectives (MPI_Ibcast / MPI_Iallgather analogues) for the
// mpisim thread backend: the blocking algorithm is compiled ONCE into a
// shared coll::Plan (memoized by the process-wide schedule cache, so the
// hot serving path never recomputes chunk layouts or ring plans) and then
// advanced step-by-step by the caller rank's ProgressEngine. Many
// collectives can be in flight per rank; see mpisim/progress.hpp for the
// tag-isolation and lifetime rules.
//
// Results are byte-identical to the blocking counterparts: the plans are
// recorded from the very same algorithm implementations.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "coll/plan.hpp"
#include "comm/subcomm.hpp"
#include "core/bcast.hpp"
#include "mpisim/progress.hpp"

namespace bsb::core {

/// PlanKey::algorithm ids. Bcast ids equal the BcastAlgorithm enum values;
/// the allgather family lives at 100+ so the namespaces cannot collide.
inline constexpr int kPlanAllgatherRingNative = 100;
inline constexpr int kPlanAllgatherRingTuned = 101;

/// The cached plan core::bcast would run for this shape (process schedule
/// cache; builds and inserts on a miss). Plans are ROOT-CANONICAL: the
/// returned plan is compiled at root 0 and shared by every root and every
/// same-shaped communicator (the flat algorithms are rotation-equivariant,
/// so plan rank i is relative rank i w.r.t. the actual root). Execute it
/// through coll::execute_plan_rank's root parameter or the progress
/// engine's member map — never at absolute ranks when root != 0.
std::shared_ptr<const coll::Plan> bcast_plan(int nranks, std::uint64_t nbytes,
                                             int root,
                                             const BcastConfig& cfg = {});

/// The cached plan of the (native or tuned) ring allgather over chunks
/// scattered by scatter_binomial, as the blocking allgather_ring_* run.
/// Root-canonical exactly like bcast_plan.
std::shared_ptr<const coll::Plan> allgather_plan(int nranks,
                                                 std::uint64_t nbytes, int root,
                                                 bool tuned);

/// Nonblocking broadcast over the whole world. `buffer` must stay valid
/// and untouched until the returned request completes.
mpisim::CollRequest ibcast(mpisim::ThreadComm& comm,
                           std::span<std::byte> buffer, int root,
                           const BcastConfig& cfg = {});

/// Nonblocking broadcast over a subgroup. The SubComm's parent must be a
/// mpisim::ThreadComm; traffic uses the SubComm's tag namespace.
mpisim::CollRequest ibcast(SubComm& comm, std::span<std::byte> buffer,
                           int root, const BcastConfig& cfg = {});

/// Nonblocking ring allgather (tuned = the paper's non-enclosed ring) over
/// chunks scattered by scatter_binomial: chunk i owned by relative rank i.
mpisim::CollRequest iallgather(mpisim::ThreadComm& comm,
                               std::span<std::byte> buffer, int root,
                               bool tuned = true);

mpisim::CollRequest iallgather(SubComm& comm, std::span<std::byte> buffer,
                               int root, bool tuned = true);

}  // namespace bsb::core
