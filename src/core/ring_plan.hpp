// The heart of the paper's optimization (Listing 1): each rank derives,
// purely from its relative position in the binomial scatter tree, at which
// ring step it may stop sending or stop receiving.
//
// After the binomial scatter, relative rank r owns a contiguous block of
// chunks. Blocks arrive around the ring in decreasing chunk order, so the
// chunks a rank already owns are exactly the LAST ones the enclosed ring
// would hand it — and symmetrically, the last chunks it would send to its
// right neighbour are the ones that neighbour already owns. Hence:
//
//  * a rank whose own subtree block has `step` chunks skips its last
//    step-1 RECEIVES (it becomes send-only — flag=0 in the paper);
//  * a rank whose RIGHT neighbour's block has `step` chunks skips its last
//    step-1 SENDS (it becomes receive-only — flag=1 in the paper).
//
// The root (block = whole buffer) never receives; the rank left of the
// root never sends. Every skipped send pairs with exactly one skipped
// receive on the same ring link, which is what makes the tuned schedule
// deadlock-free and is checked by RingPlan property tests.
#pragma once

#include <cstdint>

namespace bsb::core {

struct RingPlan {
  /// Size (in chunks) of the owned block that triggers the special phase;
  /// the special phase spans the last `step - 1` of the P-1 ring steps.
  int step = 1;
  /// true: receive-only in the special phase (skip sends);
  /// false: send-only in the special phase (skip receives).
  bool recv_only = false;

  /// Number of ring steps this rank skips one direction in.
  int special_steps() const noexcept { return step - 1; }
};

/// Listing 1's mask loop. `relative_rank` in [0, comm_size).
RingPlan compute_ring_plan(int relative_rank, int comm_size);

/// True if ring step i (1-based, i in [1, comm_size-1]) falls in the plan's
/// special (send-only / receive-only) phase.
constexpr bool is_special_step(const RingPlan& plan, int i, int comm_size) noexcept {
  return plan.step > comm_size - i;
}

/// Sends this rank performs over the P-1 tuned ring steps.
int tuned_sends(const RingPlan& plan, int comm_size) noexcept;

/// Receives this rank performs over the P-1 tuned ring steps.
int tuned_recvs(const RingPlan& plan, int comm_size) noexcept;

}  // namespace bsb::core
