// MPI-compatibility facade: a C-style MPI_* surface over the thread-backed
// runtime, so MPI application code — including the paper's own Listing 1 —
// ports with little more than an include swap. Coverage: the point-to-point
// and collective subset this project needs (send/recv/sendrecv, bcast,
// reduce, allreduce, gather, barrier, comm_split, wtime, get_count).
//
// Usage:
//   bsb::mpi::run(10, [] {
//     using namespace bsb::mpi;
//     int rank; MPI_Comm_rank(MPI_COMM_WORLD, &rank);
//     MPI_Bcast(buf, len, MPI_BYTE, 0, MPI_COMM_WORLD);
//   });
//
// Differences from real MPI, by design:
//  * run() replaces mpirun + MPI_Init/Finalize (ranks are threads);
//  * errors are fatal (bsb exceptions propagate) — the default
//    MPI_ERRORS_ARE_FATAL behaviour — and every call returns MPI_SUCCESS;
//  * communicators are per-rank handles created by MPI_Comm_split; all
//    ranks must issue split calls in the same order (standard MPI rule);
//  * MPI_Bcast uses THIS library's MPICH3-style selection with the tuned
//    ring enabled (override via BSB_BCAST_USE_TUNED_RING).
#pragma once

#include <cstddef>
#include <functional>

#include "comm/comm.hpp"
#include "mpisim/world.hpp"

namespace bsb::mpi {

using MPI_Comm = int;
inline constexpr MPI_Comm MPI_COMM_WORLD = 0;
inline constexpr MPI_Comm MPI_COMM_NULL = -1;

using MPI_Datatype = int;
inline constexpr MPI_Datatype MPI_BYTE = 0;
inline constexpr MPI_Datatype MPI_CHAR = 1;
inline constexpr MPI_Datatype MPI_INT = 2;
inline constexpr MPI_Datatype MPI_DOUBLE = 3;
inline constexpr MPI_Datatype MPI_INT64_T = 4;

using MPI_Op = int;
inline constexpr MPI_Op MPI_SUM = 0;
inline constexpr MPI_Op MPI_MAX = 1;
inline constexpr MPI_Op MPI_MIN = 2;

inline constexpr int MPI_ANY_SOURCE = -1;
inline constexpr int MPI_ANY_TAG = -1;
inline constexpr int MPI_SUCCESS = 0;
inline constexpr int MPI_UNDEFINED = -1;

struct MPI_Status {
  int MPI_SOURCE = -1;
  int MPI_TAG = -1;
  int internal_bytes = 0;  // backs MPI_Get_count
};
inline MPI_Status* const MPI_STATUS_IGNORE = nullptr;

/// Traffic totals of one run() (from the runtime's counters).
struct RunStats {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
};

/// Launch `rank_main` on `nranks` rank-threads with MPI_COMM_WORLD bound.
/// Rethrows the first rank failure (fatal-error semantics). Returns the
/// total point-to-point traffic the run generated.
RunStats run(int nranks, const std::function<void()>& rank_main,
             mpisim::WorldConfig cfg = {});

// --- environment ----------------------------------------------------------
int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);
double MPI_Wtime();

// --- point-to-point ---------------------------------------------------------
int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest,
             int tag, MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag,
             MPI_Comm comm, MPI_Status* status);
int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, int recvcount,
                 MPI_Datatype recvtype, int source, int recvtag, MPI_Comm comm,
                 MPI_Status* status);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype, int* count);

// --- collectives ------------------------------------------------------------
int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root,
              MPI_Comm comm);
int MPI_Reduce(const void* sendbuf, void* recvbuf, int count,
               MPI_Datatype datatype, MPI_Op op, int root, MPI_Comm comm);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype datatype, MPI_Op op, MPI_Comm comm);
int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
               void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm);
int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
                MPI_Comm comm);
int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                  void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm);
int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm);

// --- communicators ----------------------------------------------------------
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm);
int MPI_Comm_free(MPI_Comm* comm);

/// The underlying Comm& for a handle (bridge into the native bsb API).
Comm& comm_of(MPI_Comm comm);

/// Element size of a datatype in bytes.
std::size_t datatype_size(MPI_Datatype datatype);

}  // namespace bsb::mpi
