#include "mpi/mpi.hpp"

#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "bsbutil/error.hpp"
#include "coll/allgather_bruck.hpp"
#include "coll/alltoall.hpp"
#include "coll/comm_split.hpp"
#include "coll/gather_binomial.hpp"
#include "coll/reduce.hpp"
#include "coll/scatter.hpp"
#include "comm/subcomm.hpp"
#include "core/bcast.hpp"
#include "core/tuning.hpp"
#include "mpisim/thread_comm.hpp"

namespace bsb::mpi {

namespace {

/// Everything a rank-thread needs between run() entry and exit. Handle i
/// indexes `comms`; slot 0 is the world.
struct RankContext {
  mpisim::ThreadComm* world = nullptr;
  std::vector<std::unique_ptr<SubComm>> subcomms;  // handle = index + 1
  std::vector<bool> freed;                          // parallel to subcomms
  int split_sequence = 0;  // same on all ranks when calls are ordered alike
  core::BcastConfig bcast_cfg;
};

thread_local RankContext* tls_ctx = nullptr;

RankContext& ctx() {
  BSB_REQUIRE(tls_ctx != nullptr,
              "bsb::mpi: MPI_* called outside bsb::mpi::run()");
  return *tls_ctx;
}

std::span<const std::byte> send_span(const void* buf, int count,
                                     MPI_Datatype datatype) {
  BSB_REQUIRE(count >= 0, "bsb::mpi: negative count");
  return {static_cast<const std::byte*>(buf),
          static_cast<std::size_t>(count) * datatype_size(datatype)};
}

std::span<std::byte> recv_span(void* buf, int count, MPI_Datatype datatype) {
  BSB_REQUIRE(count >= 0, "bsb::mpi: negative count");
  return {static_cast<std::byte*>(buf),
          static_cast<std::size_t>(count) * datatype_size(datatype)};
}

void fill_status(MPI_Status* status, const Status& st) {
  if (status == MPI_STATUS_IGNORE) return;
  status->MPI_SOURCE = st.source;
  status->MPI_TAG = st.tag;
  status->internal_bytes = static_cast<int>(st.bytes);
}

template <typename T>
void typed_reduce(Comm& c, const void* in, void* out, int count, MPI_Op op,
                  int root) {
  const std::span<const T> vin{static_cast<const T*>(in),
                               static_cast<std::size_t>(count)};
  const std::span<T> vout{static_cast<T*>(out),
                          c.rank() == root ? static_cast<std::size_t>(count) : 0};
  switch (op) {
    case MPI_SUM: coll::reduce_binomial(c, vin, vout, coll::SumOp{}, root); return;
    case MPI_MAX: coll::reduce_binomial(c, vin, vout, coll::MaxOp{}, root); return;
    case MPI_MIN: coll::reduce_binomial(c, vin, vout, coll::MinOp{}, root); return;
  }
  BSB_REQUIRE(false, "bsb::mpi: unknown MPI_Op");
}

template <typename T>
void typed_allreduce(Comm& c, void* buf, int count, MPI_Op op) {
  const std::span<T> v{static_cast<T*>(buf), static_cast<std::size_t>(count)};
  switch (op) {
    case MPI_SUM: coll::allreduce(c, v, coll::SumOp{}); return;
    case MPI_MAX: coll::allreduce(c, v, coll::MaxOp{}); return;
    case MPI_MIN: coll::allreduce(c, v, coll::MinOp{}); return;
  }
  BSB_REQUIRE(false, "bsb::mpi: unknown MPI_Op");
}

}  // namespace

std::size_t datatype_size(MPI_Datatype datatype) {
  switch (datatype) {
    case MPI_BYTE: return 1;
    case MPI_CHAR: return 1;
    case MPI_INT: return sizeof(int);
    case MPI_DOUBLE: return sizeof(double);
    case MPI_INT64_T: return sizeof(std::int64_t);
  }
  BSB_REQUIRE(false, "bsb::mpi: unknown MPI_Datatype");
  return 0;
}

Comm& comm_of(MPI_Comm comm) {
  RankContext& c = ctx();
  if (comm == MPI_COMM_WORLD) return *c.world;
  const int idx = comm - 1;
  BSB_REQUIRE(idx >= 0 && idx < static_cast<int>(c.subcomms.size()) &&
                  !c.freed[idx],
              "bsb::mpi: invalid or freed communicator handle");
  return *c.subcomms[idx];
}

RunStats run(int nranks, const std::function<void()>& rank_main,
             mpisim::WorldConfig cfg) {
  mpisim::World world(nranks, cfg);
  world.run([&](mpisim::ThreadComm& comm) {
    RankContext context;
    context.world = &comm;
    context.bcast_cfg = core::load_bcast_config_from_env();
    tls_ctx = &context;
    try {
      rank_main();
    } catch (...) {
      tls_ctx = nullptr;
      throw;
    }
    tls_ctx = nullptr;
  });
  return RunStats{world.total_msgs(), world.total_bytes()};
}

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
  *rank = comm_of(comm).rank();
  return MPI_SUCCESS;
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
  *size = comm_of(comm).size();
  return MPI_SUCCESS;
}

double MPI_Wtime() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest,
             int tag, MPI_Comm comm) {
  comm_of(comm).send(send_span(buf, count, datatype), dest, tag);
  return MPI_SUCCESS;
}

int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag,
             MPI_Comm comm, MPI_Status* status) {
  const Status st = comm_of(comm).recv(recv_span(buf, count, datatype),
                                       source == MPI_ANY_SOURCE ? kAnySource
                                                                : source,
                                       tag == MPI_ANY_TAG ? kAnyTag : tag);
  fill_status(status, st);
  return MPI_SUCCESS;
}

int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, int recvcount,
                 MPI_Datatype recvtype, int source, int recvtag, MPI_Comm comm,
                 MPI_Status* status) {
  const Status st = comm_of(comm).sendrecv(
      send_span(sendbuf, sendcount, sendtype), dest, sendtag,
      recv_span(recvbuf, recvcount, recvtype),
      source == MPI_ANY_SOURCE ? kAnySource : source,
      recvtag == MPI_ANY_TAG ? kAnyTag : recvtag);
  fill_status(status, st);
  return MPI_SUCCESS;
}

int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype, int* count) {
  BSB_REQUIRE(status != nullptr, "bsb::mpi: MPI_Get_count on null status");
  const std::size_t elem = datatype_size(datatype);
  BSB_REQUIRE(status->internal_bytes % elem == 0,
              "bsb::mpi: received byte count is not a whole element count");
  *count = static_cast<int>(status->internal_bytes / elem);
  return MPI_SUCCESS;
}

int MPI_Barrier(MPI_Comm comm) {
  comm_of(comm).barrier();
  return MPI_SUCCESS;
}

int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root,
              MPI_Comm comm) {
  core::bcast(comm_of(comm), recv_span(buffer, count, datatype), root,
              ctx().bcast_cfg);
  return MPI_SUCCESS;
}

int MPI_Reduce(const void* sendbuf, void* recvbuf, int count,
               MPI_Datatype datatype, MPI_Op op, int root, MPI_Comm comm) {
  Comm& c = comm_of(comm);
  switch (datatype) {
    case MPI_INT: typed_reduce<int>(c, sendbuf, recvbuf, count, op, root); break;
    case MPI_DOUBLE:
      typed_reduce<double>(c, sendbuf, recvbuf, count, op, root);
      break;
    case MPI_INT64_T:
      typed_reduce<std::int64_t>(c, sendbuf, recvbuf, count, op, root);
      break;
    default:
      BSB_REQUIRE(false, "bsb::mpi: MPI_Reduce supports INT/DOUBLE/INT64_T");
  }
  return MPI_SUCCESS;
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype datatype, MPI_Op op, MPI_Comm comm) {
  // MPI copies sendbuf to recvbuf first (we do not support MPI_IN_PLACE's
  // aliasing subtleties; pass distinct buffers or equal pointers).
  const std::size_t bytes = static_cast<std::size_t>(count) * datatype_size(datatype);
  if (sendbuf != recvbuf && bytes > 0) std::memcpy(recvbuf, sendbuf, bytes);
  Comm& c = comm_of(comm);
  switch (datatype) {
    case MPI_INT: typed_allreduce<int>(c, recvbuf, count, op); break;
    case MPI_DOUBLE: typed_allreduce<double>(c, recvbuf, count, op); break;
    case MPI_INT64_T: typed_allreduce<std::int64_t>(c, recvbuf, count, op); break;
    default:
      BSB_REQUIRE(false, "bsb::mpi: MPI_Allreduce supports INT/DOUBLE/INT64_T");
  }
  return MPI_SUCCESS;
}

int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
               void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm) {
  Comm& c = comm_of(comm);
  const std::size_t block = static_cast<std::size_t>(sendcount) *
                            datatype_size(sendtype);
  BSB_REQUIRE(c.rank() != root ||
                  static_cast<std::size_t>(recvcount) * datatype_size(recvtype) ==
                      block,
              "bsb::mpi: MPI_Gather send/recv block size mismatch");
  coll::gather_binomial(
      c, send_span(sendbuf, sendcount, sendtype),
      c.rank() == root
          ? std::span<std::byte>(static_cast<std::byte*>(recvbuf),
                                 block * static_cast<std::size_t>(c.size()))
          : std::span<std::byte>{},
      block, root);
  return MPI_SUCCESS;
}

int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
                MPI_Comm comm) {
  Comm& c = comm_of(comm);
  const std::size_t block =
      static_cast<std::size_t>(recvcount) * datatype_size(recvtype);
  BSB_REQUIRE(c.rank() != root ||
                  static_cast<std::size_t>(sendcount) * datatype_size(sendtype) ==
                      block,
              "bsb::mpi: MPI_Scatter send/recv block size mismatch");
  coll::scatter(c,
                c.rank() == root
                    ? std::span<const std::byte>(
                          static_cast<const std::byte*>(sendbuf),
                          block * static_cast<std::size_t>(c.size()))
                    : std::span<const std::byte>{},
                recv_span(recvbuf, recvcount, recvtype), block, root);
  return MPI_SUCCESS;
}

int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                  void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm) {
  Comm& c = comm_of(comm);
  const std::size_t block =
      static_cast<std::size_t>(sendcount) * datatype_size(sendtype);
  BSB_REQUIRE(static_cast<std::size_t>(recvcount) * datatype_size(recvtype) ==
                  block,
              "bsb::mpi: MPI_Allgather send/recv block size mismatch");
  const std::span<std::byte> all{static_cast<std::byte*>(recvbuf),
                                 block * static_cast<std::size_t>(c.size())};
  if (block > 0) {
    std::memcpy(all.data() + static_cast<std::size_t>(c.rank()) * block,
                sendbuf, block);
  }
  coll::allgather_bruck(c, all, block);
  return MPI_SUCCESS;
}

int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm) {
  Comm& c = comm_of(comm);
  const std::size_t block =
      static_cast<std::size_t>(sendcount) * datatype_size(sendtype);
  BSB_REQUIRE(static_cast<std::size_t>(recvcount) * datatype_size(recvtype) ==
                  block,
              "bsb::mpi: MPI_Alltoall send/recv block size mismatch");
  const std::size_t total = block * static_cast<std::size_t>(c.size());
  coll::alltoall_pairwise(
      c, {static_cast<const std::byte*>(sendbuf), total},
      {static_cast<std::byte*>(recvbuf), total}, block);
  return MPI_SUCCESS;
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm) {
  BSB_REQUIRE(comm == MPI_COMM_WORLD,
              "bsb::mpi: MPI_Comm_split currently splits MPI_COMM_WORLD only "
              "(nested SubComms would double-shift tags)");
  RankContext& c = ctx();
  // A deterministic context range per split call; all ranks must make
  // split calls in the same order, which MPI requires anyway.
  const int base_context = 1000 + 64 * c.split_sequence++;
  auto sub = coll::comm_split(*c.world, color == MPI_UNDEFINED
                                            ? coll::kUndefinedColor
                                            : color,
                              key, base_context);
  if (!sub.has_value()) {
    *newcomm = MPI_COMM_NULL;
    return MPI_SUCCESS;
  }
  c.subcomms.push_back(std::make_unique<SubComm>(std::move(*sub)));
  c.freed.push_back(false);
  *newcomm = static_cast<int>(c.subcomms.size());  // index + 1
  return MPI_SUCCESS;
}

int MPI_Comm_free(MPI_Comm* comm) {
  BSB_REQUIRE(comm != nullptr && *comm != MPI_COMM_WORLD,
              "bsb::mpi: cannot free MPI_COMM_WORLD");
  if (*comm == MPI_COMM_NULL) return MPI_SUCCESS;
  RankContext& c = ctx();
  const int idx = *comm - 1;
  BSB_REQUIRE(idx >= 0 && idx < static_cast<int>(c.subcomms.size()) &&
                  !c.freed[idx],
              "bsb::mpi: double free of communicator");
  c.freed[idx] = true;
  *comm = MPI_COMM_NULL;
  return MPI_SUCCESS;
}

}  // namespace bsb::mpi
