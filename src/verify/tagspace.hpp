// Whole-program tag-space lint: proves the progress engine's ctx remap
// (coll/tags.hpp: plan tag t of in-flight collective #ctx becomes
// t + kCtxStride * ctx, ctx in [1, kMaxCtx]) safe over EVERY tag any
// schedule can emit — the registered per-algorithm base tags (including
// kHierFanout), the chaos tests' raw point-to-point band, and any planted
// extras (the --demo-broken=tagspace sabotage).
//
// Properties proven, each with a concrete witness on failure:
//  * window     — every base tag fits [0, kCtxStride), so the remap of any
//                 two distinct contexts lands in disjoint bands;
//  * injective  — no two (tag, ctx) pairs remap to the same value: for
//                 in-window tags t1 != t2, t1 + S*c1 == t2 + S*c2 needs
//                 S | (t1 - t2), impossible with |t1 - t2| < S. Enumerated
//                 pairwise, so a planted out-of-window tag yields the exact
//                 colliding (ctx, remapped-tag) pair;
//  * raw band   — the smallest remapped tag (ctx = 1) clears every raw
//                 context-0 tag, so blocking collectives and chaos traffic
//                 can never capture an in-flight nonblocking message;
//  * ceiling    — the largest remapped tag stays below kMaxUserTag (the
//                 SubComm dissemination-barrier tag) and below the 2^16
//                 SubComm namespace stride;
//  * wildcards  — kAnyTag is negative, hence outside every band; recorded
//                 schedules containing it are rejected by lint_schedule, so
//                 a wildcard receive cannot capture cross-context traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bsb::verify {

struct TagSpaceOptions {
  /// Extra base tags to lint alongside the registry — the sabotage hook
  /// (plant 33 to watch the window and collision witnesses fire).
  std::vector<int> extra_base_tags;
};

struct TagSpaceReport {
  bool ok = true;
  int base_tags = 0;        // collective base tags checked
  int raw_tags = 0;         // raw context-0 (chaos) tags checked
  int contexts = 0;         // ctx range each proof covers (kMaxCtx)
  std::uint64_t checks = 0; // individual properties proven
  int max_remapped = -1;    // largest tag the remap can ever produce
  std::vector<std::string> witnesses;  // one line per violated property

  std::string to_string() const;
};

TagSpaceReport lint_tag_space(const TagSpaceOptions& opt = {});

}  // namespace bsb::verify
