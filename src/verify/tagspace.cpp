#include "verify/tagspace.hpp"

#include <algorithm>

#include "coll/tags.hpp"
#include "comm/comm.hpp"

namespace bsb::verify {

namespace {

constexpr int kStride = coll::tags::kCtxStride;
constexpr int kCtxLo = 1;
constexpr int kCtxHi = coll::tags::kMaxCtx;

}  // namespace

std::string TagSpaceReport::to_string() const {
  std::string out = "tag space: " + std::to_string(base_tags) +
                    " base tag(s) + " + std::to_string(raw_tags) +
                    " raw tag(s) over ctx [" + std::to_string(kCtxLo) + ", " +
                    std::to_string(contexts) + "], " +
                    std::to_string(checks) + " check(s), max remapped tag " +
                    std::to_string(max_remapped) +
                    (ok ? " -- ok" : " -- VIOLATIONS");
  for (const std::string& w : witnesses) out += "\n  " + w;
  return out;
}

TagSpaceReport lint_tag_space(const TagSpaceOptions& opt) {
  TagSpaceReport rep;
  rep.contexts = kCtxHi;

  auto fail = [&](std::string what) {
    rep.ok = false;
    if (rep.witnesses.size() < 16) rep.witnesses.push_back(std::move(what));
  };

  // The collective base tags: the registry plus any planted extras.
  std::vector<int> base(coll::tags::kAllBaseTags.begin(),
                        coll::tags::kAllBaseTags.end());
  base.insert(base.end(), opt.extra_base_tags.begin(),
              opt.extra_base_tags.end());
  rep.base_tags = static_cast<int>(base.size());

  // 1. Window: every base tag must fit [0, kCtxStride) so context bands
  // [ctx*S, ctx*S + S) are disjoint by construction.
  for (const int t : base) {
    ++rep.checks;
    if (t < 0 || t >= kStride) {
      fail("base tag " + std::to_string(t) + " is outside the [0, " +
           std::to_string(kStride) + ") remap window");
    }
    rep.max_remapped = std::max(rep.max_remapped, t + kStride * kCtxHi);
  }

  // 2. Injectivity across concurrently live contexts: distinct tags t1, t2
  // collide at contexts c1 < c2 iff t1 - t2 == S * (c2 - c1). One divisibility
  // check per pair covers the whole ctx range; on a hit the witness names
  // the smallest live (c1, c2) pair and the shared remapped value.
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t j = i + 1; j < base.size(); ++j) {
      const int t1 = std::max(base[i], base[j]);
      const int t2 = std::min(base[i], base[j]);
      if (t1 == t2) continue;  // same value: one tag, not a collision pair
      ++rep.checks;
      const int d = t1 - t2;
      if (d % kStride != 0) continue;
      const int span = d / kStride;  // t1 + S*c == t2 + S*(c + span)
      if (kCtxLo + span > kCtxHi) continue;  // never both live
      const int c1 = kCtxLo;
      const int c2 = kCtxLo + span;
      fail("base tags " + std::to_string(t1) + " (ctx " + std::to_string(c1) +
           ") and " + std::to_string(t2) + " (ctx " + std::to_string(c2) +
           ") both remap to tag " + std::to_string(t1 + kStride * c1) +
           ": a receive for operation #" + std::to_string(c1) +
           " can capture operation #" + std::to_string(c2) +
           "'s traffic from the same source");
    }
  }

  // 3. Raw context-0 band: blocking collectives use the base tags bare and
  // the chaos scripts use [0, kChaosTagSpan); the smallest remapped tag
  // (ctx = 1) must clear them all.
  for (int t = 0; t < coll::tags::kChaosTagSpan; ++t) {
    ++rep.checks;
    ++rep.raw_tags;
    if (t >= kStride) {
      fail("chaos raw tag " + std::to_string(t) +
           " reaches into the ctx=1 remap band");
    }
  }
  for (const int t : base) {
    ++rep.checks;
    if (t < kStride) continue;  // in-window: below every remap band
    const int ctx = t / kStride;
    const int b = t % kStride;
    if (ctx >= kCtxLo && ctx <= kCtxHi) {
      fail("raw (blocking) use of base tag " + std::to_string(t) +
           " lands inside the ctx=" + std::to_string(ctx) +
           " remap band and aliases base tag " + std::to_string(b) +
           " of in-flight operation #" + std::to_string(ctx));
    }
  }

  // 4. Ceiling: the largest remapped tag must stay below kMaxUserTag (the
  // SubComm dissemination-barrier tag) and below the 2^16 SubComm
  // namespace stride, so context * 2^16 + tag never aliases across
  // sub-communicators.
  for (const int t : base) {
    ++rep.checks;
    const int top = t + kStride * kCtxHi;
    if (top >= kMaxUserTag) {
      fail("base tag " + std::to_string(t) + " remaps to " +
           std::to_string(top) + " at ctx " + std::to_string(kCtxHi) +
           ", colliding with the barrier/namespace ceiling " +
           std::to_string(kMaxUserTag));
    }
  }

  // 5. Wildcards: kAnyTag is negative, so it can never equal a remapped
  // tag; schedules that record it are rejected outright by lint_schedule's
  // negative-tag error, closing the cross-context capture hole.
  ++rep.checks;
  if (kAnyTag >= 0) {
    fail("kAnyTag (" + std::to_string(kAnyTag) +
         ") is non-negative and could alias a remapped tag");
  }

  return rep;
}

}  // namespace bsb::verify
