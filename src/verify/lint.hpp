// Structural lint over a recorded schedule, run before the heavier
// analyses: self-sends, out-of-bounds or empty intervals, tag-discipline
// violations (tags outside the registered per-algorithm tag space of
// coll/tags.hpp and the SubComm context namespacing of comm/subcomm.hpp),
// and mismatched per-rank barrier counts. Errors make the schedule invalid;
// warnings flag legal-but-wasteful constructs (e.g. the enclosed ring's
// zero-byte trailing-chunk messages the paper criticises).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/schedule.hpp"

namespace bsb::verify {

enum class LintSeverity : std::uint8_t { Warning, Error };

const char* to_string(LintSeverity s) noexcept;

struct LintFinding {
  LintSeverity severity = LintSeverity::Warning;
  int rank = -1;
  int op = -1;  // -1 for schedule-level findings
  std::string what;
};

struct LintReport {
  /// True when no Error-severity finding was recorded (warnings are fine).
  bool ok = true;
  std::vector<LintFinding> findings;
  std::uint64_t zero_byte_sends = 0;

  std::string to_string() const;
};

LintReport lint_schedule(const trace::Schedule& sched);

}  // namespace bsb::verify
