// Structural lint over a recorded schedule, run before the heavier
// analyses: self-sends, out-of-bounds or empty intervals, tag-discipline
// violations (tags outside the registered per-algorithm tag space of
// coll/tags.hpp and the SubComm context namespacing of comm/subcomm.hpp),
// and mismatched per-rank barrier counts. Errors make the schedule invalid;
// warnings flag legal-but-wasteful constructs (e.g. the enclosed ring's
// zero-byte trailing-chunk messages the paper criticises).
// The same header also hosts the symbolic resource-safety bounds: per-rank
// closed-form peaks for the eager buffer (checked against the greedy
// high-water mark of hb.cpp) and the shm-pool occupancy proof for the hier
// fan-out phase (docs/VERIFIER.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/case.hpp"
#include "trace/schedule.hpp"

namespace bsb::verify {

enum class LintSeverity : std::uint8_t { Warning, Error };

const char* to_string(LintSeverity s) noexcept;

struct LintFinding {
  LintSeverity severity = LintSeverity::Warning;
  int rank = -1;
  int op = -1;  // -1 for schedule-level findings
  std::string what;
};

struct LintReport {
  /// True when no Error-severity finding was recorded (warnings are fine).
  bool ok = true;
  std::vector<LintFinding> findings;
  std::uint64_t zero_byte_sends = 0;

  std::string to_string() const;
};

LintReport lint_schedule(const trace::Schedule& sched);

// --- Symbolic resource-safety bounds -----------------------------------

/// True when eager_peak_bounds knows a closed form for the variant's
/// per-rank inbound message multiset.
bool eager_bound_checkable(fuzz::Variant v) noexcept;

/// Per-rank (absolute-rank-indexed) closed-form upper bound, in bytes, on
/// the eager high-water mark under `eager_threshold`: the sum of every
/// inbound message of at most threshold bytes, derived from the algorithm's
/// structure alone. The scatter term is the rank's binomial subtree block,
/// the ring term sums chunk (rel - i) mod P over the steps the rank's
/// RingPlan actually receives in, and the hier fan-out term is one full
/// buffer per non-leader. Sound for any execution order: the greedy
/// high-water of analyze_hb can never exceed it.
std::vector<std::uint64_t> eager_peak_bounds(const fuzz::FuzzCase& c,
                                             std::uint64_t eager_threshold);

/// Shm-pool occupancy proof for the hierarchical fan-out phase.
struct ShmPoolReport {
  bool ok = true;
  std::uint64_t fanout_msgs = 0;       // kHierFanout sends in the schedule
  std::uint64_t peak_node_bytes = 0;   // worst per-node in-flight bytes
  std::uint64_t bound_node_bytes = 0;  // closed form: max (size-1)*nbytes
  std::vector<std::string> witnesses;
};

/// Prove the netsim shm-pool assumptions for a recorded hier schedule:
/// every kHierFanout message stays inside its node and originates at the
/// node's leader, and each node's in-flight single-copy bytes — senders
/// are freed at post, so all of a node's fan-out messages can be resident
/// at once — equal the closed form (node_size - 1) * nbytes the
/// bw_shm_node pool is provisioned for.
ShmPoolReport verify_shm_pool(const trace::Schedule& sched,
                              const std::vector<int>& node_sizes, int root);

}  // namespace bsb::verify
