#include "verify/hb.hpp"

#include <algorithm>

namespace bsb::verify {

namespace {

using trace::MatchedMsg;
using trace::Op;
using trace::OpKind;

struct RankState {
  int pc = 0;                      // current (not yet completed) op index
  bool send_half_done = false;     // send half of the current op completed
  int barriers_passed = 0;
};

std::string rank_op(int rank, int op) {
  return "rank " + std::to_string(rank) + " op " + std::to_string(op);
}

}  // namespace

std::string format_cycle(const std::vector<CycleHop>& cycle) {
  std::string out;
  for (const CycleHop& hop : cycle) {
    out += "  " + rank_op(hop.rank, hop.op) + ": " + hop.why + "\n";
  }
  return out;
}

HbReport analyze_hb(const trace::Schedule& sched, const trace::MatchResult& m,
                    const HbOptions& opt) {
  HbReport report;
  const int P = sched.nranks;
  std::vector<RankState> st(P);

  auto fail = [&](const std::string& why) {
    report.ok = false;
    if (!report.diagnostics.empty()) report.diagnostics += "\n";
    report.diagnostics += why;
  };

  // --- Buffer-safety pass (independent of execution order). Under
  // blocking semantics the only same-rank accesses with no happens-before
  // edge are the two halves of one SendRecv: both are in flight between
  // the op's post and its completion. Overlapping halves mean the receive
  // may overwrite bytes the (possibly zero-copy) send is still reading.
  for (int r = 0; r < P; ++r) {
    for (int i = 0; i < static_cast<int>(sched.ops[r].size()); ++i) {
      const Op& op = sched.ops[r][i];
      if (op.kind != OpKind::SendRecv) continue;
      if (op.send_off == trace::kForeignOffset ||
          op.recv_off == trace::kForeignOffset) {
        continue;  // scratch-buffer spans: offsets are not comparable
      }
      const Interval snd{op.send_off, op.send_off + op.send_bytes};
      const Interval rcv{op.recv_off, op.recv_off + op.recv_cap};
      if (snd.empty() || rcv.empty()) continue;
      if (snd.lo < rcv.hi && rcv.lo < snd.hi) {
        report.races.push_back({r, i, snd, rcv});
        fail("buffer race: " + rank_op(r, i) + " sendrecv reads [" +
             std::to_string(snd.lo) + "," + std::to_string(snd.hi) +
             ") while concurrently receiving into [" + std::to_string(rcv.lo) +
             "," + std::to_string(rcv.hi) +
             ") with no happens-before edge between the halves");
      }
    }
  }

  // --- Greedy fixpoint execution. Completion conditions are monotone in
  // the set of already-completed ops, so the fixpoint is unique: either
  // every rank drains (the wait-for graph is acyclic; no execution can
  // deadlock) or the stuck ranks form wait-for cycles.
  const std::uint64_t thr = opt.eager_threshold;
  std::uint64_t eager_buffered = 0;
  // Per-message eager state. In the greedy order a receive can complete
  // before its sender's send half does (posting is enough); releases must
  // only subtract bytes that were actually buffered, and a send whose
  // receive already drained goes direct, skipping the buffer entirely.
  // The resulting high-water mark is the residency of the greedy (fastest
  // draining) interleaving: a lower bound on the eager capacity any
  // execution of the schedule needs.
  std::vector<std::uint8_t> buffered(m.msgs.size(), 0);
  std::vector<std::uint8_t> recv_done(m.msgs.size(), 0);
  // Receiver-attributed residency: eager payloads live at the destination
  // rank, so the per-rank peaks are what the closed-form bounds of
  // lint.hpp's eager_peak_bounds must dominate.
  report.rank_eager_high_water.assign(static_cast<std::size_t>(P), 0);
  std::vector<std::uint64_t> rank_buffered(static_cast<std::size_t>(P), 0);

  // send_posted is implied by pc ordering; track completion of recvs to
  // release eager buffers exactly once.
  auto send_posted = [&](const MatchedMsg& msg) {
    return st[msg.src].pc >= msg.src_op;
  };
  auto recv_posted = [&](const MatchedMsg& msg) {
    return st[msg.dst].pc >= msg.dst_op;
  };

  auto complete_send_half = [&](int r, int i) -> bool {
    const int id = m.send_msg_of[r][i];
    BSB_ASSERT(id >= 0, "analyze_hb: send half without matched message");
    const MatchedMsg& msg = m.msgs[id];
    if (msg.bytes <= thr) {
      ++report.eager_msgs;
      if (!recv_done[id]) {
        eager_buffered += msg.bytes;
        buffered[id] = 1;
        report.eager_high_water_bytes =
            std::max(report.eager_high_water_bytes, eager_buffered);
        const auto dst = static_cast<std::size_t>(msg.dst);
        rank_buffered[dst] += msg.bytes;
        report.rank_eager_high_water[dst] =
            std::max(report.rank_eager_high_water[dst], rank_buffered[dst]);
      }
      return true;  // eager: buffered (or delivered direct) at post
    }
    return recv_posted(msg);  // rendezvous: wait for the receive to be posted
  };

  auto complete_recv_half = [&](int r, int i) -> bool {
    const int id = m.recv_msg_of[r][i];
    BSB_ASSERT(id >= 0, "analyze_hb: recv half without matched message");
    const MatchedMsg& msg = m.msgs[id];
    if (!send_posted(msg)) return false;
    if (buffered[id]) {
      eager_buffered -= msg.bytes;
      buffered[id] = 0;
      rank_buffered[static_cast<std::size_t>(msg.dst)] -= msg.bytes;
    }
    recv_done[id] = 1;
    return true;
  };

  auto barrier_ready = [&](int generation) {
    for (int q = 0; q < P; ++q) {
      if (st[q].barriers_passed > generation) continue;
      const auto& list = sched.ops[q];
      if (st[q].pc < static_cast<int>(list.size()) &&
          list[st[q].pc].kind == OpKind::Barrier &&
          st[q].barriers_passed == generation) {
        continue;  // posted: waiting at this barrier right now
      }
      return false;
    }
    return true;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < P; ++r) {
      while (st[r].pc < static_cast<int>(sched.ops[r].size())) {
        const int i = st[r].pc;
        const Op& op = sched.ops[r][i];
        bool advanced = false;
        switch (op.kind) {
          case OpKind::Send:
            advanced = complete_send_half(r, i);
            break;
          case OpKind::Recv:
            advanced = complete_recv_half(r, i);
            break;
          case OpKind::SendRecv:
            if (!st[r].send_half_done && complete_send_half(r, i)) {
              st[r].send_half_done = true;
              progress = true;
            }
            if (st[r].send_half_done && complete_recv_half(r, i)) {
              st[r].send_half_done = false;
              advanced = true;
            }
            break;
          case OpKind::Barrier:
            if (barrier_ready(st[r].barriers_passed)) {
              ++st[r].barriers_passed;
              advanced = true;
            }
            break;
        }
        if (!advanced) break;
        ++st[r].pc;
        progress = true;
      }
    }
  }

  // --- Witness extraction: every undrained rank is blocked; follow each
  // blocked op's single wait-for target until a rank repeats (a cycle) or
  // the chain ends at a rank that already finished (barrier-count skew).
  std::vector<int> stuck;
  for (int r = 0; r < P; ++r) {
    if (st[r].pc < static_cast<int>(sched.ops[r].size())) stuck.push_back(r);
  }
  if (!stuck.empty()) {
    report.deadlock = true;

    auto wait_hop = [&](int r, int* next) -> CycleHop {
      const int i = st[r].pc;
      const Op& op = sched.ops[r][i];
      CycleHop hop;
      hop.rank = r;
      hop.op = i;
      switch (op.kind) {
        case OpKind::Recv:
        case OpKind::SendRecv: {
          // For SendRecv, the send half may also be pending; report the
          // receive half first when both block (it names the data edge).
          const int rid = m.recv_msg_of[r][i];
          const MatchedMsg& msg = m.msgs[rid];
          if (!send_posted(msg)) {
            hop.why = "receive from rank " + std::to_string(msg.src) +
                      " (tag " + std::to_string(msg.tag) +
                      ") waits for send half of " +
                      rank_op(msg.src, msg.src_op) + " to be posted; rank " +
                      std::to_string(msg.src) + " is blocked at op " +
                      std::to_string(st[msg.src].pc);
            *next = msg.src;
            return hop;
          }
          BSB_ASSERT(op.kind == OpKind::SendRecv,
                     "analyze_hb: blocked recv with posted send");
          [[fallthrough]];
        }
        case OpKind::Send: {
          const int sid = m.send_msg_of[r][i];
          const MatchedMsg& msg = m.msgs[sid];
          hop.why = "rendezvous send of " + std::to_string(msg.bytes) +
                    " bytes to rank " + std::to_string(msg.dst) + " (tag " +
                    std::to_string(msg.tag) +
                    ") waits for its receive half " +
                    rank_op(msg.dst, msg.dst_op) + " to be posted; rank " +
                    std::to_string(msg.dst) + " is blocked at op " +
                    std::to_string(st[msg.dst].pc);
          *next = msg.dst;
          return hop;
        }
        case OpKind::Barrier: {
          const int g = st[r].barriers_passed;
          for (int q = 0; q < P; ++q) {
            if (q == r || st[q].barriers_passed > g) continue;
            const auto& list = sched.ops[q];
            const bool at_barrier =
                st[q].pc < static_cast<int>(list.size()) &&
                list[st[q].pc].kind == OpKind::Barrier &&
                st[q].barriers_passed == g;
            if (at_barrier) continue;
            hop.why = "barrier #" + std::to_string(g) + " waits for rank " +
                      std::to_string(q) +
                      (st[q].pc >= static_cast<int>(list.size())
                           ? " which already finished with only " +
                                 std::to_string(st[q].barriers_passed) +
                                 " barrier(s) (barrier-count mismatch)"
                           : " which is blocked at op " +
                                 std::to_string(st[q].pc));
            *next = q;
            return hop;
          }
          BSB_ASSERT(false, "analyze_hb: barrier blocked with all ranks ready");
        }
      }
      BSB_ASSERT(false, "analyze_hb: blocked op of unknown kind");
    };

    // Walk from the lowest stuck rank. Each hop's target is itself stuck
    // (a finished rank can only appear via barrier-count mismatch, which
    // terminates the walk without a cycle).
    std::vector<CycleHop> path;
    std::vector<int> pos_of_rank(P, -1);
    int cur = stuck.front();
    while (true) {
      if (st[cur].pc >= static_cast<int>(sched.ops[cur].size())) {
        // Chain ended at a finished rank: no cycle, report the chain.
        fail("deadlock (no cycle): wait chain reaches rank " +
             std::to_string(cur) + " which already finished\n" +
             format_cycle(path));
        break;
      }
      if (pos_of_rank[cur] >= 0) {
        report.cycle.assign(path.begin() + pos_of_rank[cur], path.end());
        fail("deadlock: wait-for cycle of " +
             std::to_string(report.cycle.size()) + " operation(s)\n" +
             format_cycle(report.cycle));
        break;
      }
      pos_of_rank[cur] = static_cast<int>(path.size());
      int next = -1;
      path.push_back(wait_hop(cur, &next));
      BSB_ASSERT(next >= 0 && next < P, "analyze_hb: bad wait target");
      cur = next;
    }
  }

  return report;
}

}  // namespace bsb::verify
