// Orchestrates the static schedule proofs for one configuration or a whole
// sweep: record the variant's schedule symbolically, lint it, match it,
// prove deadlock freedom under each eager threshold (happens-before
// analysis), prove buffer safety, validate dataflow coverage with the
// variant's initial-ownership contract, check redundancy against the
// paper's excess, check transfer counts against the closed forms, prove
// the schedule cache's rotation equivalence (verify/equiv.hpp), and check
// the greedy eager high-water against the symbolic per-rank bounds plus
// the hier shm-pool occupancy closed form (verify/lint.hpp). A sweep also
// runs the whole-program tag-space lint (verify/tagspace.hpp) once.
// Everything runs without the thread backend, so it scales to process
// counts the threaded oracle cannot reach.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "bsbutil/intervals.hpp"
#include "fuzz/case.hpp"
#include "fuzz/runner.hpp"
#include "trace/schedule.hpp"
#include "verify/tagspace.hpp"

namespace bsb::verify {

struct VerifyOptions {
  /// Eager thresholds to prove deadlock freedom under. 0 = pure rendezvous
  /// (strictest: a proof there implies all larger thresholds for schedules
  /// without barrier skew, and we prove the others anyway).
  std::vector<std::uint64_t> eager_thresholds = {0, 65536};
  /// Validate dataflow coverage and redundancy (skipped automatically for
  /// variants with scratch-buffer offsets, e.g. Bruck).
  bool check_dataflow = true;
  /// Prove the rotated root-0 plan equivalent to a fresh root-r recording
  /// (skipped automatically for variants outside the plan cache, and for
  /// sabotaged runs, where the canonical program differs by design).
  bool check_rotation = true;
  /// Check the greedy eager high-water against the closed-form per-rank
  /// bounds, and the hier fan-out against the shm-pool occupancy form.
  bool check_bounds = true;
};

/// Outcome of the full property suite on one configuration.
struct CaseResult {
  fuzz::FuzzCase config;
  /// Non-empty for hand-built schedules (verify_schedule), where `config`
  /// carries only the shape; summary() prefers it over describe(config).
  std::string label;
  bool ok = true;
  /// One entry per failed property, prefixed "deadlock:", "race:",
  /// "lint:", "match:", "coverage:", "reduce-flow:", "redundancy:",
  /// "transfers:", "rotation:" or "bounds:" ("bounds: rank" for eager
  /// high-water vs closed form, "bounds: shm" for pool occupancy).
  std::vector<std::string> failures;

  // Proven facts (for reporting).
  std::uint64_t total_ops = 0;
  std::uint64_t total_sends = 0;
  std::uint64_t total_send_bytes = 0;
  std::uint64_t redundant_bytes = 0;
  std::uint64_t redundant_msgs = 0;
  std::uint64_t eager_high_water_bytes = 0;  // max over checked thresholds
  std::uint64_t lint_warnings = 0;
  bool dataflow_checked = false;
  /// True when the contributor-interval (reduce-flow) proof ran; the
  /// redundant_* fields then count re-deliveries of fully reduced chunks.
  bool reduce_flow_checked = false;
  /// Rotation-equivalence proof (verify/equiv.hpp) outcome.
  bool rotation_checked = false;
  bool rotation_full_graph = false;   // matchings also compared edge-by-edge
  std::uint64_t rotation_steps = 0;   // plan steps proven equivalent
  /// Symbolic resource-bound proofs (verify/lint.hpp) outcome.
  bool eager_bounds_checked = false;
  std::uint64_t eager_bound_max = 0;  // largest per-rank closed-form bound
  bool shm_checked = false;
  std::uint64_t shm_peak_node_bytes = 0;

  std::string summary() const;
};

/// Record and verify the case's variant (optionally sabotaged, for
/// detector self-tests).
CaseResult verify_case(const fuzz::FuzzCase& c, const VerifyOptions& opt = {},
                       fuzz::Sabotage sabotage = fuzz::Sabotage::None);

/// Verify an already-recorded schedule (hand-built schedules, regression
/// tests for the witness machinery). `initial` defaults to the broadcast
/// contract (root owns everything).
CaseResult verify_schedule(const trace::Schedule& sched, int root,
                           const VerifyOptions& opt = {},
                           const std::vector<IntervalSet>* initial = nullptr);

struct SweepOptions {
  /// Process counts to record and prove schedules at. Default: dense to 17,
  /// then structure-straddling samples (powers of two +/- 1, primes,
  /// round numbers) up to `pmax`.
  std::vector<int> plist;
  int pmax = 4096;
  /// Buffer sizes: the two MPICH algorithm-switch boundaries by default.
  std::vector<std::uint64_t> sizes = {12288, 524288};
  std::vector<std::uint64_t> eager_thresholds = {0, 65536};
  /// All roots for P <= this; {0, 1, P/2, P-1} above.
  int all_roots_upto = 10;
  /// Restrict to one variant (nullopt = all of them).
  std::optional<fuzz::Variant> only;
  /// Verify closed-form consistency (per-rank ring plans vs totals, paper
  /// anchor values) densely for EVERY P in [2, pmax], independent of
  /// plist. Cheap: arithmetic only, no schedule recording.
  bool closed_form_density = true;
  bool verbose = false;
};

struct SweepReport {
  std::uint64_t cases = 0;
  std::uint64_t failures = 0;
  std::uint64_t schedules_ops = 0;     // total ops statically executed
  std::uint64_t proofs = 0;            // individual properties proven
  std::array<std::uint64_t, fuzz::kNumVariants> per_variant_cases{};
  std::array<std::uint64_t, fuzz::kNumVariants> per_variant_failures{};
  /// Dense closed-form pass result (empty = ok or skipped).
  std::vector<std::string> closed_form_failures;
  /// Failed cases, capped; summaries suitable for diagnostics.
  std::vector<CaseResult> failed;
  // Per-pass accounting for the bsb-verify-v1 "passes" section.
  std::uint64_t rotation_cases = 0;
  std::uint64_t rotation_failures = 0;
  std::uint64_t rotation_steps = 0;
  std::uint64_t eager_bound_cases = 0;
  std::uint64_t eager_bound_failures = 0;
  std::uint64_t shm_cases = 0;
  std::uint64_t shm_failures = 0;
  /// Whole-program tag-space lint, run once per sweep.
  TagSpaceReport tagspace;
  double elapsed_seconds = 0.0;

  bool ok() const {
    return failures == 0 && closed_form_failures.empty() && tagspace.ok;
  }
};

/// Run the sweep, streaming progress to `out`.
SweepReport run_sweep(const SweepOptions& opt, std::ostream& out);

/// Write the report as a bsb-verify-v1 JSON artifact.
void write_verify_json(const std::string& path, const SweepOptions& opt,
                       const SweepReport& report);

/// Default process-count list for `pmax` (see SweepOptions::plist).
std::vector<int> default_plist(int pmax);

}  // namespace bsb::verify
