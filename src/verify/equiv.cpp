#include "verify/equiv.hpp"

#include <vector>

#include "bsbutil/error.hpp"
#include "comm/chunks.hpp"
#include "fuzz/runner.hpp"
#include "trace/match.hpp"
#include "trace/record.hpp"

namespace bsb::verify {

namespace {

using fuzz::Variant;
using trace::Op;
using trace::OpKind;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

constexpr std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  return (h ^ v) * kFnvPrime;
}

/// Hash a recorded op with the same field order Plan::fingerprint uses for
/// the equivalent PlanStep, so the streamed root-0 recording and a plan
/// compiled from the same program fingerprint identically.
std::uint64_t mix_op(std::uint64_t h, const Op& op) noexcept {
  std::uint64_t kind = 0;
  switch (op.kind) {
    case OpKind::Send: kind = 0; break;
    case OpKind::Recv: kind = 1; break;
    case OpKind::SendRecv: kind = 2; break;
    case OpKind::Barrier: kind = 3; break;
  }
  const int tag = op.has_send() ? op.send_tag : op.recv_tag;
  h = fnv_mix(h, kind);
  h = fnv_mix(h, static_cast<std::uint64_t>(op.has_send() ? op.dst : -1));
  h = fnv_mix(h, op.has_send() ? op.send_off : 0);
  h = fnv_mix(h, op.has_send() ? op.send_bytes : 0);
  h = fnv_mix(h, static_cast<std::uint64_t>(op.has_recv() ? op.src : -1));
  h = fnv_mix(h, op.has_recv() ? op.recv_off : 0);
  h = fnv_mix(h, op.has_recv() ? op.recv_cap : 0);
  h = fnv_mix(h, static_cast<std::uint64_t>(tag));
  return h;
}

void diverge(RotationReport* rep, int rank, int step, const char* field,
             std::string detail) {
  if (!rep->ok) return;  // keep the first (minimal) witness
  rep->ok = false;
  rep->divergence = RotationDivergence{rank, step, field, std::move(detail)};
}

std::string vs(std::uint64_t plan_v, std::uint64_t fresh_v) {
  return "rotated plan has " + std::to_string(plan_v) + ", fresh schedule has " +
         std::to_string(fresh_v);
}

std::string vs_int(int plan_v, int fresh_v) {
  return "rotated plan has " + std::to_string(plan_v) + ", fresh schedule has " +
         std::to_string(fresh_v);
}

/// Compare one rank's already-rotated plan ops against the fresh recording.
/// Returns false on the first divergence (recorded into `rep`).
bool compare_rank(int rank, const std::vector<Op>& rotated,
                  const std::vector<Op>& fresh, RotationReport* rep) {
  if (rotated.size() != fresh.size()) {
    diverge(rep, rank, -1, "steps",
            vs(rotated.size(), fresh.size()) + " step(s)");
    return false;
  }
  for (int i = 0; i < static_cast<int>(rotated.size()); ++i) {
    const Op& p = rotated[static_cast<std::size_t>(i)];
    const Op& f = fresh[static_cast<std::size_t>(i)];
    ++rep->steps_compared;
    if (p.kind != f.kind) {
      diverge(rep, rank, i, "kind",
              std::string("rotated plan has ") + trace::to_string(p.kind) +
                  ", fresh schedule has " + trace::to_string(f.kind));
      return false;
    }
    if (p.has_send()) {
      if (p.dst != f.dst) {
        diverge(rep, rank, i, "dst", vs_int(p.dst, f.dst));
        return false;
      }
      if (p.send_tag != f.send_tag) {
        diverge(rep, rank, i, "tag", vs_int(p.send_tag, f.send_tag));
        return false;
      }
      if (p.send_bytes != f.send_bytes) {
        diverge(rep, rank, i, "send_bytes", vs(p.send_bytes, f.send_bytes));
        return false;
      }
      if (p.send_off != f.send_off) {
        diverge(rep, rank, i, "send_off", vs(p.send_off, f.send_off));
        return false;
      }
    }
    if (p.has_recv()) {
      if (p.src != f.src) {
        diverge(rep, rank, i, "src", vs_int(p.src, f.src));
        return false;
      }
      if (p.recv_tag != f.recv_tag) {
        diverge(rep, rank, i, "tag", vs_int(p.recv_tag, f.recv_tag));
        return false;
      }
      if (p.recv_cap != f.recv_cap) {
        diverge(rep, rank, i, "recv_cap", vs(p.recv_cap, f.recv_cap));
        return false;
      }
      if (p.recv_off != f.recv_off) {
        diverge(rep, rank, i, "recv_off", vs(p.recv_off, f.recv_off));
        return false;
      }
    }
  }
  return true;
}

/// Edge-by-edge matching comparison: both schedules already proved
/// op-list-equal, so their deterministic matchings must agree too; this
/// materializes the claim for small P instead of deriving it.
void compare_matchings(const trace::Schedule& rotated,
                       const trace::Schedule& fresh, RotationReport* rep) {
  trace::MatchResult mp, mf;
  try {
    mp = trace::match_schedule(rotated);
    mf = trace::match_schedule(fresh);
  } catch (const trace::ScheduleError& e) {
    diverge(rep, -1, -1, "matching",
            std::string("matching failed: ") + e.what());
    return;
  }
  rep->full_graph_checked = true;
  if (mp.msgs.size() != mf.msgs.size()) {
    diverge(rep, -1, -1, "matching",
            vs(mp.msgs.size(), mf.msgs.size()) + " matched message(s)");
    return;
  }
  for (std::size_t k = 0; k < mp.msgs.size(); ++k) {
    const trace::MatchedMsg& a = mp.msgs[k];
    const trace::MatchedMsg& b = mf.msgs[k];
    if (a.src != b.src || a.dst != b.dst || a.tag != b.tag ||
        a.bytes != b.bytes || a.src_op != b.src_op || a.dst_op != b.dst_op) {
      diverge(rep, a.dst, a.dst_op, "matching",
              "matched edge #" + std::to_string(k) + " differs: plan " +
                  std::to_string(a.src) + "->" + std::to_string(a.dst) +
                  " tag " + std::to_string(a.tag) + " (" +
                  std::to_string(a.bytes) + " B), fresh " +
                  std::to_string(b.src) + "->" + std::to_string(b.dst) +
                  " tag " + std::to_string(b.tag) + " (" +
                  std::to_string(b.bytes) + " B)");
      return;
    }
  }
}

/// Relabel a recorded root-0 op's peers into the root-r frame.
Op rotate_op(const Op& op, int root, int P) {
  Op out = op;
  if (op.has_send()) out.dst = abs_rank(op.dst, root, P);
  if (op.has_recv()) out.src = abs_rank(op.src, root, P);
  return out;
}

}  // namespace

std::string RotationReport::to_string() const {
  if (ok) {
    return "rotation-equivalence proven over " +
           std::to_string(steps_compared) + " step(s), plan fingerprint " +
           std::to_string(plan_fingerprint) +
           (full_graph_checked ? " (matchings compared edge-by-edge)" : "");
  }
  std::string out = "rotated root-0 plan (fingerprint " +
                    std::to_string(plan_fingerprint) +
                    ") diverges from the fresh schedule";
  if (divergence) {
    out += " at rank " + std::to_string(divergence->rank);
    if (divergence->step >= 0) {
      out += " step " + std::to_string(divergence->step);
    }
    out += " field '" + divergence->field + "': " + divergence->detail;
  }
  return out;
}

bool rotation_checkable(Variant v) noexcept {
  switch (v) {
    case Variant::BcastBinomial:
    case Variant::BcastScatterRd:
    case Variant::BcastScatterRingNative:
    case Variant::BcastScatterRingTuned:
    case Variant::BcastAuto:
    case Variant::BcastPersistent:
    case Variant::AllgatherRingNative:
    case Variant::AllgatherRingTuned:
      return true;
    default:
      return false;
  }
}

RotationReport prove_rotation_equivalence(const fuzz::FuzzCase& c,
                                          const trace::Schedule& fresh) {
  RotationReport rep;
  const int P = c.nranks;
  const int root = c.root;
  BSB_REQUIRE(fresh.nranks == P,
              "prove_rotation_equivalence: schedule/case rank mismatch");

  // The root-0 program of the same configuration: this is exactly what the
  // schedule cache compiles once and rotates forever after.
  fuzz::FuzzCase canonical = c;
  canonical.root = 0;
  const fuzz::RankBody body = fuzz::make_rank_body(canonical);

  const bool full_graph = P <= kFullGraphMaxP;
  trace::Schedule rotated;
  if (full_graph) {
    rotated.nranks = P;
    rotated.nbytes = fresh.nbytes;
    rotated.ops.resize(static_cast<std::size_t>(P));
  }

  std::uint64_t fp = kFnvOffset;
  fp = fnv_mix(fp, static_cast<std::uint64_t>(P));
  fp = fnv_mix(fp, c.nbytes);

  std::vector<std::byte> scratch(c.nbytes);
  std::vector<Op> ops;
  std::vector<Op> rotated_ops;
  for (int rel = 0; rel < P; ++rel) {
    ops.clear();
    trace::RecordingComm recorder(rel, P, scratch, ops);
    body(recorder, scratch);
    fp = fnv_mix(fp, ops.size());
    for (const Op& op : ops) fp = mix_op(fp, op);
    const int abs = abs_rank(rel, root, P);
    rotated_ops.clear();
    rotated_ops.reserve(ops.size());
    for (const Op& op : ops) rotated_ops.push_back(rotate_op(op, root, P));
    if (!compare_rank(abs, rotated_ops, fresh.ops[static_cast<std::size_t>(abs)],
                      &rep)) {
      rep.plan_fingerprint = fp;  // partial: still names the prefix proven
      return rep;
    }
    if (full_graph) {
      rotated.ops[static_cast<std::size_t>(abs)] = rotated_ops;
    }
  }
  rep.plan_fingerprint = fp;
  if (full_graph) compare_matchings(rotated, fresh, &rep);
  return rep;
}

RotationReport prove_plan_rotation(const coll::Plan& plan, int root,
                                   const trace::Schedule& fresh) {
  RotationReport rep;
  rep.plan_fingerprint = plan.fingerprint();
  const int P = plan.nranks;
  BSB_REQUIRE(fresh.nranks == P,
              "prove_plan_rotation: schedule/plan rank mismatch");
  const trace::Schedule rotated = coll::plan_to_schedule(plan, root);
  for (int r = 0; r < P; ++r) {
    if (!compare_rank(r, rotated.ops[static_cast<std::size_t>(r)],
                      fresh.ops[static_cast<std::size_t>(r)], &rep)) {
      return rep;
    }
  }
  if (P <= kFullGraphMaxP) compare_matchings(rotated, fresh, &rep);
  return rep;
}

}  // namespace bsb::verify
