// Rotation-equivalence prover: turns the schedule cache's central
// assumption into a checked theorem. The cache (coll/schedule_cache.hpp,
// core/icoll.cpp) compiles every plan once at root 0 and rotates it at
// execution time — rank r runs plan rank rel_rank(r, root, P)'s steps with
// peers mapped through abs_rank and offsets/tags untouched. This pass
// proves, per (variant, P, root, nbytes), that the rotated root-0 plan is
// step-graph-isomorphic to a schedule recorded directly at that root:
// identical op kinds, relabelled peers, identical tags, offsets and byte
// counts in identical program order.
//
// Program-order equality of the op lists implies the stronger graph
// properties for free: message matching is a deterministic function of the
// op lists (per-(src, dst, tag) channel FIFO, trace/match.cpp), so equal
// op lists produce equal matchings, and the happens-before graph — built
// from program order plus the matching — is then isomorphic under the same
// rank relabelling. For small P the prover additionally materializes both
// matchings and compares them edge-by-edge (full_graph_checked).
//
// On failure the report carries a minimal divergence witness: the first
// (absolute rank, step index, field) where the rotated plan and the fresh
// schedule disagree, with both values spelled out.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "coll/plan.hpp"
#include "fuzz/case.hpp"
#include "trace/schedule.hpp"

namespace bsb::verify {

/// The first point of disagreement between the rotated root-0 plan and the
/// freshly recorded root-r schedule.
struct RotationDivergence {
  int rank = -1;       // absolute rank
  int step = -1;       // index into that rank's op list (-1: list length)
  std::string field;   // "steps", "kind", "dst", "src", "tag", "send_off",
                       // "send_bytes", "recv_off", "recv_cap", "matching"
  std::string detail;  // rotated-plan value vs fresh value
};

struct RotationReport {
  bool ok = true;
  /// True when the matchings of both schedules were also materialized and
  /// compared edge-by-edge (done for P <= kFullGraphMaxP).
  bool full_graph_checked = false;
  std::uint64_t steps_compared = 0;
  /// Fingerprint of the root-0 canonical plan the proof ran against.
  std::uint64_t plan_fingerprint = 0;
  std::optional<RotationDivergence> divergence;

  std::string to_string() const;
};

/// Ranks above which the prover relies on the op-list => matching argument
/// instead of materializing both matchings (memory stays O(ops per rank)).
inline constexpr int kFullGraphMaxP = 512;

/// Variants whose schedules go through the root-canonical plan cache (or
/// are compiled to a coll::Plan) and therefore owe a rotation proof.
/// Excluded: rootless variants (nothing to rotate), scratch-buffer and
/// SubComm-based variants (not plan-compilable), and the nonblocking
/// front-end (covered through BcastPersistent's plan path).
bool rotation_checkable(fuzz::Variant v) noexcept;

/// Prove `fresh` — the variant's schedule recorded directly at c.root —
/// equivalent to the rotated root-0 plan of the same configuration. The
/// root-0 program is re-recorded one rank at a time, so peak memory is
/// O(ops per rank) on top of `fresh`.
RotationReport prove_rotation_equivalence(const fuzz::FuzzCase& c,
                                          const trace::Schedule& fresh);

/// The same proof against an explicit root-canonical plan — lets tests and
/// --demo-broken=rotation sabotage the plan (e.g. swap one peer) and watch
/// the witness fire.
RotationReport prove_plan_rotation(const coll::Plan& plan, int root,
                                   const trace::Schedule& fresh);

}  // namespace bsb::verify
