// Happens-before analysis of a matched schedule: statically proves (or
// refutes, with a minimal-cycle witness) that the schedule is deadlock-free
// under blocking point-to-point semantics with a configurable eager
// threshold, and that no rank's receive writes overlap a concurrently
// readable send interval (the static analogue of a user-buffer data race).
//
// The happens-before graph is the union of
//   * program-order edges: op i of a rank completes before op i+1 is posted;
//   * message edges: a receive completes only after its matching send half
//     has been posted (data exists, eagerly buffered or in flight);
//   * rendezvous edges: a send of more than `eager_threshold` bytes
//     completes only after the matching receive has been POSTED (the
//     sender blocks until the receiver arrives, exactly MPICH semantics);
//   * barrier edges: the g-th barrier of any rank completes only after
//     every rank has posted its g-th barrier.
// Completion is monotone in this system, so a greedy fixpoint execution
// drains every rank if and only if the graph is acyclic; a stuck fixpoint
// yields a wait-for cycle, which analyze_hb extracts and reports with
// rank/op provenance. See docs/VERIFIER.md for the full model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bsbutil/intervals.hpp"
#include "trace/match.hpp"
#include "trace/schedule.hpp"

namespace bsb::verify {

struct HbOptions {
  /// Sends of at most this many bytes complete at post time (the runtime
  /// buffers the payload); larger sends block until the matching receive
  /// is posted. 0 models pure rendezvous — the strictest regime, in which
  /// a proof implies deadlock freedom for every larger threshold.
  std::uint64_t eager_threshold = 0;
};

/// One hop of a deadlock witness: the blocked operation and what it waits
/// for. The last hop waits for the first one's rank/op, closing the cycle.
struct CycleHop {
  int rank = -1;
  int op = -1;
  std::string why;  // e.g. "rendezvous send to rank 3 waits for its receive"
};

/// A same-rank pair of intervals that may be read and written concurrently
/// with no happens-before edge between the accesses.
struct BufferRace {
  int rank = -1;
  int op = -1;
  Interval send;  // bytes the send half reads
  Interval recv;  // bytes the receive half writes
};

struct HbReport {
  bool ok = true;
  bool deadlock = false;
  std::vector<CycleHop> cycle;      // nonempty iff deadlock
  std::vector<BufferRace> races;    // nonempty makes ok false
  std::string diagnostics;          // human-readable summary (empty when ok)

  /// Eager accounting over the canonical greedy execution: messages that
  /// went through the eager path and the peak number of payload bytes
  /// buffered by the runtime at any instant (the lint high-water mark).
  std::uint64_t eager_msgs = 0;
  std::uint64_t eager_high_water_bytes = 0;
  /// Per-rank peak of the same accounting, attributed to the RECEIVER of
  /// each buffered message (the runtime parks eager payloads at the
  /// destination). Indexed by absolute rank; compared against the
  /// closed-form eager_peak_bounds of lint.hpp by the verifier.
  std::vector<std::uint64_t> rank_eager_high_water;
};

/// Analyze `sched` (already matched as `m`). Never throws on a property
/// violation; inspect the report.
HbReport analyze_hb(const trace::Schedule& sched, const trace::MatchResult& m,
                    const HbOptions& opt = {});

/// Render a deadlock cycle as one line per hop, for diagnostics and tests.
std::string format_cycle(const std::vector<CycleHop>& cycle);

}  // namespace bsb::verify
