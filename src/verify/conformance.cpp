#include "verify/conformance.hpp"

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"
#include "coll/hier/topology.hpp"
#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"
#include "comm/topology.hpp"
#include "comm/vchunks.hpp"
#include "core/bcast.hpp"
#include "core/ring_plan.hpp"
#include "core/transfer_analysis.hpp"

namespace bsb::verify {

namespace {

using fuzz::FuzzCase;
using fuzz::Variant;

struct Redundancy {
  std::uint64_t bytes = 0;
  std::uint64_t msgs = 0;
};

/// Redundant traffic of the ENCLOSED ring running over binomial-scatter
/// output: relative rank `rel` owns its whole subtree chunk block but the
/// ring re-delivers every chunk except its own, so the block's other
/// chunks arrive redundantly — one full message each when nonempty.
Redundancy native_ring_redundancy(int P, std::uint64_t nbytes) {
  const ChunkLayout layout(nbytes, P);
  Redundancy red;
  for (int rel = 0; rel < P; ++rel) {
    red.bytes += coll::scatter_block_bytes(rel, layout) - layout.count(rel);
    const int span = std::min(coll::scatter_subtree_span(rel, P), P - rel);
    for (int c = rel + 1; c < rel + span; ++c) {
      if (layout.count(c) > 0) ++red.msgs;
    }
  }
  return red;
}

/// Redundant traffic of the recursive-doubling allgather running over
/// binomial-scatter output (MPICH's native medium-message path): in round
/// i, relative rank `rel` receives the 2^i-chunk block of its partner's
/// subtree root; for i < log2(own subtree span) that block is inside the
/// chunks `rel` already owns.
Redundancy rd_redundancy(int P, std::uint64_t nbytes) {
  BSB_REQUIRE(is_pow2(static_cast<std::uint64_t>(P)),
              "rd_redundancy: P must be a power of two");
  const ChunkLayout layout(nbytes, P);
  Redundancy red;
  for (int rel = 0; rel < P; ++rel) {
    const int span = coll::scatter_subtree_span(rel, P);  // 2^k
    for (int i = 0, mask = 1; mask < P; mask <<= 1, ++i) {
      const int dst_tree_root = ((rel ^ mask) >> i) << i;
      const int n = std::min(mask, P - dst_tree_root);
      const std::uint64_t bytes = layout.range_count(dst_tree_root, n);
      if (mask < span) {  // partner block lies inside the owned block
        red.bytes += bytes;
        if (bytes > 0) ++red.msgs;
      }
    }
  }
  return red;
}

/// Redundant traffic of the ENCLOSED ring allgatherv running over skewed
/// post-scatter block ownership: same shape as native_ring_redundancy but
/// weighted by the case's VarLayout, so zero-sized chunks contribute no
/// redundant message.
Redundancy allgatherv_native_redundancy(const FuzzCase& c) {
  const int P = c.nranks;
  const VarLayout layout(skewed_counts(P, c.nbytes, c.skew_seed));
  Redundancy red;
  for (int rel = 0; rel < P; ++rel) {
    const int span = coll::scatter_subtree_span(rel, P);
    red.bytes += layout.range_count(rel, span) - layout.count(rel);
    for (int ch = rel + 1; ch < rel + span; ++ch) {
      if (layout.count(ch) > 0) ++red.msgs;
    }
  }
  return red;
}

using RankCounts = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

/// Exact per-rank (sends, recvs) for the reduction family and allgatherv:
/// ring steps plus — for the blocked variants — the phase-B ancestor
/// delivery, plus the allgather phase for the rsag allreduces.
RankCounts per_rank_expectation(const FuzzCase& c) {
  const int P = c.nranks;
  RankCounts out(static_cast<std::size_t>(P));
  const auto ring = static_cast<std::uint64_t>(P - 1);
  for (int r = 0; r < P; ++r) {
    const int rel = rel_rank(r, c.root, P);
    const auto span =
        static_cast<std::uint64_t>(coll::scatter_subtree_span(rel, P));
    const auto anc = static_cast<std::uint64_t>(core::block_ancestors(rel));
    const core::RingPlan plan = core::compute_ring_plan(rel, P);
    const auto tuned_s = static_cast<std::uint64_t>(core::tuned_sends(plan, P));
    const auto tuned_r = static_cast<std::uint64_t>(core::tuned_recvs(plan, P));
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
    switch (c.variant) {
      case Variant::ReduceScatterRing:
      case Variant::AllgathervRingNative:
        sends = ring;
        recvs = ring;
        break;
      case Variant::ReduceScatterBlocks:
        sends = ring + anc;
        recvs = ring + span - 1;
        break;
      case Variant::AllreduceRsAgNative:
        sends = ring + anc + ring;
        recvs = ring + span - 1 + ring;
        break;
      case Variant::AllreduceRsAgTuned:
        sends = ring + anc + tuned_s;
        recvs = ring + span - 1 + tuned_r;
        break;
      case Variant::AllreduceRecursiveDoubling:
        sends = static_cast<std::uint64_t>(
            floor_log2(static_cast<std::uint64_t>(P)));
        recvs = sends;
        break;
      case Variant::AllgathervRingTuned:
        sends = tuned_s;
        recvs = tuned_r;
        break;
      default:
        BSB_ASSERT(false, "per_rank_expectation: variant has no per-rank form");
    }
    out[static_cast<std::size_t>(r)] = {sends, recvs};
  }
  return out;
}

/// Per-rank (sends, recvs) of the binomial scatter over a group of `L`
/// ranks at relative rank `rel` — the same closed-form walk
/// scatter_binomial performs, including the zero-byte suppression.
std::pair<std::uint64_t, std::uint64_t> scatter_rank_counts(
    int rel, int L, std::uint64_t nbytes) {
  const ChunkLayout layout(nbytes, L);
  const auto s = static_cast<std::int64_t>(layout.scatter_size());
  const auto total = static_cast<std::int64_t>(nbytes);
  std::int64_t curr = rel == 0 ? total : 0;
  std::uint64_t recvs = 0;
  int mask = 1;
  while (mask < L) {
    if (rel & mask) {
      if (total - rel * s > 0) {
        recvs = 1;
        curr = std::min<std::int64_t>(total - rel * s,
                                      static_cast<std::int64_t>(mask) * s);
      }
      break;
    }
    mask <<= 1;
  }
  std::uint64_t sends = 0;
  for (mask >>= 1; mask > 0; mask >>= 1) {
    if (rel + mask >= L) continue;
    const std::int64_t send_size = curr - static_cast<std::int64_t>(mask) * s;
    if (send_size > 0) {
      ++sends;
      curr -= send_size;
    }
  }
  return {sends, recvs};
}

/// Exact per-rank (sends, recvs) of the hierarchical broadcast: non-leaders
/// see exactly the one single-copy delivery; a leader adds its scatter walk
/// and ring plan over the leader group plus (node_size - 1) fan-out sends.
RankCounts hier_per_rank_expectation(const FuzzCase& c,
                                     const hier::Topology& topo) {
  const int P = c.nranks;
  const int L = topo.num_nodes();
  const int leader_root = topo.node_of(c.root);
  RankCounts out(static_cast<std::size_t>(P), {0, 1});
  for (int n = 0; n < L; ++n) {
    const int leader = topo.leader_of(n, c.root);
    std::uint64_t sends = static_cast<std::uint64_t>(topo.node_size(n) - 1);
    std::uint64_t recvs = 0;
    if (L > 1) {
      const int lrel = rel_rank(n, leader_root, L);
      const auto [ss, sr] = scatter_rank_counts(lrel, L, c.nbytes);
      sends += ss;
      recvs += sr;
      if (c.use_tuned_ring) {
        const core::RingPlan plan = core::compute_ring_plan(lrel, L);
        sends += static_cast<std::uint64_t>(core::tuned_sends(plan, L));
        recvs += static_cast<std::uint64_t>(core::tuned_recvs(plan, L));
      } else {
        sends += static_cast<std::uint64_t>(L - 1);
        recvs += static_cast<std::uint64_t>(L - 1);
      }
    }
    out[static_cast<std::size_t>(leader)] = {sends, recvs};
  }
  return out;
}

std::uint64_t pipelined_sends(int P, std::uint64_t nbytes,
                              std::uint64_t segment_bytes) {
  if (P <= 1 || nbytes == 0) return 0;
  const std::uint64_t seg = segment_bytes == 0 ? nbytes : segment_bytes;
  const std::uint64_t segments = (nbytes + seg - 1) / seg;
  return static_cast<std::uint64_t>(P - 1) * segments;
}

std::uint64_t smp_sends(const FuzzCase& c) {
  const Topology topo(c.nranks, c.smp_cores_per_node, Placement::Block);
  std::uint64_t total = 0;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    const auto node_size =
        static_cast<std::uint64_t>(topo.ranks_on_node(n).size());
    if (node_size > 1) total += node_size - 1;  // intra-node binomial
  }
  const int L = topo.num_nodes();
  if (L > 1) {  // leader phase: binomial scatter + tuned ring over L leaders
    total += core::scatter_transfers(L, c.nbytes) + core::tuned_ring_transfers(L);
  }
  return total;
}

TransferExpectation bcast_algorithm_expectation(core::BcastAlgorithm algo,
                                                const FuzzCase& c) {
  const int P = c.nranks;
  TransferExpectation e;
  switch (algo) {
    case core::BcastAlgorithm::Binomial:
      e.total_sends = static_cast<std::uint64_t>(P - 1);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      return e;
    case core::BcastAlgorithm::ScatterRdAllgather: {
      e.total_sends = core::scatter_transfers(P, c.nbytes) +
                      static_cast<std::uint64_t>(P) *
                          static_cast<std::uint64_t>(ceil_log2(
                              static_cast<std::uint64_t>(P)));
      const Redundancy red = rd_redundancy(P, c.nbytes);
      e.redundant_bytes = red.bytes;
      e.redundant_msgs = red.msgs;
      return e;
    }
    case core::BcastAlgorithm::ScatterRingNative: {
      e.total_sends =
          core::scatter_transfers(P, c.nbytes) + core::native_ring_transfers(P);
      const Redundancy red = native_ring_redundancy(P, c.nbytes);
      e.redundant_bytes = red.bytes;
      e.redundant_msgs = red.msgs;
      return e;
    }
    case core::BcastAlgorithm::ScatterRingTuned:
      e.total_sends =
          core::scatter_transfers(P, c.nbytes) + core::tuned_ring_transfers(P);
      e.redundant_bytes = 0;  // the paper's claim: zero re-shipped bytes
      e.redundant_msgs = 0;
      return e;
  }
  BSB_ASSERT(false, "bcast_algorithm_expectation: unknown algorithm");
}

core::BcastConfig selector_config(const FuzzCase& c) {
  core::BcastConfig cfg;
  cfg.smsg_limit = c.smsg_limit;
  cfg.mmsg_limit = c.mmsg_limit;
  cfg.use_tuned_ring = c.use_tuned_ring;
  return cfg;
}

}  // namespace

int ceil_log2(std::uint64_t n) noexcept {
  int k = 0;
  while ((std::uint64_t{1} << k) < n) ++k;
  return k;
}

bool dataflow_checkable(Variant v) noexcept {
  // Bruck (flat and hierarchical) gathers into a rotated scratch buffer;
  // its offsets are foreign to the collective's buffer and cannot be
  // dataflow-validated symbolically. The reduction family moves partial
  // sums, not byte copies — validate_reduce_flow covers those instead.
  // IbcastConcurrent's companion broadcasts run on body-local buffers, so
  // two thirds of its recorded offsets are foreign as well.
  return v != Variant::AllgatherBruck && v != Variant::AllgatherBruckHier &&
         v != Variant::IbcastConcurrent && !fuzz::is_reduce_family(v);
}

bool reduction_checkable(Variant v) noexcept {
  return fuzz::is_reduce_family(v);
}

trace::ReduceFlowOptions reduce_flow_options(const FuzzCase& c) {
  BSB_REQUIRE(fuzz::is_reduce_family(c.variant),
              "reduce_flow_options: not a reduction-family case");
  BSB_REQUIRE(c.nbytes > 0, "reduce_flow_options: nbytes must be positive");
  const int P = c.nranks;
  trace::ReduceFlowOptions opt;
  opt.root = c.root;
  if (c.variant == Variant::AllreduceRecursiveDoubling) {
    // Whole-buffer partials halve the contributor gap each round; a single
    // chunk models that exactly.
    opt.nchunks = 1;
    opt.chunk_bytes = c.nbytes;
    opt.required.assign(static_cast<std::size_t>(P), {0, 1});
    return opt;
  }
  opt.nchunks = P;
  opt.chunk_bytes = c.nbytes / static_cast<std::uint64_t>(P);
  opt.required.resize(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    const int rel = rel_rank(r, c.root, P);
    switch (c.variant) {
      case Variant::ReduceScatterRing:
        opt.required[static_cast<std::size_t>(r)] = {rel, 1};
        break;
      case Variant::ReduceScatterBlocks:
        opt.required[static_cast<std::size_t>(r)] = {
            rel, coll::scatter_subtree_span(rel, P)};
        break;
      default:  // the rsag allreduces: everyone ends with everything
        opt.required[static_cast<std::size_t>(r)] = {0, P};
        break;
    }
  }
  return opt;
}

TransferExpectation expected_transfers(const FuzzCase& c) {
  const int P = c.nranks;
  TransferExpectation e;
  switch (c.variant) {
    case Variant::BcastBinomial:
      return bcast_algorithm_expectation(core::BcastAlgorithm::Binomial, c);
    case Variant::BcastScatterRd:
      return bcast_algorithm_expectation(
          core::BcastAlgorithm::ScatterRdAllgather, c);
    case Variant::BcastScatterRingNative:
      return bcast_algorithm_expectation(core::BcastAlgorithm::ScatterRingNative,
                                         c);
    case Variant::BcastScatterRingTuned:
      return bcast_algorithm_expectation(core::BcastAlgorithm::ScatterRingTuned,
                                         c);
    case Variant::BcastRingPipelined:
      e.total_sends = pipelined_sends(P, c.nbytes, c.segment_bytes);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      return e;
    case Variant::BcastSmp:
      e.total_sends = smp_sends(c);
      e.redundant_bytes = 0;  // tuned leader ring + disjoint node subtrees
      e.redundant_msgs = 0;
      return e;
    case Variant::BcastAuto:
    case Variant::BcastPersistent:
      return bcast_algorithm_expectation(
          core::choose_bcast_algorithm(c.nbytes, P, selector_config(c)), c);
    case Variant::AllgatherRingNative:
      // Contract: ranks start with ONLY their own chunk, so nothing the
      // enclosed ring delivers is redundant here; the waste appears only
      // when it runs over scatter output (BcastScatterRingNative above).
      e.total_sends = core::native_ring_transfers(P);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      e.native_ring_per_rank = true;
      return e;
    case Variant::AllgatherRingTuned:
      e.total_sends = core::tuned_ring_transfers(P);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      e.tuned_ring_per_rank = true;
      return e;
    case Variant::AllgatherRecursiveDoubling: {
      e.total_sends = static_cast<std::uint64_t>(P) *
                      static_cast<std::uint64_t>(
                          ceil_log2(static_cast<std::uint64_t>(P)));
      const Redundancy red = rd_redundancy(P, c.nbytes);
      e.redundant_bytes = red.bytes;
      e.redundant_msgs = red.msgs;
      return e;
    }
    case Variant::AllgatherBruck:
      e.total_sends = static_cast<std::uint64_t>(P) *
                      static_cast<std::uint64_t>(
                          ceil_log2(static_cast<std::uint64_t>(P)));
      return e;  // no dataflow: redundancy not statically checkable
    case Variant::AllgatherNeighborExchange:
      e.total_sends =
          static_cast<std::uint64_t>(P) * static_cast<std::uint64_t>(P / 2);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      return e;
    case Variant::ReduceScatterRing:
      e.total_sends = core::native_ring_transfers(P);
      e.redundant_bytes = 0;  // ownership-aware: nothing complete re-shipped
      e.redundant_msgs = 0;
      e.per_rank_counts = per_rank_expectation(c);
      return e;
    case Variant::ReduceScatterBlocks:
      e.total_sends = core::blocked_reduce_scatter_transfers(P);
      e.redundant_bytes = 0;  // phase B replaces partials, never completes
      e.redundant_msgs = 0;
      e.per_rank_counts = per_rank_expectation(c);
      return e;
    case Variant::AllreduceRsAgNative: {
      e.total_sends = core::allreduce_rsag_native_transfers(P);
      // The enclosed allgather re-ships the reduced chunks the blocked
      // reduce_scatter already left on each rank — the same excess the
      // paper prices for bcast, generalized to allreduce.
      const Redundancy red = native_ring_redundancy(P, c.nbytes);
      e.redundant_bytes = red.bytes;
      e.redundant_msgs = red.msgs;
      e.per_rank_counts = per_rank_expectation(c);
      return e;
    }
    case Variant::AllreduceRsAgTuned:
      e.total_sends = core::allreduce_rsag_tuned_transfers(P);
      e.redundant_bytes = 0;  // the generalized zero-waste claim
      e.redundant_msgs = 0;
      e.per_rank_counts = per_rank_expectation(c);
      return e;
    case Variant::AllreduceRecursiveDoubling:
      e.total_sends = static_cast<std::uint64_t>(P) *
                      static_cast<std::uint64_t>(
                          floor_log2(static_cast<std::uint64_t>(P)));
      e.redundant_bytes = 0;  // partial merges only, never a re-delivery
      e.redundant_msgs = 0;
      e.per_rank_counts = per_rank_expectation(c);
      return e;
    case Variant::AllgathervRingNative: {
      e.total_sends = core::native_ring_transfers(P);
      const Redundancy red = allgatherv_native_redundancy(c);
      e.redundant_bytes = red.bytes;
      e.redundant_msgs = red.msgs;
      e.per_rank_counts = per_rank_expectation(c);
      return e;
    }
    case Variant::AllgathervRingTuned:
      e.total_sends = core::tuned_ring_transfers(P);
      e.redundant_bytes = 0;  // skew-oblivious plan, still zero waste
      e.redundant_msgs = 0;
      e.per_rank_counts = per_rank_expectation(c);
      return e;
    case Variant::AllgatherBruckHier:
      e.total_sends = core::bruck_hier_transfers(P, c.smp_cores_per_node);
      return e;  // scratch rotation: redundancy not statically checkable
    case Variant::IbcastConcurrent: {
      // kIbcastDepth same-shape broadcasts in flight (the root stagger
      // never changes a count); the companions live in body-local buffers,
      // so redundancy is not statically checkable here.
      const TransferExpectation one = bcast_algorithm_expectation(
          core::choose_bcast_algorithm(c.nbytes, P, selector_config(c)), c);
      e.total_sends =
          *one.total_sends * static_cast<std::uint64_t>(fuzz::kIbcastDepth);
      return e;
    }
    case Variant::BcastHier: {
      // The leader phase IS the flat scatter-ring at P = #leaders; the
      // intra phase is one single-copy delivery per non-leader, so the
      // tuned hier broadcast ships zero redundant bytes and the native one
      // wastes exactly the leader-group ring excess.
      const hier::Topology topo(c.node_sizes);
      const int L = topo.num_nodes();
      e.total_sends =
          core::hier_bcast_transfers(P, L, c.nbytes, c.use_tuned_ring);
      if (c.use_tuned_ring || L == 1) {
        e.redundant_bytes = 0;
        e.redundant_msgs = 0;
      } else {
        const Redundancy red = native_ring_redundancy(L, c.nbytes);
        e.redundant_bytes = red.bytes;
        e.redundant_msgs = red.msgs;
      }
      e.per_rank_counts = hier_per_rank_expectation(c, topo);
      return e;
    }
  }
  BSB_ASSERT(false, "expected_transfers: unknown variant");
}

std::vector<IntervalSet> initial_coverage(const FuzzCase& c) {
  const int P = c.nranks;
  std::vector<IntervalSet> init(static_cast<std::size_t>(P));
  switch (c.variant) {
    case Variant::BcastBinomial:
    case Variant::BcastScatterRd:
    case Variant::BcastScatterRingNative:
    case Variant::BcastScatterRingTuned:
    case Variant::BcastRingPipelined:
    case Variant::BcastSmp:
    case Variant::BcastAuto:
    case Variant::BcastPersistent:
    case Variant::BcastHier:
    case Variant::IbcastConcurrent:
      // For IbcastConcurrent this states the PRIMARY buffer's contract;
      // dataflow is skipped anyway (foreign companion offsets).
      init[static_cast<std::size_t>(c.root)].insert({0, c.nbytes});
      return init;
    case Variant::AllgatherRingNative: {
      const ChunkLayout layout(c.nbytes, P);
      for (int r = 0; r < P; ++r) {
        const int rel = rel_rank(r, c.root, P);
        const std::uint64_t off = layout.disp(rel);
        init[static_cast<std::size_t>(r)].insert({off, off + layout.count(rel)});
      }
      return init;
    }
    case Variant::AllgatherRingTuned:
    case Variant::AllgatherRecursiveDoubling: {
      // These run over binomial-scatter output: each rank owns its whole
      // subtree chunk block (the tuned ring exploits exactly that).
      const ChunkLayout layout(c.nbytes, P);
      for (int r = 0; r < P; ++r) {
        const int rel = rel_rank(r, c.root, P);
        const std::uint64_t off = layout.disp(rel);
        init[static_cast<std::size_t>(r)].insert(
            {off, off + coll::scatter_block_bytes(rel, layout)});
      }
      return init;
    }
    case Variant::AllgatherBruck:
    case Variant::AllgatherNeighborExchange:
    case Variant::AllgatherBruckHier: {
      BSB_REQUIRE(c.nbytes % static_cast<std::uint64_t>(P) == 0,
                  "initial_coverage: block allgather needs P | nbytes");
      const std::uint64_t block = c.nbytes / static_cast<std::uint64_t>(P);
      for (int r = 0; r < P; ++r) {
        const std::uint64_t off = static_cast<std::uint64_t>(r) * block;
        init[static_cast<std::size_t>(r)].insert({off, off + block});
      }
      return init;
    }
    case Variant::ReduceScatterRing:
    case Variant::ReduceScatterBlocks:
    case Variant::AllreduceRsAgNative:
    case Variant::AllreduceRsAgTuned:
    case Variant::AllreduceRecursiveDoubling:
      // Every rank starts with its full contribution vector; coverage in
      // the byte-copy sense does not apply (see reduction_checkable).
      for (int r = 0; r < P; ++r) {
        init[static_cast<std::size_t>(r)].insert({0, c.nbytes});
      }
      return init;
    case Variant::AllgathervRingNative:
    case Variant::AllgathervRingTuned: {
      // Post-scatter block ownership, weighted by the skewed layout: rank
      // rel holds chunks [rel, rel + span) of the VarLayout.
      const VarLayout layout(skewed_counts(P, c.nbytes, c.skew_seed));
      for (int r = 0; r < P; ++r) {
        const int rel = rel_rank(r, c.root, P);
        const int span = coll::scatter_subtree_span(rel, P);
        const std::uint64_t off = layout.disp(rel);
        init[static_cast<std::size_t>(r)].insert(
            {off, off + layout.range_count(rel, span)});
      }
      return init;
    }
  }
  BSB_ASSERT(false, "initial_coverage: unknown variant");
}

}  // namespace bsb::verify
