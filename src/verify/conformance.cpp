#include "verify/conformance.hpp"

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"
#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"
#include "comm/topology.hpp"
#include "core/bcast.hpp"
#include "core/transfer_analysis.hpp"

namespace bsb::verify {

namespace {

using fuzz::FuzzCase;
using fuzz::Variant;

struct Redundancy {
  std::uint64_t bytes = 0;
  std::uint64_t msgs = 0;
};

/// Redundant traffic of the ENCLOSED ring running over binomial-scatter
/// output: relative rank `rel` owns its whole subtree chunk block but the
/// ring re-delivers every chunk except its own, so the block's other
/// chunks arrive redundantly — one full message each when nonempty.
Redundancy native_ring_redundancy(int P, std::uint64_t nbytes) {
  const ChunkLayout layout(nbytes, P);
  Redundancy red;
  for (int rel = 0; rel < P; ++rel) {
    red.bytes += coll::scatter_block_bytes(rel, layout) - layout.count(rel);
    const int span = std::min(coll::scatter_subtree_span(rel, P), P - rel);
    for (int c = rel + 1; c < rel + span; ++c) {
      if (layout.count(c) > 0) ++red.msgs;
    }
  }
  return red;
}

/// Redundant traffic of the recursive-doubling allgather running over
/// binomial-scatter output (MPICH's native medium-message path): in round
/// i, relative rank `rel` receives the 2^i-chunk block of its partner's
/// subtree root; for i < log2(own subtree span) that block is inside the
/// chunks `rel` already owns.
Redundancy rd_redundancy(int P, std::uint64_t nbytes) {
  BSB_REQUIRE(is_pow2(static_cast<std::uint64_t>(P)),
              "rd_redundancy: P must be a power of two");
  const ChunkLayout layout(nbytes, P);
  Redundancy red;
  for (int rel = 0; rel < P; ++rel) {
    const int span = coll::scatter_subtree_span(rel, P);  // 2^k
    for (int i = 0, mask = 1; mask < P; mask <<= 1, ++i) {
      const int dst_tree_root = ((rel ^ mask) >> i) << i;
      const int n = std::min(mask, P - dst_tree_root);
      const std::uint64_t bytes = layout.range_count(dst_tree_root, n);
      if (mask < span) {  // partner block lies inside the owned block
        red.bytes += bytes;
        if (bytes > 0) ++red.msgs;
      }
    }
  }
  return red;
}

std::uint64_t pipelined_sends(int P, std::uint64_t nbytes,
                              std::uint64_t segment_bytes) {
  if (P <= 1 || nbytes == 0) return 0;
  const std::uint64_t seg = segment_bytes == 0 ? nbytes : segment_bytes;
  const std::uint64_t segments = (nbytes + seg - 1) / seg;
  return static_cast<std::uint64_t>(P - 1) * segments;
}

std::uint64_t smp_sends(const FuzzCase& c) {
  const Topology topo(c.nranks, c.smp_cores_per_node, Placement::Block);
  std::uint64_t total = 0;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    const auto node_size =
        static_cast<std::uint64_t>(topo.ranks_on_node(n).size());
    if (node_size > 1) total += node_size - 1;  // intra-node binomial
  }
  const int L = topo.num_nodes();
  if (L > 1) {  // leader phase: binomial scatter + tuned ring over L leaders
    total += core::scatter_transfers(L, c.nbytes) + core::tuned_ring_transfers(L);
  }
  return total;
}

TransferExpectation bcast_algorithm_expectation(core::BcastAlgorithm algo,
                                                const FuzzCase& c) {
  const int P = c.nranks;
  TransferExpectation e;
  switch (algo) {
    case core::BcastAlgorithm::Binomial:
      e.total_sends = static_cast<std::uint64_t>(P - 1);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      return e;
    case core::BcastAlgorithm::ScatterRdAllgather: {
      e.total_sends = core::scatter_transfers(P, c.nbytes) +
                      static_cast<std::uint64_t>(P) *
                          static_cast<std::uint64_t>(ceil_log2(
                              static_cast<std::uint64_t>(P)));
      const Redundancy red = rd_redundancy(P, c.nbytes);
      e.redundant_bytes = red.bytes;
      e.redundant_msgs = red.msgs;
      return e;
    }
    case core::BcastAlgorithm::ScatterRingNative: {
      e.total_sends =
          core::scatter_transfers(P, c.nbytes) + core::native_ring_transfers(P);
      const Redundancy red = native_ring_redundancy(P, c.nbytes);
      e.redundant_bytes = red.bytes;
      e.redundant_msgs = red.msgs;
      return e;
    }
    case core::BcastAlgorithm::ScatterRingTuned:
      e.total_sends =
          core::scatter_transfers(P, c.nbytes) + core::tuned_ring_transfers(P);
      e.redundant_bytes = 0;  // the paper's claim: zero re-shipped bytes
      e.redundant_msgs = 0;
      return e;
  }
  BSB_ASSERT(false, "bcast_algorithm_expectation: unknown algorithm");
}

core::BcastConfig selector_config(const FuzzCase& c) {
  core::BcastConfig cfg;
  cfg.smsg_limit = c.smsg_limit;
  cfg.mmsg_limit = c.mmsg_limit;
  cfg.use_tuned_ring = c.use_tuned_ring;
  return cfg;
}

}  // namespace

int ceil_log2(std::uint64_t n) noexcept {
  int k = 0;
  while ((std::uint64_t{1} << k) < n) ++k;
  return k;
}

bool dataflow_checkable(Variant v) noexcept {
  // Bruck gathers into a rotated scratch buffer; its offsets are foreign to
  // the collective's buffer and cannot be dataflow-validated symbolically.
  return v != Variant::AllgatherBruck;
}

TransferExpectation expected_transfers(const FuzzCase& c) {
  const int P = c.nranks;
  TransferExpectation e;
  switch (c.variant) {
    case Variant::BcastBinomial:
      return bcast_algorithm_expectation(core::BcastAlgorithm::Binomial, c);
    case Variant::BcastScatterRd:
      return bcast_algorithm_expectation(
          core::BcastAlgorithm::ScatterRdAllgather, c);
    case Variant::BcastScatterRingNative:
      return bcast_algorithm_expectation(core::BcastAlgorithm::ScatterRingNative,
                                         c);
    case Variant::BcastScatterRingTuned:
      return bcast_algorithm_expectation(core::BcastAlgorithm::ScatterRingTuned,
                                         c);
    case Variant::BcastRingPipelined:
      e.total_sends = pipelined_sends(P, c.nbytes, c.segment_bytes);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      return e;
    case Variant::BcastSmp:
      e.total_sends = smp_sends(c);
      e.redundant_bytes = 0;  // tuned leader ring + disjoint node subtrees
      e.redundant_msgs = 0;
      return e;
    case Variant::BcastAuto:
    case Variant::BcastPersistent:
      return bcast_algorithm_expectation(
          core::choose_bcast_algorithm(c.nbytes, P, selector_config(c)), c);
    case Variant::AllgatherRingNative:
      // Contract: ranks start with ONLY their own chunk, so nothing the
      // enclosed ring delivers is redundant here; the waste appears only
      // when it runs over scatter output (BcastScatterRingNative above).
      e.total_sends = core::native_ring_transfers(P);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      e.native_ring_per_rank = true;
      return e;
    case Variant::AllgatherRingTuned:
      e.total_sends = core::tuned_ring_transfers(P);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      e.tuned_ring_per_rank = true;
      return e;
    case Variant::AllgatherRecursiveDoubling: {
      e.total_sends = static_cast<std::uint64_t>(P) *
                      static_cast<std::uint64_t>(
                          ceil_log2(static_cast<std::uint64_t>(P)));
      const Redundancy red = rd_redundancy(P, c.nbytes);
      e.redundant_bytes = red.bytes;
      e.redundant_msgs = red.msgs;
      return e;
    }
    case Variant::AllgatherBruck:
      e.total_sends = static_cast<std::uint64_t>(P) *
                      static_cast<std::uint64_t>(
                          ceil_log2(static_cast<std::uint64_t>(P)));
      return e;  // no dataflow: redundancy not statically checkable
    case Variant::AllgatherNeighborExchange:
      e.total_sends =
          static_cast<std::uint64_t>(P) * static_cast<std::uint64_t>(P / 2);
      e.redundant_bytes = 0;
      e.redundant_msgs = 0;
      return e;
  }
  BSB_ASSERT(false, "expected_transfers: unknown variant");
}

std::vector<IntervalSet> initial_coverage(const FuzzCase& c) {
  const int P = c.nranks;
  std::vector<IntervalSet> init(static_cast<std::size_t>(P));
  switch (c.variant) {
    case Variant::BcastBinomial:
    case Variant::BcastScatterRd:
    case Variant::BcastScatterRingNative:
    case Variant::BcastScatterRingTuned:
    case Variant::BcastRingPipelined:
    case Variant::BcastSmp:
    case Variant::BcastAuto:
    case Variant::BcastPersistent:
      init[static_cast<std::size_t>(c.root)].insert({0, c.nbytes});
      return init;
    case Variant::AllgatherRingNative: {
      const ChunkLayout layout(c.nbytes, P);
      for (int r = 0; r < P; ++r) {
        const int rel = rel_rank(r, c.root, P);
        const std::uint64_t off = layout.disp(rel);
        init[static_cast<std::size_t>(r)].insert({off, off + layout.count(rel)});
      }
      return init;
    }
    case Variant::AllgatherRingTuned:
    case Variant::AllgatherRecursiveDoubling: {
      // These run over binomial-scatter output: each rank owns its whole
      // subtree chunk block (the tuned ring exploits exactly that).
      const ChunkLayout layout(c.nbytes, P);
      for (int r = 0; r < P; ++r) {
        const int rel = rel_rank(r, c.root, P);
        const std::uint64_t off = layout.disp(rel);
        init[static_cast<std::size_t>(r)].insert(
            {off, off + coll::scatter_block_bytes(rel, layout)});
      }
      return init;
    }
    case Variant::AllgatherBruck:
    case Variant::AllgatherNeighborExchange: {
      BSB_REQUIRE(c.nbytes % static_cast<std::uint64_t>(P) == 0,
                  "initial_coverage: block allgather needs P | nbytes");
      const std::uint64_t block = c.nbytes / static_cast<std::uint64_t>(P);
      for (int r = 0; r < P; ++r) {
        const std::uint64_t off = static_cast<std::uint64_t>(r) * block;
        init[static_cast<std::size_t>(r)].insert({off, off + block});
      }
      return init;
    }
  }
  BSB_ASSERT(false, "initial_coverage: unknown variant");
}

}  // namespace bsb::verify
