#include "verify/verifier.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>

#include "bsbutil/error.hpp"
#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"
#include "core/ring_plan.hpp"
#include "core/transfer_analysis.hpp"
#include "trace/counters.hpp"
#include "trace/coverage.hpp"
#include "trace/match.hpp"
#include "trace/record.hpp"
#include "verify/conformance.hpp"
#include "verify/equiv.hpp"
#include "verify/hb.hpp"
#include "verify/lint.hpp"

namespace bsb::verify {

namespace {

using fuzz::FuzzCase;
using fuzz::Variant;

void add_failure(CaseResult* res, const std::string& what) {
  res->ok = false;
  res->failures.push_back(what);
}

std::string mismatch(const char* what, std::uint64_t got, std::uint64_t want) {
  return std::string(what) + ": schedule has " + std::to_string(got) +
         ", closed form says " + std::to_string(want);
}

/// The shared property suite: lint, match, happens-before (per threshold),
/// dataflow coverage + redundancy, and transfer-count conformance.
/// `expect` and `cfg` are optional (hand-built schedules have neither).
void verify_impl(const trace::Schedule& sched, int root,
                 const VerifyOptions& opt,
                 const std::vector<IntervalSet>* initial,
                 const TransferExpectation* expect, const FuzzCase* cfg,
                 bool dataflow, CaseResult* res) {
  res->total_ops = sched.total_ops();
  res->total_sends = sched.total_sends();
  res->total_send_bytes = sched.total_send_bytes();

  // 1. Lint: structural hygiene. Errors invalidate the schedule.
  const LintReport lint = lint_schedule(sched);
  for (const LintFinding& f : lint.findings) {
    if (f.severity == LintSeverity::Warning) ++res->lint_warnings;
  }
  if (!lint.ok) {
    add_failure(res, "lint:\n" + lint.to_string());
  }

  // 2. Match: every send must pair with a receive (MPI non-overtaking).
  trace::MatchResult m;
  try {
    m = trace::match_schedule(sched);
  } catch (const trace::ScheduleError& e) {
    add_failure(res, std::string("match: ") + e.what());
    return;  // nothing downstream is meaningful without a matching
  }

  // 3. Happens-before: deadlock freedom under every requested threshold,
  // plus buffer safety (threshold-independent; reported once).
  bool first_threshold = true;
  for (const std::uint64_t thr : opt.eager_thresholds) {
    const HbReport hb = analyze_hb(sched, m, HbOptions{thr});
    res->eager_high_water_bytes =
        std::max(res->eager_high_water_bytes, hb.eager_high_water_bytes);
    if (hb.deadlock) {
      add_failure(res, "deadlock[eager_threshold=" + std::to_string(thr) +
                           "]:\n" + hb.diagnostics);
    }
    // 3b. Symbolic eager bounds: the greedy per-rank high-water must be
    // dominated by the closed form derived from the variant's structure.
    // Skipped on deadlock: the stuck fixpoint leaves residency partial.
    if (cfg != nullptr && opt.check_bounds && !hb.deadlock &&
        eager_bound_checkable(cfg->variant)) {
      const std::vector<std::uint64_t> bound = eager_peak_bounds(*cfg, thr);
      res->eager_bounds_checked = true;
      for (int r = 0; r < sched.nranks; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        res->eager_bound_max = std::max(res->eager_bound_max, bound[ri]);
        if (ri < hb.rank_eager_high_water.size() &&
            hb.rank_eager_high_water[ri] > bound[ri]) {
          add_failure(res, "bounds: rank " + std::to_string(r) +
                               " eager high-water " +
                               std::to_string(hb.rank_eager_high_water[ri]) +
                               " exceeds the closed form " +
                               std::to_string(bound[ri]) + " at threshold " +
                               std::to_string(thr));
          break;  // one witness per threshold keeps the report readable
        }
      }
    }
    if (first_threshold && !hb.races.empty()) {
      std::string what = "race:";
      for (const BufferRace& race : hb.races) {
        what += "\n  rank " + std::to_string(race.rank) + " op " +
                std::to_string(race.op) + " sendrecv: send [" +
                std::to_string(race.send.lo) + "," +
                std::to_string(race.send.hi) + ") overlaps recv [" +
                std::to_string(race.recv.lo) + "," +
                std::to_string(race.recv.hi) + ")";
      }
      add_failure(res, what);
    }
    first_threshold = false;
  }

  // 3c. Shm-pool occupancy proof for the hier fan-out phase.
  if (cfg != nullptr && opt.check_bounds &&
      cfg->variant == Variant::BcastHier && !cfg->node_sizes.empty()) {
    const ShmPoolReport shm = verify_shm_pool(sched, cfg->node_sizes, root);
    res->shm_checked = true;
    res->shm_peak_node_bytes = shm.peak_node_bytes;
    if (!shm.ok) {
      std::string what = "bounds: shm pool occupancy violated (peak " +
                         std::to_string(shm.peak_node_bytes) +
                         " B vs provisioned " +
                         std::to_string(shm.bound_node_bytes) + " B)";
      for (const std::string& w : shm.witnesses) what += "\n  " + w;
      add_failure(res, what);
    }
  }

  // 4. Dataflow coverage + redundancy under the initial-ownership contract.
  if (dataflow) {
    trace::CoverageOptions copt;
    if (initial != nullptr) copt.initial = *initial;
    const trace::CoverageReport cov =
        trace::validate_coverage(sched, m, root, copt);
    res->dataflow_checked = true;
    res->redundant_bytes = cov.redundant_bytes;
    res->redundant_msgs = cov.redundant_msgs;
    if (!cov.ok) {
      add_failure(res, "coverage:\n" + cov.diagnostics);
    }
    if (expect != nullptr && cov.ok) {
      if (expect->redundant_bytes &&
          cov.redundant_bytes != *expect->redundant_bytes) {
        add_failure(res, mismatch("redundancy: redundant bytes",
                                  cov.redundant_bytes,
                                  *expect->redundant_bytes));
      }
      if (expect->redundant_msgs &&
          cov.redundant_msgs != *expect->redundant_msgs) {
        add_failure(res, mismatch("redundancy: fully-redundant messages",
                                  cov.redundant_msgs, *expect->redundant_msgs));
      }
    }
  }

  // 4b. Reduce-flow: contributor-interval validation for the reduction
  // family (partial sums instead of byte copies; the coverage engine does
  // not apply). Redundancy here means a fully reduced chunk delivered to a
  // rank that already held it fully reduced.
  if (cfg != nullptr && reduction_checkable(cfg->variant) &&
      sched.nbytes > 0) {
    const trace::ReduceFlowReport rf =
        trace::validate_reduce_flow(sched, m, reduce_flow_options(*cfg));
    res->reduce_flow_checked = true;
    res->redundant_bytes = rf.redundant_bytes;
    res->redundant_msgs = rf.redundant_msgs;
    if (!rf.ok) {
      add_failure(res, "reduce-flow:\n" + rf.diagnostics);
    }
    if (expect != nullptr && rf.ok) {
      if (expect->redundant_bytes &&
          rf.redundant_bytes != *expect->redundant_bytes) {
        add_failure(res, mismatch("redundancy: redundant reduced bytes",
                                  rf.redundant_bytes, *expect->redundant_bytes));
      }
      if (expect->redundant_msgs &&
          rf.redundant_msgs != *expect->redundant_msgs) {
        add_failure(res,
                    mismatch("redundancy: fully-redundant reduced messages",
                             rf.redundant_msgs, *expect->redundant_msgs));
      }
    }
  }

  // 5. Transfer-count conformance against the closed forms.
  if (expect != nullptr) {
    if (expect->total_sends && res->total_sends != *expect->total_sends) {
      add_failure(res, mismatch("transfers: total messages", res->total_sends,
                                *expect->total_sends));
    }
    if (!expect->per_rank_counts.empty()) {
      const auto per_rank = trace::per_rank_op_counts(sched);
      for (int r = 0; r < sched.nranks && res->failures.size() < 8; ++r) {
        const auto& want = expect->per_rank_counts[static_cast<std::size_t>(r)];
        if (per_rank[r].sends != want.first) {
          add_failure(res, mismatch(("transfers: rank " + std::to_string(r) +
                                     " sends")
                                        .c_str(),
                                    per_rank[r].sends, want.first));
        }
        if (per_rank[r].recvs != want.second) {
          add_failure(res, mismatch(("transfers: rank " + std::to_string(r) +
                                     " recvs")
                                        .c_str(),
                                    per_rank[r].recvs, want.second));
        }
      }
    }
    if ((expect->tuned_ring_per_rank || expect->native_ring_per_rank) &&
        cfg != nullptr) {
      const int P = sched.nranks;
      const auto per_rank = trace::per_rank_op_counts(sched);
      for (int r = 0; r < P && res->failures.size() < 8; ++r) {
        std::uint64_t want_sends = 0, want_recvs = 0;
        if (expect->tuned_ring_per_rank) {
          const core::RingPlan plan =
              core::compute_ring_plan(rel_rank(r, cfg->root, P), P);
          want_sends = static_cast<std::uint64_t>(core::tuned_sends(plan, P));
          want_recvs = static_cast<std::uint64_t>(core::tuned_recvs(plan, P));
        } else {
          want_sends = want_recvs = static_cast<std::uint64_t>(P - 1);
        }
        if (per_rank[r].sends != want_sends) {
          add_failure(res, mismatch(("transfers: rank " + std::to_string(r) +
                                     " sends")
                                        .c_str(),
                                    per_rank[r].sends, want_sends));
        }
        if (per_rank[r].recvs != want_recvs) {
          add_failure(res, mismatch(("transfers: rank " + std::to_string(r) +
                                     " recvs")
                                        .c_str(),
                                    per_rank[r].recvs, want_recvs));
        }
      }
    }
  }
}

}  // namespace

std::string CaseResult::summary() const {
  std::string out = label.empty() ? describe(config) : label;
  if (ok) {
    out += " -- ok (" + std::to_string(total_sends) + " msgs, " +
           std::to_string(redundant_msgs) + " redundant)";
    return out;
  }
  for (const std::string& f : failures) out += "\n  FAIL " + f;
  return out;
}

CaseResult verify_case(const FuzzCase& c, const VerifyOptions& opt,
                       fuzz::Sabotage sabotage) {
  CaseResult res;
  res.config = c;
  trace::Schedule sched;
  try {
    sched = trace::record_schedule(c.nranks, c.nbytes,
                                   fuzz::make_rank_body(c, sabotage));
  } catch (const Error& e) {
    add_failure(&res, std::string("record: ") + e.what());
    return res;
  }
  const TransferExpectation expect = expected_transfers(c);
  const std::vector<IntervalSet> initial = initial_coverage(c);
  const bool dataflow = opt.check_dataflow && dataflow_checkable(c.variant);
  verify_impl(sched, c.root, opt, &initial, &expect, &c, dataflow, &res);
  // 6. Rotation equivalence: the freshly recorded root-r schedule must be
  // the rotated root-0 plan. Sabotaged runs are skipped — the sabotage is
  // applied to the fresh recording only, so the canonical program differs
  // by construction, not by a cache bug.
  if (opt.check_rotation && sabotage == fuzz::Sabotage::None &&
      rotation_checkable(c.variant)) {
    const RotationReport rot = prove_rotation_equivalence(c, sched);
    res.rotation_checked = true;
    res.rotation_full_graph = rot.full_graph_checked;
    res.rotation_steps = rot.steps_compared;
    if (!rot.ok) {
      add_failure(&res, "rotation: " + rot.to_string());
    }
  }
  return res;
}

CaseResult verify_schedule(const trace::Schedule& sched, int root,
                           const VerifyOptions& opt,
                           const std::vector<IntervalSet>* initial) {
  CaseResult res;
  res.config.nranks = sched.nranks;
  res.config.nbytes = sched.nbytes;
  res.config.root = root;
  res.label = "schedule P=" + std::to_string(sched.nranks) +
              " bytes=" + std::to_string(sched.nbytes) +
              " root=" + std::to_string(root);
  verify_impl(sched, root, opt, initial, nullptr, nullptr, opt.check_dataflow,
              &res);
  return res;
}

std::vector<int> default_plist(int pmax) {
  std::set<int> ps;
  for (int p = 2; p <= std::min(pmax, 17); ++p) ps.insert(p);
  for (const int p : {24, 31, 32, 33, 48, 63, 64, 65, 96, 100, 127, 128, 192,
                      256, 512, 1024, 2048, 4096}) {
    if (p <= pmax) ps.insert(p);
  }
  if (pmax >= 2) ps.insert(pmax);
  return {ps.begin(), ps.end()};
}

namespace {

/// Dense arithmetic cross-check of the closed forms for every P: the
/// per-rank ring plans must sum to the totals, the tuned total must be
/// native minus savings, and the paper's in-text anchors must hold.
void closed_form_density_check(int pmax, SweepReport* report) {
  auto fail = [&](std::string what) {
    report->closed_form_failures.push_back(std::move(what));
  };
  for (int P = 2; P <= pmax; ++P) {
    const std::uint64_t native = core::native_ring_transfers(P);
    const std::uint64_t tuned = core::tuned_ring_transfers(P);
    const std::uint64_t savings = core::tuned_ring_savings(P);
    if (native != static_cast<std::uint64_t>(P) *
                      static_cast<std::uint64_t>(P - 1)) {
      fail("P=" + std::to_string(P) + ": native != P*(P-1)");
    }
    if (native != tuned + savings) {
      fail("P=" + std::to_string(P) + ": native != tuned + savings");
    }
    std::uint64_t plan_sends = 0, plan_recvs = 0;
    for (int rel = 0; rel < P; ++rel) {
      const core::RingPlan plan = core::compute_ring_plan(rel, P);
      plan_sends += static_cast<std::uint64_t>(core::tuned_sends(plan, P));
      plan_recvs += static_cast<std::uint64_t>(core::tuned_recvs(plan, P));
    }
    if (plan_sends != tuned || plan_recvs != tuned) {
      fail("P=" + std::to_string(P) + ": per-rank ring plans sum to " +
           std::to_string(plan_sends) + " sends / " +
           std::to_string(plan_recvs) + " recvs, closed form says " +
           std::to_string(tuned));
    }
    // Reduction-family identities. The popcount identity
    // sum_rel popcount(rel) == sum_rel (span(rel) - 1) == savings prices
    // the blocked reduce_scatter's phase-B delivery at exactly the tuned
    // ring's savings, which is why the tuned allreduce collapses to
    // 2P(P-1): the extra delivery and the allgather savings cancel.
    std::uint64_t anc_sum = 0, span_sum = 0;
    for (int rel = 0; rel < P; ++rel) {
      anc_sum += static_cast<std::uint64_t>(core::block_ancestors(rel));
      span_sum += static_cast<std::uint64_t>(
          coll::scatter_subtree_span(rel, P) - 1);
    }
    if (anc_sum != savings || span_sum != savings) {
      fail("P=" + std::to_string(P) + ": popcount identity broken (" +
           std::to_string(anc_sum) + " ancestors / " + std::to_string(span_sum) +
           " span excess vs savings " + std::to_string(savings) + ")");
    }
    if (core::blocked_reduce_scatter_transfers(P) != native + savings) {
      fail("P=" + std::to_string(P) + ": blocked RS != native + savings");
    }
    if (core::allreduce_rsag_native_transfers(P) !=
        core::blocked_reduce_scatter_transfers(P) + native) {
      fail("P=" + std::to_string(P) + ": allreduce native != blocked RS + native");
    }
    if (core::allreduce_rsag_tuned_transfers(P) != 2 * native) {
      fail("P=" + std::to_string(P) + ": allreduce tuned != 2P(P-1)");
    }
    // Hierarchical identities: the leader phase IS the flat formula at
    // P = #leaders (scatter L-1 when no chunk is suppressed, plus the
    // native/tuned ring), and the intra phase is exactly one single-copy
    // delivery per non-leader.
    for (const int L : std::set<int>{1, 2, (P + 1) / 2, P}) {
      if (L < 1 || L > P) continue;
      // An exact multiple of L keeps every scatter chunk non-empty; a fixed
      // size would suppress the tail chunk once ceil(n/L)*(L-1) >= n.
      const std::uint64_t big = static_cast<std::uint64_t>(L) << 10;
      const std::uint64_t edges = L == 1 ? 0 : static_cast<std::uint64_t>(L - 1);
      const std::uint64_t want_native =
          L == 1 ? 0 : edges + core::native_ring_transfers(L);
      const std::uint64_t want_tuned =
          L == 1 ? 0 : edges + core::tuned_ring_transfers(L);
      if (core::hier_inter_transfers(L, big, false) != want_native ||
          core::hier_inter_transfers(L, big, true) != want_tuned) {
        fail("P=" + std::to_string(P) + " L=" + std::to_string(L) +
             ": hier inter-node counts != flat leader-group forms");
      }
      if (core::hier_bcast_transfers(P, L, big, true) !=
          want_tuned + static_cast<std::uint64_t>(P - L)) {
        fail("P=" + std::to_string(P) + " L=" + std::to_string(L) +
             ": hier total != inter + one copy per non-leader");
      }
      report->proofs += 2;
    }
    report->proofs += 8;
  }
  // The paper's Section IV anchors.
  struct Anchor {
    int P;
    std::uint64_t native, tuned;
  };
  // Hier anchors derived from them: a leader group of 8 (resp. 10) moves
  // 7 + 56 = 63 native / 7 + 44 = 51 tuned inter-node messages (resp.
  // 99 -> 84) when no scatter chunk is suppressed.
  struct HierAnchor {
    int L;
    std::uint64_t native, tuned;
  };
  for (const HierAnchor a : {HierAnchor{8, 63, 51}, HierAnchor{10, 99, 84}}) {
    if (a.L > pmax) continue;
    const std::uint64_t big = std::uint64_t{1} << 20;
    if (core::hier_inter_transfers(a.L, big, false) != a.native ||
        core::hier_inter_transfers(a.L, big, true) != a.tuned) {
      fail("hier anchor L=" + std::to_string(a.L) + ": expected " +
           std::to_string(a.native) + " -> " + std::to_string(a.tuned) +
           ", closed forms give " +
           std::to_string(core::hier_inter_transfers(a.L, big, false)) + " -> " +
           std::to_string(core::hier_inter_transfers(a.L, big, true)));
    }
    report->proofs += 1;
  }
  for (const Anchor a : {Anchor{8, 56, 44}, Anchor{10, 90, 75}}) {
    if (a.P > pmax) continue;
    if (core::native_ring_transfers(a.P) != a.native ||
        core::tuned_ring_transfers(a.P) != a.tuned) {
      fail("paper anchor P=" + std::to_string(a.P) + ": expected " +
           std::to_string(a.native) + " -> " + std::to_string(a.tuned) +
           ", closed forms give " +
           std::to_string(core::native_ring_transfers(a.P)) + " -> " +
           std::to_string(core::tuned_ring_transfers(a.P)));
    }
    report->proofs += 1;
  }
  // The generalized family's anchors (analogue of 56->44 / 90->75): the
  // blocked reduce_scatter and the two rsag allreduce flavours.
  struct FamilyAnchor {
    int P;
    std::uint64_t blocked_rs, ar_native, ar_tuned;
  };
  for (const FamilyAnchor a :
       {FamilyAnchor{8, 68, 124, 112}, FamilyAnchor{10, 105, 195, 180}}) {
    if (a.P > pmax) continue;
    if (core::blocked_reduce_scatter_transfers(a.P) != a.blocked_rs ||
        core::allreduce_rsag_native_transfers(a.P) != a.ar_native ||
        core::allreduce_rsag_tuned_transfers(a.P) != a.ar_tuned) {
      fail("family anchor P=" + std::to_string(a.P) + ": expected " +
           std::to_string(a.blocked_rs) + " / " + std::to_string(a.ar_native) +
           " -> " + std::to_string(a.ar_tuned) + ", closed forms give " +
           std::to_string(core::blocked_reduce_scatter_transfers(a.P)) + " / " +
           std::to_string(core::allreduce_rsag_native_transfers(a.P)) + " -> " +
           std::to_string(core::allreduce_rsag_tuned_transfers(a.P)));
    }
    report->proofs += 1;
  }
}

std::vector<int> roots_for(int P, int all_roots_upto) {
  std::vector<int> roots;
  if (P <= all_roots_upto) {
    for (int r = 0; r < P; ++r) roots.push_back(r);
    return roots;
  }
  std::set<int> sample;
  if (P <= 512) {
    sample = {0, 1, P / 2, P - 1};
  } else if (P <= 1536) {
    sample = {0, P / 2};
  } else {
    sample = {0};  // quadratic schedules: one root keeps the sweep bounded
  }
  return {sample.begin(), sample.end()};
}

/// Node-shape configurations the hier sweep proves per (P, root, nbytes):
/// uniform 4/node (ragged last node when 4 does not divide P), a 1-core
/// node wedged before bigger ones, the all-singleton degenerate shape
/// (every rank leads: the flat ring re-emerges), a single node (pure
/// fan-out), and one native-ring case for the redundancy accounting.
struct HierShape {
  std::vector<int> node_sizes;  // empty = uniform from smp_cores_per_node
  bool tuned = true;
};

std::vector<HierShape> hier_shapes(int P) {
  std::vector<HierShape> shapes;
  shapes.push_back({{}, true});
  if (P >= 3) {
    std::vector<int> wedge{1};
    for (int left = P - 1; left > 0; left -= 5) {
      wedge.push_back(std::min(5, left));
    }
    shapes.push_back({std::move(wedge), true});
  }
  shapes.push_back({std::vector<int>(static_cast<std::size_t>(P), 1), true});
  shapes.push_back({{P}, true});
  shapes.push_back({{}, false});
  return shapes;
}

FuzzCase sweep_case(Variant v, int P, int root, std::uint64_t nbytes) {
  FuzzCase c;
  c.variant = v;
  c.nranks = P;
  c.nbytes = nbytes;
  c.root = root;
  c.segment_bytes = 4096;
  c.smp_cores_per_node = 4;
  if (fuzz::is_allgatherv(v)) {
    // Deterministic skew per (P, nbytes) so sweep runs are reproducible but
    // still exercise distinct partitions (including zero-sized chunks).
    c.skew_seed = 0x5eedu + static_cast<std::uint64_t>(P) * 1315423911u + nbytes;
  }
  // Selector thresholds stay at the MPICH defaults (FuzzCase defaults);
  // normalize_case snaps nbytes to the variant's block / reduction grain.
  return fuzz::normalize_case(c);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

SweepReport run_sweep(const SweepOptions& opt, std::ostream& out) {
  const auto t0 = std::chrono::steady_clock::now();
  SweepReport report;

  if (opt.closed_form_density) {
    closed_form_density_check(opt.pmax, &report);
    out << "closed forms: P=2.." << opt.pmax << " "
        << (report.closed_form_failures.empty() ? "ok" : "FAILED") << "\n";
  }

  // Whole-program tag-space lint: independent of any schedule, so once per
  // sweep covers every configuration below.
  report.tagspace = lint_tag_space();
  report.proofs += report.tagspace.checks;
  out << report.tagspace.to_string() << "\n";

  const std::vector<int> plist =
      opt.plist.empty() ? default_plist(opt.pmax) : opt.plist;
  VerifyOptions vopt;
  vopt.eager_thresholds = opt.eager_thresholds;

  for (const int P : plist) {
    std::uint64_t p_cases = 0, p_failures = 0;
    for (const Variant v : fuzz::all_variants()) {
      if (opt.only && *opt.only != v) continue;
      if (fuzz::fit_ranks(v, P) != P) continue;  // structural requirement
      const std::vector<int> roots = roots_for(P, opt.all_roots_upto);
      const bool rootless = fuzz::is_rootless(v);
      for (const std::uint64_t nbytes : opt.sizes) {
        for (const int root : roots) {
          if (rootless && root != roots.front()) continue;
          std::vector<HierShape> shapes{{}};
          if (v == Variant::BcastHier) shapes = hier_shapes(P);
          for (const HierShape& shape : shapes) {
          FuzzCase c = sweep_case(v, P, root, nbytes);
          if (v == Variant::BcastHier) {
            c.node_sizes = shape.node_sizes;
            c.use_tuned_ring = shape.tuned;
            c = fuzz::normalize_case(std::move(c));
          }
          const CaseResult res = verify_case(c, vopt);
          const auto vi = static_cast<std::size_t>(c.variant);
          ++report.cases;
          ++p_cases;
          ++report.per_variant_cases[vi];
          report.schedules_ops += res.total_ops;
          // Properties checked per case: lint, match, deadlock freedom per
          // threshold, buffer safety, coverage, redundancy, transfers, plus
          // the rotation / eager-bound / shm-pool proofs where they ran.
          report.proofs += 4 + opt.eager_thresholds.size() +
                           (res.dataflow_checked ? 1 : 0) +
                           (res.reduce_flow_checked ? 1 : 0) +
                           (res.rotation_checked ? 1 : 0) +
                           (res.eager_bounds_checked ? 1 : 0) +
                           (res.shm_checked ? 1 : 0);
          auto failed_with = [&res](const char* prefix) {
            for (const std::string& f : res.failures) {
              if (f.rfind(prefix, 0) == 0) return true;
            }
            return false;
          };
          if (res.rotation_checked) {
            ++report.rotation_cases;
            report.rotation_steps += res.rotation_steps;
            if (failed_with("rotation:")) ++report.rotation_failures;
          }
          if (res.eager_bounds_checked) {
            ++report.eager_bound_cases;
            if (failed_with("bounds: rank")) ++report.eager_bound_failures;
          }
          if (res.shm_checked) {
            ++report.shm_cases;
            if (failed_with("bounds: shm")) ++report.shm_failures;
          }
          if (!res.ok) {
            ++report.failures;
            ++p_failures;
            ++report.per_variant_failures[vi];
            if (report.failed.size() < 32) report.failed.push_back(res);
            out << "FAIL " << res.summary() << "\n";
          } else if (opt.verbose) {
            out << "  ok " << res.summary() << "\n";
          }
          }
        }
      }
    }
    out << "P=" << P << ": " << p_cases << " case(s), " << p_failures
        << " failure(s)\n";
  }

  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

void write_verify_json(const std::string& path, const SweepOptions& opt,
                       const SweepReport& report) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream f(path);
  BSB_REQUIRE(f.good(), "write_verify_json: cannot open output path");

  f << "{\n";
  f << "  \"schema\": \"bsb-verify-v1\",\n";
  f << "  \"pmax\": " << opt.pmax << ",\n";
  f << "  \"sizes\": [";
  for (std::size_t i = 0; i < opt.sizes.size(); ++i) {
    f << (i ? ", " : "") << opt.sizes[i];
  }
  f << "],\n";
  f << "  \"eager_thresholds\": [";
  for (std::size_t i = 0; i < opt.eager_thresholds.size(); ++i) {
    f << (i ? ", " : "") << opt.eager_thresholds[i];
  }
  f << "],\n";
  f << "  \"cases\": " << report.cases << ",\n";
  f << "  \"failures\": " << report.failures << ",\n";
  f << "  \"proofs\": " << report.proofs << ",\n";
  f << "  \"schedule_ops\": " << report.schedules_ops << ",\n";
  f << "  \"closed_form_failures\": [";
  for (std::size_t i = 0; i < report.closed_form_failures.size(); ++i) {
    f << (i ? ", " : "") << '"' << json_escape(report.closed_form_failures[i])
      << '"';
  }
  f << "],\n";
  f << "  \"paper\": {\"p8_native\": " << core::native_ring_transfers(8)
    << ", \"p8_tuned\": " << core::tuned_ring_transfers(8)
    << ", \"p10_native\": " << core::native_ring_transfers(10)
    << ", \"p10_tuned\": " << core::tuned_ring_transfers(10) << "},\n";
  f << "  \"family\": {\"p8_blocked_rs\": "
    << core::blocked_reduce_scatter_transfers(8)
    << ", \"p8_allreduce_native\": " << core::allreduce_rsag_native_transfers(8)
    << ", \"p8_allreduce_tuned\": " << core::allreduce_rsag_tuned_transfers(8)
    << ", \"p10_blocked_rs\": " << core::blocked_reduce_scatter_transfers(10)
    << ", \"p10_allreduce_native\": "
    << core::allreduce_rsag_native_transfers(10)
    << ", \"p10_allreduce_tuned\": "
    << core::allreduce_rsag_tuned_transfers(10) << "},\n";
  const std::uint64_t big = std::uint64_t{1} << 20;
  f << "  \"hier\": {\"l8_inter_native\": "
    << core::hier_inter_transfers(8, big, false)
    << ", \"l8_inter_tuned\": " << core::hier_inter_transfers(8, big, true)
    << ", \"l10_inter_native\": " << core::hier_inter_transfers(10, big, false)
    << ", \"l10_inter_tuned\": " << core::hier_inter_transfers(10, big, true)
    << "},\n";
  f << "  \"passes\": {\n";
  f << "    \"rotation\": {\"cases\": " << report.rotation_cases
    << ", \"failures\": " << report.rotation_failures
    << ", \"steps\": " << report.rotation_steps << "},\n";
  f << "    \"tagspace\": {\"ok\": "
    << (report.tagspace.ok ? "true" : "false")
    << ", \"base_tags\": " << report.tagspace.base_tags
    << ", \"contexts\": " << report.tagspace.contexts
    << ", \"checks\": " << report.tagspace.checks
    << ", \"max_remapped\": " << report.tagspace.max_remapped
    << ", \"witnesses\": [";
  for (std::size_t i = 0; i < report.tagspace.witnesses.size(); ++i) {
    f << (i ? ", " : "") << '"' << json_escape(report.tagspace.witnesses[i])
      << '"';
  }
  f << "]},\n";
  f << "    \"bounds\": {\"eager_cases\": " << report.eager_bound_cases
    << ", \"eager_failures\": " << report.eager_bound_failures
    << ", \"shm_cases\": " << report.shm_cases
    << ", \"shm_failures\": " << report.shm_failures << "}\n";
  f << "  },\n";
  f << "  \"per_variant\": {";
  bool first = true;
  for (const Variant v : fuzz::all_variants()) {
    const auto vi = static_cast<std::size_t>(v);
    if (report.per_variant_cases[vi] == 0) continue;
    f << (first ? "" : ", ") << "\n    \"" << fuzz::to_string(v)
      << "\": {\"cases\": " << report.per_variant_cases[vi]
      << ", \"failures\": " << report.per_variant_failures[vi] << "}";
    first = false;
  }
  f << "\n  },\n";
  f << "  \"failed\": [";
  for (std::size_t i = 0; i < report.failed.size(); ++i) {
    f << (i ? ", " : "") << "\n    {\"config\": \""
      << json_escape(describe(report.failed[i].config)) << "\", \"failures\": [";
    const auto& fails = report.failed[i].failures;
    for (std::size_t j = 0; j < fails.size(); ++j) {
      f << (j ? ", " : "") << '"' << json_escape(fails[j]) << '"';
    }
    f << "]}";
  }
  f << (report.failed.empty() ? "]" : "\n  ]") << ",\n";
  f << "  \"elapsed_seconds\": " << report.elapsed_seconds << "\n";
  f << "}\n";
  BSB_REQUIRE(f.good(), "write_verify_json: write failed");
}

}  // namespace bsb::verify
