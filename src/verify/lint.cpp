#include "verify/lint.hpp"

#include <algorithm>

#include "bsbutil/error.hpp"
#include "coll/hier/topology.hpp"
#include "coll/scatter_binomial.hpp"
#include "coll/tags.hpp"
#include "comm/chunks.hpp"
#include "comm/comm.hpp"
#include "core/ring_plan.hpp"

namespace bsb::verify {

namespace {

using trace::Op;
using trace::OpKind;

/// Cap on recorded findings: schedules reach millions of ops at large P and
/// a broken generator would otherwise flood the report.
constexpr std::size_t kMaxFindings = 64;

bool known_base_tag(int base) {
  // Registry-driven, so a tag added to coll/tags.hpp (and kAllBaseTags) is
  // accepted here automatically. The old range check silently excluded
  // kHierFanout, flagging every hier fan-out message as unregistered.
  for (const int t : coll::tags::kAllBaseTags) {
    if (base == t) return true;
  }
  return false;
}

}  // namespace

const char* to_string(LintSeverity s) noexcept {
  return s == LintSeverity::Error ? "error" : "warning";
}

std::string LintReport::to_string() const {
  std::string out;
  for (const LintFinding& f : findings) {
    out += "  [";
    out += verify::to_string(f.severity);
    out += "] ";
    if (f.rank >= 0) {
      out += "rank " + std::to_string(f.rank);
      if (f.op >= 0) out += " op " + std::to_string(f.op);
      out += ": ";
    }
    out += f.what + "\n";
  }
  return out;
}

LintReport lint_schedule(const trace::Schedule& sched) {
  LintReport report;
  std::size_t dropped = 0;

  auto add = [&](LintSeverity sev, int rank, int op, std::string what) {
    if (sev == LintSeverity::Error) report.ok = false;
    if (report.findings.size() >= kMaxFindings) {
      ++dropped;
      return;
    }
    report.findings.push_back({sev, rank, op, std::move(what)});
  };

  auto check_tag = [&](int rank, int op, int tag, const char* half) {
    if (tag < 0) {
      add(LintSeverity::Error, rank, op,
          std::string(half) + " tag " + std::to_string(tag) + " is negative");
      return;
    }
    const int context = tag / (kMaxUserTag + 1);
    const int base = tag % (kMaxUserTag + 1);
    // Valid: a registered per-algorithm tag, either bare or namespaced by a
    // SubComm context, or a SubComm dissemination-barrier tag (base ==
    // kMaxUserTag shifted into a context >= 1 namespace).
    const bool ok = known_base_tag(base) || (context >= 1 && base == kMaxUserTag);
    if (!ok) {
      add(LintSeverity::Warning, rank, op,
          std::string(half) + " tag " + std::to_string(tag) +
              " (context " + std::to_string(context) + ", base " +
              std::to_string(base) +
              ") is outside the registered tag space of coll/tags.hpp");
    }
  };

  std::vector<std::uint64_t> barriers(static_cast<std::size_t>(sched.nranks), 0);

  for (int r = 0; r < sched.nranks; ++r) {
    const auto& list = sched.ops[r];
    for (int i = 0; i < static_cast<int>(list.size()); ++i) {
      const Op& op = list[i];
      if (op.kind == OpKind::Barrier) {
        ++barriers[static_cast<std::size_t>(r)];
        continue;
      }
      if (op.has_send()) {
        if (op.dst == r) {
          add(LintSeverity::Error, r, i,
              "self-send (blocking send to own rank deadlocks under "
              "rendezvous)");
        }
        check_tag(r, i, op.send_tag, "send");
        if (op.send_bytes == 0) ++report.zero_byte_sends;
        if (op.send_off != trace::kForeignOffset &&
            op.send_off + op.send_bytes > sched.nbytes) {
          add(LintSeverity::Error, r, i,
              "send interval [" + std::to_string(op.send_off) + "," +
                  std::to_string(op.send_off + op.send_bytes) +
                  ") exceeds the " + std::to_string(sched.nbytes) +
                  "-byte collective buffer");
        }
      }
      if (op.has_recv()) {
        if (op.src == r) {
          add(LintSeverity::Error, r, i,
              "self-receive (blocking receive from own rank can never be "
              "matched by this schedule shape)");
        }
        check_tag(r, i, op.recv_tag, "recv");
        if (op.recv_off != trace::kForeignOffset &&
            op.recv_off + op.recv_cap > sched.nbytes) {
          add(LintSeverity::Error, r, i,
              "receive interval [" + std::to_string(op.recv_off) + "," +
                  std::to_string(op.recv_off + op.recv_cap) +
                  ") exceeds the " + std::to_string(sched.nbytes) +
                  "-byte collective buffer");
        }
      }
    }
  }

  for (int r = 1; r < sched.nranks; ++r) {
    if (barriers[static_cast<std::size_t>(r)] != barriers[0]) {
      add(LintSeverity::Error, r, -1,
          "rank executes " + std::to_string(barriers[static_cast<std::size_t>(r)]) +
              " barrier(s) but rank 0 executes " + std::to_string(barriers[0]) +
              " (collective-order mismatch)");
    }
  }

  if (report.zero_byte_sends > 0) {
    add(LintSeverity::Warning, -1, -1,
        std::to_string(report.zero_byte_sends) +
            " zero-byte message(s) (legal, but pure overhead — the enclosed "
            "ring ships these for trailing empty chunks)");
  }
  if (dropped > 0) {
    report.findings.push_back(
        {LintSeverity::Warning, -1, -1,
         std::to_string(dropped) + " further finding(s) suppressed"});
  }
  return report;
}

// --- Symbolic resource-safety bounds -----------------------------------

namespace {

/// Bytes a message of size b parks in the eager buffer: b when it takes
/// the eager path (b <= threshold), nothing under rendezvous.
std::uint64_t eligible(std::uint64_t bytes, std::uint64_t threshold) {
  return bytes <= threshold ? bytes : 0;
}

/// Inbound eager bytes of ring rank `rel` in an n-rank ring over `layout`:
/// step i receives chunk (rel - i) mod n. The native ring receives at every
/// step; the tuned ring's non-recv_only special ranks skip the steps past
/// n - plan.step (their right neighbour already owns those chunks).
std::uint64_t ring_inbound(int rel, int n, const ChunkLayout& layout,
                           bool tuned, std::uint64_t threshold) {
  int last = n - 1;
  if (tuned) {
    const core::RingPlan plan = core::compute_ring_plan(rel, n);
    if (!plan.recv_only) last = n - plan.step;
  }
  std::uint64_t sum = 0;
  for (int i = 1; i <= last; ++i) {
    sum += eligible(layout.count(((rel - i) % n + n) % n), threshold);
  }
  return sum;
}

/// Inbound eager bytes of the binomial scatter: one message holding the
/// rank's whole subtree block (nothing for the relative root, and no
/// message at all when the block is empty).
std::uint64_t scatter_inbound(int rel, const ChunkLayout& layout,
                              std::uint64_t threshold) {
  if (rel == 0) return 0;
  return eligible(coll::scatter_block_bytes(rel, layout), threshold);
}

}  // namespace

bool eager_bound_checkable(fuzz::Variant v) noexcept {
  switch (v) {
    case fuzz::Variant::BcastBinomial:
    case fuzz::Variant::BcastScatterRingNative:
    case fuzz::Variant::BcastScatterRingTuned:
    case fuzz::Variant::AllgatherRingNative:
    case fuzz::Variant::AllgatherRingTuned:
    case fuzz::Variant::BcastHier:
      return true;
    default:
      return false;
  }
}

std::vector<std::uint64_t> eager_peak_bounds(const fuzz::FuzzCase& c,
                                             std::uint64_t eager_threshold) {
  const int P = c.nranks;
  const std::uint64_t thr = eager_threshold;
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(P), 0);
  switch (c.variant) {
    case fuzz::Variant::BcastBinomial:
      for (int r = 0; r < P; ++r) {
        if (rel_rank(r, c.root, P) != 0) {
          bounds[static_cast<std::size_t>(r)] = eligible(c.nbytes, thr);
        }
      }
      break;
    case fuzz::Variant::BcastScatterRingNative:
    case fuzz::Variant::BcastScatterRingTuned: {
      const ChunkLayout layout(c.nbytes, P);
      const bool tuned = c.variant == fuzz::Variant::BcastScatterRingTuned;
      for (int r = 0; r < P; ++r) {
        const int rel = rel_rank(r, c.root, P);
        bounds[static_cast<std::size_t>(r)] =
            scatter_inbound(rel, layout, thr) +
            ring_inbound(rel, P, layout, tuned, thr);
      }
      break;
    }
    case fuzz::Variant::AllgatherRingNative:
    case fuzz::Variant::AllgatherRingTuned: {
      const ChunkLayout layout(c.nbytes, P);
      const bool tuned = c.variant == fuzz::Variant::AllgatherRingTuned;
      for (int r = 0; r < P; ++r) {
        bounds[static_cast<std::size_t>(r)] =
            ring_inbound(rel_rank(r, c.root, P), P, layout, tuned, thr);
      }
      break;
    }
    case fuzz::Variant::BcastHier: {
      BSB_REQUIRE(!c.node_sizes.empty(),
                  "eager_peak_bounds: BcastHier case not normalized");
      const hier::Topology topo(c.node_sizes);
      BSB_REQUIRE(topo.nranks() == P,
                  "eager_peak_bounds: node shape / rank count mismatch");
      const int L = topo.num_nodes();
      const ChunkLayout layout(c.nbytes, L);
      const int root_node = topo.node_of(c.root);
      for (int r = 0; r < P; ++r) {
        const int node = topo.node_of(r);
        if (topo.leader_of(node, c.root) == r) {
          // Phase A: leaders scatter + ring over the L-node leader group,
          // whose relative root is the root's node index.
          if (L > 1) {
            const int lrel = rel_rank(node, root_node, L);
            bounds[static_cast<std::size_t>(r)] =
                scatter_inbound(lrel, layout, thr) +
                ring_inbound(lrel, L, layout, c.use_tuned_ring, thr);
          }
        } else {
          // Phase B: one full-buffer single-copy delivery from the leader.
          bounds[static_cast<std::size_t>(r)] = eligible(c.nbytes, thr);
        }
      }
      break;
    }
    default:
      BSB_ASSERT(false, "eager_peak_bounds: variant has no closed form");
  }
  return bounds;
}

ShmPoolReport verify_shm_pool(const trace::Schedule& sched,
                              const std::vector<int>& node_sizes, int root) {
  ShmPoolReport rep;
  BSB_REQUIRE(!node_sizes.empty(), "verify_shm_pool: empty node shape");
  const hier::Topology topo(node_sizes);
  BSB_REQUIRE(topo.nranks() == sched.nranks,
              "verify_shm_pool: node shape / schedule rank count mismatch");

  auto witness = [&](std::string what) {
    rep.ok = false;
    if (rep.witnesses.size() < 8) rep.witnesses.push_back(std::move(what));
  };

  const int N = topo.num_nodes();
  std::vector<std::uint64_t> node_bytes(static_cast<std::size_t>(N), 0);
  std::vector<std::uint64_t> node_msgs(static_cast<std::size_t>(N), 0);

  for (int r = 0; r < sched.nranks; ++r) {
    for (const Op& op : sched.ops[static_cast<std::size_t>(r)]) {
      if (!op.has_send() || op.send_tag != coll::tags::kHierFanout) continue;
      ++rep.fanout_msgs;
      const int node = topo.node_of(r);
      if (topo.node_of(op.dst) != node) {
        witness("fan-out message " + std::to_string(r) + " -> " +
                std::to_string(op.dst) + " crosses nodes " +
                std::to_string(node) + " -> " +
                std::to_string(topo.node_of(op.dst)) +
                ": the shm channel cannot carry it");
        continue;
      }
      if (topo.leader_of(node, root) != r) {
        witness("fan-out message from rank " + std::to_string(r) +
                " on node " + std::to_string(node) +
                ", which is led by rank " +
                std::to_string(topo.leader_of(node, root)));
      }
      node_bytes[static_cast<std::size_t>(node)] += op.send_bytes;
      ++node_msgs[static_cast<std::size_t>(node)];
    }
  }

  for (int n = 0; n < N; ++n) {
    const std::uint64_t want_msgs =
        static_cast<std::uint64_t>(topo.node_size(n)) - 1;
    const std::uint64_t want_bytes = want_msgs * sched.nbytes;
    rep.bound_node_bytes = std::max(rep.bound_node_bytes, want_bytes);
    rep.peak_node_bytes =
        std::max(rep.peak_node_bytes, node_bytes[static_cast<std::size_t>(n)]);
    if (node_msgs[static_cast<std::size_t>(n)] != want_msgs) {
      witness("node " + std::to_string(n) + " moves " +
              std::to_string(node_msgs[static_cast<std::size_t>(n)]) +
              " single-copy fan-out message(s); the pool is provisioned "
              "for node_size - 1 = " +
              std::to_string(want_msgs));
    } else if (node_bytes[static_cast<std::size_t>(n)] != want_bytes) {
      witness("node " + std::to_string(n) + " moves " +
              std::to_string(node_bytes[static_cast<std::size_t>(n)]) +
              " fan-out byte(s); the pool is provisioned for (node_size - "
              "1) * nbytes = " +
              std::to_string(want_bytes));
    }
  }
  return rep;
}

}  // namespace bsb::verify
