#include "verify/lint.hpp"

#include "coll/tags.hpp"
#include "comm/comm.hpp"

namespace bsb::verify {

namespace {

using trace::Op;
using trace::OpKind;

/// Cap on recorded findings: schedules reach millions of ops at large P and
/// a broken generator would otherwise flood the report.
constexpr std::size_t kMaxFindings = 64;

bool known_base_tag(int base) {
  return base >= coll::tags::kBcastBinomial &&
         base <= coll::tags::kBruckHierBcast;
}

}  // namespace

const char* to_string(LintSeverity s) noexcept {
  return s == LintSeverity::Error ? "error" : "warning";
}

std::string LintReport::to_string() const {
  std::string out;
  for (const LintFinding& f : findings) {
    out += "  [";
    out += verify::to_string(f.severity);
    out += "] ";
    if (f.rank >= 0) {
      out += "rank " + std::to_string(f.rank);
      if (f.op >= 0) out += " op " + std::to_string(f.op);
      out += ": ";
    }
    out += f.what + "\n";
  }
  return out;
}

LintReport lint_schedule(const trace::Schedule& sched) {
  LintReport report;
  std::size_t dropped = 0;

  auto add = [&](LintSeverity sev, int rank, int op, std::string what) {
    if (sev == LintSeverity::Error) report.ok = false;
    if (report.findings.size() >= kMaxFindings) {
      ++dropped;
      return;
    }
    report.findings.push_back({sev, rank, op, std::move(what)});
  };

  auto check_tag = [&](int rank, int op, int tag, const char* half) {
    if (tag < 0) {
      add(LintSeverity::Error, rank, op,
          std::string(half) + " tag " + std::to_string(tag) + " is negative");
      return;
    }
    const int context = tag / (kMaxUserTag + 1);
    const int base = tag % (kMaxUserTag + 1);
    // Valid: a registered per-algorithm tag, either bare or namespaced by a
    // SubComm context, or a SubComm dissemination-barrier tag (base ==
    // kMaxUserTag shifted into a context >= 1 namespace).
    const bool ok = known_base_tag(base) || (context >= 1 && base == kMaxUserTag);
    if (!ok) {
      add(LintSeverity::Warning, rank, op,
          std::string(half) + " tag " + std::to_string(tag) +
              " (context " + std::to_string(context) + ", base " +
              std::to_string(base) +
              ") is outside the registered tag space of coll/tags.hpp");
    }
  };

  std::vector<std::uint64_t> barriers(static_cast<std::size_t>(sched.nranks), 0);

  for (int r = 0; r < sched.nranks; ++r) {
    const auto& list = sched.ops[r];
    for (int i = 0; i < static_cast<int>(list.size()); ++i) {
      const Op& op = list[i];
      if (op.kind == OpKind::Barrier) {
        ++barriers[static_cast<std::size_t>(r)];
        continue;
      }
      if (op.has_send()) {
        if (op.dst == r) {
          add(LintSeverity::Error, r, i,
              "self-send (blocking send to own rank deadlocks under "
              "rendezvous)");
        }
        check_tag(r, i, op.send_tag, "send");
        if (op.send_bytes == 0) ++report.zero_byte_sends;
        if (op.send_off != trace::kForeignOffset &&
            op.send_off + op.send_bytes > sched.nbytes) {
          add(LintSeverity::Error, r, i,
              "send interval [" + std::to_string(op.send_off) + "," +
                  std::to_string(op.send_off + op.send_bytes) +
                  ") exceeds the " + std::to_string(sched.nbytes) +
                  "-byte collective buffer");
        }
      }
      if (op.has_recv()) {
        if (op.src == r) {
          add(LintSeverity::Error, r, i,
              "self-receive (blocking receive from own rank can never be "
              "matched by this schedule shape)");
        }
        check_tag(r, i, op.recv_tag, "recv");
        if (op.recv_off != trace::kForeignOffset &&
            op.recv_off + op.recv_cap > sched.nbytes) {
          add(LintSeverity::Error, r, i,
              "receive interval [" + std::to_string(op.recv_off) + "," +
                  std::to_string(op.recv_off + op.recv_cap) +
                  ") exceeds the " + std::to_string(sched.nbytes) +
                  "-byte collective buffer");
        }
      }
    }
  }

  for (int r = 1; r < sched.nranks; ++r) {
    if (barriers[static_cast<std::size_t>(r)] != barriers[0]) {
      add(LintSeverity::Error, r, -1,
          "rank executes " + std::to_string(barriers[static_cast<std::size_t>(r)]) +
              " barrier(s) but rank 0 executes " + std::to_string(barriers[0]) +
              " (collective-order mismatch)");
    }
  }

  if (report.zero_byte_sends > 0) {
    add(LintSeverity::Warning, -1, -1,
        std::to_string(report.zero_byte_sends) +
            " zero-byte message(s) (legal, but pure overhead — the enclosed "
            "ring ships these for trailing empty chunks)");
  }
  if (dropped > 0) {
    report.findings.push_back(
        {LintSeverity::Warning, -1, -1,
         std::to_string(dropped) + " further finding(s) suppressed"});
  }
  return report;
}

}  // namespace bsb::verify
