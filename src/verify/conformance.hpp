// Closed-form expectations for every broadcast/allgather variant: total
// message counts (core/transfer_analysis plus per-variant arithmetic),
// exact redundant-transfer accounting (the paper's excess: the enclosed
// ring re-ships bytes the receiver already owns after the binomial
// scatter), and each variant's initial-ownership contract. The verifier
// checks recorded schedules against these; a mismatch is a conformance
// failure, never a tolerance.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "bsbutil/intervals.hpp"
#include "fuzz/case.hpp"
#include "trace/reduce_flow.hpp"

namespace bsb::verify {

struct TransferExpectation {
  /// Total send halves across all ranks; nullopt when the variant has no
  /// closed form (none today — every variant is covered).
  std::optional<std::uint64_t> total_sends;
  /// Payload bytes delivered to ranks that already held them. For the
  /// tuned paths this is 0 by construction; for the enclosed (native) ring
  /// and the recursive-doubling allgather running over binomial-scatter
  /// output it is exactly sum_r(block_bytes(r) - own_chunk_bytes(r)).
  std::optional<std::uint64_t> redundant_bytes;
  /// Nonempty messages whose payload was entirely already held.
  std::optional<std::uint64_t> redundant_msgs;
  /// When true, per-rank send/recv counts must match the RingPlan closed
  /// forms (tuned_sends / tuned_recvs).
  bool tuned_ring_per_rank = false;
  /// When true, every rank must send and receive exactly P-1 messages
  /// (the enclosed ring's shape).
  bool native_ring_per_rank = false;
  /// Exact (sends, recvs) per absolute rank; empty means "not constrained
  /// this way". Used by the reduction family and allgatherv, whose per-rank
  /// shapes mix ring steps with ancestor deliveries and so fit neither of
  /// the two boolean shapes above.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> per_rank_counts;
};

/// Closed-form expectation for the case's recorded schedule.
TransferExpectation expected_transfers(const fuzz::FuzzCase& c);

/// Bytes each rank holds valid BEFORE the collective runs — the variant's
/// ownership contract (mirrors fuzz's fill_initial; the seeded cross-check
/// test keeps the two in sync).
std::vector<IntervalSet> initial_coverage(const fuzz::FuzzCase& c);

/// False for variants whose spans live in scratch memory (Bruck rotation),
/// where offsets cannot be dataflow-validated, and for the reduction
/// family, whose payloads are partial sums rather than copies of source
/// bytes (those are validated by the reduce-flow engine instead).
bool dataflow_checkable(fuzz::Variant v) noexcept;

/// True for the reduction family: the recorded schedule must satisfy the
/// contributor-interval rules of trace::validate_reduce_flow.
bool reduction_checkable(fuzz::Variant v) noexcept;

/// Options driving the reduce-flow validation of this case's schedule:
/// chunk grid, root, and the relative chunk range each absolute rank must
/// hold fully reduced at the end. Requires a reduction-family case with
/// nbytes > 0.
trace::ReduceFlowOptions reduce_flow_options(const fuzz::FuzzCase& c);

/// ceil(log2(n)) for n >= 1.
int ceil_log2(std::uint64_t n) noexcept;

}  // namespace bsb::verify
