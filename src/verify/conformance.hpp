// Closed-form expectations for every broadcast/allgather variant: total
// message counts (core/transfer_analysis plus per-variant arithmetic),
// exact redundant-transfer accounting (the paper's excess: the enclosed
// ring re-ships bytes the receiver already owns after the binomial
// scatter), and each variant's initial-ownership contract. The verifier
// checks recorded schedules against these; a mismatch is a conformance
// failure, never a tolerance.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bsbutil/intervals.hpp"
#include "fuzz/case.hpp"

namespace bsb::verify {

struct TransferExpectation {
  /// Total send halves across all ranks; nullopt when the variant has no
  /// closed form (none today — every variant is covered).
  std::optional<std::uint64_t> total_sends;
  /// Payload bytes delivered to ranks that already held them. For the
  /// tuned paths this is 0 by construction; for the enclosed (native) ring
  /// and the recursive-doubling allgather running over binomial-scatter
  /// output it is exactly sum_r(block_bytes(r) - own_chunk_bytes(r)).
  std::optional<std::uint64_t> redundant_bytes;
  /// Nonempty messages whose payload was entirely already held.
  std::optional<std::uint64_t> redundant_msgs;
  /// When true, per-rank send/recv counts must match the RingPlan closed
  /// forms (tuned_sends / tuned_recvs).
  bool tuned_ring_per_rank = false;
  /// When true, every rank must send and receive exactly P-1 messages
  /// (the enclosed ring's shape).
  bool native_ring_per_rank = false;
};

/// Closed-form expectation for the case's recorded schedule.
TransferExpectation expected_transfers(const fuzz::FuzzCase& c);

/// Bytes each rank holds valid BEFORE the collective runs — the variant's
/// ownership contract (mirrors fuzz's fill_initial; the seeded cross-check
/// test keeps the two in sync).
std::vector<IntervalSet> initial_coverage(const fuzz::FuzzCase& c);

/// False for variants whose spans live in scratch memory (Bruck rotation),
/// where offsets cannot be dataflow-validated.
bool dataflow_checkable(fuzz::Variant v) noexcept;

/// ceil(log2(n)) for n >= 1.
int ceil_log2(std::uint64_t n) noexcept;

}  // namespace bsb::verify
