#include "netsim/costmodel.hpp"

#include "bsbutil/error.hpp"
#include "bsbutil/format.hpp"

namespace bsb::netsim {

void CostModel::validate() const {
  BSB_REQUIRE(alpha_intra >= 0 && alpha_inter >= 0, "CostModel: negative latency");
  BSB_REQUIRE(o_send >= 0 && o_recv >= 0, "CostModel: negative overhead");
  BSB_REQUIRE(bw_flow_intra > 0 && bw_flow_inter > 0, "CostModel: flow caps must be positive");
  BSB_REQUIRE(bw_membus > 0 && bw_nic > 0, "CostModel: resource caps must be positive");
  BSB_REQUIRE(bw_fabric >= 0, "CostModel: fabric cap must be nonnegative");
  BSB_REQUIRE(alpha_shm >= 0, "CostModel: negative shm latency");
  BSB_REQUIRE(bw_flow_shm > 0 && bw_shm_node > 0,
              "CostModel: shm caps must be positive");
  BSB_REQUIRE(copy_bw > 0, "CostModel: copy_bw must be positive");
  BSB_REQUIRE(barrier_cost >= 0, "CostModel: negative barrier cost");
}

CostModel CostModel::hornet() { return CostModel{}; }

CostModel CostModel::laki() {
  CostModel m;
  m.alpha_intra = 0.6e-6;
  m.alpha_inter = 2.6e-6;
  m.o_send = 0.5e-6;
  m.o_recv = 0.5e-6;
  m.bw_flow_intra = 4e9;
  m.bw_flow_inter = 3e9;
  m.bw_membus = 12e9;
  m.bw_nic = 3.2e9;   // QDR InfiniBand-ish
  m.eager_threshold = 12288;
  m.copy_bw = 5e9;
  return m;
}

std::string CostModel::describe() const {
  return "alpha " + format_time(alpha_intra) + "/" + format_time(alpha_inter) +
         " (intra/inter), o " + format_time(o_send) + "+" + format_time(o_recv) +
         ", flow " + format_mbps(bw_flow_intra, 0) + "/" +
         format_mbps(bw_flow_inter, 0) + " MB/s, membus " +
         format_mbps(bw_membus, 0) + " MB/s, nic " + format_mbps(bw_nic, 0) +
         " MB/s, eager<=" + std::to_string(eager_threshold) + "B (credits " +
         (eager_credits > 0 ? std::to_string(eager_credits) : "unlimited") + ")" +
         (shm_tag >= 0 ? ", shm tag " + std::to_string(shm_tag) + " @ " +
                             format_mbps(bw_shm_node, 0) + " MB/s/node"
                       : "");
}

}  // namespace bsb::netsim
