// Max-min fair fluid bandwidth sharing. Every in-flight transfer is a flow
// crossing a set of capacity-limited resources (per-node memory bus, NIC-in,
// NIC-out, optional global fabric) plus a private per-flow streaming cap.
// Rates are the max-min fair allocation (progressive filling): repeatedly
// give every unfrozen flow an equal share of its tightest resource, freeze
// the flows on the bottleneck, and redistribute what is left.
#pragma once

#include <cstdint>
#include <vector>

#include "bsbutil/error.hpp"

namespace bsb::netsim {

class FluidNetwork {
 public:
  /// `capacities[r]` is resource r's bandwidth in bytes/second.
  explicit FluidNetwork(std::vector<double> capacities);

  /// Add a flow of `bytes` (> 0) crossing `resources` (indices into the
  /// capacity vector; may be empty), privately capped at `cap` B/s.
  /// Returns the flow id. Rates are stale until recompute_rates().
  int add_flow(double bytes, std::vector<int> resources, double cap);

  /// Remove a completed flow. Rates are stale until recompute_rates().
  void remove_flow(int id);

  /// Max-min fair allocation over all active flows.
  void recompute_rates();

  /// Drain all flows by `dt` seconds at current rates.
  void advance(double dt);

  /// Seconds until the next flow completes at current rates
  /// (infinity when no flows are active).
  double time_to_next_completion() const;

  /// Ids of flows whose remaining bytes have reached zero.
  std::vector<int> completed_flows() const;

  /// Active flows with bytes left but rate <= 0: with no other event
  /// pending these can never finish, and time_to_next_completion() returns
  /// infinity. The replay engine turns that into a diagnostic instead of a
  /// silent hang.
  std::vector<int> stalled_flows() const;

  double rate_of(int id) const;
  double remaining_of(int id) const;
  int active_count() const noexcept { return active_; }

 private:
  struct Flow {
    double remaining = 0;
    double rate = 0;
    double cap = 0;
    std::vector<int> resources;
    bool active = false;
  };

  std::vector<double> capacities_;
  std::vector<Flow> flows_;
  std::vector<int> free_ids_;
  int active_ = 0;
};

}  // namespace bsb::netsim
