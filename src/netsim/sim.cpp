#include "netsim/sim.hpp"

#include "trace/match.hpp"

namespace bsb::netsim {

SimResult simulate_schedule(const trace::Schedule& base, const SimSpec& spec) {
  BSB_REQUIRE(spec.iters >= 1, "simulate_schedule: iters >= 1");
  SimResult out;
  out.traffic = trace::traffic_stats(trace::match_schedule(base), spec.topo);

  const trace::Schedule full = base.replicate(spec.iters);
  const trace::MatchResult m = trace::match_schedule(full);
  out.replay = replay_schedule(full, m, spec.topo, spec.cost);
  out.seconds = out.replay.makespan;
  if (out.seconds > 0) {
    out.bandwidth = static_cast<double>(base.nbytes) * spec.iters / out.seconds;
    out.throughput = static_cast<double>(spec.iters) / out.seconds;
  }
  return out;
}

SimResult simulate_program(int nranks, std::uint64_t nbytes,
                           const trace::RankProgram& program, const SimSpec& spec) {
  return simulate_schedule(trace::record_schedule(nranks, nbytes, program), spec);
}

}  // namespace bsb::netsim
