#include "netsim/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "bsbutil/error.hpp"
#include "bsbutil/format.hpp"

namespace bsb::netsim {

namespace {
char glyph(trace::OpKind k) {
  switch (k) {
    case trace::OpKind::Send: return 's';
    case trace::OpKind::Recv: return 'r';
    case trace::OpKind::SendRecv: return 'x';
    case trace::OpKind::Barrier: return 'B';
  }
  return '?';
}
}  // namespace

std::string render_timeline(const trace::Schedule& sched, const ReplayResult& result,
                            int width, int max_ranks) {
  BSB_REQUIRE(width >= 8, "render_timeline: width too small");
  BSB_REQUIRE(static_cast<int>(result.op_complete.size()) == sched.nranks,
              "render_timeline: replay result does not match schedule");
  const double span = result.makespan > 0 ? result.makespan : 1.0;
  const int shown = std::min(sched.nranks, max_ranks);

  std::string out;
  out += "timeline over " + format_time(result.makespan) +
         "  (s=send r=recv x=sendrecv B=barrier .=done)\n";
  for (int r = 0; r < shown; ++r) {
    std::string row(width, '.');
    const auto& completes = result.op_complete[r];
    double prev = 0;
    for (std::size_t i = 0; i < completes.size(); ++i) {
      const double lo = prev, hi = completes[i];
      prev = hi;
      if (hi <= lo) continue;
      int c0 = static_cast<int>(lo / span * width);
      int c1 = static_cast<int>(hi / span * width);
      c0 = std::clamp(c0, 0, width - 1);
      c1 = std::clamp(c1, c0, width - 1);
      for (int c = c0; c <= c1; ++c) row[c] = glyph(sched.ops[r][i].kind);
    }
    char label[16];
    std::snprintf(label, sizeof label, "p%-3d |", r);
    out += label + row + "|\n";
  }
  if (shown < sched.nranks) {
    out += "  ... (" + std::to_string(sched.nranks - shown) + " more ranks)\n";
  }
  // Per-level flow attribution: which hierarchy level carried the bytes.
  out += "flows: intra " + std::to_string(result.intra_messages) + " msgs/" +
         std::to_string(result.intra_bytes) + " B, inter " +
         std::to_string(result.inter_messages) + " msgs/" +
         std::to_string(result.inter_bytes) + " B, shm " +
         std::to_string(result.shm_messages) + " msgs/" +
         std::to_string(result.shm_bytes) + " B\n";
  return out;
}

}  // namespace bsb::netsim
