// Discrete-event replay of a matched communication schedule under a
// CostModel on a Topology. Each rank is a sequential actor walking its op
// list; transfers become fluid flows with max-min fair bandwidth sharing;
// the result is the virtual-time completion profile, from which the
// benchmark harnesses derive broadcast bandwidth exactly the way the paper
// measures it (iterations / wall time).
//
// Protocol semantics mirrored from real MPI stacks (and from mpisim):
//  * every op charges host overhead (o_send / o_recv) on the rank's CPU;
//  * eager messages (<= eager_threshold) free the sender at post time —
//    this is what lets tuned send-only ranks pipeline into the next
//    broadcast iteration;
//  * rendezvous messages handshake (2 x alpha) once both sides have posted
//    and block the sender until the data drains;
//  * eager messages that land before the receive is posted pay an
//    unexpected-message copy on the receiver.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bsbutil/error.hpp"
#include "comm/topology.hpp"
#include "netsim/costmodel.hpp"
#include "trace/match.hpp"
#include "trace/schedule.hpp"

namespace bsb::netsim {

/// Replay-level failure (deadlocked schedule, inconsistent match data).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error(what) {}
};

struct ReplayResult {
  /// Virtual time at which the last rank finished its op list.
  double makespan = 0;
  /// Per-rank finish times.
  std::vector<double> rank_finish;
  /// Completion time of every op: op_complete[rank][op]. Ops run
  /// back-to-back, so op i spans (op_complete[i-1], op_complete[i]].
  std::vector<std::vector<double>> op_complete;
  /// Per-rank CPU-busy seconds (o_send/o_recv, eager injection and
  /// copy-out) — the "host processing" the paper's optimization saves.
  std::vector<double> cpu_busy;
  /// Sum of cpu_busy over all ranks.
  double total_cpu_busy = 0;
  /// Matched messages replayed.
  std::uint64_t messages = 0;
  /// Messages that carried payload (started a fluid flow).
  std::uint64_t flows_started = 0;
  /// Engine effort indicator: rate recomputations performed.
  std::uint64_t rate_recomputes = 0;
  /// Per-level flow attribution (message counts / payload bytes): which
  /// hierarchy level carried the traffic. `intra` is the membus copy path,
  /// `inter` the NIC path, `shm` the single-copy channel (CostModel::
  /// shm_tag). intra + inter + shm == messages.
  std::uint64_t intra_messages = 0, inter_messages = 0, shm_messages = 0;
  std::uint64_t intra_bytes = 0, inter_bytes = 0, shm_bytes = 0;
};

/// Replay `sched` (with its match result) mapped onto `topo` under `cost`.
/// Throws SimError if the schedule cannot run to completion.
ReplayResult replay_schedule(const trace::Schedule& sched, const trace::MatchResult& m,
                             const Topology& topo, const CostModel& cost);

/// One collective instance in a concurrent replay: a communicator-sized
/// schedule whose local ranks are mapped onto topology ranks, arriving at a
/// virtual time. Jobs mapped onto overlapping rank sets contend for the
/// shared per-node memory buses and NICs (and the eager flow-control
/// credits of each (src, dst) topology channel); host overhead is charged
/// per job lane, so a rank serving two collectives at once models a
/// progress thread per communicator rather than a serialized main thread.
struct ReplayJob {
  const trace::Schedule* sched = nullptr;
  const trace::MatchResult* match = nullptr;
  /// Virtual time at which this job's ranks start working (>= 0).
  double arrival = 0;
  /// rank_map[local] = topology rank. Distinct within the job. Empty means
  /// identity, which requires sched->nranks == topo.nranks().
  std::vector<int> rank_map;
};

struct ConcurrentReplayResult {
  /// Virtual time at which the last lane of any job finished.
  double makespan = 0;
  /// Per-job completion (absolute virtual time of the job's last rank).
  std::vector<double> job_finish;
  /// Per-job completion latency: job_finish[j] - jobs[j].arrival.
  std::vector<double> job_latency;
  /// Matched messages replayed, over all jobs.
  std::uint64_t messages = 0;
  /// Messages that carried payload (started a fluid flow).
  std::uint64_t flows_started = 0;
  /// Engine effort indicator: rate recomputations performed.
  std::uint64_t rate_recomputes = 0;
  /// Per-level flow attribution over all jobs (see ReplayResult).
  std::uint64_t intra_messages = 0, inter_messages = 0, shm_messages = 0;
  std::uint64_t intra_bytes = 0, inter_bytes = 0, shm_bytes = 0;
};

/// Replay many schedules concurrently on one topology. Jobs become active
/// at their arrival times and share the network resources; the per-job
/// completion latencies are what a serving benchmark reports as p50/p99.
/// Deterministic for a fixed job list. Throws SimError if any schedule
/// cannot run to completion (or if all in-flight flows stall at zero rate).
ConcurrentReplayResult replay_concurrent(std::span<const ReplayJob> jobs,
                                         const Topology& topo, const CostModel& cost);

}  // namespace bsb::netsim
