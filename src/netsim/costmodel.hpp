// Cost model for the flow-level cluster simulator: LogGP-style per-message
// costs plus shared-resource bandwidth, with eager/rendezvous protocol
// switching. Defaults approximate the paper's Cray XC40 ("Hornet") node:
// dual-socket Haswell, 24 cores, Aries NIC — the absolute numbers are
// order-of-magnitude realistic, and the EXPERIMENTS are about the RELATIVE
// behaviour of native vs tuned schedules under them.
#pragma once

#include <cstddef>
#include <string>

namespace bsb::netsim {

struct CostModel {
  // --- per-message wire latency (seconds) -------------------------------
  double alpha_intra = 0.4e-6;   // shared-memory handoff
  double alpha_inter = 1.8e-6;   // NIC + fabric traversal

  // --- host CPU time per posted operation (seconds) ---------------------
  double o_send = 0.35e-6;
  double o_recv = 0.35e-6;

  // --- per-flow streaming caps (bytes/second) ----------------------------
  double bw_flow_intra = 6e9;    // one memcpy stream
  double bw_flow_inter = 8.5e9;  // one stream through the NIC

  // --- shared resources (bytes/second) -----------------------------------
  // All concurrent intra-node flows of one node share its memory bus; all
  // inter-node flows share the node's NIC, per direction. Fair sharing is
  // max-min. This is where "fewer messages -> more bandwidth each" comes
  // from — the effect the paper's optimization banks on.
  double bw_membus = 20e9;       // per node
  double bw_nic = 10e9;          // per node, each direction
  double bw_fabric = 0;          // aggregate fabric cap; 0 = unlimited

  // --- XPMEM-style single-copy intra-node channel -------------------------
  // Intra-node messages whose schedule tag equals `shm_tag` model an
  // attached-page single-copy transfer (the hier broadcast's fan-out): the
  // receiver streams straight out of the sender's exported pages, so the
  // sender is freed at post time and NO per-receiver serialization, eager
  // buffering, injection copy or copy-out happens. The flows share a
  // per-node shm resource distinct from the membus and the NIC — one
  // memory-system traversal per byte instead of the two a copy-in/copy-out
  // path pays, hence the default aggregate is twice bw_membus.
  double alpha_shm = 0.25e-6;    // page attach + handoff latency
  double bw_flow_shm = 10e9;     // one single-copy stream
  double bw_shm_node = 40e9;     // per-node aggregate over all shm flows
  /// Schedule tag routed onto the shm channel; -1 disables it (the
  /// resource is then not even allocated, keeping replays bit-identical
  /// to the pre-shm engine).
  int shm_tag = -1;

  // --- protocol -----------------------------------------------------------
  /// Messages at most this size are eager: the sender deposits and moves
  /// on. Larger messages rendezvous: RTS/CTS handshake (one alpha each
  /// way), and the sender stays blocked until the data has drained.
  /// 8 KiB matches Cray MPI's default small-message cutoff.
  std::size_t eager_threshold = 8192;
  /// CPU copy bandwidth for the eager path (LogGP's per-byte gap G): the
  /// sender's injection memcpy and the receiver's copy-out are charged on
  /// the respective CPU at this rate. Eager copies are CPU-serialized per
  /// rank — they do NOT linger on the shared fluid resources the way
  /// rendezvous DMA streams do.
  double copy_bw = 8e9;
  /// Eager flow control: at most this many eager messages may sit
  /// unconsumed per ordered (src, dst) pair; further eager sends block
  /// until the receiver copies one out. This is the credit/token scheme
  /// real MPI stacks use to bound unexpected-message memory, and it bounds
  /// how far send-only ranks can run ahead. <= 0 means unlimited.
  int eager_credits = 16;

  /// Cost of one barrier synchronization after the last rank arrives.
  double barrier_cost = 2.0e-6;

  /// Sanity-check all fields; throws PreconditionError on nonsense.
  void validate() const;

  std::string describe() const;

  /// Hornet-like defaults (the values above).
  static CostModel hornet();

  /// Laki-like (NEC Nehalem + InfiniBand): slower NIC, higher latency.
  static CostModel laki();

  double alpha(bool inter) const noexcept { return inter ? alpha_inter : alpha_intra; }
  double flow_cap(bool inter) const noexcept {
    return inter ? bw_flow_inter : bw_flow_intra;
  }
};

}  // namespace bsb::netsim
