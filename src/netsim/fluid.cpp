#include "netsim/fluid.hpp"

#include <algorithm>
#include <limits>

namespace bsb::netsim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
// Flows whose remaining bytes drop below this are complete: one microbyte
// is far below any meaningful payload and forgiving of time-granularity
// rounding in the event engine.
constexpr double kByteEps = 1e-6;
}  // namespace

FluidNetwork::FluidNetwork(std::vector<double> capacities)
    : capacities_(std::move(capacities)) {
  for (double c : capacities_) BSB_REQUIRE(c > 0, "FluidNetwork: capacities must be positive");
}

int FluidNetwork::add_flow(double bytes, std::vector<int> resources, double cap) {
  BSB_REQUIRE(bytes > 0, "FluidNetwork: flows carry at least one byte");
  BSB_REQUIRE(cap > 0, "FluidNetwork: per-flow cap must be positive");
  for (int r : resources) {
    BSB_REQUIRE(r >= 0 && r < static_cast<int>(capacities_.size()),
                "FluidNetwork: resource index out of range");
  }
  Flow f;
  f.remaining = bytes;
  f.cap = cap;
  f.resources = std::move(resources);
  f.active = true;
  int id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    flows_[id] = std::move(f);
  } else {
    id = static_cast<int>(flows_.size());
    flows_.push_back(std::move(f));
  }
  ++active_;
  return id;
}

void FluidNetwork::remove_flow(int id) {
  BSB_REQUIRE(id >= 0 && id < static_cast<int>(flows_.size()) && flows_[id].active,
              "FluidNetwork: removing an inactive flow");
  flows_[id].active = false;
  flows_[id].resources.clear();
  free_ids_.push_back(id);
  --active_;
}

void FluidNetwork::recompute_rates() {
  // Progressive filling. `residual[r]` is the capacity not yet claimed by
  // frozen flows; `users[r]` counts unfrozen flows crossing r.
  std::vector<double> residual = capacities_;
  std::vector<int> users(capacities_.size(), 0);
  std::vector<int> unfrozen;
  for (int i = 0; i < static_cast<int>(flows_.size()); ++i) {
    if (!flows_[i].active) continue;
    unfrozen.push_back(i);
    for (int r : flows_[i].resources) ++users[r];
  }

  while (!unfrozen.empty()) {
    // The share every remaining flow could get from its tightest resource.
    double s = kInf;
    for (std::size_t r = 0; r < residual.size(); ++r) {
      if (users[r] > 0) s = std::min(s, residual[r] / users[r]);
    }
    for (int i : unfrozen) s = std::min(s, flows_[i].cap);
    BSB_ASSERT(s < kInf, "FluidNetwork: unbounded share for capped flows");

    // Freeze flows limited by s: those whose cap == s, and those crossing a
    // resource whose fair share == s. Decide on a snapshot first, then
    // apply, so one freeze does not distort the test for its peers.
    std::vector<int> next, frozen;
    for (int i : unfrozen) {
      const Flow& f = flows_[i];
      bool limited = f.cap <= s * (1 + kEps);
      if (!limited) {
        for (int r : f.resources) {
          if (residual[r] / users[r] <= s * (1 + kEps)) {
            limited = true;
            break;
          }
        }
      }
      (limited ? frozen : next).push_back(i);
    }
    BSB_ASSERT(!frozen.empty(), "FluidNetwork: progressive filling made no progress");
    for (int i : frozen) {
      Flow& f = flows_[i];
      // A flow frozen because its tightest resource's fair share is within
      // kEps BELOW s must not be granted the full s — across many users
      // those epsilons add up to real oversubscription. Bound the rate by
      // the flow's live tightest-resource share; applied sequentially this
      // guarantees sum(rates) <= capacity on every resource by
      // construction (each user takes at most residual/users before being
      // discounted). On exact bottlenecks the share equals s, so the
      // allocation is unchanged.
      double share = std::min(s, f.cap);
      for (int r : f.resources) share = std::min(share, residual[r] / users[r]);
      f.rate = std::max(share, 0.0);
      for (int r : f.resources) {
        residual[r] -= f.rate;
        if (residual[r] < 0) residual[r] = 0;  // fp dust only, by the bound
        --users[r];
      }
    }
    unfrozen = std::move(next);
  }
}

void FluidNetwork::advance(double dt) {
  BSB_REQUIRE(dt >= 0, "FluidNetwork: cannot advance backwards");
  if (dt == 0) return;
  for (Flow& f : flows_) {
    if (!f.active) continue;
    f.remaining -= f.rate * dt;
    if (f.remaining < kByteEps) f.remaining = 0;
  }
}

double FluidNetwork::time_to_next_completion() const {
  double t = kInf;
  for (const Flow& f : flows_) {
    if (!f.active) continue;
    if (f.rate <= 0) continue;  // cannot finish; caller recomputes rates
    t = std::min(t, f.remaining / f.rate);
  }
  return t;
}

std::vector<int> FluidNetwork::stalled_flows() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(flows_.size()); ++i) {
    const Flow& f = flows_[i];
    if (f.active && f.remaining > 0 && f.rate <= 0) out.push_back(i);
  }
  return out;
}

std::vector<int> FluidNetwork::completed_flows() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(flows_.size()); ++i) {
    if (flows_[i].active && flows_[i].remaining <= 0) out.push_back(i);
  }
  return out;
}

double FluidNetwork::rate_of(int id) const {
  BSB_REQUIRE(id >= 0 && id < static_cast<int>(flows_.size()) && flows_[id].active,
              "FluidNetwork: rate_of inactive flow");
  return flows_[id].rate;
}

double FluidNetwork::remaining_of(int id) const {
  BSB_REQUIRE(id >= 0 && id < static_cast<int>(flows_.size()) && flows_[id].active,
              "FluidNetwork: remaining_of inactive flow");
  return flows_[id].remaining;
}

}  // namespace bsb::netsim
