// One-call simulation pipeline: record a collective's schedule, replicate
// it for the measurement loop, match, replay under a cost model, and report
// bandwidth — the paper's metric (bytes broadcast per second of virtual
// time across `iters` back-to-back operations, one barrier up front).
#pragma once

#include <cstdint>

#include "comm/topology.hpp"
#include "netsim/costmodel.hpp"
#include "netsim/replay.hpp"
#include "trace/counters.hpp"
#include "trace/record.hpp"
#include "trace/schedule.hpp"

namespace bsb::netsim {

struct SimSpec {
  Topology topo;
  CostModel cost = CostModel::hornet();
  /// Back-to-back repetitions of the collective (the paper uses 100).
  int iters = 1;
};

struct SimResult {
  /// Virtual seconds for all iterations.
  double seconds = 0;
  /// nbytes * iters / seconds — the paper's "broadcast bandwidth".
  double bandwidth = 0;
  /// Collectives completed per second (the paper's Fig. 7 "throughput").
  double throughput = 0;
  /// Traffic of ONE iteration, split intra/inter-node.
  trace::TrafficStats traffic;
  ReplayResult replay;
};

/// Replay `base` (one iteration of a collective over base.nbytes bytes)
/// `spec.iters` times back-to-back on the given cluster.
SimResult simulate_schedule(const trace::Schedule& base, const SimSpec& spec);

/// Record `program` for (nranks, nbytes) and simulate it.
SimResult simulate_program(int nranks, std::uint64_t nbytes,
                           const trace::RankProgram& program, const SimSpec& spec);

}  // namespace bsb::netsim
