// ASCII Gantt rendering of a replayed schedule: one row per rank, time on
// the x-axis, a character per op kind. Makes the tuned ring's behaviour
// visible at a glance — send-only ranks (all 's') finish early, the rank
// left of the root ('r' to the end) carries the critical receive chain.
#pragma once

#include <string>

#include "netsim/replay.hpp"
#include "trace/schedule.hpp"

namespace bsb::netsim {

/// Render the per-rank op timeline of a replay. `width` interior columns
/// cover [0, makespan]; each cell shows the op occupying that instant:
/// 's' send, 'r' recv, 'x' sendrecv, 'B' barrier, '.' finished. Rows are
/// truncated to the first `max_ranks` ranks when the group is larger.
std::string render_timeline(const trace::Schedule& sched, const ReplayResult& result,
                            int width = 72, int max_ranks = 32);

}  // namespace bsb::netsim
