#include "netsim/replay.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>

#include "netsim/fluid.hpp"

namespace bsb::netsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-12;  // sub-picosecond slack for comparisons

enum class EventKind : std::uint8_t { RankWake, FlowStart, CreditRelease };

struct Event {
  double t;
  std::uint64_t seq;  // deterministic FIFO tie-break
  EventKind kind;
  int id;  // rank (RankWake) or message (FlowStart)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

enum class Phase : std::uint8_t { Start, AfterBusy, Blocked };

struct RankSim {
  int pc = 0;
  Phase phase = Phase::Start;
  double ready_at = 0;  // guards against premature (spurious) wakes
  int barriers_passed = 0;
  bool done = false;
  double finish = 0;
  // posting progress of the CURRENT op (reset on advance)
  bool cur_send_posted = false;
  bool cur_recv_posted = false;
};

struct MsgSim {
  double bytes = 0;
  bool inter = false;
  bool eager = true;
  double send_posted = -1;
  double recv_posted = -1;
  double delivered = -1;
  double recv_complete = -1;
  int flow_id = -1;
  bool flow_scheduled = false;   // rendezvous FlowStart event pushed
  bool credit_waiting = false;   // queued for an eager flow-control credit
  bool credit_granted = false;   // handed a credit by a release
  bool credit_released = false;  // its credit has been returned
};

struct BarrierGen {
  int arrived = 0;
  double last_arrival = 0;
  bool released = false;
  double release_time = 0;
};

class Engine {
 public:
  Engine(const trace::Schedule& sched, const trace::MatchResult& m,
         const Topology& topo, const CostModel& cost)
      : sched_(sched), match_(m), topo_(topo), cost_(cost),
        fluid_(build_capacities(topo, cost)) {
    cost.validate();
    BSB_REQUIRE(topo.nranks() == sched.nranks,
                "replay: topology size != schedule size");
    ranks_.resize(sched.nranks);
    cpu_busy_.resize(sched.nranks, 0.0);
    op_complete_.resize(sched.nranks);
    for (int r = 0; r < sched.nranks; ++r) {
      op_complete_[r].resize(sched.ops[r].size(), 0.0);
    }
    msgs_.resize(m.msgs.size());
    for (std::size_t i = 0; i < m.msgs.size(); ++i) {
      const trace::MatchedMsg& mm = m.msgs[i];
      msgs_[i].bytes = static_cast<double>(mm.bytes);
      msgs_[i].inter = !topo.same_node(mm.src, mm.dst);
      msgs_[i].eager = mm.bytes <= cost.eager_threshold;
    }
  }

  ReplayResult run() {
    for (int r = 0; r < sched_.nranks; ++r) push_event(0.0, EventKind::RankWake, r);

    // Defensive livelock guard: a healthy replay processes a small constant
    // number of events per op/message; far beyond that means engine bug.
    const std::uint64_t iter_cap =
        1000 * (sched_.total_ops() + msgs_.size()) + 100000;
    std::uint64_t iter = 0;

    while (true) {
      if (++iter > iter_cap) {
        throw SimError("replay: event-loop iteration cap exceeded at t=" +
                       std::to_string(now_) + " (events=" +
                       std::to_string(events_.size()) + ", active flows=" +
                       std::to_string(fluid_.active_count()) +
                       ") — engine livelock; " + diagnose_deadlock());
      }
      const double t_event = events_.empty() ? kInf : events_.top().t;
      double t_flow =
          fluid_.active_count() ? now_ + fluid_.time_to_next_completion() : kInf;
      if (t_event == kInf && t_flow == kInf) break;

      // Floating-point guard: when the next completion is closer than one
      // ulp of `now_`, "now_ + ttc == now_" and time would stop advancing.
      // Bump the target by a few ulps; the flow's remaining bytes then
      // underflow the clamp in FluidNetwork::advance and it completes.
      if (t_flow != kInf) {
        const double min_step =
            4 * std::numeric_limits<double>::epsilon() * std::max(now_, 1e-9);
        t_flow = std::max(t_flow, now_ + min_step);
      }

      if (t_flow < t_event) {
        advance_to(t_flow);
        complete_due_flows();
      } else {
        advance_to(t_event);
        const Event ev = events_.top();
        events_.pop();
        switch (ev.kind) {
          case EventKind::RankWake:
            progress_rank(ev.id);
            break;
          case EventKind::FlowStart:
            start_flow(ev.id);
            break;
          case EventKind::CreditRelease:
            release_credit(ev.id);
            break;
        }
        // A flow may have hit zero exactly at this event time.
        complete_due_flows();
      }
    }

    ReplayResult result;
    result.rank_finish.resize(sched_.nranks);
    for (int r = 0; r < sched_.nranks; ++r) {
      if (!ranks_[r].done) {
        throw SimError(diagnose_deadlock());
      }
      result.rank_finish[r] = ranks_[r].finish;
      result.makespan = std::max(result.makespan, ranks_[r].finish);
    }
    result.op_complete = std::move(op_complete_);
    result.cpu_busy = std::move(cpu_busy_);
    for (double b : result.cpu_busy) result.total_cpu_busy += b;
    result.messages = msgs_.size();
    result.flows_started = flows_started_;
    result.rate_recomputes = rate_recomputes_;
    return result;
  }

 private:
  // ------------------------------------------------------------ resources
  // Resource layout: [0, N) membus per node; [N, 2N) NIC-out; [2N, 3N)
  // NIC-in; optionally 3N = global fabric.
  static std::vector<double> build_capacities(const Topology& topo,
                                              const CostModel& cost) {
    const int n = topo.num_nodes();
    std::vector<double> caps;
    caps.reserve(3 * n + 1);
    for (int i = 0; i < n; ++i) caps.push_back(cost.bw_membus);
    for (int i = 0; i < n; ++i) caps.push_back(cost.bw_nic);
    for (int i = 0; i < n; ++i) caps.push_back(cost.bw_nic);
    if (cost.bw_fabric > 0) caps.push_back(cost.bw_fabric);
    return caps;
  }

  std::vector<int> flow_resources(int msg_id) const {
    const trace::MatchedMsg& mm = match_.msgs[msg_id];
    const int n = topo_.num_nodes();
    const int sn = topo_.node_of(mm.src);
    const int dn = topo_.node_of(mm.dst);
    if (sn == dn) return {sn};
    std::vector<int> res{n + sn, 2 * n + dn};
    if (cost_.bw_fabric > 0) res.push_back(3 * n);
    return res;
  }

  // --------------------------------------------------------------- events
  void push_event(double t, EventKind kind, int id) {
    events_.push(Event{t, seq_++, kind, id});
  }

  void advance_to(double t) {
    BSB_ASSERT(t + kTimeEps >= now_, "replay: time went backwards");
    if (t > now_) {
      fluid_.advance(t - now_);
      now_ = t;
    }
  }

  // ---------------------------------------------------------------- flows
  void start_flow(int msg_id) {
    MsgSim& ms = msgs_[msg_id];
    if (ms.delivered >= 0 || ms.flow_id >= 0) return;  // already running/done
    if (ms.bytes <= 0) {
      deliver(msg_id, now_ + cost_.alpha(ms.inter));
      return;
    }
    ms.flow_id = fluid_.add_flow(ms.bytes, flow_resources(msg_id),
                                 cost_.flow_cap(ms.inter));
    flow_msg_[ms.flow_id] = msg_id;
    ++flows_started_;
    fluid_.recompute_rates();
    ++rate_recomputes_;
  }

  void complete_due_flows() {
    const std::vector<int> done = fluid_.completed_flows();
    if (done.empty()) return;
    for (int fid : done) {
      const int msg_id = flow_msg_.at(fid);
      fluid_.remove_flow(fid);
      flow_msg_.erase(fid);
      MsgSim& ms = msgs_[msg_id];
      ms.flow_id = -2;
      deliver(msg_id, now_ + cost_.alpha(ms.inter));
    }
    if (fluid_.active_count() > 0) {
      fluid_.recompute_rates();
      ++rate_recomputes_;
    }
  }

  void deliver(int msg_id, double when) {
    MsgSim& ms = msgs_[msg_id];
    ms.delivered = when;
    if (ms.eager) maybe_finalize_eager_recv(msg_id);
    // Wake both endpoints; progress_rank ignores wakes it has outgrown.
    push_event(when, EventKind::RankWake, match_.msgs[msg_id].src);
    push_event(when, EventKind::RankWake, match_.msgs[msg_id].dst);
  }

  // ------------------------------------------------------------- messages
  void post_send(int msg_id) {
    MsgSim& ms = msgs_[msg_id];
    BSB_ASSERT(ms.send_posted < 0, "replay: send half posted twice");
    ms.send_posted = now_;
    if (ms.eager) {
      // The sender's CPU already performed the injection copy (charged in
      // the op's busy time). Intra-node the payload is now sitting in a
      // shared-memory slot: delivered after the handoff latency, no shared
      // fluid resource occupied. Inter-node it still crosses the NIC.
      if (ms.inter && ms.bytes > 0) {
        start_flow(msg_id);  // fire-and-forget through the NIC
      } else {
        deliver(msg_id, now_ + cost_.alpha(ms.inter));
      }
    } else {
      maybe_schedule_rendezvous(msg_id);
    }
  }

  void post_recv(int msg_id) {
    MsgSim& ms = msgs_[msg_id];
    BSB_ASSERT(ms.recv_posted < 0, "replay: recv half posted twice");
    ms.recv_posted = now_;
    if (!ms.eager) {
      maybe_schedule_rendezvous(msg_id);
    } else {
      maybe_finalize_eager_recv(msg_id);
    }
  }

  /// Once an eager message's delivery AND its receive post are both known,
  /// fix its consumption time and schedule the flow-control credit release.
  void maybe_finalize_eager_recv(int msg_id) {
    MsgSim& ms = msgs_[msg_id];
    if (ms.recv_complete >= 0 || ms.delivered < 0 || ms.recv_posted < 0) return;
    ms.recv_complete =
        std::max(ms.delivered, ms.recv_posted) + ms.bytes / cost_.copy_bw;
    cpu_busy_[match_.msgs[msg_id].dst] += ms.bytes / cost_.copy_bw;
    if (cost_.eager_credits > 0) {
      push_event(ms.recv_complete, EventKind::CreditRelease, msg_id);
    }
  }

  // --------------------------------------------------- eager flow control
  /// True when the send may proceed. Otherwise the message is queued on
  /// its channel and the sender stays parked until a CreditRelease grants
  /// it a credit and wakes it.
  bool try_acquire_credit(int msg_id) {
    MsgSim& ms = msgs_[msg_id];
    if (!ms.eager || cost_.eager_credits <= 0) return true;
    if (ms.credit_granted) return true;
    const auto key = channel_of(msg_id);
    int& outstanding = credits_outstanding_[key];
    if (outstanding < cost_.eager_credits) {
      ++outstanding;
      ms.credit_granted = true;
      return true;
    }
    if (!ms.credit_waiting) {
      ms.credit_waiting = true;
      credit_waiters_[key].push_back(msg_id);
    }
    return false;
  }

  void release_credit(int msg_id) {
    MsgSim& ms = msgs_[msg_id];
    if (ms.credit_released) return;
    ms.credit_released = true;
    const auto key = channel_of(msg_id);
    auto& waiters = credit_waiters_[key];
    if (!waiters.empty()) {
      // Hand the credit straight to the oldest parked send (FIFO).
      const int next = waiters.front();
      waiters.pop_front();
      msgs_[next].credit_waiting = false;
      msgs_[next].credit_granted = true;
      push_event(now_, EventKind::RankWake, match_.msgs[next].src);
    } else {
      --credits_outstanding_[key];
    }
  }

  std::pair<int, int> channel_of(int msg_id) const {
    return {match_.msgs[msg_id].src, match_.msgs[msg_id].dst};
  }

  void maybe_schedule_rendezvous(int msg_id) {
    MsgSim& ms = msgs_[msg_id];
    if (ms.flow_scheduled || ms.send_posted < 0 || ms.recv_posted < 0) return;
    // RTS + CTS handshake after both sides are ready.
    const double start =
        std::max(ms.send_posted, ms.recv_posted) + 2 * cost_.alpha(ms.inter);
    ms.flow_scheduled = true;
    push_event(start, EventKind::FlowStart, msg_id);
  }

  bool send_half_done(int msg_id) const {
    const MsgSim& ms = msgs_[msg_id];
    if (ms.eager) return true;  // sender freed at post
    return ms.delivered >= 0 && now_ + kTimeEps >= ms.delivered;
  }

  /// Completion time of the receive half, or +inf if not determined yet.
  /// Pushes a wake when the completion lies in the future.
  bool recv_half_done(int msg_id, int rank) {
    MsgSim& ms = msgs_[msg_id];
    if (ms.delivered < 0) return false;  // deliver() will wake us
    if (ms.recv_complete < 0) {
      // Eager completion (delivery copy-out) is fixed by
      // maybe_finalize_eager_recv; rendezvous completes at delivery.
      BSB_ASSERT(!ms.eager, "replay: eager recv_complete not finalized");
      ms.recv_complete = std::max(ms.delivered, ms.recv_posted);
    }
    if (now_ + kTimeEps >= ms.recv_complete) return true;
    push_event(ms.recv_complete, EventKind::RankWake, rank);
    return false;
  }

  // -------------------------------------------------------------- barrier
  void barrier_arrive(int generation) {
    if (static_cast<int>(barriers_.size()) <= generation) {
      barriers_.resize(generation + 1);
    }
    BarrierGen& g = barriers_[generation];
    ++g.arrived;
    g.last_arrival = std::max(g.last_arrival, now_);
    BSB_ASSERT(g.arrived <= sched_.nranks, "replay: too many barrier arrivals");
    if (g.arrived == sched_.nranks) {
      g.released = true;
      g.release_time = g.last_arrival + cost_.barrier_cost;
      for (int r = 0; r < sched_.nranks; ++r) {
        push_event(g.release_time, EventKind::RankWake, r);
      }
    }
  }

  bool barrier_done(int generation) const {
    if (static_cast<int>(barriers_.size()) <= generation) return false;
    const BarrierGen& g = barriers_[generation];
    return g.released && now_ + kTimeEps >= g.release_time;
  }

  // ----------------------------------------------------------------- ranks

  /// Sender-side CPU time of an eager injection copy (LogGP's G * bytes).
  double eager_inject_cost(int send_msg) const {
    const MsgSim& ms = msgs_[send_msg];
    return ms.eager ? ms.bytes / cost_.copy_bw : 0.0;
  }

  double busy_time(const trace::Op& op, int send_msg) const {
    switch (op.kind) {
      case trace::OpKind::Send:
        return cost_.o_send + eager_inject_cost(send_msg);
      case trace::OpKind::Recv:
        return cost_.o_recv;
      case trace::OpKind::SendRecv:
        return cost_.o_send + cost_.o_recv + eager_inject_cost(send_msg);
      case trace::OpKind::Barrier:
        return 0;
    }
    return 0;
  }

  void progress_rank(int r) {
    RankSim& rs = ranks_[r];
    if (rs.done) return;
    if (now_ + kTimeEps < rs.ready_at) return;  // premature wake; real one queued

    const auto& oplist = sched_.ops[r];
    while (true) {
      if (rs.pc == static_cast<int>(oplist.size())) {
        rs.done = true;
        rs.finish = now_;
        return;
      }
      const trace::Op& op = oplist[rs.pc];
      const int send_msg = match_.send_msg_of[r][rs.pc];
      const int recv_msg = match_.recv_msg_of[r][rs.pc];

      if (rs.phase == Phase::Start) {
        const double busy = busy_time(op, send_msg);
        cpu_busy_[r] += busy;
        rs.phase = Phase::AfterBusy;
        if (busy > 0) {
          rs.ready_at = now_ + busy;
          push_event(rs.ready_at, EventKind::RankWake, r);
          return;
        }
      }

      if (rs.phase == Phase::AfterBusy) {
        // Post the receive half first so the peer can always match it even
        // while our send half is parked on flow control.
        if (op.has_recv() && !rs.cur_recv_posted) {
          post_recv(recv_msg);
          rs.cur_recv_posted = true;
        }
        if (op.has_send() && !rs.cur_send_posted) {
          if (!try_acquire_credit(send_msg)) return;  // woken on release
          post_send(send_msg);
          rs.cur_send_posted = true;
        }
        if (op.kind == trace::OpKind::Barrier) barrier_arrive(rs.barriers_passed);
        rs.phase = Phase::Blocked;
      }

      // Phase::Blocked — is the op complete at `now_`?
      bool complete = true;
      switch (op.kind) {
        case trace::OpKind::Send:
          complete = send_half_done(send_msg);
          break;
        case trace::OpKind::Recv:
          complete = recv_half_done(recv_msg, r);
          break;
        case trace::OpKind::SendRecv:
          // Evaluate both so wake-ups get scheduled for each half.
          complete = recv_half_done(recv_msg, r);
          complete = send_half_done(send_msg) && complete;
          break;
        case trace::OpKind::Barrier:
          complete = barrier_done(rs.barriers_passed);
          break;
      }
      if (!complete) return;  // a deliver()/wake will resume us

      if (op.kind == trace::OpKind::Barrier) ++rs.barriers_passed;
      op_complete_[r][rs.pc] = now_;
      ++rs.pc;
      rs.phase = Phase::Start;
      rs.cur_send_posted = false;
      rs.cur_recv_posted = false;
      rs.ready_at = now_;
    }
  }

  std::string diagnose_deadlock() const {
    std::string s = "replay: schedule did not run to completion;";
    for (int r = 0; r < sched_.nranks; ++r) {
      if (ranks_[r].done) continue;
      const auto& oplist = sched_.ops[r];
      s += " rank " + std::to_string(r) + " at op " + std::to_string(ranks_[r].pc);
      if (ranks_[r].pc < static_cast<int>(oplist.size())) {
        s += " (" + std::string(trace::to_string(oplist[ranks_[r].pc].kind)) + ")";
      }
      s += ";";
    }
    return s;
  }

  const trace::Schedule& sched_;
  const trace::MatchResult& match_;
  const Topology& topo_;
  const CostModel& cost_;
  FluidNetwork fluid_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t seq_ = 0;
  double now_ = 0;

  std::vector<RankSim> ranks_;
  std::vector<double> cpu_busy_;
  std::vector<std::vector<double>> op_complete_;
  std::vector<MsgSim> msgs_;
  std::vector<BarrierGen> barriers_;
  std::unordered_map<int, int> flow_msg_;
  std::map<std::pair<int, int>, int> credits_outstanding_;
  std::map<std::pair<int, int>, std::deque<int>> credit_waiters_;

  std::uint64_t flows_started_ = 0;
  std::uint64_t rate_recomputes_ = 0;
};

}  // namespace

ReplayResult replay_schedule(const trace::Schedule& sched, const trace::MatchResult& m,
                             const Topology& topo, const CostModel& cost) {
  Engine engine(sched, m, topo, cost);
  return engine.run();
}

}  // namespace bsb::netsim
