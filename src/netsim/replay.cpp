#include "netsim/replay.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>

#include "netsim/fluid.hpp"

namespace bsb::netsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-12;  // sub-picosecond slack for comparisons

enum class EventKind : std::uint8_t { RankWake, FlowStart, CreditRelease };

struct Event {
  double t;
  std::uint64_t seq;  // deterministic FIFO tie-break
  EventKind kind;
  int id;  // lane (RankWake) or message (FlowStart / CreditRelease)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

enum class Phase : std::uint8_t { Start, AfterBusy, Blocked };

// One (job, local rank) actor. With a single job a lane IS a rank; with
// many jobs a topology rank hosts one lane per job it participates in.
struct RankSim {
  int pc = 0;
  Phase phase = Phase::Start;
  double ready_at = 0;  // guards against premature (spurious) wakes
  int barriers_passed = 0;
  bool done = false;
  double finish = 0;
  // posting progress of the CURRENT op (reset on advance)
  bool cur_send_posted = false;
  bool cur_recv_posted = false;
};

struct MsgSim {
  double bytes = 0;
  bool inter = false;
  bool shm = false;  // single-copy channel (CostModel::shm_tag)
  bool eager = true;
  int gsrc = -1;       // topology rank of the sender
  int gdst = -1;       // topology rank of the receiver
  int lane_src = -1;   // sender lane (for wake-ups)
  int lane_dst = -1;   // receiver lane
  double send_posted = -1;
  double recv_posted = -1;
  double delivered = -1;
  double recv_complete = -1;
  int flow_id = -1;
  bool flow_scheduled = false;   // rendezvous FlowStart event pushed
  bool credit_waiting = false;   // queued for an eager flow-control credit
  bool credit_granted = false;   // handed a credit by a release
  bool credit_released = false;  // its credit has been returned
};

struct BarrierGen {
  int arrived = 0;
  double last_arrival = 0;
  bool released = false;
  double release_time = 0;
};

// Per-job bookkeeping: where its lanes and messages live in the global
// arrays, and its private barrier generations (a barrier only synchronizes
// the ranks of its own communicator).
struct JobCtx {
  const trace::Schedule* sched = nullptr;
  const trace::MatchResult* match = nullptr;
  double arrival = 0;
  std::vector<int> map;  // local -> topology rank; empty = identity
  int lane_base = 0;
  int msg_base = 0;
  std::vector<BarrierGen> barriers;

  int global_rank(int local) const {
    return map.empty() ? local : map[local];
  }
};

class Engine {
 public:
  Engine(std::span<const ReplayJob> jobs, const Topology& topo, const CostModel& cost)
      : topo_(topo), cost_(cost), fluid_(build_capacities(topo, cost)) {
    cost.validate();
    BSB_REQUIRE(!jobs.empty(), "replay: no jobs to run");
    jobs_.reserve(jobs.size());
    int lane_base = 0;
    int msg_base = 0;
    for (const ReplayJob& job : jobs) {
      BSB_REQUIRE(job.sched != nullptr && job.match != nullptr,
                  "replay: job without schedule or match");
      BSB_REQUIRE(job.arrival >= 0, "replay: job arrival before time zero");
      const int p = job.sched->nranks;
      if (job.rank_map.empty()) {
        BSB_REQUIRE(topo.nranks() == p, "replay: topology size != schedule size");
      } else {
        BSB_REQUIRE(static_cast<int>(job.rank_map.size()) == p,
                    "replay: rank_map size != schedule size");
        std::vector<char> seen(static_cast<std::size_t>(topo.nranks()), 0);
        for (int g : job.rank_map) {
          BSB_REQUIRE(g >= 0 && g < topo.nranks(),
                      "replay: rank_map entry outside the topology");
          BSB_REQUIRE(!seen[static_cast<std::size_t>(g)],
                      "replay: rank_map maps two ranks to one topology rank");
          seen[static_cast<std::size_t>(g)] = 1;
        }
      }
      JobCtx ctx;
      ctx.sched = job.sched;
      ctx.match = job.match;
      ctx.arrival = job.arrival;
      ctx.map = job.rank_map;
      ctx.lane_base = lane_base;
      ctx.msg_base = msg_base;
      jobs_.push_back(std::move(ctx));
      lane_base += p;
      msg_base += static_cast<int>(job.match->msgs.size());
    }

    ranks_.resize(static_cast<std::size_t>(lane_base));
    cpu_busy_.resize(static_cast<std::size_t>(lane_base), 0.0);
    op_complete_.resize(static_cast<std::size_t>(lane_base));
    lane_job_.resize(static_cast<std::size_t>(lane_base));
    lane_local_.resize(static_cast<std::size_t>(lane_base));
    msgs_.resize(static_cast<std::size_t>(msg_base));
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobCtx& ctx = jobs_[j];
      for (int r = 0; r < ctx.sched->nranks; ++r) {
        const std::size_t lane = static_cast<std::size_t>(ctx.lane_base + r);
        lane_job_[lane] = static_cast<int>(j);
        lane_local_[lane] = r;
        op_complete_[lane].resize(ctx.sched->ops[r].size(), 0.0);
        ranks_[lane].ready_at = ctx.arrival;
      }
      for (std::size_t i = 0; i < ctx.match->msgs.size(); ++i) {
        const trace::MatchedMsg& mm = ctx.match->msgs[i];
        MsgSim& ms = msgs_[static_cast<std::size_t>(ctx.msg_base) + i];
        ms.bytes = static_cast<double>(mm.bytes);
        ms.gsrc = ctx.global_rank(mm.src);
        ms.gdst = ctx.global_rank(mm.dst);
        ms.lane_src = ctx.lane_base + mm.src;
        ms.lane_dst = ctx.lane_base + mm.dst;
        ms.inter = !topo.same_node(ms.gsrc, ms.gdst);
        ms.shm = !ms.inter && cost.shm_tag >= 0 && mm.tag == cost.shm_tag;
        // Shm transfers are neither eager (no intermediate buffering to
        // deposit into) nor rendezvous (the sender never blocks on the
        // drain): a third protocol with its own posting rules below.
        ms.eager = !ms.shm && mm.bytes <= cost.eager_threshold;
      }
    }
  }

  void run() {
    for (const JobCtx& ctx : jobs_) {
      for (int r = 0; r < ctx.sched->nranks; ++r) {
        push_event(ctx.arrival, EventKind::RankWake, ctx.lane_base + r);
      }
    }

    // Defensive livelock guard: a healthy replay processes a small constant
    // number of events per op/message; far beyond that means engine bug.
    std::uint64_t total_ops = 0;
    for (const JobCtx& ctx : jobs_) total_ops += ctx.sched->total_ops();
    const std::uint64_t iter_cap = 1000 * (total_ops + msgs_.size()) + 100000;
    std::uint64_t iter = 0;

    while (true) {
      if (++iter > iter_cap) {
        throw SimError("replay: event-loop iteration cap exceeded at t=" +
                       std::to_string(now_) + " (events=" +
                       std::to_string(events_.size()) + ", active flows=" +
                       std::to_string(fluid_.active_count()) +
                       ") — engine livelock; " + diagnose_deadlock());
      }
      const double t_event = events_.empty() ? kInf : events_.top().t;
      double t_flow =
          fluid_.active_count() ? now_ + fluid_.time_to_next_completion() : kInf;
      if (t_event == kInf && t_flow == kInf) {
        // No event pending and no flow can ever finish. If transfers are
        // still in flight the simulation has stalled (all rates pinned at
        // zero) — without this check the loop would exit silently and the
        // failure would surface as an unrelated-looking deadlock report.
        if (fluid_.active_count() > 0) throw SimError(describe_stall());
        break;
      }

      // Floating-point guard: when the next completion is closer than one
      // ulp of `now_`, "now_ + ttc == now_" and time would stop advancing.
      // Bump the target by a few ulps; the flow's remaining bytes then
      // underflow the clamp in FluidNetwork::advance and it completes.
      if (t_flow != kInf) {
        const double min_step =
            4 * std::numeric_limits<double>::epsilon() * std::max(now_, 1e-9);
        t_flow = std::max(t_flow, now_ + min_step);
      }

      if (t_flow < t_event) {
        advance_to(t_flow);
        complete_due_flows();
      } else {
        advance_to(t_event);
        const Event ev = events_.top();
        events_.pop();
        switch (ev.kind) {
          case EventKind::RankWake:
            progress_rank(ev.id);
            break;
          case EventKind::FlowStart:
            start_flow(ev.id);
            break;
          case EventKind::CreditRelease:
            release_credit(ev.id);
            break;
        }
        // A flow may have hit zero exactly at this event time.
        complete_due_flows();
      }
    }

    for (const RankSim& rs : ranks_) {
      if (!rs.done) throw SimError(diagnose_deadlock());
    }
  }

  ReplayResult single_result() {
    BSB_ASSERT(jobs_.size() == 1, "replay: single_result on a multi-job engine");
    ReplayResult result;
    const int p = jobs_[0].sched->nranks;
    result.rank_finish.resize(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      result.rank_finish[static_cast<std::size_t>(r)] =
          ranks_[static_cast<std::size_t>(r)].finish;
      result.makespan =
          std::max(result.makespan, ranks_[static_cast<std::size_t>(r)].finish);
    }
    result.op_complete = std::move(op_complete_);
    result.cpu_busy = std::move(cpu_busy_);
    for (double b : result.cpu_busy) result.total_cpu_busy += b;
    result.messages = msgs_.size();
    result.flows_started = flows_started_;
    result.rate_recomputes = rate_recomputes_;
    attribute_channels(result);
    return result;
  }

  ConcurrentReplayResult concurrent_result() const {
    ConcurrentReplayResult result;
    result.job_finish.resize(jobs_.size(), 0.0);
    result.job_latency.resize(jobs_.size(), 0.0);
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const JobCtx& ctx = jobs_[j];
      double finish = ctx.arrival;
      for (int r = 0; r < ctx.sched->nranks; ++r) {
        finish = std::max(finish, ranks_[static_cast<std::size_t>(ctx.lane_base + r)].finish);
      }
      result.job_finish[j] = finish;
      result.job_latency[j] = finish - ctx.arrival;
      result.makespan = std::max(result.makespan, finish);
    }
    result.messages = msgs_.size();
    result.flows_started = flows_started_;
    result.rate_recomputes = rate_recomputes_;
    attribute_channels(result);
    return result;
  }

 private:
  /// Per-level flow attribution: count every message against the channel
  /// that carried it (shm / NIC / membus).
  template <typename Result>
  void attribute_channels(Result& result) const {
    for (const MsgSim& ms : msgs_) {
      const std::uint64_t b = static_cast<std::uint64_t>(ms.bytes);
      if (ms.shm) {
        ++result.shm_messages;
        result.shm_bytes += b;
      } else if (ms.inter) {
        ++result.inter_messages;
        result.inter_bytes += b;
      } else {
        ++result.intra_messages;
        result.intra_bytes += b;
      }
    }
  }
  // ------------------------------------------------------------ resources
  // Resource layout: [0, N) membus per node; [N, 2N) NIC-out; [2N, 3N)
  // NIC-in; when the shm channel is enabled, [3N, 4N) per-node shm; then
  // optionally a global fabric. Indexed by TOPOLOGY node, so concurrent
  // jobs mapped onto overlapping ranks share the same wires. With the shm
  // channel disabled the layout (and every replay) is bit-identical to the
  // pre-shm engine.
  static std::vector<double> build_capacities(const Topology& topo,
                                              const CostModel& cost) {
    const int n = topo.num_nodes();
    std::vector<double> caps;
    caps.reserve(static_cast<std::size_t>(4 * n + 1));
    for (int i = 0; i < n; ++i) caps.push_back(cost.bw_membus);
    for (int i = 0; i < n; ++i) caps.push_back(cost.bw_nic);
    for (int i = 0; i < n; ++i) caps.push_back(cost.bw_nic);
    if (cost.shm_tag >= 0) {
      for (int i = 0; i < n; ++i) caps.push_back(cost.bw_shm_node);
    }
    if (cost.bw_fabric > 0) caps.push_back(cost.bw_fabric);
    return caps;
  }

  std::vector<int> flow_resources(int msg_id) const {
    const MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    const int n = topo_.num_nodes();
    const int sn = topo_.node_of(ms.gsrc);
    const int dn = topo_.node_of(ms.gdst);
    // Shm flows touch ONLY the node's shm resource: no membus, no NIC —
    // the contention-independence the netsim tests pin down.
    if (ms.shm) return {3 * n + sn};
    if (sn == dn) return {sn};
    const int fabric = 3 * n + (cost_.shm_tag >= 0 ? n : 0);
    std::vector<int> res{n + sn, 2 * n + dn};
    if (cost_.bw_fabric > 0) res.push_back(fabric);
    return res;
  }

  // --------------------------------------------------------------- events
  void push_event(double t, EventKind kind, int id) {
    events_.push(Event{t, seq_++, kind, id});
  }

  void advance_to(double t) {
    BSB_ASSERT(t + kTimeEps >= now_, "replay: time went backwards");
    if (t > now_) {
      fluid_.advance(t - now_);
      now_ = t;
    }
  }

  // ---------------------------------------------------------------- flows
  void start_flow(int msg_id) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    if (ms.delivered >= 0 || ms.flow_id >= 0) return;  // already running/done
    if (ms.bytes <= 0) {
      // Shm paid its attach latency before the FlowStart event fired.
      deliver(msg_id, ms.shm ? now_ : now_ + cost_.alpha(ms.inter));
      return;
    }
    ms.flow_id = fluid_.add_flow(ms.bytes, flow_resources(msg_id),
                                 ms.shm ? cost_.bw_flow_shm
                                        : cost_.flow_cap(ms.inter));
    flow_msg_[ms.flow_id] = msg_id;
    ++flows_started_;
    fluid_.recompute_rates();
    ++rate_recomputes_;
  }

  void complete_due_flows() {
    const std::vector<int> done = fluid_.completed_flows();
    if (done.empty()) return;
    for (int fid : done) {
      const int msg_id = flow_msg_.at(fid);
      fluid_.remove_flow(fid);
      flow_msg_.erase(fid);
      MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
      ms.flow_id = -2;
      // A finished shm flow IS the receive (the receiver did the copy
      // itself); there is no completion-notification latency to add.
      deliver(msg_id, ms.shm ? now_ : now_ + cost_.alpha(ms.inter));
    }
    if (fluid_.active_count() > 0) {
      fluid_.recompute_rates();
      ++rate_recomputes_;
    }
  }

  void deliver(int msg_id, double when) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    ms.delivered = when;
    if (ms.eager) maybe_finalize_eager_recv(msg_id);
    // Wake both endpoints; progress_rank ignores wakes it has outgrown.
    push_event(when, EventKind::RankWake, ms.lane_src);
    push_event(when, EventKind::RankWake, ms.lane_dst);
  }

  // ------------------------------------------------------------- messages
  void post_send(int msg_id) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    BSB_ASSERT(ms.send_posted < 0, "replay: send half posted twice");
    ms.send_posted = now_;
    if (ms.shm) {
      // Single-copy: the sender only exports its pages and moves on; the
      // transfer starts once the receiver is there to pull.
      maybe_schedule_shm(msg_id);
    } else if (ms.eager) {
      // The sender's CPU already performed the injection copy (charged in
      // the op's busy time). Intra-node the payload is now sitting in a
      // shared-memory slot: delivered after the handoff latency, no shared
      // fluid resource occupied. Inter-node it still crosses the NIC.
      if (ms.inter && ms.bytes > 0) {
        start_flow(msg_id);  // fire-and-forget through the NIC
      } else {
        deliver(msg_id, now_ + cost_.alpha(ms.inter));
      }
    } else {
      maybe_schedule_rendezvous(msg_id);
    }
  }

  void post_recv(int msg_id) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    BSB_ASSERT(ms.recv_posted < 0, "replay: recv half posted twice");
    ms.recv_posted = now_;
    if (ms.shm) {
      maybe_schedule_shm(msg_id);
    } else if (!ms.eager) {
      maybe_schedule_rendezvous(msg_id);
    } else {
      maybe_finalize_eager_recv(msg_id);
    }
  }

  /// Schedule the single-copy pull once both sides have posted: one attach
  /// latency, then the receiver streams straight from the sender's pages
  /// on the node's shm resource.
  void maybe_schedule_shm(int msg_id) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    if (ms.flow_scheduled || ms.send_posted < 0 || ms.recv_posted < 0) return;
    ms.flow_scheduled = true;
    push_event(std::max(ms.send_posted, ms.recv_posted) + cost_.alpha_shm,
               EventKind::FlowStart, msg_id);
  }

  /// Once an eager message's delivery AND its receive post are both known,
  /// fix its consumption time and schedule the flow-control credit release.
  void maybe_finalize_eager_recv(int msg_id) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    if (ms.recv_complete >= 0 || ms.delivered < 0 || ms.recv_posted < 0) return;
    ms.recv_complete =
        std::max(ms.delivered, ms.recv_posted) + ms.bytes / cost_.copy_bw;
    cpu_busy_[static_cast<std::size_t>(ms.lane_dst)] += ms.bytes / cost_.copy_bw;
    if (cost_.eager_credits > 0) {
      push_event(ms.recv_complete, EventKind::CreditRelease, msg_id);
    }
  }

  // --------------------------------------------------- eager flow control
  /// True when the send may proceed. Otherwise the message is queued on
  /// its channel and the sender stays parked until a CreditRelease grants
  /// it a credit and wakes it. Channels are keyed by TOPOLOGY (src, dst),
  /// so concurrent jobs drawing on the same wire share one credit budget.
  bool try_acquire_credit(int msg_id) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    if (!ms.eager || cost_.eager_credits <= 0) return true;
    if (ms.credit_granted) return true;
    const auto key = channel_of(msg_id);
    int& outstanding = credits_outstanding_[key];
    if (outstanding < cost_.eager_credits) {
      ++outstanding;
      ms.credit_granted = true;
      return true;
    }
    if (!ms.credit_waiting) {
      ms.credit_waiting = true;
      credit_waiters_[key].push_back(msg_id);
    }
    return false;
  }

  void release_credit(int msg_id) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    if (ms.credit_released) return;
    ms.credit_released = true;
    const auto key = channel_of(msg_id);
    auto& waiters = credit_waiters_[key];
    if (!waiters.empty()) {
      // Hand the credit straight to the oldest parked send (FIFO).
      const int next = waiters.front();
      waiters.pop_front();
      msgs_[static_cast<std::size_t>(next)].credit_waiting = false;
      msgs_[static_cast<std::size_t>(next)].credit_granted = true;
      push_event(now_, EventKind::RankWake,
                 msgs_[static_cast<std::size_t>(next)].lane_src);
    } else {
      --credits_outstanding_[key];
    }
  }

  std::pair<int, int> channel_of(int msg_id) const {
    const MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    return {ms.gsrc, ms.gdst};
  }

  void maybe_schedule_rendezvous(int msg_id) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    if (ms.flow_scheduled || ms.send_posted < 0 || ms.recv_posted < 0) return;
    // RTS + CTS handshake after both sides are ready.
    const double start =
        std::max(ms.send_posted, ms.recv_posted) + 2 * cost_.alpha(ms.inter);
    ms.flow_scheduled = true;
    push_event(start, EventKind::FlowStart, msg_id);
  }

  bool send_half_done(int msg_id) const {
    const MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    if (ms.eager || ms.shm) return true;  // sender freed at post
    return ms.delivered >= 0 && now_ + kTimeEps >= ms.delivered;
  }

  /// Completion time of the receive half, or +inf if not determined yet.
  /// Pushes a wake when the completion lies in the future.
  bool recv_half_done(int msg_id, int lane) {
    MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
    if (ms.delivered < 0) return false;  // deliver() will wake us
    if (ms.recv_complete < 0) {
      // Eager completion (delivery copy-out) is fixed by
      // maybe_finalize_eager_recv; rendezvous completes at delivery.
      BSB_ASSERT(!ms.eager, "replay: eager recv_complete not finalized");
      ms.recv_complete = std::max(ms.delivered, ms.recv_posted);
    }
    if (now_ + kTimeEps >= ms.recv_complete) return true;
    push_event(ms.recv_complete, EventKind::RankWake, lane);
    return false;
  }

  // -------------------------------------------------------------- barrier
  void barrier_arrive(int job, int generation) {
    JobCtx& ctx = jobs_[static_cast<std::size_t>(job)];
    if (static_cast<int>(ctx.barriers.size()) <= generation) {
      ctx.barriers.resize(static_cast<std::size_t>(generation) + 1);
    }
    BarrierGen& g = ctx.barriers[static_cast<std::size_t>(generation)];
    ++g.arrived;
    g.last_arrival = std::max(g.last_arrival, now_);
    BSB_ASSERT(g.arrived <= ctx.sched->nranks, "replay: too many barrier arrivals");
    if (g.arrived == ctx.sched->nranks) {
      g.released = true;
      g.release_time = g.last_arrival + cost_.barrier_cost;
      for (int r = 0; r < ctx.sched->nranks; ++r) {
        push_event(g.release_time, EventKind::RankWake, ctx.lane_base + r);
      }
    }
  }

  bool barrier_done(int job, int generation) const {
    const JobCtx& ctx = jobs_[static_cast<std::size_t>(job)];
    if (static_cast<int>(ctx.barriers.size()) <= generation) return false;
    const BarrierGen& g = ctx.barriers[static_cast<std::size_t>(generation)];
    return g.released && now_ + kTimeEps >= g.release_time;
  }

  // ----------------------------------------------------------------- ranks

  /// Sender-side CPU time of an eager injection copy (LogGP's G * bytes).
  double eager_inject_cost(int send_msg) const {
    const MsgSim& ms = msgs_[static_cast<std::size_t>(send_msg)];
    return ms.eager ? ms.bytes / cost_.copy_bw : 0.0;
  }

  double busy_time(const trace::Op& op, int send_msg) const {
    switch (op.kind) {
      case trace::OpKind::Send:
        return cost_.o_send + eager_inject_cost(send_msg);
      case trace::OpKind::Recv:
        return cost_.o_recv;
      case trace::OpKind::SendRecv:
        return cost_.o_send + cost_.o_recv + eager_inject_cost(send_msg);
      case trace::OpKind::Barrier:
        return 0;
    }
    return 0;
  }

  void progress_rank(int lane) {
    RankSim& rs = ranks_[static_cast<std::size_t>(lane)];
    if (rs.done) return;
    if (now_ + kTimeEps < rs.ready_at) return;  // premature wake; real one queued

    const int job = lane_job_[static_cast<std::size_t>(lane)];
    const int local = lane_local_[static_cast<std::size_t>(lane)];
    const JobCtx& ctx = jobs_[static_cast<std::size_t>(job)];
    const auto& oplist = ctx.sched->ops[local];
    while (true) {
      if (rs.pc == static_cast<int>(oplist.size())) {
        rs.done = true;
        rs.finish = now_;
        return;
      }
      const trace::Op& op = oplist[static_cast<std::size_t>(rs.pc)];
      int send_msg = ctx.match->send_msg_of[local][static_cast<std::size_t>(rs.pc)];
      int recv_msg = ctx.match->recv_msg_of[local][static_cast<std::size_t>(rs.pc)];
      if (send_msg >= 0) send_msg += ctx.msg_base;
      if (recv_msg >= 0) recv_msg += ctx.msg_base;

      if (rs.phase == Phase::Start) {
        const double busy = busy_time(op, send_msg);
        cpu_busy_[static_cast<std::size_t>(lane)] += busy;
        rs.phase = Phase::AfterBusy;
        if (busy > 0) {
          rs.ready_at = now_ + busy;
          push_event(rs.ready_at, EventKind::RankWake, lane);
          return;
        }
      }

      if (rs.phase == Phase::AfterBusy) {
        // Post the receive half first so the peer can always match it even
        // while our send half is parked on flow control.
        if (op.has_recv() && !rs.cur_recv_posted) {
          post_recv(recv_msg);
          rs.cur_recv_posted = true;
        }
        if (op.has_send() && !rs.cur_send_posted) {
          if (!try_acquire_credit(send_msg)) return;  // woken on release
          post_send(send_msg);
          rs.cur_send_posted = true;
        }
        if (op.kind == trace::OpKind::Barrier) barrier_arrive(job, rs.barriers_passed);
        rs.phase = Phase::Blocked;
      }

      // Phase::Blocked — is the op complete at `now_`?
      bool complete = true;
      switch (op.kind) {
        case trace::OpKind::Send:
          complete = send_half_done(send_msg);
          break;
        case trace::OpKind::Recv:
          complete = recv_half_done(recv_msg, lane);
          break;
        case trace::OpKind::SendRecv:
          // Evaluate both so wake-ups get scheduled for each half.
          complete = recv_half_done(recv_msg, lane);
          complete = send_half_done(send_msg) && complete;
          break;
        case trace::OpKind::Barrier:
          complete = barrier_done(job, rs.barriers_passed);
          break;
      }
      if (!complete) return;  // a deliver()/wake will resume us

      if (op.kind == trace::OpKind::Barrier) ++rs.barriers_passed;
      op_complete_[static_cast<std::size_t>(lane)][static_cast<std::size_t>(rs.pc)] =
          now_;
      ++rs.pc;
      rs.phase = Phase::Start;
      rs.cur_send_posted = false;
      rs.cur_recv_posted = false;
      rs.ready_at = now_;
    }
  }

  std::string diagnose_deadlock() const {
    std::string s = "replay: schedule did not run to completion;";
    for (std::size_t lane = 0; lane < ranks_.size(); ++lane) {
      if (ranks_[lane].done) continue;
      const int job = lane_job_[lane];
      const int local = lane_local_[lane];
      const auto& oplist = jobs_[static_cast<std::size_t>(job)].sched->ops[local];
      if (jobs_.size() > 1) s += " job " + std::to_string(job);
      s += " rank " + std::to_string(local) + " at op " +
           std::to_string(ranks_[lane].pc);
      if (ranks_[lane].pc < static_cast<int>(oplist.size())) {
        s += " (" +
             std::string(trace::to_string(
                 oplist[static_cast<std::size_t>(ranks_[lane].pc)].kind)) +
             ")";
      }
      s += ";";
    }
    return s;
  }

  std::string describe_stall() const {
    std::string s = "replay: all in-flight transfers stalled at zero rate at t=" +
                    std::to_string(now_) + ";";
    for (int fid : fluid_.stalled_flows()) {
      const int msg_id = flow_msg_.at(fid);
      const MsgSim& ms = msgs_[static_cast<std::size_t>(msg_id)];
      s += " flow " + std::to_string(fid) + " (msg " + std::to_string(msg_id) +
           ", " + std::to_string(ms.gsrc) + "->" + std::to_string(ms.gdst) +
           ", " + std::to_string(fluid_.remaining_of(fid)) + " bytes left);";
    }
    return s;
  }

  const Topology& topo_;
  const CostModel& cost_;
  FluidNetwork fluid_;

  std::vector<JobCtx> jobs_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t seq_ = 0;
  double now_ = 0;

  std::vector<RankSim> ranks_;
  std::vector<int> lane_job_;
  std::vector<int> lane_local_;
  std::vector<double> cpu_busy_;
  std::vector<std::vector<double>> op_complete_;
  std::vector<MsgSim> msgs_;
  std::unordered_map<int, int> flow_msg_;
  std::map<std::pair<int, int>, int> credits_outstanding_;
  std::map<std::pair<int, int>, std::deque<int>> credit_waiters_;

  std::uint64_t flows_started_ = 0;
  std::uint64_t rate_recomputes_ = 0;
};

}  // namespace

ReplayResult replay_schedule(const trace::Schedule& sched, const trace::MatchResult& m,
                             const Topology& topo, const CostModel& cost) {
  const ReplayJob job{&sched, &m, 0.0, {}};
  Engine engine(std::span<const ReplayJob>(&job, 1), topo, cost);
  engine.run();
  return engine.single_result();
}

ConcurrentReplayResult replay_concurrent(std::span<const ReplayJob> jobs,
                                         const Topology& topo, const CostModel& cost) {
  Engine engine(jobs, topo, cost);
  engine.run();
  return engine.concurrent_result();
}

}  // namespace bsb::netsim
