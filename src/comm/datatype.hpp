// Typed and derived-datatype helpers over the byte-oriented Comm — the
// MPI-style layer applications actually program against: send a vector of
// doubles, a strided matrix column, or an indexed selection, without hand
// rolling byte offsets. Non-contiguous layouts are packed into a
// contiguous staging buffer before sending and unpacked after receiving
// (what MPI implementations do internally for non-trivial datatypes).
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "bsbutil/error.hpp"
#include "comm/comm.hpp"

namespace bsb {

/// Description of element positions inside a T array: either a contiguous
/// run, a strided (vector) pattern of fixed-length blocks, or an explicit
/// index list. Offsets/counts are in ELEMENTS.
class Datatype {
 public:
  /// `count` consecutive elements starting at `offset`.
  static Datatype contiguous(std::size_t count, std::size_t offset = 0) {
    Datatype d;
    d.kind_ = Kind::Contiguous;
    d.offset_ = offset;
    d.count_ = count;
    return d;
  }

  /// `nblocks` blocks of `block_len` elements, block i starting at
  /// offset + i*stride (MPI_Type_vector).
  static Datatype vector(std::size_t nblocks, std::size_t block_len,
                         std::size_t stride, std::size_t offset = 0) {
    BSB_REQUIRE(block_len <= stride || nblocks <= 1,
                "Datatype::vector: overlapping blocks");
    Datatype d;
    d.kind_ = Kind::Vector;
    d.offset_ = offset;
    d.count_ = nblocks;
    d.block_len_ = block_len;
    d.stride_ = stride;
    return d;
  }

  /// Explicit element indices (MPI_Type_indexed with unit blocks).
  static Datatype indexed(std::vector<std::size_t> indices) {
    Datatype d;
    d.kind_ = Kind::Indexed;
    d.indices_ = std::move(indices);
    return d;
  }

  /// Number of elements the layout selects.
  std::size_t element_count() const noexcept {
    switch (kind_) {
      case Kind::Contiguous: return count_;
      case Kind::Vector: return count_ * block_len_;
      case Kind::Indexed: return indices_.size();
    }
    return 0;
  }

  /// Smallest array size (in elements) this layout fits into.
  std::size_t min_extent() const noexcept {
    switch (kind_) {
      case Kind::Contiguous:
        return offset_ + count_;
      case Kind::Vector:
        return count_ == 0 ? offset_
                           : offset_ + (count_ - 1) * stride_ + block_len_;
      case Kind::Indexed: {
        std::size_t m = 0;
        for (std::size_t i : indices_) m = std::max(m, i + 1);
        return m;
      }
    }
    return 0;
  }

  /// Copy the selected elements of `data` into a packed vector.
  template <typename T>
  std::vector<T> pack(std::span<const T> data) const {
    BSB_REQUIRE(data.size() >= min_extent(), "Datatype::pack: array too small");
    std::vector<T> out;
    out.reserve(element_count());
    for_each_index([&](std::size_t i) { out.push_back(data[i]); });
    return out;
  }

  /// Scatter `packed` (element_count() values) into `data` per the layout.
  template <typename T>
  void unpack(std::span<const T> packed, std::span<T> data) const {
    BSB_REQUIRE(packed.size() == element_count(),
                "Datatype::unpack: packed size mismatch");
    BSB_REQUIRE(data.size() >= min_extent(), "Datatype::unpack: array too small");
    std::size_t k = 0;
    for_each_index([&](std::size_t i) { data[i] = packed[k++]; });
  }

 private:
  enum class Kind { Contiguous, Vector, Indexed };

  template <typename Fn>
  void for_each_index(Fn&& fn) const {
    switch (kind_) {
      case Kind::Contiguous:
        for (std::size_t i = 0; i < count_; ++i) fn(offset_ + i);
        return;
      case Kind::Vector:
        for (std::size_t b = 0; b < count_; ++b) {
          for (std::size_t i = 0; i < block_len_; ++i) {
            fn(offset_ + b * stride_ + i);
          }
        }
        return;
      case Kind::Indexed:
        for (std::size_t i : indices_) fn(i);
        return;
    }
  }

  Kind kind_ = Kind::Contiguous;
  std::size_t offset_ = 0;
  std::size_t count_ = 0;
  std::size_t block_len_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::size_t> indices_;
};

/// Typed contiguous send/recv (MPI_Send/Recv with a basic datatype).
template <typename T>
void send_typed(Comm& comm, std::span<const T> values, int dest, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  comm.send({reinterpret_cast<const std::byte*>(values.data()),
             values.size_bytes()},
            dest, tag);
}

template <typename T>
Status recv_typed(Comm& comm, std::span<T> values, int source, int tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  Status st = comm.recv(
      {reinterpret_cast<std::byte*>(values.data()), values.size_bytes()},
      source, tag);
  BSB_REQUIRE(st.bytes % sizeof(T) == 0,
              "recv_typed: received a fractional number of elements");
  return st;
}

/// Send the elements of `data` selected by `layout` (packs first).
template <typename T>
void send_layout(Comm& comm, std::span<const T> data, const Datatype& layout,
                 int dest, int tag) {
  const std::vector<T> packed = layout.pack(data);
  send_typed(comm, std::span<const T>(packed), dest, tag);
}

/// Receive into the elements of `data` selected by `layout`.
template <typename T>
Status recv_layout(Comm& comm, std::span<T> data, const Datatype& layout,
                   int source, int tag) {
  std::vector<T> packed(layout.element_count());
  const Status st = recv_typed(comm, std::span<T>(packed), source, tag);
  BSB_REQUIRE(st.bytes == packed.size() * sizeof(T),
              "recv_layout: element count mismatch with sender");
  layout.unpack(std::span<const T>(packed), data);
  return st;
}

}  // namespace bsb
