// The abstract communicator interface all collective algorithms are written
// against. Implementations:
//   * mpisim::ThreadComm   — threads moving real bytes (functional backend)
//   * trace::RecordingComm — captures the communication schedule for the
//                            discrete-event cluster simulator
//   * SubComm              — rank-translating view for sub-groups
#pragma once

#include <cstddef>
#include <span>

#include "comm/status.hpp"

namespace bsb {

/// Wildcards accepted by recv (thread backend only; recorded schedules must
/// be fully deterministic and reject them).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Maximum user-visible tag value; higher bits are reserved for
/// sub-communicator context namespacing.
inline constexpr int kMaxUserTag = (1 << 16) - 1;

/// Blocking point-to-point communicator over a fixed group of ranks,
/// semantically a small subset of MPI:
///  * messages between a (source, dest) pair with equal tags are
///    non-overtaking (FIFO), as required by MPI;
///  * send() of more bytes than the posted receive buffer is an error
///    (MPI_ERR_TRUNCATE); fewer is allowed and reported via Status;
///  * sendrecv() is full-duplex: the send and receive halves progress
///    independently, so rings of sendrecv() calls cannot deadlock;
///  * zero-byte messages are legal and still match.
class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const noexcept = 0;
  virtual int size() const noexcept = 0;

  /// Blocking send. Returns once `buf` may be reused (which, as in MPI, may
  /// be before the receiver arrives for small/eager messages).
  virtual void send(std::span<const std::byte> buf, int dest, int tag) = 0;

  /// Blocking receive into `buf` (capacity = buf.size()).
  virtual Status recv(std::span<std::byte> buf, int source, int tag) = 0;

  /// Full-duplex combined send+receive (MPI_Sendrecv).
  virtual Status sendrecv(std::span<const std::byte> sendbuf, int dest, int sendtag,
                          std::span<std::byte> recvbuf, int source, int recvtag) = 0;

  /// Synchronize all ranks of this communicator.
  virtual void barrier() = 0;
};

}  // namespace bsb
