// Variable-size chunk layout for the allgatherv family: the same chunk
// indexing as ChunkLayout (chunk i is owned by the rank with RELATIVE rank
// i), but with an arbitrary per-chunk byte count — including zero-sized
// chunks — instead of the uniform ceil(nbytes/P) split.
//
// The non-enclosed ring optimization is size-oblivious: RingPlan depends
// only on chunk COUNTS (binomial subtree structure), never on chunk sizes,
// so the tuned allgatherv reuses compute_ring_plan unchanged and VarLayout
// only changes which byte ranges each scheduled message carries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bsbutil/error.hpp"

namespace bsb {

/// Division of a buffer into contiguous chunks of caller-chosen sizes.
class VarLayout {
 public:
  /// `counts[i]` is the byte count of chunk i; displacements are the prefix
  /// sums (chunks are contiguous and in order, like MPI_Allgatherv with
  /// displs[i] = sum of counts[0..i)).
  explicit VarLayout(std::vector<std::uint64_t> counts)
      : counts_(std::move(counts)), disp_(counts_.size() + 1, 0) {
    BSB_REQUIRE(!counts_.empty(), "VarLayout: need at least one chunk");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      disp_[i + 1] = disp_[i] + counts_[i];
    }
  }

  std::uint64_t nbytes() const noexcept { return disp_.back(); }
  int nchunks() const noexcept { return static_cast<int>(counts_.size()); }

  /// Byte offset of chunk i (== nbytes() for i == nchunks()).
  std::uint64_t disp(int i) const {
    BSB_REQUIRE(i >= 0 && i <= nchunks(), "VarLayout: chunk index out of range");
    return disp_[static_cast<std::size_t>(i)];
  }

  /// Byte count of chunk i (possibly 0).
  std::uint64_t count(int i) const {
    check_index(i);
    return counts_[static_cast<std::size_t>(i)];
  }

  /// Total bytes of the contiguous chunk range [first, first+n).
  std::uint64_t range_count(int first, int n) const {
    BSB_REQUIRE(n >= 0 && first >= 0 && first + n <= nchunks(),
                "VarLayout: chunk range out of bounds");
    return disp_[static_cast<std::size_t>(first + n)] -
           disp_[static_cast<std::size_t>(first)];
  }

  /// Subspan of `buffer` holding chunk i.
  std::span<std::byte> chunk(std::span<std::byte> buffer, int i) const {
    check_index(i);
    BSB_REQUIRE(buffer.size() >= nbytes(), "VarLayout: buffer smaller than nbytes");
    return buffer.subspan(disp(i), count(i));
  }
  std::span<const std::byte> chunk(std::span<const std::byte> buffer, int i) const {
    check_index(i);
    BSB_REQUIRE(buffer.size() >= nbytes(), "VarLayout: buffer smaller than nbytes");
    return buffer.subspan(disp(i), count(i));
  }

 private:
  void check_index(int i) const {
    BSB_REQUIRE(i >= 0 && i < nchunks(), "VarLayout: chunk index out of range");
  }

  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> disp_;
};

/// Deterministic skewed block-size vector: `nchunks` counts that sum to
/// EXACTLY `nbytes`, with pseudo-random weights drawn from `seed` (about
/// one chunk in eight gets weight zero, so zero-sized blocks are a routine
/// input, not an edge case). Shared by the fuzz generator, the verifier's
/// sweep contracts and the property tests, so all three agree on the
/// partition byte-for-byte.
std::vector<std::uint64_t> skewed_counts(int nchunks, std::uint64_t nbytes,
                                         std::uint64_t seed);

}  // namespace bsb
