// Cluster topology: how ranks map onto multi-core nodes. Used by the
// SMP-aware broadcast and by the network simulator to classify transfers
// as intra-node (memory copies) or inter-node (NIC traffic).
#pragma once

#include <string>
#include <vector>

namespace bsb {

/// Rank placement policy, matching common MPI launchers. Hornet (the
/// paper's Cray XC40) places ranks in a blocked manner by default.
enum class Placement {
  Block,   // ranks 0..c-1 on node 0, c..2c-1 on node 1, ...
  Cyclic,  // rank r on node r % num_nodes
};

class Topology {
 public:
  /// `nranks` ranks on nodes of `cores_per_node` cores each, filled per
  /// `placement`. The node count is ceil(nranks / cores_per_node).
  Topology(int nranks, int cores_per_node, Placement placement = Placement::Block);

  /// All ranks on one node (every transfer is intra-node).
  static Topology single_node(int nranks);

  /// Hornet-like: 24-core nodes, block placement (the paper's testbed).
  static Topology hornet(int nranks) { return Topology(nranks, 24, Placement::Block); }

  int nranks() const noexcept { return nranks_; }
  int cores_per_node() const noexcept { return cores_per_node_; }
  int num_nodes() const noexcept { return num_nodes_; }
  Placement placement() const noexcept { return placement_; }

  int node_of(int rank) const;
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Ranks living on `node`, in ascending rank order.
  std::vector<int> ranks_on_node(int node) const;

  std::string describe() const;

 private:
  int nranks_;
  int cores_per_node_;
  int num_nodes_;
  Placement placement_;
};

}  // namespace bsb
