#include "comm/vchunks.hpp"

#include "bsbutil/rng.hpp"

namespace bsb {

std::vector<std::uint64_t> skewed_counts(int nchunks, std::uint64_t nbytes,
                                         std::uint64_t seed) {
  BSB_REQUIRE(nchunks >= 1, "skewed_counts: need at least one chunk");
  SplitMix64 rng(seed ^ 0x7a5c9d3fb1e08642ULL);
  std::vector<std::uint64_t> weights(static_cast<std::size_t>(nchunks));
  std::uint64_t total_weight = 0;
  for (auto& w : weights) {
    w = rng.next() % 8;  // 0..7; ~1/8 of the chunks get a zero-sized block
    total_weight += w;
  }
  if (total_weight == 0) {
    weights[0] = 1;
    total_weight = 1;
  }

  std::vector<std::uint64_t> counts(static_cast<std::size_t>(nchunks), 0);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // nbytes <= 2^61 in practice (weights < 8), so the product cannot wrap.
    counts[i] = nbytes * weights[i] / total_weight;
    assigned += counts[i];
  }
  // Hand the rounding remainder out one byte at a time to the weighted
  // chunks, in index order: zero-weight chunks stay exactly zero and the
  // counts sum to nbytes with no drift.
  std::uint64_t rest = nbytes - assigned;
  for (std::size_t i = 0; rest > 0; i = (i + 1) % counts.size()) {
    if (weights[i] == 0) continue;
    ++counts[i];
    --rest;
  }
  return counts;
}

}  // namespace bsb
