// SubComm: a rank-translating view of a subset of a parent communicator,
// equivalent to an MPI communicator created with MPI_Comm_split. The
// SMP-aware broadcast uses SubComms for its per-node groups and its
// node-leader group.
//
// Isolation between concurrently used subgroups is by tag namespacing:
// each SubComm gets a `context` id and maps user tag t (t < kMaxUserTag)
// to context * 2^16 + t on the parent. Create all subgroups of one
// algorithm from the SAME parent with DISTINCT contexts; nesting SubComms
// inside SubComms is not supported (the tag shift would be applied twice).
#pragma once

#include <vector>

#include "comm/comm.hpp"

namespace bsb {

class SubComm final : public Comm {
 public:
  /// `members`: parent ranks forming the subgroup, in subgroup rank order;
  /// must be distinct and include parent.rank(). `context` >= 1 selects the
  /// tag namespace (0 is the parent's own space).
  SubComm(Comm& parent, std::vector<int> members, int context);

  int rank() const noexcept override { return my_rank_; }
  int size() const noexcept override { return static_cast<int>(members_.size()); }

  void send(std::span<const std::byte> buf, int dest, int tag) override;
  Status recv(std::span<std::byte> buf, int source, int tag) override;
  Status sendrecv(std::span<const std::byte> sendbuf, int dest, int sendtag,
                  std::span<std::byte> recvbuf, int source, int recvtag) override;

  /// Dissemination barrier over the subgroup using zero-byte messages.
  void barrier() override;

  /// Parent rank backing subgroup rank `r`.
  int parent_rank(int r) const;

  /// Subgroup rank of parent rank `pr`, or -1 if not a member.
  int local_rank_of(int pr) const noexcept;

  /// The parent communicator this view translates onto.
  Comm& parent() const noexcept { return *parent_; }

  /// Parent ranks backing subgroup ranks 0..size()-1, in order.
  const std::vector<int>& members() const noexcept { return members_; }

  /// This subgroup's tag-namespace id (>= 1).
  int context() const noexcept { return context_; }

 private:
  int translate_tag(int tag) const;
  int translate_source(int source) const;

  Comm* parent_;  // non-owning; a pointer so SubComm stays assignable
  std::vector<int> members_;
  int context_;
  int my_rank_ = -1;
};

/// Tag reserved for SubComm::barrier; user tags must stay below it.
inline constexpr int kBarrierTag = kMaxUserTag;

}  // namespace bsb
