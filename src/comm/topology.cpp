#include "comm/topology.hpp"

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"

namespace bsb {

Topology::Topology(int nranks, int cores_per_node, Placement placement)
    : nranks_(nranks), cores_per_node_(cores_per_node), placement_(placement) {
  BSB_REQUIRE(nranks > 0, "Topology: nranks must be positive");
  BSB_REQUIRE(cores_per_node > 0, "Topology: cores_per_node must be positive");
  num_nodes_ = static_cast<int>(ceil_div(static_cast<std::uint64_t>(nranks),
                                         static_cast<std::uint64_t>(cores_per_node)));
}

Topology Topology::single_node(int nranks) {
  return Topology(nranks, nranks, Placement::Block);
}

int Topology::node_of(int rank) const {
  BSB_REQUIRE(rank >= 0 && rank < nranks_, "Topology: rank out of range");
  switch (placement_) {
    case Placement::Block:
      return rank / cores_per_node_;
    case Placement::Cyclic:
      return rank % num_nodes_;
  }
  BSB_ASSERT(false, "unreachable placement");
}

std::vector<int> Topology::ranks_on_node(int node) const {
  BSB_REQUIRE(node >= 0 && node < num_nodes_, "Topology: node out of range");
  std::vector<int> out;
  for (int r = 0; r < nranks_; ++r) {
    if (node_of(r) == node) out.push_back(r);
  }
  return out;
}

std::string Topology::describe() const {
  return std::to_string(nranks_) + " ranks on " + std::to_string(num_nodes_) +
         " node(s) x " + std::to_string(cores_per_node_) + " cores, " +
         (placement_ == Placement::Block ? "block" : "cyclic") + " placement";
}

}  // namespace bsb
