// Chunk layout math for scatter-based broadcasts.
//
// The scatter-ring-allgather broadcast divides the root's nbytes buffer
// into P chunks of scatter_size = ceil(nbytes / P) bytes; trailing chunks
// may be short or empty when nbytes is not divisible by P (the pseudo-code
// in the paper clamps negative counts to zero — count() does the same).
//
// Chunk indices are RELATIVE ranks: the rank with relative rank i (i.e.
// (rank - root + P) % P) owns chunk i, which lives at byte offset
// i * scatter_size of the (absolute-layout) user buffer.
#pragma once

#include <cstdint>
#include <span>

#include "bsbutil/error.hpp"

namespace bsb {

/// Relative rank of `rank` with respect to `root` in a group of `size`.
constexpr int rel_rank(int rank, int root, int size) {
  BSB_REQUIRE(size > 0 && rank >= 0 && rank < size && root >= 0 && root < size,
              "rel_rank: rank/root out of range");
  return rank >= root ? rank - root : rank - root + size;
}

/// Inverse of rel_rank: absolute rank of relative rank `rel`.
constexpr int abs_rank(int rel, int root, int size) {
  BSB_REQUIRE(size > 0 && rel >= 0 && rel < size && root >= 0 && root < size,
              "abs_rank: rel/root out of range");
  const int r = rel + root;
  return r < size ? r : r - size;
}

/// Division of `nbytes` into `nchunks` chunks of ceil(nbytes/nchunks) bytes.
class ChunkLayout {
 public:
  ChunkLayout(std::uint64_t nbytes, int nchunks)
      : nbytes_(nbytes), nchunks_(nchunks) {
    BSB_REQUIRE(nchunks > 0, "ChunkLayout: need at least one chunk");
    scatter_size_ = nbytes == 0 ? 0 : (nbytes + nchunks - 1) / nchunks;
  }

  std::uint64_t nbytes() const noexcept { return nbytes_; }
  int nchunks() const noexcept { return nchunks_; }

  /// ceil(nbytes / nchunks); 0 when nbytes == 0.
  std::uint64_t scatter_size() const noexcept { return scatter_size_; }

  /// Byte offset of chunk i (clamped to nbytes so disp()+count() is valid).
  std::uint64_t disp(int i) const {
    check_index(i);
    const std::uint64_t d = static_cast<std::uint64_t>(i) * scatter_size_;
    return d < nbytes_ ? d : nbytes_;
  }

  /// Byte count of chunk i (possibly 0 for trailing chunks).
  std::uint64_t count(int i) const {
    check_index(i);
    const std::uint64_t d = static_cast<std::uint64_t>(i) * scatter_size_;
    if (d >= nbytes_) return 0;
    const std::uint64_t rest = nbytes_ - d;
    return rest < scatter_size_ ? rest : scatter_size_;
  }

  /// Total bytes of the contiguous chunk range [first, first+n).
  std::uint64_t range_count(int first, int n) const {
    BSB_REQUIRE(n >= 0 && first >= 0 && first + n <= nchunks_,
                "ChunkLayout: chunk range out of bounds");
    std::uint64_t total = 0;
    for (int i = 0; i < n; ++i) total += count(first + i);
    return total;
  }

  /// Subspan of `buffer` holding chunk i.
  std::span<std::byte> chunk(std::span<std::byte> buffer, int i) const {
    BSB_REQUIRE(buffer.size() >= nbytes_, "ChunkLayout: buffer smaller than nbytes");
    return buffer.subspan(disp(i), count(i));
  }
  std::span<const std::byte> chunk(std::span<const std::byte> buffer, int i) const {
    BSB_REQUIRE(buffer.size() >= nbytes_, "ChunkLayout: buffer smaller than nbytes");
    return buffer.subspan(disp(i), count(i));
  }

 private:
  void check_index(int i) const {
    BSB_REQUIRE(i >= 0 && i < nchunks_, "ChunkLayout: chunk index out of range");
  }

  std::uint64_t nbytes_;
  int nchunks_;
  std::uint64_t scatter_size_;
};

}  // namespace bsb
