#include "comm/subcomm.hpp"

#include <algorithm>
#include <unordered_set>

#include "bsbutil/error.hpp"

namespace bsb {

SubComm::SubComm(Comm& parent, std::vector<int> members, int context)
    : parent_(&parent), members_(std::move(members)), context_(context) {
  BSB_REQUIRE(!members_.empty(), "SubComm: empty member list");
  BSB_REQUIRE(context >= 1, "SubComm: context must be >= 1");
  std::unordered_set<int> seen;
  for (int pr : members_) {
    BSB_REQUIRE(pr >= 0 && pr < parent.size(), "SubComm: member outside parent");
    BSB_REQUIRE(seen.insert(pr).second, "SubComm: duplicate member");
  }
  const auto it = std::find(members_.begin(), members_.end(), parent.rank());
  BSB_REQUIRE(it != members_.end(), "SubComm: calling rank not in member list");
  my_rank_ = static_cast<int>(it - members_.begin());
}

int SubComm::parent_rank(int r) const {
  BSB_REQUIRE(r >= 0 && r < size(), "SubComm: subgroup rank out of range");
  return members_[r];
}

int SubComm::local_rank_of(int pr) const noexcept {
  const auto it = std::find(members_.begin(), members_.end(), pr);
  return it == members_.end() ? -1 : static_cast<int>(it - members_.begin());
}

int SubComm::translate_tag(int tag) const {
  BSB_REQUIRE(tag >= 0 && tag <= kMaxUserTag, "SubComm: tag outside user tag space");
  return context_ * (kMaxUserTag + 1) + tag;
}

int SubComm::translate_source(int source) const {
  if (source == kAnySource) return kAnySource;
  return parent_rank(source);
}

void SubComm::send(std::span<const std::byte> buf, int dest, int tag) {
  parent_->send(buf, parent_rank(dest), translate_tag(tag));
}

Status SubComm::recv(std::span<std::byte> buf, int source, int tag) {
  BSB_REQUIRE(tag != kAnyTag, "SubComm: wildcard tags would cross contexts");
  Status st = parent_->recv(buf, translate_source(source), translate_tag(tag));
  st.tag = tag;
  const int local = local_rank_of(st.source);
  BSB_ASSERT(local >= 0, "SubComm: message from outside the subgroup");
  st.source = local;
  return st;
}

Status SubComm::sendrecv(std::span<const std::byte> sendbuf, int dest, int sendtag,
                         std::span<std::byte> recvbuf, int source, int recvtag) {
  BSB_REQUIRE(recvtag != kAnyTag, "SubComm: wildcard tags would cross contexts");
  Status st = parent_->sendrecv(sendbuf, parent_rank(dest), translate_tag(sendtag),
                               recvbuf, translate_source(source), translate_tag(recvtag));
  st.tag = recvtag;
  const int local = local_rank_of(st.source);
  BSB_ASSERT(local >= 0, "SubComm: message from outside the subgroup");
  st.source = local;
  return st;
}

void SubComm::barrier() {
  const int n = size();
  if (n == 1) return;
  // Dissemination barrier: after round k every rank has (transitively)
  // heard from 2^(k+1) predecessors; ceil(log2 n) rounds synchronize all.
  for (int dist = 1; dist < n; dist <<= 1) {
    const int to = (my_rank_ + dist) % n;
    const int from = (my_rank_ - dist % n + n) % n;
    sendrecv({}, to, kBarrierTag, {}, from, kBarrierTag);
  }
}

}  // namespace bsb
