// Receive-completion status, mirroring MPI_Status.
#pragma once

#include <cstddef>

namespace bsb {

/// Result of a completed receive: who sent it, with which tag, and how many
/// bytes actually arrived (may be less than the receive buffer size, as in
/// MPI; more is a truncation error raised by the backend).
struct Status {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

}  // namespace bsb
