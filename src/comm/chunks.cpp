// ChunkLayout is header-only; this TU exists so the comm target has an
// archive member and to anchor the header's compilation.
#include "comm/chunks.hpp"
