// The NATIVE (enclosed) ring allgather used by MPICH3's scatter-ring-
// allgather broadcast — the suboptimal phase the paper tunes (Figure 3).
//
// For P-1 steps, every rank sends chunk j to its right neighbour and
// receives chunk jnext from its left neighbour, with j walking backwards
// around the ring. Every rank sends AND receives on every step, as if it
// owned only its own chunk — ignoring the extra chunks non-leaf ranks
// already hold after the binomial scatter. Total transfers: P * (P - 1).
#pragma once

#include <cstddef>
#include <span>

#include "comm/chunks.hpp"
#include "comm/comm.hpp"

namespace bsb::coll {

/// Run the enclosed ring allgather over chunks scattered by
/// scatter_binomial (chunk i owned by relative rank i). On return every
/// rank holds all layout.nbytes() bytes.
void allgather_ring_native(Comm& comm, std::span<std::byte> buffer, int root,
                           const ChunkLayout& layout);

}  // namespace bsb::coll
