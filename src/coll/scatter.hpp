// Standalone MPI_Scatter: the root holds P equal blocks; rank r receives
// block r. Binomial tree like MPICH: the root hands each subtree root its
// whole block range in one message and subtree roots re-scatter — P-1
// messages, ceil(log2 P) generations deep.
//
// (Distinct from scatter_binomial, which is the BROADCAST-internal scatter
// leaving data at chunk-home offsets of a shared buffer; this one has
// MPI_Scatter's root-sendbuf/all-recvbuf signature.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

/// At the root, `sendbuf` holds P*block bytes (block i for rank i); on
/// every rank `recvbuf` (block bytes) receives its own block. `sendbuf`
/// is ignored on non-roots and may be empty.
void scatter(Comm& comm, std::span<const std::byte> sendbuf,
             std::span<std::byte> recvbuf, std::uint64_t block, int root);

}  // namespace bsb::coll
