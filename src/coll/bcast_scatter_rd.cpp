#include "coll/bcast_scatter_rd.hpp"

#include "coll/allgather_recursive_doubling.hpp"
#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"

namespace bsb::coll {

void bcast_scatter_rd(Comm& comm, std::span<std::byte> buffer, int root) {
  const ChunkLayout layout(buffer.size(), comm.size());
  scatter_binomial(comm, buffer, root, layout);
  allgather_recursive_doubling(comm, buffer, root, layout);
}

}  // namespace bsb::coll
