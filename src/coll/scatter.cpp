#include "coll/scatter.hpp"

#include <cstring>
#include <vector>

#include "bsbutil/error.hpp"
#include "coll/scatter_binomial.hpp"
#include "coll/tags.hpp"
#include "comm/chunks.hpp"

namespace bsb::coll {

void scatter(Comm& comm, std::span<const std::byte> sendbuf,
             std::span<std::byte> recvbuf, std::uint64_t block, int root) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(root >= 0 && root < P, "scatter: root out of range");
  BSB_REQUIRE(recvbuf.size() == block, "scatter: recvbuf must be one block");
  if (me == root) {
    BSB_REQUIRE(sendbuf.size() >= static_cast<std::uint64_t>(P) * block,
                "scatter: root sendbuf too small");
  }
  const int rel = rel_rank(me, root, P);

  // Subtree staging buffer in RELATIVE block order: slot k holds the block
  // of relative rank rel+k. The root seeds it by rotating its sendbuf.
  const int my_span = scatter_subtree_span(rel, P);
  std::vector<std::byte> temp(static_cast<std::uint64_t>(my_span) * block);
  if (me == root && block > 0) {
    for (int k = 0; k < P; ++k) {
      const int owner = abs_rank(k, root, P);
      std::memcpy(temp.data() + static_cast<std::uint64_t>(k) * block,
                  sendbuf.data() + static_cast<std::uint64_t>(owner) * block,
                  block);
    }
  }

  // Receive our subtree range from the parent (non-roots only).
  int mask = 1;
  while (mask < P) {
    if (rel & mask) {
      int parent = me - mask;
      if (parent < 0) parent += P;
      comm.recv(temp, parent, tags::kStandaloneScatter);
      break;
    }
    mask <<= 1;
  }

  // Peel off and forward the upper halves, largest child first (mirror of
  // the receive order in gather_binomial).
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < P) {
      const int child = abs_rank(rel + mask, root, P);
      const std::uint64_t child_blocks = scatter_subtree_span(rel + mask, P);
      comm.send(std::span<const std::byte>(temp).subspan(
                    static_cast<std::uint64_t>(mask) * block,
                    child_blocks * block),
                child, tags::kStandaloneScatter);
    }
    mask >>= 1;
  }

  if (block > 0) std::memcpy(recvbuf.data(), temp.data(), block);
}

}  // namespace bsb::coll
