#include "coll/bcast_smp.hpp"

#include <vector>

#include "bsbutil/error.hpp"
#include "coll/bcast_binomial.hpp"
#include "comm/subcomm.hpp"

namespace bsb::coll {

namespace {
// SubComm tag-namespace contexts: the leader group and every node group
// must not collide.
constexpr int kLeaderContext = 1;
constexpr int kNodeContextBase = 2;

// Shared three-phase body, generic over the topology type: the uniform
// comm/topology.hpp Topology (Block or Cyclic placement) and the ragged
// hier::Topology expose the same node queries. Leader election is the
// hier::Topology rule (root leads its node, lowest rank elsewhere),
// which both entry points share.
template <typename Topo>
void bcast_smp_impl(Comm& comm, std::span<std::byte> buffer, int root,
                    const Topo& topo, const BcastFn& inter_bcast) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(topo.nranks() == P, "bcast_smp: topology size != comm size");
  BSB_REQUIRE(root >= 0 && root < P, "bcast_smp: root out of range");

  const int root_node = topo.node_of(root);
  const int my_node = topo.node_of(me);

  auto leader_of = [&](int node) {
    return node == root_node ? root : topo.ranks_on_node(node)[0];
  };
  const bool i_am_leader = leader_of(my_node) == me;

  const std::vector<int> my_node_ranks = topo.ranks_on_node(my_node);

  // Phase 1: broadcast inside the root's node (single-rank nodes skip).
  if (my_node == root_node && my_node_ranks.size() > 1) {
    SubComm node_comm(comm, my_node_ranks, kNodeContextBase + my_node);
    bcast_binomial(node_comm, buffer, node_comm.local_rank_of(root));
  }

  // Phase 2: broadcast across node leaders.
  if (i_am_leader && topo.num_nodes() > 1) {
    std::vector<int> leaders;
    leaders.reserve(static_cast<std::size_t>(topo.num_nodes()));
    for (int n = 0; n < topo.num_nodes(); ++n) leaders.push_back(leader_of(n));
    SubComm leader_comm(comm, std::move(leaders), kLeaderContext);
    inter_bcast(leader_comm, buffer, root_node);
  }

  // Phase 3: broadcast inside every non-root node.
  if (my_node != root_node && my_node_ranks.size() > 1) {
    SubComm node_comm(comm, my_node_ranks, kNodeContextBase + my_node);
    bcast_binomial(node_comm, buffer, node_comm.local_rank_of(leader_of(my_node)));
  }
}

}  // namespace

void bcast_smp(Comm& comm, std::span<std::byte> buffer, int root,
               const Topology& topo, const BcastFn& inter_bcast) {
  bcast_smp_impl(comm, buffer, root, topo, inter_bcast);
}

void bcast_smp(Comm& comm, std::span<std::byte> buffer, int root,
               const hier::Topology& topo, const BcastFn& inter_bcast) {
  bcast_smp_impl(comm, buffer, root, topo, inter_bcast);
}

}  // namespace bsb::coll
