// MPI_Comm_split over the abstract Comm: every rank supplies a color and a
// key; ranks sharing a color form a SubComm, ordered by (key, parent
// rank). This is the operation the paper's introduction names as a common
// source of non-power-of-two communicators ("due to splitting on the
// communicator in the applications").
#pragma once

#include <optional>

#include "comm/comm.hpp"
#include "comm/subcomm.hpp"

namespace bsb::coll {

/// Pass as `color` to opt out of every subgroup (MPI_UNDEFINED).
inline constexpr int kUndefinedColor = -1;

/// Collective over `parent`: all ranks must call it together. Returns the
/// subgroup for this rank's color (nullopt for kUndefinedColor). Subgroup
/// tag contexts are `base_context + index-of-color` (colors sorted
/// ascending), so splits with distinct base_context ranges can coexist;
/// colors must be >= 0 (or kUndefinedColor) and base_context >= 1.
std::optional<SubComm> comm_split(Comm& parent, int color, int key,
                                  int base_context);

}  // namespace bsb::coll
