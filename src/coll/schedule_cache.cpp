#include "coll/schedule_cache.hpp"

#include "bsbutil/error.hpp"

namespace bsb::coll {

ScheduleCache::ScheduleCache(std::size_t capacity) : capacity_(capacity) {
  BSB_REQUIRE(capacity >= 1, "ScheduleCache: capacity must be positive");
}

std::shared_ptr<const Plan> ScheduleCache::get_or_build(const PlanKey& key,
                                                        const Builder& build) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.pos);  // refresh recency
    return it->second.plan;
  }
  ++misses_;
  auto plan = std::make_shared<const Plan>(build());
  BSB_REQUIRE(plan->nranks == key.nranks && plan->nbytes == key.nbytes &&
                  plan->root == key.root,
              "ScheduleCache: builder produced a plan for a different key");
  lru_.push_front(key);
  map_.emplace(key, Entry{plan, lru_.begin()});
  evict_to_capacity_locked();
  return plan;
}

ScheduleCache::Stats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = map_.size();
  s.capacity = capacity_;
  return s;
}

void ScheduleCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  hits_ = misses_ = evictions_ = 0;
}

void ScheduleCache::set_capacity(std::size_t capacity) {
  BSB_REQUIRE(capacity >= 1, "ScheduleCache: capacity must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  evict_to_capacity_locked();
}

void ScheduleCache::evict_to_capacity_locked() {
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

ScheduleCache& process_schedule_cache() {
  static ScheduleCache cache;
  return cache;
}

}  // namespace bsb::coll
