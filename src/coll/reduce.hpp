// Typed reductions over the abstract Comm: binomial-tree MPI_Reduce and
// MPI_Allreduce (recursive doubling for power-of-two groups, binomial
// reduce + binomial broadcast otherwise — the same structural choices
// MPICH makes for commutative operations).
//
// Element types: any trivially copyable arithmetic-like type; operations
// are commutative and associative functors (Sum/Max/Min provided).
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"
#include "coll/bcast_binomial.hpp"
#include "coll/tags.hpp"
#include "comm/chunks.hpp"
#include "comm/comm.hpp"

namespace bsb::coll {

struct SumOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};
struct MaxOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return b < a ? a : b;
  }
};
struct MinOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a < b ? a : b;
  }
};

namespace detail {

inline constexpr int kReduceTag = tags::kReduce;
inline constexpr int kAllreduceTag = tags::kAllreduce;

template <typename T>
std::span<std::byte> as_bytes(std::span<T> s) {
  return {reinterpret_cast<std::byte*>(s.data()), s.size_bytes()};
}
template <typename T>
std::span<const std::byte> as_bytes(std::span<const T> s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size_bytes()};
}

template <typename T, typename Op>
void combine(std::span<T> acc, std::span<const T> in, Op op) {
  BSB_REQUIRE(acc.size() == in.size(), "reduce: element count mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = op(acc[i], in[i]);
}

}  // namespace detail

/// Binomial-tree reduction of `values` (same count on every rank) into
/// `result` at the root (ignored elsewhere; may be empty). `op` must be
/// commutative and associative.
template <typename T, typename Op>
void reduce_binomial(Comm& comm, std::span<const T> values, std::span<T> result,
                     Op op, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(root >= 0 && root < P, "reduce: root out of range");
  const int rel = rel_rank(me, root, P);

  std::vector<T> acc(values.begin(), values.end());
  std::vector<T> incoming(values.size());

  // Mirror of the binomial broadcast: leaves send first, subtree roots
  // fold each child's partial before forwarding their own.
  int mask = 1;
  while (mask < P) {
    if (rel & mask) {
      int parent = me - mask;
      if (parent < 0) parent += P;
      comm.send(detail::as_bytes(std::span<const T>(acc)), parent,
                detail::kReduceTag);
      break;
    }
    if (rel + mask < P) {
      const int child = abs_rank(rel + mask, root, P);
      comm.recv(detail::as_bytes(std::span<T>(incoming)), child,
                detail::kReduceTag);
      detail::combine(std::span<T>(acc), std::span<const T>(incoming), op);
    }
    mask <<= 1;
  }

  if (me == root) {
    BSB_REQUIRE(result.size() == values.size(), "reduce: result size mismatch");
    std::memcpy(result.data(), acc.data(), acc.size() * sizeof(T));
  }
}

/// Allreduce: every rank ends with op-fold of all contributions, in place.
/// Power-of-two groups use recursive doubling (log2 P exchange rounds);
/// other sizes fall back to reduce-to-0 + broadcast.
template <typename T, typename Op>
void allreduce(Comm& comm, std::span<T> values, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int P = comm.size();
  const int me = comm.rank();
  if (P == 1) return;

  if (is_pow2(static_cast<std::uint64_t>(P))) {
    std::vector<T> incoming(values.size());
    for (int mask = 1; mask < P; mask <<= 1) {
      const int partner = me ^ mask;
      comm.sendrecv(detail::as_bytes(std::span<const T>(values)), partner,
                    detail::kAllreduceTag,
                    detail::as_bytes(std::span<T>(incoming)), partner,
                    detail::kAllreduceTag);
      detail::combine(values, std::span<const T>(incoming), op);
    }
    return;
  }

  reduce_binomial(comm, std::span<const T>(values), values, op, /*root=*/0);
  bcast_binomial(comm, detail::as_bytes(values), /*root=*/0);
}

}  // namespace bsb::coll
