#include "coll/comm_split.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "bsbutil/error.hpp"
#include "coll/allgather_bruck.hpp"

namespace bsb::coll {

namespace {
struct Entry {
  int color;
  int key;
};
static_assert(sizeof(Entry) == 8);
}  // namespace

std::optional<SubComm> comm_split(Comm& parent, int color, int key,
                                  int base_context) {
  BSB_REQUIRE(color >= 0 || color == kUndefinedColor,
              "comm_split: color must be >= 0 or kUndefinedColor");
  BSB_REQUIRE(base_context >= 1, "comm_split: base_context must be >= 1");
  const int P = parent.size();

  // Everyone learns everyone's (color, key) via an allgather.
  std::vector<std::byte> table(static_cast<std::size_t>(P) * sizeof(Entry));
  const Entry mine{color, key};
  std::memcpy(table.data() + parent.rank() * sizeof(Entry), &mine, sizeof(Entry));
  allgather_bruck(parent, table, sizeof(Entry));

  std::vector<Entry> entries(P);
  std::memcpy(entries.data(), table.data(), table.size());

  // Distinct colors in ascending order define the context offsets, so all
  // participants derive identical contexts without more communication.
  std::map<int, int> color_index;
  for (const Entry& e : entries) {
    if (e.color != kUndefinedColor) color_index.emplace(e.color, 0);
  }
  int idx = 0;
  for (auto& [c, i] : color_index) i = idx++;

  if (color == kUndefinedColor) return std::nullopt;

  // Members of my color, ordered by (key, parent rank) as MPI specifies.
  std::vector<int> members;
  for (int r = 0; r < P; ++r) {
    if (entries[r].color == color) members.push_back(r);
  }
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    return entries[a].key < entries[b].key;
  });

  return SubComm(parent, std::move(members), base_context + color_index.at(color));
}

}  // namespace bsb::coll
