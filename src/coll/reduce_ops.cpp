#include "coll/reduce_ops.hpp"

#include <cstring>

#include "bsbutil/error.hpp"
#include "bsbutil/rng.hpp"
#include "coll/reduce.hpp"
#include "comm/chunks.hpp"

namespace bsb::coll {

namespace {

template <typename T>
T load(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

template <typename T>
void store(std::byte* p, T v) {
  std::memcpy(p, &v, sizeof v);
}

template <typename T>
T apply(RedOp op, T a, T b) {
  return op == RedOp::Sum ? static_cast<T>(a + b) : (b < a ? a : b);
}

template <typename T>
void combine_into_typed(RedOp op, std::span<std::byte> dst,
                        std::span<const std::byte> src) {
  for (std::size_t i = 0; i < dst.size(); i += sizeof(T)) {
    store<T>(dst.data() + i,
             apply<T>(op, load<T>(src.data() + i), load<T>(dst.data() + i)));
  }
}

std::uint64_t contribution_hash(std::uint64_t seed, int rank,
                                std::uint64_t elem) {
  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(rank) + 1) *
                            0x9e3779b97f4a7c15ULL ^
                 (elem + 1) * 0x100000001b3ULL);
  return rng.next();
}

std::int32_t contribution_i32(std::uint64_t seed, int rank, std::uint64_t elem) {
  // Magnitude <= 125: a sum over even millions of ranks stays far from
  // INT32 limits, so signed overflow (UB) is impossible by construction.
  return static_cast<std::int32_t>(contribution_hash(seed, rank, elem) % 251) -
         125;
}

double contribution_f64(std::uint64_t seed, int rank, std::uint64_t elem) {
  // An integer head (0..4096) plus a 2^-48-scaled tail: the two parts span
  // more than 52 mantissa bits, so SUMS of these values round and the
  // result depends on association — exactly what pins the fold order.
  // All values are >= 0, so -0.0 (where max's operand order would show)
  // never occurs.
  const std::uint64_t h = contribution_hash(seed, rank, elem);
  return static_cast<double>(h % 4097) +
         static_cast<double>((h >> 32) % 4096) * 0x1p-48;
}

template <typename T>
T contribution_typed(std::uint64_t seed, int rank, std::uint64_t elem);
template <>
std::int32_t contribution_typed<std::int32_t>(std::uint64_t seed, int rank,
                                              std::uint64_t elem) {
  return contribution_i32(seed, rank, elem);
}
template <>
double contribution_typed<double>(std::uint64_t seed, int rank,
                                  std::uint64_t elem) {
  return contribution_f64(seed, rank, elem);
}

template <typename T>
T ring_reduced_typed(RedOp op, std::uint64_t seed, int P, int root,
                     int chunk_rel, std::uint64_t elem) {
  // Left fold in ring arrival order: the chunk's partial starts at relative
  // rank chunk_rel+1 and each later rank folds its contribution on the
  // right, the owner (relative rank chunk_rel) folding last.
  T acc = contribution_typed<T>(
      seed, abs_rank((chunk_rel + 1) % P, root, P), elem);
  for (int t = 2; t <= P; ++t) {
    const int rel = (chunk_rel + t) % P;
    acc = apply<T>(op, acc, contribution_typed<T>(seed, abs_rank(rel, root, P), elem));
  }
  return acc;
}

template <typename T>
T rd_reduced_typed(RedOp op, std::uint64_t seed, int lo, int n,
                   std::uint64_t elem) {
  if (n == 1) return contribution_typed<T>(seed, lo, elem);
  const int half = n / 2;
  return apply<T>(op, rd_reduced_typed<T>(op, seed, lo, half, elem),
                  rd_reduced_typed<T>(op, seed, lo + half, half, elem));
}

}  // namespace

const char* to_string(RedOp op) noexcept {
  return op == RedOp::Sum ? "sum" : "max";
}

const char* to_string(RedDtype dtype) noexcept {
  return dtype == RedDtype::I32 ? "i32" : "f64";
}

std::optional<RedOp> red_op_from_string(const std::string& name) {
  if (name == "sum") return RedOp::Sum;
  if (name == "max") return RedOp::Max;
  return std::nullopt;
}

std::optional<RedDtype> red_dtype_from_string(const std::string& name) {
  if (name == "i32") return RedDtype::I32;
  if (name == "f64") return RedDtype::F64;
  return std::nullopt;
}

std::uint64_t elem_bytes(RedDtype dtype) noexcept {
  return dtype == RedDtype::I32 ? 4 : 8;
}

void combine_into(RedOp op, RedDtype dtype, std::span<std::byte> dst,
                  std::span<const std::byte> src) {
  BSB_REQUIRE(dst.size() == src.size(), "combine_into: span size mismatch");
  BSB_REQUIRE(dst.size() % elem_bytes(dtype) == 0,
              "combine_into: span not a whole number of elements");
  if (dtype == RedDtype::I32) {
    combine_into_typed<std::int32_t>(op, dst, src);
  } else {
    combine_into_typed<double>(op, dst, src);
  }
}

void contribution(RedDtype dtype, std::uint64_t seed, int rank,
                  std::uint64_t elem, std::span<std::byte> out) {
  BSB_REQUIRE(out.size() == elem_bytes(dtype), "contribution: bad element span");
  if (dtype == RedDtype::I32) {
    store<std::int32_t>(out.data(), contribution_i32(seed, rank, elem));
  } else {
    store<double>(out.data(), contribution_f64(seed, rank, elem));
  }
}

void fill_contributions(RedDtype dtype, std::uint64_t seed, int rank,
                        std::uint64_t first_elem, std::span<std::byte> buf) {
  const std::uint64_t es = elem_bytes(dtype);
  BSB_REQUIRE(buf.size() % es == 0,
              "fill_contributions: span not a whole number of elements");
  for (std::uint64_t i = 0; i < buf.size(); i += es) {
    contribution(dtype, seed, rank, first_elem + i / es, buf.subspan(i, es));
  }
}

void ring_reduced_value(RedOp op, RedDtype dtype, std::uint64_t seed, int P,
                        int root, int chunk_rel, std::uint64_t elem,
                        std::span<std::byte> out) {
  BSB_REQUIRE(out.size() == elem_bytes(dtype),
              "ring_reduced_value: bad element span");
  if (dtype == RedDtype::I32) {
    store<std::int32_t>(out.data(), ring_reduced_typed<std::int32_t>(
                                        op, seed, P, root, chunk_rel, elem));
  } else {
    store<double>(out.data(),
                  ring_reduced_typed<double>(op, seed, P, root, chunk_rel, elem));
  }
}

void rd_reduced_value(RedOp op, RedDtype dtype, std::uint64_t seed, int P,
                      std::uint64_t elem, std::span<std::byte> out) {
  BSB_REQUIRE(out.size() == elem_bytes(dtype), "rd_reduced_value: bad element span");
  if (dtype == RedDtype::I32) {
    store<std::int32_t>(out.data(),
                        rd_reduced_typed<std::int32_t>(op, seed, 0, P, elem));
  } else {
    store<double>(out.data(), rd_reduced_typed<double>(op, seed, 0, P, elem));
  }
}

namespace {

template <typename T>
void allreduce_reinterpreted(Comm& comm, std::span<std::byte> buf, RedOp op) {
  BSB_REQUIRE(reinterpret_cast<std::uintptr_t>(buf.data()) % alignof(T) == 0,
              "allreduce_typed: buffer not element-aligned");
  std::span<T> values(reinterpret_cast<T*>(buf.data()), buf.size() / sizeof(T));
  if (op == RedOp::Sum) {
    allreduce(comm, values, SumOp{});
  } else {
    allreduce(comm, values, MaxOp{});
  }
}

}  // namespace

void allreduce_typed(Comm& comm, std::span<std::byte> buf, RedOp op,
                     RedDtype dtype) {
  BSB_REQUIRE(buf.size() % elem_bytes(dtype) == 0,
              "allreduce_typed: buffer not a whole number of elements");
  if (dtype == RedDtype::I32) {
    allreduce_reinterpreted<std::int32_t>(comm, buf, op);
  } else {
    allreduce_reinterpreted<double>(comm, buf, op);
  }
}

}  // namespace bsb::coll
