#include "coll/allgather_neighbor_exchange.hpp"

#include "bsbutil/error.hpp"
#include "coll/tags.hpp"

namespace bsb::coll {

namespace {
constexpr int kNeighborTag = tags::kNeighborExchange;

// Pair of blocks {2k, 2k+1} as a span of the gather buffer.
std::span<std::byte> pair_span(std::span<std::byte> buffer, std::uint64_t block,
                               int pair) {
  return buffer.subspan(static_cast<std::uint64_t>(2 * pair) * block, 2 * block);
}
}  // namespace

void allgather_neighbor_exchange(Comm& comm, std::span<std::byte> buffer,
                                 std::uint64_t block) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(P % 2 == 0, "neighbor exchange: requires an even rank count");
  BSB_REQUIRE(buffer.size() == static_cast<std::uint64_t>(P) * block,
              "neighbor exchange: buffer must hold exactly P blocks");
  const int m = P / 2;          // number of block pairs
  const int p = me / 2;         // my pair index
  const bool even = (me % 2) == 0;

  // Step 0: pair-mates swap their own blocks; afterwards both own pair p.
  {
    const int mate = even ? me + 1 : me - 1;
    comm.sendrecv(
        std::span<const std::byte>(buffer).subspan(
            static_cast<std::uint64_t>(me) * block, block),
        mate, kNeighborTag,
        buffer.subspan(static_cast<std::uint64_t>(mate) * block, block), mate,
        kNeighborTag);
  }

  // Steps 1..m-1: alternately exchange with the other-side neighbour,
  // forwarding the pair received in the previous step (own pair at s=1).
  // Closed forms for the travelling pair indices (derivation in the tests):
  //   even rank: receives pair p - ceil(s/2) on odd steps, p + s/2 on even;
  //   odd rank:  mirrored signs.
  int sent_pair = p;
  for (int s = 1; s < m; ++s) {
    const bool towards_lower = even == (s % 2 == 1);
    const int partner = towards_lower ? (me - 1 + P) % P : (me + 1) % P;
    int recv_pair;
    if (even) {
      recv_pair = (s % 2 == 1) ? p - (s + 1) / 2 : p + s / 2;
    } else {
      recv_pair = (s % 2 == 1) ? p + (s + 1) / 2 : p - s / 2;
    }
    recv_pair = ((recv_pair % m) + m) % m;
    comm.sendrecv(pair_span(buffer, block, sent_pair), partner, kNeighborTag,
                  pair_span(buffer, block, recv_pair), partner, kNeighborTag);
    sent_pair = recv_pair;
  }
}

}  // namespace bsb::coll
