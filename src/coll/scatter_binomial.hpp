// Binomial-tree scatter, phase 1 of the scatter-(ring|rd)-allgather
// broadcasts (Figures 1 and 2 of the paper). The root's buffer is divided
// into P chunks; after the scatter, the rank with relative rank i holds the
// contiguous chunk block [i, i + 2^k) of its binomial subtree — in
// particular at least its own chunk i — at the chunks' home offsets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "comm/chunks.hpp"
#include "comm/comm.hpp"

namespace bsb::coll {

/// Scatter `buffer` (layout.nbytes() bytes in P = layout.nchunks() chunks)
/// down the binomial tree rooted at `root`. Returns the number of bytes
/// this rank's buffer HOLDS afterwards — its whole binomial-subtree block,
/// starting at layout.disp(rel_rank(rank)); forwarding to children does not
/// erase data, which is precisely what the tuned ring exploits. All sizes
/// are computed analytically so the operation is data-oblivious
/// (recordable).
std::uint64_t scatter_binomial(Comm& comm, std::span<std::byte> buffer, int root,
                               const ChunkLayout& layout);

/// Bytes rank-with-relative-rank `rel` holds after the scatter completes:
/// the size of its binomial-subtree chunk block (closed form; used by tests
/// and by the transfer analysis).
std::uint64_t scatter_block_bytes(int rel, const ChunkLayout& layout);

/// Number of whole chunks in relative rank `rel`'s binomial subtree
/// (before clamping by the chunk count), i.e. the largest 2^k dividing rel,
/// or the whole group for rel == 0.
int scatter_subtree_span(int rel, int nranks);

}  // namespace bsb::coll
