#include "coll/allgather_bruck.hpp"

#include <cstring>
#include <vector>

#include "bsbutil/error.hpp"
#include "coll/tags.hpp"

namespace bsb::coll {

void allgather_bruck(Comm& comm, std::span<std::byte> buffer, std::uint64_t block) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(buffer.size() == static_cast<std::uint64_t>(P) * block,
              "allgather_bruck: buffer must hold exactly P blocks");
  if (P == 1) return;

  // temp holds blocks in ring order starting at me: temp block j is the
  // contribution of rank (me + j) % P.
  std::vector<std::byte> temp(buffer.size());
  if (block > 0) std::memcpy(temp.data(), buffer.data() + me * block, block);

  std::uint64_t have = 1;  // blocks accumulated at the front of temp
  int dist = 1;
  while (dist < P) {
    const int to = (me - dist % P + P) % P;
    const int from = (me + dist) % P;
    const std::uint64_t want =
        std::min<std::uint64_t>(have, static_cast<std::uint64_t>(P) - have);
    comm.sendrecv(std::span<const std::byte>(temp).subspan(0, want * block), to,
                  tags::kBruck,
                  std::span<std::byte>(temp).subspan(have * block, want * block),
                  from, tags::kBruck);
    have += want;
    dist <<= 1;
  }
  BSB_ASSERT(have == static_cast<std::uint64_t>(P), "bruck: incomplete gather");

  // Rotate back into rank order: temp block j belongs to rank (me+j)%P.
  for (int j = 0; j < P; ++j) {
    const int owner = (me + j) % P;
    if (block > 0) {
      std::memcpy(buffer.data() + static_cast<std::uint64_t>(owner) * block,
                  temp.data() + static_cast<std::uint64_t>(j) * block, block);
    }
  }
}

}  // namespace bsb::coll
