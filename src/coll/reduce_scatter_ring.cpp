#include "coll/reduce_scatter_ring.hpp"

#include <vector>

#include "bsbutil/error.hpp"
#include "coll/scatter_binomial.hpp"
#include "coll/tags.hpp"
#include "comm/chunks.hpp"

namespace bsb::coll {

void reduce_scatter_ring(Comm& comm, std::span<std::byte> buf, int root,
                         RedOp op, RedDtype dtype) {
  const int P = comm.size();
  const int me = comm.rank();
  const std::uint64_t nbytes = buf.size();
  BSB_REQUIRE(nbytes % (static_cast<std::uint64_t>(P) * elem_bytes(dtype)) == 0,
              "reduce_scatter_ring: nbytes must be a multiple of P * elem size");
  if (P == 1) return;
  const ChunkLayout layout(nbytes, P);
  const std::uint64_t chunk_bytes = layout.scatter_size();

  const int rel = rel_rank(me, root, P);
  const int right = abs_rank((rel + 1) % P, root, P);
  const int left = abs_rank((rel + P - 1) % P, root, P);

  // Partials arrive into scratch, never in place: the home offset of an
  // incoming chunk still holds THIS rank's yet-unfolded contribution, which
  // combine_into consumes as the right operand. Sends always leave from the
  // chunks' home offsets in `buf`, so recorded schedules carry real source
  // offsets and the reduce-flow validator can key contributor intervals on
  // them.
  std::vector<std::byte> incoming(chunk_bytes);
  for (int s = 1; s < P; ++s) {
    const int send_c = (rel - s + P) % P;
    const int recv_c = (rel - s - 1 + 2 * P) % P;
    comm.sendrecv(layout.chunk(std::span<const std::byte>(buf), send_c), right,
                  tags::kReduceScatterRing, incoming, left,
                  tags::kReduceScatterRing);
    combine_into(op, dtype, layout.chunk(buf, recv_c), incoming);
  }
}

void reduce_scatter_blocks_ring(Comm& comm, std::span<std::byte> buf, int root,
                                RedOp op, RedDtype dtype,
                                const ReduceScatterBlocksOptions& opts) {
  reduce_scatter_ring(comm, buf, root, op, dtype);

  const int P = comm.size();
  const int me = comm.rank();
  if (P == 1) return;
  const ChunkLayout layout(buf.size(), P);
  const int rel = rel_rank(me, root, P);

  // Phase B: ship the finished chunk straight to every binomial ancestor.
  // Rank r's ancestors are found by successively clearing the lowest set
  // bit, so there are popcount(r) of them, and each ancestor a satisfies
  // r in [a, a + span(a)) — the delivery rebuilds exactly the post-scatter
  // block ownership. All sends precede all receives on every rank;
  // dependencies only ever point from a chunk to strictly smaller chunk
  // indices, so the schedule is acyclic (and bsb-verify's happens-before
  // pass proves it deadlock-free instance by instance).
  for (int a = rel; a != 0;) {
    a -= a & -a;
    comm.send(layout.chunk(std::span<const std::byte>(buf), rel),
              abs_rank(a, root, P), tags::kReduceScatterFinal);
    if (opts.sabotage_double_final && a == rel - (rel & -rel)) {
      comm.send(layout.chunk(std::span<const std::byte>(buf), rel),
                abs_rank(a, root, P), tags::kReduceScatterFinal);
    }
  }
  const int span = scatter_subtree_span(rel, P);
  for (int c = rel + 1; c < rel + span; ++c) {
    comm.recv(layout.chunk(buf, c), abs_rank(c, root, P),
              tags::kReduceScatterFinal);
    if (opts.sabotage_double_final && c - (c & -c) == rel) {
      comm.recv(layout.chunk(buf, c), abs_rank(c, root, P),
                tags::kReduceScatterFinal);
    }
  }
}

}  // namespace bsb::coll
