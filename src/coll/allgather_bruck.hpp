// Bruck allgather — a log-step allgather for ANY process count, included
// as an additional baseline for the algorithm-comparison ablation. Unlike
// the ring variants it rotates data through a temporary buffer, so it is
// benchmarked for time/traffic but not eligible for the single-buffer
// dataflow (coverage) validator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

/// Standalone allgather of equal `block`-byte contributions: on entry rank
/// r's contribution sits at buffer[r*block, (r+1)*block); on return every
/// rank holds all P blocks in rank order. buffer.size() must be P*block.
void allgather_bruck(Comm& comm, std::span<std::byte> buffer, std::uint64_t block);

}  // namespace bsb::coll
