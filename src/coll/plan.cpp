#include "coll/plan.hpp"

#include <algorithm>

#include "bsbutil/error.hpp"
#include "comm/chunks.hpp"

namespace bsb::coll {

std::uint64_t Plan::total_sends() const noexcept {
  std::uint64_t n = 0;
  for (const auto& rank_steps : steps) {
    for (const PlanStep& s : rank_steps) {
      if (s.kind != PlanStep::Kind::Recv) ++n;
    }
  }
  return n;
}

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

constexpr std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  // Word-wise FNV-1a: the multiply keeps the mix order-sensitive, and one
  // step per field stays cheap on the 16M-step P=4096 ring plans.
  return (h ^ v) * kFnvPrime;
}

}  // namespace

std::uint64_t Plan::fingerprint() const noexcept {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, static_cast<std::uint64_t>(nranks));
  h = fnv_mix(h, nbytes);
  for (const auto& rank_steps : steps) {
    h = fnv_mix(h, rank_steps.size());
    for (const PlanStep& s : rank_steps) {
      h = fnv_mix(h, static_cast<std::uint64_t>(s.kind));
      h = fnv_mix(h, static_cast<std::uint64_t>(s.dst));
      h = fnv_mix(h, s.send_off);
      h = fnv_mix(h, s.send_len);
      h = fnv_mix(h, static_cast<std::uint64_t>(s.src));
      h = fnv_mix(h, s.recv_off);
      h = fnv_mix(h, s.recv_len);
      h = fnv_mix(h, static_cast<std::uint64_t>(s.tag));
    }
  }
  return h;
}

Plan compile_plan(int nranks, std::uint64_t nbytes, int root, std::string name,
                  const trace::RankProgram& program) {
  BSB_REQUIRE(nranks >= 1, "compile_plan: nranks must be positive");
  BSB_REQUIRE(root >= 0 && root < nranks, "compile_plan: root out of range");
  Plan plan;
  plan.nranks = nranks;
  plan.nbytes = nbytes;
  plan.root = root;
  plan.name = std::move(name);
  plan.steps.resize(static_cast<std::size_t>(nranks));

  std::vector<std::byte> scratch(nbytes);
  std::vector<trace::Op> ops;
  for (int r = 0; r < nranks; ++r) {
    ops.clear();
    trace::RecordingComm recorder(r, nranks, scratch, ops);
    program(recorder, scratch);

    auto& steps = plan.steps[static_cast<std::size_t>(r)];
    steps.reserve(ops.size());
    for (const trace::Op& op : ops) {
      PlanStep step;
      switch (op.kind) {
        case trace::OpKind::Send: step.kind = PlanStep::Kind::Send; break;
        case trace::OpKind::Recv: step.kind = PlanStep::Kind::Recv; break;
        case trace::OpKind::SendRecv: step.kind = PlanStep::Kind::SendRecv; break;
        case trace::OpKind::Barrier:
          BSB_REQUIRE(false, "compile_plan: algorithm uses barriers");
      }
      if (op.has_send()) {
        BSB_REQUIRE(op.send_off != trace::kForeignOffset,
                    "compile_plan: algorithm used scratch memory");
        step.dst = op.dst;
        step.send_off = op.send_off;
        step.send_len = op.send_bytes;
        step.tag = op.send_tag;
      }
      if (op.has_recv()) {
        BSB_REQUIRE(op.recv_off != trace::kForeignOffset,
                    "compile_plan: algorithm used scratch memory");
        BSB_REQUIRE(!op.has_send() || op.recv_tag == op.send_tag,
                    "compile_plan: sendrecv halves use different tags");
        step.src = op.src;
        step.recv_off = op.recv_off;
        step.recv_len = op.recv_cap;
        step.tag = op.recv_tag;
      }
      plan.max_tag = std::max(plan.max_tag, step.tag);
      steps.push_back(step);
    }
  }
  return plan;
}

void execute_plan_rank(Comm& comm, const Plan& plan, int rank,
                       std::span<std::byte> buffer, int root) {
  BSB_REQUIRE(rank >= 0 && rank < plan.nranks,
              "execute_plan_rank: rank out of range");
  BSB_REQUIRE(root >= 0 && root < plan.nranks,
              "execute_plan_rank: root out of range");
  BSB_REQUIRE(comm.size() == plan.nranks,
              "execute_plan_rank: communicator size differs from the plan");
  BSB_REQUIRE(buffer.size() == plan.nbytes,
              "execute_plan_rank: buffer size differs from the planned size");
  const int P = plan.nranks;
  const int local = rel_rank(rank, root, P);
  for (const PlanStep& s : plan.steps[static_cast<std::size_t>(local)]) {
    switch (s.kind) {
      case PlanStep::Kind::Send:
        comm.send(std::span<const std::byte>(buffer).subspan(s.send_off, s.send_len),
                  abs_rank(s.dst, root, P), s.tag);
        break;
      case PlanStep::Kind::Recv:
        comm.recv(buffer.subspan(s.recv_off, s.recv_len),
                  abs_rank(s.src, root, P), s.tag);
        break;
      case PlanStep::Kind::SendRecv:
        comm.sendrecv(
            std::span<const std::byte>(buffer).subspan(s.send_off, s.send_len),
            abs_rank(s.dst, root, P), s.tag,
            buffer.subspan(s.recv_off, s.recv_len), abs_rank(s.src, root, P),
            s.tag);
        break;
    }
  }
}

trace::Schedule plan_to_schedule(const Plan& plan, int root) {
  BSB_REQUIRE(root >= 0 && root < plan.nranks,
              "plan_to_schedule: root out of range");
  const int P = plan.nranks;
  trace::Schedule sched;
  sched.nranks = P;
  sched.nbytes = plan.nbytes;
  sched.ops.resize(static_cast<std::size_t>(P));
  for (int rel = 0; rel < P; ++rel) {
    auto& ops = sched.ops[static_cast<std::size_t>(abs_rank(rel, root, P))];
    const auto& steps = plan.steps[static_cast<std::size_t>(rel)];
    ops.reserve(steps.size());
    for (const PlanStep& s : steps) {
      trace::Op op;
      switch (s.kind) {
        case PlanStep::Kind::Send: op.kind = trace::OpKind::Send; break;
        case PlanStep::Kind::Recv: op.kind = trace::OpKind::Recv; break;
        case PlanStep::Kind::SendRecv:
          op.kind = trace::OpKind::SendRecv;
          break;
      }
      if (s.kind != PlanStep::Kind::Recv) {
        op.dst = abs_rank(s.dst, root, P);
        op.send_tag = s.tag;
        op.send_bytes = s.send_len;
        op.send_off = s.send_off;
      }
      if (s.kind != PlanStep::Kind::Send) {
        op.src = abs_rank(s.src, root, P);
        op.recv_tag = s.tag;
        op.recv_cap = s.recv_len;
        op.recv_off = s.recv_off;
      }
      ops.push_back(op);
    }
  }
  return sched;
}

std::string describe_plan_rank(const Plan& plan, int rank) {
  BSB_REQUIRE(rank >= 0 && rank < plan.nranks,
              "describe_plan_rank: rank out of range");
  const auto& steps = plan.steps[static_cast<std::size_t>(rank)];
  std::string out = plan.name + ", " + std::to_string(plan.nbytes) +
                    " bytes, root " + std::to_string(plan.root) + ", " +
                    std::to_string(steps.size()) + " step(s) on rank " +
                    std::to_string(rank) + "\n";
  for (const PlanStep& s : steps) {
    switch (s.kind) {
      case PlanStep::Kind::Send:
        out += "  send  [" + std::to_string(s.send_off) + "+" +
               std::to_string(s.send_len) + ") -> " + std::to_string(s.dst) + "\n";
        break;
      case PlanStep::Kind::Recv:
        out += "  recv  [" + std::to_string(s.recv_off) + "+" +
               std::to_string(s.recv_len) + ") <- " + std::to_string(s.src) + "\n";
        break;
      case PlanStep::Kind::SendRecv:
        out += "  xchg  [" + std::to_string(s.send_off) + "+" +
               std::to_string(s.send_len) + ") -> " + std::to_string(s.dst) +
               ", [" + std::to_string(s.recv_off) + "+" +
               std::to_string(s.recv_len) + ") <- " + std::to_string(s.src) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace bsb::coll
