// Runtime-dispatched reduction operators for the ownership-aware
// reduce_scatter / allreduce family. The templated reductions in
// coll/reduce.hpp fix the element type at compile time; the fuzz and
// verify layers instead sample (operator, datatype) pairs at runtime, so
// this header provides the small closed set they draw from, the combine
// kernel, and the deterministic contribution/oracle values the differential
// harness compares buffers against byte-for-byte.
//
// Ordering discipline: combine_into(dst, src) computes dst = op(src, dst)
// — `src` carries the EARLIER (left-fold) contributions. Floating-point
// addition is not associative, so every collective fixes one fold order and
// the oracle replays exactly that order; the threaded run must then match
// bitwise even under fault-injected message reordering (per-rank program
// order, and hence the combine order, is unaffected by faults).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace bsb::coll {

enum class RedOp : std::uint8_t { Sum, Max };
enum class RedDtype : std::uint8_t { I32, F64 };

const char* to_string(RedOp op) noexcept;
const char* to_string(RedDtype dtype) noexcept;
std::optional<RedOp> red_op_from_string(const std::string& name);
std::optional<RedDtype> red_dtype_from_string(const std::string& name);

/// Element size in bytes (4 for I32, 8 for F64).
std::uint64_t elem_bytes(RedDtype dtype) noexcept;

/// dst = op(src, dst), elementwise. Both spans must have the same size and
/// be a whole number of elements.
void combine_into(RedOp op, RedDtype dtype, std::span<std::byte> dst,
                  std::span<const std::byte> src);

/// Deterministic contribution of (rank, element) under `seed`, written as
/// the element's raw bytes into `out` (out.size() == elem_bytes(dtype)).
/// I32 values stay in [-125, 125] so sums over thousands of ranks cannot
/// overflow; F64 values mix magnitudes 2^0..2^12 with a 2^-48 tail so that
/// summing them ROUNDS — any deviation from the contracted fold order
/// changes the result bitwise and the byte oracle catches it.
void contribution(RedDtype dtype, std::uint64_t seed, int rank,
                  std::uint64_t elem, std::span<std::byte> out);

/// Fill `buf` (a whole number of elements, holding elements
/// [first_elem, first_elem + n)) with `rank`'s contributions.
void fill_contributions(RedDtype dtype, std::uint64_t seed, int rank,
                        std::uint64_t first_elem, std::span<std::byte> buf);

/// Oracle for the ring reduce_scatter family: the final value of one
/// element of chunk `chunk_rel` is the left fold, in ring arrival order,
/// over relative ranks chunk_rel+1, chunk_rel+2, ..., chunk_rel (mod P) —
/// i.e. acc starts at the chunk's first contributor and folds each later
/// arrival on the right, the exact order reduce_scatter_ring combines in.
void ring_reduced_value(RedOp op, RedDtype dtype, std::uint64_t seed, int P,
                        int root, int chunk_rel, std::uint64_t elem,
                        std::span<std::byte> out);

/// Oracle for the recursive-doubling allreduce (power-of-two P, rootless):
/// the balanced-tree fold op(fold(lo..mid), fold(mid..hi)) over absolute
/// ranks — the grouping rank 0 actually computes; every other rank's value
/// is bitwise equal because each top-level application commutes (IEEE
/// addition and max are commutative on the generated values).
void rd_reduced_value(RedOp op, RedDtype dtype, std::uint64_t seed, int P,
                      std::uint64_t elem, std::span<std::byte> out);

}  // namespace bsb::coll

namespace bsb {
class Comm;
}

namespace bsb::coll {

/// Runtime-dispatched front end for the templated coll::allreduce (the
/// recursive-doubling path for power-of-two groups): reinterprets `buf` as
/// elements of `dtype` IN PLACE, so recorded schedules carry real buffer
/// offsets. Requires buf to be element-aligned and a whole number of
/// elements.
void allreduce_typed(Comm& comm, std::span<std::byte> buf, RedOp op,
                     RedDtype dtype);

}  // namespace bsb::coll
