#include "coll/bcast_scatter_ring_native.hpp"

#include "coll/allgather_ring_native.hpp"
#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"

namespace bsb::coll {

void bcast_scatter_ring_native(Comm& comm, std::span<std::byte> buffer, int root) {
  const ChunkLayout layout(buffer.size(), comm.size());
  scatter_binomial(comm, buffer, root, layout);
  allgather_ring_native(comm, buffer, root, layout);
}

}  // namespace bsb::coll
