// Recursive-doubling allgather over binomial-scattered chunks — the phase
// MPICH3 uses for MEDIUM messages with POWER-OF-TWO process counts. Each
// of log2(P) rounds exchanges the accumulated block with the partner at
// XOR distance 2^k, doubling the held block.
#pragma once

#include <cstddef>
#include <span>

#include "comm/chunks.hpp"
#include "comm/comm.hpp"

namespace bsb::coll {

/// Requires a power-of-two comm size. Chunk i is owned by relative rank i
/// (as produced by scatter_binomial). On return every rank holds all
/// layout.nbytes() bytes.
void allgather_recursive_doubling(Comm& comm, std::span<std::byte> buffer, int root,
                                  const ChunkLayout& layout);

}  // namespace bsb::coll
