// MPICH3's broadcast for medium messages with power-of-two process counts:
// binomial scatter followed by a recursive-doubling allgather.
#pragma once

#include <cstddef>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

/// Requires a power-of-two comm size.
void bcast_scatter_rd(Comm& comm, std::span<std::byte> buffer, int root);

}  // namespace bsb::coll
