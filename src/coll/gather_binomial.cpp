#include "coll/gather_binomial.hpp"

#include <cstring>
#include <vector>

#include "bsbutil/error.hpp"
#include "coll/scatter_binomial.hpp"
#include "coll/tags.hpp"
#include "comm/chunks.hpp"

namespace bsb::coll {

namespace {
constexpr int kGatherTag = tags::kGather;
}  // namespace

void gather_binomial(Comm& comm, std::span<const std::byte> sendbuf,
                     std::span<std::byte> recvbuf, std::uint64_t block, int root) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(sendbuf.size() == block, "gather: sendbuf must be exactly one block");
  BSB_REQUIRE(root >= 0 && root < P, "gather: root out of range");
  if (me == root) {
    BSB_REQUIRE(recvbuf.size() >= static_cast<std::uint64_t>(P) * block,
                "gather: root recvbuf too small");
  }
  const int rel = rel_rank(me, root, P);

  // Accumulate this subtree's blocks in RELATIVE order: position k holds
  // the block of relative rank rel+k.
  const int my_span = scatter_subtree_span(rel, P);
  std::vector<std::byte> temp(static_cast<std::uint64_t>(my_span) * block);
  if (block > 0) std::memcpy(temp.data(), sendbuf.data(), block);

  // Receive children lowest-mask first (they root progressively larger
  // subtrees), exactly mirroring the scatter's send order reversed.
  int mask = 1;
  while (mask < P) {
    if (rel & mask) break;  // our own parent edge reached: stop collecting
    if (rel + mask < P) {
      const int child = abs_rank(rel + mask, root, P);
      const std::uint64_t child_blocks = scatter_subtree_span(rel + mask, P);
      comm.recv(std::span<std::byte>(temp).subspan(
                    static_cast<std::uint64_t>(mask) * block, child_blocks * block),
                child, kGatherTag);
    }
    mask <<= 1;
  }

  if (rel != 0) {
    int parent = me - mask;
    if (parent < 0) parent += P;
    comm.send(temp, parent, kGatherTag);
    return;
  }

  // Root: rotate from relative order back to absolute rank order.
  BSB_ASSERT(my_span == P, "gather: root subtree must cover the group");
  for (int k = 0; k < P; ++k) {
    const int owner = abs_rank(k, root, P);
    if (block > 0) {
      std::memcpy(recvbuf.data() + static_cast<std::uint64_t>(owner) * block,
                  temp.data() + static_cast<std::uint64_t>(k) * block, block);
    }
  }
}

}  // namespace bsb::coll
