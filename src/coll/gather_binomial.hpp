// Binomial-tree gather (MPI_Gather): every rank contributes an equal-size
// block; the root ends with all P blocks in rank order. The mirror image
// of scatter_binomial — subtree roots accumulate their subtree's blocks
// and forward them up in one message, so the tree moves ceil(log2 P)
// message generations and P-1 messages total.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

/// `sendbuf` holds this rank's `block` bytes. At the root, `recvbuf` must
/// hold P*block bytes and receives the blocks in ABSOLUTE rank order; on
/// other ranks `recvbuf` is ignored (may be empty). Internally blocks
/// travel in relative-rank order; the root performs the final rotation.
void gather_binomial(Comm& comm, std::span<const std::byte> sendbuf,
                     std::span<std::byte> recvbuf, std::uint64_t block, int root);

}  // namespace bsb::coll
