// Multi-core-aware (SMP) broadcast, as MPICH3 structures it for medium
// messages with non-power-of-two counts (paper §I):
//   1. binomial broadcast inside the root's node,
//   2. inter-node broadcast across one leader per node,
//   3. binomial broadcast inside every other node.
// The inter-node phase is pluggable so it can run either the native or the
// tuned scatter-ring-allgather.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "coll/hier/topology.hpp"
#include "comm/comm.hpp"
#include "comm/topology.hpp"

namespace bsb::coll {

/// An inter-node broadcast body: (leader comm, buffer, root-leader rank).
using BcastFn = std::function<void(Comm&, std::span<std::byte>, int)>;

/// `topo.nranks()` must equal comm.size(). The leader of the root's node is
/// the root itself; other nodes are led by their lowest rank.
void bcast_smp(Comm& comm, std::span<std::byte> buffer, int root,
               const Topology& topo, const BcastFn& inter_bcast);

/// bcast_smp over a ragged hier::Topology: non-divisible node sizes,
/// single-rank nodes and leader != first-rank-of-node shapes all work.
void bcast_smp(Comm& comm, std::span<std::byte> buffer, int root,
               const hier::Topology& topo, const BcastFn& inter_bcast);

}  // namespace bsb::coll
