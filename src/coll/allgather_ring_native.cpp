#include "coll/allgather_ring_native.hpp"

#include "bsbutil/error.hpp"
#include "coll/tags.hpp"

namespace bsb::coll {

void allgather_ring_native(Comm& comm, std::span<std::byte> buffer, int root,
                           const ChunkLayout& layout) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(layout.nchunks() == P, "allgather_ring_native: layout chunk count != P");
  BSB_REQUIRE(buffer.size() >= layout.nbytes(),
              "allgather_ring_native: buffer too small");

  const int left = (P + me - 1) % P;
  const int right = (me + 1) % P;
  int j = me;
  int jnext = left;

  for (int i = 1; i < P; ++i) {
    const int rel_j = rel_rank(j, root, P);
    const int rel_jnext = rel_rank(jnext, root, P);
    // Chunk rel_j moves out to the right; chunk rel_jnext arrives from the
    // left. Counts clamp to zero for trailing chunks (nbytes not divisible
    // by P), but the message is still exchanged — that is exactly the
    // "enclosed" behaviour the paper criticises.
    comm.sendrecv(layout.chunk(std::span<const std::byte>(buffer), rel_j), right,
                  tags::kRingAllgather,
                  layout.chunk(buffer, rel_jnext), left, tags::kRingAllgather);
    j = jnext;
    jnext = (P + jnext - 1) % P;
  }
}

}  // namespace bsb::coll
