// Segmented pipelined-ring broadcast: the buffer flows around the ring in
// fixed-size segments, so rank k starts forwarding segment i while segment
// i+1 is still in flight behind it. A classic large-message broadcast,
// included as an extension baseline for the ablation benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

/// Broadcast `buffer` from `root` around the ring in `segment_bytes`
/// segments (the last may be short). segment_bytes == 0 means one segment.
void bcast_ring_pipelined(Comm& comm, std::span<std::byte> buffer, int root,
                          std::uint64_t segment_bytes);

}  // namespace bsb::coll
