#include "coll/bcast_binomial.hpp"

#include "bsbutil/error.hpp"
#include "comm/chunks.hpp"
#include "coll/tags.hpp"

namespace bsb::coll {

void bcast_binomial(Comm& comm, std::span<std::byte> buffer, int root) {
  const int P = comm.size();
  const int me = comm.rank();
  const int rel = rel_rank(me, root, P);

  // Wait for the parent's copy. The parent of relative rank r is r with its
  // lowest set bit cleared; we find that bit by scanning masks upward.
  int mask = 1;
  while (mask < P) {
    if (rel & mask) {
      int src = me - mask;
      if (src < 0) src += P;
      comm.recv(buffer, src, tags::kBcastBinomial);
      break;
    }
    mask <<= 1;
  }

  // Forward to children: all ranks rel + mask for masks below our lowest
  // set bit (the full group for the root).
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < P) {
      int dst = me + mask;
      if (dst >= P) dst -= P;
      comm.send(buffer, dst, tags::kBcastBinomial);
    }
    mask >>= 1;
  }
}

}  // namespace bsb::coll
