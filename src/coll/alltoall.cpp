#include "coll/alltoall.hpp"

#include <cstring>

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"
#include "coll/tags.hpp"

namespace bsb::coll {

namespace {
constexpr int kAlltoallTag = tags::kAlltoall;
}  // namespace

void alltoall_pairwise(Comm& comm, std::span<const std::byte> sendbuf,
                       std::span<std::byte> recvbuf, std::uint64_t block) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(sendbuf.size() == static_cast<std::uint64_t>(P) * block,
              "alltoall: sendbuf must hold P blocks");
  BSB_REQUIRE(recvbuf.size() == static_cast<std::uint64_t>(P) * block,
              "alltoall: recvbuf must hold P blocks");

  if (block > 0) {
    std::memcpy(recvbuf.data() + static_cast<std::uint64_t>(me) * block,
                sendbuf.data() + static_cast<std::uint64_t>(me) * block, block);
  }

  const bool pof2 = is_pow2(static_cast<std::uint64_t>(P));
  for (int s = 1; s < P; ++s) {
    // XOR partners pair up symmetrically for power-of-two groups; the ring
    // schedule (send to r+s, receive from r-s) covers the general case.
    const int send_to = pof2 ? (me ^ s) : (me + s) % P;
    const int recv_from = pof2 ? (me ^ s) : (me - s % P + P) % P;
    comm.sendrecv(
        sendbuf.subspan(static_cast<std::uint64_t>(send_to) * block, block),
        send_to, kAlltoallTag,
        recvbuf.subspan(static_cast<std::uint64_t>(recv_from) * block, block),
        recv_from, kAlltoallTag);
  }
}

}  // namespace bsb::coll
