// Per-algorithm message tags. Distinct tags keep phases of composed
// collectives (scatter then allgather) from matching each other's traffic.
#pragma once

namespace bsb::coll::tags {

inline constexpr int kBcastBinomial = 1;
inline constexpr int kScatter = 2;
inline constexpr int kRingAllgather = 3;
inline constexpr int kRdAllgather = 4;
inline constexpr int kBruck = 5;
inline constexpr int kPipelinedRing = 6;
inline constexpr int kTunedRingAllgather = 7;
inline constexpr int kGather = 8;
inline constexpr int kReduce = 9;
inline constexpr int kAllreduce = 10;
inline constexpr int kNeighborExchange = 11;
inline constexpr int kAlltoall = 12;
inline constexpr int kStandaloneScatter = 13;

}  // namespace bsb::coll::tags
