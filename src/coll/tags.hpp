// Per-algorithm message tags. Distinct tags keep phases of composed
// collectives (scatter then allgather) from matching each other's traffic.
#pragma once

namespace bsb::coll::tags {

inline constexpr int kBcastBinomial = 1;
inline constexpr int kScatter = 2;
inline constexpr int kRingAllgather = 3;
inline constexpr int kRdAllgather = 4;
inline constexpr int kBruck = 5;
inline constexpr int kPipelinedRing = 6;
inline constexpr int kTunedRingAllgather = 7;
inline constexpr int kGather = 8;
inline constexpr int kReduce = 9;
inline constexpr int kAllreduce = 10;
inline constexpr int kNeighborExchange = 11;
inline constexpr int kAlltoall = 12;
inline constexpr int kStandaloneScatter = 13;
inline constexpr int kReduceScatterRing = 14;
inline constexpr int kReduceScatterFinal = 15;
inline constexpr int kAllgathervRing = 16;
inline constexpr int kAllgathervRingTuned = 17;
inline constexpr int kBruckHierGather = 18;
inline constexpr int kBruckHierExchange = 19;
inline constexpr int kBruckHierBcast = 20;
inline constexpr int kHierFanout = 21;

}  // namespace bsb::coll::tags
