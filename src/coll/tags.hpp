// Per-algorithm message tags. Distinct tags keep phases of composed
// collectives (scatter then allgather) from matching each other's traffic.
//
// This header is also the single source of truth for the tag-space
// contract shared with the nonblocking progress engine
// (src/mpisim/progress.hpp): base tags occupy the window [0, kCtxStride)
// and in-flight collective #ctx on a communicator remaps plan tag t to
// t + kCtxStride * ctx with ctx in [1, kMaxCtx]. The static_asserts below
// plus verify/tagspace.cpp prove the remap injective and collision-free
// over the whole context range.
#pragma once

#include <array>

#include "comm/comm.hpp"

namespace bsb::coll::tags {

inline constexpr int kBcastBinomial = 1;
inline constexpr int kScatter = 2;
inline constexpr int kRingAllgather = 3;
inline constexpr int kRdAllgather = 4;
inline constexpr int kBruck = 5;
inline constexpr int kPipelinedRing = 6;
inline constexpr int kTunedRingAllgather = 7;
inline constexpr int kGather = 8;
inline constexpr int kReduce = 9;
inline constexpr int kAllreduce = 10;
inline constexpr int kNeighborExchange = 11;
inline constexpr int kAlltoall = 12;
inline constexpr int kStandaloneScatter = 13;
inline constexpr int kReduceScatterRing = 14;
inline constexpr int kReduceScatterFinal = 15;
inline constexpr int kAllgathervRing = 16;
inline constexpr int kAllgathervRingTuned = 17;
inline constexpr int kBruckHierGather = 18;
inline constexpr int kBruckHierExchange = 19;
inline constexpr int kBruckHierBcast = 20;
inline constexpr int kHierFanout = 21;

/// Tag stride between in-flight nonblocking collectives on one
/// communicator: the progress engine remaps plan tag t of operation #ctx
/// to t + kCtxStride * ctx. Every base tag must stay below it.
inline constexpr int kCtxStride = 32;

/// Highest per-communicator context the progress engine assigns before
/// sequence numbers wrap: keeps every remapped tag below kMaxUserTag (and
/// therefore below SubComm's dissemination-barrier tag) even inside a
/// SubComm namespace.
inline constexpr int kMaxCtx = (kMaxUserTag - kCtxStride) / kCtxStride;

/// Raw tags the chaos tests' random point-to-point scripts draw from
/// ([0, kChaosTagSpan)). They share the context-0 band with blocking
/// collectives' base tags and must never alias a remapped (ctx >= 1) tag.
inline constexpr int kChaosTagSpan = 4;

/// Every base tag any schedule can emit, for registry-driven checks
/// (verify/lint.cpp's tag-discipline pass and verify/tagspace.cpp's
/// whole-program tag-space lint). Keep in sync with the constants above.
inline constexpr std::array<int, 21> kAllBaseTags{
    kBcastBinomial,     kScatter,
    kRingAllgather,     kRdAllgather,
    kBruck,             kPipelinedRing,
    kTunedRingAllgather, kGather,
    kReduce,            kAllreduce,
    kNeighborExchange,  kAlltoall,
    kStandaloneScatter, kReduceScatterRing,
    kReduceScatterFinal, kAllgathervRing,
    kAllgathervRingTuned, kBruckHierGather,
    kBruckHierExchange, kBruckHierBcast,
    kHierFanout};

namespace detail {

constexpr bool all_tags_in_window() {
  for (const int t : kAllBaseTags) {
    if (t < 0 || t >= kCtxStride) return false;
  }
  return true;
}

constexpr bool all_tags_distinct() {
  for (std::size_t i = 0; i < kAllBaseTags.size(); ++i) {
    for (std::size_t j = i + 1; j < kAllBaseTags.size(); ++j) {
      if (kAllBaseTags[i] == kAllBaseTags[j]) return false;
    }
  }
  return true;
}

}  // namespace detail

static_assert(detail::all_tags_in_window(),
              "every base tag must fit the [0, kCtxStride) remap window");
static_assert(detail::all_tags_distinct(),
              "base tags must be pairwise distinct");
static_assert(kChaosTagSpan <= kCtxStride,
              "chaos raw tags must stay inside the context-0 band");
static_assert(kMaxCtx == 2046, "the documented context range is [1, 2046]");
static_assert(kCtxStride - 1 + kCtxStride * kMaxCtx < kMaxUserTag,
              "the largest remapped tag must stay below kMaxUserTag "
              "(= SubComm::kBarrierTag)");

}  // namespace bsb::coll::tags
