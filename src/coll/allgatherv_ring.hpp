// Enclosed (native) ring allgatherv: the baseline for the skewed-block
// generalization of the paper's optimization. Same ring walk as
// allgather_ring_native, but chunk sizes come from a VarLayout — arbitrary
// per-rank byte counts, zero-sized blocks included. The enclosed schedule
// still exchanges a message on every one of the P-1 steps regardless of
// what the receiver already holds, so its redundancy is the same
// block-ownership waste the uniform native ring exhibits, now weighed by
// the skewed byte counts.
#pragma once

#include <cstddef>
#include <span>

#include "comm/comm.hpp"
#include "comm/vchunks.hpp"

namespace bsb::coll {

/// Run the enclosed ring allgatherv. On entry the rank with relative rank
/// r holds (at least) chunk block [r, r + scatter_subtree_span(r)) at the
/// chunks' home offsets — the post-binomial-scatter ownership; only chunk
/// r is actually consumed. On return every rank holds all layout.nbytes()
/// bytes.
void allgatherv_ring_native(Comm& comm, std::span<std::byte> buffer, int root,
                            const VarLayout& layout);

}  // namespace bsb::coll
