// Ownership-aware ring reduce_scatter — the paper's non-enclosed trick
// generalized to the reduction direction.
//
// Phase A (both variants) is the classic in-place ring: at step s, relative
// rank r sends partial chunk (r - s) mod P to its right neighbour and folds
// the incoming partial chunk (r - s - 1) mod P from its left neighbour into
// its buffer. After P-1 steps, rank r's buffer holds the FULLY reduced
// chunk r at the chunk's home offset. Chunk c's fold order is fixed: the
// partial starts at relative rank c+1 and each later ring hop folds its
// contribution on the right (combine_into's contract), the owner folding
// last — reduce_ops.hpp's ring_reduced_value replays exactly this order.
//
// reduce_scatter_blocks_ring adds phase B, the ownership-aware delivery:
// instead of each rank keeping only its own chunk, every rank ends holding
// the same contiguous block [r, r + span(r)) that the binomial scatter of
// the tuned broadcast would have assigned it (scatter_subtree_span). Rank
// r != 0 sends its finished chunk r directly to each of its popcount(r)
// binomial ancestors (successively clearing the lowest set bit); rank a
// receives chunks a+1 .. a+span(a)-1 in ascending order. The two closed
// forms agree — sum_r popcount(r) == sum_r (span(r) - 1) == the tuned
// broadcast's ring savings — so phase B costs EXACTLY the transfers the
// tuned broadcast saves, and a reduce_scatter_blocks + tuned-allgather
// allreduce moves 2P(P-1) messages: zero redundancy (proved by bsb-verify's
// reduce-flow engine, which certifies every delivered partial is combined
// exactly once).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "coll/reduce_ops.hpp"
#include "comm/comm.hpp"

namespace bsb::coll {

/// In-place ring reduce_scatter over P uniform chunks. `buf` holds this
/// rank's full nbytes contribution on entry; on exit chunk rel_rank(rank)
/// (at its home offset) holds the reduction over all ranks. Requires
/// nbytes % (P * elem_bytes(dtype)) == 0 so every chunk is a whole number
/// of elements. Other chunks are left holding partials (garbage to callers).
void reduce_scatter_ring(Comm& comm, std::span<std::byte> buf, int root,
                         RedOp op, RedDtype dtype);

struct ReduceScatterBlocksOptions {
  /// Fault injection for the verifier's sabotage sweep: every non-zero
  /// relative rank sends its finished chunk TWICE to its nearest ancestor
  /// (which posts the matching double receive). The run still completes and
  /// computes correct values — but bsb-verify's reduce-flow engine must
  /// flag the second delivery as a redundant complete-over-complete
  /// combine, and the closed-form transfer counts no longer match.
  bool sabotage_double_final = false;
};

/// Ring reduce_scatter followed by ownership-aware block delivery: on exit
/// relative rank r holds fully reduced chunks [r, r + span(r)) at their
/// home offsets, where span = scatter_subtree_span — the block ownership
/// the tuned broadcast's binomial scatter establishes. Same alignment
/// requirement as reduce_scatter_ring.
void reduce_scatter_blocks_ring(Comm& comm, std::span<std::byte> buf, int root,
                                RedOp op, RedDtype dtype,
                                const ReduceScatterBlocksOptions& opts = {});

}  // namespace bsb::coll
