// Pairwise-exchange MPI_Alltoall: every rank sends a distinct block to
// every other rank. P-1 steps; at step s rank r exchanges with r XOR s
// (power-of-two groups) or with (r+s, r-s) ring partners otherwise —
// MPICH's long-message algorithm family.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

/// `sendbuf` and `recvbuf` each hold P blocks of `block` bytes: sendbuf
/// block d goes to rank d; recvbuf block s arrives from rank s. The own
/// block is copied locally.
void alltoall_pairwise(Comm& comm, std::span<const std::byte> sendbuf,
                       std::span<std::byte> recvbuf, std::uint64_t block);

}  // namespace bsb::coll
