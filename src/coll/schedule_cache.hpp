// Process-wide schedule cache: memoizes (P, root, nbytes, algorithm) →
// shared coll::Plan so the hot serving path never recomputes chunk layouts
// or ring plans. LRU-bounded, thread-safe, with hit/miss/eviction counters
// (the concurrent-serving bench asserts a steady-state hit rate).
//
// Plans are immutable and handed out as shared_ptr<const Plan>: an entry
// may be evicted while ranks still execute it — their shared_ptr keeps the
// steps alive, the cache merely forgets the memoization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "coll/plan.hpp"

namespace bsb::coll {

/// Cache key. `algorithm` is a caller-defined id namespace; core/icoll.hpp
/// defines the ids for the bcast/allgather families.
struct PlanKey {
  int nranks = 0;
  int root = 0;
  std::uint64_t nbytes = 0;
  int algorithm = 0;
  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept {
    // splitmix64-style mix over the packed fields.
    std::uint64_t h = static_cast<std::uint64_t>(k.nranks);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(k.root);
    h = h * 0x9e3779b97f4a7c15ULL + k.nbytes;
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(k.algorithm);
    h ^= h >> 30; h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27; h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

class ScheduleCache {
 public:
  /// At most `capacity` plans are retained (least recently used evicted).
  explicit ScheduleCache(std::size_t capacity = kDefaultCapacity);

  using Builder = std::function<Plan()>;

  /// The cached plan for `key`, building (and inserting) it via `build` on
  /// a miss. The build runs under the cache lock — builders only record
  /// schedules, they never communicate, so this cannot deadlock and it
  /// deduplicates concurrent misses for the same key (every rank of a
  /// World asks for the same plan at once).
  std::shared_ptr<const Plan> get_or_build(const PlanKey& key,
                                           const Builder& build);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
    double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };
  Stats stats() const;

  /// Drop all entries and reset the counters (tests / bench reruns).
  void clear();

  /// Resize the LRU bound, evicting as needed (counts as evictions).
  void set_capacity(std::size_t capacity);

  static constexpr std::size_t kDefaultCapacity = 512;

 private:
  void evict_to_capacity_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  // lru_ front = most recently used; map entries point at their lru slot.
  std::list<PlanKey> lru_;
  struct Entry {
    std::shared_ptr<const Plan> plan;
    std::list<PlanKey>::iterator pos;
  };
  std::unordered_map<PlanKey, Entry, PlanKeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The process-wide cache used by core::ibcast / core::iallgather.
ScheduleCache& process_schedule_cache();

}  // namespace bsb::coll
