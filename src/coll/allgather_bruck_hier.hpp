// Locality-aware (hierarchical) Bruck allgather — the comparison point the
// ownership-aware family is measured against. Three phases over a blocked
// rank-to-node mapping (cores_per_node consecutive ranks per node):
//
//   1. gather star:   each non-leader sends its block to its node leader
//                     (intra-node traffic; P - L messages);
//   2. Bruck exchange: the L node leaders run a log-round Bruck allgather
//                     over VARIABLE-size node aggregates (the last node may
//                     be short); L * ceil(log2(L)) messages, the only
//                     inter-node traffic;
//   3. bcast star:    each leader ships the assembled buffer to its
//                     members (P - L messages).
//
// Total: 2(P - L) + L * ceil(log2(L)) messages — far fewer than any ring's
// P(P-1), at the price of serializing whole-buffer payloads through the
// leaders. The Bruck rotation lives in scratch, so (like allgather_bruck)
// the variant is not dataflow-checkable; the verifier proves shape,
// deadlock-freedom and the closed-form counts instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

/// Rootless hierarchical allgather of P uniform blocks (`buffer` holds
/// exactly P * block bytes; rank r contributes block r at its home
/// offset). `cores_per_node` >= 1 fixes the blocked node mapping. On
/// return every rank holds all P blocks.
void allgather_bruck_hier(Comm& comm, std::span<std::byte> buffer,
                          std::uint64_t block, int cores_per_node);

}  // namespace bsb::coll
