// Hierarchical node-aware broadcast — the paper's tuned non-enclosed
// scatter-ring-allgather restructured around the node boundary
// (docs/TOPOLOGY.md, DESIGN.md §9):
//
//   Phase A (inter-node, leaders only): binomial scatter + ring allgather
//     over ONE leader per node, so the quadratic ring traffic scales with
//     the node count L, not the rank count P. The tuned flavour applies
//     the non-enclosed ownership trick at P = L; the native flavour runs
//     the enclosed ring at P = L.
//   Phase B (intra-node): each leader hands the full buffer to every other
//     rank of its node with ONE message each (the XPMEM-style single-copy
//     fan-out netsim prices on the shm channel) — exactly P - L messages.
//
// Degenerate shapes fold into flat algorithms: one node is a pure fan-out,
// all-1-core nodes are exactly the flat scatter-ring broadcast. Everything
// is computed from the rank's position alone (no barriers, home offsets
// only), so the schedule is recordable, plan-compilable and provable by
// bsb-verify.
#pragma once

#include <cstddef>
#include <span>

#include "coll/hier/topology.hpp"
#include "comm/comm.hpp"

namespace bsb::core {

struct HierBcastOptions {
  /// Tuned (non-enclosed) vs native (enclosed) ring across the leaders.
  bool tuned = true;
  /// Self-test sabotage: leaders send the fan-out buffer twice. Byte-exact
  /// oracles cannot see it (same bytes land twice); the verifier's
  /// redundancy proof and the closed-form transfer counts must.
  bool sabotage_double_fanout = false;
};

/// Broadcast `buffer` from `root` over `comm`, hierarchically per `topo`
/// (topo.nranks() must equal comm.size()).
void bcast_hier(Comm& comm, std::span<std::byte> buffer, int root,
                const hier::Topology& topo, const HierBcastOptions& opt = {});

/// bcast_hier with the enclosed leader ring.
void bcast_hier_native(Comm& comm, std::span<std::byte> buffer, int root,
                       const hier::Topology& topo);

/// bcast_hier with the paper's non-enclosed leader ring.
void bcast_hier_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                      const hier::Topology& topo);

}  // namespace bsb::core
