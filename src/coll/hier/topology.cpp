#include "coll/hier/topology.hpp"

#include <numeric>

#include "bsbutil/error.hpp"

namespace bsb::hier {

Topology::Topology(std::vector<int> node_sizes)
    : node_sizes_(std::move(node_sizes)) {
  BSB_REQUIRE(!node_sizes_.empty(), "hier::Topology: need at least one node");
  node_begin_.reserve(node_sizes_.size() + 1);
  node_begin_.push_back(0);
  for (std::size_t n = 0; n < node_sizes_.size(); ++n) {
    BSB_REQUIRE(node_sizes_[n] >= 1, "hier::Topology: node sizes must be >= 1");
    node_begin_.push_back(node_begin_.back() + node_sizes_[n]);
  }
  nranks_ = node_begin_.back();
  node_of_.resize(static_cast<std::size_t>(nranks_));
  for (int n = 0; n < num_nodes(); ++n) {
    for (int r = node_begin_[static_cast<std::size_t>(n)];
         r < node_begin_[static_cast<std::size_t>(n) + 1]; ++r) {
      node_of_[static_cast<std::size_t>(r)] = n;
    }
  }
}

Topology Topology::uniform(int nranks, int cores_per_node) {
  BSB_REQUIRE(nranks >= 1, "hier::Topology: nranks must be >= 1");
  BSB_REQUIRE(cores_per_node >= 1, "hier::Topology: cores_per_node must be >= 1");
  std::vector<int> sizes;
  for (int left = nranks; left > 0; left -= cores_per_node) {
    sizes.push_back(left < cores_per_node ? left : cores_per_node);
  }
  return Topology(std::move(sizes));
}

Topology Topology::from_string(const std::string& csv) {
  std::vector<int> sizes;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string tok = csv.substr(pos, comma - pos);
    std::size_t used = 0;
    int v = 0;
    try {
      v = std::stoi(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    BSB_REQUIRE(used == tok.size() && !tok.empty() && v >= 1,
                "hier::Topology: node list must be comma-separated sizes >= 1");
    sizes.push_back(v);
    pos = comma + 1;
    if (comma == csv.size()) break;
  }
  return Topology(std::move(sizes));
}

std::string Topology::to_string() const {
  std::string out;
  for (std::size_t n = 0; n < node_sizes_.size(); ++n) {
    if (n > 0) out += ',';
    out += std::to_string(node_sizes_[n]);
  }
  return out;
}

int Topology::node_of(int rank) const {
  BSB_REQUIRE(rank >= 0 && rank < nranks_, "hier::Topology: rank out of range");
  return node_of_[static_cast<std::size_t>(rank)];
}

int Topology::node_begin(int node) const {
  BSB_REQUIRE(node >= 0 && node < num_nodes(), "hier::Topology: node out of range");
  return node_begin_[static_cast<std::size_t>(node)];
}

int Topology::node_size(int node) const {
  BSB_REQUIRE(node >= 0 && node < num_nodes(), "hier::Topology: node out of range");
  return node_sizes_[static_cast<std::size_t>(node)];
}

std::vector<int> Topology::ranks_on_node(int node) const {
  const int begin = node_begin(node);
  std::vector<int> ranks(static_cast<std::size_t>(node_size(node)));
  std::iota(ranks.begin(), ranks.end(), begin);
  return ranks;
}

int Topology::leader_of(int node, int root) const {
  BSB_REQUIRE(root >= 0 && root < nranks_, "hier::Topology: root out of range");
  return node == node_of(root) ? root : node_begin(node);
}

std::vector<int> Topology::leaders(int root) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(num_nodes()));
  for (int n = 0; n < num_nodes(); ++n) out.push_back(leader_of(n, root));
  return out;
}

}  // namespace bsb::hier
