#include "coll/hier/bcast_hier.hpp"

#include <utility>
#include <vector>

#include "bsbutil/error.hpp"
#include "coll/allgather_ring_native.hpp"
#include "coll/scatter_binomial.hpp"
#include "coll/tags.hpp"
#include "comm/chunks.hpp"
#include "comm/subcomm.hpp"
#include "core/allgather_ring_tuned.hpp"

namespace bsb::core {

namespace {
// Tag namespace for the leader SubComm; matches bcast_smp's leader context
// so the hier family composes with the same scaffolding. Phase B runs raw
// (context 0) on the parent with its own tag, so the phases cannot match
// each other's traffic.
constexpr int kLeaderContext = 1;
}  // namespace

void bcast_hier(Comm& comm, std::span<std::byte> buffer, int root,
                const hier::Topology& topo, const HierBcastOptions& opt) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(topo.nranks() == P, "bcast_hier: topology size != comm size");
  BSB_REQUIRE(root >= 0 && root < P, "bcast_hier: root out of range");

  const int my_node = topo.node_of(me);
  const int leader = topo.leader_of(my_node, root);
  const int L = topo.num_nodes();

  // Phase A: scatter + ring allgather across the node leaders. The root is
  // its node's leader by construction, so the leader-comm root is simply
  // the root's node index (leaders are pushed in node order).
  if (me == leader && L > 1) {
    SubComm leader_comm(comm, topo.leaders(root), kLeaderContext);
    const int leader_root = topo.node_of(root);
    const ChunkLayout layout(buffer.size(), L);
    coll::scatter_binomial(leader_comm, buffer, leader_root, layout);
    if (opt.tuned) {
      allgather_ring_tuned(leader_comm, buffer, leader_root, layout);
    } else {
      coll::allgather_ring_native(leader_comm, buffer, leader_root, layout);
    }
  }

  // Phase B: single-copy fan-out inside the node — exactly one full-buffer
  // message per non-leader (netsim prices these on the shm channel).
  const int copies = opt.sabotage_double_fanout ? 2 : 1;
  if (me == leader) {
    const int begin = topo.node_begin(my_node);
    for (int r = begin; r < begin + topo.node_size(my_node); ++r) {
      if (r == leader) continue;
      for (int c = 0; c < copies; ++c) {
        comm.send(buffer, r, coll::tags::kHierFanout);
      }
    }
  } else {
    for (int c = 0; c < copies; ++c) {
      comm.recv(buffer, leader, coll::tags::kHierFanout);
    }
  }
}

void bcast_hier_native(Comm& comm, std::span<std::byte> buffer, int root,
                       const hier::Topology& topo) {
  HierBcastOptions opt;
  opt.tuned = false;
  bcast_hier(comm, buffer, root, topo, opt);
}

void bcast_hier_tuned(Comm& comm, std::span<std::byte> buffer, int root,
                      const hier::Topology& topo) {
  bcast_hier(comm, buffer, root, topo, HierBcastOptions{});
}

}  // namespace bsb::core
