// Ragged node topology for the hierarchical collective family
// (docs/TOPOLOGY.md). A cluster is a contiguous block partition of the
// rank range: node n holds ranks [node_begin(n), node_begin(n) +
// node_size(n)), and node sizes may differ (the "ragged" shapes produced
// by comm_split or by scheduling partial nodes). This generalizes the
// uniform comm/topology.hpp Block placement, which remains the netsim
// replay's physical model; the two agree for uniform shapes.
//
// Leader election is root-aware: on the root's node the root itself leads
// (saving one intra-node hop, exactly as bcast_smp elects leaders), on
// every other node the lowest rank leads. Leaders listed in node order are
// therefore strictly increasing, which keeps leader SubComm construction
// deterministic on every member.
#pragma once

#include <string>
#include <vector>

namespace bsb::hier {

class Topology {
 public:
  /// One entry per node, every size >= 1. nranks() is the sum.
  explicit Topology(std::vector<int> node_sizes);

  /// ceil(nranks / cores_per_node) nodes of cores_per_node ranks; the last
  /// node is short when cores_per_node does not divide nranks.
  static Topology uniform(int nranks, int cores_per_node);

  /// Parse a comma-separated node-size list, e.g. "4,4,3" (the bsb-fuzz
  /// --nodes reproducer syntax). Throws PreconditionError on bad input.
  static Topology from_string(const std::string& csv);

  /// Inverse of from_string: "4,4,3".
  std::string to_string() const;

  int nranks() const noexcept { return nranks_; }
  int num_nodes() const noexcept { return static_cast<int>(node_sizes_.size()); }

  /// O(1) table lookup.
  int node_of(int rank) const;

  /// First rank of `node`.
  int node_begin(int node) const;

  /// Ranks on `node` (>= 1).
  int node_size(int node) const;

  /// The contiguous rank block [node_begin, node_begin + node_size).
  std::vector<int> ranks_on_node(int node) const;

  /// Leader of `node` for an operation rooted at `root`: the root itself
  /// on the root's node, the lowest rank elsewhere.
  int leader_of(int node, int root) const;

  /// One leader per node, in node order (strictly increasing ranks).
  std::vector<int> leaders(int root) const;

  bool is_leader(int rank, int root) const {
    return leader_of(node_of(rank), root) == rank;
  }

  const std::vector<int>& node_sizes() const noexcept { return node_sizes_; }

 private:
  std::vector<int> node_sizes_;
  std::vector<int> node_begin_;  // num_nodes + 1 entries; prefix sums
  std::vector<int> node_of_;     // nranks entries
  int nranks_ = 0;
};

}  // namespace bsb::hier
