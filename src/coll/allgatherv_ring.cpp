#include "coll/allgatherv_ring.hpp"

#include "bsbutil/error.hpp"
#include "coll/tags.hpp"
#include "comm/chunks.hpp"

namespace bsb::coll {

void allgatherv_ring_native(Comm& comm, std::span<std::byte> buffer, int root,
                            const VarLayout& layout) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(layout.nchunks() == P,
              "allgatherv_ring_native: layout chunk count != P");
  BSB_REQUIRE(buffer.size() >= layout.nbytes(),
              "allgatherv_ring_native: buffer too small");

  const int left = (P + me - 1) % P;
  const int right = (me + 1) % P;
  int j = me;
  int jnext = left;

  for (int i = 1; i < P; ++i) {
    const int rel_j = rel_rank(j, root, P);
    const int rel_jnext = rel_rank(jnext, root, P);
    comm.sendrecv(layout.chunk(std::span<const std::byte>(buffer), rel_j), right,
                  tags::kAllgathervRing,
                  layout.chunk(buffer, rel_jnext), left, tags::kAllgathervRing);
    j = jnext;
    jnext = (P + jnext - 1) % P;
  }
}

}  // namespace bsb::coll
