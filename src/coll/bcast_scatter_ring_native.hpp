// MPI_Bcast_native: MPICH3's broadcast for long messages and for medium
// messages with non-power-of-two process counts — binomial scatter followed
// by the enclosed (suboptimal) ring allgather. This is the baseline the
// paper measures against.
#pragma once

#include <cstddef>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

void bcast_scatter_ring_native(Comm& comm, std::span<std::byte> buffer, int root);

}  // namespace bsb::coll
