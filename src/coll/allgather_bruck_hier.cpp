#include "coll/allgather_bruck_hier.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "bsbutil/error.hpp"
#include "coll/tags.hpp"
#include "comm/topology.hpp"

namespace bsb::coll {

namespace {

/// Bytes node `n` aggregates: one uniform block per resident rank.
std::uint64_t node_bytes(const Topology& topo, int n, std::uint64_t block) {
  return static_cast<std::uint64_t>(topo.ranks_on_node(n).size()) * block;
}

}  // namespace

void allgather_bruck_hier(Comm& comm, std::span<std::byte> buffer,
                          std::uint64_t block, int cores_per_node) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(buffer.size() == static_cast<std::uint64_t>(P) * block,
              "allgather_bruck_hier: buffer must hold exactly P blocks");
  BSB_REQUIRE(cores_per_node >= 1, "allgather_bruck_hier: need cores >= 1");
  if (P == 1) return;

  const Topology topo(P, cores_per_node, Placement::Block);
  const int L = topo.num_nodes();
  const int my_node = topo.node_of(me);
  const std::vector<int> members = topo.ranks_on_node(my_node);
  const int leader = members[0];

  // Phase 1: members hand their block to the node leader. Block placement
  // makes a node's ranks consecutive, so after this the leader's buffer
  // holds the node aggregate contiguously at the node's home offsets.
  if (me != leader) {
    comm.send(std::span<const std::byte>(buffer).subspan(
                  static_cast<std::uint64_t>(me) * block, block),
              leader, tags::kBruckHierGather);
  } else {
    for (std::size_t i = 1; i < members.size(); ++i) {
      const int m = members[i];
      comm.recv(buffer.subspan(static_cast<std::uint64_t>(m) * block, block), m,
                tags::kBruckHierGather);
    }

    if (L > 1) {
      // Phase 2: Bruck over the L leaders, slot sizes varying with the
      // node populations. temp slot j holds node (my_node + j) % L's
      // aggregate; disp[] are the rotated prefix sums. `have` counts SLOTS.
      std::vector<std::uint64_t> disp(static_cast<std::size_t>(L) + 1, 0);
      for (int j = 0; j < L; ++j) {
        disp[static_cast<std::size_t>(j) + 1] =
            disp[static_cast<std::size_t>(j)] +
            node_bytes(topo, (my_node + j) % L, block);
      }
      std::vector<std::byte> temp(disp.back());
      if (disp[1] > 0) {
        std::memcpy(temp.data(),
                    buffer.data() + static_cast<std::uint64_t>(members[0]) * block,
                    disp[1]);
      }

      int have = 1;
      int dist = 1;
      while (dist < L) {
        const int to_node = (my_node - dist % L + L) % L;
        const int from_node = (my_node + dist) % L;
        const int want = std::min(have, L - have);
        const int to = topo.ranks_on_node(to_node)[0];
        const int from = topo.ranks_on_node(from_node)[0];
        comm.sendrecv(
            std::span<const std::byte>(temp).subspan(0, disp[static_cast<std::size_t>(want)]),
            to, tags::kBruckHierExchange,
            std::span<std::byte>(temp).subspan(
                disp[static_cast<std::size_t>(have)],
                disp[static_cast<std::size_t>(have + want)] -
                    disp[static_cast<std::size_t>(have)]),
            from, tags::kBruckHierExchange);
        have += want;
        dist <<= 1;
      }
      BSB_ASSERT(have == L, "bruck-hier: incomplete leader exchange");

      // Un-rotate the node aggregates into rank order.
      for (int j = 0; j < L; ++j) {
        const int n = (my_node + j) % L;
        const std::uint64_t bytes = node_bytes(topo, n, block);
        if (bytes > 0) {
          std::memcpy(
              buffer.data() +
                  static_cast<std::uint64_t>(topo.ranks_on_node(n)[0]) * block,
              temp.data() + disp[static_cast<std::size_t>(j)], bytes);
        }
      }
    }

    // Phase 3: full-buffer star broadcast to the node's members.
    for (std::size_t i = 1; i < members.size(); ++i) {
      comm.send(std::span<const std::byte>(buffer), members[i],
                tags::kBruckHierBcast);
    }
  }
  if (me != leader) {
    comm.recv(buffer, leader, tags::kBruckHierBcast);
  }
}

}  // namespace bsb::coll
