// Binomial-tree broadcast — MPICH3's algorithm for short messages and for
// small process counts. The whole buffer travels down a binomial tree
// rooted (in relative rank space) at the root: log2(P) rounds, each rank
// receives once and forwards to up to log2(P) children.
#pragma once

#include <cstddef>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

void bcast_binomial(Comm& comm, std::span<std::byte> buffer, int root);

}  // namespace bsb::coll
