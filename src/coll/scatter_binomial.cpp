#include "coll/scatter_binomial.hpp"

#include <algorithm>

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"
#include "coll/tags.hpp"

namespace bsb::coll {

int scatter_subtree_span(int rel, int nranks) {
  BSB_REQUIRE(rel >= 0 && rel < nranks, "scatter_subtree_span: rel out of range");
  if (rel == 0) return nranks;
  const int lsb = rel & -rel;  // size of the subtree received from the parent
  return std::min(lsb, nranks - rel);
}

std::uint64_t scatter_block_bytes(int rel, const ChunkLayout& layout) {
  return layout.range_count(rel, scatter_subtree_span(rel, layout.nchunks()));
}

std::uint64_t scatter_binomial(Comm& comm, std::span<std::byte> buffer, int root,
                               const ChunkLayout& layout) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(layout.nchunks() == P, "scatter_binomial: layout chunk count != P");
  BSB_REQUIRE(buffer.size() >= layout.nbytes(), "scatter_binomial: buffer too small");
  const int rel = rel_rank(me, root, P);
  const std::int64_t nbytes = static_cast<std::int64_t>(layout.nbytes());
  const std::int64_t s = static_cast<std::int64_t>(layout.scatter_size());

  // All byte counts below are closed-form functions of (P, root, nbytes),
  // matching what MPICH derives from MPI_Get_count at runtime; this keeps
  // the algorithm data-oblivious so schedules can be recorded.
  //
  // `curr_size` is MPICH's bookkeeping: the bytes not yet delegated to a
  // child. The bytes the rank's BUFFER holds — its whole subtree block,
  // which the tuned ring exploits — is `held`, returned to the caller.
  std::int64_t curr_size = (me == root) ? nbytes : 0;
  std::int64_t held = curr_size;

  // Receive our subtree's chunk block from the parent.
  int mask = 1;
  while (mask < P) {
    if (rel & mask) {
      int src = me - mask;
      if (src < 0) src += P;
      const std::int64_t expected =
          std::max<std::int64_t>(0, std::min<std::int64_t>(nbytes - rel * s,
                                                           static_cast<std::int64_t>(mask) * s));
      if (nbytes - rel * s > 0) {
        comm.recv(buffer.subspan(static_cast<std::size_t>(rel) * s,
                                 static_cast<std::size_t>(expected)),
                  src, tags::kScatter);
        curr_size = expected;
      } else {
        curr_size = 0;
      }
      held = curr_size;
      break;
    }
    mask <<= 1;
  }

  // Halve our block repeatedly, sending the upper half to the child that
  // roots that sub-block.
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < P) {
      const std::int64_t send_size = curr_size - static_cast<std::int64_t>(mask) * s;
      if (send_size > 0) {
        int dst = me + mask;
        if (dst >= P) dst -= P;
        comm.send(buffer.subspan(static_cast<std::size_t>(rel + mask) * s,
                                 static_cast<std::size_t>(send_size)),
                  dst, tags::kScatter);
        curr_size -= send_size;
      }
    }
    mask >>= 1;
  }
  return static_cast<std::uint64_t>(std::max<std::int64_t>(held, 0));
}

}  // namespace bsb::coll
