// Neighbor-exchange allgather (Chen et al.; MPICH's medium-message
// allgather for even, non-power-of-two groups): ranks pair up, exchange
// their own blocks, then alternately exchange the most recently received
// PAIR of blocks with their other neighbour — P/2 steps, each rank sending
// P/2 messages (half the ring's P-1), at the price of 2-block messages.
// Included as a further baseline in the allgather design space the paper's
// tuned ring lives in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "comm/comm.hpp"

namespace bsb::coll {

/// Standalone allgather of equal `block`-byte contributions (rank r's
/// block starts at r*block; buffer.size() == P*block). Requires an EVEN
/// number of ranks (as MPICH does for this algorithm).
void allgather_neighbor_exchange(Comm& comm, std::span<std::byte> buffer,
                                 std::uint64_t block);

}  // namespace bsb::coll
