#include "coll/allgather_recursive_doubling.hpp"

#include <algorithm>
#include <cstdint>

#include "bsbutil/error.hpp"
#include "bsbutil/math.hpp"
#include "coll/tags.hpp"

namespace bsb::coll {

void allgather_recursive_doubling(Comm& comm, std::span<std::byte> buffer, int root,
                                  const ChunkLayout& layout) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(is_pow2(static_cast<std::uint64_t>(P)),
              "allgather_recursive_doubling: requires power-of-two ranks");
  BSB_REQUIRE(layout.nchunks() == P, "allgather_recursive_doubling: layout != P");
  BSB_REQUIRE(buffer.size() >= layout.nbytes(),
              "allgather_recursive_doubling: buffer too small");

  const int rel = rel_rank(me, root, P);
  const std::int64_t nbytes = static_cast<std::int64_t>(layout.nbytes());
  const std::int64_t s = static_cast<std::int64_t>(layout.scatter_size());

  auto block_bytes = [&](int first_chunk, int nchunks) {
    return std::max<std::int64_t>(
        0, std::min<std::int64_t>(nbytes - first_chunk * s,
                                  static_cast<std::int64_t>(nchunks) * s));
  };

  std::int64_t curr_size = block_bytes(rel, 1);
  int mask = 1;
  int i = 0;
  while (mask < P) {
    const int relative_dst = rel ^ mask;
    const int dst = abs_rank(relative_dst, root, P);

    // Zero the low i bits to find the roots of both subtree blocks.
    const int my_tree_root = (rel >> i) << i;
    const int dst_tree_root = (relative_dst >> i) << i;

    const std::int64_t send_off = my_tree_root * s;
    const std::int64_t recv_off = dst_tree_root * s;
    const std::int64_t recv_size = block_bytes(dst_tree_root, mask);

    comm.sendrecv(std::span<const std::byte>(buffer).subspan(
                      static_cast<std::size_t>(std::min(send_off, nbytes)),
                      static_cast<std::size_t>(curr_size)),
                  dst, tags::kRdAllgather,
                  buffer.subspan(static_cast<std::size_t>(std::min(recv_off, nbytes)),
                                 static_cast<std::size_t>(recv_size)),
                  dst, tags::kRdAllgather);
    curr_size += recv_size;
    mask <<= 1;
    ++i;
  }
}

}  // namespace bsb::coll
