// coll::Plan — a collective "compiled" to per-rank point-to-point step
// lists, the shared representation behind core::PersistentBcast, the
// nonblocking collectives (core::ibcast / core::iallgather) and the
// process-wide schedule cache. A Plan holds the step tables for ALL ranks
// of the communicator, so one cached Plan serves every rank thread of a
// World and replanning cost is paid once per (P, root, nbytes, algorithm).
//
// Plans are compiled by running the blocking algorithm under
// trace::RecordingComm once per rank: the algorithms are data-oblivious,
// so the recording IS the schedule every execution will follow.
// Compilation rejects algorithms that use barriers or scratch memory
// outside the collective buffer — those cannot be replayed offset-relative.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "trace/record.hpp"

namespace bsb::coll {

/// One precompiled point-to-point action of one rank.
struct PlanStep {
  enum class Kind : std::uint8_t { Send, Recv, SendRecv } kind = Kind::Send;
  // send half (Send / SendRecv)
  int dst = -1;
  std::uint64_t send_off = 0;
  std::uint64_t send_len = 0;
  // receive half (Recv / SendRecv)
  int src = -1;
  std::uint64_t recv_off = 0;
  std::uint64_t recv_len = 0;
  int tag = 0;
};

/// A collective compiled for every rank of a P-rank communicator.
/// Immutable after compile_plan; shared across threads via
/// shared_ptr<const Plan> (the schedule cache hands those out).
struct Plan {
  int nranks = 0;
  std::uint64_t nbytes = 0;
  int root = 0;
  std::string name;                        // algorithm, for diagnostics
  std::vector<std::vector<PlanStep>> steps;  // steps[rank], program order
  int max_tag = 0;  // largest tag used by any step (progress-engine striding)

  /// Number of messages the whole collective initiates.
  std::uint64_t total_sends() const noexcept;

  /// Order-sensitive FNV-1a hash over every rank's step list (shape plus
  /// all step fields). Equal fingerprints mean step-for-step identical
  /// plans; the rotation-equivalence prover (verify/equiv.hpp) reports it
  /// next to divergence witnesses so failures name the exact plan proven
  /// against.
  std::uint64_t fingerprint() const noexcept;
};

/// Compile `program` (a per-rank blocking algorithm body) into a Plan by
/// recording each rank's op sequence. Throws if the program uses barriers
/// or buffers outside the collective's data buffer.
Plan compile_plan(int nranks, std::uint64_t nbytes, int root, std::string name,
                  const trace::RankProgram& program);

/// Blocking replay of rank `rank`'s step list over `buffer` (must be
/// plan.nbytes long). PersistentBcast::execute and tests use this; the
/// nonblocking path drives the same steps through mpisim's progress engine.
///
/// `root` rotates a root-canonical plan (compiled at root 0, as the
/// schedule cache stores them): absolute rank `rank` runs the step list of
/// plan rank rel_rank(rank, root, P) with every peer mapped back through
/// abs_rank. With root 0 this is a plain replay.
void execute_plan_rank(Comm& comm, const Plan& plan, int rank,
                       std::span<std::byte> buffer, int root = 0);

/// Expand a root-canonical plan into the trace::Schedule its rotated
/// execution at `root` performs: absolute rank abs_rank(rel, root, P) gets
/// plan rank rel's steps with both peers mapped through abs_rank and
/// offsets/tags unchanged — exactly execute_plan_rank's mapping, but
/// materialized for static analysis. The rotation-equivalence prover and
/// tests iterate cached plans through this hook.
trace::Schedule plan_to_schedule(const Plan& plan, int root = 0);

/// Human-readable listing of one rank's steps.
std::string describe_plan_rank(const Plan& plan, int rank);

}  // namespace bsb::coll
