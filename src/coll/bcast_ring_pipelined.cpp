#include "coll/bcast_ring_pipelined.hpp"

#include <algorithm>

#include "bsbutil/error.hpp"
#include "comm/chunks.hpp"
#include "coll/tags.hpp"

namespace bsb::coll {

void bcast_ring_pipelined(Comm& comm, std::span<std::byte> buffer, int root,
                          std::uint64_t segment_bytes) {
  const int P = comm.size();
  const int me = comm.rank();
  BSB_REQUIRE(root >= 0 && root < P, "bcast_ring_pipelined: root out of range");
  if (P == 1 || buffer.empty()) return;

  const std::uint64_t seg = segment_bytes == 0 ? buffer.size() : segment_bytes;
  const int rel = rel_rank(me, root, P);
  const int left = (P + me - 1) % P;
  const int right = (me + 1) % P;
  const bool is_tail = rel == P - 1;  // last ring member forwards nothing

  for (std::uint64_t off = 0; off < buffer.size(); off += seg) {
    const std::uint64_t len = std::min<std::uint64_t>(seg, buffer.size() - off);
    if (rel != 0) {
      comm.recv(buffer.subspan(off, len), left, tags::kPipelinedRing);
    }
    if (!is_tail) {
      comm.send(std::span<const std::byte>(buffer).subspan(off, len), right,
                tags::kPipelinedRing);
    }
  }
}

}  // namespace bsb::coll
