// Schedule and match exports for external analysis (pandas, gnuplot):
// one CSV row per op half / matched message.
#pragma once

#include <string>

#include "trace/match.hpp"
#include "trace/schedule.hpp"

namespace bsb::trace {

/// One row per op: rank, op index, kind, peers, tags, bytes, offsets.
void write_schedule_csv(const Schedule& sched, const std::string& path);

/// One row per matched message: src, dst, tag, bytes, offsets, op indices.
void write_messages_csv(const MatchResult& m, const std::string& path);

}  // namespace bsb::trace
