#include "trace/counters.hpp"

#include <map>
#include <utility>

namespace bsb::trace {

TrafficStats traffic_stats(const MatchResult& m, const Topology& topo) {
  TrafficStats s;
  std::map<std::pair<int, int>, std::uint64_t> per_pair;
  for (const MatchedMsg& msg : m.msgs) {
    ++s.msgs;
    s.bytes += msg.bytes;
    if (topo.same_node(msg.src, msg.dst)) {
      ++s.intra_msgs;
      s.intra_bytes += msg.bytes;
    } else {
      ++s.inter_msgs;
      s.inter_bytes += msg.bytes;
    }
    const std::uint64_t n = ++per_pair[{msg.src, msg.dst}];
    if (n > s.max_pair_msgs) s.max_pair_msgs = n;
  }
  return s;
}

std::vector<RankOpCounts> per_rank_op_counts(const Schedule& sched) {
  std::vector<RankOpCounts> counts(static_cast<std::size_t>(sched.nranks));
  for (int r = 0; r < sched.nranks; ++r) {
    for (const Op& op : sched.ops[static_cast<std::size_t>(r)]) {
      if (op.has_send()) ++counts[static_cast<std::size_t>(r)].sends;
      if (op.has_recv()) ++counts[static_cast<std::size_t>(r)].recvs;
    }
  }
  return counts;
}

}  // namespace bsb::trace
