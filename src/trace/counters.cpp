#include "trace/counters.hpp"

#include <map>
#include <utility>

namespace bsb::trace {

TrafficStats traffic_stats(const MatchResult& m, const Topology& topo) {
  TrafficStats s;
  std::map<std::pair<int, int>, std::uint64_t> per_pair;
  for (const MatchedMsg& msg : m.msgs) {
    ++s.msgs;
    s.bytes += msg.bytes;
    if (topo.same_node(msg.src, msg.dst)) {
      ++s.intra_msgs;
      s.intra_bytes += msg.bytes;
    } else {
      ++s.inter_msgs;
      s.inter_bytes += msg.bytes;
    }
    const std::uint64_t n = ++per_pair[{msg.src, msg.dst}];
    if (n > s.max_pair_msgs) s.max_pair_msgs = n;
  }
  return s;
}

}  // namespace bsb::trace
