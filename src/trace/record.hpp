// RecordingComm: a Comm implementation that captures the operation sequence
// of a data-oblivious algorithm instead of moving bytes. Each rank's
// program is run sequentially against its own recorder; nothing blocks
// because no data is exchanged.
//
// Requirements on recorded algorithms (all our collectives satisfy them):
//  * data-oblivious: the op sequence depends only on (P, root, nbytes),
//    never on buffer contents or received values;
//  * single-buffer: every span passed to send/recv lies inside the buffer
//    handed to the program (offsets are recorded relative to it);
//  * deterministic: wildcard source/tag receives are rejected.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "trace/schedule.hpp"

namespace bsb::trace {

class RecordingComm final : public Comm {
 public:
  /// Records ops of rank `rank` (of `nranks`) into `out`. `base` is the
  /// collective's data buffer; recorded offsets are relative to it.
  RecordingComm(int rank, int nranks, std::span<const std::byte> base,
                std::vector<Op>& out);

  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return nranks_; }

  void send(std::span<const std::byte> buf, int dest, int tag) override;
  Status recv(std::span<std::byte> buf, int source, int tag) override;
  Status sendrecv(std::span<const std::byte> sendbuf, int dest, int sendtag,
                  std::span<std::byte> recvbuf, int source, int recvtag) override;
  void barrier() override;

 private:
  std::uint64_t offset_of(std::span<const std::byte> buf) const;

  int rank_;
  int nranks_;
  std::span<const std::byte> base_;
  std::vector<Op>* out_;
};

/// A per-rank algorithm body: receives this rank's communicator and the
/// shared-size data buffer (scratch bytes during recording).
using RankProgram = std::function<void(Comm& comm, std::span<std::byte> buffer)>;

/// Run `program` once per rank against a recorder and return the captured
/// schedule for a buffer of `nbytes`.
Schedule record_schedule(int nranks, std::uint64_t nbytes, const RankProgram& program);

}  // namespace bsb::trace
