// Pair up every send half with its receive half across a schedule, using
// MPI's matching rule: per (source, dest, tag) channel, sends match
// receives in program order (non-overtaking). The result drives the
// coverage validator, the traffic counters and the discrete-event replay.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/schedule.hpp"

namespace bsb::trace {

/// One matched message.
struct MatchedMsg {
  int src = -1;
  int dst = -1;
  int tag = -1;
  std::uint64_t bytes = 0;     // sender's byte count (<= receiver capacity)
  std::uint64_t src_off = 0;   // offset in the buffer at the sender
  std::uint64_t dst_off = 0;   // offset in the buffer at the receiver
  int src_op = -1;             // index into schedule.ops[src]
  int dst_op = -1;             // index into schedule.ops[dst]
};

struct MatchResult {
  std::vector<MatchedMsg> msgs;
  /// send_msg_of[rank][op] = message id of that op's send half, or -1.
  std::vector<std::vector<int>> send_msg_of;
  /// recv_msg_of[rank][op] = message id of that op's receive half, or -1.
  std::vector<std::vector<int>> recv_msg_of;
};

/// Match all messages. Throws ScheduleError when a channel has unequal send
/// and receive counts, or a send exceeds the matched receive capacity.
MatchResult match_schedule(const Schedule& sched);

}  // namespace bsb::trace
