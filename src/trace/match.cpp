#include "trace/match.hpp"

#include <cstdint>
#include <map>
#include <tuple>

namespace bsb::trace {

namespace {
using ChannelKey = std::tuple<int, int, int>;  // src, dst, tag

/// Identifies one send half; bytes/offsets are re-read from the schedule
/// when the matching receive streams past, keeping the per-channel state
/// small. Large schedules (P=4096 rings carry ~17M messages) are dominated
/// by memory touched, so every bucket byte counts.
struct SendRef {
  int rank;
  int op;
};

struct Channel {
  std::uint32_t nsends = 0;
  std::uint32_t nrecvs = 0;
  std::uint32_t paired = 0;  // receives consumed during the pairing pass
  std::vector<SendRef> send_refs;
};

std::string channel_name(const ChannelKey& k) {
  return "channel (src=" + std::to_string(std::get<0>(k)) +
         ", dst=" + std::to_string(std::get<1>(k)) +
         ", tag=" + std::to_string(std::get<2>(k)) + ")";
}
}  // namespace

MatchResult match_schedule(const Schedule& sched) {
  std::map<ChannelKey, Channel> channels;

  // Pass 1: count both halves per channel so all storage is reserved
  // exactly (no growth doubling) and imbalance is diagnosed up front.
  for (int r = 0; r < sched.nranks; ++r) {
    const auto& list = sched.ops[r];
    for (const Op& op : list) {
      if (op.has_send()) ++channels[{r, op.dst, op.send_tag}].nsends;
      if (op.has_recv()) ++channels[{op.src, r, op.recv_tag}].nrecvs;
    }
  }
  for (auto& [key, ch] : channels) {
    if (ch.nsends != ch.nrecvs) {
      throw ScheduleError("unbalanced " + channel_name(key) + ": " +
                          std::to_string(ch.nsends) + " send(s) vs " +
                          std::to_string(ch.nrecvs) + " receive(s)");
    }
    ch.send_refs.reserve(ch.nsends);
  }

  // Pass 2: collect send refs. Iterating rank-major preserves each
  // channel's program order, because a channel's sends all come from one
  // rank (its src).
  for (int r = 0; r < sched.nranks; ++r) {
    const auto& list = sched.ops[r];
    for (int i = 0; i < static_cast<int>(list.size()); ++i) {
      const Op& op = list[i];
      if (op.has_send()) {
        channels.find({r, op.dst, op.send_tag})->second.send_refs.push_back({r, i});
      }
    }
  }

  MatchResult out;
  out.msgs.reserve(sched.total_sends());
  out.send_msg_of.resize(sched.nranks);
  out.recv_msg_of.resize(sched.nranks);
  for (int r = 0; r < sched.nranks; ++r) {
    out.send_msg_of[r].assign(sched.ops[r].size(), -1);
    out.recv_msg_of[r].assign(sched.ops[r].size(), -1);
  }

  // Pass 3: stream receives, pairing the i-th receive on a channel with
  // the i-th send (MPI non-overtaking). A channel's receives all belong to
  // one rank (its dst), so rank-major iteration again preserves order.
  for (int r = 0; r < sched.nranks; ++r) {
    const auto& list = sched.ops[r];
    for (int i = 0; i < static_cast<int>(list.size()); ++i) {
      const Op& op = list[i];
      if (!op.has_recv()) continue;
      const ChannelKey key{op.src, r, op.recv_tag};
      Channel& ch = channels.find(key)->second;
      const SendRef s = ch.send_refs[ch.paired];
      const Op& sop = sched.ops[s.rank][s.op];
      if (sop.send_bytes > op.recv_cap) {
        throw ScheduleError("truncation on " + channel_name(key) + ": send #" +
                            std::to_string(ch.paired) + " carries " +
                            std::to_string(sop.send_bytes) +
                            " bytes into a " + std::to_string(op.recv_cap) +
                            "-byte receive");
      }
      ++ch.paired;
      MatchedMsg m;
      m.src = s.rank;
      m.dst = r;
      m.tag = op.recv_tag;
      m.bytes = sop.send_bytes;
      m.src_off = sop.send_off;
      m.dst_off = op.recv_off;
      m.src_op = s.op;
      m.dst_op = i;
      const int id = static_cast<int>(out.msgs.size());
      out.msgs.push_back(m);
      out.send_msg_of[s.rank][s.op] = id;
      out.recv_msg_of[r][i] = id;
    }
  }

  return out;
}

}  // namespace bsb::trace
