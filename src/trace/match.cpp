#include "trace/match.hpp"

#include <cstdint>
#include <map>
#include <tuple>

namespace bsb::trace {

namespace {
using ChannelKey = std::tuple<int, int, int>;  // src, dst, tag

struct HalfRef {
  int rank;  // the rank whose op list this half belongs to
  int op;
  std::uint64_t bytes_or_cap;
  std::uint64_t off;
};
}  // namespace

MatchResult match_schedule(const Schedule& sched) {
  std::map<ChannelKey, std::vector<HalfRef>> sends, recvs;

  for (int r = 0; r < sched.nranks; ++r) {
    const auto& list = sched.ops[r];
    for (int i = 0; i < static_cast<int>(list.size()); ++i) {
      const Op& op = list[i];
      if (op.has_send()) {
        sends[{r, op.dst, op.send_tag}].push_back(
            {r, i, op.send_bytes, op.send_off});
      }
      if (op.has_recv()) {
        recvs[{op.src, r, op.recv_tag}].push_back(
            {r, i, op.recv_cap, op.recv_off});
      }
    }
  }

  MatchResult out;
  out.send_msg_of.resize(sched.nranks);
  out.recv_msg_of.resize(sched.nranks);
  for (int r = 0; r < sched.nranks; ++r) {
    out.send_msg_of[r].assign(sched.ops[r].size(), -1);
    out.recv_msg_of[r].assign(sched.ops[r].size(), -1);
  }

  auto channel_name = [](const ChannelKey& k) {
    return "channel (src=" + std::to_string(std::get<0>(k)) +
           ", dst=" + std::to_string(std::get<1>(k)) +
           ", tag=" + std::to_string(std::get<2>(k)) + ")";
  };

  for (const auto& [key, slist] : sends) {
    const auto rit = recvs.find(key);
    const std::size_t nrecvs = rit == recvs.end() ? 0 : rit->second.size();
    if (slist.size() != nrecvs) {
      throw ScheduleError("unbalanced " + channel_name(key) + ": " +
                          std::to_string(slist.size()) + " send(s) vs " +
                          std::to_string(nrecvs) + " receive(s)");
    }
    for (std::size_t i = 0; i < slist.size(); ++i) {
      const HalfRef& s = slist[i];
      const HalfRef& v = rit->second[i];
      if (s.bytes_or_cap > v.bytes_or_cap) {
        throw ScheduleError("truncation on " + channel_name(key) + ": send #" +
                            std::to_string(i) + " carries " +
                            std::to_string(s.bytes_or_cap) +
                            " bytes into a " + std::to_string(v.bytes_or_cap) +
                            "-byte receive");
      }
      MatchedMsg m;
      m.src = std::get<0>(key);
      m.dst = std::get<1>(key);
      m.tag = std::get<2>(key);
      m.bytes = s.bytes_or_cap;
      m.src_off = s.off;
      m.dst_off = v.off;
      m.src_op = s.op;
      m.dst_op = v.op;
      const int id = static_cast<int>(out.msgs.size());
      out.msgs.push_back(m);
      out.send_msg_of[m.src][m.src_op] = id;
      out.recv_msg_of[m.dst][m.dst_op] = id;
    }
  }

  // Receives with no send at all on their channel.
  for (const auto& [key, rlist] : recvs) {
    if (sends.find(key) == sends.end()) {
      throw ScheduleError("unbalanced " + channel_name(key) + ": 0 send(s) vs " +
                          std::to_string(rlist.size()) + " receive(s)");
    }
  }

  return out;
}

}  // namespace bsb::trace
