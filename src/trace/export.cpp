#include "trace/export.hpp"

#include "bsbutil/csv.hpp"

namespace bsb::trace {

namespace {
std::string offset_str(std::uint64_t off) {
  return off == kForeignOffset ? "foreign" : std::to_string(off);
}
}  // namespace

void write_schedule_csv(const Schedule& sched, const std::string& path) {
  CsvWriter csv(path);
  csv.row({"rank", "op", "kind", "dst", "send_tag", "send_bytes", "send_off",
           "src", "recv_tag", "recv_cap", "recv_off"});
  for (int r = 0; r < sched.nranks; ++r) {
    for (std::size_t i = 0; i < sched.ops[r].size(); ++i) {
      const Op& op = sched.ops[r][i];
      csv.row({std::to_string(r), std::to_string(i), to_string(op.kind),
               op.has_send() ? std::to_string(op.dst) : "",
               op.has_send() ? std::to_string(op.send_tag) : "",
               op.has_send() ? std::to_string(op.send_bytes) : "",
               op.has_send() ? offset_str(op.send_off) : "",
               op.has_recv() ? std::to_string(op.src) : "",
               op.has_recv() ? std::to_string(op.recv_tag) : "",
               op.has_recv() ? std::to_string(op.recv_cap) : "",
               op.has_recv() ? offset_str(op.recv_off) : ""});
    }
  }
}

void write_messages_csv(const MatchResult& m, const std::string& path) {
  CsvWriter csv(path);
  csv.row({"src", "dst", "tag", "bytes", "src_off", "dst_off", "src_op",
           "dst_op"});
  for (const MatchedMsg& msg : m.msgs) {
    csv.row({std::to_string(msg.src), std::to_string(msg.dst),
             std::to_string(msg.tag), std::to_string(msg.bytes),
             offset_str(msg.src_off), offset_str(msg.dst_off),
             std::to_string(msg.src_op), std::to_string(msg.dst_op)});
  }
}

}  // namespace bsb::trace
