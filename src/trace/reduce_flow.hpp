// Symbolic reduction-dataflow validation: the reduce-direction counterpart
// of coverage.hpp. Coverage tracks WHICH BYTES a rank holds; for a
// reduction that is not enough — correctness means every rank's
// contribution to a chunk is folded in EXACTLY once. This engine therefore
// tracks, per (rank, chunk), the SET OF CONTRIBUTORS the rank's current
// partial combines, and checks every message against three rules:
//
//   * a message snapshots the sender's contributor set at emit time;
//   * an incomplete (partial) payload may only be combined into a
//     DISJOINT local set whose union is again a contiguous circular
//     interval of relative ranks — overlap would double-count a
//     contribution (numerically wrong for sum), a gap would leave a
//     non-interval set no ring schedule can produce (schedule bug);
//   * a complete payload (all P contributors — a finished value) REPLACES
//     an incomplete local set, and landing on an already complete set is
//     REDUNDANT: the receiver learns nothing, which is exactly the
//     ownership-agnostic waste the tuned variants eliminate. The verifier
//     requires redundant == 0 for every ownership-aware schedule.
//
// Every contributor set any ring/recursive-doubling schedule produces is a
// circular interval over relative ranks, so sets are a {begin, length}
// pair, O(1) per message, and sweeps to P = 4096 stay cheap.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/match.hpp"
#include "trace/schedule.hpp"

namespace bsb::trace {

struct ReduceFlowOptions {
  /// Root of the relative-rank numbering (chunk i belongs to relative rank
  /// i). Rootless variants pass 0.
  int root = 0;
  /// Chunk grid: nchunks uniform chunks of chunk_bytes each, chunk i at
  /// byte offset i * chunk_bytes. Recursive doubling, which exchanges
  /// whole buffers, passes nchunks = 1.
  int nchunks = 1;
  std::uint64_t chunk_bytes = 0;
  /// Postcondition, per ABSOLUTE rank: the (first, count) range of
  /// RELATIVE chunk ids that must hold the complete reduction at the end.
  std::vector<std::pair<int, int>> required;
};

struct ReduceFlowReport {
  bool ok = true;
  std::string diagnostics;  // empty when ok

  /// Payload bytes delivering a complete value to a rank whose set for the
  /// chunk was ALREADY complete, and the count of such messages.
  std::uint64_t redundant_bytes = 0;
  std::uint64_t redundant_msgs = 0;
  /// Total payload bytes of all validated messages.
  std::uint64_t delivered_bytes = 0;
};

/// Validate `sched` (already matched as `m`) as a reduction dataflow.
/// Never throws on validation failure; inspect the report.
ReduceFlowReport validate_reduce_flow(const Schedule& sched,
                                      const MatchResult& m,
                                      const ReduceFlowOptions& opt);

}  // namespace bsb::trace
