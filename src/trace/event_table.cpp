#include "trace/event_table.hpp"

#include <algorithm>

#include "bsbutil/table.hpp"

namespace bsb::trace {

std::string render_event_table(const Schedule& sched, std::uint64_t chunk_size) {
  std::size_t max_ops = 0;
  for (const auto& list : sched.ops) max_ops = std::max(max_ops, list.size());

  std::vector<std::string> header{"step"};
  for (int r = 0; r < sched.nranks; ++r) header.push_back("p" + std::to_string(r));
  Table table(std::move(header));

  auto chunk_of = [&](std::uint64_t off) {
    return chunk_size ? std::to_string(off / chunk_size) : std::to_string(off);
  };

  for (std::size_t i = 0; i < max_ops; ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (int r = 0; r < sched.nranks; ++r) {
      if (i >= sched.ops[r].size()) {
        row.push_back("-");
        continue;
      }
      const Op& op = sched.ops[r][i];
      std::string cell;
      if (op.has_send()) {
        cell += "s" + chunk_of(op.send_off) + ">" + std::to_string(op.dst);
      }
      if (op.has_recv()) {
        if (!cell.empty()) cell += " ";
        cell += "r" + chunk_of(op.recv_off) + "<" + std::to_string(op.src);
      }
      if (op.kind == OpKind::Barrier) cell = "|barrier|";
      row.push_back(cell);
    }
    table.add(std::move(row));
  }
  return table.render();
}

}  // namespace bsb::trace
