#include "trace/schedule.hpp"

namespace bsb::trace {

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::Send: return "Send";
    case OpKind::Recv: return "Recv";
    case OpKind::SendRecv: return "SendRecv";
    case OpKind::Barrier: return "Barrier";
  }
  return "?";
}

std::uint64_t Schedule::total_ops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : ops) n += r.size();
  return n;
}

std::uint64_t Schedule::total_sends() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : ops) {
    for (const Op& op : r) {
      if (op.has_send()) ++n;
    }
  }
  return n;
}

std::uint64_t Schedule::total_send_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : ops) {
    for (const Op& op : r) {
      if (op.has_send()) n += op.send_bytes;
    }
  }
  return n;
}

Schedule Schedule::replicate(int iters) const {
  BSB_REQUIRE(iters >= 1, "replicate: iters must be >= 1");
  Schedule out;
  out.nranks = nranks;
  out.nbytes = nbytes;
  out.ops.resize(ops.size());
  for (std::size_t r = 0; r < ops.size(); ++r) {
    out.ops[r].reserve(ops[r].size() * iters);
    for (int i = 0; i < iters; ++i) {
      out.ops[r].insert(out.ops[r].end(), ops[r].begin(), ops[r].end());
    }
  }
  return out;
}

}  // namespace bsb::trace
