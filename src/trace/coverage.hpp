// Symbolic dataflow validation of broadcast schedules: executes a matched
// schedule without data, tracking for every rank which bytes of the root's
// buffer it validly holds. Proves three properties the paper's correctness
// rests on:
//  1. no rank ever SENDS bytes it does not yet hold (no garbage forwarded);
//  2. aligned delivery: data lands at the same buffer offset it came from;
//  3. on completion every rank holds the full [0, nbytes) buffer.
// It also detects schedule deadlocks (a cycle of receives none of which can
// start), reporting each blocked rank's position.
#pragma once

#include <string>

#include "bsbutil/intervals.hpp"
#include "trace/match.hpp"
#include "trace/schedule.hpp"

namespace bsb::trace {

struct CoverageOptions {
  /// Require msg.src_off == msg.dst_off (true for every non-rotating
  /// broadcast algorithm; Bruck-style rotations would violate it).
  bool require_aligned = true;
  /// Require full final coverage on every rank (broadcast postcondition).
  bool require_full_final_coverage = true;
  /// Bytes each rank holds valid BEFORE the schedule runs. Empty means the
  /// broadcast default: the root holds [0, nbytes), everyone else nothing.
  /// Allgather schedules pass their per-rank contribution blocks instead.
  std::vector<IntervalSet> initial = {};
};

struct CoverageReport {
  bool ok = true;
  std::string diagnostics;  // empty when ok

  /// Bytes each rank held valid when execution stopped.
  std::vector<IntervalSet> final_coverage;

  /// Redundancy accounting: bytes delivered to a rank that already held
  /// them (the waste the paper's tuned ring eliminates), and the number of
  /// nonempty messages whose payload was ENTIRELY already held.
  std::uint64_t redundant_bytes = 0;
  std::uint64_t redundant_msgs = 0;
  /// Total payload bytes delivered by all messages (redundant or not).
  std::uint64_t delivered_bytes = 0;
};

/// Validate `sched` (already matched as `m`) for a broadcast rooted at
/// `root`. Never throws on validation failure; inspect the report.
CoverageReport validate_coverage(const Schedule& sched, const MatchResult& m,
                                 int root, const CoverageOptions& opt = {});

}  // namespace bsb::trace
