// Communication schedules: the per-rank sequence of point-to-point
// operations a (data-oblivious) collective algorithm performs for a given
// (P, root, nbytes). Schedules are captured by RecordingComm, validated by
// match/coverage, counted by counters, and replayed under a cost model by
// the netsim discrete-event engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bsbutil/error.hpp"

namespace bsb::trace {

/// Schedule-level validation failure (unmatched message, truncation, ...).
class ScheduleError : public Error {
 public:
  explicit ScheduleError(const std::string& what) : Error(what) {}
};

enum class OpKind : std::uint8_t { Send, Recv, SendRecv, Barrier };

/// Offset recorded for spans that live OUTSIDE the collective's data buffer
/// (e.g. Bruck's rotation scratch). Such schedules replay fine (timing does
/// not depend on offsets) but cannot be dataflow-validated.
inline constexpr std::uint64_t kForeignOffset = ~std::uint64_t{0};

const char* to_string(OpKind k) noexcept;

/// One blocking operation of one rank. Send halves are valid for
/// Send/SendRecv, receive halves for Recv/SendRecv. Offsets are relative to
/// the collective's data buffer (all our broadcast algorithms operate on a
/// single buffer), enabling symbolic dataflow validation.
struct Op {
  OpKind kind = OpKind::Barrier;
  // send half
  int dst = -1;
  int send_tag = -1;
  std::uint64_t send_bytes = 0;
  std::uint64_t send_off = 0;
  // receive half
  int src = -1;
  int recv_tag = -1;
  std::uint64_t recv_cap = 0;
  std::uint64_t recv_off = 0;

  bool has_send() const noexcept {
    return kind == OpKind::Send || kind == OpKind::SendRecv;
  }
  bool has_recv() const noexcept {
    return kind == OpKind::Recv || kind == OpKind::SendRecv;
  }
};

struct Schedule {
  int nranks = 0;
  std::uint64_t nbytes = 0;              // size of the collective's buffer
  std::vector<std::vector<Op>> ops;      // ops[rank] in program order

  std::uint64_t total_ops() const noexcept;
  /// Number of messages initiated (send halves).
  std::uint64_t total_sends() const noexcept;
  /// Sum of bytes over all send halves.
  std::uint64_t total_send_bytes() const noexcept;

  /// The same schedule repeated `iters` times per rank back-to-back — the
  /// paper's measurement loop (one barrier, then N broadcasts).
  Schedule replicate(int iters) const;
};

}  // namespace bsb::trace
