// Render a schedule as a per-step event table, mirroring the paper's
// Figures 3-5 (which list, for each ring step and each process, the send
// and receive happening at that step).
#pragma once

#include <string>

#include "trace/schedule.hpp"

namespace bsb::trace {

/// One row per op position (for ring phases, op position == ring step),
/// one column per rank; cells like "s2>4 r1<0" mean "sends chunk at offset
/// step 2 to rank 4, receives from rank 0". Offsets are divided by
/// `chunk_size` when positive so cells read as chunk indices (pass 0 to
/// show raw byte offsets).
std::string render_event_table(const Schedule& sched, std::uint64_t chunk_size);

}  // namespace bsb::trace
