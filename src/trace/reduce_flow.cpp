#include "trace/reduce_flow.hpp"

#include <vector>

#include "bsbutil/error.hpp"
#include "comm/chunks.hpp"

namespace bsb::trace {

namespace {

/// Contiguous circular interval of relative contributor ranks: the set
/// {(begin + i) mod P : i in [0, len)}. Every partial any ring or
/// recursive-doubling reduction schedule carries has this shape.
struct CircSpan {
  int begin = 0;
  int len = 0;

  std::string to_string() const {
    return "[" + std::to_string(begin) + " +" + std::to_string(len) + ")";
  }
};

struct RankState {
  int pc = 0;
  bool sendrecv_send_done = false;
  int barriers_passed = 0;
  /// Contributor set per relative chunk id.
  std::vector<CircSpan> sets;
};

}  // namespace

ReduceFlowReport validate_reduce_flow(const Schedule& sched,
                                      const MatchResult& m,
                                      const ReduceFlowOptions& opt) {
  ReduceFlowReport report;
  const int P = sched.nranks;
  BSB_REQUIRE(opt.root >= 0 && opt.root < P, "reduce_flow: root out of range");
  BSB_REQUIRE(opt.nchunks >= 1, "reduce_flow: need at least one chunk");
  BSB_REQUIRE(opt.chunk_bytes > 0, "reduce_flow: chunk_bytes must be > 0");
  BSB_REQUIRE(static_cast<int>(opt.required.size()) == P,
              "reduce_flow: required ranges size != nranks");

  // Every rank starts holding, for EVERY chunk, the singleton partial
  // containing only its own contribution.
  std::vector<RankState> st(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    st[r].sets.assign(static_cast<std::size_t>(opt.nchunks),
                      CircSpan{rel_rank(r, opt.root, P), 1});
  }
  std::vector<bool> msg_sent(m.msgs.size(), false);
  /// Sender's contributor set snapshotted when the send is emitted — what
  /// the message's payload actually combines at that moment, regardless of
  /// how the sender's own set evolves afterwards.
  std::vector<CircSpan> carried(m.msgs.size());

  auto fail = [&](const std::string& why) {
    report.ok = false;
    if (!report.diagnostics.empty()) report.diagnostics += "\n";
    report.diagnostics += why;
  };

  auto chunk_of = [&](int r, int op_idx, std::uint64_t off, std::uint64_t bytes,
                      int* out) -> bool {
    const std::string where =
        "rank " + std::to_string(r) + " op " + std::to_string(op_idx);
    if (off == kForeignOffset) {
      fail(where + " sends a partial from scratch memory; reduction dataflow "
                   "cannot be validated");
      return false;
    }
    if (bytes != opt.chunk_bytes || off % opt.chunk_bytes != 0) {
      fail(where + " payload [" + std::to_string(off) + "," +
           std::to_string(off + bytes) + ") is not exactly one chunk of the " +
           std::to_string(opt.chunk_bytes) + "-byte reduction grid");
      return false;
    }
    const std::uint64_t c = off / opt.chunk_bytes;
    if (c >= static_cast<std::uint64_t>(opt.nchunks)) {
      fail(where + " payload offset " + std::to_string(off) +
           " is beyond the chunk grid");
      return false;
    }
    *out = static_cast<int>(c);
    return true;
  };

  auto emit_send = [&](int r, int op_idx) -> bool {
    const Op& op = sched.ops[r][op_idx];
    int c = 0;
    if (!chunk_of(r, op_idx, op.send_off, op.send_bytes, &c)) return false;
    const int id = m.send_msg_of[r][op_idx];
    BSB_ASSERT(id >= 0, "reduce_flow: send half without matched message");
    carried[static_cast<std::size_t>(id)] = st[r].sets[static_cast<std::size_t>(c)];
    msg_sent[id] = true;
    return true;
  };

  auto try_recv = [&](int r, int op_idx) -> bool {
    const int id = m.recv_msg_of[r][op_idx];
    BSB_ASSERT(id >= 0, "reduce_flow: recv half without matched message");
    if (!msg_sent[id]) return false;  // still blocked
    const MatchedMsg& msg = m.msgs[id];
    // The chunk is identified by the SOURCE offset: ring partials land in
    // scratch on the receiver (the home offset still holds the receiver's
    // unfolded contribution), so dst_off may legitimately be foreign.
    int c = 0;
    if (!chunk_of(msg.src, msg.src_op, msg.src_off, msg.bytes, &c)) return true;
    const CircSpan in = carried[static_cast<std::size_t>(id)];
    CircSpan& have = st[r].sets[static_cast<std::size_t>(c)];
    const std::string where = "rank " + std::to_string(r) + " op " +
                              std::to_string(op_idx) + " chunk " +
                              std::to_string(c);
    report.delivered_bytes += msg.bytes;

    if (in.len == P) {
      // Complete value: replaces whatever partial the receiver held; a
      // second complete delivery teaches the receiver nothing.
      if (have.len == P) {
        report.redundant_bytes += msg.bytes;
        ++report.redundant_msgs;
      }
      have = in;
      return true;
    }
    if (have.len == P) {
      fail(where + ": partial " + in.to_string() +
           " delivered over an already complete value");
      return true;
    }
    // Partial over partial: must be disjoint and adjacent so the union is
    // again a circular interval — anything else double-counts a
    // contribution or tears the set.
    if (in.begin == (have.begin + have.len) % P && have.len + in.len <= P) {
      have.len += in.len;
    } else if (have.begin == (in.begin + in.len) % P && have.len + in.len <= P) {
      have = CircSpan{in.begin, have.len + in.len};
    } else {
      fail(where + ": partial " + in.to_string() +
           " cannot combine with held " + have.to_string() +
           " (overlapping or non-adjacent contributor sets — a contribution "
           "would be double-counted or lost)");
    }
    return true;
  };

  auto barrier_ready = [&](int generation) {
    for (int q = 0; q < P; ++q) {
      if (st[q].barriers_passed > generation) continue;
      const auto& list = sched.ops[q];
      if (st[q].pc < static_cast<int>(list.size()) &&
          list[st[q].pc].kind == OpKind::Barrier &&
          st[q].barriers_passed == generation) {
        continue;
      }
      return false;
    }
    return true;
  };

  bool progress = true;
  while (progress && report.ok) {
    progress = false;
    for (int r = 0; r < P; ++r) {
      while (report.ok && st[r].pc < static_cast<int>(sched.ops[r].size())) {
        const int i = st[r].pc;
        const Op& op = sched.ops[r][i];
        bool advanced = false;
        switch (op.kind) {
          case OpKind::Send:
            if (!emit_send(r, i)) break;
            advanced = true;
            break;
          case OpKind::Recv:
            advanced = try_recv(r, i);
            break;
          case OpKind::SendRecv:
            if (!st[r].sendrecv_send_done) {
              if (!emit_send(r, i)) break;
              st[r].sendrecv_send_done = true;
              progress = true;
            }
            if (try_recv(r, i)) {
              st[r].sendrecv_send_done = false;
              advanced = true;
            }
            break;
          case OpKind::Barrier:
            if (barrier_ready(st[r].barriers_passed)) {
              ++st[r].barriers_passed;
              advanced = true;
            }
            break;
        }
        if (!advanced) break;
        ++st[r].pc;
        progress = true;
      }
    }
  }

  if (report.ok) {
    for (int r = 0; r < P; ++r) {
      if (st[r].pc < static_cast<int>(sched.ops[r].size())) {
        const Op& op = sched.ops[r][st[r].pc];
        fail("deadlock: rank " + std::to_string(r) + " blocked at op " +
             std::to_string(st[r].pc) + " (" + to_string(op.kind) +
             (op.has_recv() ? " from " + std::to_string(op.src) : "") + ")");
      }
    }
  }

  if (report.ok) {
    for (int r = 0; r < P; ++r) {
      const auto [first, count] = opt.required[static_cast<std::size_t>(r)];
      BSB_REQUIRE(first >= 0 && count >= 0 && first + count <= opt.nchunks,
                  "reduce_flow: required chunk range out of bounds");
      for (int c = first; c < first + count; ++c) {
        const CircSpan& s = st[r].sets[static_cast<std::size_t>(c)];
        if (s.len != P) {
          fail("rank " + std::to_string(r) + " ends with chunk " +
               std::to_string(c) + " holding only contributors " +
               s.to_string() + " of " + std::to_string(P));
        }
      }
    }
  }

  return report;
}

}  // namespace bsb::trace
