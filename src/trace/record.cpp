#include "trace/record.hpp"

#include "bsbutil/error.hpp"

namespace bsb::trace {

RecordingComm::RecordingComm(int rank, int nranks, std::span<const std::byte> base,
                             std::vector<Op>& out)
    : rank_(rank), nranks_(nranks), base_(base), out_(&out) {
  BSB_REQUIRE(nranks > 0 && rank >= 0 && rank < nranks,
              "RecordingComm: rank out of range");
}

std::uint64_t RecordingComm::offset_of(std::span<const std::byte> buf) const {
  if (buf.empty()) return 0;
  if (buf.data() < base_.data() ||
      buf.data() + buf.size() > base_.data() + base_.size()) {
    return kForeignOffset;  // outside the collective's buffer (scratch)
  }
  return static_cast<std::uint64_t>(buf.data() - base_.data());
}

void RecordingComm::send(std::span<const std::byte> buf, int dest, int tag) {
  BSB_REQUIRE(dest >= 0 && dest < nranks_, "record send: destination out of range");
  BSB_REQUIRE(tag >= 0, "record send: tag must be nonnegative");
  Op op;
  op.kind = OpKind::Send;
  op.dst = dest;
  op.send_tag = tag;
  op.send_bytes = buf.size();
  op.send_off = offset_of(buf);
  out_->push_back(op);
}

Status RecordingComm::recv(std::span<std::byte> buf, int source, int tag) {
  BSB_REQUIRE(source != kAnySource && tag != kAnyTag,
              "record recv: wildcards make schedules nondeterministic");
  BSB_REQUIRE(source >= 0 && source < nranks_, "record recv: source out of range");
  Op op;
  op.kind = OpKind::Recv;
  op.src = source;
  op.recv_tag = tag;
  op.recv_cap = buf.size();
  op.recv_off = offset_of(buf);
  out_->push_back(op);
  // The recorder cannot know the actual matched size; report the capacity.
  // Data-oblivious algorithms may not branch on this anyway.
  return Status{source, tag, buf.size()};
}

Status RecordingComm::sendrecv(std::span<const std::byte> sendbuf, int dest,
                               int sendtag, std::span<std::byte> recvbuf,
                               int source, int recvtag) {
  BSB_REQUIRE(source != kAnySource && recvtag != kAnyTag,
              "record sendrecv: wildcards make schedules nondeterministic");
  BSB_REQUIRE(dest >= 0 && dest < nranks_, "record sendrecv: destination out of range");
  BSB_REQUIRE(source >= 0 && source < nranks_, "record sendrecv: source out of range");
  BSB_REQUIRE(sendtag >= 0, "record sendrecv: tag must be nonnegative");
  Op op;
  op.kind = OpKind::SendRecv;
  op.dst = dest;
  op.send_tag = sendtag;
  op.send_bytes = sendbuf.size();
  op.send_off = offset_of(sendbuf);
  op.src = source;
  op.recv_tag = recvtag;
  op.recv_cap = recvbuf.size();
  op.recv_off = offset_of(recvbuf);
  out_->push_back(op);
  return Status{source, recvtag, recvbuf.size()};
}

void RecordingComm::barrier() {
  Op op;
  op.kind = OpKind::Barrier;
  out_->push_back(op);
}

Schedule record_schedule(int nranks, std::uint64_t nbytes, const RankProgram& program) {
  BSB_REQUIRE(nranks > 0, "record_schedule: nranks must be positive");
  Schedule sched;
  sched.nranks = nranks;
  sched.nbytes = nbytes;
  sched.ops.resize(nranks);
  std::vector<std::byte> scratch(nbytes);
  for (int r = 0; r < nranks; ++r) {
    // Most schedules are (near-)uniform across ranks; seeding each rank's
    // capacity from its predecessor avoids growth reallocation, which
    // dominates recording time for quadratic (ring) schedules at large P.
    if (r > 0) sched.ops[r].reserve(sched.ops[r - 1].size());
    RecordingComm rec(r, nranks, scratch, sched.ops[r]);
    program(rec, std::span<std::byte>(scratch));
  }
  return sched;
}

}  // namespace bsb::trace
