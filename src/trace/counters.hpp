// Traffic accounting over matched schedules: total / intra-node /
// inter-node message and byte counts, used to reproduce the paper's
// transfer-count arithmetic (56 -> 44 at P=8, 90 -> 75 at P=10) and to
// explain where the bandwidth savings come from.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/topology.hpp"
#include "trace/match.hpp"

namespace bsb::trace {

struct TrafficStats {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t intra_msgs = 0;
  std::uint64_t intra_bytes = 0;
  std::uint64_t inter_msgs = 0;
  std::uint64_t inter_bytes = 0;
  /// Messages on the busiest ordered (src, dst) rank pair.
  std::uint64_t max_pair_msgs = 0;
};

/// Count matched messages, classifying each as intra- or inter-node per the
/// topology. Zero-byte messages count as messages (they are real sends).
TrafficStats traffic_stats(const MatchResult& m, const Topology& topo);

/// Send/receive operations one rank performs in a schedule (SendRecv counts
/// once on each side). The fuzz harness compares these against the closed
/// forms in core/transfer_analysis and core/ring_plan.
struct RankOpCounts {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
};

/// Per-rank operation counts, indexed by rank.
std::vector<RankOpCounts> per_rank_op_counts(const Schedule& sched);

}  // namespace bsb::trace
