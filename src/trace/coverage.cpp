#include "trace/coverage.hpp"

#include <vector>

namespace bsb::trace {

namespace {

struct RankState {
  int pc = 0;                   // next op index
  bool sendrecv_send_done = false;  // send half of current SendRecv emitted
  int barriers_passed = 0;
  IntervalSet valid;
};

}  // namespace

CoverageReport validate_coverage(const Schedule& sched, const MatchResult& m,
                                 int root, const CoverageOptions& opt) {
  CoverageReport report;
  const int P = sched.nranks;
  BSB_REQUIRE(root >= 0 && root < P, "validate_coverage: root out of range");

  std::vector<RankState> st(P);
  if (opt.initial.empty()) {
    st[root].valid.insert({0, sched.nbytes});
  } else {
    BSB_REQUIRE(static_cast<int>(opt.initial.size()) == P,
                "validate_coverage: initial coverage size != nranks");
    for (int r = 0; r < P; ++r) st[r].valid = opt.initial[r];
  }
  std::vector<bool> msg_sent(m.msgs.size(), false);

  auto fail = [&](const std::string& why) {
    report.ok = false;
    if (!report.diagnostics.empty()) report.diagnostics += "\n";
    report.diagnostics += why;
  };

  // The send half of an op is emitted the moment the op is reached (MPI
  // send semantics under unbounded buffering); the receive half blocks
  // until its matching send has been emitted.
  auto emit_send = [&](int r, int op_idx) -> bool {
    const Op& op = sched.ops[r][op_idx];
    if (op.send_off == kForeignOffset) {
      fail("rank " + std::to_string(r) + " op " + std::to_string(op_idx) +
           " sends from scratch memory outside the collective's buffer; "
           "dataflow cannot be validated");
      return false;
    }
    const Interval iv{op.send_off, op.send_off + op.send_bytes};
    if (!st[r].valid.contains(iv)) {
      fail("rank " + std::to_string(r) + " op " + std::to_string(op_idx) +
           " sends bytes " + std::to_string(iv.lo) + ".." + std::to_string(iv.hi) +
           " it does not hold (holds " + st[r].valid.to_string() + ")");
      return false;
    }
    const int id = m.send_msg_of[r][op_idx];
    BSB_ASSERT(id >= 0, "coverage: send half without matched message");
    msg_sent[id] = true;
    return true;
  };

  auto try_recv = [&](int r, int op_idx) -> bool {
    const int id = m.recv_msg_of[r][op_idx];
    BSB_ASSERT(id >= 0, "coverage: recv half without matched message");
    if (!msg_sent[id]) return false;  // still blocked
    const MatchedMsg& msg = m.msgs[id];
    if (opt.require_aligned && msg.src_off != msg.dst_off) {
      fail("rank " + std::to_string(r) + " op " + std::to_string(op_idx) +
           " receives bytes at offset " + std::to_string(msg.dst_off) +
           " that originate from offset " + std::to_string(msg.src_off) +
           " (misaligned delivery)");
    }
    const Interval iv{msg.dst_off, msg.dst_off + msg.bytes};
    const std::uint64_t already = st[r].valid.overlap(iv);
    report.delivered_bytes += msg.bytes;
    report.redundant_bytes += already;
    if (msg.bytes > 0 && already == msg.bytes) ++report.redundant_msgs;
    st[r].valid.insert(iv);
    return true;
  };

  auto barrier_ready = [&](int generation) {
    // Every rank must have reached (or passed) its `generation`-th barrier.
    for (int q = 0; q < P; ++q) {
      if (st[q].barriers_passed > generation) continue;
      const auto& list = sched.ops[q];
      if (st[q].pc < static_cast<int>(list.size()) &&
          list[st[q].pc].kind == OpKind::Barrier &&
          st[q].barriers_passed == generation) {
        continue;  // waiting at this barrier right now
      }
      return false;
    }
    return true;
  };

  bool progress = true;
  while (progress && report.ok) {
    progress = false;
    for (int r = 0; r < P; ++r) {
      while (report.ok && st[r].pc < static_cast<int>(sched.ops[r].size())) {
        const int i = st[r].pc;
        const Op& op = sched.ops[r][i];
        bool advanced = false;
        switch (op.kind) {
          case OpKind::Send:
            if (!emit_send(r, i)) break;
            advanced = true;
            break;
          case OpKind::Recv:
            advanced = try_recv(r, i);
            break;
          case OpKind::SendRecv:
            if (!st[r].sendrecv_send_done) {
              if (!emit_send(r, i)) break;
              st[r].sendrecv_send_done = true;
              progress = true;
            }
            if (try_recv(r, i)) {
              st[r].sendrecv_send_done = false;
              advanced = true;
            }
            break;
          case OpKind::Barrier:
            if (barrier_ready(st[r].barriers_passed)) {
              ++st[r].barriers_passed;
              advanced = true;
            }
            break;
        }
        if (!advanced) break;
        ++st[r].pc;
        progress = true;
      }
    }
  }

  // Deadlock: some rank never finished although nothing failed outright.
  if (report.ok) {
    for (int r = 0; r < P; ++r) {
      if (st[r].pc < static_cast<int>(sched.ops[r].size())) {
        const Op& op = sched.ops[r][st[r].pc];
        fail("deadlock: rank " + std::to_string(r) + " blocked at op " +
             std::to_string(st[r].pc) + " (" + to_string(op.kind) +
             (op.has_recv() ? " from " + std::to_string(op.src) : "") + ")");
      }
    }
  }

  if (report.ok && opt.require_full_final_coverage) {
    for (int r = 0; r < P; ++r) {
      const IntervalSet missing = st[r].valid.complement(sched.nbytes);
      if (!missing.empty()) {
        fail("rank " + std::to_string(r) + " ends missing bytes " +
             missing.to_string());
      }
    }
  }

  report.final_coverage.reserve(P);
  for (int r = 0; r < P; ++r) report.final_coverage.push_back(std::move(st[r].valid));
  return report;
}

}  // namespace bsb::trace
