// Tests for the paper's contribution: the (step, flag) ring plan of
// Listing 1 (checked against the worked examples of Figures 4 and 5), the
// closed-form transfer analysis (56->44 at P=8, 90->75 at P=10), and the
// tuned scatter-ring-allgather broadcast — verified with real data on the
// thread backend and symbolically with the coverage validator.
#include <gtest/gtest.h>

#include "bcast_test_util.hpp"
#include "coll/allgather_ring_native.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"
#include "core/allgather_ring_tuned.hpp"
#include "core/bcast.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "comm/subcomm.hpp"
#include "core/persistent_bcast.hpp"
#include "core/ring_plan.hpp"
#include "core/transfer_analysis.hpp"
#include "trace/counters.hpp"
#include "trace/event_table.hpp"

namespace bsb::core {
namespace {

using testutil::check_bcast_coverage;
using testutil::check_bcast_on_threads;

// ---------------------------------------------------------------- RingPlan

TEST(RingPlan, PaperFigure4EightProcesses) {
  // (step, recv_only) per relative rank, from the Fig. 4 walk-through.
  struct { int step; bool recv_only; } expect[] = {
      {8, false}, {2, true}, {2, false}, {4, true},
      {4, false}, {2, true}, {2, false}, {8, true},
  };
  for (int rel = 0; rel < 8; ++rel) {
    const RingPlan p = compute_ring_plan(rel, 8);
    EXPECT_EQ(p.step, expect[rel].step) << "rel " << rel;
    EXPECT_EQ(p.recv_only, expect[rel].recv_only) << "rel " << rel;
  }
}

TEST(RingPlan, PaperFigure5TenProcesses) {
  struct { int step; bool recv_only; } expect[] = {
      {10, false}, {2, true}, {2, false}, {4, true}, {4, false},
      {2, true},  {2, false}, {2, true},  {2, false}, {10, true},
  };
  for (int rel = 0; rel < 10; ++rel) {
    const RingPlan p = compute_ring_plan(rel, 10);
    EXPECT_EQ(p.step, expect[rel].step) << "rel " << rel;
    EXPECT_EQ(p.recv_only, expect[rel].recv_only) << "rel " << rel;
  }
}

TEST(RingPlan, RootNeverReceivesLeftOfRootNeverSends) {
  for (int P = 2; P <= 300; ++P) {
    const RingPlan root = compute_ring_plan(0, P);
    EXPECT_FALSE(root.recv_only);
    EXPECT_EQ(root.step, P);  // send-only for ALL P-1 steps
    EXPECT_EQ(tuned_recvs(root, P), 0);

    const RingPlan last = compute_ring_plan(P - 1, P);
    EXPECT_TRUE(last.recv_only);
    EXPECT_EQ(last.step, P);
    EXPECT_EQ(tuned_sends(last, P), 0);
  }
}

TEST(RingPlan, StepMatchesScatterSubtree) {
  // A send-only rank's step equals its binomial-subtree block size; a
  // receive-only rank's step equals its RIGHT neighbour's block size.
  for (int P = 2; P <= 200; ++P) {
    for (int rel = 0; rel < P; ++rel) {
      const RingPlan p = compute_ring_plan(rel, P);
      if (p.recv_only) {
        const int right = (rel + 1) % P;
        EXPECT_EQ(p.step, coll::scatter_subtree_span(right, P))
            << "P=" << P << " rel=" << rel;
      } else {
        EXPECT_EQ(p.step, coll::scatter_subtree_span(rel, P))
            << "P=" << P << " rel=" << rel;
      }
    }
  }
}

TEST(RingPlan, SkippedSendsPairWithSkippedReceives) {
  // Property: every send-only rank q skips exactly as many receives (from
  // q-1) as its left neighbour q-1 skips sends (to q), step for step —
  // otherwise the tuned ring would deadlock or lose data.
  for (int P = 2; P <= 300; ++P) {
    for (int rel = 0; rel < P; ++rel) {
      const RingPlan p = compute_ring_plan(rel, P);
      if (!p.recv_only && p.special_steps() > 0) {
        const int left = (rel + P - 1) % P;
        const RingPlan lp = compute_ring_plan(left, P);
        EXPECT_TRUE(lp.recv_only) << "P=" << P << " rel=" << rel;
        EXPECT_EQ(lp.step, p.step) << "P=" << P << " rel=" << rel;
      }
    }
  }
}

TEST(RingPlan, SendsEqualReceivesGloballyPerStep) {
  // In every ring step the set of sends equals the set of receives: rank r
  // sends at step i iff rank r+1 receives at step i.
  for (int P : {2, 3, 4, 5, 6, 7, 8, 9, 10, 16, 17, 33, 64, 129}) {
    std::vector<RingPlan> plans;
    plans.reserve(P);
    for (int rel = 0; rel < P; ++rel) plans.push_back(compute_ring_plan(rel, P));
    for (int i = 1; i < P; ++i) {
      for (int rel = 0; rel < P; ++rel) {
        const bool sends = !is_special_step(plans[rel], i, P) || !plans[rel].recv_only;
        const int right = (rel + 1) % P;
        const bool receives =
            !is_special_step(plans[right], i, P) || plans[right].recv_only;
        EXPECT_EQ(sends, receives) << "P=" << P << " i=" << i << " rel=" << rel;
      }
    }
  }
}

TEST(RingPlan, SingleRankIsTrivial) {
  const RingPlan p = compute_ring_plan(0, 1);
  EXPECT_EQ(p.step, 1);
  EXPECT_EQ(p.special_steps(), 0);
}

TEST(RingPlan, RejectsBadArguments) {
  EXPECT_THROW(compute_ring_plan(0, 0), PreconditionError);
  EXPECT_THROW(compute_ring_plan(-1, 4), PreconditionError);
  EXPECT_THROW(compute_ring_plan(4, 4), PreconditionError);
}

// --------------------------------------------------------- TransferAnalysis

TEST(TransferAnalysis, PaperInTextNumbers) {
  EXPECT_EQ(native_ring_transfers(8), 56u);
  EXPECT_EQ(tuned_ring_transfers(8), 44u);
  EXPECT_EQ(tuned_ring_savings(8), 12u);
  EXPECT_EQ(native_ring_transfers(10), 90u);
  EXPECT_EQ(tuned_ring_transfers(10), 75u);
  EXPECT_EQ(tuned_ring_savings(10), 15u);
}

TEST(TransferAnalysis, SavingsGrowWithProcessCount) {
  // Paper §IV: "the decrement in the amount of the transferred data will
  // increase as the growing of the process count P".
  std::uint64_t prev = 0;
  for (int P : {4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const std::uint64_t s = tuned_ring_savings(P);
    EXPECT_GT(s, prev) << "P=" << P;
    prev = s;
  }
}

TEST(TransferAnalysis, SavingsBySendersEqualsSavingsByReceivers) {
  for (int P = 1; P <= 300; ++P) {
    std::uint64_t by_recv_only = 0;
    for (int rel = 0; rel < P; ++rel) {
      const RingPlan p = compute_ring_plan(rel, P);
      if (p.recv_only) by_recv_only += p.special_steps();
    }
    EXPECT_EQ(by_recv_only, tuned_ring_savings(P)) << "P=" << P;
  }
}

TEST(TransferAnalysis, TunedNeverExceedsNative) {
  for (int P = 1; P <= 300; ++P) {
    EXPECT_LE(tuned_ring_transfers(P), native_ring_transfers(P));
  }
}

TEST(TransferAnalysis, PowerOfTwoSavingsClosedForm) {
  // For P = 2^k the send-only ranks are the subtree roots: one block of P,
  // one of P/2, two of P/4, ... so savings = sum over blocks (size-1).
  for (int k = 1; k <= 10; ++k) {
    const int P = 1 << k;
    std::uint64_t expect = static_cast<std::uint64_t>(P) - 1;  // the root
    for (int level = 1; level < k; ++level) {
      const int block = P >> level;
      expect += static_cast<std::uint64_t>(1 << (level - 1)) * (block - 1);
    }
    EXPECT_EQ(tuned_ring_savings(P), expect) << "P=" << P;
  }
}

TEST(TransferAnalysis, ScatterTransfers) {
  EXPECT_EQ(scatter_transfers(8, 8000), 7u);
  EXPECT_EQ(scatter_transfers(10, 8000), 9u);
  // Fewer bytes than ranks: trailing ranks get nothing and receive nothing.
  EXPECT_EQ(scatter_transfers(8, 3), 2u);
  EXPECT_EQ(scatter_transfers(8, 0), 0u);
}

TEST(TransferAnalysis, TableRenders) {
  const std::string t = transfer_table({8, 10});
  EXPECT_NE(t.find("56"), std::string::npos);
  EXPECT_NE(t.find("44"), std::string::npos);
  EXPECT_NE(t.find("75"), std::string::npos);
}

// ----------------------------------------------- recorded schedule matches
// closed form — ties the analysis to the actual algorithm implementation.

TEST(TunedRingSchedule, MessageCountMatchesClosedFormAcrossP) {
  for (int P = 2; P <= 64; ++P) {
    const std::uint64_t nbytes = 64 * static_cast<std::uint64_t>(P);
    const auto tuned = trace::record_schedule(
        P, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
          allgather_ring_tuned(comm, buffer, 0, ChunkLayout(nbytes, P));
        });
    EXPECT_EQ(tuned.total_sends(), tuned_ring_transfers(P)) << "P=" << P;

    const auto native = trace::record_schedule(
        P, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
          coll::allgather_ring_native(comm, buffer, 0, ChunkLayout(nbytes, P));
        });
    EXPECT_EQ(native.total_sends(), native_ring_transfers(P)) << "P=" << P;
  }
}

TEST(TunedRingSchedule, SameStepCountAsNative) {
  // Paper §IV: the tuned ring uses the SAME P-1 steps; only transfers are
  // skipped. Per-rank op counts stay P-1.
  for (int P : {2, 8, 10, 17}) {
    const auto sched = trace::record_schedule(
        P, 1024, [&](Comm& comm, std::span<std::byte> buffer) {
          allgather_ring_tuned(comm, buffer, 0, ChunkLayout(1024, P));
        });
    for (int r = 0; r < P; ++r) {
      EXPECT_EQ(sched.ops[r].size(), static_cast<std::size_t>(P - 1));
    }
  }
}

TEST(TunedRingSchedule, RootLinkCarriesNoMessages) {
  // The link from rank root-1 into the root is never used.
  const int P = 10, root = 4;
  const auto sched = trace::record_schedule(
      P, 1000, [&](Comm& comm, std::span<std::byte> buffer) {
        allgather_ring_tuned(comm, buffer, root, ChunkLayout(1000, P));
      });
  const auto m = trace::match_schedule(sched);
  for (const auto& msg : m.msgs) {
    EXPECT_FALSE(msg.dst == root) << "message into the root from " << msg.src;
  }
}

// -------------------------------------------------- tuned bcast correctness

struct BcastCase {
  int nranks;
  std::uint64_t nbytes;
  int root;
};

std::vector<BcastCase> sweep_cases() {
  std::vector<BcastCase> cases;
  for (int P : {1, 2, 3, 4, 5, 7, 8, 9, 10, 12, 16, 17, 24}) {
    for (std::uint64_t n : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{5},
                            std::uint64_t{257}, std::uint64_t{4096},
                            std::uint64_t{12289}}) {
      for (int root : {0, P / 2, P - 1}) {
        if (root >= P) continue;
        cases.push_back({P, n, root});
        if (root == P - 1) break;
      }
    }
  }
  return cases;
}

class TunedBcastSweep : public ::testing::TestWithParam<BcastCase> {};

std::string case_name(const ::testing::TestParamInfo<BcastCase>& info) {
  return "P" + std::to_string(info.param.nranks) + "_n" +
         std::to_string(info.param.nbytes) + "_r" +
         std::to_string(info.param.root);
}

TEST_P(TunedBcastSweep, CorrectOnThreads) {
  const auto& c = GetParam();
  check_bcast_on_threads(c.nranks, c.nbytes, c.root,
                         [](Comm& comm, std::span<std::byte> buf, int root) {
                           bcast_scatter_ring_tuned(comm, buf, root);
                         });
}

TEST_P(TunedBcastSweep, CoverageHolds) {
  const auto& c = GetParam();
  check_bcast_coverage(c.nranks, c.nbytes, c.root,
                       [](Comm& comm, std::span<std::byte> buf, int root) {
                         bcast_scatter_ring_tuned(comm, buf, root);
                       });
}

INSTANTIATE_TEST_SUITE_P(Sweep, TunedBcastSweep,
                         ::testing::ValuesIn(sweep_cases()), case_name);

TEST(TunedBcast, CoverageForAllRootsUpToP32) {
  // Exhaustive (P, root) scan, symbolic only — cheap and thorough.
  for (int P = 2; P <= 32; ++P) {
    for (int root = 0; root < P; ++root) {
      check_bcast_coverage(P, 31 * P + 7, root,
                           [](Comm& comm, std::span<std::byte> buf, int r) {
                             bcast_scatter_ring_tuned(comm, buf, r);
                           });
    }
  }
}

TEST(TunedBcast, LargeRendezvousOnThreads) {
  mpisim::WorldConfig cfg;
  cfg.eager_threshold = 2048;
  check_bcast_on_threads(10, 600000, 7,
                         [](Comm& comm, std::span<std::byte> buf, int root) {
                           bcast_scatter_ring_tuned(comm, buf, root);
                         },
                         cfg);
}

TEST(TunedBcast, FewerMessagesThanNativeOnThreads) {
  // End-to-end on the runtime counters: the tuned broadcast really sends
  // fewer messages (scatter is identical, ring saves tuned_ring_savings).
  const int P = 10;
  const std::uint64_t nbytes = 10240;
  mpisim::World native_world(P), tuned_world(P);
  native_world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(nbytes);
    coll::bcast_scatter_ring_native(comm, buf, 0);
  });
  tuned_world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(nbytes);
    bcast_scatter_ring_tuned(comm, buf, 0);
  });
  EXPECT_EQ(native_world.total_msgs() - tuned_world.total_msgs(),
            tuned_ring_savings(P));
}

// ---------------------------------------------------------------- selector

TEST(Selector, MpichDispatchTable) {
  const BcastConfig cfg;
  // Short messages: always binomial.
  EXPECT_EQ(choose_bcast_algorithm(0, 64, cfg), BcastAlgorithm::Binomial);
  EXPECT_EQ(choose_bcast_algorithm(12287, 64, cfg), BcastAlgorithm::Binomial);
  // Small groups: always binomial.
  EXPECT_EQ(choose_bcast_algorithm(1 << 20, 7, cfg), BcastAlgorithm::Binomial);
  // Medium, power-of-two: scatter + recursive doubling.
  EXPECT_EQ(choose_bcast_algorithm(12288, 64, cfg),
            BcastAlgorithm::ScatterRdAllgather);
  EXPECT_EQ(choose_bcast_algorithm(524287, 16, cfg),
            BcastAlgorithm::ScatterRdAllgather);
  // Medium, non-power-of-two: the ring path (mmsg-npof2 in the paper).
  EXPECT_EQ(choose_bcast_algorithm(12288, 9, cfg),
            BcastAlgorithm::ScatterRingTuned);
  // Long: the ring path regardless of pof2.
  EXPECT_EQ(choose_bcast_algorithm(524288, 64, cfg),
            BcastAlgorithm::ScatterRingTuned);
  EXPECT_EQ(choose_bcast_algorithm(1 << 22, 129, cfg),
            BcastAlgorithm::ScatterRingTuned);
}

TEST(Selector, TunedToggle) {
  BcastConfig cfg;
  cfg.use_tuned_ring = false;
  EXPECT_EQ(choose_bcast_algorithm(1 << 20, 64, cfg),
            BcastAlgorithm::ScatterRingNative);
  cfg.use_tuned_ring = true;
  EXPECT_EQ(choose_bcast_algorithm(1 << 20, 64, cfg),
            BcastAlgorithm::ScatterRingTuned);
}

TEST(Selector, NamesAreStable) {
  EXPECT_STREQ(to_string(BcastAlgorithm::Binomial), "binomial");
  EXPECT_STREQ(to_string(BcastAlgorithm::ScatterRingTuned),
               "scatter+ring-allgather(tuned)");
}

TEST(Selector, TopLevelBcastCrossesThresholds) {
  // Exercise bcast() end-to-end at sizes that select each algorithm.
  for (std::uint64_t n : {std::uint64_t{100}, std::uint64_t{20000},
                          std::uint64_t{600000}}) {
    check_bcast_on_threads(9, n, 2,
                           [](Comm& comm, std::span<std::byte> buf, int root) {
                             bcast(comm, buf, root);
                           });
  }
  // Power-of-two group to hit the recursive-doubling path.
  check_bcast_on_threads(8, 20000, 3,
                         [](Comm& comm, std::span<std::byte> buf, int root) {
                           bcast(comm, buf, root);
                         });
}

// ------------------------------------ hand-transcribed paper figure tables

TEST(TunedRingSchedule, Figure4PerRankSendRecvCounts) {
  // Transcribed from the paper's Figure 4 (P=8): how many of the 7 ring
  // steps each rank sends in and receives in.
  const int expect_sends[8] = {7, 6, 7, 4, 7, 6, 7, 0};
  const int expect_recvs[8] = {0, 7, 6, 7, 4, 7, 6, 7};
  const auto sched = trace::record_schedule(
      8, 8 * 64, [](Comm& comm, std::span<std::byte> buffer) {
        allgather_ring_tuned(comm, buffer, 0, ChunkLayout(8 * 64, 8));
      });
  for (int r = 0; r < 8; ++r) {
    int sends = 0, recvs = 0;
    for (const auto& op : sched.ops[r]) {
      sends += op.has_send();
      recvs += op.has_recv();
    }
    EXPECT_EQ(sends, expect_sends[r]) << "rank " << r;
    EXPECT_EQ(recvs, expect_recvs[r]) << "rank " << r;
  }
}

TEST(TunedRingSchedule, Figure5PerRankSendRecvCounts) {
  // Transcribed from the paper's Figure 5 (P=10, non-power-of-two): rank 4
  // stops receiving after step 6; ranks 2/6/8 are complete after step 8;
  // rank 9 never sends; rank 0 (root) never receives.
  const int expect_sends[10] = {9, 8, 9, 6, 9, 8, 9, 8, 9, 0};
  const int expect_recvs[10] = {0, 9, 8, 9, 6, 9, 8, 9, 8, 9};
  const auto sched = trace::record_schedule(
      10, 10 * 64, [](Comm& comm, std::span<std::byte> buffer) {
        allgather_ring_tuned(comm, buffer, 0, ChunkLayout(10 * 64, 10));
      });
  for (int r = 0; r < 10; ++r) {
    int sends = 0, recvs = 0;
    for (const auto& op : sched.ops[r]) {
      sends += op.has_send();
      recvs += op.has_recv();
    }
    EXPECT_EQ(sends, expect_sends[r]) << "rank " << r;
    EXPECT_EQ(recvs, expect_recvs[r]) << "rank " << r;
  }
}

TEST(TunedRingSchedule, Figure4ChunkSequenceIntoProcess4) {
  // Figure 4's walk-through: "in the first four steps, process 4 gets the
  // data chunks marked with 3, 2, 1 and 0 from process 3 in sequence",
  // then stops receiving.
  const auto sched = trace::record_schedule(
      8, 8 * 64, [](Comm& comm, std::span<std::byte> buffer) {
        allgather_ring_tuned(comm, buffer, 0, ChunkLayout(8 * 64, 8));
      });
  const auto& ops4 = sched.ops[4];
  std::vector<int> received_chunks;
  for (const auto& op : ops4) {
    if (op.has_recv()) {
      EXPECT_EQ(op.src, 3);
      received_chunks.push_back(static_cast<int>(op.recv_off / 64));
    }
  }
  EXPECT_EQ(received_chunks, (std::vector<int>{3, 2, 1, 0}));
}

TEST(TunedBcast, LargeScaleSymbolicCoverage) {
  // P=256 (Fig. 6(c) scale): the full broadcast still delivers every byte
  // to every rank — proven symbolically in milliseconds, no threads.
  check_bcast_coverage(256, 1 << 16, 37,
                       [](Comm& comm, std::span<std::byte> buf, int root) {
                         bcast_scatter_ring_tuned(comm, buf, root);
                       });
}

// --------------------------------------------------------- persistent bcast

TEST(PersistentBcast, ExecutesRepeatedlyWithCorrectData) {
  const int P = 10;
  const std::uint64_t nbytes = 50000;  // mmsg-npof2 -> tuned ring
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    core::PersistentBcast plan(comm, nbytes, /*root=*/3);
    EXPECT_EQ(plan.algorithm(), BcastAlgorithm::ScatterRingTuned);
    std::vector<std::byte> buf(nbytes);
    for (int iter = 0; iter < 4; ++iter) {
      if (comm.rank() == 3) fill_pattern(buf, 600 + iter);
      plan.execute(buf);
      ASSERT_EQ(first_pattern_mismatch(buf, 600 + iter), buf.size())
          << "iter " << iter << " rank " << comm.rank();
    }
  });
}

TEST(PersistentBcast, StepCountMatchesPlan) {
  // Root of a tuned P=8 ring: 3 scatter sends + 7 ring sends, no receives.
  const int P = 8;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    BcastConfig cfg;
    cfg.min_procs_for_scatter = 2;  // force the ring path at this size
    core::PersistentBcast plan(comm, 1 << 20, 0, cfg);
    if (comm.rank() == 0) {
      EXPECT_EQ(plan.steps().size(), 10u);
      for (const auto& s : plan.steps()) {
        EXPECT_EQ(s.kind, core::BcastStep::Kind::Send);
      }
    }
    if (comm.rank() == 7) {
      // Left of the root: receive-only in the tuned ring (plus its scatter
      // receive).
      for (const auto& s : plan.steps()) {
        EXPECT_EQ(s.kind, core::BcastStep::Kind::Recv);
      }
    }
    const std::string d = plan.describe();
    EXPECT_NE(d.find("scatter+ring-allgather(tuned)"), std::string::npos);
  });
}

TEST(PersistentBcast, MatchesOneShotMessageCounts) {
  const int P = 9;
  const std::uint64_t nbytes = 30000;
  mpisim::World plan_world(P), direct_world(P);
  plan_world.run([&](mpisim::ThreadComm& comm) {
    core::PersistentBcast plan(comm, nbytes, 0);
    std::vector<std::byte> buf(nbytes);
    if (comm.rank() == 0) fill_pattern(buf, 1);
    plan.execute(buf);
    plan.execute(buf);  // twice
  });
  direct_world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(nbytes);
    if (comm.rank() == 0) fill_pattern(buf, 1);
    bcast(comm, buf, 0);
    bcast(comm, buf, 0);
  });
  EXPECT_EQ(plan_world.total_msgs(), direct_world.total_msgs());
  EXPECT_EQ(plan_world.total_bytes(), direct_world.total_bytes());
}

TEST(PersistentBcast, RejectsWrongBufferSize) {
  mpisim::World world(2);
  world.run([](mpisim::ThreadComm& comm) {
    core::PersistentBcast plan(comm, 100, 0);
    std::vector<std::byte> wrong(99);
    EXPECT_THROW(plan.execute(wrong), PreconditionError);
    if (comm.rank() == 0) {
      // Unblock rank 1? No communication happened: both ranks threw before
      // any send. Nothing to do.
    }
  });
}

// ------------------------------------------------------ subcomm composition

TEST(TunedBcast, WorksInsideSubCommunicator) {
  // The paper's npof2-by-splitting scenario: a 7-rank subgroup of a
  // 12-rank world runs the tuned broadcast; outsiders stay silent.
  const int P = 12;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    if (comm.rank() >= 7) return;
    SubComm sub(comm, {0, 1, 2, 3, 4, 5, 6}, /*context=*/5);
    std::vector<std::byte> buf(40000);
    if (sub.rank() == 2) fill_pattern(buf, 321);
    bcast_scatter_ring_tuned(sub, buf, 2);
    EXPECT_EQ(first_pattern_mismatch(buf, 321), buf.size());
  });
}

// ------------------------------------------------------- large-P plan sweep

TEST(RingPlan, LargeScaleInvariants) {
  // Savings bookkeeping and plan sanity up to P = 2048 (covers Top500-ish
  // rank counts at a per-node granularity).
  for (int P : {512, 1000, 1024, 2000, 2048}) {
    std::uint64_t send_skips = 0, recv_skips = 0;
    for (int rel = 0; rel < P; ++rel) {
      const RingPlan p = compute_ring_plan(rel, P);
      ASSERT_GE(p.step, 1);
      ASSERT_LE(p.step, P);
      (p.recv_only ? send_skips : recv_skips) +=
          static_cast<std::uint64_t>(p.special_steps());
    }
    EXPECT_EQ(send_skips, recv_skips) << "P=" << P;
    EXPECT_EQ(recv_skips, tuned_ring_savings(P)) << "P=" << P;
    EXPECT_LT(tuned_ring_transfers(P), native_ring_transfers(P)) << "P=" << P;
  }
}

// ---------------------------------------------------------- event rendering

TEST(EventTable, ShowsTunedRingEvents) {
  const int P = 8;
  const std::uint64_t nbytes = 64;
  const auto sched = trace::record_schedule(
      P, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
        allgather_ring_tuned(comm, buffer, 0, ChunkLayout(nbytes, P));
      });
  const std::string table = trace::render_event_table(sched, 8);
  // Step 1: rank 0 sends chunk 0 to rank 1 and receives nothing (send-only
  // is not yet active at step 1 — the root is ALWAYS send-only, so its cell
  // has a send and no receive).
  EXPECT_NE(table.find("s0>1"), std::string::npos);
  EXPECT_EQ(sched.ops[0][0].kind, trace::OpKind::Send);
  // Rank 7 never sends: all its ops are plain receives.
  for (const auto& op : sched.ops[7]) {
    EXPECT_EQ(op.kind, trace::OpKind::Recv);
  }
}

}  // namespace
}  // namespace bsb::core
