// Tests for the typed/derived-datatype layer: pack/unpack round trips for
// contiguous, vector (strided) and indexed layouts, and typed transfers
// over the thread backend (including a matrix-column exchange, the classic
// MPI_Type_vector use case).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "comm/datatype.hpp"
#include "mpisim/errors.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

namespace bsb {
namespace {

std::vector<int> iota_vec(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Datatype, ContiguousPackUnpack) {
  const auto data = iota_vec(10);
  const Datatype d = Datatype::contiguous(4, 3);
  EXPECT_EQ(d.element_count(), 4u);
  EXPECT_EQ(d.min_extent(), 7u);
  const auto packed = d.pack(std::span<const int>(data));
  EXPECT_EQ(packed, (std::vector<int>{3, 4, 5, 6}));

  std::vector<int> out(10, -1);
  d.unpack(std::span<const int>(packed), std::span<int>(out));
  EXPECT_EQ(out[3], 3);
  EXPECT_EQ(out[6], 6);
  EXPECT_EQ(out[0], -1);
  EXPECT_EQ(out[7], -1);
}

TEST(Datatype, VectorStridedColumn) {
  // A 4x5 row-major matrix; column 2 is a vector layout with stride 5.
  std::vector<int> m(20);
  std::iota(m.begin(), m.end(), 0);
  const Datatype col = Datatype::vector(/*nblocks=*/4, /*block_len=*/1,
                                        /*stride=*/5, /*offset=*/2);
  EXPECT_EQ(col.element_count(), 4u);
  EXPECT_EQ(col.min_extent(), 18u);
  const auto packed = col.pack(std::span<const int>(m));
  EXPECT_EQ(packed, (std::vector<int>{2, 7, 12, 17}));
}

TEST(Datatype, VectorMultiElementBlocks) {
  const auto data = iota_vec(12);
  const Datatype d = Datatype::vector(3, 2, 4, 1);  // {1,2, 5,6, 9,10}
  EXPECT_EQ(d.pack(std::span<const int>(data)),
            (std::vector<int>{1, 2, 5, 6, 9, 10}));
  EXPECT_EQ(d.min_extent(), 11u);
}

TEST(Datatype, IndexedSelection) {
  const auto data = iota_vec(8);
  const Datatype d = Datatype::indexed({7, 0, 3, 3});
  EXPECT_EQ(d.element_count(), 4u);
  EXPECT_EQ(d.min_extent(), 8u);
  EXPECT_EQ(d.pack(std::span<const int>(data)), (std::vector<int>{7, 0, 3, 3}));
}

TEST(Datatype, RejectsTooSmallArrays) {
  const auto data = iota_vec(5);
  const Datatype d = Datatype::contiguous(4, 3);
  EXPECT_THROW(d.pack(std::span<const int>(data)), PreconditionError);
  std::vector<int> out(5);
  const std::vector<int> packed{1, 2, 3, 4};
  EXPECT_THROW(d.unpack(std::span<const int>(packed), std::span<int>(out)),
               PreconditionError);
  const std::vector<int> wrong{1};
  std::vector<int> big(10);
  EXPECT_THROW(d.unpack(std::span<const int>(wrong), std::span<int>(big)),
               PreconditionError);
}

TEST(Datatype, RejectsOverlappingVector) {
  EXPECT_THROW(Datatype::vector(2, 5, 3), PreconditionError);
  EXPECT_NO_THROW(Datatype::vector(1, 5, 3));  // single block may "overlap"
}

TEST(TypedTransfer, SendRecvDoubles) {
  mpisim::World world(2);
  world.run([](mpisim::ThreadComm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> v{1.5, -2.5, 3.25};
      send_typed(comm, std::span<const double>(v), 1, 0);
    } else {
      std::vector<double> v(3);
      const Status st = recv_typed(comm, std::span<double>(v), 0, 0);
      EXPECT_EQ(st.bytes, 3 * sizeof(double));
      EXPECT_EQ(v, (std::vector<double>{1.5, -2.5, 3.25}));
    }
  });
}

TEST(TypedTransfer, MatrixColumnExchange) {
  // Rank 0 sends column 1 of its 3x4 matrix into column 2 of rank 1's.
  mpisim::World world(2);
  world.run([](mpisim::ThreadComm& comm) {
    std::vector<int> m(12, 0);
    if (comm.rank() == 0) {
      std::iota(m.begin(), m.end(), 100);
      send_layout(comm, std::span<const int>(m),
                  Datatype::vector(3, 1, 4, 1), 1, 9);
    } else {
      recv_layout(comm, std::span<int>(m), Datatype::vector(3, 1, 4, 2), 0, 9);
      EXPECT_EQ(m[2], 101);   // row 0, col 2 <- rank0 row 0, col 1
      EXPECT_EQ(m[6], 105);
      EXPECT_EQ(m[10], 109);
      EXPECT_EQ(m[0], 0);     // untouched elsewhere
    }
  });
}

TEST(TypedTransfer, LayoutSizeMismatchIsTruncation) {
  mpisim::World world(2);
  world.run([](mpisim::ThreadComm& comm) {
    std::vector<int> m(12, 0);
    if (comm.rank() == 0) {
      // If the undersized receive was already posted when the send matches
      // it, the SENDER observes the truncation too — legal either way, so
      // tolerate (but don't require) the sender-side throw.
      try {
        send_layout(comm, std::span<const int>(m), Datatype::contiguous(6), 1,
                    0);
      } catch (const mpisim::TruncationError&) {
      }
    } else {
      // Receiver expects only 4 elements: the runtime flags truncation.
      EXPECT_THROW(
          recv_layout(comm, std::span<int>(m), Datatype::contiguous(4), 0, 0),
          mpisim::TruncationError);
    }
  });
}

}  // namespace
}  // namespace bsb
