// Equivalence suite for the bucketed mailbox matching indexes
// (mpisim/matching.hpp) against the old linear-scan implementation.
//
// The thread backend's correctness contract is that the bucketed
// ArrivalQueue / PendingIndex pick EXACTLY the message the original
// find_if scan over a flat deque would have picked — including under
// kAnySource / kAnyTag wildcards and fault-injected reordering (which
// jumps an arrival over trailing arrivals from OTHER sources only).
// These tests drive both implementations with the same randomized,
// seeded operation sequences and assert identical choices at every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "bsbutil/rng.hpp"
#include "comm/comm.hpp"
#include "mpisim/matching.hpp"

namespace bsb::mpisim::detail {
namespace {

// ---------------------------------------------------------------------------
// Reference model: the pre-index mailbox, verbatim semantics.
// ---------------------------------------------------------------------------

struct RefArrival {
  int src = -1;
  int tag = -1;
  const SendCompletion* id = nullptr;  // identity for comparison
};

class RefArrivalQueue {
 public:
  // The old enqueue_arrival: walk back over at most `jump` trailing
  // arrivals from other sources, never crossing one from the same source.
  void enqueue(RefArrival arr, std::size_t jump) {
    auto it = q_.end();
    while (jump > 0 && it != q_.begin()) {
      auto prev = std::prev(it);
      if (prev->src == arr.src) break;
      it = prev;
      --jump;
    }
    q_.insert(it, arr);
  }

  // The old find_if scan.
  const SendCompletion* find(int src, int tag) const {
    for (const auto& a : q_) {
      if (matches(src, tag, a.src, a.tag)) return a.id;
    }
    return nullptr;
  }

  void take(const SendCompletion* id) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->id == id) {
        q_.erase(it);
        return;
      }
    }
    FAIL() << "reference take: unknown arrival";
  }

  bool cancel(const SendCompletion* id) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->id == id) {
        q_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::size_t size() const { return q_.size(); }
  const std::deque<RefArrival>& raw() const { return q_; }

 private:
  std::deque<RefArrival> q_;
};

class RefPendingIndex {
 public:
  void post(std::shared_ptr<PendingRecv> pr) { q_.push_back(std::move(pr)); }

  // The old scan: earliest-posted receive whose pattern matches (src, tag).
  std::shared_ptr<PendingRecv> match(int src, int tag) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (matches((*it)->src, (*it)->tag, src, tag)) {
        auto pr = *it;
        q_.erase(it);
        return pr;
      }
    }
    return nullptr;
  }

  bool cancel(const PendingRecv* pr) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->get() == pr) {
        q_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::size_t size() const { return q_.size(); }

 private:
  std::deque<std::shared_ptr<PendingRecv>> q_;
};

// ---------------------------------------------------------------------------
// Randomized differential drivers.
// ---------------------------------------------------------------------------

constexpr int kSources = 5;
constexpr int kTags = 4;

int draw_src(SplitMix64& rng, bool allow_wildcard) {
  if (allow_wildcard && rng.next_below(4) == 0) return kAnySource;
  return static_cast<int>(rng.next_below(kSources));
}

int draw_tag(SplitMix64& rng, bool allow_wildcard) {
  if (allow_wildcard && rng.next_below(4) == 0) return kAnyTag;
  return static_cast<int>(rng.next_below(kTags));
}

void run_arrival_trial(std::uint64_t seed, std::size_t ops) {
  SplitMix64 rng(seed);
  ArrivalQueue dut;
  RefArrivalQueue ref;
  // Keep identities alive for the whole trial.
  std::vector<std::shared_ptr<SendCompletion>> ids;
  std::vector<const SendCompletion*> live;  // currently queued

  for (std::size_t op = 0; op < ops; ++op) {
    const auto kind = rng.next_below(10);
    if (kind < 5 || live.empty()) {
      // Enqueue with a fault-style reorder jump (0 most of the time).
      const int src = static_cast<int>(rng.next_below(kSources));
      const int tag = static_cast<int>(rng.next_below(kTags));
      const std::size_t jump =
          rng.next_below(3) == 0 ? rng.next_below(6) : 0;
      ids.push_back(std::make_shared<SendCompletion>());
      const SendCompletion* id = ids.back().get();
      live.push_back(id);
      Arrival arr;
      arr.src = src;
      arr.tag = tag;
      arr.eager = false;
      arr.completion = ids.back();
      dut.enqueue(std::move(arr), jump);
      ref.enqueue(RefArrival{src, tag, id}, jump);
    } else if (kind < 9) {
      // Match (and consume on hit), wildcards included.
      const int src = draw_src(rng, true);
      const int tag = draw_tag(rng, true);
      const SendCompletion* expect = ref.find(src, tag);
      auto it = dut.find(src, tag);
      if (expect == nullptr) {
        ASSERT_EQ(it, dut.end())
            << "seed " << seed << " op " << op << ": bucketed index found a "
            << "match for (" << src << "," << tag
            << ") the linear scan does not";
      } else {
        ASSERT_NE(it, dut.end()) << "seed " << seed << " op " << op;
        ASSERT_EQ(it->completion.get(), expect)
            << "seed " << seed << " op " << op << ": divergent match for ("
            << src << "," << tag << ")";
        Arrival taken = dut.take(it);
        ref.take(expect);
        live.erase(std::find(live.begin(), live.end(), expect));
      }
    } else {
      // Cancel a random queued arrival (abandoned rendezvous send).
      const std::size_t pick = rng.next_below(live.size());
      const SendCompletion* id = live[pick];
      // Recover its (src, tag) from the reference for the bucketed cancel.
      int src = -1, tag = -1;
      for (const auto& a : ref.raw()) {
        if (a.id == id) {
          src = a.src;
          tag = a.tag;
          break;
        }
      }
      ASSERT_TRUE(dut.cancel(id, src, tag)) << "seed " << seed << " op " << op;
      ASSERT_TRUE(ref.cancel(id));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(dut.size(), ref.size()) << "seed " << seed << " op " << op;
  }

  // Drain both in scan order and compare the full residual sequence.
  while (ref.size() > 0) {
    const SendCompletion* expect = ref.find(kAnySource, kAnyTag);
    auto it = dut.find(kAnySource, kAnyTag);
    ASSERT_NE(it, dut.end());
    ASSERT_EQ(it->completion.get(), expect) << "seed " << seed << " drain";
    dut.take(it);
    ref.take(expect);
  }
  EXPECT_TRUE(dut.empty());
}

void run_pending_trial(std::uint64_t seed, std::size_t ops) {
  SplitMix64 rng(seed);
  PendingIndex dut;
  RefPendingIndex ref;
  std::vector<std::shared_ptr<PendingRecv>> live;

  for (std::size_t op = 0; op < ops; ++op) {
    const auto kind = rng.next_below(10);
    if (kind < 5 || live.empty()) {
      // Post a receive; wildcards are common on this side.
      auto pr = std::make_shared<PendingRecv>();
      pr->src = draw_src(rng, true);
      pr->tag = draw_tag(rng, true);
      live.push_back(pr);
      dut.post(pr);
      ref.post(pr);
    } else if (kind < 9) {
      // A message with concrete (src, tag) looks for the earliest match.
      const int src = static_cast<int>(rng.next_below(kSources));
      const int tag = static_cast<int>(rng.next_below(kTags));
      auto expect = ref.match(src, tag);
      auto got = dut.match(src, tag);
      ASSERT_EQ(got.get(), expect.get())
          << "seed " << seed << " op " << op << ": divergent pending match "
          << "for (" << src << "," << tag << ")";
      if (expect) {
        live.erase(std::find(live.begin(), live.end(), expect));
      }
    } else {
      // Cancel a random posted receive (abandoned irecv request).
      const std::size_t pick = rng.next_below(live.size());
      auto pr = live[pick];
      ASSERT_TRUE(dut.cancel(pr.get())) << "seed " << seed << " op " << op;
      ASSERT_TRUE(ref.cancel(pr.get()));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(dut.empty(), ref.size() == 0) << "seed " << seed << " op " << op;
  }
}

TEST(MatchingEquivalence, ArrivalQueueMatchesLinearScan) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    run_arrival_trial(seed * 0x9e3779b97f4a7c15ull, 2000);
  }
}

TEST(MatchingEquivalence, ArrivalQueueSurvivesRenumbering) {
  // Hammer reorder inserts into the same narrow region so the gap keys
  // actually exhaust and renumber() runs; equivalence must hold across it.
  SplitMix64 rng(42);
  ArrivalQueue dut;
  RefArrivalQueue ref;
  std::vector<std::shared_ptr<SendCompletion>> ids;
  for (int i = 0; i < 30000; ++i) {
    const int src = static_cast<int>(rng.next_below(3));
    const int tag = 0;
    ids.push_back(std::make_shared<SendCompletion>());
    Arrival arr;
    arr.src = src;
    arr.tag = tag;
    arr.eager = false;
    arr.completion = ids.back();
    dut.enqueue(std::move(arr), 2);  // every insert jumps => gaps shrink fast
    ref.enqueue(RefArrival{src, tag, ids.back().get()}, 2);
  }
  int i = 0;
  while (ref.size() > 0) {
    const int src = static_cast<int>(rng.next_below(4)) - 1;  // incl. wildcard
    const SendCompletion* expect = ref.find(src, kAnyTag);
    auto it = dut.find(src, kAnyTag);
    if (expect == nullptr) {  // that source already drained dry
      ASSERT_EQ(it, dut.end()) << "i=" << i;
      continue;
    }
    ASSERT_NE(it, dut.end()) << "i=" << i;
    ASSERT_EQ(it->completion.get(), expect) << "i=" << i;
    dut.take(it);
    ref.take(expect);
    ++i;
  }
  EXPECT_TRUE(dut.empty());
}

TEST(MatchingEquivalence, PendingIndexMatchesLinearScan) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    run_pending_trial(seed * 0xbf58476d1ce4e5b9ull, 2000);
  }
}

TEST(MatchingEquivalence, PendingWildcardPriorityIsPostOrder) {
  // Directed case: a wildcard posted BEFORE an exact match must win, and
  // one posted AFTER must lose — post order, not bucket specificity.
  PendingIndex dut;
  auto wild = std::make_shared<PendingRecv>();
  wild->src = kAnySource;
  wild->tag = kAnyTag;
  auto exact = std::make_shared<PendingRecv>();
  exact->src = 2;
  exact->tag = 3;
  dut.post(wild);
  dut.post(exact);
  EXPECT_EQ(dut.match(2, 3).get(), wild.get());
  EXPECT_EQ(dut.match(2, 3).get(), exact.get());
  EXPECT_EQ(dut.match(2, 3), nullptr);
}

TEST(MatchingEquivalence, ArrivalWildcardPicksScanOrderAcrossBuckets) {
  // Directed case mirroring fault reordering: arrival from src 1 jumps over
  // one from src 0; a kAnySource find must now see src 1 first.
  ArrivalQueue dut;
  auto c0 = std::make_shared<SendCompletion>();
  auto c1 = std::make_shared<SendCompletion>();
  Arrival a0;
  a0.src = 0;
  a0.tag = 9;
  a0.eager = false;
  a0.completion = c0;
  dut.enqueue(std::move(a0), 0);
  Arrival a1;
  a1.src = 1;
  a1.tag = 9;
  a1.eager = false;
  a1.completion = c1;
  dut.enqueue(std::move(a1), 1);  // jumps over the src-0 arrival
  auto it = dut.find(kAnySource, 9);
  ASSERT_NE(it, dut.end());
  EXPECT_EQ(it->completion.get(), c1.get());
  EXPECT_EQ(it->src, 1);
  dut.take(it);
  it = dut.find(kAnySource, kAnyTag);
  ASSERT_NE(it, dut.end());
  EXPECT_EQ(it->completion.get(), c0.get());
}

}  // namespace
}  // namespace bsb::mpisim::detail
