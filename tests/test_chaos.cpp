// Randomized stress tests ("chaos"): deterministic pseudo-random traffic
// scripts exercised on the thread backend, and random compositions of
// collectives over random communicator splits — each verified against
// locally computed oracles. Seeds are fixed so failures reproduce.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bsbutil/rng.hpp"
#include "coll/comm_split.hpp"
#include "coll/tags.hpp"
#include "coll/gather_binomial.hpp"
#include "coll/reduce.hpp"
#include "core/bcast.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

namespace bsb {
namespace {

// The fixed default seeds below always run, so failures reproduce across
// machines; CI can ADD rotating seeds without code edits by exporting
// BSB_CHAOS_SEEDS as a comma-separated list (e.g. BSB_CHAOS_SEEDS=7,1234).
std::vector<std::uint64_t> chaos_seeds(std::vector<std::uint64_t> defaults) {
  if (const char* env = std::getenv("BSB_CHAOS_SEEDS")) {
    const std::string s(env);
    std::size_t pos = 0;
    while (pos < s.size()) {
      std::size_t next = s.find(',', pos);
      if (next == std::string::npos) next = s.size();
      const std::string tok = s.substr(pos, next - pos);
      if (!tok.empty()) {
        defaults.push_back(std::strtoull(tok.c_str(), nullptr, 10));
      }
      pos = next + 1;
    }
  }
  return defaults;
}

// Every rank derives the SAME traffic script from the seed: a list of
// (src, dst, tag, size) messages. Each rank sends its share in script
// order and receives its share in script order — matching must pair them
// correctly under arbitrary thread interleaving.
struct ScriptedMsg {
  int src;
  int dst;
  int tag;
  std::size_t bytes;
  std::uint64_t pattern_seed;
};

std::vector<ScriptedMsg> make_script(std::uint64_t seed, int P, int nmsgs) {
  SplitMix64 rng(seed);
  std::vector<ScriptedMsg> script;
  script.reserve(nmsgs);
  for (int i = 0; i < nmsgs; ++i) {
    ScriptedMsg m;
    m.src = static_cast<int>(rng.next_below(P));
    m.dst = static_cast<int>(rng.next_below(P));
    if (m.dst == m.src) m.dst = (m.dst + 1) % P;  // avoid self-deadlock risk
    m.tag = static_cast<int>(
        rng.next_below(bsb::coll::tags::kChaosTagSpan));
    m.bytes = static_cast<std::size_t>(rng.next_below(3000));
    m.pattern_seed = rng.next();
    script.push_back(m);
  }
  return script;
}

class ChaosP2P : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosP2P, ScriptedTrafficDeliversEverything) {
  const std::uint64_t seed = GetParam();
  const int P = 3 + static_cast<int>(seed % 6);  // 3..8 ranks
  const int nmsgs = 120;
  const auto script = make_script(seed, P, nmsgs);

  mpisim::WorldConfig cfg;
  cfg.eager_threshold = 1024;  // mix of eager and rendezvous
  cfg.watchdog_seconds = 60;
  mpisim::World world(P, cfg);
  world.run([&](mpisim::ThreadComm& comm) {
    const int me = comm.rank();
    // Interleave: walk the script; issue nonblocking receives for messages
    // addressed to us as soon as we meet them, sends when we are the
    // source. FIFO per (src,dst,tag) is preserved because the script order
    // IS the post order on both sides.
    std::vector<mpisim::Request> pending;
    std::vector<std::vector<std::byte>> inboxes;
    std::vector<const ScriptedMsg*> expected;
    for (const ScriptedMsg& m : script) {
      if (m.dst == me) {
        inboxes.emplace_back(m.bytes);
        expected.push_back(&m);
        pending.push_back(comm.irecv(inboxes.back(), m.src, m.tag));
      }
      if (m.src == me) {
        std::vector<std::byte> payload(m.bytes);
        fill_pattern(payload, m.pattern_seed);
        comm.send(payload, m.dst, m.tag);  // blocking send is fine: recvs
                                           // were pre-posted in order
      }
    }
    mpisim::wait_all(pending);
    for (std::size_t i = 0; i < inboxes.size(); ++i) {
      EXPECT_EQ(first_pattern_mismatch(inboxes[i], expected[i]->pattern_seed),
                inboxes[i].size())
          << "rank " << me << " message " << i;
    }
  });
  EXPECT_EQ(world.total_msgs(), static_cast<std::uint64_t>(nmsgs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosP2P,
                         ::testing::ValuesIn(chaos_seeds(
                             {11u, 22u, 33u, 44u, 55u, 66u})));

// Careful: blocking sends with pre-posted receives can still deadlock if a
// rendezvous send's match sits behind OUR OWN unposted receive. The script
// walk above posts ALL our receives for earlier script entries before any
// later send, which is exactly the order every other rank uses — so every
// rendezvous send finds its receive already posted or soon posted by a
// rank that is not blocked on us. The watchdog converts any mistake in
// this reasoning into a test failure rather than a hang.

class ChaosCollectives : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosCollectives, RandomCompositionMatchesOracle) {
  const std::uint64_t seed = GetParam();
  SplitMix64 plan_rng(seed);
  const int P = 4 + static_cast<int>(plan_rng.next_below(6));  // 4..9
  const int rounds = 6;

  // Pre-generate the composition plan (identical on every rank).
  struct Round {
    int kind;            // 0 bcast, 1 reduce, 2 gather, 3 allreduce
    int root;
    std::size_t bytes;
    int split_colors;    // 1 = whole world, 2 = split in two groups
  };
  std::vector<Round> plan;
  for (int i = 0; i < rounds; ++i) {
    Round r;
    r.kind = static_cast<int>(plan_rng.next_below(4));
    r.root = static_cast<int>(plan_rng.next_below(P));
    r.bytes = 8 * (1 + plan_rng.next_below(2000));
    r.split_colors = plan_rng.next_below(3) == 0 ? 2 : 1;
    plan.push_back(r);
  }

  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& world_comm) {
    for (int i = 0; i < rounds; ++i) {
      const Round& r = plan[i];
      // Optionally split; groups are {ranks < P/2} and the rest.
      std::optional<SubComm> sub;
      Comm* comm = &world_comm;
      int root = r.root;
      int base = 0, n = P;
      if (r.split_colors == 2) {
        const int color = world_comm.rank() < P / 2 ? 0 : 1;
        sub = coll::comm_split(world_comm, color, world_comm.rank(),
                               /*base_context=*/100 + 2 * i);
        comm = &*sub;
        base = color == 0 ? 0 : P / 2;
        n = comm->size();
        root = root % n;
      }
      const int me = comm->rank();

      switch (r.kind) {
        case 0: {  // bcast, oracle = pattern
          std::vector<std::byte> buf(r.bytes);
          const std::uint64_t ps = seed * 1000 + i;
          if (me == root) fill_pattern(buf, ps);
          core::bcast(*comm, buf, root);
          ASSERT_EQ(first_pattern_mismatch(buf, ps), buf.size())
              << "round " << i << " rank " << world_comm.rank();
          break;
        }
        case 1: {  // reduce sum of (global rank + 1)
          std::vector<std::int64_t> v{world_comm.rank() + 1ll};
          std::vector<std::int64_t> out(me == root ? 1 : 0);
          coll::reduce_binomial(*comm, std::span<const std::int64_t>(v),
                                std::span<std::int64_t>(out), coll::SumOp{},
                                root);
          if (me == root) {
            std::int64_t expect = 0;
            for (int q = base; q < base + n; ++q) expect += q + 1;
            ASSERT_EQ(out[0], expect) << "round " << i;
          }
          break;
        }
        case 2: {  // gather of 16-byte patterned blocks
          std::vector<std::byte> mine(16);
          fill_pattern(mine, 7000 + world_comm.rank());
          std::vector<std::byte> all(me == root ? 16 * n : 0);
          coll::gather_binomial(*comm, mine, all, 16, root);
          if (me == root) {
            for (int q = 0; q < n; ++q) {
              ASSERT_EQ(first_pattern_mismatch(
                            std::span<const std::byte>(all.data() + 16 * q, 16),
                            7000 + base + q),
                        16u)
                  << "round " << i << " block " << q;
            }
          }
          break;
        }
        case 3: {  // allreduce max of global rank
          std::vector<int> v{world_comm.rank()};
          coll::allreduce(*comm, std::span<int>(v), coll::MaxOp{});
          ASSERT_EQ(v[0], base + n - 1) << "round " << i;
          break;
        }
        default:
          FAIL();
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosCollectives,
                         ::testing::ValuesIn(chaos_seeds(
                             {101u, 202u, 303u, 404u, 505u, 606u, 707u,
                              808u})));

}  // namespace
}  // namespace bsb
