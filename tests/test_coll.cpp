// Correctness tests for the baseline collective algorithms on the thread
// backend (real data movement) and, where applicable, under the symbolic
// coverage validator. Parameterized sweeps cover power-of-two and
// non-power-of-two counts, ragged sizes, and every root position class.
#include <gtest/gtest.h>

#include <tuple>

#include "bcast_test_util.hpp"
#include "coll/allgather_bruck.hpp"
#include "coll/allgather_neighbor_exchange.hpp"
#include "coll/allgather_recursive_doubling.hpp"
#include "coll/allgather_ring_native.hpp"
#include "coll/bcast_binomial.hpp"
#include "coll/bcast_ring_pipelined.hpp"
#include "coll/bcast_scatter_rd.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "coll/bcast_smp.hpp"
#include "coll/scatter_binomial.hpp"
#include "bsbutil/math.hpp"
#include "comm/chunks.hpp"
#include "trace/counters.hpp"

namespace bsb {
namespace {

using testutil::check_bcast_coverage;
using testutil::check_bcast_on_threads;

// -------------------------------------------------------- scatter_binomial

TEST(ScatterBinomial, SubtreeSpans) {
  // P=8 (Fig. 1): blocks {8,1,2,1,4,1,2,1}.
  const int span8[] = {8, 1, 2, 1, 4, 1, 2, 1};
  for (int rel = 0; rel < 8; ++rel) {
    EXPECT_EQ(coll::scatter_subtree_span(rel, 8), span8[rel]) << rel;
  }
  // P=10 (Fig. 2): rank 8's subtree clamps to 2 chunks {8,9}.
  const int span10[] = {10, 1, 2, 1, 4, 1, 2, 1, 2, 1};
  for (int rel = 0; rel < 10; ++rel) {
    EXPECT_EQ(coll::scatter_subtree_span(rel, 10), span10[rel]) << rel;
  }
}

TEST(ScatterBinomial, EveryRankGetsItsBlock) {
  for (int P : {2, 3, 8, 10, 13}) {
    for (int root : {0, P - 1}) {
      const std::uint64_t nbytes = 97;  // ragged on purpose
      const std::uint64_t seed = 77;
      mpisim::World world(P);
      world.run([&](mpisim::ThreadComm& comm) {
        std::vector<std::byte> buf(nbytes);
        if (comm.rank() == root) fill_pattern(buf, seed);
        const ChunkLayout layout(nbytes, P);
        const std::uint64_t held =
            coll::scatter_binomial(comm, buf, root, layout);
        const int rel = rel_rank(comm.rank(), root, P);
        EXPECT_EQ(held, coll::scatter_block_bytes(rel, layout));
        // The held block must carry the root's bytes at home offsets.
        const std::uint64_t off = layout.disp(rel);
        EXPECT_EQ(first_pattern_mismatch(
                      std::span<const std::byte>(buf.data() + off,
                                                 static_cast<std::size_t>(held)),
                      seed, off),
                  held);
      });
    }
  }
}

TEST(ScatterBinomial, MessageCountIsPMinusOne) {
  // With nbytes >= P every rank receives exactly one scatter message.
  const int P = 10;
  const auto sched = trace::record_schedule(
      P, 1000, [&](Comm& comm, std::span<std::byte> buffer) {
        coll::scatter_binomial(comm, buffer, 0, ChunkLayout(1000, P));
      });
  EXPECT_EQ(sched.total_sends(), static_cast<std::uint64_t>(P - 1));
}

// --------------------------------------------------- broadcast correctness

struct BcastCase {
  int nranks;
  std::uint64_t nbytes;
  int root;
};

std::vector<BcastCase> sweep_cases() {
  std::vector<BcastCase> cases;
  for (int P : {1, 2, 3, 4, 5, 7, 8, 9, 10, 12, 16, 17, 24}) {
    for (std::uint64_t n : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{5},
                            std::uint64_t{257}, std::uint64_t{4096},
                            std::uint64_t{12289}}) {
      for (int root : {0, P / 2, P - 1}) {
        if (root >= P) continue;
        cases.push_back({P, n, root});
        if (root == P - 1) break;  // avoid duplicate root for P<=2
      }
    }
  }
  return cases;
}

class BcastSweep : public ::testing::TestWithParam<BcastCase> {};

std::string case_name(const ::testing::TestParamInfo<BcastCase>& info) {
  return "P" + std::to_string(info.param.nranks) + "_n" +
         std::to_string(info.param.nbytes) + "_r" +
         std::to_string(info.param.root);
}

TEST_P(BcastSweep, Binomial) {
  const auto& c = GetParam();
  check_bcast_on_threads(c.nranks, c.nbytes, c.root,
                         [](Comm& comm, std::span<std::byte> buf, int root) {
                           coll::bcast_binomial(comm, buf, root);
                         });
}

TEST_P(BcastSweep, ScatterRingNative) {
  const auto& c = GetParam();
  check_bcast_on_threads(c.nranks, c.nbytes, c.root,
                         [](Comm& comm, std::span<std::byte> buf, int root) {
                           coll::bcast_scatter_ring_native(comm, buf, root);
                         });
}

TEST_P(BcastSweep, ScatterRingNativeCoverage) {
  const auto& c = GetParam();
  check_bcast_coverage(c.nranks, c.nbytes, c.root,
                       [](Comm& comm, std::span<std::byte> buf, int root) {
                         coll::bcast_scatter_ring_native(comm, buf, root);
                       });
}

TEST_P(BcastSweep, ScatterRdWhenPof2) {
  const auto& c = GetParam();
  if (!is_pow2(static_cast<std::uint64_t>(c.nranks))) GTEST_SKIP();
  check_bcast_on_threads(c.nranks, c.nbytes, c.root,
                         [](Comm& comm, std::span<std::byte> buf, int root) {
                           coll::bcast_scatter_rd(comm, buf, root);
                         });
}

TEST_P(BcastSweep, RingPipelined) {
  const auto& c = GetParam();
  check_bcast_on_threads(c.nranks, c.nbytes, c.root,
                         [](Comm& comm, std::span<std::byte> buf, int root) {
                           coll::bcast_ring_pipelined(comm, buf, root, 1024);
                         });
}

INSTANTIATE_TEST_SUITE_P(Sweep, BcastSweep, ::testing::ValuesIn(sweep_cases()),
                         case_name);

// ------------------------------------------------------------ larger cases

TEST(BcastLarge, NativeRingRendezvousPath) {
  mpisim::WorldConfig cfg;
  cfg.eager_threshold = 1024;  // chunks of this size go rendezvous
  check_bcast_on_threads(10, 300000, 3,
                         [](Comm& comm, std::span<std::byte> buf, int root) {
                           coll::bcast_scatter_ring_native(comm, buf, root);
                         },
                         cfg);
}

TEST(BcastLarge, RdRendezvousPath) {
  mpisim::WorldConfig cfg;
  cfg.eager_threshold = 1024;
  check_bcast_on_threads(8, 262144, 1,
                         [](Comm& comm, std::span<std::byte> buf, int root) {
                           coll::bcast_scatter_rd(comm, buf, root);
                         },
                         cfg);
}

// ------------------------------------------------------- recursive doubling

TEST(AllgatherRd, RejectsNonPowerOfTwo) {
  const auto program = [](Comm& comm, std::span<std::byte> buffer) {
    const ChunkLayout layout(90, comm.size());
    coll::allgather_recursive_doubling(comm, buffer, 0, layout);
  };
  EXPECT_THROW(trace::record_schedule(10, 90, program), PreconditionError);
}

// ------------------------------------------------------------------- bruck

TEST(AllgatherBruck, GathersAllBlocks) {
  for (int P : {1, 2, 3, 5, 8, 13}) {
    const std::uint64_t block = 33;
    mpisim::World world(P);
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> buf(P * block);
      fill_pattern(std::span<std::byte>(buf.data() + comm.rank() * block, block),
                   1000 + comm.rank());
      coll::allgather_bruck(comm, buf, block);
      for (int r = 0; r < P; ++r) {
        EXPECT_EQ(first_pattern_mismatch(
                      std::span<const std::byte>(buf.data() + r * block, block),
                      1000 + r),
                  block)
            << "rank " << comm.rank() << " block of " << r;
      }
    });
  }
}

TEST(AllgatherBruck, LogarithmicMessageCount) {
  // Bruck sends ceil(log2 P) messages per rank.
  mpisim::World world(10);
  world.run([](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(10 * 8);
    fill_pattern(std::span<std::byte>(buf.data() + comm.rank() * 8, 8), 1);
    coll::allgather_bruck(comm, buf, 8);
  });
  EXPECT_EQ(world.total_msgs(), 10u * 4u);  // ceil(log2 10) = 4
}

TEST(AllgatherBruck, RejectsWrongBufferSize) {
  mpisim::World world(2);
  world.run([](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(7);
    EXPECT_THROW(coll::allgather_bruck(comm, buf, 4), PreconditionError);
  });
}

// ------------------------------------------------------- neighbor exchange

TEST(AllgatherNeighborExchange, GathersAllBlocksEvenP) {
  for (int P : {2, 4, 6, 10, 16, 24}) {
    const std::uint64_t block = 41;
    mpisim::World world(P);
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> buf(P * block);
      fill_pattern(std::span<std::byte>(buf.data() + comm.rank() * block, block),
                   2000 + comm.rank());
      coll::allgather_neighbor_exchange(comm, buf, block);
      for (int r = 0; r < P; ++r) {
        EXPECT_EQ(first_pattern_mismatch(
                      std::span<const std::byte>(buf.data() + r * block, block),
                      2000 + r),
                  block)
            << "P=" << P << " rank " << comm.rank() << " block of " << r;
      }
    });
  }
}

TEST(AllgatherNeighborExchange, HalfTheRingsMessages) {
  const int P = 12;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(P * 8);
    fill_pattern(std::span<std::byte>(buf.data() + comm.rank() * 8, 8), 3);
    coll::allgather_neighbor_exchange(comm, buf, 8);
  });
  // P/2 sendrecv steps per rank = P/2 sends per rank.
  EXPECT_EQ(world.total_msgs(), static_cast<std::uint64_t>(P) * (P / 2));
}

TEST(AllgatherNeighborExchange, RejectsOddP) {
  mpisim::World world(3);
  world.run([](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(3 * 8);
    EXPECT_THROW(coll::allgather_neighbor_exchange(comm, buf, 8),
                 PreconditionError);
  });
}

TEST(AllgatherNeighborExchange, ZeroByteBlocks) {
  mpisim::World world(6);
  world.run([](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf;
    EXPECT_NO_THROW(
        coll::allgather_neighbor_exchange(comm, std::span<std::byte>(buf), 0));
  });
}

// --------------------------------------------------------------------- smp

class SmpBcastTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SmpBcastTest, CorrectOnThreads) {
  const auto [P, cores, root] = GetParam();
  if (root >= P) GTEST_SKIP();
  const Topology topo(P, cores, Placement::Block);
  check_bcast_on_threads(
      P, 7777, root, [&](Comm& comm, std::span<std::byte> buf, int r) {
        coll::bcast_smp(comm, buf, r, topo,
                        [](Comm& leaders, std::span<std::byte> b, int lr) {
                          coll::bcast_scatter_ring_native(leaders, b, lr);
                        });
      });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SmpBcastTest,
    ::testing::Values(std::make_tuple(8, 4, 0), std::make_tuple(8, 4, 5),
                      std::make_tuple(9, 4, 2), std::make_tuple(12, 4, 11),
                      std::make_tuple(10, 3, 7), std::make_tuple(6, 6, 3),
                      std::make_tuple(5, 1, 2), std::make_tuple(24, 8, 9)));

TEST(SmpBcast, InterNodeTrafficOnlyBetweenLeaders) {
  // Record the SMP broadcast and verify only leader pairs talk inter-node.
  const int P = 12, cores = 4;
  const Topology topo(P, cores, Placement::Block);
  const auto sched = trace::record_schedule(
      P, 4096, [&](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_smp(comm, buffer, 5, topo,
                        [](Comm& leaders, std::span<std::byte> b, int lr) {
                          coll::bcast_scatter_ring_native(leaders, b, lr);
                        });
      });
  const auto m = trace::match_schedule(sched);
  // Leaders: node 0 -> 0, node 1 (root's node) -> 5, node 2 -> 8.
  for (const auto& msg : m.msgs) {
    if (!topo.same_node(msg.src, msg.dst)) {
      EXPECT_TRUE(msg.src == 0 || msg.src == 5 || msg.src == 8) << msg.src;
      EXPECT_TRUE(msg.dst == 0 || msg.dst == 5 || msg.dst == 8) << msg.dst;
    }
  }
  // And the result is still a correct broadcast.
  const auto report = trace::validate_coverage(sched, m, 5);
  EXPECT_TRUE(report.ok) << report.diagnostics;
}

}  // namespace
}  // namespace bsb
