// Tests for the comm layer: chunk layout math (the paper's scatter_size
// arithmetic with its negative-count clamp), relative-rank mapping,
// topology node mapping, and SubComm rank/tag translation over the thread
// backend.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "bsbutil/rng.hpp"
#include "comm/chunks.hpp"
#include "comm/subcomm.hpp"
#include "comm/topology.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

namespace bsb {
namespace {

// ---------------------------------------------------------------- rel_rank

TEST(RelRank, Identity) {
  for (int p : {1, 2, 5, 8}) {
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(rel_rank(r, 0, p), r);
      EXPECT_EQ(abs_rank(r, 0, p), r);
    }
  }
}

TEST(RelRank, Wraparound) {
  EXPECT_EQ(rel_rank(0, 3, 8), 5);
  EXPECT_EQ(rel_rank(3, 3, 8), 0);
  EXPECT_EQ(rel_rank(2, 3, 8), 7);
  EXPECT_EQ(abs_rank(5, 3, 8), 0);
  EXPECT_EQ(abs_rank(7, 3, 8), 2);
}

TEST(RelRank, RoundTripsEverywhere) {
  for (int p : {1, 2, 3, 7, 8, 10, 24}) {
    for (int root = 0; root < p; ++root) {
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(abs_rank(rel_rank(r, root, p), root, p), r);
      }
    }
  }
}

TEST(RelRank, RejectsOutOfRange) {
  EXPECT_THROW(rel_rank(5, 0, 4), PreconditionError);
  EXPECT_THROW(rel_rank(0, 4, 4), PreconditionError);
  EXPECT_THROW(abs_rank(4, 0, 4), PreconditionError);
}

// ------------------------------------------------------------- ChunkLayout

TEST(ChunkLayout, EvenDivision) {
  const ChunkLayout l(80, 8);
  EXPECT_EQ(l.scatter_size(), 10u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(l.count(i), 10u);
    EXPECT_EQ(l.disp(i), static_cast<std::uint64_t>(i) * 10);
  }
}

TEST(ChunkLayout, UnevenDivisionClampsTrailing) {
  // 10 bytes over 8 chunks: scatter_size = 2, chunks 0..4 sized 2,2,2,2,2,
  // chunks 5..7 empty. This is the paper's "if (left_count < 0) = 0" path.
  const ChunkLayout l(10, 8);
  EXPECT_EQ(l.scatter_size(), 2u);
  EXPECT_EQ(l.count(4), 2u);
  EXPECT_EQ(l.count(5), 0u);
  EXPECT_EQ(l.count(7), 0u);
  EXPECT_EQ(l.disp(7), 10u);  // clamped so disp+count stays in bounds
}

TEST(ChunkLayout, PartialLastChunk) {
  const ChunkLayout l(11, 4);
  EXPECT_EQ(l.scatter_size(), 3u);
  EXPECT_EQ(l.count(0), 3u);
  EXPECT_EQ(l.count(3), 2u);
}

TEST(ChunkLayout, CountsSumToNbytes) {
  for (std::uint64_t n : {0ULL, 1ULL, 7ULL, 12288ULL, 524287ULL, 1000003ULL}) {
    for (int p : {1, 2, 3, 8, 10, 129}) {
      const ChunkLayout l(n, p);
      std::uint64_t total = 0;
      for (int i = 0; i < p; ++i) {
        total += l.count(i);
        EXPECT_LE(l.disp(i) + l.count(i), n);
      }
      EXPECT_EQ(total, n) << "n=" << n << " p=" << p;
      EXPECT_EQ(l.range_count(0, p), n);
    }
  }
}

TEST(ChunkLayout, ZeroBytes) {
  const ChunkLayout l(0, 4);
  EXPECT_EQ(l.scatter_size(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(l.count(i), 0u);
}

TEST(ChunkLayout, ChunkSpanMatchesDispCount) {
  std::vector<std::byte> buf(100);
  const ChunkLayout l(100, 7);
  for (int i = 0; i < 7; ++i) {
    auto c = l.chunk(std::span<std::byte>(buf), i);
    EXPECT_EQ(static_cast<std::uint64_t>(c.data() - buf.data()), l.disp(i));
    EXPECT_EQ(c.size(), l.count(i));
  }
}

TEST(ChunkLayout, RejectsBadArgs) {
  EXPECT_THROW(ChunkLayout(10, 0), PreconditionError);
  const ChunkLayout l(10, 2);
  EXPECT_THROW(l.count(-1), PreconditionError);
  EXPECT_THROW(l.count(2), PreconditionError);
}

// ---------------------------------------------------------------- Topology

TEST(Topology, BlockPlacement) {
  const Topology t(64, 24, Placement::Block);
  EXPECT_EQ(t.num_nodes(), 3);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(23), 0);
  EXPECT_EQ(t.node_of(24), 1);
  EXPECT_EQ(t.node_of(63), 2);
  EXPECT_TRUE(t.same_node(0, 23));
  EXPECT_FALSE(t.same_node(23, 24));
}

TEST(Topology, CyclicPlacement) {
  const Topology t(8, 4, Placement::Cyclic);
  EXPECT_EQ(t.num_nodes(), 2);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(1), 1);
  EXPECT_EQ(t.node_of(2), 0);
}

TEST(Topology, SingleNode) {
  const Topology t = Topology::single_node(16);
  EXPECT_EQ(t.num_nodes(), 1);
  for (int a = 0; a < 16; ++a) EXPECT_TRUE(t.same_node(0, a));
}

TEST(Topology, HornetPreset) {
  const Topology t = Topology::hornet(256);
  EXPECT_EQ(t.cores_per_node(), 24);
  EXPECT_EQ(t.num_nodes(), 11);  // ceil(256 / 24)
  EXPECT_EQ(t.placement(), Placement::Block);
}

TEST(Topology, RanksOnNode) {
  const Topology t(10, 4, Placement::Block);
  EXPECT_EQ(t.ranks_on_node(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.ranks_on_node(2), (std::vector<int>{8, 9}));
  const Topology c(10, 4, Placement::Cyclic);
  EXPECT_EQ(c.ranks_on_node(1), (std::vector<int>{1, 4, 7}));
}

TEST(Topology, RejectsBadArgs) {
  EXPECT_THROW(Topology(0, 4), PreconditionError);
  EXPECT_THROW(Topology(4, 0), PreconditionError);
  const Topology t(4, 2);
  EXPECT_THROW(t.node_of(4), PreconditionError);
  EXPECT_THROW(t.ranks_on_node(2), PreconditionError);
}

// ----------------------------------------------------------------- SubComm

TEST(SubComm, RankTranslationAndTraffic) {
  mpisim::World world(6);
  world.run([](mpisim::ThreadComm& comm) {
    // Subgroup of the even parent ranks.
    if (comm.rank() % 2 != 0) return;
    SubComm sub(comm, {0, 2, 4}, /*context=*/1);
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.parent_rank(sub.rank()), comm.rank());

    // Ring exchange inside the subgroup.
    const int me = sub.rank();
    std::byte out{static_cast<unsigned char>(0x40 + me)};
    std::byte in{};
    const Status st = sub.sendrecv({&out, 1}, (me + 1) % 3, 7, {&in, 1},
                                   (me + 2) % 3, 7);
    EXPECT_EQ(st.source, (me + 2) % 3);  // reported in SUBGROUP ranks
    EXPECT_EQ(st.tag, 7);
    EXPECT_EQ(std::to_integer<int>(in), 0x40 + (me + 2) % 3);
  });
}

TEST(SubComm, BarrierSynchronizes) {
  mpisim::World world(5);
  std::atomic<int> arrived{0};
  world.run([&](mpisim::ThreadComm& comm) {
    if (comm.rank() == 4) return;  // not in the subgroup
    SubComm sub(comm, {0, 1, 2, 3}, 1);
    arrived.fetch_add(1);
    sub.barrier();
    // After the barrier, everyone in the subgroup must have arrived.
    EXPECT_EQ(arrived.load(), 4);
  });
}

TEST(SubComm, DisjointGroupsDoNotCollide) {
  // Two disjoint subgroups exchange with the same user tag; context
  // namespacing must keep their traffic apart.
  mpisim::World world(4);
  world.run([](mpisim::ThreadComm& comm) {
    const int g = comm.rank() / 2;  // {0,1} and {2,3}
    SubComm sub(comm, {2 * g, 2 * g + 1}, 1 + g);
    std::byte out{static_cast<unsigned char>(0x10 * (g + 1) + sub.rank())};
    std::byte in{};
    sub.sendrecv({&out, 1}, 1 - sub.rank(), 3, {&in, 1}, 1 - sub.rank(), 3);
    EXPECT_EQ(std::to_integer<int>(in), 0x10 * (g + 1) + (1 - sub.rank()));
  });
}

TEST(SubComm, RejectsBadConstruction) {
  mpisim::World world(3);
  world.run([](mpisim::ThreadComm& comm) {
    if (comm.rank() != 0) return;
    EXPECT_THROW(SubComm(comm, {}, 1), PreconditionError);
    EXPECT_THROW(SubComm(comm, {0, 0}, 1), PreconditionError);       // duplicate
    EXPECT_THROW(SubComm(comm, {0, 5}, 1), PreconditionError);       // outside
    EXPECT_THROW(SubComm(comm, {1, 2}, 1), PreconditionError);       // caller absent
    EXPECT_THROW(SubComm(comm, {0, 1}, 0), PreconditionError);       // bad context
  });
}

TEST(SubComm, RejectsOversizedUserTag) {
  mpisim::World world(2);
  world.run([](mpisim::ThreadComm& comm) {
    SubComm sub(comm, {0, 1}, 1);
    std::byte b{};
    if (comm.rank() == 0) {
      EXPECT_THROW(sub.send({&b, 1}, 1, kMaxUserTag + 1), PreconditionError);
      sub.send({&b, 1}, 1, 0);  // keep rank 1's recv satisfied
    } else {
      sub.recv({&b, 1}, 0, 0);
    }
  });
}

}  // namespace
}  // namespace bsb
