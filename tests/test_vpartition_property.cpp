// Property tests for the skewed variable-block partitions behind
// allgatherv: skewed_counts must be an exact partition of the byte count
// (deterministic, with genuine zero-weight blocks), VarLayout must cover
// every byte exactly once through disp/count/range_count, and the
// subtree-span ownership identities the closed forms rest on must hold
// for every rank at every P up to 1024.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "coll/scatter_binomial.hpp"
#include "comm/vchunks.hpp"
#include "core/transfer_analysis.hpp"

namespace bsb {
namespace {

std::vector<int> sweep_sizes() {
  std::vector<int> ps;
  for (int p = 1; p <= 64; ++p) ps.push_back(p);
  for (const int p : {100, 127, 128, 129, 255, 256, 257, 511, 512, 1000, 1024})
    ps.push_back(p);
  return ps;
}

TEST(SkewedCounts, PartitionsExactlyAndDeterministically) {
  std::uint64_t zero_chunks = 0;
  std::uint64_t total_chunks = 0;
  for (const int P : sweep_sizes()) {
    for (const std::uint64_t nbytes : {0ULL, 1ULL, 997ULL, 65536ULL}) {
      for (const std::uint64_t seed : {0ULL, 1ULL, 0xdeadbeefULL}) {
        const auto counts = skewed_counts(P, nbytes, seed);
        ASSERT_EQ(counts.size(), static_cast<std::size_t>(P));
        const std::uint64_t sum =
            std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
        EXPECT_EQ(sum, nbytes) << "P=" << P << " seed=" << seed;
        EXPECT_EQ(counts, skewed_counts(P, nbytes, seed))
            << "not deterministic at P=" << P;
        // Zero-fraction statistics only make sense when the byte budget
        // is plentiful; nbytes=0/1 force nearly everything to zero.
        if (nbytes == 65536) {
          for (const std::uint64_t c : counts) {
            ++total_chunks;
            if (c == 0) ++zero_chunks;
          }
        }
      }
    }
  }
  // The generator aims at ~1/8 zero-weight blocks; demand they exist in
  // bulk so the zero-block code paths are really being exercised.
  EXPECT_GT(zero_chunks, total_chunks / 32);
  EXPECT_LT(zero_chunks, total_chunks / 2);
}

TEST(SkewedCounts, DifferentSeedsDisagreeSomewhere) {
  const auto a = skewed_counts(64, 65536, 1);
  const auto b = skewed_counts(64, 65536, 2);
  EXPECT_NE(a, b);
}

TEST(VarLayout, CoversEveryByteExactlyOnce) {
  for (const int P : sweep_sizes()) {
    for (const std::uint64_t nbytes : {0ULL, 1ULL, 997ULL, 65536ULL}) {
      const VarLayout layout(skewed_counts(P, nbytes, 0x5eedULL));
      ASSERT_EQ(layout.nchunks(), P);
      ASSERT_EQ(layout.nbytes(), nbytes);
      // disp is the prefix sum of count: blocks tile [0, nbytes) in order
      // with no gap and no overlap.
      std::uint64_t cursor = 0;
      for (int c = 0; c < P; ++c) {
        EXPECT_EQ(layout.disp(c), cursor) << "P=" << P << " chunk=" << c;
        cursor += layout.count(c);
      }
      EXPECT_EQ(cursor, nbytes);
      // range_count must agree with summed per-chunk counts on every
      // window, including the wrap-free full window.
      EXPECT_EQ(layout.range_count(0, P), nbytes);
      for (int first = 0; first < P; first += (P > 16 ? 7 : 1)) {
        std::uint64_t manual = 0;
        const int n = std::min((first * 3) % P + 1, P - first);
        for (int i = 0; i < n; ++i) manual += layout.count(first + i);
        EXPECT_EQ(layout.range_count(first, n), manual)
            << "P=" << P << " first=" << first << " n=" << n;
      }
    }
  }
}

TEST(VarLayout, SingleRankOwnsEverythingAtPEquals1) {
  const VarLayout layout(skewed_counts(1, 4096, 7));
  EXPECT_EQ(layout.nchunks(), 1);
  EXPECT_EQ(layout.count(0), 4096u);
  EXPECT_EQ(layout.disp(0), 0u);
  EXPECT_EQ(layout.range_count(0, 1), 4096u);
}

TEST(SubtreeSpanIdentities, OwnershipBlocksTileTheLayoutAndPriceTheSavings) {
  for (const int P : sweep_sizes()) {
    if (P < 2) continue;
    const VarLayout layout(skewed_counts(P, 65536, 0xabcdULL));
    // Post-scatter ownership blocks [rel, rel+span) are nested, start at
    // the owner, and their per-rank extra holdings sum to the tuned ring
    // savings -- the identity the family closed forms are priced with.
    std::uint64_t span_excess = 0;
    std::uint64_t ancestor_sum = 0;
    std::uint64_t held = 0;
    for (int rel = 0; rel < P; ++rel) {
      const int span = coll::scatter_subtree_span(rel, P);
      ASSERT_GE(span, 1);
      ASSERT_LE(rel + span, P) << "subtree block overflows at rel=" << rel;
      span_excess += static_cast<std::uint64_t>(span) - 1;
      ancestor_sum += core::block_ancestors(rel);
      held += layout.range_count(rel, span);
    }
    EXPECT_EQ(span_excess, core::tuned_ring_savings(P)) << "P=" << P;
    EXPECT_EQ(ancestor_sum, core::tuned_ring_savings(P)) << "P=" << P;
    // Every byte a non-owner holds beyond its own block is a byte the
    // native allgatherv re-delivers; the root's copy covers the rest.
    std::uint64_t excess_bytes = 0;
    for (int rel = 0; rel < P; ++rel) {
      const int span = coll::scatter_subtree_span(rel, P);
      excess_bytes += layout.range_count(rel, span) - layout.count(rel);
    }
    EXPECT_EQ(held, layout.nbytes() + excess_bytes) << "P=" << P;
  }
}

TEST(FamilyClosedForms, AnchorsAndScalingLawsHold) {
  // The generalized anchors from the paper's construction.
  EXPECT_EQ(core::blocked_reduce_scatter_transfers(8), 68u);
  EXPECT_EQ(core::allreduce_rsag_native_transfers(8), 124u);
  EXPECT_EQ(core::allreduce_rsag_tuned_transfers(8), 112u);
  EXPECT_EQ(core::blocked_reduce_scatter_transfers(10), 105u);
  EXPECT_EQ(core::allreduce_rsag_native_transfers(10), 195u);
  EXPECT_EQ(core::allreduce_rsag_tuned_transfers(10), 180u);
  for (const int P : sweep_sizes()) {
    if (P < 2) continue;
    const auto native = core::native_ring_transfers(P);
    EXPECT_EQ(core::blocked_reduce_scatter_transfers(P),
              native + core::tuned_ring_savings(P));
    EXPECT_EQ(core::allreduce_rsag_native_transfers(P),
              core::blocked_reduce_scatter_transfers(P) + native);
    EXPECT_EQ(core::allreduce_rsag_tuned_transfers(P), 2 * native);
  }
}

}  // namespace
}  // namespace bsb
