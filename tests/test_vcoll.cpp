// Threaded correctness tests for the ownership-aware reduction family
// (reduce_scatter ring/blocks, the reduce_scatter+allgather allreduces,
// the typed recursive-doubling allreduce) and the skewed/hierarchical
// allgather generalizations (allgatherv over a VarLayout, hierarchical
// Bruck). Every reduction run is compared byte-for-byte against the
// fold-order-exact oracle from coll/reduce_ops; every allgather run must
// reproduce the global pattern on every rank.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bsbutil/rng.hpp"
#include "coll/allgather_bruck_hier.hpp"
#include "coll/allgatherv_ring.hpp"
#include "coll/reduce_ops.hpp"
#include "coll/reduce_scatter_ring.hpp"
#include "coll/scatter_binomial.hpp"
#include "comm/chunks.hpp"
#include "comm/vchunks.hpp"
#include "core/allgatherv_ring_tuned.hpp"
#include "core/allreduce_rsag.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

namespace bsb {
namespace {

using coll::RedDtype;
using coll::RedOp;

constexpr std::uint64_t kSeed = 0x5eedf00dULL;

const RedOp kOps[] = {RedOp::Sum, RedOp::Max};
const RedDtype kDtypes[] = {RedDtype::I32, RedDtype::F64};

/// The full expected buffer after a ring-family reduction: chunk c holds
/// the left fold in ring arrival order (the order the collectives combine
/// in), elementwise.
std::vector<std::byte> ring_expected(RedOp op, RedDtype dtype, int P, int root,
                                     std::uint64_t nbytes) {
  const ChunkLayout layout(nbytes, P);
  const std::uint64_t es = coll::elem_bytes(dtype);
  std::vector<std::byte> expected(nbytes);
  for (int c = 0; c < P; ++c) {
    const std::uint64_t off = layout.disp(c);
    for (std::uint64_t b = 0; b < layout.count(c); b += es) {
      coll::ring_reduced_value(
          op, dtype, kSeed, P, root, c, (off + b) / es,
          std::span<std::byte>(expected.data() + off + b,
                               static_cast<std::size_t>(es)));
    }
  }
  return expected;
}

/// First differing byte index in [lo, hi), or hi when the range matches.
std::uint64_t first_diff(std::span<const std::byte> got,
                         const std::vector<std::byte>& want, std::uint64_t lo,
                         std::uint64_t hi) {
  for (std::uint64_t i = lo; i < hi; ++i) {
    if (got[static_cast<std::size_t>(i)] != want[static_cast<std::size_t>(i)]) {
      return i;
    }
  }
  return hi;
}

// ------------------------------------------------------ reduce_scatter ring

TEST(ReduceScatterRing, OwnChunkMatchesOracleEverywhere) {
  for (const int P : {2, 3, 8, 10, 13}) {
    for (const int root : {0, P - 1}) {
      for (const RedOp op : kOps) {
        for (const RedDtype dtype : kDtypes) {
          const std::uint64_t nbytes =
              static_cast<std::uint64_t>(P) * coll::elem_bytes(dtype) * 4;
          const auto expected = ring_expected(op, dtype, P, root, nbytes);
          const ChunkLayout layout(nbytes, P);
          mpisim::World world(P);
          world.run([&](mpisim::ThreadComm& comm) {
            std::vector<std::byte> buf(nbytes);
            coll::fill_contributions(dtype, kSeed, comm.rank(), 0, buf);
            coll::reduce_scatter_ring(comm, buf, root, op, dtype);
            const int rel = rel_rank(comm.rank(), root, P);
            const std::uint64_t lo = layout.disp(rel);
            const std::uint64_t hi = lo + layout.count(rel);
            EXPECT_EQ(first_diff(buf, expected, lo, hi), hi)
                << "P=" << P << " root=" << root << " rank=" << comm.rank()
                << " op=" << coll::to_string(op)
                << " dtype=" << coll::to_string(dtype);
          });
        }
      }
    }
  }
}

TEST(ReduceScatterBlocks, WholeSubtreeBlockMatchesOracle) {
  for (const int P : {2, 3, 8, 10, 13}) {
    for (const int root : {0, P / 2}) {
      for (const RedOp op : kOps) {
        for (const RedDtype dtype : kDtypes) {
          const std::uint64_t nbytes =
              static_cast<std::uint64_t>(P) * coll::elem_bytes(dtype) * 3;
          const auto expected = ring_expected(op, dtype, P, root, nbytes);
          const ChunkLayout layout(nbytes, P);
          mpisim::World world(P);
          world.run([&](mpisim::ThreadComm& comm) {
            std::vector<std::byte> buf(nbytes);
            coll::fill_contributions(dtype, kSeed, comm.rank(), 0, buf);
            coll::reduce_scatter_blocks_ring(comm, buf, root, op, dtype);
            const int rel = rel_rank(comm.rank(), root, P);
            const int span = coll::scatter_subtree_span(rel, P);
            const std::uint64_t lo = layout.disp(rel);
            const std::uint64_t hi = lo + layout.range_count(rel, span);
            EXPECT_EQ(first_diff(buf, expected, lo, hi), hi)
                << "P=" << P << " root=" << root << " rank=" << comm.rank();
          });
        }
      }
    }
  }
}

// ------------------------------------------------------------- allreduces

TEST(AllreduceRsAg, NativeAndTunedAgreeWithOracleOnEveryRank) {
  for (const int P : {2, 3, 8, 10}) {
    for (const bool tuned : {false, true}) {
      for (const RedOp op : kOps) {
        for (const RedDtype dtype : kDtypes) {
          const int root = P - 1;
          const std::uint64_t nbytes =
              static_cast<std::uint64_t>(P) * coll::elem_bytes(dtype) * 2;
          const auto expected = ring_expected(op, dtype, P, root, nbytes);
          mpisim::World world(P);
          world.run([&](mpisim::ThreadComm& comm) {
            std::vector<std::byte> buf(nbytes);
            coll::fill_contributions(dtype, kSeed, comm.rank(), 0, buf);
            if (tuned) {
              core::allreduce_rsag_tuned(comm, buf, root, op, dtype);
            } else {
              core::allreduce_rsag_native(comm, buf, root, op, dtype);
            }
            EXPECT_EQ(first_diff(buf, expected, 0, nbytes), nbytes)
                << "P=" << P << " tuned=" << tuned << " rank=" << comm.rank()
                << " op=" << coll::to_string(op)
                << " dtype=" << coll::to_string(dtype);
          });
        }
      }
    }
  }
}

TEST(AllreduceTyped, RecursiveDoublingMatchesBalancedTreeOracle) {
  for (const int P : {2, 4, 8, 16}) {
    for (const RedOp op : kOps) {
      for (const RedDtype dtype : kDtypes) {
        const std::uint64_t es = coll::elem_bytes(dtype);
        const std::uint64_t nbytes = es * 24;
        std::vector<std::byte> expected(nbytes);
        for (std::uint64_t e = 0; e < nbytes / es; ++e) {
          coll::rd_reduced_value(
              op, dtype, kSeed, P, e,
              std::span<std::byte>(expected.data() + e * es,
                                   static_cast<std::size_t>(es)));
        }
        mpisim::World world(P);
        world.run([&](mpisim::ThreadComm& comm) {
          std::vector<std::byte> buf(nbytes);
          coll::fill_contributions(dtype, kSeed, comm.rank(), 0, buf);
          coll::allreduce_typed(comm, buf, op, dtype);
          EXPECT_EQ(first_diff(buf, expected, 0, nbytes), nbytes)
              << "P=" << P << " rank=" << comm.rank();
        });
      }
    }
  }
}

// ------------------------------------------------------------- allgatherv

TEST(Allgatherv, NativeAndTunedReassembleSkewedPartitions) {
  bool saw_zero_chunk = false;
  for (const int P : {2, 3, 8, 10, 13}) {
    for (const int root : {0, P - 1}) {
      for (const std::uint64_t skew : {1u, 7u, 99u}) {
        const std::uint64_t nbytes = 997;  // ragged on purpose
        const VarLayout layout(skewed_counts(P, nbytes, skew));
        for (int c = 0; c < P; ++c) {
          if (layout.count(c) == 0) saw_zero_chunk = true;
        }
        std::vector<std::byte> pattern(nbytes);
        fill_pattern(pattern, kSeed);
        for (const bool tuned : {false, true}) {
          mpisim::World world(P);
          world.run([&](mpisim::ThreadComm& comm) {
            // Post-scatter ownership: this rank starts with its whole
            // subtree block of the skewed layout at home offsets.
            const int rel = rel_rank(comm.rank(), root, P);
            const int span = coll::scatter_subtree_span(rel, P);
            const std::uint64_t off = layout.disp(rel);
            const std::uint64_t held = layout.range_count(rel, span);
            std::vector<std::byte> buf(nbytes);
            std::copy(pattern.begin() + static_cast<std::ptrdiff_t>(off),
                      pattern.begin() + static_cast<std::ptrdiff_t>(off + held),
                      buf.begin() + static_cast<std::ptrdiff_t>(off));
            if (tuned) {
              core::allgatherv_ring_tuned(comm, buf, root, layout);
            } else {
              coll::allgatherv_ring_native(comm, buf, root, layout);
            }
            EXPECT_EQ(first_pattern_mismatch(buf, kSeed), nbytes)
                << "P=" << P << " root=" << root << " skew=" << skew
                << " tuned=" << tuned << " rank=" << comm.rank();
          });
        }
      }
    }
  }
  // The skew generator's ~1/8 zero weights must actually appear, or the
  // zero-block paths above were never exercised.
  EXPECT_TRUE(saw_zero_chunk);
}

// ------------------------------------------------------ hierarchical Bruck

TEST(AllgatherBruckHier, ReassemblesAcrossNodeShapes) {
  for (const int P : {2, 4, 8, 10, 12}) {
    for (const int cores : {1, 3, 4, 16}) {
      const std::uint64_t block = 64;
      const std::uint64_t nbytes = static_cast<std::uint64_t>(P) * block;
      std::vector<std::byte> pattern(nbytes);
      fill_pattern(pattern, kSeed);
      mpisim::World world(P);
      world.run([&](mpisim::ThreadComm& comm) {
        std::vector<std::byte> buf(nbytes);
        const std::uint64_t off =
            static_cast<std::uint64_t>(comm.rank()) * block;
        std::copy(pattern.begin() + static_cast<std::ptrdiff_t>(off),
                  pattern.begin() + static_cast<std::ptrdiff_t>(off + block),
                  buf.begin() + static_cast<std::ptrdiff_t>(off));
        coll::allgather_bruck_hier(comm, buf, block, cores);
        EXPECT_EQ(first_pattern_mismatch(buf, kSeed), nbytes)
            << "P=" << P << " cores=" << cores << " rank=" << comm.rank();
      });
    }
  }
}

}  // namespace
}  // namespace bsb
