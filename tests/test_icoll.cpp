// Tests for the concurrent-collective serving layer: coll::Plan, the
// process-wide schedule cache, the per-rank progress engine and the
// nonblocking core::ibcast / core::iallgather entry points.
//
// The oracle strategy mirrors the fuzz harness: nonblocking results must
// be byte-identical to the blocking algorithms they were compiled from
// (the deterministic fill_pattern/first_pattern_mismatch byte oracles),
// across roots, sizes, rank counts, split communicators, many concurrent
// in-flight operations, and under deterministic fault injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "bsbutil/rng.hpp"
#include "coll/comm_split.hpp"
#include "coll/plan.hpp"
#include "coll/scatter_binomial.hpp"
#include "coll/schedule_cache.hpp"
#include "comm/chunks.hpp"
#include "comm/subcomm.hpp"
#include "core/bcast.hpp"
#include "core/icoll.hpp"
#include "core/persistent_bcast.hpp"
#include "core/transfer_analysis.hpp"
#include "mpisim/progress.hpp"
#include "mpisim/world.hpp"

namespace bsb {
namespace {

using mpisim::CollRequest;

// ------------------------------------------------------------- coll::Plan

TEST(Plan, CompilesBcastForEveryRankAndCountsSends) {
  // P=8 tuned ring at 1 MiB: the paper's 56 -> 44 transfer saving, plus
  // the 7 binomial scatter sends = 51 total messages.
  const int P = 8;
  const std::uint64_t nbytes = 1 << 20;
  const coll::Plan plan = coll::compile_plan(
      P, nbytes, /*root=*/0, "tuned",
      [](Comm& c, std::span<std::byte> buf) {
        core::run_bcast_algorithm(core::BcastAlgorithm::ScatterRingTuned, c,
                                  buf, 0);
      });
  ASSERT_EQ(plan.steps.size(), 8u);
  const std::uint64_t expected =
      core::scatter_transfers(P, nbytes) + core::tuned_ring_transfers(P);
  EXPECT_EQ(plan.total_sends(), expected);  // 7 + 44 at P=8
  EXPECT_LT(plan.max_tag, mpisim::ProgressEngine::kCtxStride);
}

TEST(Plan, RejectsBarriers) {
  EXPECT_THROW(coll::compile_plan(2, 16, 0, "barrier",
                                  [](Comm& c, std::span<std::byte>) {
                                    c.barrier();
                                  }),
               PreconditionError);
}

TEST(Plan, BlockingReplayMatchesDirectRun) {
  const int P = 10;
  const std::uint64_t nbytes = 30000;
  auto plan = core::bcast_plan(P, nbytes, /*root=*/4);
  EXPECT_EQ(plan->root, 0);  // root-canonical: compiled once, rotated at use
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(nbytes);
    if (comm.rank() == 4) fill_pattern(buf, 77);
    coll::execute_plan_rank(comm, *plan, comm.rank(), buf, /*root=*/4);
    EXPECT_EQ(first_pattern_mismatch(buf, 77), buf.size());
  });
}

// ---------------------------------------------------------- ScheduleCache

TEST(ScheduleCache, HitMissAndEvictionCounters) {
  coll::ScheduleCache cache(/*capacity=*/2);
  int builds = 0;
  const auto build = [&](int root) {
    return [&builds, root] {
      ++builds;
      return coll::compile_plan(4, 64, root, "bcast",
                                [root](Comm& c, std::span<std::byte> buf) {
                                  core::bcast(c, buf, root);
                                });
    };
  };
  const coll::PlanKey k0{4, 0, 64, 0}, k1{4, 1, 64, 0}, k2{4, 2, 64, 0};

  auto p0 = cache.get_or_build(k0, build(0));
  EXPECT_EQ(builds, 1);
  auto p0b = cache.get_or_build(k0, build(0));
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(p0.get(), p0b.get());  // same shared plan

  cache.get_or_build(k1, build(1));
  cache.get_or_build(k2, build(2));  // capacity 2: evicts k0 (LRU)
  EXPECT_EQ(builds, 3);

  const auto s1 = cache.stats();
  EXPECT_EQ(s1.hits, 1u);
  EXPECT_EQ(s1.misses, 3u);
  EXPECT_EQ(s1.evictions, 1u);
  EXPECT_EQ(s1.size, 2u);
  EXPECT_DOUBLE_EQ(s1.hit_rate(), 0.25);

  cache.get_or_build(k0, build(0));  // rebuilt after eviction
  EXPECT_EQ(builds, 4);
  // The evicted plan handle stays alive through its shared_ptr.
  EXPECT_EQ(p0->nranks, 4);

  cache.clear();
  const auto s2 = cache.stats();
  EXPECT_EQ(s2.size, 0u);
  EXPECT_EQ(s2.hits + s2.misses + s2.evictions, 0u);
}

TEST(ScheduleCache, LruRefreshOnHit) {
  coll::ScheduleCache cache(/*capacity=*/2);
  const auto build = [](int root) {
    return coll::compile_plan(2, 8, root, "b",
                              [root](Comm& c, std::span<std::byte> buf) {
                                core::bcast(c, buf, root);
                              });
  };
  const coll::PlanKey k0{2, 0, 8, 0}, k1{2, 1, 8, 0}, k2{2, 0, 8, 1};
  cache.get_or_build(k0, [&] { return build(0); });
  cache.get_or_build(k1, [&] { return build(1); });
  cache.get_or_build(k0, [&] { return build(0); });  // refresh k0
  cache.get_or_build(k2, [&] { return build(0); });  // evicts k1, not k0
  const auto before = cache.stats();
  cache.get_or_build(k0, [&] { return build(0); });
  EXPECT_EQ(cache.stats().hits, before.hits + 1);  // k0 survived
}

TEST(ScheduleCache, SetCapacityEvicts) {
  coll::ScheduleCache cache(/*capacity=*/8);
  for (int root = 0; root < 4; ++root) {
    cache.get_or_build(
        {4, root, 32, 0}, [root] {
          return coll::compile_plan(4, 32, root, "b",
                                    [root](Comm& c, std::span<std::byte> buf) {
                                      core::bcast(c, buf, root);
                                    });
        });
  }
  cache.set_capacity(1);
  const auto s = cache.stats();
  EXPECT_EQ(s.size, 1u);
  EXPECT_EQ(s.evictions, 3u);
}

// ----------------------------------------------------- ibcast correctness

// One world per P; every root broadcast twice (small -> binomial, larger
// -> scatter-based) and checked byte-for-byte against the root pattern.
void check_ibcast_all_roots(int P, std::span<const std::uint64_t> sizes) {
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    for (const std::uint64_t nbytes : sizes) {
      for (int root = 0; root < P; ++root) {
        const std::uint64_t seed =
            1000 + nbytes * static_cast<std::uint64_t>(P) +
            static_cast<std::uint64_t>(root);
        std::vector<std::byte> buf(nbytes);
        fill_pattern(buf, ~seed);  // garbage
        if (comm.rank() == root) fill_pattern(buf, seed);
        CollRequest req = core::ibcast(comm, buf, root);
        req.wait();
        ASSERT_EQ(first_pattern_mismatch(buf, seed), buf.size())
            << "P=" << P << " root=" << root << " nbytes=" << nbytes
            << " rank=" << comm.rank();
      }
    }
  });
}

TEST(Ibcast, MatchesBlockingAcrossAllRootsP2to32) {
  const std::uint64_t sizes[] = {1000, 30000};
  for (int P = 2; P <= 32; ++P) check_ibcast_all_roots(P, sizes);
}

TEST(Ibcast, MatchesBlockingAcrossAllRootsP33to64) {
  const std::uint64_t sizes[] = {999, 24001};
  for (int P = 33; P <= 64; ++P) check_ibcast_all_roots(P, sizes);
}

TEST(Ibcast, SixtyFourConcurrentBroadcastsInFlight) {
  // >= 64 collectives in flight per rank at once, mixed roots and sizes,
  // started back-to-back and only then completed (in reverse order, to
  // prove completion order is free).
  const int P = 8;
  const int kInFlight = 64;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::vector<std::byte>> bufs(kInFlight);
    std::vector<CollRequest> reqs(kInFlight);
    for (int i = 0; i < kInFlight; ++i) {
      const std::uint64_t nbytes = 512 + 977 * static_cast<std::uint64_t>(i);
      const int root = i % P;
      bufs[i].resize(nbytes);
      fill_pattern(bufs[i], ~static_cast<std::uint64_t>(i));
      if (comm.rank() == root) fill_pattern(bufs[i], 42 + i);
      reqs[i] = core::ibcast(comm, bufs[i], root);
    }
    EXPECT_GE(comm.progress_engine().in_flight(), 1u);
    for (int i = kInFlight - 1; i >= 0; --i) reqs[i].wait();
    for (int i = 0; i < kInFlight; ++i) {
      ASSERT_EQ(first_pattern_mismatch(bufs[i], 42 + i), bufs[i].size())
          << "op " << i << " rank " << comm.rank();
    }
  });
}

TEST(Ibcast, WaitAllCompletesEverything) {
  const int P = 6;
  const int kOps = 20;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::vector<std::byte>> bufs(kOps);
    std::vector<CollRequest> reqs(kOps);
    for (int i = 0; i < kOps; ++i) {
      bufs[i].resize(4096 + i);
      if (comm.rank() == i % P) fill_pattern(bufs[i], 7 * i + 1);
      reqs[i] = core::ibcast(comm, bufs[i], i % P);
    }
    mpisim::wait_all_coll(reqs);
    for (int i = 0; i < kOps; ++i) {
      ASSERT_EQ(first_pattern_mismatch(bufs[i], 7 * i + 1), bufs[i].size());
    }
  });
}

TEST(Ibcast, TestEventuallyCompletesWithoutWait) {
  const int P = 4;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(20000);
    if (comm.rank() == 1) fill_pattern(buf, 5);
    CollRequest req = core::ibcast(comm, buf, 1);
    while (!req.test()) {
    }
    EXPECT_EQ(first_pattern_mismatch(buf, 5), buf.size());
    EXPECT_TRUE(req.test());  // completed requests stay complete
  });
}

TEST(Ibcast, EmptyRequestIsComplete) {
  CollRequest req;
  EXPECT_TRUE(req.test());
  req.wait();  // no-op
}

// ------------------------------------------------------------- iallgather

void seed_allgather_input(int rank, int root, int P, bool tuned,
                          std::uint64_t seed, std::span<std::byte> buf) {
  fill_pattern(buf, ~seed);  // garbage
  const ChunkLayout layout(buf.size(), P);
  const int rel = rel_rank(rank, root, P);
  if (tuned) {
    // The tuned ring runs over scatter_binomial output: the rank owns its
    // whole binomial-subtree block.
    const std::uint64_t off = layout.disp(rel);
    fill_pattern(buf.subspan(off, coll::scatter_block_bytes(rel, layout)),
                 seed, off);
  } else {
    fill_pattern(layout.chunk(buf, rel), seed, layout.disp(rel));
  }
}

void check_iallgather_all_roots(int P, std::uint64_t nbytes, bool tuned) {
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    for (int root = 0; root < P; ++root) {
      const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(root);
      std::vector<std::byte> buf(nbytes);
      seed_allgather_input(comm.rank(), root, P, tuned, seed, buf);
      CollRequest req = core::iallgather(comm, buf, root, tuned);
      req.wait();
      ASSERT_EQ(first_pattern_mismatch(buf, seed), buf.size())
          << "P=" << P << " root=" << root << " tuned=" << tuned
          << " rank=" << comm.rank();
    }
  });
}

TEST(Iallgather, TunedMatchesBlockingAcrossRoots) {
  for (const int P : {2, 3, 8, 10, 13, 32, 64}) {
    check_iallgather_all_roots(P, 8 * 1024, /*tuned=*/true);
  }
}

TEST(Iallgather, NativeMatchesBlockingAcrossRoots) {
  for (const int P : {2, 5, 8, 10, 24, 64}) {
    check_iallgather_all_roots(P, 6001, /*tuned=*/false);
  }
}

TEST(Iallgather, TunedMovesFewerBytesThanNative) {
  // The paper's saving survives the nonblocking path: same worlds, same
  // shape, strictly fewer messages for the tuned ring.
  const int P = 10;
  const std::uint64_t nbytes = 50000;
  std::uint64_t msgs[2] = {0, 0};
  for (const bool tuned : {false, true}) {
    mpisim::World world(P);
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> buf(nbytes);
      seed_allgather_input(comm.rank(), 0, P, tuned, 3, buf);
      core::iallgather(comm, buf, 0, tuned).wait();
    });
    msgs[tuned ? 1 : 0] = world.total_msgs();
  }
  EXPECT_EQ(msgs[0], 90u);  // P(P-1)
  EXPECT_EQ(msgs[1], 75u);  // P(P-1) - sum(step_i - 1)
}

// -------------------------------------------------- split communicators

TEST(Ibcast, OverlappingSplitCommsInterleavedTestWait) {
  // 12 world ranks split into 3 groups of 4 (by color) while the WORLD
  // also runs its own broadcasts: two layers of concurrent collectives on
  // overlapping communicators, completed in interleaved test/wait orders.
  const int P = 12;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    auto sub = coll::comm_split(comm, comm.rank() % 3, comm.rank(),
                                /*base_context=*/1);
    ASSERT_TRUE(sub.has_value());
    ASSERT_EQ(sub->size(), 4);

    const std::uint64_t group_seed = 100 + static_cast<std::uint64_t>(
                                               comm.rank() % 3);
    std::vector<std::byte> world_buf(18000);
    std::vector<std::byte> sub_buf(9000);
    if (comm.rank() == 2) fill_pattern(world_buf, 55);
    if (sub->rank() == 1) fill_pattern(sub_buf, group_seed);

    CollRequest world_req = core::ibcast(comm, world_buf, 2);
    CollRequest sub_req = core::ibcast(*sub, sub_buf, 1);

    if (comm.rank() % 2 == 0) {
      // Even ranks: poll the sub op while waiting the world op.
      while (!sub_req.test()) {
        if (world_req.test()) break;
      }
      world_req.wait();
      sub_req.wait();
    } else {
      sub_req.wait();
      world_req.wait();
    }
    EXPECT_EQ(first_pattern_mismatch(world_buf, 55), world_buf.size());
    EXPECT_EQ(first_pattern_mismatch(sub_buf, group_seed), sub_buf.size());
  });
}

TEST(Iallgather, OnSplitComm) {
  const int P = 12;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    auto sub = coll::comm_split(comm, comm.rank() / 6, comm.rank(),
                                /*base_context=*/1);
    ASSERT_TRUE(sub.has_value());
    const int sp = sub->size();
    std::vector<std::byte> buf(7200);
    const std::uint64_t seed = 300 + static_cast<std::uint64_t>(comm.rank() / 6);
    seed_allgather_input(sub->rank(), 0, sp, true, seed, buf);
    core::iallgather(*sub, buf, 0, true).wait();
    EXPECT_EQ(first_pattern_mismatch(buf, seed), buf.size());
  });
}

TEST(Ibcast, ManyCollectivesPerSubCommWrapContexts) {
  // More in-flight sequence slots than a naive tag map would allow: 100
  // back-to-back broadcasts per group, batches of 10 in flight.
  const int P = 8;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    auto sub = coll::comm_split(comm, comm.rank() % 2, comm.rank(),
                                /*base_context=*/1);
    ASSERT_TRUE(sub.has_value());
    for (int batch = 0; batch < 10; ++batch) {
      std::vector<std::vector<std::byte>> bufs(10);
      std::vector<CollRequest> reqs(10);
      for (int i = 0; i < 10; ++i) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(batch * 10 + i) * 2 +
            static_cast<std::uint64_t>(comm.rank() % 2);
        bufs[i].resize(700 + 13 * static_cast<std::uint64_t>(i));
        if (sub->rank() == i % sub->size()) fill_pattern(bufs[i], seed);
        reqs[i] = core::ibcast(*sub, bufs[i], i % sub->size());
      }
      mpisim::wait_all_coll(reqs);
      for (int i = 0; i < 10; ++i) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(batch * 10 + i) * 2 +
            static_cast<std::uint64_t>(comm.rank() % 2);
        ASSERT_EQ(first_pattern_mismatch(bufs[i], seed), bufs[i].size());
      }
    }
  });
}

// --------------------------------------------------------- fault injection

TEST(Ibcast, CompletesUnderDelaysAndReordering) {
  mpisim::WorldConfig cfg;
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xfeedULL;
  cfg.faults.delay_prob = 0.3;
  cfg.faults.max_delay_us = 200;
  cfg.faults.reorder_prob = 0.3;
  cfg.faults.force_rendezvous_prob = 0.2;
  cfg.faults.force_eager_prob = 0.2;
  const int P = 9;
  mpisim::World world(P, cfg);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::vector<std::byte>> bufs(8);
    std::vector<CollRequest> reqs(8);
    for (int i = 0; i < 8; ++i) {
      bufs[i].resize(15000 + 501 * static_cast<std::uint64_t>(i));
      if (comm.rank() == i % P) fill_pattern(bufs[i], 60 + i);
      reqs[i] = core::ibcast(comm, bufs[i], i % P);
    }
    mpisim::wait_all_coll(reqs);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(first_pattern_mismatch(bufs[i], 60 + i), bufs[i].size())
          << "op " << i << " rank " << comm.rank();
    }
  });
}

TEST(Iallgather, CompletesUnderFaultsOnSplitComms) {
  mpisim::WorldConfig cfg;
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xabcdULL;
  cfg.faults.delay_prob = 0.25;
  cfg.faults.max_delay_us = 150;
  cfg.faults.reorder_prob = 0.25;
  const int P = 8;
  mpisim::World world(P, cfg);
  world.run([&](mpisim::ThreadComm& comm) {
    auto sub = coll::comm_split(comm, comm.rank() % 2, comm.rank(),
                                /*base_context=*/1);
    ASSERT_TRUE(sub.has_value());
    std::vector<std::byte> buf(4096);
    const std::uint64_t seed = 500 + static_cast<std::uint64_t>(comm.rank() % 2);
    seed_allgather_input(sub->rank(), 0, sub->size(), true, seed, buf);
    core::iallgather(*sub, buf, 0, true).wait();
    EXPECT_EQ(first_pattern_mismatch(buf, seed), buf.size());
  });
}

// ------------------------------------------------ cache on the hot path

TEST(Ibcast, SteadyStateHitsTheScheduleCache) {
  coll::process_schedule_cache().clear();
  const int P = 8;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    for (int iter = 0; iter < 25; ++iter) {
      std::vector<std::byte> buf(20000);
      if (comm.rank() == iter % 4) fill_pattern(buf, 80 + iter);
      core::ibcast(comm, buf, iter % 4).wait();
      ASSERT_EQ(first_pattern_mismatch(buf, 80 + iter), buf.size());
    }
  });
  const auto s = coll::process_schedule_cache().stats();
  // ONE key: the four roots canonicalize to the same root-0 plan, so only
  // the very first lookup across 8 ranks x 25 iters compiles anything.
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(P) * 25 - 1);
  EXPECT_GE(s.hit_rate(), 0.9);
}

TEST(PersistentBcastOnPlan, SharesTheProcessCache) {
  coll::process_schedule_cache().clear();
  const int P = 10;  // >= 8 ranks, medium non-pof2 size -> tuned ring
  const std::uint64_t nbytes = 40000;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    core::PersistentBcast plan(comm, nbytes, 0);
    std::vector<std::byte> buf(nbytes);
    if (comm.rank() == 0) fill_pattern(buf, 9);
    plan.execute(buf);
    EXPECT_EQ(first_pattern_mismatch(buf, 9), buf.size());
  });
  const auto s = coll::process_schedule_cache().stats();
  EXPECT_EQ(s.misses, 1u);      // one compilation...
  EXPECT_GE(s.hits, 9u);        // ...shared by the other nine ranks
  // The nonblocking path reuses the exact same plan object.
  auto cached = core::bcast_plan(P, nbytes, 0);
  EXPECT_EQ(coll::process_schedule_cache().stats().misses, 1u);
  EXPECT_EQ(cached->name, std::string("scatter+ring-allgather(tuned)"));
  // Root canonicalization: EVERY root of the shape resolves to that same
  // plan object — no per-root compilations.
  for (int root = 1; root < P; ++root) {
    EXPECT_EQ(core::bcast_plan(P, nbytes, root).get(), cached.get());
  }
  EXPECT_EQ(coll::process_schedule_cache().stats().misses, 1u);
}

TEST(Ibcast, SplitCommsShareOneCanonicalPlan) {
  // Cross-communicator sharing: three disjoint 4-rank groups broadcast the
  // same-shaped buffer from DIFFERENT roots. The root-canonical cache key
  // (P, 0, nbytes, algo) makes all of them — across groups, roots and
  // iterations — reuse a single compiled plan.
  coll::process_schedule_cache().clear();
  const int P = 12;
  const std::uint64_t nbytes = 9000;
  mpisim::World world(P);
  world.run([&](mpisim::ThreadComm& comm) {
    auto sub = coll::comm_split(comm, comm.rank() % 3, comm.rank(),
                                /*base_context=*/1);
    ASSERT_TRUE(sub.has_value());
    const int group = comm.rank() % 3;
    const int root = group;  // group g broadcasts from sub rank g
    const std::uint64_t seed = 700 + static_cast<std::uint64_t>(group);
    std::vector<std::byte> buf(nbytes);
    fill_pattern(buf, ~seed);
    if (sub->rank() == root) fill_pattern(buf, seed);
    core::ibcast(*sub, buf, root).wait();
    EXPECT_EQ(first_pattern_mismatch(buf, seed), buf.size());
  });
  const auto s = coll::process_schedule_cache().stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 11u);
}

}  // namespace
}  // namespace bsb
