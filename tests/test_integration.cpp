// Cross-substrate integration and property tests:
//  * thread backend vs recorded schedule consistency (message counts);
//  * the headline simulation property — the tuned broadcast is never
//    slower than the native one — swept over a (P, size, topology) grid;
//  * SMP broadcast simulated end-to-end (native vs tuned inter phase);
//  * Laki cost model sanity (same trend as Hornet, the paper's claim);
//  * env-based selector tuning;
//  * replay timeline rendering.
#include <gtest/gtest.h>

#include <fstream>
#include <map>

#include "bsbutil/math.hpp"
#include "trace/export.hpp"

#include "coll/bcast_binomial.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "coll/bcast_smp.hpp"
#include "core/bcast.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "core/transfer_analysis.hpp"
#include "core/tuning.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"
#include "netsim/sim.hpp"
#include "netsim/timeline.hpp"
#include "trace/record.hpp"

namespace bsb {
namespace {

// ------------------------------------------ thread backend == trace counts

TEST(CrossSubstrate, ThreadTrafficMatchesRecordedSchedule) {
  // The SAME algorithm must emit the SAME messages on both substrates.
  struct Case {
    const char* name;
    std::function<void(Comm&, std::span<std::byte>)> run;
  };
  const std::vector<Case> cases{
      {"native", [](Comm& c, std::span<std::byte> b) {
         coll::bcast_scatter_ring_native(c, b, 2);
       }},
      {"tuned", [](Comm& c, std::span<std::byte> b) {
         core::bcast_scatter_ring_tuned(c, b, 2);
       }},
  };
  for (const auto& cs : cases) {
    for (int P : {5, 10, 17}) {
      const std::uint64_t nbytes = 999;
      mpisim::World world(P);
      world.run([&](mpisim::ThreadComm& comm) {
        std::vector<std::byte> buf(nbytes);
        cs.run(comm, buf);
      });
      const auto sched = trace::record_schedule(
          P, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
            cs.run(comm, buffer);
          });
      EXPECT_EQ(world.total_msgs(), sched.total_sends())
          << cs.name << " P=" << P;
      EXPECT_EQ(world.total_bytes(), sched.total_send_bytes())
          << cs.name << " P=" << P;
    }
  }
}

// ------------------------------------------------- tuned never loses (sim)

struct GridPoint {
  int nranks;
  std::uint64_t nbytes;
  int cores;
};

class TunedNeverSlower : public ::testing::TestWithParam<GridPoint> {};

TEST_P(TunedNeverSlower, OnSimulatedCluster) {
  const auto [P, nbytes, cores] = GetParam();
  netsim::SimSpec spec{Topology(P, cores, Placement::Block),
                       netsim::CostModel::hornet(), /*iters=*/4};
  const auto native = netsim::simulate_program(
      P, nbytes,
      [](Comm& c, std::span<std::byte> b) {
        coll::bcast_scatter_ring_native(c, b, 0);
      },
      spec);
  const auto tuned = netsim::simulate_program(
      P, nbytes,
      [](Comm& c, std::span<std::byte> b) {
        core::bcast_scatter_ring_tuned(c, b, 0);
      },
      spec);
  // Allow a 2% tolerance: the fluid model is not perfectly monotone in
  // schedule micro-ordering, but the tuned variant must never genuinely
  // lose — that is the paper's core claim.
  EXPECT_LE(tuned.seconds, native.seconds * 1.02)
      << "P=" << P << " nbytes=" << nbytes << " cores=" << cores
      << " native=" << native.seconds << " tuned=" << tuned.seconds;
  EXPECT_LT(tuned.traffic.msgs, native.traffic.msgs);
}

std::vector<GridPoint> grid() {
  std::vector<GridPoint> g;
  for (int P : {9, 16, 33, 64}) {
    for (std::uint64_t n : {std::uint64_t{12288}, std::uint64_t{524288},
                            std::uint64_t{1} << 21}) {
      for (int cores : {8, 24}) g.push_back({P, n, cores});
    }
  }
  return g;
}

INSTANTIATE_TEST_SUITE_P(Grid, TunedNeverSlower, ::testing::ValuesIn(grid()),
                         [](const ::testing::TestParamInfo<GridPoint>& info) {
                           return "P" + std::to_string(info.param.nranks) + "_n" +
                                  std::to_string(info.param.nbytes) + "_c" +
                                  std::to_string(info.param.cores);
                         });

// --------------------------------------------------------------- SMP path

TEST(SmpSim, TunedInterPhaseNotSlower) {
  const int P = 48;  // two 24-core nodes
  const Topology topo = Topology::hornet(P);
  netsim::SimSpec spec{topo, netsim::CostModel::hornet(), 6};
  auto run = [&](bool tuned) {
    return netsim::simulate_program(
        P, 200000,
        [&](Comm& c, std::span<std::byte> b) {
          coll::bcast_smp(c, b, 0, topo,
                          [tuned](Comm& l, std::span<std::byte> lb, int lr) {
                            if (tuned) {
                              core::bcast_scatter_ring_tuned(l, lb, lr);
                            } else {
                              coll::bcast_scatter_ring_native(l, lb, lr);
                            }
                          });
        },
        spec);
  };
  const auto native = run(false);
  const auto tuned = run(true);
  EXPECT_LE(tuned.seconds, native.seconds * 1.02);
  // With only 2 leaders the inter-node ring is tiny; traffic still shrinks.
  EXPECT_LE(tuned.traffic.msgs, native.traffic.msgs);
}

// ---------------------------------------------------------------- Laki too

TEST(LakiModel, SameTrendAsHornet) {
  // The paper: "the results from both Hornet and Laki basically deliver
  // the same bandwidth performance trend."
  for (int P : {10, 16}) {
    netsim::SimSpec spec{Topology(P, 8, Placement::Block),
                        netsim::CostModel::laki(), 4};
    const auto native = netsim::simulate_program(
        P, 1 << 20,
        [](Comm& c, std::span<std::byte> b) {
          coll::bcast_scatter_ring_native(c, b, 0);
        },
        spec);
    const auto tuned = netsim::simulate_program(
        P, 1 << 20,
        [](Comm& c, std::span<std::byte> b) {
          core::bcast_scatter_ring_tuned(c, b, 0);
        },
        spec);
    EXPECT_LE(tuned.seconds, native.seconds * 1.02) << "P=" << P;
  }
}

// ------------------------------------------------------- selector from env

TEST(Tuning, ReadsOverridesFromLookup) {
  const std::map<std::string, std::string> env{
      {"BSB_BCAST_SMSG_LIMIT", "4K"},
      {"BSB_BCAST_MMSG_LIMIT", "1M"},
      {"BSB_BCAST_MIN_PROCS", "2"},
      {"BSB_BCAST_USE_TUNED_RING", "off"},
  };
  const auto cfg = core::load_bcast_config([&](const std::string& k) {
    const auto it = env.find(k);
    return it == env.end() ? std::nullopt : std::optional<std::string>(it->second);
  });
  EXPECT_EQ(cfg.smsg_limit, 4096u);
  EXPECT_EQ(cfg.mmsg_limit, 1048576u);
  EXPECT_EQ(cfg.min_procs_for_scatter, 2);
  EXPECT_FALSE(cfg.use_tuned_ring);
  EXPECT_EQ(core::choose_bcast_algorithm(500000, 10, cfg),
            core::BcastAlgorithm::ScatterRingNative);
}

TEST(Tuning, UnsetVariablesKeepDefaults) {
  const auto cfg = core::load_bcast_config(
      [](const std::string&) { return std::nullopt; });
  EXPECT_EQ(cfg.smsg_limit, kMpichShortMsgLimit);
  EXPECT_EQ(cfg.mmsg_limit, kMpichMediumMsgLimit);
  EXPECT_TRUE(cfg.use_tuned_ring);
}

TEST(Tuning, RejectsGarbage) {
  auto env_with = [](std::string key, std::string value) {
    return [key = std::move(key), value = std::move(value)](const std::string& k)
               -> std::optional<std::string> {
      if (k == key) return value;
      return std::nullopt;
    };
  };
  EXPECT_THROW(core::load_bcast_config(env_with("BSB_BCAST_SMSG_LIMIT", "12x")),
               PreconditionError);
  EXPECT_THROW(core::load_bcast_config(env_with("BSB_BCAST_SMSG_LIMIT", "")),
               PreconditionError);
  EXPECT_THROW(
      core::load_bcast_config(env_with("BSB_BCAST_USE_TUNED_RING", "maybe")),
      PreconditionError);
  // Inconsistent thresholds.
  EXPECT_THROW(core::load_bcast_config(env_with("BSB_BCAST_MMSG_LIMIT", "1K")),
               PreconditionError);
}

TEST(Tuning, EnvRoundTrip) {
  ::setenv("BSB_BCAST_MIN_PROCS", "3", 1);
  const auto cfg = core::load_bcast_config_from_env();
  EXPECT_EQ(cfg.min_procs_for_scatter, 3);
  ::unsetenv("BSB_BCAST_MIN_PROCS");
}

// ---------------------------------------------------------- CPU accounting

TEST(CpuAccounting, TunedSavesHostProcessing) {
  // The paper's §IV argument: fewer transfers => less per-message host
  // work. Verify total CPU-busy time drops, and matches an analytic bound.
  const int P = 10;
  const std::uint64_t nbytes = 10240;  // eager chunks (1 KiB each)
  const netsim::CostModel cost = netsim::CostModel::hornet();
  auto run = [&](bool tuned) {
    const auto sched = trace::record_schedule(
        P, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
          if (tuned) {
            core::bcast_scatter_ring_tuned(comm, buffer, 0);
          } else {
            coll::bcast_scatter_ring_native(comm, buffer, 0);
          }
        });
    return netsim::replay_schedule(sched, trace::match_schedule(sched),
                                   Topology::single_node(P), cost);
  };
  const auto native = run(false);
  const auto tuned = run(true);
  EXPECT_LT(tuned.total_cpu_busy, native.total_cpu_busy);
  // Each skipped ring transfer saves at least o_send + o_recv of overhead.
  const double min_saving = static_cast<double>(core::tuned_ring_savings(P)) *
                            (cost.o_send + cost.o_recv);
  EXPECT_GE(native.total_cpu_busy - tuned.total_cpu_busy, min_saving * 0.999);
  // Per-rank vector is populated and sums to the total.
  double sum = 0;
  for (double b : tuned.cpu_busy) sum += b;
  EXPECT_DOUBLE_EQ(sum, tuned.total_cpu_busy);
}

// ------------------------------------------------------------- csv exports

TEST(Export, ScheduleAndMessagesCsv) {
  const auto sched = trace::record_schedule(
      4, 64, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_binomial(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  const std::string dir = testing::TempDir();
  trace::write_schedule_csv(sched, dir + "/sched.csv");
  trace::write_messages_csv(m, dir + "/msgs.csv");

  std::ifstream s(dir + "/sched.csv"), g(dir + "/msgs.csv");
  std::string line;
  std::getline(s, line);
  EXPECT_EQ(line, "rank,op,kind,dst,send_tag,send_bytes,send_off,src,"
                  "recv_tag,recv_cap,recv_off");
  int sched_rows = 0;
  while (std::getline(s, line)) ++sched_rows;
  EXPECT_EQ(sched_rows, static_cast<int>(sched.total_ops()));

  std::getline(g, line);
  EXPECT_EQ(line, "src,dst,tag,bytes,src_off,dst_off,src_op,dst_op");
  int msg_rows = 0;
  while (std::getline(g, line)) ++msg_rows;
  EXPECT_EQ(msg_rows, 3);  // binomial bcast over 4 ranks
}

// ---------------------------------------------------------------- timeline

TEST(Timeline, RendersReplayGantt) {
  const int P = 8;
  const auto sched = trace::record_schedule(
      P, 64 * P, [](Comm& comm, std::span<std::byte> buffer) {
        core::bcast_scatter_ring_tuned(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  const auto result = netsim::replay_schedule(sched, m, Topology::single_node(P),
                                              netsim::CostModel::hornet());
  const std::string gantt = netsim::render_timeline(sched, result, 64);
  EXPECT_NE(gantt.find("p0"), std::string::npos);
  EXPECT_NE(gantt.find("p7"), std::string::npos);
  EXPECT_NE(gantt.find('s'), std::string::npos);  // root streams sends
  EXPECT_NE(gantt.find('r'), std::string::npos);  // rank 7 only receives
  // Op-completion bookkeeping is consistent with rank finish times.
  for (int r = 0; r < P; ++r) {
    ASSERT_FALSE(result.op_complete[r].empty());
    EXPECT_DOUBLE_EQ(result.op_complete[r].back(), result.rank_finish[r]);
  }
}

TEST(Timeline, TruncatesLargeGroups) {
  const int P = 40;
  const auto sched = trace::record_schedule(
      P, 40, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_binomial(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  const auto result = netsim::replay_schedule(sched, m, Topology::hornet(P),
                                              netsim::CostModel::hornet());
  const std::string gantt = netsim::render_timeline(sched, result, 40, 8);
  EXPECT_NE(gantt.find("more ranks"), std::string::npos);
}

// ------------------------------------------- replay robustness across shapes

TEST(ReplayRobustness, EveryAlgorithmEveryShapeCompletes) {
  // Sweep every broadcast algorithm through the replay engine across rank
  // counts, sizes (straddling the eager threshold and protocol switches),
  // roots and topologies: the engine must complete every valid schedule
  // (no deadlock, no livelock guard trip) with positive makespan.
  struct Algo {
    core::BcastAlgorithm algo;
    bool pof2_only;
  };
  const std::vector<Algo> algos{
      {core::BcastAlgorithm::Binomial, false},
      {core::BcastAlgorithm::ScatterRdAllgather, true},
      {core::BcastAlgorithm::ScatterRingNative, false},
      {core::BcastAlgorithm::ScatterRingTuned, false},
  };
  for (const Algo& a : algos) {
    for (int P : {2, 3, 8, 24, 33}) {
      if (a.pof2_only && !is_pow2(static_cast<std::uint64_t>(P))) continue;
      for (std::uint64_t nbytes : {std::uint64_t{0}, std::uint64_t{100},
                                   std::uint64_t{12288}, std::uint64_t{300000}}) {
        const int root = P / 2;
        netsim::SimSpec spec{Topology(P, 8, Placement::Block),
                            netsim::CostModel::hornet(), 2};
        const auto r = netsim::simulate_program(
            P, nbytes,
            [&](Comm& comm, std::span<std::byte> buffer) {
              core::run_bcast_algorithm(a.algo, comm, buffer, root);
            },
            spec);
        EXPECT_GT(r.seconds, 0.0)
            << core::to_string(a.algo) << " P=" << P << " n=" << nbytes;
        EXPECT_GT(r.replay.total_cpu_busy, 0.0);
      }
    }
  }
}

TEST(ReplayRobustness, TinyCreditsStillComplete) {
  // Even with a single eager credit per channel, the tuned ring's
  // send-only streaming must degrade gracefully, not deadlock.
  netsim::CostModel cost = netsim::CostModel::hornet();
  cost.eager_credits = 1;
  netsim::SimSpec spec{Topology::single_node(10), cost, 4};
  const auto r = netsim::simulate_program(
      10, 20000,
      [](Comm& comm, std::span<std::byte> buffer) {
        core::bcast_scatter_ring_tuned(comm, buffer, 0);
      },
      spec);
  EXPECT_GT(r.seconds, 0.0);
}

// ------------------------------------------------ pipelining sanity at iters

TEST(IterationScaling, TimeGrowsSublinearlyForEagerBcast) {
  // time(8 iters) < 8 * time(1 iter) thanks to cross-iteration overlap;
  // and more iterations never take less total time.
  const int P = 12;
  const std::uint64_t nbytes = 24000;  // eager chunks
  auto time_for = [&](int iters) {
    netsim::SimSpec spec{Topology::single_node(P), netsim::CostModel::hornet(),
                        iters};
    return netsim::simulate_program(
               P, nbytes,
               [](Comm& c, std::span<std::byte> b) {
                 core::bcast_scatter_ring_tuned(c, b, 0);
               },
               spec)
        .seconds;
  };
  const double t1 = time_for(1), t4 = time_for(4), t8 = time_for(8);
  EXPECT_LT(t8, 8 * t1);
  EXPECT_GT(t8, t4);
  EXPECT_GT(t4, t1);
}

}  // namespace
}  // namespace bsb
