// Tests for the hierarchical collective subsystem (src/coll/hier/):
// hier::Topology's ragged node shapes and root-aware leader election,
// bcast_hier's byte-exact delivery and closed-form message counts, and the
// ragged bcast_smp overload. Property style: randomized node shapes from a
// fixed seed, partition/leader invariants at every P up to 1024, threaded
// byte oracles at the sizes a World can carry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "bsbutil/error.hpp"
#include "bsbutil/rng.hpp"
#include "coll/bcast_smp.hpp"
#include "coll/hier/bcast_hier.hpp"
#include "coll/hier/topology.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "core/transfer_analysis.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"
#include "trace/record.hpp"
#include "trace/schedule.hpp"

namespace bsb {
namespace {

/// A random ragged shape with `nranks` total ranks (deterministic in rng).
std::vector<int> random_shape(SplitMix64& rng, int nranks) {
  std::vector<int> sizes;
  int left = nranks;
  while (left > 0) {
    const int s = 1 + static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(std::min(left, 9))));
    sizes.push_back(s);
    left -= s;
  }
  return sizes;
}

// ---------------------------------------------------------- hier::Topology

TEST(HierTopology, PartitionInvariantsAcrossRandomShapesToP1024) {
  SplitMix64 rng(0x70b01ULL);
  for (int trial = 0; trial < 64; ++trial) {
    const int P = 2 + static_cast<int>(rng.next_below(1023));
    const hier::Topology topo(random_shape(rng, P));
    ASSERT_EQ(topo.nranks(), P);
    int sum = 0;
    for (int n = 0; n < topo.num_nodes(); ++n) {
      ASSERT_GE(topo.node_size(n), 1);
      ASSERT_EQ(topo.node_begin(n), sum);
      const std::vector<int> ranks = topo.ranks_on_node(n);
      ASSERT_EQ(static_cast<int>(ranks.size()), topo.node_size(n));
      for (int i = 0; i < topo.node_size(n); ++i) {
        ASSERT_EQ(ranks[static_cast<std::size_t>(i)], sum + i);
        ASSERT_EQ(topo.node_of(sum + i), n);
      }
      sum += topo.node_size(n);
    }
    ASSERT_EQ(sum, P);
  }
}

TEST(HierTopology, RootAwareLeaderElectionProperties) {
  SplitMix64 rng(0x1eade5ULL);
  for (int trial = 0; trial < 64; ++trial) {
    const int P = 2 + static_cast<int>(rng.next_below(1023));
    const hier::Topology topo(random_shape(rng, P));
    const int root = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(P)));
    const std::vector<int> leaders = topo.leaders(root);
    ASSERT_EQ(static_cast<int>(leaders.size()), topo.num_nodes());
    int leader_count = 0;
    for (int r = 0; r < P; ++r) leader_count += topo.is_leader(r, root);
    ASSERT_EQ(leader_count, topo.num_nodes());
    for (int n = 0; n < topo.num_nodes(); ++n) {
      const int lead = topo.leader_of(n, root);
      ASSERT_EQ(leaders[static_cast<std::size_t>(n)], lead);
      ASSERT_EQ(topo.node_of(lead), n);
      if (n == topo.node_of(root)) {
        ASSERT_EQ(lead, root);  // the root leads its own node
      } else {
        ASSERT_EQ(lead, topo.node_begin(n));  // lowest rank elsewhere
      }
      if (n > 0) {
        ASSERT_GT(lead, leaders[static_cast<std::size_t>(n - 1)]);
      }
    }
  }
}

TEST(HierTopology, UniformAndStringRoundTrip) {
  const hier::Topology u = hier::Topology::uniform(11, 4);
  EXPECT_EQ(u.to_string(), "4,4,3");
  const hier::Topology parsed = hier::Topology::from_string("4,4,3");
  EXPECT_EQ(parsed.nranks(), 11);
  EXPECT_EQ(parsed.num_nodes(), 3);

  SplitMix64 rng(0x57717ULL);
  for (int trial = 0; trial < 32; ++trial) {
    const int P = 2 + static_cast<int>(rng.next_below(200));
    const hier::Topology topo(random_shape(rng, P));
    const hier::Topology again = hier::Topology::from_string(topo.to_string());
    EXPECT_EQ(again.node_sizes(), topo.node_sizes());
  }
}

TEST(HierTopology, RejectsBadShapes) {
  EXPECT_THROW(hier::Topology(std::vector<int>{}), PreconditionError);
  EXPECT_THROW(hier::Topology(std::vector<int>{3, 0, 2}), PreconditionError);
  EXPECT_THROW(hier::Topology::from_string(""), PreconditionError);
  EXPECT_THROW(hier::Topology::from_string("4,x"), PreconditionError);
  EXPECT_THROW(hier::Topology::from_string("4,-1"), PreconditionError);
}

// ----------------------------------------- closed-form counts (recorded)

std::uint64_t recorded_sends(const trace::Schedule& sched) {
  std::uint64_t sends = 0;
  for (const auto& ops : sched.ops) {
    for (const trace::Op& op : ops) sends += op.has_send();
  }
  return sends;
}

trace::Schedule record_hier(const hier::Topology& topo, std::uint64_t nbytes,
                            int root, bool tuned) {
  return trace::record_schedule(
      topo.nranks(), nbytes, [&](Comm& comm, std::span<std::byte> buf) {
        if (tuned) {
          core::bcast_hier_tuned(comm, buf, root, topo);
        } else {
          core::bcast_hier_native(comm, buf, root, topo);
        }
      });
}

TEST(BcastHier, RecordedCountsMatchClosedFormsToP1024) {
  // No threads: recording scales to the acceptance sizes. Random ragged
  // shapes and roots; both ring flavours against their closed forms.
  SplitMix64 rng(0xc0047ULL);
  for (int trial = 0; trial < 12; ++trial) {
    const int P = 2 + static_cast<int>(rng.next_below(1023));
    const hier::Topology topo(random_shape(rng, P));
    const int L = topo.num_nodes();
    const int root = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(P)));
    const std::uint64_t nbytes = 1 + rng.next_below(1 << 16);
    for (const bool tuned : {false, true}) {
      const trace::Schedule sched = record_hier(topo, nbytes, root, tuned);
      ASSERT_EQ(recorded_sends(sched),
                core::hier_bcast_transfers(P, L, nbytes, tuned))
          << "P=" << P << " nodes=" << topo.to_string() << " root=" << root
          << " nbytes=" << nbytes << " tuned=" << tuned;
      // Non-leaders: one fan-out receive, nothing else.
      for (int r = 0; r < P; ++r) {
        if (topo.is_leader(r, root)) continue;
        ASSERT_EQ(sched.ops[static_cast<std::size_t>(r)].size(), 1u);
        ASSERT_TRUE(sched.ops[static_cast<std::size_t>(r)][0].has_recv());
      }
    }
  }
}

TEST(BcastHier, DegenerateShapesFoldIntoFlatAlgorithms) {
  const std::uint64_t nbytes = 4096;
  // One node: a pure fan-out, P - 1 messages.
  const hier::Topology one_node({7});
  EXPECT_EQ(recorded_sends(record_hier(one_node, nbytes, 3, true)), 6u);
  // All-singleton nodes: exactly the flat scatter + tuned-ring broadcast.
  const int P = 10;
  const hier::Topology singletons(std::vector<int>(P, 1));
  EXPECT_EQ(recorded_sends(record_hier(singletons, nbytes, 0, true)),
            core::scatter_transfers(P, nbytes) + core::tuned_ring_transfers(P));
  EXPECT_EQ(recorded_sends(record_hier(singletons, nbytes, 0, false)),
            core::scatter_transfers(P, nbytes) + core::native_ring_transfers(P));
}

TEST(BcastHier, TunedNeverSendsMoreThanNative) {
  SplitMix64 rng(0x5a41ULL);
  for (int trial = 0; trial < 16; ++trial) {
    const int P = 2 + static_cast<int>(rng.next_below(500));
    const hier::Topology topo(random_shape(rng, P));
    const std::uint64_t nbytes = 1 << 15;
    const std::uint64_t native =
        core::hier_bcast_transfers(P, topo.num_nodes(), nbytes, false);
    const std::uint64_t tuned =
        core::hier_bcast_transfers(P, topo.num_nodes(), nbytes, true);
    ASSERT_LE(tuned, native);
    if (topo.num_nodes() > 2) {
      ASSERT_LT(tuned, native);
    }
  }
}

// ------------------------------------------------- byte-exact (threaded)

void run_hier_oracle(const std::vector<int>& shape, int root, bool tuned,
                     std::uint64_t nbytes, std::uint64_t seed) {
  const hier::Topology topo(shape);
  mpisim::World world(topo.nranks());
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(nbytes);
    fill_pattern(buf, ~seed);  // garbage
    if (comm.rank() == root) fill_pattern(buf, seed);
    core::HierBcastOptions opt;
    opt.tuned = tuned;
    core::bcast_hier(comm, buf, root, topo, opt);
    ASSERT_EQ(first_pattern_mismatch(buf, seed), buf.size())
        << "shape=" << topo.to_string() << " root=" << root
        << " tuned=" << tuned << " rank=" << comm.rank();
  });
}

TEST(BcastHier, ByteExactOnRandomRaggedShapes) {
  SplitMix64 rng(0xb17e5ULL);
  for (int trial = 0; trial < 10; ++trial) {
    const int P = 2 + static_cast<int>(rng.next_below(39));
    const std::vector<int> shape = random_shape(rng, P);
    const int root = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(P)));
    const std::uint64_t nbytes = 1 + rng.next_below(40000);
    run_hier_oracle(shape, root, trial % 2 == 0, nbytes,
                    1000 + static_cast<std::uint64_t>(trial));
  }
}

TEST(BcastHier, ByteExactEveryRootOnAWedgeShape) {
  // 1-core node ahead of bigger ones: every root exercises a different
  // leader set (the root-leads-its-node election moves one leader around).
  const std::vector<int> shape{1, 5, 3, 2};
  for (int root = 0; root < 11; ++root) {
    run_hier_oracle(shape, root, true, 12288,
                    500 + static_cast<std::uint64_t>(root));
  }
}

// -------------------------------------------------- ragged bcast_smp

TEST(BcastSmp, RaggedTopologyOverloadIsByteExact) {
  SplitMix64 rng(0x53b9ULL);
  for (int trial = 0; trial < 8; ++trial) {
    const int P = 2 + static_cast<int>(rng.next_below(30));
    const std::vector<int> shape = random_shape(rng, P);
    const hier::Topology topo(shape);
    const int root = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(P)));
    const std::uint64_t seed = 2000 + static_cast<std::uint64_t>(trial);
    mpisim::World world(P);
    world.run([&](mpisim::ThreadComm& comm) {
      std::vector<std::byte> buf(9001);
      fill_pattern(buf, ~seed);
      if (comm.rank() == root) fill_pattern(buf, seed);
      coll::bcast_smp(comm, buf, root, topo,
                      [](Comm& c, std::span<std::byte> b, int r) {
                        core::bcast_scatter_ring_tuned(c, b, r);
                      });
      ASSERT_EQ(first_pattern_mismatch(buf, seed), buf.size())
          << "shape=" << topo.to_string() << " root=" << root
          << " rank=" << comm.rank();
    });
  }
}

}  // namespace
}  // namespace bsb
