// Tests for the thread-backed message-passing runtime: matching semantics
// (FIFO non-overtaking, wildcards), eager vs rendezvous behaviour,
// full-duplex sendrecv, truncation errors on both sides, barrier,
// nonblocking requests, traffic counters, and the deadlock watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bsbutil/rng.hpp"
#include "mpisim/errors.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

namespace bsb::mpisim {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(World, RejectsBadConfig) {
  EXPECT_THROW(World(0), PreconditionError);
  WorldConfig cfg;
  cfg.watchdog_seconds = 0;
  EXPECT_THROW(World(2, cfg), PreconditionError);
}

TEST(P2P, BasicSendRecvEager) {
  World world(2);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      const auto msg = bytes_of({1, 2, 3});
      comm.send(msg, 1, 5);
    } else {
      std::vector<std::byte> buf(3);
      const Status st = comm.recv(buf, 0, 5);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.bytes, 3u);
      EXPECT_EQ(buf, bytes_of({1, 2, 3}));
    }
  });
}

TEST(P2P, BasicSendRecvRendezvous) {
  WorldConfig cfg;
  cfg.eager_threshold = 16;  // force rendezvous
  World world(2, cfg);
  world.run([](ThreadComm& comm) {
    std::vector<std::byte> data(1024);
    if (comm.rank() == 0) {
      fill_pattern(data, 7);
      comm.send(data, 1, 0);
    } else {
      const Status st = comm.recv(data, 0, 0);
      EXPECT_EQ(st.bytes, 1024u);
      EXPECT_EQ(first_pattern_mismatch(data, 7), data.size());
    }
  });
}

TEST(P2P, ReceiveSmallerThanCapacityReportsActual) {
  World world(2);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      const auto msg = bytes_of({9});
      comm.send(msg, 1, 1);
    } else {
      std::vector<std::byte> buf(100);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, 1u);
      EXPECT_EQ(std::to_integer<int>(buf[0]), 9);
    }
  });
}

TEST(P2P, ZeroByteMessageMatches) {
  World world(2);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      comm.send({}, 1, 2);
    } else {
      const Status st = comm.recv({}, 0, 2);
      EXPECT_EQ(st.bytes, 0u);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(P2P, NonOvertakingSameTag) {
  // Two sends with equal (src, tag) must arrive in order.
  World world(2);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      comm.send(bytes_of({1}), 1, 0);
      comm.send(bytes_of({2}), 1, 0);
      comm.send(bytes_of({3}), 1, 0);
    } else {
      std::byte b{};
      for (int expect = 1; expect <= 3; ++expect) {
        comm.recv({&b, 1}, 0, 0);
        EXPECT_EQ(std::to_integer<int>(b), expect);
      }
    }
  });
}

TEST(P2P, TagSelectsOutOfOrder) {
  // A receive for tag 8 must match the tag-8 message even when a tag-9
  // message arrived first.
  World world(2);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      comm.send(bytes_of({9}), 1, 9);
      comm.send(bytes_of({8}), 1, 8);
    } else {
      std::byte b{};
      comm.recv({&b, 1}, 0, 8);
      EXPECT_EQ(std::to_integer<int>(b), 8);
      comm.recv({&b, 1}, 0, 9);
      EXPECT_EQ(std::to_integer<int>(b), 9);
    }
  });
}

TEST(P2P, AnySourceAnyTag) {
  World world(3);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 2) {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        std::byte b{};
        const Status st = comm.recv({&b, 1}, kAnySource, kAnyTag);
        EXPECT_TRUE(st.source == 0 || st.source == 1);
        sum += std::to_integer<int>(b);
      }
      EXPECT_EQ(sum, 30);
    } else {
      comm.send(bytes_of({10 * (comm.rank() + 1)}), 2, comm.rank());
    }
  });
}

TEST(P2P, SelfSendEager) {
  World world(1);
  world.run([](ThreadComm& comm) {
    comm.send(bytes_of({42}), 0, 0);
    std::byte b{};
    comm.recv({&b, 1}, 0, 0);
    EXPECT_EQ(std::to_integer<int>(b), 42);
  });
}

TEST(SendRecv, RingOfRendezvousDoesNotDeadlock) {
  // The enclosed ring pattern: every rank sendrecvs large messages
  // simultaneously. Full-duplex semantics must avoid deadlock.
  WorldConfig cfg;
  cfg.eager_threshold = 0;  // everything rendezvous
  cfg.watchdog_seconds = 20;
  World world(6, cfg);
  world.run([](ThreadComm& comm) {
    const int P = comm.size();
    const int right = (comm.rank() + 1) % P;
    const int left = (comm.rank() + P - 1) % P;
    std::vector<std::byte> out(4096), in(4096);
    fill_pattern(out, comm.rank());
    for (int step = 0; step < 5; ++step) {
      const Status st = comm.sendrecv(out, right, 0, in, left, 0);
      EXPECT_EQ(st.bytes, 4096u);
      EXPECT_EQ(first_pattern_mismatch(in, left), in.size());
    }
  });
}

TEST(SendRecv, SelfExchange) {
  World world(1);
  world.run([](ThreadComm& comm) {
    auto out = bytes_of({7});
    std::byte in{};
    comm.sendrecv(out, 0, 0, {&in, 1}, 0, 0);
    EXPECT_EQ(std::to_integer<int>(in), 7);
  });
}

TEST(Truncation, EagerRaisesAtReceiver) {
  World world(2);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      comm.send(bytes_of({1, 2, 3, 4}), 1, 0);
    } else {
      // Wait until the eager message is buffered before receiving, so the
      // mismatch is detected at match time on the RECEIVE side. If the
      // receive were posted first, the error would (correctly) be raised
      // at the sender instead — see PostedReceiveRaisesAtSender.
      while (!comm.iprobe(0, 0)) std::this_thread::yield();
      std::vector<std::byte> small(2);
      EXPECT_THROW(comm.recv(small, 0, 0), TruncationError);
    }
  });
}

TEST(Truncation, PostedReceiveRaisesAtSender) {
  WorldConfig cfg;
  cfg.watchdog_seconds = 20;
  World world(2, cfg);
  std::atomic<bool> posted{false};
  world.run([&](ThreadComm& comm) {
    if (comm.rank() == 1) {
      std::vector<std::byte> small(2);
      Request r = comm.irecv(small, 0, 0);
      posted.store(true);
      EXPECT_THROW(r.wait(), TruncationError);
    } else {
      while (!posted.load()) std::this_thread::yield();
      std::vector<std::byte> big(10);
      // The posted buffer is too small; the sender sees the error too.
      EXPECT_THROW(comm.send(big, 1, 0), TruncationError);
    }
  });
}

TEST(Truncation, RendezvousRaisesOnBothSides) {
  WorldConfig cfg;
  cfg.eager_threshold = 4;
  cfg.watchdog_seconds = 20;
  World world(2, cfg);
  std::atomic<int> errors{0};
  try {
    world.run([&](ThreadComm& comm) {
      std::vector<std::byte> big(64);
      if (comm.rank() == 0) {
        try {
          comm.send(big, 1, 0);
        } catch (const TruncationError&) {
          ++errors;
          throw;
        }
      } else {
        std::vector<std::byte> small(8);
        try {
          comm.recv(small, 0, 0);
        } catch (const TruncationError&) {
          ++errors;
          throw;
        }
      }
    });
    FAIL() << "expected TruncationError";
  } catch (const TruncationError&) {
  }
  EXPECT_EQ(errors.load(), 2);
}

TEST(Requests, IsendIrecvOverlap) {
  World world(2);
  world.run([](ThreadComm& comm) {
    std::vector<std::byte> out(128), in(128);
    fill_pattern(out, comm.rank());
    Request r = comm.irecv(in, 1 - comm.rank(), 0);
    Request s = comm.isend(out, 1 - comm.rank(), 0);
    s.wait();
    const Status st = r.wait_status();
    EXPECT_EQ(st.bytes, 128u);
    EXPECT_EQ(first_pattern_mismatch(in, 1 - comm.rank()), in.size());
  });
}

TEST(Requests, TestPollsCompletion) {
  World world(2);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> in(8);
      Request r = comm.irecv(in, 1, 0);
      comm.barrier();  // rank 1 sends before the barrier
      // The eager message is in flight or arrived; wait() then test().
      r.wait();
      EXPECT_TRUE(r.test());
    } else {
      std::vector<std::byte> out(8);
      comm.send(out, 0, 0);
      comm.barrier();
    }
  });
}

TEST(Requests, EmptyRequestIsComplete) {
  Request r;
  EXPECT_TRUE(r.test());
  EXPECT_NO_THROW(r.wait());
}

// Regression: test() used to report a truncation-failed request as simply
// "done", silently dropping the stored error unless the caller also called
// wait_status() — test() + destruction swallowed the TruncationError.
// test() must surface the completion error itself.
TEST(Requests, TestSurfacesTruncationError) {
  WorldConfig cfg;
  cfg.watchdog_seconds = 20;
  World world(2, cfg);
  std::atomic<bool> posted{false};
  world.run([&](ThreadComm& comm) {
    if (comm.rank() == 1) {
      std::vector<std::byte> small(2);
      Request r = comm.irecv(small, 0, 0);
      posted.store(true);
      bool threw = false;
      for (;;) {
        try {
          if (r.test()) break;  // old contract: true here, error dropped
        } catch (const TruncationError&) {
          threw = true;
          break;
        }
        std::this_thread::yield();
      }
      EXPECT_TRUE(threw) << "test() completed without surfacing the error";
    } else {
      while (!posted.load()) std::this_thread::yield();
      std::vector<std::byte> big(10);
      EXPECT_THROW(comm.send(big, 1, 0), TruncationError);
    }
  });
}

// Regression: a rendezvous isend advertises a span over the caller's
// buffer into the destination mailbox. Destroying the Request without
// wait() used to leave that span dangling — a later irecv would memcpy
// from freed memory (ASan: heap-use-after-free). The destructor must
// cancel the advertisement, so the peer sees nothing (and a recv for it
// hits the watchdog instead of reading a dead buffer).
TEST(Requests, AbandonedRendezvousSendIsCancelled) {
  WorldConfig cfg;
  cfg.eager_threshold = 4;  // 64-byte message goes rendezvous
  cfg.watchdog_seconds = 0.3;
  World world(2, cfg);
  EXPECT_THROW(world.run([](ThreadComm& comm) {
                 if (comm.rank() == 0) {
                   {
                     std::vector<std::byte> big(64);
                     fill_pattern(big, 3);
                     Request s = comm.isend(big, 1, 7);
                     // abandoned: destroyed without wait(), then the
                     // buffer itself dies
                   }
                   comm.barrier();
                 } else {
                   comm.barrier();
                   EXPECT_FALSE(comm.iprobe(0, 7).has_value())
                       << "abandoned rendezvous advertisement still visible";
                   std::vector<std::byte> in(64);
                   comm.recv(in, 0, 7);  // nothing advertised => watchdog
                 }
               }),
               DeadlockError);
}

// Regression: wait_all used to sit out the FULL per-request watchdog on
// every remaining request after the first failure (a single fault could
// stall a fuzz run for N x 60 s). It must drain the rest with a short
// bounded timeout and report how many were abandoned.
TEST(Requests, WaitAllDrainsQuicklyAfterFirstFailure) {
  WorldConfig cfg;
  cfg.watchdog_seconds = 30;  // old behaviour: 3 x 30 s stall
  World world(2, cfg);
  std::atomic<bool> posted{false};
  world.run([&](ThreadComm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> small(2);
      std::vector<std::byte> bufs[3] = {std::vector<std::byte>(8),
                                        std::vector<std::byte>(8),
                                        std::vector<std::byte>(8)};
      std::vector<Request> rs;
      rs.push_back(comm.irecv(small, 1, 0));  // will fail: truncation
      for (int i = 0; i < 3; ++i) {
        rs.push_back(comm.irecv(bufs[i], 1, i + 1));  // never sent
      }
      posted.store(true);
      const auto t0 = std::chrono::steady_clock::now();
      try {
        wait_all(rs);
        FAIL() << "expected TruncationError";
      } catch (const TruncationError& e) {
        EXPECT_NE(std::string(e.what()).find("3 request(s) abandoned"),
                  std::string::npos)
            << "abandonment not reported: " << e.what();
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      EXPECT_LT(elapsed, 15.0) << "wait_all stalled on abandoned requests";
    } else {
      while (!posted.load()) std::this_thread::yield();
      std::vector<std::byte> big(10);
      EXPECT_THROW(comm.send(big, 0, 0), TruncationError);
    }
  });
}

TEST(Barrier, Synchronizes) {
  World world(8);
  std::atomic<int> before{0};
  world.run([&](ThreadComm& comm) {
    before.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(before.load(), 8);
    comm.barrier();
  });
}

TEST(Watchdog, RecvWithNoSenderThrowsDeadlock) {
  WorldConfig cfg;
  cfg.watchdog_seconds = 0.2;
  World world(2, cfg);
  EXPECT_THROW(world.run([](ThreadComm& comm) {
                 if (comm.rank() == 0) {
                   std::byte b{};
                   comm.recv({&b, 1}, 1, 0);  // never sent
                 }
               }),
               DeadlockError);
}

TEST(Watchdog, BarrierMissingRankThrowsDeadlock) {
  WorldConfig cfg;
  cfg.watchdog_seconds = 0.2;
  World world(3, cfg);
  EXPECT_THROW(world.run([](ThreadComm& comm) {
                 if (comm.rank() != 2) comm.barrier();
               }),
               DeadlockError);
}

TEST(Probe, IprobeSeesBufferedMessageWithoutConsuming) {
  World world(2);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      comm.send(bytes_of({1, 2, 3}), 1, 5);
      comm.barrier();
    } else {
      comm.barrier();  // guarantees the eager message arrived
      const auto st = comm.iprobe(0, 5);
      ASSERT_TRUE(st.has_value());
      EXPECT_EQ(st->source, 0);
      EXPECT_EQ(st->tag, 5);
      EXPECT_EQ(st->bytes, 3u);
      // Probing again still sees it; receiving consumes it.
      EXPECT_TRUE(comm.iprobe(kAnySource, kAnyTag).has_value());
      std::vector<std::byte> buf(st->bytes);
      comm.recv(buf, st->source, st->tag);
      EXPECT_FALSE(comm.iprobe(0, 5).has_value());
    }
  });
}

TEST(Probe, IprobeEmptyMailbox) {
  World world(2);
  world.run([](ThreadComm& comm) {
    EXPECT_FALSE(comm.iprobe(kAnySource, kAnyTag).has_value());
  });
}

TEST(Probe, BlockingProbeWaitsForArrival) {
  World world(2);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      comm.send(bytes_of({7, 8}), 1, 2);
    } else {
      const Status st = comm.probe(0, 2);  // blocks until the send lands
      EXPECT_EQ(st.bytes, 2u);
      std::vector<std::byte> buf(st.bytes);
      comm.recv(buf, 0, 2);
      EXPECT_EQ(std::to_integer<int>(buf[1]), 8);
    }
  });
}

TEST(Probe, ProbeSeesRendezvousSizeBeforeTransfer) {
  WorldConfig cfg;
  cfg.eager_threshold = 4;  // force rendezvous
  World world(2, cfg);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> big(1000);
      comm.send(big, 1, 0);  // blocks until matched
    } else {
      const Status st = comm.probe(0, 0);
      EXPECT_EQ(st.bytes, 1000u);  // size known from the RTS
      std::vector<std::byte> buf(st.bytes);
      comm.recv(buf, 0, 0);
    }
  });
}

TEST(Probe, WatchdogFiresWithNoSender) {
  WorldConfig cfg;
  cfg.watchdog_seconds = 0.2;
  World world(2, cfg);
  EXPECT_THROW(world.run([](ThreadComm& comm) {
                 if (comm.rank() == 0) comm.probe(1, 0);
               }),
               DeadlockError);
}

TEST(Stats, CountsMessagesAndBytes) {
  World world(3);
  world.run([](ThreadComm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::vector<std::byte>(10), 1, 0);
      comm.send(std::vector<std::byte>(20), 2, 0);
      comm.send(std::vector<std::byte>(30), 2, 1);
    } else if (comm.rank() == 1) {
      std::vector<std::byte> b(10);
      comm.recv(b, 0, 0);
    } else {
      std::vector<std::byte> b(30);
      comm.recv(b, 0, 0);
      comm.recv(b, 0, 1);
    }
  });
  EXPECT_EQ(world.pair_stats(0, 1).msgs, 1u);
  EXPECT_EQ(world.pair_stats(0, 1).bytes, 10u);
  EXPECT_EQ(world.pair_stats(0, 2).msgs, 2u);
  EXPECT_EQ(world.pair_stats(0, 2).bytes, 50u);
  EXPECT_EQ(world.total_msgs(), 3u);
  EXPECT_EQ(world.total_bytes(), 60u);
  world.reset_stats();
  EXPECT_EQ(world.total_msgs(), 0u);
}

TEST(Stress, ManyRanksManyMessages) {
  // All-to-one funnel with mixed tags and sizes, repeated; exercises
  // matching under contention.
  WorldConfig cfg;
  cfg.watchdog_seconds = 30;
  World world(9, cfg);
  world.run([](ThreadComm& comm) {
    constexpr int kRounds = 25;
    if (comm.rank() == 0) {
      std::vector<std::byte> buf(512);
      for (int round = 0; round < kRounds; ++round) {
        for (int src = 1; src < comm.size(); ++src) {
          const Status st = comm.recv(buf, src, round % 3);
          EXPECT_EQ(st.bytes, static_cast<std::size_t>(src * (round % 7 + 1)));
          EXPECT_EQ(first_pattern_mismatch(
                        std::span<const std::byte>(buf.data(), st.bytes),
                        static_cast<std::uint64_t>(src) * 1000 + round),
                    st.bytes);
        }
      }
    } else {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::byte> msg(comm.rank() * (round % 7 + 1));
        fill_pattern(msg, static_cast<std::uint64_t>(comm.rank()) * 1000 + round);
        comm.send(msg, 0, round % 3);
      }
    }
  });
  EXPECT_EQ(world.total_msgs(), 8u * 25u);
}

TEST(Run, PropagatesFirstException) {
  WorldConfig cfg;
  cfg.watchdog_seconds = 0.2;
  World world(2, cfg);
  EXPECT_THROW(world.run([](ThreadComm& comm) {
                 if (comm.rank() == 0) throw Error("rank 0 exploded");
               }),
               Error);
}

TEST(Run, RejectsBadPeerArguments) {
  World world(2);
  world.run([](ThreadComm& comm) {
    std::byte b{};
    EXPECT_THROW(comm.send({&b, 1}, 7, 0), PreconditionError);
    EXPECT_THROW(comm.send({&b, 1}, 0, -3), PreconditionError);
    EXPECT_THROW(comm.recv({&b, 1}, 9, 0), PreconditionError);
  });
}

// ------------------------------------------------- adversarial negatives

// An intentional cyclic wait: every rank issues a rendezvous-size blocking
// send to its right neighbour before posting any receive, so the whole
// ring blocks on unmatched sends. The watchdog must convert the hang into
// DeadlockError instead of wedging the suite.
TEST(Watchdog, CyclicRendezvousWaitThrowsDeadlock) {
  WorldConfig cfg;
  cfg.eager_threshold = 16;  // everything below blocks until matched
  cfg.watchdog_seconds = 0.2;
  World world(3, cfg);
  EXPECT_THROW(world.run([](ThreadComm& comm) {
                 std::vector<std::byte> big(64);
                 const int right = (comm.rank() + 1) % comm.size();
                 comm.send(big, right, 0);  // never matched: cycle
                 std::vector<std::byte> in(64);
                 comm.recv(in, (comm.rank() + 2) % comm.size(), 0);
               }),
               DeadlockError);
}

// Wildcard receives must still observe per-source non-overtaking order:
// two sequence-numbered streams interleave arbitrarily ACROSS sources, but
// each source's own messages arrive in send order.
TEST(Wildcard, AnySourceAnyTagPreservesPerSourceOrder) {
  constexpr int kPerSource = 20;
  World world(3);
  world.run([&](ThreadComm& comm) {
    if (comm.rank() != 0) {
      for (int i = 0; i < kPerSource; ++i) {
        const auto payload = bytes_of({comm.rank(), i});
        comm.send(payload, 0, /*tag=*/i % 3);
      }
      return;
    }
    int next_from[3] = {0, 0, 0};
    for (int i = 0; i < 2 * kPerSource; ++i) {
      std::vector<std::byte> in(2);
      const Status st = comm.recv(in, kAnySource, kAnyTag);
      ASSERT_EQ(st.bytes, 2u);
      const int src = static_cast<int>(in[0]);
      const int seq = static_cast<int>(in[1]);
      ASSERT_EQ(src, st.source);
      ASSERT_EQ(seq, next_from[src]++)
          << "message " << i << " from rank " << src << " overtook";
    }
    EXPECT_EQ(next_from[1], kPerSource);
    EXPECT_EQ(next_from[2], kPerSource);
  });
}

// Per-source order holds even under fault injection (delays + cross-source
// reordering + protocol flips): the reorderer may only jump arrivals over
// OTHER sources' messages.
TEST(Wildcard, PerSourceOrderSurvivesFaultInjection) {
  constexpr int kPerSource = 30;
  WorldConfig cfg;
  cfg.eager_threshold = 4;
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xFEED;
  cfg.faults.delay_prob = 0.2;
  cfg.faults.max_delay_us = 50;
  cfg.faults.reorder_prob = 0.8;
  cfg.faults.force_rendezvous_prob = 0.3;
  cfg.faults.force_eager_prob = 0.3;
  World world(4, cfg);
  world.run([&](ThreadComm& comm) {
    if (comm.rank() != 0) {
      for (int i = 0; i < kPerSource; ++i) {
        const auto payload = bytes_of({comm.rank(), i});
        comm.send(payload, 0, 0);
      }
      return;
    }
    int next_from[4] = {0, 0, 0, 0};
    for (int i = 0; i < 3 * kPerSource; ++i) {
      std::vector<std::byte> in(2);
      const Status st = comm.recv(in, kAnySource, kAnyTag);
      const int src = static_cast<int>(in[0]);
      const int seq = static_cast<int>(in[1]);
      ASSERT_EQ(src, st.source);
      ASSERT_EQ(seq, next_from[src]++)
          << "fault injection broke per-source FIFO (message " << i << ")";
    }
  });
}

// Truncation on both sides of an oversized match when the receive uses
// wildcards: the receiver gets TruncationError, and a rendezvous sender
// blocked on the same match gets it too instead of hanging.
TEST(Truncation, WildcardReceiveRaisesOnBothSides) {
  WorldConfig cfg;
  cfg.eager_threshold = 4;  // the 8-byte message goes rendezvous
  World world(2, cfg);
  std::atomic<int> truncations{0};
  try {
    world.run([&](ThreadComm& comm) {
      if (comm.rank() == 0) {
        std::vector<std::byte> big(8);
        try {
          comm.send(big, 1, 5);
        } catch (const TruncationError&) {
          truncations.fetch_add(1);
          throw;
        }
      } else {
        std::vector<std::byte> small(4);
        try {
          comm.recv(small, kAnySource, kAnyTag);
        } catch (const TruncationError&) {
          truncations.fetch_add(1);
          throw;
        }
      }
    });
    FAIL() << "expected TruncationError";
  } catch (const TruncationError&) {
  }
  EXPECT_EQ(truncations.load(), 2);
}

}  // namespace
}  // namespace bsb::mpisim
