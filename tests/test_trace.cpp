// Tests for the trace layer: recording fidelity, MPI matching semantics,
// symbolic coverage validation (including its failure detectors: garbage
// sends, misaligned delivery, deadlock, incomplete coverage), traffic
// counters, replication, and event-table rendering.
#include <gtest/gtest.h>

#include "coll/allgather_bruck.hpp"
#include "coll/bcast_binomial.hpp"
#include "comm/topology.hpp"
#include "trace/counters.hpp"
#include "trace/coverage.hpp"
#include "trace/event_table.hpp"
#include "trace/match.hpp"
#include "trace/record.hpp"

namespace bsb::trace {
namespace {

Op send_op(int dst, int tag, std::uint64_t bytes, std::uint64_t off) {
  Op op;
  op.kind = OpKind::Send;
  op.dst = dst;
  op.send_tag = tag;
  op.send_bytes = bytes;
  op.send_off = off;
  return op;
}

Op recv_op(int src, int tag, std::uint64_t cap, std::uint64_t off) {
  Op op;
  op.kind = OpKind::Recv;
  op.src = src;
  op.recv_tag = tag;
  op.recv_cap = cap;
  op.recv_off = off;
  return op;
}

Op barrier_op() { return Op{}; }

// ----------------------------------------------------------------- record

TEST(Record, CapturesBinomialBcastShape) {
  const auto sched = record_schedule(
      4, 100, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_binomial(comm, buffer, 0);
      });
  ASSERT_EQ(sched.nranks, 4);
  EXPECT_EQ(sched.nbytes, 100u);
  // Root sends to 2 then 1; rank 1 receives only; rank 2 receives then
  // forwards to 3; rank 3 receives only.
  ASSERT_EQ(sched.ops[0].size(), 2u);
  EXPECT_EQ(sched.ops[0][0].kind, OpKind::Send);
  EXPECT_EQ(sched.ops[0][0].dst, 2);
  EXPECT_EQ(sched.ops[0][1].dst, 1);
  ASSERT_EQ(sched.ops[2].size(), 2u);
  EXPECT_EQ(sched.ops[2][0].kind, OpKind::Recv);
  EXPECT_EQ(sched.ops[2][1].kind, OpKind::Send);
  EXPECT_EQ(sched.ops[2][1].dst, 3);
  EXPECT_EQ(sched.ops[3].size(), 1u);
  EXPECT_EQ(sched.total_sends(), 3u);
  EXPECT_EQ(sched.total_send_bytes(), 300u);
}

TEST(Record, OffsetsAreBufferRelative) {
  const auto sched = record_schedule(
      2, 64, [](Comm& comm, std::span<std::byte> buffer) {
        if (comm.rank() == 0) {
          comm.send(std::span<const std::byte>(buffer).subspan(16, 8), 1, 0);
        } else {
          comm.recv(buffer.subspan(16, 8), 0, 0);
        }
      });
  EXPECT_EQ(sched.ops[0][0].send_off, 16u);
  EXPECT_EQ(sched.ops[1][0].recv_off, 16u);
}

TEST(Record, ForeignSpansGetSentinelOffset) {
  const auto sched = record_schedule(
      2, 16, [](Comm& comm, std::span<std::byte>) {
        std::vector<std::byte> scratch(8);
        if (comm.rank() == 0) {
          comm.send(scratch, 1, 0);
        } else {
          comm.recv(scratch, 0, 0);
        }
      });
  EXPECT_EQ(sched.ops[0][0].send_off, kForeignOffset);
  EXPECT_EQ(sched.ops[1][0].recv_off, kForeignOffset);
}

TEST(Record, RejectsWildcards) {
  EXPECT_THROW(record_schedule(2, 8,
                               [](Comm& comm, std::span<std::byte> buffer) {
                                 if (comm.rank() == 0) {
                                   comm.recv(buffer, kAnySource, 0);
                                 }
                               }),
               PreconditionError);
}

TEST(Record, BruckIsRecordable) {
  // Bruck uses scratch memory: recording must succeed (foreign offsets),
  // and matching must balance.
  const int P = 5;
  const auto sched = record_schedule(
      P, P * 8, [&](Comm& comm, std::span<std::byte> buffer) {
        coll::allgather_bruck(comm, buffer, 8);
      });
  EXPECT_NO_THROW(match_schedule(sched));
  EXPECT_EQ(sched.total_sends(), static_cast<std::uint64_t>(P) * 3);  // ceil(log2 5)
}

// ------------------------------------------------------------------ match

TEST(Match, PairsFifoPerChannel) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 100;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 0, 10, 0), send_op(1, 0, 20, 10)};
  s.ops[1] = {recv_op(0, 0, 16, 40), recv_op(0, 0, 32, 60)};
  const auto m = match_schedule(s);
  ASSERT_EQ(m.msgs.size(), 2u);
  EXPECT_EQ(m.msgs[0].bytes, 10u);
  EXPECT_EQ(m.msgs[0].dst_off, 40u);
  EXPECT_EQ(m.msgs[1].bytes, 20u);
  EXPECT_EQ(m.msgs[1].dst_off, 60u);
  EXPECT_EQ(m.send_msg_of[0][0], 0);
  EXPECT_EQ(m.send_msg_of[0][1], 1);
  EXPECT_EQ(m.recv_msg_of[1][0], 0);
  EXPECT_EQ(m.recv_msg_of[1][1], 1);
}

TEST(Match, DifferentTagsAreDifferentChannels) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 10;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 5, 1, 0), send_op(1, 6, 2, 0)};
  // Receives posted in the opposite tag order still match by tag.
  s.ops[1] = {recv_op(0, 6, 2, 0), recv_op(0, 5, 1, 0)};
  const auto m = match_schedule(s);
  ASSERT_EQ(m.msgs.size(), 2u);
  for (const auto& msg : m.msgs) {
    if (msg.tag == 5) {
      EXPECT_EQ(msg.bytes, 1u);
    }
    if (msg.tag == 6) {
      EXPECT_EQ(msg.bytes, 2u);
    }
  }
}

TEST(Match, UnbalancedSendThrows) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 10;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 0, 4, 0)};
  EXPECT_THROW(match_schedule(s), ScheduleError);
}

TEST(Match, UnbalancedRecvThrows) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 10;
  s.ops.resize(2);
  s.ops[1] = {recv_op(0, 0, 4, 0)};
  EXPECT_THROW(match_schedule(s), ScheduleError);
}

TEST(Match, TruncationThrows) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 10;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 0, 8, 0)};
  s.ops[1] = {recv_op(0, 0, 4, 0)};
  EXPECT_THROW(match_schedule(s), ScheduleError);
}

TEST(Match, ZeroByteMessagesPairNormally) {
  // Zero-byte sends are legal (the enclosed ring emits them for trailing
  // empty chunks) and must pair FIFO like any other message.
  Schedule s;
  s.nranks = 2;
  s.nbytes = 10;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 0, 0, 0), send_op(1, 0, 4, 0)};
  s.ops[1] = {recv_op(0, 0, 0, 4), recv_op(0, 0, 4, 4)};
  const auto m = match_schedule(s);
  ASSERT_EQ(m.msgs.size(), 2u);
  EXPECT_EQ(m.msgs[0].bytes, 0u);
  EXPECT_EQ(m.msgs[1].bytes, 4u);
  // A zero-byte send may flow into a zero-byte receive; larger caps on the
  // receive side are fine too, but a nonzero send into a zero cap is not.
  s.ops[0] = {send_op(1, 0, 1, 0)};
  s.ops[1] = {recv_op(0, 0, 0, 0)};
  EXPECT_THROW(match_schedule(s), ScheduleError);
}

TEST(Match, SingleRankScheduleIsEmptyButValid) {
  Schedule s;
  s.nranks = 1;
  s.nbytes = 64;
  s.ops.resize(1);
  const auto m = match_schedule(s);
  EXPECT_TRUE(m.msgs.empty());
  ASSERT_EQ(m.send_msg_of.size(), 1u);
  EXPECT_TRUE(m.send_msg_of[0].empty());
}

TEST(Match, UnequalChannelCountsReportBothTallies) {
  // Three sends against one receive on the same channel: the error must
  // name the channel and both counts, not just throw generically.
  Schedule s;
  s.nranks = 2;
  s.nbytes = 10;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 7, 2, 0), send_op(1, 7, 2, 2), send_op(1, 7, 2, 4)};
  s.ops[1] = {recv_op(0, 7, 2, 0)};
  try {
    match_schedule(s);
    FAIL() << "expected ScheduleError";
  } catch (const ScheduleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3 send(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("1 receive(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=7"), std::string::npos) << what;
  }
}

TEST(Match, TruncationNamesTheOffendingSend) {
  // The second message on the channel is the truncated one; the diagnostic
  // must point at send #1, not #0.
  Schedule s;
  s.nranks = 2;
  s.nbytes = 16;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 0, 4, 0), send_op(1, 0, 8, 4)};
  s.ops[1] = {recv_op(0, 0, 4, 0), recv_op(0, 0, 4, 4)};
  try {
    match_schedule(s);
    FAIL() << "expected ScheduleError";
  } catch (const ScheduleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("send #1"), std::string::npos) << what;
    EXPECT_NE(what.find("8 bytes"), std::string::npos) << what;
  }
}

// --------------------------------------------------------------- coverage

TEST(Coverage, DetectsGarbageSend) {
  // Rank 1 forwards bytes it never received.
  Schedule s;
  s.nranks = 3;
  s.nbytes = 8;
  s.ops.resize(3);
  s.ops[1] = {send_op(2, 0, 8, 0)};
  s.ops[2] = {recv_op(1, 0, 8, 0)};
  const auto m = match_schedule(s);
  const auto report = validate_coverage(s, m, /*root=*/0);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.diagnostics.find("does not hold"), std::string::npos);
}

TEST(Coverage, DetectsMisalignedDelivery) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 8;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 0, 4, 0)};
  s.ops[1] = {recv_op(0, 0, 4, 4)};  // lands at the wrong offset
  const auto m = match_schedule(s);
  const auto report = validate_coverage(s, m, 0);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.diagnostics.find("misaligned"), std::string::npos);
}

TEST(Coverage, DetectsIncompleteCoverage) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 8;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 0, 4, 0)};  // only half the buffer travels
  s.ops[1] = {recv_op(0, 0, 4, 0)};
  const auto m = match_schedule(s);
  const auto report = validate_coverage(s, m, 0);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.diagnostics.find("missing bytes"), std::string::npos);
  EXPECT_EQ(report.final_coverage[1].size(), 4u);
}

TEST(Coverage, DetectsRecvBeforeSendDeadlock) {
  // Classic head-to-head: both ranks receive before sending.
  Schedule s;
  s.nranks = 2;
  s.nbytes = 4;
  s.ops.resize(2);
  s.ops[0] = {recv_op(1, 0, 4, 0), send_op(1, 0, 4, 0)};
  s.ops[1] = {recv_op(0, 0, 4, 0), send_op(0, 0, 4, 0)};
  const auto m = match_schedule(s);
  const auto report = validate_coverage(s, m, 0, {.require_aligned = false,
                                                  .require_full_final_coverage = false});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.diagnostics.find("deadlock"), std::string::npos);
}

TEST(Coverage, SendRecvCycleIsNotADeadlock) {
  // The same exchange as SendRecv ops must pass (send halves fire first).
  Schedule s;
  s.nranks = 2;
  s.nbytes = 4;
  s.ops.resize(2);
  Op x;
  x.kind = OpKind::SendRecv;
  x.dst = 1; x.send_tag = 0; x.send_bytes = 4; x.send_off = 0;
  x.src = 1; x.recv_tag = 0; x.recv_cap = 4; x.recv_off = 0;
  Op y = x;
  y.dst = 0;
  y.src = 0;
  s.ops[0] = {x};
  s.ops[1] = {y};
  const auto m = match_schedule(s);
  // Rank 1 sends bytes it does not hold, so disable the dataflow checks;
  // what matters here is that execution completes without a deadlock.
  const auto report = validate_coverage(s, m, 0, {.require_aligned = false,
                                                  .require_full_final_coverage = false});
  EXPECT_EQ(report.diagnostics.find("deadlock"), std::string::npos)
      << report.diagnostics;
}

TEST(Coverage, MismatchedBarriersDeadlock) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 0;
  s.ops.resize(2);
  s.ops[0] = {barrier_op(), barrier_op()};
  s.ops[1] = {barrier_op()};
  const auto m = match_schedule(s);
  const auto report = validate_coverage(s, m, 0, {.require_aligned = true,
                                                  .require_full_final_coverage = false});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.diagnostics.find("deadlock"), std::string::npos);
}

TEST(Coverage, BarriersInterleaveCorrectly) {
  Schedule s;
  s.nranks = 3;
  s.nbytes = 0;
  s.ops.resize(3);
  for (int r = 0; r < 3; ++r) s.ops[r] = {barrier_op(), barrier_op()};
  const auto m = match_schedule(s);
  const auto report = validate_coverage(s, m, 0, {.require_aligned = true,
                                                  .require_full_final_coverage = false});
  EXPECT_TRUE(report.ok) << report.diagnostics;
}

TEST(Coverage, ForeignSpansAreRejected) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 8;
  s.ops.resize(2);
  s.ops[0] = {send_op(1, 0, 8, kForeignOffset)};
  s.ops[1] = {recv_op(0, 0, 8, 0)};
  const auto m = match_schedule(s);
  const auto report = validate_coverage(s, m, 0);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.diagnostics.find("scratch"), std::string::npos);
}

// --------------------------------------------------------------- counters

TEST(Counters, SplitsIntraInter) {
  Schedule s;
  s.nranks = 4;
  s.nbytes = 100;
  s.ops.resize(4);
  // 0->1 intra (same node), 0->2 inter, 2->3 intra, 1->2 inter.
  s.ops[0] = {send_op(1, 0, 10, 0), send_op(2, 0, 20, 0)};
  s.ops[1] = {recv_op(0, 0, 10, 0), send_op(2, 1, 5, 0)};
  s.ops[2] = {recv_op(0, 0, 20, 0), recv_op(1, 1, 5, 0), send_op(3, 0, 40, 0)};
  s.ops[3] = {recv_op(2, 0, 40, 0)};
  const auto m = match_schedule(s);
  const Topology topo(4, 2, Placement::Block);  // nodes {0,1}, {2,3}
  const auto stats = traffic_stats(m, topo);
  EXPECT_EQ(stats.msgs, 4u);
  EXPECT_EQ(stats.bytes, 75u);
  EXPECT_EQ(stats.intra_msgs, 2u);
  EXPECT_EQ(stats.intra_bytes, 50u);
  EXPECT_EQ(stats.inter_msgs, 2u);
  EXPECT_EQ(stats.inter_bytes, 25u);
  EXPECT_EQ(stats.max_pair_msgs, 1u);
}

// -------------------------------------------------------------- replicate

TEST(Replicate, MultipliesOpsAndStaysMatched) {
  const auto base = record_schedule(
      3, 30, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_binomial(comm, buffer, 0);
      });
  const auto tripled = base.replicate(3);
  EXPECT_EQ(tripled.total_ops(), base.total_ops() * 3);
  EXPECT_EQ(tripled.total_sends(), base.total_sends() * 3);
  EXPECT_NO_THROW(match_schedule(tripled));
  EXPECT_THROW(base.replicate(0), PreconditionError);
}

// ------------------------------------------------------------ event table

TEST(EventTable, RendersBarrierAndPeers) {
  Schedule s;
  s.nranks = 2;
  s.nbytes = 16;
  s.ops.resize(2);
  s.ops[0] = {barrier_op(), send_op(1, 0, 8, 8)};
  s.ops[1] = {barrier_op(), recv_op(0, 0, 8, 8)};
  const std::string out = render_event_table(s, 8);
  EXPECT_NE(out.find("|barrier|"), std::string::npos);
  EXPECT_NE(out.find("s1>1"), std::string::npos);  // chunk 1 to rank 1
  EXPECT_NE(out.find("r1<0"), std::string::npos);
  EXPECT_NE(out.find("p0"), std::string::npos);
  EXPECT_NE(out.find("p1"), std::string::npos);
}

}  // namespace
}  // namespace bsb::trace
