// Tests for the MPI-compatibility facade: environment, point-to-point,
// collectives with typed datatypes/ops, communicator split/free, status
// and count handling, and misuse diagnostics.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "bsbutil/error.hpp"
#include "mpi/mpi.hpp"

namespace bsb::mpi {
namespace {

TEST(Facade, RankSizeAndWtime) {
  run(4, [] {
    int rank = -1, size = -1;
    EXPECT_EQ(MPI_Comm_rank(MPI_COMM_WORLD, &rank), MPI_SUCCESS);
    EXPECT_EQ(MPI_Comm_size(MPI_COMM_WORLD, &size), MPI_SUCCESS);
    EXPECT_EQ(size, 4);
    EXPECT_GE(rank, 0);
    EXPECT_LT(rank, 4);
    const double t0 = MPI_Wtime();
    const double t1 = MPI_Wtime();
    EXPECT_GE(t1, t0);
  });
}

TEST(Facade, CallsOutsideRunAreDiagnosed) {
  int rank;
  EXPECT_THROW(MPI_Comm_rank(MPI_COMM_WORLD, &rank), PreconditionError);
}

TEST(Facade, SendRecvWithStatusAndGetCount) {
  run(2, [] {
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      const std::vector<double> v{3.5, -1.25};
      MPI_Send(v.data(), 2, MPI_DOUBLE, 1, 9, MPI_COMM_WORLD);
    } else {
      std::vector<double> v(5);  // larger capacity than the message
      MPI_Status st;
      MPI_Recv(v.data(), 5, MPI_DOUBLE, MPI_ANY_SOURCE, MPI_ANY_TAG,
               MPI_COMM_WORLD, &st);
      EXPECT_EQ(st.MPI_SOURCE, 0);
      EXPECT_EQ(st.MPI_TAG, 9);
      int count = -1;
      MPI_Get_count(&st, MPI_DOUBLE, &count);
      EXPECT_EQ(count, 2);
      EXPECT_DOUBLE_EQ(v[0], 3.5);
      EXPECT_DOUBLE_EQ(v[1], -1.25);
    }
  });
}

TEST(Facade, SendrecvRing) {
  run(5, [] {
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    int out = rank * 11, in = -1;
    MPI_Sendrecv(&out, 1, MPI_INT, (rank + 1) % size, 0, &in, 1, MPI_INT,
                 (rank + size - 1) % size, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
    EXPECT_EQ(in, ((rank + size - 1) % size) * 11);
  });
}

TEST(Facade, BcastUsesLibrarySelection) {
  const RunStats stats = run(10, [] {
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    std::vector<char> buf(50000);
    if (rank == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<char>(i);
    }
    MPI_Bcast(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 0,
              MPI_COMM_WORLD);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      ASSERT_EQ(buf[i], static_cast<char>(i));
    }
  });
  // mmsg-npof2 at P=10 -> tuned ring: 9 scatter + 75 ring messages.
  EXPECT_EQ(stats.msgs, 84u);
}

TEST(Facade, ReduceAndAllreduceTypedOps) {
  run(6, [] {
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);

    const std::int64_t mine = rank + 1;
    std::int64_t sum = 0;
    MPI_Reduce(&mine, &sum, 1, MPI_INT64_T, MPI_SUM, 2, MPI_COMM_WORLD);
    if (rank == 2) {
      EXPECT_EQ(sum, 21);
    }

    double v[2] = {static_cast<double>(rank), static_cast<double>(-rank)};
    double out[2];
    MPI_Allreduce(v, out, 2, MPI_DOUBLE, MPI_MAX, MPI_COMM_WORLD);
    EXPECT_DOUBLE_EQ(out[0], size - 1);
    EXPECT_DOUBLE_EQ(out[1], 0.0);

    int mn = rank + 100;
    int mn_out;
    MPI_Allreduce(&mn, &mn_out, 1, MPI_INT, MPI_MIN, MPI_COMM_WORLD);
    EXPECT_EQ(mn_out, 100);
  });
}

TEST(Facade, GatherCollectsInRankOrder) {
  run(7, [] {
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    const int mine[2] = {rank, rank * rank};
    std::vector<int> all(rank == 3 ? 2 * size : 0);
    MPI_Gather(mine, 2, MPI_INT, all.data(), 2, MPI_INT, 3, MPI_COMM_WORLD);
    if (rank == 3) {
      for (int r = 0; r < size; ++r) {
        EXPECT_EQ(all[2 * r], r);
        EXPECT_EQ(all[2 * r + 1], r * r);
      }
    }
  });
}

TEST(Facade, ScatterAllgatherAlltoall) {
  run(6, [] {
    int rank, size;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);

    // Scatter: root 1 deals out one int per rank.
    std::vector<int> deck(rank == 1 ? size : 0);
    for (int i = 0; i < static_cast<int>(deck.size()); ++i) deck[i] = 10 * i;
    int card = -1;
    MPI_Scatter(deck.data(), 1, MPI_INT, &card, 1, MPI_INT, 1, MPI_COMM_WORLD);
    EXPECT_EQ(card, 10 * rank);

    // Allgather: everyone shares its card.
    std::vector<int> cards(size, -1);
    MPI_Allgather(&card, 1, MPI_INT, cards.data(), 1, MPI_INT, MPI_COMM_WORLD);
    for (int r = 0; r < size; ++r) EXPECT_EQ(cards[r], 10 * r);

    // Alltoall: rank r sends r*100+d to rank d.
    std::vector<int> out(size), in(size, -1);
    for (int d = 0; d < size; ++d) out[d] = rank * 100 + d;
    MPI_Alltoall(out.data(), 1, MPI_INT, in.data(), 1, MPI_INT, MPI_COMM_WORLD);
    for (int s = 0; s < size; ++s) EXPECT_EQ(in[s], s * 100 + rank);
  });
}

TEST(Facade, BarrierSynchronizes) {
  auto counter = std::make_shared<std::atomic<int>>(0);
  run(8, [counter] {
    counter->fetch_add(1);
    MPI_Barrier(MPI_COMM_WORLD);
    EXPECT_EQ(counter->load(), 8);
  });
}

TEST(Facade, CommSplitAndFree) {
  run(9, [] {
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm sub = MPI_COMM_NULL;
    MPI_Comm_split(MPI_COMM_WORLD, rank % 3, -rank, &sub);
    ASSERT_NE(sub, MPI_COMM_NULL);
    int srank, ssize;
    MPI_Comm_rank(sub, &srank);
    MPI_Comm_size(sub, &ssize);
    EXPECT_EQ(ssize, 3);
    // Keys are descending in rank: subgroup rank 0 is the largest rank.
    int probe = rank;
    MPI_Bcast(&probe, 1, MPI_INT, 0, sub);
    EXPECT_EQ(probe, 6 + rank % 3);
    MPI_Comm_free(&sub);
    EXPECT_EQ(sub, MPI_COMM_NULL);
  });
}

TEST(Facade, SplitWithUndefinedColor) {
  run(4, [] {
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm sub;
    MPI_Comm_split(MPI_COMM_WORLD, rank == 0 ? MPI_UNDEFINED : 1, rank, &sub);
    if (rank == 0) {
      EXPECT_EQ(sub, MPI_COMM_NULL);
      EXPECT_EQ(MPI_Comm_free(&sub), MPI_SUCCESS);  // freeing NULL is a no-op
    } else {
      int ssize;
      MPI_Comm_size(sub, &ssize);
      EXPECT_EQ(ssize, 3);
      MPI_Comm_free(&sub);
    }
  });
}

TEST(Facade, UseAfterFreeIsDiagnosed) {
  run(2, [] {
    MPI_Comm sub;
    MPI_Comm_split(MPI_COMM_WORLD, 0, 0, &sub);
    const MPI_Comm stale = sub;
    MPI_Comm_free(&sub);
    int rank;
    EXPECT_THROW(MPI_Comm_rank(stale, &rank), PreconditionError);
  });
}

TEST(Facade, DatatypeSizes) {
  EXPECT_EQ(datatype_size(MPI_BYTE), 1u);
  EXPECT_EQ(datatype_size(MPI_CHAR), 1u);
  EXPECT_EQ(datatype_size(MPI_INT), sizeof(int));
  EXPECT_EQ(datatype_size(MPI_DOUBLE), sizeof(double));
  EXPECT_EQ(datatype_size(MPI_INT64_T), 8u);
  EXPECT_THROW(datatype_size(99), PreconditionError);
}

TEST(Facade, RunReportsTraffic) {
  const RunStats stats = run(2, [] {
    int rank;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    char b = 1;
    if (rank == 0) {
      MPI_Send(&b, 1, MPI_CHAR, 1, 0, MPI_COMM_WORLD);
    } else {
      MPI_Recv(&b, 1, MPI_CHAR, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
  });
  EXPECT_EQ(stats.msgs, 1u);
  EXPECT_EQ(stats.bytes, 1u);
}

}  // namespace
}  // namespace bsb::mpi
