// Shared helpers for broadcast-algorithm tests: run an algorithm on the
// thread backend and verify every rank ends with the root's exact bytes,
// and record/validate schedules symbolically.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bsbutil/rng.hpp"
#include "comm/comm.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"
#include "trace/coverage.hpp"
#include "trace/match.hpp"
#include "trace/record.hpp"

namespace bsb::testutil {

using BcastBody = std::function<void(Comm&, std::span<std::byte>, int root)>;

/// Run `body` as a broadcast of `nbytes` patterned bytes from `root` over
/// `nranks` threads; EXPECT every rank's buffer to match the root pattern.
inline void check_bcast_on_threads(int nranks, std::uint64_t nbytes, int root,
                                   const BcastBody& body,
                                   mpisim::WorldConfig cfg = {}) {
  const std::uint64_t seed = 0xB0A5'1000 + nranks * 131 + root;
  mpisim::World world(nranks, cfg);
  world.run([&](mpisim::ThreadComm& comm) {
    std::vector<std::byte> buf(nbytes);
    if (comm.rank() == root) {
      fill_pattern(buf, seed);
    }
    body(comm, buf, root);
    const std::size_t bad = first_pattern_mismatch(buf, seed);
    EXPECT_EQ(bad, buf.size()) << "rank " << comm.rank() << " of " << nranks
                               << " root " << root << " nbytes " << nbytes
                               << ": first mismatch at byte " << bad;
  });
}

/// Record `body` and symbolically validate: matched schedule, no garbage
/// sends, aligned delivery, full final coverage on every rank.
inline void check_bcast_coverage(int nranks, std::uint64_t nbytes, int root,
                                 const BcastBody& body) {
  const trace::Schedule sched = trace::record_schedule(
      nranks, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
        body(comm, buffer, root);
      });
  const trace::MatchResult m = trace::match_schedule(sched);
  const trace::CoverageReport report = trace::validate_coverage(sched, m, root);
  EXPECT_TRUE(report.ok) << "P=" << nranks << " nbytes=" << nbytes
                         << " root=" << root << "\n"
                         << report.diagnostics;
}

}  // namespace bsb::testutil
