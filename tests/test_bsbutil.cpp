// Unit tests for the utility layer: interval algebra, integer math, RNG
// patterns, CSV escaping, table and plot rendering.
#include <gtest/gtest.h>

#include "bsbutil/ascii_plot.hpp"
#include "bsbutil/csv.hpp"
#include "bsbutil/format.hpp"
#include "bsbutil/intervals.hpp"
#include "bsbutil/math.hpp"
#include "bsbutil/rng.hpp"
#include "bsbutil/table.hpp"

namespace bsb {
namespace {

// ------------------------------------------------------------------- math

TEST(Math, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Math, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_THROW(floor_log2(0), PreconditionError);
  EXPECT_THROW(ceil_log2(0), PreconditionError);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(8), 8u);
  EXPECT_EQ(next_pow2(9), 16u);
  EXPECT_EQ(next_pow2(129), 256u);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_THROW(ceil_div(4, 0), PreconditionError);
}

// -------------------------------------------------------------- intervals

TEST(Intervals, EmptyAndSingle) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  s.insert({5, 10});
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.size(), 5u);
  EXPECT_TRUE(s.contains({5, 10}));
  EXPECT_TRUE(s.contains({6, 9}));
  EXPECT_FALSE(s.contains({4, 6}));
  EXPECT_FALSE(s.contains({9, 11}));
}

TEST(Intervals, EmptyIntervalIsNoop) {
  IntervalSet s;
  s.insert({7, 7});
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.contains({3, 3}));   // empty query always contained
  EXPECT_FALSE(s.intersects({3, 3}));
}

TEST(Intervals, MergeAdjacent) {
  IntervalSet s;
  s.insert({0, 4});
  s.insert({4, 8});
  EXPECT_EQ(s.parts().size(), 1u);
  EXPECT_TRUE(s.contains({0, 8}));
}

TEST(Intervals, MergeOverlapping) {
  IntervalSet s;
  s.insert({0, 5});
  s.insert({10, 15});
  s.insert({3, 12});
  EXPECT_EQ(s.parts().size(), 1u);
  EXPECT_EQ(s.size(), 15u);
}

TEST(Intervals, DisjointStayDisjoint) {
  IntervalSet s;
  s.insert({10, 15});
  s.insert({0, 5});
  ASSERT_EQ(s.parts().size(), 2u);
  EXPECT_EQ(s.parts()[0], (Interval{0, 5}));
  EXPECT_EQ(s.parts()[1], (Interval{10, 15}));
  EXPECT_FALSE(s.contains({4, 11}));
  EXPECT_TRUE(s.intersects({4, 11}));
  EXPECT_FALSE(s.intersects({5, 10}));
}

TEST(Intervals, EraseSplits) {
  IntervalSet s;
  s.insert({0, 10});
  s.erase({3, 7});
  ASSERT_EQ(s.parts().size(), 2u);
  EXPECT_TRUE(s.contains({0, 3}));
  EXPECT_TRUE(s.contains({7, 10}));
  EXPECT_FALSE(s.intersects({3, 7}));
  EXPECT_EQ(s.size(), 6u);
}

TEST(Intervals, EraseAcrossParts) {
  IntervalSet s;
  s.insert({0, 4});
  s.insert({6, 10});
  s.insert({12, 16});
  s.erase({2, 13});
  ASSERT_EQ(s.parts().size(), 2u);
  EXPECT_EQ(s.parts()[0], (Interval{0, 2}));
  EXPECT_EQ(s.parts()[1], (Interval{13, 16}));
}

TEST(Intervals, Overlap) {
  IntervalSet s;
  s.insert({0, 4});
  s.insert({8, 12});
  EXPECT_EQ(s.overlap({2, 10}), 4u);
  EXPECT_EQ(s.overlap({4, 8}), 0u);
  EXPECT_EQ(s.overlap({0, 12}), 8u);
}

TEST(Intervals, Complement) {
  IntervalSet s;
  s.insert({2, 4});
  s.insert({6, 8});
  const IntervalSet c = s.complement(10);
  EXPECT_EQ(c.size(), 6u);
  EXPECT_TRUE(c.contains({0, 2}));
  EXPECT_TRUE(c.contains({4, 6}));
  EXPECT_TRUE(c.contains({8, 10}));
  EXPECT_FALSE(c.intersects({2, 4}));

  IntervalSet full;
  full.insert({0, 10});
  EXPECT_TRUE(full.complement(10).empty());
}

TEST(Intervals, MergeSets) {
  IntervalSet a, b;
  a.insert({0, 5});
  b.insert({5, 10});
  b.insert({20, 30});
  a.merge(b);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_TRUE(a.contains({0, 10}));
}

TEST(Intervals, RandomizedAgainstBitset) {
  // Property check: interval algebra agrees with a brute-force bitmap.
  SplitMix64 rng(1234);
  constexpr std::uint64_t N = 256;
  IntervalSet s;
  std::vector<bool> ref(N, false);
  for (int step = 0; step < 500; ++step) {
    const std::uint64_t lo = rng.next_below(N);
    const std::uint64_t hi = lo + rng.next_below(N - lo + 1);
    if (rng.next_below(3) == 0) {
      s.erase({lo, hi});
      for (std::uint64_t i = lo; i < hi; ++i) ref[i] = false;
    } else {
      s.insert({lo, hi});
      for (std::uint64_t i = lo; i < hi; ++i) ref[i] = true;
    }
    std::uint64_t ref_size = 0;
    for (bool v : ref) ref_size += v;
    ASSERT_EQ(s.size(), ref_size) << "step " << step;
    // spot-check contains/intersects on a random probe
    const std::uint64_t plo = rng.next_below(N);
    const std::uint64_t phi = plo + rng.next_below(N - plo + 1);
    bool all = true, any = false;
    for (std::uint64_t i = plo; i < phi; ++i) {
      all = all && ref[i];
      any = any || ref[i];
    }
    ASSERT_EQ(s.contains({plo, phi}), all || plo == phi) << "step " << step;
    ASSERT_EQ(s.intersects({plo, phi}), any) << "step " << step;
  }
}

// -------------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, PatternDetectsCorruption) {
  std::vector<std::byte> buf(1024);
  fill_pattern(buf, 99);
  EXPECT_EQ(first_pattern_mismatch(buf, 99), buf.size());
  buf[517] ^= std::byte{1};
  EXPECT_EQ(first_pattern_mismatch(buf, 99), 517u);
}

TEST(Rng, PatternPositionDependent) {
  std::vector<std::byte> a(64), b(64);
  fill_pattern(a, 5, 0);
  fill_pattern(b, 5, 1);  // shifted base: must differ somewhere
  EXPECT_NE(0u, static_cast<unsigned>(first_pattern_mismatch(b, 5, 0) != 64));
}

// ----------------------------------------------------------------- format

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(12288), "12KiB");
  EXPECT_EQ(format_bytes(524288), "512KiB");
  EXPECT_EQ(format_bytes(1048576), "1MiB");
  EXPECT_EQ(format_bytes(524287), "524287");
  EXPECT_EQ(format_bytes(1073741824ULL), "1GiB");
}

TEST(Format, Time) {
  EXPECT_EQ(format_time(1.5e-6), "1.50us");
  EXPECT_EQ(format_time(2.5e-3), "2.50ms");
  EXPECT_EQ(format_time(1.25), "1.250s");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.123), "+12.3%");
  EXPECT_EQ(format_percent(-0.05), "-5.0%");
}

// -------------------------------------------------------------------- csv

TEST(Csv, Escape) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesFile) {
  const std::string path = testing::TempDir() + "/bsb_csv_test.csv";
  {
    CsvWriter w(path);
    w.row({"a", "b,c"});
    w.row({"1", "2"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,\"b,c\"");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

// ------------------------------------------------------------------ table

TEST(Table, AlignsColumns) {
  Table t({"P", "name"});
  t.add({"8", "native"});
  t.add({"128", "tuned"});
  const std::string out = t.render();
  EXPECT_NE(out.find("  8  native"), std::string::npos);
  EXPECT_NE(out.find("128  tuned"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add({"1"});
  EXPECT_NO_THROW(t.render());
}

// ------------------------------------------------------------------- plot

TEST(Plot, RendersSeriesMarkers) {
  Series s1{"native", 'o', {1, 2, 4, 8}, {10, 20, 40, 80}};
  Series s2{"tuned", '*', {1, 2, 4, 8}, {12, 25, 50, 100}};
  PlotOptions opt;
  opt.title = "demo";
  const std::string out = render_plot({s1, s2}, opt);
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("o native"), std::string::npos);
  EXPECT_NE(out.find("* tuned"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Plot, RejectsNonPositiveOnLogScale) {
  Series s{"bad", 'x', {0.0}, {1.0}};
  EXPECT_THROW(render_plot({s}, PlotOptions{}), PreconditionError);
}

TEST(Plot, EmptyPlot) {
  EXPECT_EQ(render_plot({}, PlotOptions{}), "(empty plot)\n");
}

}  // namespace
}  // namespace bsb
