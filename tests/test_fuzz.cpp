// Tests for the differential fuzz harness itself: the generator's
// determinism and structural guarantees, a bounded clean sweep through
// run_case, the sabotage self-test path (detection + shrinking), and the
// reproducer round trip.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "fuzz/case.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/shrink.hpp"

namespace bsb::fuzz {
namespace {

bool is_pow2(int n) { return n >= 1 && (n & (n - 1)) == 0; }

bool is_allgather_variant(Variant v) {
  switch (v) {
    case Variant::AllgatherRingNative:
    case Variant::AllgatherRingTuned:
    case Variant::AllgatherRecursiveDoubling:
    case Variant::AllgatherBruck:
    case Variant::AllgatherNeighborExchange:
      return true;
    default:
      return false;
  }
}

TEST(FuzzCaseGenerator, SameSeedAndIndexReplaysBitIdentically) {
  GeneratorOptions opt;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const FuzzCase a = sample_case(0xC0FFEE, i, opt);
    const FuzzCase b = sample_case(0xC0FFEE, i, opt);
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.nranks, b.nranks);
    EXPECT_EQ(a.root, b.root);
    EXPECT_EQ(a.nbytes, b.nbytes);
    EXPECT_EQ(a.segment_bytes, b.segment_bytes);
    EXPECT_EQ(a.eager_threshold, b.eager_threshold);
    EXPECT_EQ(a.faults.enabled, b.faults.enabled);
    EXPECT_EQ(a.faults.seed, b.faults.seed);
    EXPECT_EQ(describe(a), describe(b));
  }
}

TEST(FuzzCaseGenerator, SampledCasesSatisfyStructuralInvariants) {
  GeneratorOptions opt;
  std::set<Variant> seen;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const FuzzCase c = sample_case(7, i, opt);
    seen.insert(c.variant);
    ASSERT_GE(c.nranks, opt.min_ranks) << describe(c);
    ASSERT_LE(c.nranks, opt.max_ranks) << describe(c);
    ASSERT_GE(c.root, 0) << describe(c);
    ASSERT_LT(c.root, c.nranks) << describe(c);
    if (c.variant == Variant::BcastScatterRd ||
        c.variant == Variant::AllgatherRecursiveDoubling) {
      ASSERT_TRUE(is_pow2(c.nranks)) << describe(c);
    }
    if (c.variant == Variant::AllgatherNeighborExchange) {
      ASSERT_EQ(c.nranks % 2, 0) << describe(c);
    }
    if (is_allgather_variant(c.variant)) {
      ASSERT_EQ(c.nbytes % static_cast<std::uint64_t>(c.nranks), 0u)
          << describe(c);
    }
  }
  // 2000 draws must exercise every variant.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumVariants));
}

TEST(FuzzCaseGenerator, FitRanksRoundsDownToLegalCounts) {
  for (int n = 2; n <= 100; ++n) {
    EXPECT_TRUE(is_pow2(fit_ranks(Variant::BcastScatterRd, n)));
    EXPECT_LE(fit_ranks(Variant::BcastScatterRd, n), n);
    EXPECT_EQ(fit_ranks(Variant::AllgatherNeighborExchange, n) % 2, 0);
    EXPECT_LE(fit_ranks(Variant::AllgatherNeighborExchange, n), n);
    EXPECT_EQ(fit_ranks(Variant::BcastBinomial, n), n);
  }
  EXPECT_EQ(fit_ranks(Variant::BcastScatterRd, 0), 2);
}

TEST(FuzzCaseGenerator, VariantNamesRoundTrip) {
  for (const Variant v : all_variants()) {
    const auto back = variant_from_string(to_string(v));
    ASSERT_TRUE(back.has_value()) << to_string(v);
    EXPECT_EQ(*back, v);
  }
  EXPECT_FALSE(variant_from_string("no-such-variant").has_value());
}

// A bounded differential sweep must come back clean: small rank counts and
// sizes keep this fast while still crossing the eager/rendezvous boundary
// and hitting fault-injected cases.
TEST(FuzzRunner, BoundedSweepFindsNoDiscrepancies) {
  GeneratorOptions opt;
  opt.max_ranks = 12;
  opt.max_bytes = 32 * 1024;
  opt.watchdog_seconds = 20.0;
  for (std::uint64_t i = 0; i < 120; ++i) {
    const FuzzCase c = sample_case(42, i, opt);
    const RunOutcome out = run_case(c);
    ASSERT_TRUE(out.ok) << describe(c) << "\n  " << out.detail;
    EXPECT_GT(out.messages + (c.nbytes == 0 ? 1 : 0), 0u) << describe(c);
  }
}

TEST(FuzzRunner, SabotageOnlyAppliesToTunedRingVariants) {
  FuzzCase c;
  for (const Variant v : all_variants()) {
    c.variant = v;
    const bool tuned = v == Variant::BcastScatterRingTuned ||
                       v == Variant::AllgatherRingTuned;
    EXPECT_EQ(sabotage_applies(c, Sabotage::RingPlanStepOffByOne), tuned)
        << to_string(v);
    EXPECT_FALSE(sabotage_applies(c, Sabotage::None)) << to_string(v);
  }
}

TEST(FuzzRunner, RingPlanOffByOneIsDetectedAndShrinks) {
  FuzzCase c;
  c.variant = Variant::AllgatherRingTuned;
  c.nranks = 8;
  c.root = 0;
  c.nbytes = 8 * 512;
  c.watchdog_seconds = 2.0;

  ASSERT_TRUE(run_case(c).ok) << "baseline must pass unsabotaged";
  const RunOutcome bad = run_case(c, Sabotage::RingPlanStepOffByOne);
  ASSERT_FALSE(bad.ok);
  EXPECT_FALSE(bad.detail.empty());

  const ShrinkResult shrunk = shrink_case(c, Sabotage::RingPlanStepOffByOne);
  EXPECT_LE(shrunk.minimal.nranks, c.nranks);
  EXPECT_LE(shrunk.minimal.nbytes, c.nbytes);
  EXPECT_FALSE(run_case(shrunk.minimal, Sabotage::RingPlanStepOffByOne).ok)
      << "shrunk config must still fail: " << describe(shrunk.minimal);
  EXPECT_FALSE(explicit_reproducer(shrunk.minimal).empty());
}

TEST(FuzzHarness, CleanRunReportsEveryCaseAndNoFailures) {
  HarnessOptions opt;
  opt.seed = 99;
  opt.cases = 60;
  opt.gen.max_ranks = 10;
  opt.gen.max_bytes = 16 * 1024;
  std::ostringstream sink;
  const HarnessReport rep = run_fuzz(opt, sink);
  EXPECT_EQ(rep.cases_run, opt.cases);
  EXPECT_EQ(rep.failures, 0u);
  std::uint64_t covered = 0;
  for (const std::uint64_t n : rep.per_variant) covered += n;
  EXPECT_EQ(covered, opt.cases);
}

TEST(FuzzHarness, SelftestDetectsSabotagedPlan) {
  HarnessOptions opt;
  opt.seed = 3;
  opt.cases = 4;
  opt.gen.max_ranks = 10;
  opt.gen.max_bytes = 16 * 1024;
  std::ostringstream sink;
  EXPECT_TRUE(run_selftest(opt, sink));
  // The report must include both forms of reproducer.
  const std::string log = sink.str();
  EXPECT_NE(log.find("bsb-fuzz"), std::string::npos);
}

}  // namespace
}  // namespace bsb::fuzz
