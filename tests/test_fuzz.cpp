// Tests for the differential fuzz harness itself: the generator's
// determinism and structural guarantees, a bounded clean sweep through
// run_case, the sabotage self-test path (detection + shrinking), and the
// reproducer round trip.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "fuzz/case.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/shrink.hpp"

namespace bsb::fuzz {
namespace {

bool is_pow2(int n) { return n >= 1 && (n & (n - 1)) == 0; }

bool is_allgather_variant(Variant v) {
  switch (v) {
    case Variant::AllgatherRingNative:
    case Variant::AllgatherRingTuned:
    case Variant::AllgatherRecursiveDoubling:
    case Variant::AllgatherBruck:
    case Variant::AllgatherNeighborExchange:
      return true;
    default:
      return false;
  }
}

TEST(FuzzCaseGenerator, SameSeedAndIndexReplaysBitIdentically) {
  GeneratorOptions opt;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const FuzzCase a = sample_case(0xC0FFEE, i, opt);
    const FuzzCase b = sample_case(0xC0FFEE, i, opt);
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.nranks, b.nranks);
    EXPECT_EQ(a.root, b.root);
    EXPECT_EQ(a.nbytes, b.nbytes);
    EXPECT_EQ(a.segment_bytes, b.segment_bytes);
    EXPECT_EQ(a.eager_threshold, b.eager_threshold);
    EXPECT_EQ(a.faults.enabled, b.faults.enabled);
    EXPECT_EQ(a.faults.seed, b.faults.seed);
    EXPECT_EQ(describe(a), describe(b));
  }
}

TEST(FuzzCaseGenerator, SampledCasesSatisfyStructuralInvariants) {
  GeneratorOptions opt;
  std::set<Variant> seen;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const FuzzCase c = sample_case(7, i, opt);
    seen.insert(c.variant);
    ASSERT_GE(c.nranks, opt.min_ranks) << describe(c);
    ASSERT_LE(c.nranks, opt.max_ranks) << describe(c);
    ASSERT_GE(c.root, 0) << describe(c);
    ASSERT_LT(c.root, c.nranks) << describe(c);
    if (c.variant == Variant::BcastScatterRd ||
        c.variant == Variant::AllgatherRecursiveDoubling) {
      ASSERT_TRUE(is_pow2(c.nranks)) << describe(c);
    }
    if (c.variant == Variant::AllgatherNeighborExchange) {
      ASSERT_EQ(c.nranks % 2, 0) << describe(c);
    }
    if (is_allgather_variant(c.variant)) {
      ASSERT_EQ(c.nbytes % static_cast<std::uint64_t>(c.nranks), 0u)
          << describe(c);
    }
    if (c.variant == Variant::AllreduceRecursiveDoubling) {
      ASSERT_TRUE(is_pow2(c.nranks)) << describe(c);
    }
    if (is_reduce_family(c.variant)) {
      const std::uint64_t grain =
          static_cast<std::uint64_t>(c.nranks) *
          coll::elem_bytes(c.red_dtype);
      ASSERT_EQ(c.nbytes % grain, 0u) << describe(c);
      ASSERT_GT(c.nbytes, 0u) << describe(c);
    }
    if (is_rootless(c.variant)) {
      ASSERT_EQ(c.root, 0) << describe(c);
    }
  }
  // 2000 draws must exercise every variant.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumVariants));
}

TEST(FuzzCaseGenerator, NormalizeCaseRestoresEveryStructuralInvariant) {
  for (const Variant v : all_variants()) {
    FuzzCase c;
    c.variant = v;
    c.nranks = 13;
    c.root = 29;                 // deliberately out of range
    c.nbytes = 997;              // deliberately off-grain
    c.red_dtype = coll::RedDtype::F64;
    const FuzzCase n = normalize_case(c);
    EXPECT_GE(n.nranks, 2) << to_string(v);
    EXPECT_LE(n.nranks, 13) << to_string(v);
    EXPECT_EQ(n.nranks, fit_ranks(v, 13)) << to_string(v);
    EXPECT_GE(n.root, 0) << to_string(v);
    EXPECT_LT(n.root, n.nranks) << to_string(v);
    if (is_rootless(v)) {
      EXPECT_EQ(n.root, 0) << to_string(v);
    }
    if (is_reduce_family(v)) {
      const std::uint64_t grain = static_cast<std::uint64_t>(n.nranks) *
                                  coll::elem_bytes(n.red_dtype);
      EXPECT_EQ(n.nbytes % grain, 0u) << to_string(v);
      EXPECT_GT(n.nbytes, 0u) << to_string(v);
    } else if (is_block_allgather(v)) {
      EXPECT_EQ(n.nbytes % static_cast<std::uint64_t>(n.nranks), 0u)
          << to_string(v);
    } else if (is_allgatherv(v)) {
      // Any byte count is legal for the skewed layouts.
      EXPECT_EQ(n.nbytes, c.nbytes) << to_string(v);
    }
  }
}

TEST(FuzzCaseGenerator, ExplicitReproducerCarriesFamilyFlags) {
  FuzzCase rs;
  rs.variant = Variant::ReduceScatterBlocks;
  rs.nranks = 8;
  rs.nbytes = 8 * 8 * 4;
  rs.red_op = coll::RedOp::Max;
  rs.red_dtype = coll::RedDtype::I32;
  const std::string rs_cmd = explicit_reproducer(rs);
  EXPECT_NE(rs_cmd.find("--op=max"), std::string::npos) << rs_cmd;
  EXPECT_NE(rs_cmd.find("--dtype=i32"), std::string::npos) << rs_cmd;
  EXPECT_EQ(rs_cmd.find("--skew-seed"), std::string::npos) << rs_cmd;

  FuzzCase agv;
  agv.variant = Variant::AllgathervRingTuned;
  agv.nranks = 10;
  agv.nbytes = 997;
  agv.skew_seed = 0xfeedULL;
  const std::string agv_cmd = explicit_reproducer(agv);
  EXPECT_NE(agv_cmd.find("--skew-seed=65261"), std::string::npos) << agv_cmd;
  EXPECT_EQ(agv_cmd.find("--op="), std::string::npos) << agv_cmd;

  FuzzCase hier;
  hier.variant = Variant::AllgatherBruckHier;
  hier.nranks = 12;
  hier.nbytes = 12 * 64;
  hier.smp_cores_per_node = 4;
  const std::string hier_cmd = explicit_reproducer(hier);
  EXPECT_NE(hier_cmd.find("--smp-cores=4"), std::string::npos) << hier_cmd;
}

TEST(FuzzCaseGenerator, FitRanksRoundsDownToLegalCounts) {
  for (int n = 2; n <= 100; ++n) {
    EXPECT_TRUE(is_pow2(fit_ranks(Variant::BcastScatterRd, n)));
    EXPECT_LE(fit_ranks(Variant::BcastScatterRd, n), n);
    EXPECT_EQ(fit_ranks(Variant::AllgatherNeighborExchange, n) % 2, 0);
    EXPECT_LE(fit_ranks(Variant::AllgatherNeighborExchange, n), n);
    EXPECT_EQ(fit_ranks(Variant::BcastBinomial, n), n);
  }
  EXPECT_EQ(fit_ranks(Variant::BcastScatterRd, 0), 2);
}

TEST(FuzzCaseGenerator, VariantNamesRoundTrip) {
  for (const Variant v : all_variants()) {
    const auto back = variant_from_string(to_string(v));
    ASSERT_TRUE(back.has_value()) << to_string(v);
    EXPECT_EQ(*back, v);
  }
  EXPECT_FALSE(variant_from_string("no-such-variant").has_value());
}

// A bounded differential sweep must come back clean: small rank counts and
// sizes keep this fast while still crossing the eager/rendezvous boundary
// and hitting fault-injected cases.
TEST(FuzzRunner, BoundedSweepFindsNoDiscrepancies) {
  GeneratorOptions opt;
  opt.max_ranks = 12;
  opt.max_bytes = 32 * 1024;
  opt.watchdog_seconds = 20.0;
  for (std::uint64_t i = 0; i < 120; ++i) {
    const FuzzCase c = sample_case(42, i, opt);
    const RunOutcome out = run_case(c);
    ASSERT_TRUE(out.ok) << describe(c) << "\n  " << out.detail;
    EXPECT_GT(out.messages + (c.nbytes == 0 ? 1 : 0), 0u) << describe(c);
  }
}

TEST(FuzzRunner, SabotageOnlyAppliesToTunedRingVariants) {
  FuzzCase c;
  for (const Variant v : all_variants()) {
    c.variant = v;
    const bool tuned = v == Variant::BcastScatterRingTuned ||
                       v == Variant::AllgatherRingTuned ||
                       v == Variant::AllgathervRingTuned ||
                       v == Variant::AllreduceRsAgTuned;
    EXPECT_EQ(sabotage_applies(c, Sabotage::RingPlanStepOffByOne), tuned)
        << to_string(v);
    EXPECT_EQ(sabotage_applies(c, Sabotage::ReduceScatterDoubleFinal),
              v == Variant::ReduceScatterBlocks)
        << to_string(v);
    EXPECT_FALSE(sabotage_applies(c, Sabotage::None)) << to_string(v);
  }
}

TEST(FuzzRunner, RingPlanOffByOneIsDetectedAndShrinks) {
  FuzzCase c;
  c.variant = Variant::AllgatherRingTuned;
  c.nranks = 8;
  c.root = 0;
  c.nbytes = 8 * 512;
  c.watchdog_seconds = 2.0;

  ASSERT_TRUE(run_case(c).ok) << "baseline must pass unsabotaged";
  const RunOutcome bad = run_case(c, Sabotage::RingPlanStepOffByOne);
  ASSERT_FALSE(bad.ok);
  EXPECT_FALSE(bad.detail.empty());

  const ShrinkResult shrunk = shrink_case(c, Sabotage::RingPlanStepOffByOne);
  EXPECT_LE(shrunk.minimal.nranks, c.nranks);
  EXPECT_LE(shrunk.minimal.nbytes, c.nbytes);
  EXPECT_FALSE(run_case(shrunk.minimal, Sabotage::RingPlanStepOffByOne).ok)
      << "shrunk config must still fail: " << describe(shrunk.minimal);
  EXPECT_FALSE(explicit_reproducer(shrunk.minimal).empty());
}

TEST(FuzzHarness, CleanRunReportsEveryCaseAndNoFailures) {
  HarnessOptions opt;
  opt.seed = 99;
  opt.cases = 60;
  opt.gen.max_ranks = 10;
  opt.gen.max_bytes = 16 * 1024;
  std::ostringstream sink;
  const HarnessReport rep = run_fuzz(opt, sink);
  EXPECT_EQ(rep.cases_run, opt.cases);
  EXPECT_EQ(rep.failures, 0u);
  std::uint64_t covered = 0;
  for (const std::uint64_t n : rep.per_variant) covered += n;
  EXPECT_EQ(covered, opt.cases);
}

TEST(FuzzHarness, SelftestDetectsSabotagedPlan) {
  HarnessOptions opt;
  opt.seed = 3;
  opt.cases = 4;
  opt.gen.max_ranks = 10;
  opt.gen.max_bytes = 16 * 1024;
  std::ostringstream sink;
  EXPECT_TRUE(run_selftest(opt, sink));
  // The report must include both forms of reproducer.
  const std::string log = sink.str();
  EXPECT_NE(log.find("bsb-fuzz"), std::string::npos);
}

}  // namespace
}  // namespace bsb::fuzz
