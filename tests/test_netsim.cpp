// Tests for the discrete-event cluster simulator: fluid max-min fairness
// closed forms, replay timing closed forms (eager, rendezvous, unexpected
// messages, barriers), contention effects, pipelining across iterations,
// determinism, and deadlock diagnosis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "bsbutil/rng.hpp"
#include "coll/bcast_binomial.hpp"
#include "coll/bcast_scatter_ring_native.hpp"
#include "core/bcast_scatter_ring_tuned.hpp"
#include "netsim/costmodel.hpp"
#include "netsim/fluid.hpp"
#include "netsim/replay.hpp"
#include "netsim/sim.hpp"
#include "trace/record.hpp"

namespace bsb::netsim {
namespace {

constexpr double kRelTol = 1e-9;

void expect_close(double actual, double expected, double tol = kRelTol) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * tol + 1e-15)
      << "actual " << actual << " expected " << expected;
}

// ------------------------------------------------------------------ fluid

TEST(Fluid, SingleFlowCappedByItself) {
  FluidNetwork net({100.0});
  const int f = net.add_flow(50.0, {0}, 10.0);
  net.recompute_rates();
  expect_close(net.rate_of(f), 10.0);
  expect_close(net.time_to_next_completion(), 5.0);
}

TEST(Fluid, TwoFlowsShareBottleneck) {
  FluidNetwork net({10.0});
  const int a = net.add_flow(100.0, {0}, 100.0);
  const int b = net.add_flow(100.0, {0}, 100.0);
  net.recompute_rates();
  expect_close(net.rate_of(a), 5.0);
  expect_close(net.rate_of(b), 5.0);
}

TEST(Fluid, MaxMinWithHeterogeneousCaps) {
  // Capacity 12, three flows, one privately capped at 2: max-min gives the
  // capped flow 2 and splits the remaining 10 equally (5 each).
  FluidNetwork net({12.0});
  const int a = net.add_flow(100.0, {0}, 2.0);
  const int b = net.add_flow(100.0, {0}, 100.0);
  const int c = net.add_flow(100.0, {0}, 100.0);
  net.recompute_rates();
  expect_close(net.rate_of(a), 2.0);
  expect_close(net.rate_of(b), 5.0);
  expect_close(net.rate_of(c), 5.0);
}

TEST(Fluid, MultiResourceBottleneck) {
  // Flow A crosses r0 (cap 10) and r1 (cap 4); flow B crosses r1 only.
  // r1 is the bottleneck: A and B get 2 each; A cannot use r0's slack.
  FluidNetwork net({10.0, 4.0});
  const int a = net.add_flow(100.0, {0, 1}, 100.0);
  const int b = net.add_flow(100.0, {1}, 100.0);
  net.recompute_rates();
  expect_close(net.rate_of(a), 2.0);
  expect_close(net.rate_of(b), 2.0);
}

TEST(Fluid, WaterFillingRedistributesSlack) {
  // r0 cap 10 shared by A (capped 1) and B (uncapped): B gets 9.
  FluidNetwork net({10.0});
  const int a = net.add_flow(100.0, {0}, 1.0);
  const int b = net.add_flow(100.0, {0}, 100.0);
  net.recompute_rates();
  expect_close(net.rate_of(a), 1.0);
  expect_close(net.rate_of(b), 9.0);
}

TEST(Fluid, AdvanceAndComplete) {
  FluidNetwork net({10.0});
  const int a = net.add_flow(20.0, {0}, 100.0);
  const int b = net.add_flow(40.0, {0}, 100.0);
  net.recompute_rates();
  net.advance(4.0);  // both at rate 5: a has 0 left, b has 20
  const auto done = net.completed_flows();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], a);
  net.remove_flow(a);
  net.recompute_rates();
  expect_close(net.rate_of(b), 10.0);
  expect_close(net.time_to_next_completion(), 2.0);
}

TEST(Fluid, FlowWithNoSharedResources) {
  FluidNetwork net({10.0});
  const int f = net.add_flow(30.0, {}, 3.0);
  net.recompute_rates();
  expect_close(net.rate_of(f), 3.0);
}

TEST(Fluid, RandomizedMaxMinProperties) {
  // Property fuzz of the progressive-filling solver. A rate allocation is
  // max-min fair iff (a) no resource exceeds its capacity, (b) no flow
  // exceeds its private cap, and (c) every flow is "justified": it either
  // runs at its cap or crosses a resource that is saturated AND on which
  // it is among the largest flows (it could only grow by shrinking an
  // equal-or-smaller flow).
  SplitMix64 rng(20150707);
  for (int trial = 0; trial < 200; ++trial) {
    const int nres = 1 + static_cast<int>(rng.next_below(6));
    std::vector<double> caps;
    for (int i = 0; i < nres; ++i) {
      caps.push_back(1.0 + static_cast<double>(rng.next_below(100)));
    }
    FluidNetwork net(caps);
    const int nflows = 1 + static_cast<int>(rng.next_below(12));
    struct FlowRef {
      int id;
      double cap;
      std::vector<int> res;
    };
    std::vector<FlowRef> flows;
    for (int f = 0; f < nflows; ++f) {
      std::vector<int> res;
      for (int r = 0; r < nres; ++r) {
        if (rng.next_below(2)) res.push_back(r);
      }
      const double cap = 0.5 + static_cast<double>(rng.next_below(80));
      flows.push_back({net.add_flow(1e6, res, cap), cap, res});
    }
    net.recompute_rates();

    std::vector<double> load(nres, 0.0);
    for (const FlowRef& f : flows) {
      const double rate = net.rate_of(f.id);
      ASSERT_GT(rate, 0.0) << "trial " << trial;
      ASSERT_LE(rate, f.cap * (1 + 1e-9)) << "trial " << trial;
      for (int r : f.res) load[r] += rate;
    }
    for (int r = 0; r < nres; ++r) {
      ASSERT_LE(load[r], caps[r] * (1 + 1e-6)) << "trial " << trial << " res " << r;
    }
    for (const FlowRef& f : flows) {
      const double rate = net.rate_of(f.id);
      if (rate >= f.cap * (1 - 1e-9)) continue;  // justified by private cap
      bool justified = false;
      for (int r : f.res) {
        if (load[r] < caps[r] * (1 - 1e-6)) continue;  // not saturated
        // Saturated: f must be among the largest flows crossing r.
        bool is_max = true;
        for (const FlowRef& g : flows) {
          if (g.id == f.id) continue;
          bool crosses = false;
          for (int rr : g.res) crosses = crosses || rr == r;
          if (crosses && net.rate_of(g.id) > rate * (1 + 1e-6)) is_max = false;
        }
        if (is_max) {
          justified = true;
          break;
        }
      }
      ASSERT_TRUE(justified) << "trial " << trial << ": flow " << f.id
                             << " at rate " << rate
                             << " is neither capped nor bottlenecked";
    }
  }
}

TEST(Fluid, RandomizedConservationNeverOversubscribes) {
  // Regression fuzz for the epsilon-freeze oversubscription bug: flows
  // whose tightest-resource share sat within kEps of the round's fill
  // level used to be granted the full level, and across many such flows
  // the epsilons added up to more than the capacity (the residual clamp
  // then silently hid the deficit). Private caps are drawn CLUSTERED
  // within ~1e-10 of each other so the freeze test's epsilon band is
  // exercised constantly; the conservation bound must hold to fp dust,
  // not to some lenient engineering tolerance.
  SplitMix64 rng(20260808);
  for (int trial = 0; trial < 300; ++trial) {
    const int nres = 1 + static_cast<int>(rng.next_below(4));
    std::vector<double> caps;
    for (int i = 0; i < nres; ++i) {
      caps.push_back(1.0 + static_cast<double>(rng.next_below(50)));
    }
    FluidNetwork net(caps);
    const int nflows = 2 + static_cast<int>(rng.next_below(40));
    const double base_cap =
        0.25 + static_cast<double>(rng.next_below(20)) * 0.125;
    struct FlowRef {
      int id;
      std::vector<int> res;
    };
    std::vector<FlowRef> flows;
    for (int f = 0; f < nflows; ++f) {
      std::vector<int> res;
      for (int r = 0; r < nres; ++r) {
        if (rng.next_below(2)) res.push_back(r);
      }
      // Nudge each cap by a sub-kEps amount around the shared base value.
      const double cap =
          base_cap * (1.0 + static_cast<double>(rng.next_below(200)) * 1e-12);
      flows.push_back({net.add_flow(1e6, res, cap), res});
    }
    net.recompute_rates();

    std::vector<double> load(static_cast<std::size_t>(nres), 0.0);
    for (const FlowRef& f : flows) {
      const double rate = net.rate_of(f.id);
      ASSERT_GT(rate, 0.0) << "trial " << trial;
      for (int r : f.res) load[static_cast<std::size_t>(r)] += rate;
    }
    for (int r = 0; r < nres; ++r) {
      ASSERT_LE(load[static_cast<std::size_t>(r)],
                caps[static_cast<std::size_t>(r)] * (1 + 1e-12) + 1e-12)
          << "trial " << trial << " resource " << r << " oversubscribed by "
          << load[static_cast<std::size_t>(r)] - caps[static_cast<std::size_t>(r)];
    }
  }
}

TEST(Fluid, StalledFlowsListsZeroRateTransfers) {
  FluidNetwork net({10.0});
  const int a = net.add_flow(20.0, {0}, 100.0);
  // Rates are stale (zero) until recompute: the flow can never finish and
  // time_to_next_completion is infinite — exactly the state the replay
  // engine's stall detector reports.
  EXPECT_EQ(net.time_to_next_completion(),
            std::numeric_limits<double>::infinity());
  const auto stalled = net.stalled_flows();
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0], a);
  net.recompute_rates();
  EXPECT_TRUE(net.stalled_flows().empty());
  net.advance(2.0);  // drains completely at rate 10
  EXPECT_TRUE(net.stalled_flows().empty());  // complete, not stalled
  ASSERT_EQ(net.completed_flows().size(), 1u);
}

TEST(Fluid, RejectsBadArguments) {
  FluidNetwork net({10.0});
  EXPECT_THROW(net.add_flow(0.0, {0}, 1.0), PreconditionError);
  EXPECT_THROW(net.add_flow(1.0, {3}, 1.0), PreconditionError);
  EXPECT_THROW(net.add_flow(1.0, {0}, 0.0), PreconditionError);
  EXPECT_THROW(net.remove_flow(0), PreconditionError);
  EXPECT_THROW(FluidNetwork({0.0}), PreconditionError);
}

// ------------------------------------------------------------ replay: unit

// A convenient tiny cost model with round numbers.
CostModel unit_cost() {
  CostModel m;
  m.alpha_intra = 1e-6;
  m.alpha_inter = 10e-6;
  m.o_send = 2e-6;
  m.o_recv = 3e-6;
  m.bw_flow_intra = 1e9;   // 1 GB/s per flow
  m.bw_flow_inter = 1e9;
  m.bw_membus = 2e9;       // two intra flows before contention
  m.bw_nic = 1e9;
  m.bw_fabric = 0;
  m.eager_threshold = 1000;
  m.copy_bw = 1e9;
  m.barrier_cost = 5e-6;
  return m;
}

trace::Schedule two_rank_send(std::uint64_t bytes) {
  trace::Schedule s;
  s.nranks = 2;
  s.nbytes = bytes;
  s.ops.resize(2);
  trace::Op snd;
  snd.kind = trace::OpKind::Send;
  snd.dst = 1;
  snd.send_tag = 0;
  snd.send_bytes = bytes;
  snd.send_off = 0;
  trace::Op rcv;
  rcv.kind = trace::OpKind::Recv;
  rcv.src = 0;
  rcv.recv_tag = 0;
  rcv.recv_cap = bytes;
  rcv.recv_off = 0;
  s.ops[0] = {snd};
  s.ops[1] = {rcv};
  return s;
}

TEST(Replay, EagerSendClosedForm) {
  // 800 B eager intra-node message.
  const auto sched = two_rank_send(800);
  const auto m = trace::match_schedule(sched);
  const CostModel cost = unit_cost();
  const auto res = replay_schedule(sched, m, Topology::single_node(2), cost);
  // Sender: busy o_send plus the injection memcpy (800B at copy_bw), then
  // free — eager sends are fire-and-forget.
  const double send_done = cost.o_send + 800 / cost.copy_bw;
  expect_close(res.rank_finish[0], send_done);
  // Delivered after the intra-node handoff latency; receiver posted at
  // o_recv = 3us (earlier), then pays its own copy-out.
  const double delivered = send_done + cost.alpha_intra;
  expect_close(res.rank_finish[1], delivered + 800 / cost.copy_bw);
  expect_close(res.makespan, res.rank_finish[1]);
  EXPECT_EQ(res.messages, 1u);
  EXPECT_EQ(res.flows_started, 0u);  // intra-node eager never enters the fluid net
}

TEST(Replay, EagerInterNodeUsesTheNic) {
  const auto sched = two_rank_send(800);
  const auto m = trace::match_schedule(sched);
  const CostModel cost = unit_cost();
  const Topology topo(2, 1, Placement::Block);  // two nodes
  const auto res = replay_schedule(sched, m, topo, cost);
  EXPECT_EQ(res.flows_started, 1u);
  // send_done = o_send + inject; wire = 800B at 1GB/s (NIC) + alpha_inter;
  // receiver copy-out afterwards.
  const double send_done = cost.o_send + 800 / cost.copy_bw;
  const double delivered = send_done + 800 / cost.bw_nic + cost.alpha_inter;
  expect_close(res.rank_finish[1], delivered + 800 / cost.copy_bw);
}

TEST(Replay, RendezvousSendClosedForm) {
  // 100 KB rendezvous message across nodes.
  const std::uint64_t B = 100000;
  const auto sched = two_rank_send(B);
  const auto m = trace::match_schedule(sched);
  const CostModel cost = unit_cost();
  const Topology topo(2, 1, Placement::Block);  // two nodes
  const auto res = replay_schedule(sched, m, topo, cost);
  // Handshake completes at max(o_send, o_recv) + 2*alpha_inter; the flow
  // then streams B bytes at 1 GB/s; delivery adds one more alpha.
  const double start = std::max(cost.o_send, cost.o_recv) + 2 * cost.alpha_inter;
  const double delivered = start + B / 1e9 + cost.alpha_inter;
  expect_close(res.rank_finish[0], delivered);  // sender blocked to the end
  expect_close(res.rank_finish[1], delivered);
}

TEST(Replay, UnexpectedEagerMessagePaysCopy) {
  // Rank 1 sits in a barrier-late position: sender fires at t=o_send; the
  // receiver posts its receive only after a barrier both enter.
  trace::Schedule s;
  s.nranks = 2;
  s.nbytes = 400;
  s.ops.resize(2);
  trace::Op snd;
  snd.kind = trace::OpKind::Send;
  snd.dst = 1;
  snd.send_tag = 0;
  snd.send_bytes = 400;
  snd.send_off = 0;
  trace::Op rcv;
  rcv.kind = trace::OpKind::Recv;
  rcv.src = 0;
  rcv.recv_tag = 0;
  rcv.recv_cap = 400;
  rcv.recv_off = 0;
  trace::Op bar;
  bar.kind = trace::OpKind::Barrier;
  s.ops[0] = {snd, bar};
  s.ops[1] = {bar, rcv};
  const auto m = trace::match_schedule(s);
  const CostModel cost = unit_cost();
  const auto res = replay_schedule(s, m, Topology::single_node(2), cost);
  // Send op busy = o_send + inject = 2.4us; delivered at 3.4us. Barrier:
  // rank0 arrives at 2.4us, rank1 at 0 -> released at 2.4us + barrier_cost.
  // Receiver posts at release + o_recv = 10.4us (message already waiting),
  // then pays the copy-out: completes at 10.8us.
  const double send_done = cost.o_send + 400 / cost.copy_bw;
  const double posted = send_done + cost.barrier_cost + cost.o_recv;
  expect_close(res.rank_finish[1], posted + 400 / cost.copy_bw);
}

TEST(Replay, ZeroByteMessageCostsOverheadAndLatency) {
  const auto sched = two_rank_send(0);
  const auto m = trace::match_schedule(sched);
  const CostModel cost = unit_cost();
  const auto res = replay_schedule(sched, m, Topology::single_node(2), cost);
  expect_close(res.rank_finish[0], cost.o_send);
  expect_close(res.rank_finish[1], cost.o_send + cost.alpha_intra);
  EXPECT_EQ(res.flows_started, 0u);
}

TEST(Replay, NicContentionHalvesThroughput) {
  // Two senders on node 0 stream to two receivers on node 1 concurrently:
  // the shared NIC (1 GB/s) halves each flow's rate.
  trace::Schedule s;
  s.nranks = 4;
  s.nbytes = 2000000;
  s.ops.resize(4);
  auto mk_send = [&](int dst) {
    trace::Op op;
    op.kind = trace::OpKind::Send;
    op.dst = dst;
    op.send_tag = 0;
    op.send_bytes = 1000000;
    op.send_off = 0;
    return op;
  };
  auto mk_recv = [&](int src) {
    trace::Op op;
    op.kind = trace::OpKind::Recv;
    op.src = src;
    op.recv_tag = 0;
    op.recv_cap = 1000000;
    op.recv_off = 0;
    return op;
  };
  s.ops[0] = {mk_send(2)};
  s.ops[1] = {mk_send(3)};
  s.ops[2] = {mk_recv(0)};
  s.ops[3] = {mk_recv(1)};
  const auto m = trace::match_schedule(s);
  const CostModel cost = unit_cost();
  const Topology topo(4, 2, Placement::Block);  // {0,1} node0, {2,3} node1
  const auto res = replay_schedule(s, m, topo, cost);
  // Rendezvous: both flows start at max(o_send, o_recv) + 2 alpha and share
  // the NIC at 0.5 GB/s -> 2ms transfer.
  const double start = std::max(cost.o_send, cost.o_recv) + 2 * cost.alpha_inter;
  const double finish = start + 1000000 / 0.5e9 + cost.alpha_inter;
  expect_close(res.makespan, finish);
}

TEST(Replay, SequentialFlowsDontContend) {
  // Same transfers but serialized via data dependency (0->2 then 1->3
  // gated by a message 2->1): each flow runs at full rate. Construct simply:
  // one flow, then the other (rank1 waits for a zero-byte go-signal from 2).
  trace::Schedule s;
  s.nranks = 4;
  s.nbytes = 2000000;
  s.ops.resize(4);
  trace::Op send02;
  send02.kind = trace::OpKind::Send;
  send02.dst = 2;
  send02.send_tag = 0;
  send02.send_bytes = 1000000;
  send02.send_off = 0;
  trace::Op recv20;
  recv20.kind = trace::OpKind::Recv;
  recv20.src = 0;
  recv20.recv_tag = 0;
  recv20.recv_cap = 1000000;
  recv20.recv_off = 0;
  trace::Op go;  // 2 -> 1 zero-byte signal
  go.kind = trace::OpKind::Send;
  go.dst = 1;
  go.send_tag = 1;
  go.send_bytes = 0;
  go.send_off = 0;
  trace::Op waitgo;
  waitgo.kind = trace::OpKind::Recv;
  waitgo.src = 2;
  waitgo.recv_tag = 1;
  waitgo.recv_cap = 0;
  waitgo.recv_off = 0;
  trace::Op send13 = send02;
  send13.dst = 3;
  trace::Op recv31 = recv20;
  recv31.src = 1;
  s.ops[0] = {send02};
  s.ops[1] = {waitgo, send13};
  s.ops[2] = {recv20, go};
  s.ops[3] = {recv31};
  const auto m = trace::match_schedule(s);
  const CostModel cost = unit_cost();
  const Topology topo(4, 2, Placement::Block);
  const auto res = replay_schedule(s, m, topo, cost);
  // Each rendezvous flow runs alone at 1 GB/s (1ms each) -> makespan well
  // below the 2ms+ of the contended case but above a single transfer.
  EXPECT_LT(res.makespan, 2.3e-3);
  EXPECT_GT(res.makespan, 2.0e-3);  // two serialized 1ms transfers
}

TEST(Replay, FabricCapLimitsAggregateBandwidth) {
  // Two flows between DIFFERENT node pairs: without a fabric cap each runs
  // at the full per-flow rate; a global fabric cap of one flow's rate
  // halves them both.
  trace::Schedule s;
  s.nranks = 4;
  s.nbytes = 2000000;
  s.ops.resize(4);
  auto mk = [&](int from, int to) {
    trace::Op snd;
    snd.kind = trace::OpKind::Send;
    snd.dst = to;
    snd.send_tag = 0;
    snd.send_bytes = 1000000;
    snd.send_off = 0;
    trace::Op rcv;
    rcv.kind = trace::OpKind::Recv;
    rcv.src = from;
    rcv.recv_tag = 0;
    rcv.recv_cap = 1000000;
    rcv.recv_off = 0;
    return std::make_pair(snd, rcv);
  };
  auto [s02, r02] = mk(0, 2);
  auto [s13, r13] = mk(1, 3);
  s.ops[0] = {s02};
  s.ops[1] = {s13};
  s.ops[2] = {r02};
  s.ops[3] = {r13};
  const auto m = trace::match_schedule(s);
  const Topology topo(4, 1, Placement::Block);  // 4 nodes: disjoint NICs
  CostModel open = unit_cost();
  CostModel capped = unit_cost();
  capped.bw_fabric = 1e9;  // both flows squeeze through 1 GB/s total
  const auto fast = replay_schedule(s, m, topo, open);
  const auto slow = replay_schedule(s, m, topo, capped);
  const double start = std::max(open.o_send, open.o_recv) + 2 * open.alpha_inter;
  expect_close(fast.makespan, start + 1000000 / 1e9 + open.alpha_inter);
  expect_close(slow.makespan, start + 1000000 / 0.5e9 + open.alpha_inter);
}

TEST(Replay, BarrierReleasesAtLastArrivalPlusCost) {
  trace::Schedule s;
  s.nranks = 3;
  s.nbytes = 0;
  s.ops.resize(3);
  trace::Op bar;
  bar.kind = trace::OpKind::Barrier;
  // Rank 2 is delayed by a send op before the barrier.
  trace::Op snd;
  snd.kind = trace::OpKind::Send;
  snd.dst = 0;
  snd.send_tag = 0;
  snd.send_bytes = 0;
  snd.send_off = 0;
  trace::Op rcv;
  rcv.kind = trace::OpKind::Recv;
  rcv.src = 2;
  rcv.recv_tag = 0;
  rcv.recv_cap = 0;
  rcv.recv_off = 0;
  s.ops[0] = {rcv, bar};
  s.ops[1] = {bar};
  s.ops[2] = {snd, bar};
  const auto m = trace::match_schedule(s);
  const CostModel cost = unit_cost();
  const auto res = replay_schedule(s, m, Topology::single_node(3), cost);
  // Rank 0: o_recv busy (3us), then zero-byte delivery at o_send+alpha =
  // 3us... recv completes at max(3, 3) = 3us; arrives barrier at 3us.
  // All ranks released at 3us + barrier_cost = 8us.
  expect_close(res.makespan, 3e-6 + cost.barrier_cost);
}

TEST(Replay, DeadlockedScheduleThrows) {
  trace::Schedule s;
  s.nranks = 2;
  s.nbytes = 4;
  s.ops.resize(2);
  trace::Op r0;
  r0.kind = trace::OpKind::Recv;
  r0.src = 1;
  r0.recv_tag = 0;
  r0.recv_cap = 4;
  r0.recv_off = 0;
  trace::Op s0;
  s0.kind = trace::OpKind::Send;
  s0.dst = 1;
  s0.send_tag = 0;
  s0.send_bytes = 4;
  s0.send_off = 0;
  trace::Op r1 = r0;
  r1.src = 0;
  trace::Op s1 = s0;
  s1.dst = 0;
  // Both receive-then-send with RENDEZVOUS sizes -> true deadlock.
  CostModel cost = unit_cost();
  cost.eager_threshold = 0;
  s.ops[0] = {r0, s0};
  s.ops[1] = {r1, s1};
  const auto m = trace::match_schedule(s);
  EXPECT_THROW(replay_schedule(s, m, Topology::single_node(2), cost), SimError);
}

TEST(Replay, EagerBreaksRecvAfterSendCycle) {
  // The same shape but with SEND-before-RECV on one side completes.
  trace::Schedule s;
  s.nranks = 2;
  s.nbytes = 4;
  s.ops.resize(2);
  trace::Op snd;
  snd.kind = trace::OpKind::Send;
  snd.dst = 1;
  snd.send_tag = 0;
  snd.send_bytes = 4;
  snd.send_off = 0;
  trace::Op rcv;
  rcv.kind = trace::OpKind::Recv;
  rcv.src = 1;
  rcv.recv_tag = 0;
  rcv.recv_cap = 4;
  rcv.recv_off = 0;
  trace::Op snd1 = snd;
  snd1.dst = 0;
  trace::Op rcv1 = rcv;
  rcv1.src = 0;
  s.ops[0] = {snd, rcv};
  s.ops[1] = {snd1, rcv1};
  const auto m = trace::match_schedule(s);
  const auto res =
      replay_schedule(s, m, Topology::single_node(2), unit_cost());
  EXPECT_GT(res.makespan, 0.0);
}

TEST(Replay, EagerCreditsThrottleRunAhead) {
  // Rank 0 streams N eager messages; rank 1 consumes them slowly (it is
  // first parked in a long rendezvous with rank 2). With 1 credit the
  // sender must wait for each copy-out; with unlimited credits it finishes
  // after N back-to-back injections.
  const int N = 8;
  trace::Schedule s;
  s.nranks = 2;
  s.nbytes = 800;
  s.ops.resize(2);
  for (int i = 0; i < N; ++i) {
    trace::Op snd;
    snd.kind = trace::OpKind::Send;
    snd.dst = 1;
    snd.send_tag = 0;
    snd.send_bytes = 100;
    snd.send_off = 0;
    s.ops[0].push_back(snd);
    trace::Op rcv;
    rcv.kind = trace::OpKind::Recv;
    rcv.src = 0;
    rcv.recv_tag = 0;
    rcv.recv_cap = 100;
    rcv.recv_off = 0;
    s.ops[1].push_back(rcv);
  }
  const auto m = trace::match_schedule(s);
  CostModel unlimited = unit_cost();
  unlimited.eager_credits = 0;
  CostModel strict = unit_cost();
  strict.eager_credits = 1;
  const auto topo = Topology::single_node(2);
  const auto fast = replay_schedule(s, m, topo, unlimited);
  const auto slow = replay_schedule(s, m, topo, strict);
  // Unlimited: sender done after N * (o_send + inject).
  expect_close(fast.rank_finish[0], N * (unit_cost().o_send + 100 / 1e9));
  // One credit: each injection must wait for the previous copy-out, so the
  // sender is paced by the receiver (o_recv + copy per message) instead of
  // its own injection rate (o_send + copy per message).
  EXPECT_GT(slow.rank_finish[0], fast.rank_finish[0] * 1.25);
  EXPECT_GT(slow.rank_finish[0], (N - 1) * (unit_cost().o_recv + 100 / 1e9));
  // Flow control must not change WHAT is delivered, only when.
  EXPECT_EQ(slow.messages, fast.messages);
  EXPECT_GE(slow.makespan, fast.makespan);
}

TEST(Replay, CreditsDefaultOnHornetStaysCorrect) {
  // End-to-end: tuned broadcast under default credits still completes and
  // stays ahead of native.
  const int P = 12;
  const std::uint64_t nbytes = 24000;  // eager chunks
  const auto topo = Topology::single_node(P);
  const CostModel cost = CostModel::hornet();
  auto run = [&](bool tuned) {
    const auto sched = trace::record_schedule(
        P, nbytes, [&](Comm& comm, std::span<std::byte> buffer) {
          if (tuned) {
            core::bcast_scatter_ring_tuned(comm, buffer, 0);
          } else {
            coll::bcast_scatter_ring_native(comm, buffer, 0);
          }
        });
    return replay_schedule(sched.replicate(6), trace::match_schedule(sched.replicate(6)),
                           topo, cost);
  };
  const auto native = run(false);
  const auto tuned = run(true);
  EXPECT_LE(tuned.makespan, native.makespan * 1.02);
}

TEST(Replay, DeterministicAcrossRuns) {
  const auto sched = trace::record_schedule(
      10, 50000, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_scatter_ring_native(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  const Topology topo = Topology::hornet(10);
  const CostModel cost = CostModel::hornet();
  const auto a = replay_schedule(sched, m, topo, cost);
  const auto b = replay_schedule(sched, m, topo, cost);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.rank_finish, b.rank_finish);
}

TEST(CostModel, ValidateRejectsNonsense) {
  auto broken = [](auto&& mutate) {
    CostModel m = CostModel::hornet();
    mutate(m);
    return m;
  };
  EXPECT_NO_THROW(CostModel::hornet().validate());
  EXPECT_NO_THROW(CostModel::laki().validate());
  EXPECT_THROW(broken([](CostModel& m) { m.alpha_intra = -1; }).validate(),
               PreconditionError);
  EXPECT_THROW(broken([](CostModel& m) { m.o_recv = -1e-9; }).validate(),
               PreconditionError);
  EXPECT_THROW(broken([](CostModel& m) { m.bw_flow_inter = 0; }).validate(),
               PreconditionError);
  EXPECT_THROW(broken([](CostModel& m) { m.bw_membus = 0; }).validate(),
               PreconditionError);
  EXPECT_THROW(broken([](CostModel& m) { m.bw_fabric = -1; }).validate(),
               PreconditionError);
  EXPECT_THROW(broken([](CostModel& m) { m.copy_bw = 0; }).validate(),
               PreconditionError);
  EXPECT_THROW(broken([](CostModel& m) { m.barrier_cost = -1; }).validate(),
               PreconditionError);
  EXPECT_NE(CostModel::hornet().describe().find("credits 16"),
            std::string::npos);
}

TEST(Replay, CyclicPlacementMakesRingLinksInterNode) {
  // Same broadcast, same ranks: block placement keeps most ring traffic
  // inside nodes; cyclic placement pushes nearly all of it onto the NICs
  // and must therefore be slower under this model.
  const int P = 16;
  const auto sched = trace::record_schedule(
      P, 1 << 20, [](Comm& comm, std::span<std::byte> buffer) {
        core::bcast_scatter_ring_tuned(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  const CostModel cost = CostModel::hornet();
  const Topology block(P, 8, Placement::Block);
  const Topology cyclic(P, 8, Placement::Cyclic);
  const auto t_block = replay_schedule(sched, m, block, cost);
  const auto t_cyclic = replay_schedule(sched, m, cyclic, cost);
  EXPECT_LT(t_block.makespan, t_cyclic.makespan);

  const auto s_block = trace::traffic_stats(m, block);
  const auto s_cyclic = trace::traffic_stats(m, cyclic);
  EXPECT_LT(s_block.inter_msgs, s_cyclic.inter_msgs);
}

TEST(Replay, MoreRanksPerNodeMeansMoreMembusContention) {
  // Fixing everything else, squeezing 32 ranks onto one node must not be
  // faster than spreading them over four 8-core nodes for a big payload.
  const int P = 32;
  const auto sched = trace::record_schedule(
      P, 1 << 22, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_scatter_ring_native(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  const CostModel cost = CostModel::hornet();
  const auto packed =
      replay_schedule(sched, m, Topology(P, 32, Placement::Block), cost);
  const auto spread =
      replay_schedule(sched, m, Topology(P, 8, Placement::Block), cost);
  EXPECT_GT(packed.makespan, spread.makespan * 0.9);
}

// ---------------------------------------------------- replay: shm channel

/// unit_cost() with the XPMEM-style single-copy channel switched on for
/// tag 0 (the tag two_rank_send uses): handoff 1us, 1 GB/s per mapping,
/// 2 GB/s per source node.
CostModel shm_cost() {
  CostModel m = unit_cost();
  m.alpha_shm = 1e-6;
  m.bw_flow_shm = 1e9;
  m.bw_shm_node = 2e9;
  m.shm_tag = 0;
  return m;
}

/// Rank 0 sends bytes[i] to rank 1 + i, all with `tag`.
trace::Schedule fanout_schedule(const std::vector<std::uint64_t>& bytes,
                                int tag) {
  trace::Schedule s;
  s.nranks = 1 + static_cast<int>(bytes.size());
  s.nbytes = *std::max_element(bytes.begin(), bytes.end());
  s.ops.resize(static_cast<std::size_t>(s.nranks));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    trace::Op snd;
    snd.kind = trace::OpKind::Send;
    snd.dst = 1 + static_cast<int>(i);
    snd.send_tag = tag;
    snd.send_bytes = bytes[i];
    snd.send_off = 0;
    s.ops[0].push_back(snd);
    trace::Op rcv;
    rcv.kind = trace::OpKind::Recv;
    rcv.src = 0;
    rcv.recv_tag = tag;
    rcv.recv_cap = bytes[i];
    rcv.recv_off = 0;
    s.ops[1 + i] = {rcv};
  }
  return s;
}

TEST(ReplayShm, SingleCopyClosedForm) {
  // 50 KB intra-node message on the shm channel: the sender is freed the
  // moment it posts (o_send, no injection copy), the mapping hand-off costs
  // alpha_shm, the payload streams at bw_flow_shm, and the receiver pays no
  // copy-out — one copy end to end.
  const std::uint64_t B = 50000;
  const auto sched = two_rank_send(B);
  const auto m = trace::match_schedule(sched);
  const CostModel cost = shm_cost();
  const auto res = replay_schedule(sched, m, Topology::single_node(2), cost);
  EXPECT_EQ(res.messages, 1u);
  EXPECT_EQ(res.flows_started, 1u);
  EXPECT_EQ(res.shm_messages, 1u);
  EXPECT_EQ(res.shm_bytes, B);
  EXPECT_EQ(res.intra_messages, 0u);
  EXPECT_EQ(res.inter_messages, 0u);
  expect_close(res.rank_finish[0], cost.o_send);
  const double start = std::max(cost.o_send, cost.o_recv) + cost.alpha_shm;
  expect_close(res.rank_finish[1], start + B / cost.bw_flow_shm);
  expect_close(res.makespan, res.rank_finish[1]);
  // Host time is the posting overheads alone: no inject, no copy-out.
  expect_close(res.cpu_busy[0], cost.o_send);
  expect_close(res.cpu_busy[1], cost.o_recv);
}

TEST(ReplayShm, TakesPrecedenceOverEagerAndHandlesZeroBytes) {
  const CostModel cost = shm_cost();
  // 800 B is under the eager threshold, but the shm tag wins: the message
  // still rides the mapping (a flow), not the eager inject path.
  {
    const auto sched = two_rank_send(800);
    const auto m = trace::match_schedule(sched);
    const auto res = replay_schedule(sched, m, Topology::single_node(2), cost);
    EXPECT_EQ(res.shm_messages, 1u);
    EXPECT_EQ(res.flows_started, 1u);
    expect_close(res.rank_finish[0], cost.o_send);
    const double start = std::max(cost.o_send, cost.o_recv) + cost.alpha_shm;
    expect_close(res.rank_finish[1], start + 800 / cost.bw_flow_shm);
  }
  // Zero payload: delivered at the hand-off itself, no flow.
  {
    const auto sched = two_rank_send(0);
    const auto m = trace::match_schedule(sched);
    const auto res = replay_schedule(sched, m, Topology::single_node(2), cost);
    EXPECT_EQ(res.shm_messages, 1u);
    EXPECT_EQ(res.flows_started, 0u);
    expect_close(res.rank_finish[1],
                 std::max(cost.o_send, cost.o_recv) + cost.alpha_shm);
  }
}

TEST(ReplayShm, DisabledOrMismatchedTagReplaysIdentically) {
  // shm_tag = -1 (channel off) and shm_tag != message tag must both take
  // the ordinary rendezvous path, bit-identically.
  const auto sched = two_rank_send(50000);
  const auto m = trace::match_schedule(sched);
  const Topology topo = Topology::single_node(2);
  const auto off = replay_schedule(sched, m, topo, unit_cost());
  CostModel mismatch = shm_cost();
  mismatch.shm_tag = 7;  // two_rank_send uses tag 0
  const auto miss = replay_schedule(sched, m, topo, mismatch);
  EXPECT_EQ(off.shm_messages, 0u);
  EXPECT_EQ(miss.shm_messages, 0u);
  EXPECT_EQ(off.makespan, miss.makespan);
  EXPECT_EQ(off.rank_finish, miss.rank_finish);
  EXPECT_EQ(off.cpu_busy, miss.cpu_busy);
}

TEST(ReplayShm, InterNodeMessagesNeverUseTheChannel) {
  // Same tag-0 message, but the peers sit on different nodes: shared
  // memory cannot reach across the fabric, so the NIC path must run
  // exactly as if the channel were off.
  const auto sched = two_rank_send(50000);
  const auto m = trace::match_schedule(sched);
  const Topology topo(2, 1, Placement::Block);  // two nodes
  const auto with_shm = replay_schedule(sched, m, topo, shm_cost());
  const auto without = replay_schedule(sched, m, topo, unit_cost());
  EXPECT_EQ(with_shm.shm_messages, 0u);
  EXPECT_EQ(with_shm.inter_messages, 1u);
  EXPECT_EQ(with_shm.makespan, without.makespan);
  EXPECT_EQ(with_shm.rank_finish, without.rank_finish);
}

TEST(ReplayShm, FanOutSharesTheNodeCap) {
  // Two 10 KB mappings out of one source node with bw_shm_node squeezed to
  // one flow's worth: while both are live, max-min gives each half.
  //   posts: send1 at 2us, send2 at 4us, recvs at 3us
  //   flow1 starts 4us (+1us handoff), alone at 1 GB/s for 1us -> 1 KB out
  //   flow2 starts 5us; both at 0.5 GB/s; flow1's 9 KB takes 18us -> 23us
  //   flow2 then finishes its last 1 KB alone at 1 GB/s -> 24us
  const std::uint64_t B = 10000;
  const auto sched = fanout_schedule({B, B}, /*tag=*/0);
  const auto m = trace::match_schedule(sched);
  CostModel cost = shm_cost();
  cost.bw_shm_node = 1e9;
  const auto res = replay_schedule(sched, m, Topology::single_node(3), cost);
  EXPECT_EQ(res.shm_messages, 2u);
  EXPECT_EQ(res.shm_bytes, 2 * B);
  expect_close(res.rank_finish[0], 2 * cost.o_send);
  expect_close(res.rank_finish[1], 23e-6);
  expect_close(res.rank_finish[2], 24e-6);
  // With the node cap back at two flows' worth there is no contention:
  // each mapping streams at its private 1 GB/s.
  const auto wide = replay_schedule(sched, m, Topology::single_node(3),
                                    shm_cost());
  expect_close(wide.rank_finish[1], 14e-6);  // start 4us + 10us stream
  expect_close(wide.rank_finish[2], 15e-6);  // start 5us + 10us stream
}

TEST(ReplayShm, ChannelIsIndependentOfMembusTraffic) {
  // One node, four ranks: a tag-0 shm pair next to a tag-1 rendezvous
  // pair. The shm channel owns its own resource, the rendezvous copy runs
  // on the membus — neither slows the other, so every rank finishes
  // exactly when it does in its solo two-rank replay.
  const std::uint64_t B = 40000;
  trace::Schedule s;
  s.nranks = 4;
  s.nbytes = B;
  s.ops.resize(4);
  auto push_pair = [&](int src, int dst, int tag) {
    trace::Op snd;
    snd.kind = trace::OpKind::Send;
    snd.dst = dst;
    snd.send_tag = tag;
    snd.send_bytes = B;
    snd.send_off = 0;
    trace::Op rcv;
    rcv.kind = trace::OpKind::Recv;
    rcv.src = src;
    rcv.recv_tag = tag;
    rcv.recv_cap = B;
    rcv.recv_off = 0;
    s.ops[static_cast<std::size_t>(src)] = {snd};
    s.ops[static_cast<std::size_t>(dst)] = {rcv};
  };
  push_pair(0, 1, /*tag=*/0);  // shm
  push_pair(2, 3, /*tag=*/1);  // intra-node rendezvous
  const auto m = trace::match_schedule(s);
  const CostModel cost = shm_cost();
  const auto combined = replay_schedule(s, m, Topology::single_node(4), cost);
  EXPECT_EQ(combined.shm_messages, 1u);
  EXPECT_EQ(combined.intra_messages, 1u);

  const auto shm_solo =
      replay_schedule(two_rank_send(B), trace::match_schedule(two_rank_send(B)),
                      Topology::single_node(2), cost);
  trace::Schedule rv = two_rank_send(B);
  rv.ops[0][0].send_tag = 1;
  rv.ops[1][0].recv_tag = 1;
  const auto rv_solo = replay_schedule(rv, trace::match_schedule(rv),
                                       Topology::single_node(2), cost);
  expect_close(combined.rank_finish[0], shm_solo.rank_finish[0]);
  expect_close(combined.rank_finish[1], shm_solo.rank_finish[1]);
  expect_close(combined.rank_finish[2], rv_solo.rank_finish[0]);
  expect_close(combined.rank_finish[3], rv_solo.rank_finish[1]);
}

TEST(ReplayShm, RandomizedFanOutConservation) {
  // Fluid-conservation property over random single-node fan-outs: the
  // attribution ledger matches the schedule exactly, and the makespan is
  // bounded below by every per-mapping stream time and by draining the
  // total payload through the node cap.
  SplitMix64 rng(0x5b3aULL);
  for (int trial = 0; trial < 8; ++trial) {
    const int nrecv = 1 + static_cast<int>(rng.next_below(6));
    std::vector<std::uint64_t> bytes;
    std::uint64_t total = 0;
    for (int i = 0; i < nrecv; ++i) {
      bytes.push_back(1 + rng.next_below(80000));
      total += bytes.back();
    }
    const auto sched = fanout_schedule(bytes, /*tag=*/0);
    const auto m = trace::match_schedule(sched);
    const CostModel cost = shm_cost();
    const auto res =
        replay_schedule(sched, m, Topology::single_node(1 + nrecv), cost);
    ASSERT_EQ(res.shm_messages, static_cast<std::uint64_t>(nrecv));
    ASSERT_EQ(res.shm_bytes, total);
    ASSERT_EQ(res.intra_messages + res.inter_messages + res.shm_messages,
              res.messages);
    // The first hand-off cannot complete before o_recv + alpha_shm, and
    // all payload must squeeze through the per-node shm capacity.
    ASSERT_GE(res.makespan,
              cost.o_recv + cost.alpha_shm +
                  static_cast<double>(total) / cost.bw_shm_node - 1e-12);
    for (const std::uint64_t b : bytes) {
      ASSERT_GE(res.makespan,
                static_cast<double>(b) / cost.bw_flow_shm - 1e-12);
    }
    // Senders are freed at post: rank 0 is done after its o_sends.
    expect_close(res.rank_finish[0], nrecv * cost.o_send);
  }
}

// ---------------------------------------------------- replay: concurrent

TEST(ReplayConcurrent, SingleJobMatchesReplaySchedule) {
  const auto sched = trace::record_schedule(
      10, 50000, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_scatter_ring_native(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  const Topology topo = Topology::hornet(10);
  const CostModel cost = CostModel::hornet();
  const auto solo = replay_schedule(sched, m, topo, cost);
  const std::vector<ReplayJob> jobs{{&sched, &m, 0.0, {}}};
  const auto conc = replay_concurrent(jobs, topo, cost);
  ASSERT_EQ(conc.job_finish.size(), 1u);
  EXPECT_EQ(conc.job_finish[0], solo.makespan);
  EXPECT_EQ(conc.job_latency[0], solo.makespan);
  EXPECT_EQ(conc.makespan, solo.makespan);
  EXPECT_EQ(conc.messages, solo.messages);
  EXPECT_EQ(conc.flows_started, solo.flows_started);
}

TEST(ReplayConcurrent, StaggeredArrivalShiftsButDoesNotStretch) {
  // A job arriving long after the first finished sees an idle network: its
  // completion LATENCY equals the solo latency, only its finish shifts.
  const auto sched = two_rank_send(100000);  // rendezvous
  const auto m = trace::match_schedule(sched);
  const Topology topo(4, 2, Placement::Block);  // ranks {0,1} node0, {2,3} node1
  const CostModel cost = unit_cost();
  const std::vector<ReplayJob> solo{{&sched, &m, 0.0, {0, 2}}};
  const auto alone = replay_concurrent(solo, topo, cost);
  const std::vector<ReplayJob> jobs{
      {&sched, &m, 0.0, {0, 2}},
      {&sched, &m, 1.0, {1, 3}},  // arrives after job 0 is long done
  };
  const auto res = replay_concurrent(jobs, topo, cost);
  ASSERT_EQ(res.job_finish.size(), 2u);
  expect_close(res.job_latency[0], alone.job_latency[0]);
  expect_close(res.job_latency[1], alone.job_latency[0]);
  expect_close(res.job_finish[1], 1.0 + alone.job_latency[0]);
}

TEST(ReplayConcurrent, SharedNicContentionStretchesLatency) {
  // Two rendezvous transfers crossing the SAME node pair at the same time
  // share the NIC and each runs at half rate; the closed form doubles the
  // wire time relative to a solo run.
  const std::uint64_t B = 1000000;
  const auto sched = two_rank_send(B);
  const auto m = trace::match_schedule(sched);
  const Topology topo(4, 2, Placement::Block);
  const CostModel cost = unit_cost();
  const std::vector<ReplayJob> jobs{
      {&sched, &m, 0.0, {0, 2}},
      {&sched, &m, 0.0, {1, 3}},
  };
  const auto res = replay_concurrent(jobs, topo, cost);
  const double start = std::max(cost.o_send, cost.o_recv) + 2 * cost.alpha_inter;
  const double contended =
      start + static_cast<double>(B) / 0.5e9 + cost.alpha_inter;
  expect_close(res.job_latency[0], contended);
  expect_close(res.job_latency[1], contended);
  // And the solo run at full NIC rate really is ~2x faster on the wire.
  const std::vector<ReplayJob> solo{{&sched, &m, 0.0, {0, 2}}};
  const auto alone = replay_concurrent(solo, topo, cost);
  EXPECT_GT(res.job_latency[0], alone.job_latency[0] * 1.5);
}

TEST(ReplayConcurrent, OverlappingRankSetsRunToCompletion) {
  // Two collectives over the SAME topology ranks (one communicator per
  // job, progress-thread model): both must complete, and bytes still drain
  // through the shared per-node resources.
  const int P = 8;
  const auto sched = trace::record_schedule(
      P, 200000, [](Comm& comm, std::span<std::byte> buffer) {
        core::bcast_scatter_ring_tuned(comm, buffer, 0);
      });
  const auto m = trace::match_schedule(sched);
  const Topology topo(P, 4, Placement::Block);
  const CostModel cost = CostModel::hornet();
  std::vector<int> identity;
  for (int r = 0; r < P; ++r) identity.push_back(r);
  const std::vector<ReplayJob> jobs{
      {&sched, &m, 0.0, identity},
      {&sched, &m, 0.0, identity},
      {&sched, &m, 5e-5, identity},
  };
  const auto res = replay_concurrent(jobs, topo, cost);
  ASSERT_EQ(res.job_finish.size(), 3u);
  for (double lat : res.job_latency) EXPECT_GT(lat, 0.0);
  EXPECT_EQ(res.messages, 3 * m.msgs.size());
  const std::vector<ReplayJob> solo{{&sched, &m, 0.0, identity}};
  const auto alone = replay_concurrent(solo, topo, cost);
  // Contention can only hurt.
  for (double lat : res.job_latency) {
    EXPECT_GE(lat, alone.job_latency[0] * 0.999);
  }
}

TEST(ReplayConcurrent, DeterministicAcrossRuns) {
  const auto big = trace::record_schedule(
      8, 100000, [](Comm& comm, std::span<std::byte> buffer) {
        core::bcast_scatter_ring_tuned(comm, buffer, 0);
      });
  const auto small = trace::record_schedule(
      8, 100000, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_scatter_ring_native(comm, buffer, 0);
      });
  const auto mb = trace::match_schedule(big);
  const auto ms = trace::match_schedule(small);
  const Topology topo(16, 8, Placement::Block);
  const CostModel cost = CostModel::hornet();
  std::vector<ReplayJob> jobs;
  for (int i = 0; i < 6; ++i) {
    std::vector<int> map;
    for (int r = 0; r < 8; ++r) map.push_back((r + i) % 16);
    jobs.push_back({i % 2 ? &big : &small, i % 2 ? &mb : &ms,
                    static_cast<double>(i) * 3e-5, map});
  }
  const auto a = replay_concurrent(jobs, topo, cost);
  const auto b = replay_concurrent(jobs, topo, cost);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.job_finish, b.job_finish);
  EXPECT_EQ(a.job_latency, b.job_latency);
  EXPECT_EQ(a.rate_recomputes, b.rate_recomputes);
}

TEST(ReplayConcurrent, RejectsBadJobs) {
  const auto sched = two_rank_send(800);
  const auto m = trace::match_schedule(sched);
  const Topology topo(4, 2, Placement::Block);
  const CostModel cost = unit_cost();
  auto run = [&](std::vector<ReplayJob> jobs) {
    return replay_concurrent(jobs, topo, cost);
  };
  EXPECT_THROW(run({}), PreconditionError);
  EXPECT_THROW(run({{nullptr, &m, 0.0, {0, 1}}}), PreconditionError);
  EXPECT_THROW(run({{&sched, &m, -1.0, {0, 1}}}), PreconditionError);
  EXPECT_THROW(run({{&sched, &m, 0.0, {0}}}), PreconditionError);        // size
  EXPECT_THROW(run({{&sched, &m, 0.0, {0, 4}}}), PreconditionError);     // range
  EXPECT_THROW(run({{&sched, &m, 0.0, {2, 2}}}), PreconditionError);     // dup
  EXPECT_THROW(run({{&sched, &m, 0.0, {}}}), PreconditionError);  // identity needs P==topo
}

// ---------------------------------------------------------------- sim glue

TEST(Sim, BandwidthAndThroughputDefinitions) {
  SimSpec spec{Topology::single_node(4), unit_cost(), /*iters=*/5};
  const auto res = simulate_program(
      4, 4000, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_binomial(comm, buffer, 0);
      },
      spec);
  EXPECT_GT(res.seconds, 0.0);
  expect_close(res.bandwidth, 4000.0 * 5 / res.seconds);
  expect_close(res.throughput, 5.0 / res.seconds);
  EXPECT_EQ(res.traffic.msgs, 3u);  // one iteration's traffic
}

TEST(Sim, PipeliningMakesIteratedEagerFasterThanSerial) {
  // With eager messages, N iterations overlap: time(N) < N * time(1).
  SimSpec one{Topology::single_node(8), unit_cost(), 1};
  SimSpec many = one;
  many.iters = 10;
  const auto program = [](Comm& comm, std::span<std::byte> buffer) {
    coll::bcast_binomial(comm, buffer, 0);
  };
  const auto r1 = simulate_program(8, 512, program, one);
  const auto rN = simulate_program(8, 512, program, many);
  EXPECT_LT(rN.seconds, 10 * r1.seconds * 0.999);
}

TEST(Sim, TunedBeatsNativeOnHornetLongMessage) {
  // The headline property: for a long message the tuned broadcast must not
  // be slower than the native one under the Hornet model.
  const int P = 16;
  const std::uint64_t n = 1 << 20;
  SimSpec spec{Topology::hornet(P), CostModel::hornet(), 4};
  const auto rn = simulate_program(
      P, n, [](Comm& comm, std::span<std::byte> buffer) {
        coll::bcast_scatter_ring_native(comm, buffer, 0);
      },
      spec);
  const auto rt = simulate_program(
      P, n, [](Comm& comm, std::span<std::byte> buffer) {
        core::bcast_scatter_ring_tuned(comm, buffer, 0);
      },
      spec);
  EXPECT_LE(rt.seconds, rn.seconds * 1.0001)
      << "tuned " << rt.seconds << " native " << rn.seconds;
  EXPECT_LT(rt.traffic.msgs, rn.traffic.msgs);
}

}  // namespace
}  // namespace bsb::netsim
