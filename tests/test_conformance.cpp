// Comm conformance suite: the SAME battery of semantic checks runs against
// every blocking-communicator view the library offers — a direct
// ThreadComm world and a SubComm window onto a larger world. Any Comm
// implementation added later can join the suite by providing a harness.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "bsbutil/rng.hpp"
#include "comm/subcomm.hpp"
#include "mpisim/errors.hpp"
#include "mpisim/thread_comm.hpp"
#include "mpisim/world.hpp"

namespace bsb {
namespace {

/// A harness runs `body(comm)` on every rank of an N-rank communicator of
/// the flavour under test.
using Body = std::function<void(Comm&)>;

struct Harness {
  std::string name;
  std::function<void(int nranks, const Body&)> run;
};

std::vector<Harness> harnesses() {
  return {
      {"ThreadComm",
       [](int nranks, const Body& body) {
         mpisim::World world(nranks);
         world.run([&](mpisim::ThreadComm& comm) { body(comm); });
       }},
      {"SubCommDense",  // subgroup = ranks 1..n of a world with 2 extras
       [](int nranks, const Body& body) {
         mpisim::World world(nranks + 2);
         world.run([&](mpisim::ThreadComm& comm) {
           if (comm.rank() == 0 || comm.rank() == nranks + 1) return;
           std::vector<int> members;
           for (int r = 1; r <= nranks; ++r) members.push_back(r);
           SubComm sub(comm, std::move(members), /*context=*/3);
           body(sub);
         });
       }},
      {"SubCommStrided",  // subgroup = every other rank, reversed order
       [](int nranks, const Body& body) {
         mpisim::World world(2 * nranks);
         world.run([&](mpisim::ThreadComm& comm) {
           if (comm.rank() % 2 != 0) return;
           std::vector<int> members;
           for (int r = 2 * (nranks - 1); r >= 0; r -= 2) members.push_back(r);
           SubComm sub(comm, std::move(members), /*context=*/4);
           body(sub);
         });
       }},
  };
}

class CommConformance : public ::testing::TestWithParam<int> {
 protected:
  void run_all(int nranks, const Body& body) {
    const Harness h = harnesses()[static_cast<std::size_t>(GetParam())];
    SCOPED_TRACE(h.name);
    h.run(nranks, body);
  }
};

TEST_P(CommConformance, RankAndSizeAreConsistent) {
  run_all(5, [](Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 5);
  });
}

TEST_P(CommConformance, PointToPointRoundTrip) {
  run_all(4, [](Comm& comm) {
    const int me = comm.rank();
    if (me == 0) {
      std::vector<std::byte> msg(257);
      fill_pattern(msg, 42);
      comm.send(msg, 3, 7);
      std::byte ack{};
      const Status st = comm.recv({&ack, 1}, 3, 8);
      EXPECT_EQ(st.source, 3);
      EXPECT_EQ(std::to_integer<int>(ack), 0x5A);
    } else if (me == 3) {
      std::vector<std::byte> msg(300);
      const Status st = comm.recv(msg, 0, 7);
      EXPECT_EQ(st.bytes, 257u);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(first_pattern_mismatch(
                    std::span<const std::byte>(msg.data(), st.bytes), 42),
                st.bytes);
      const std::byte ack{0x5A};
      comm.send({&ack, 1}, 0, 8);
    }
  });
}

TEST_P(CommConformance, NonOvertakingPerChannel) {
  run_all(2, [](Comm& comm) {
    constexpr int kN = 20;
    if (comm.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        const std::byte b{static_cast<unsigned char>(i)};
        comm.send({&b, 1}, 1, 1);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        std::byte b{};
        comm.recv({&b, 1}, 0, 1);
        EXPECT_EQ(std::to_integer<int>(b), i);
      }
    }
  });
}

TEST_P(CommConformance, SendrecvRingNoDeadlock) {
  run_all(6, [](Comm& comm) {
    const int n = comm.size();
    const int me = comm.rank();
    std::vector<std::byte> out(2048), in(2048);
    fill_pattern(out, 900 + me);
    const Status st = comm.sendrecv(out, (me + 1) % n, 2, in, (me + n - 1) % n, 2);
    EXPECT_EQ(st.source, (me + n - 1) % n);
    EXPECT_EQ(first_pattern_mismatch(in, 900 + (me + n - 1) % n), in.size());
  });
}

TEST_P(CommConformance, ZeroByteMessages) {
  run_all(3, [](Comm& comm) {
    const int me = comm.rank();
    if (me == 0) {
      comm.send({}, 1, 0);
    } else if (me == 1) {
      const Status st = comm.recv({}, 0, 0);
      EXPECT_EQ(st.bytes, 0u);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST_P(CommConformance, BarrierOrdersSideEffects) {
  auto flag = std::make_shared<std::atomic<int>>(0);
  run_all(4, [flag](Comm& comm) {
    flag->fetch_add(1);
    comm.barrier();
    EXPECT_EQ(flag->load(), 4);
    comm.barrier();
    comm.barrier();  // repeated barriers must keep working
  });
}

TEST_P(CommConformance, TagsSeparateTraffic) {
  run_all(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::byte a{1}, b{2};
      comm.send({&a, 1}, 1, 10);
      comm.send({&b, 1}, 1, 20);
    } else {
      std::byte b{};
      comm.recv({&b, 1}, 0, 20);  // fetch the SECOND message first, by tag
      EXPECT_EQ(std::to_integer<int>(b), 2);
      comm.recv({&b, 1}, 0, 10);
      EXPECT_EQ(std::to_integer<int>(b), 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllComms, CommConformance, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return harnesses()[static_cast<std::size_t>(
                                                  info.param)]
                               .name;
                         });

}  // namespace
}  // namespace bsb
